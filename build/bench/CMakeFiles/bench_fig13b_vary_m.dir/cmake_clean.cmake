file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13b_vary_m.dir/bench_fig13b_vary_m.cc.o"
  "CMakeFiles/bench_fig13b_vary_m.dir/bench_fig13b_vary_m.cc.o.d"
  "bench_fig13b_vary_m"
  "bench_fig13b_vary_m.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13b_vary_m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
