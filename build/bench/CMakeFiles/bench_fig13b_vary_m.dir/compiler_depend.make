# Empty compiler generated dependencies file for bench_fig13b_vary_m.
# This may be replaced when dependencies are built.
