file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13c_vary_bw.dir/bench_fig13c_vary_bw.cc.o"
  "CMakeFiles/bench_fig13c_vary_bw.dir/bench_fig13c_vary_bw.cc.o.d"
  "bench_fig13c_vary_bw"
  "bench_fig13c_vary_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13c_vary_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
