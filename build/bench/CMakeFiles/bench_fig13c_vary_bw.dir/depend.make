# Empty dependencies file for bench_fig13c_vary_bw.
# This may be replaced when dependencies are built.
