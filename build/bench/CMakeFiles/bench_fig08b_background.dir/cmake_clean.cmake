file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08b_background.dir/bench_fig08b_background.cc.o"
  "CMakeFiles/bench_fig08b_background.dir/bench_fig08b_background.cc.o.d"
  "bench_fig08b_background"
  "bench_fig08b_background.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08b_background.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
