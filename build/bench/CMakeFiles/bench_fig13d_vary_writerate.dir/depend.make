# Empty dependencies file for bench_fig13d_vary_writerate.
# This may be replaced when dependencies are built.
