file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13d_vary_writerate.dir/bench_fig13d_vary_writerate.cc.o"
  "CMakeFiles/bench_fig13d_vary_writerate.dir/bench_fig13d_vary_writerate.cc.o.d"
  "bench_fig13d_vary_writerate"
  "bench_fig13d_vary_writerate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13d_vary_writerate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
