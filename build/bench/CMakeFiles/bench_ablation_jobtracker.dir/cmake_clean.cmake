file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_jobtracker.dir/bench_ablation_jobtracker.cc.o"
  "CMakeFiles/bench_ablation_jobtracker.dir/bench_ablation_jobtracker.cc.o.d"
  "bench_ablation_jobtracker"
  "bench_ablation_jobtracker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_jobtracker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
