# Empty compiler generated dependencies file for bench_ablation_jobtracker.
# This may be replaced when dependencies are built.
