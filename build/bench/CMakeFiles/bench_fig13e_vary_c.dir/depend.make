# Empty dependencies file for bench_fig13e_vary_c.
# This may be replaced when dependencies are built.
