# Empty compiler generated dependencies file for bench_fig13a_vary_k.
# This may be replaced when dependencies are built.
