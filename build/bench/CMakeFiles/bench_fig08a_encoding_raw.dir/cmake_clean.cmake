file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08a_encoding_raw.dir/bench_fig08a_encoding_raw.cc.o"
  "CMakeFiles/bench_fig08a_encoding_raw.dir/bench_fig08a_encoding_raw.cc.o.d"
  "bench_fig08a_encoding_raw"
  "bench_fig08a_encoding_raw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08a_encoding_raw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
