# Empty dependencies file for bench_fig08a_encoding_raw.
# This may be replaced when dependencies are built.
