file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_violation.dir/bench_fig03_violation.cc.o"
  "CMakeFiles/bench_fig03_violation.dir/bench_fig03_violation.cc.o.d"
  "bench_fig03_violation"
  "bench_fig03_violation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_violation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
