# Empty dependencies file for bench_fig03_violation.
# This may be replaced when dependencies are built.
