# Empty compiler generated dependencies file for bench_fig13f_vary_replicas.
# This may be replaced when dependencies are built.
