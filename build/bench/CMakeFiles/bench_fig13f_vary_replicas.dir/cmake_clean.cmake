file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13f_vary_replicas.dir/bench_fig13f_vary_replicas.cc.o"
  "CMakeFiles/bench_fig13f_vary_replicas.dir/bench_fig13f_vary_replicas.cc.o.d"
  "bench_fig13f_vary_replicas"
  "bench_fig13f_vary_replicas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13f_vary_replicas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
