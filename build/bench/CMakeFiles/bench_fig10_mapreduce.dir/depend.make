# Empty dependencies file for bench_fig10_mapreduce.
# This may be replaced when dependencies are built.
