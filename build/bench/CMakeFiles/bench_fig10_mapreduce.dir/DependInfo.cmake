
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig10_mapreduce.cc" "bench/CMakeFiles/bench_fig10_mapreduce.dir/bench_fig10_mapreduce.cc.o" "gcc" "bench/CMakeFiles/bench_fig10_mapreduce.dir/bench_fig10_mapreduce.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mapred/CMakeFiles/ear_mapred.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ear_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/ear_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ear_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/ear_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ear_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
