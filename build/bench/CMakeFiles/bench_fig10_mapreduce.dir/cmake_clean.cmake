file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_mapreduce.dir/bench_fig10_mapreduce.cc.o"
  "CMakeFiles/bench_fig10_mapreduce.dir/bench_fig10_mapreduce.cc.o.d"
  "bench_fig10_mapreduce"
  "bench_fig10_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
