# Empty dependencies file for bench_theorem1_iterations.
# This may be replaced when dependencies are built.
