file(REMOVE_RECURSE
  "CMakeFiles/bench_theorem1_iterations.dir/bench_theorem1_iterations.cc.o"
  "CMakeFiles/bench_theorem1_iterations.dir/bench_theorem1_iterations.cc.o.d"
  "bench_theorem1_iterations"
  "bench_theorem1_iterations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem1_iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
