# Empty dependencies file for bench_fig09_write_impact.
# This may be replaced when dependencies are built.
