# Empty dependencies file for bench_ext_writepath.
# This may be replaced when dependencies are built.
