file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_writepath.dir/bench_ext_writepath.cc.o"
  "CMakeFiles/bench_ext_writepath.dir/bench_ext_writepath.cc.o.d"
  "bench_ext_writepath"
  "bench_ext_writepath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_writepath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
