# Empty dependencies file for bench_fig15_read_balance.
# This may be replaced when dependencies are built.
