file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ear.dir/bench_ablation_ear.cc.o"
  "CMakeFiles/bench_ablation_ear.dir/bench_ablation_ear.cc.o.d"
  "bench_ablation_ear"
  "bench_ablation_ear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
