# Empty dependencies file for bench_ablation_ear.
# This may be replaced when dependencies are built.
