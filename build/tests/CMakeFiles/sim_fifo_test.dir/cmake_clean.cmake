file(REMOVE_RECURSE
  "CMakeFiles/sim_fifo_test.dir/sim_fifo_test.cc.o"
  "CMakeFiles/sim_fifo_test.dir/sim_fifo_test.cc.o.d"
  "sim_fifo_test"
  "sim_fifo_test.pdb"
  "sim_fifo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_fifo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
