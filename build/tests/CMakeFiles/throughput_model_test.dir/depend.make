# Empty dependencies file for throughput_model_test.
# This may be replaced when dependencies are built.
