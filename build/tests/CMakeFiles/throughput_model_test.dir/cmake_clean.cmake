file(REMOVE_RECURSE
  "CMakeFiles/throughput_model_test.dir/throughput_model_test.cc.o"
  "CMakeFiles/throughput_model_test.dir/throughput_model_test.cc.o.d"
  "throughput_model_test"
  "throughput_model_test.pdb"
  "throughput_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/throughput_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
