# Empty compiler generated dependencies file for cfs_test.
# This may be replaced when dependencies are built.
