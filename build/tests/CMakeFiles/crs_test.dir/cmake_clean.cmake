file(REMOVE_RECURSE
  "CMakeFiles/crs_test.dir/crs_test.cc.o"
  "CMakeFiles/crs_test.dir/crs_test.cc.o.d"
  "crs_test"
  "crs_test.pdb"
  "crs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
