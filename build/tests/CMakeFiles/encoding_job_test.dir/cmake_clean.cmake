file(REMOVE_RECURSE
  "CMakeFiles/encoding_job_test.dir/encoding_job_test.cc.o"
  "CMakeFiles/encoding_job_test.dir/encoding_job_test.cc.o.d"
  "encoding_job_test"
  "encoding_job_test.pdb"
  "encoding_job_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encoding_job_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
