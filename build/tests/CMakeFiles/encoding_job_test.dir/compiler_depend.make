# Empty compiler generated dependencies file for encoding_job_test.
# This may be replaced when dependencies are built.
