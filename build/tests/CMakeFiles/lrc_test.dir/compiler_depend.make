# Empty compiler generated dependencies file for lrc_test.
# This may be replaced when dependencies are built.
