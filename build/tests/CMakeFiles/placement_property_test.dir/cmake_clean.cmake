file(REMOVE_RECURSE
  "CMakeFiles/placement_property_test.dir/placement_property_test.cc.o"
  "CMakeFiles/placement_property_test.dir/placement_property_test.cc.o.d"
  "placement_property_test"
  "placement_property_test.pdb"
  "placement_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/placement_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
