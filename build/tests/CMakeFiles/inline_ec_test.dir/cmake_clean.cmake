file(REMOVE_RECURSE
  "CMakeFiles/inline_ec_test.dir/inline_ec_test.cc.o"
  "CMakeFiles/inline_ec_test.dir/inline_ec_test.cc.o.d"
  "inline_ec_test"
  "inline_ec_test.pdb"
  "inline_ec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inline_ec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
