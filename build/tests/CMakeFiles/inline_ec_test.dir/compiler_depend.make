# Empty compiler generated dependencies file for inline_ec_test.
# This may be replaced when dependencies are built.
