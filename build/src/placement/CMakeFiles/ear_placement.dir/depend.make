# Empty dependencies file for ear_placement.
# This may be replaced when dependencies are built.
