
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/placement/ear.cc" "src/placement/CMakeFiles/ear_placement.dir/ear.cc.o" "gcc" "src/placement/CMakeFiles/ear_placement.dir/ear.cc.o.d"
  "/root/repo/src/placement/monitor.cc" "src/placement/CMakeFiles/ear_placement.dir/monitor.cc.o" "gcc" "src/placement/CMakeFiles/ear_placement.dir/monitor.cc.o.d"
  "/root/repo/src/placement/policy.cc" "src/placement/CMakeFiles/ear_placement.dir/policy.cc.o" "gcc" "src/placement/CMakeFiles/ear_placement.dir/policy.cc.o.d"
  "/root/repo/src/placement/random_replication.cc" "src/placement/CMakeFiles/ear_placement.dir/random_replication.cc.o" "gcc" "src/placement/CMakeFiles/ear_placement.dir/random_replication.cc.o.d"
  "/root/repo/src/placement/replica_layout.cc" "src/placement/CMakeFiles/ear_placement.dir/replica_layout.cc.o" "gcc" "src/placement/CMakeFiles/ear_placement.dir/replica_layout.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/ear_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/ear_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ear_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
