file(REMOVE_RECURSE
  "libear_placement.a"
)
