file(REMOVE_RECURSE
  "CMakeFiles/ear_placement.dir/ear.cc.o"
  "CMakeFiles/ear_placement.dir/ear.cc.o.d"
  "CMakeFiles/ear_placement.dir/monitor.cc.o"
  "CMakeFiles/ear_placement.dir/monitor.cc.o.d"
  "CMakeFiles/ear_placement.dir/policy.cc.o"
  "CMakeFiles/ear_placement.dir/policy.cc.o.d"
  "CMakeFiles/ear_placement.dir/random_replication.cc.o"
  "CMakeFiles/ear_placement.dir/random_replication.cc.o.d"
  "CMakeFiles/ear_placement.dir/replica_layout.cc.o"
  "CMakeFiles/ear_placement.dir/replica_layout.cc.o.d"
  "libear_placement.a"
  "libear_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ear_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
