
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapred/encoding_job.cc" "src/mapred/CMakeFiles/ear_mapred.dir/encoding_job.cc.o" "gcc" "src/mapred/CMakeFiles/ear_mapred.dir/encoding_job.cc.o.d"
  "/root/repo/src/mapred/mapreduce.cc" "src/mapred/CMakeFiles/ear_mapred.dir/mapreduce.cc.o" "gcc" "src/mapred/CMakeFiles/ear_mapred.dir/mapreduce.cc.o.d"
  "/root/repo/src/mapred/swim.cc" "src/mapred/CMakeFiles/ear_mapred.dir/swim.cc.o" "gcc" "src/mapred/CMakeFiles/ear_mapred.dir/swim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ear_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/ear_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ear_common.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/ear_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ear_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
