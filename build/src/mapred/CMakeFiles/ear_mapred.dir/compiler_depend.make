# Empty compiler generated dependencies file for ear_mapred.
# This may be replaced when dependencies are built.
