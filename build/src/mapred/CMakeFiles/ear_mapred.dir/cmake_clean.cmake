file(REMOVE_RECURSE
  "CMakeFiles/ear_mapred.dir/encoding_job.cc.o"
  "CMakeFiles/ear_mapred.dir/encoding_job.cc.o.d"
  "CMakeFiles/ear_mapred.dir/mapreduce.cc.o"
  "CMakeFiles/ear_mapred.dir/mapreduce.cc.o.d"
  "CMakeFiles/ear_mapred.dir/swim.cc.o"
  "CMakeFiles/ear_mapred.dir/swim.cc.o.d"
  "libear_mapred.a"
  "libear_mapred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ear_mapred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
