file(REMOVE_RECURSE
  "libear_mapred.a"
)
