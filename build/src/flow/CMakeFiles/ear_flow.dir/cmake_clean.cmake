file(REMOVE_RECURSE
  "CMakeFiles/ear_flow.dir/maxflow.cc.o"
  "CMakeFiles/ear_flow.dir/maxflow.cc.o.d"
  "libear_flow.a"
  "libear_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ear_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
