file(REMOVE_RECURSE
  "libear_flow.a"
)
