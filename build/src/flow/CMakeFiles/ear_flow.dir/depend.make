# Empty dependencies file for ear_flow.
# This may be replaced when dependencies are built.
