# Empty compiler generated dependencies file for ear_topology.
# This may be replaced when dependencies are built.
