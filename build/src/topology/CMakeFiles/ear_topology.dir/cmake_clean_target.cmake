file(REMOVE_RECURSE
  "libear_topology.a"
)
