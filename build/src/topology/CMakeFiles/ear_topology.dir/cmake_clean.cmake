file(REMOVE_RECURSE
  "CMakeFiles/ear_topology.dir/topology.cc.o"
  "CMakeFiles/ear_topology.dir/topology.cc.o.d"
  "libear_topology.a"
  "libear_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ear_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
