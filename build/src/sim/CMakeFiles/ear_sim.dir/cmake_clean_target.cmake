file(REMOVE_RECURSE
  "libear_sim.a"
)
