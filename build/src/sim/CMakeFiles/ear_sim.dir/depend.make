# Empty dependencies file for ear_sim.
# This may be replaced when dependencies are built.
