file(REMOVE_RECURSE
  "CMakeFiles/ear_sim.dir/cluster.cc.o"
  "CMakeFiles/ear_sim.dir/cluster.cc.o.d"
  "CMakeFiles/ear_sim.dir/engine.cc.o"
  "CMakeFiles/ear_sim.dir/engine.cc.o.d"
  "CMakeFiles/ear_sim.dir/metrics.cc.o"
  "CMakeFiles/ear_sim.dir/metrics.cc.o.d"
  "CMakeFiles/ear_sim.dir/network.cc.o"
  "CMakeFiles/ear_sim.dir/network.cc.o.d"
  "libear_sim.a"
  "libear_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ear_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
