
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/erasure/crs.cc" "src/erasure/CMakeFiles/ear_erasure.dir/crs.cc.o" "gcc" "src/erasure/CMakeFiles/ear_erasure.dir/crs.cc.o.d"
  "/root/repo/src/erasure/lrc.cc" "src/erasure/CMakeFiles/ear_erasure.dir/lrc.cc.o" "gcc" "src/erasure/CMakeFiles/ear_erasure.dir/lrc.cc.o.d"
  "/root/repo/src/erasure/matrix.cc" "src/erasure/CMakeFiles/ear_erasure.dir/matrix.cc.o" "gcc" "src/erasure/CMakeFiles/ear_erasure.dir/matrix.cc.o.d"
  "/root/repo/src/erasure/rs.cc" "src/erasure/CMakeFiles/ear_erasure.dir/rs.cc.o" "gcc" "src/erasure/CMakeFiles/ear_erasure.dir/rs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gf256/CMakeFiles/ear_gf256.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
