file(REMOVE_RECURSE
  "CMakeFiles/ear_erasure.dir/crs.cc.o"
  "CMakeFiles/ear_erasure.dir/crs.cc.o.d"
  "CMakeFiles/ear_erasure.dir/lrc.cc.o"
  "CMakeFiles/ear_erasure.dir/lrc.cc.o.d"
  "CMakeFiles/ear_erasure.dir/matrix.cc.o"
  "CMakeFiles/ear_erasure.dir/matrix.cc.o.d"
  "CMakeFiles/ear_erasure.dir/rs.cc.o"
  "CMakeFiles/ear_erasure.dir/rs.cc.o.d"
  "libear_erasure.a"
  "libear_erasure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ear_erasure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
