# Empty compiler generated dependencies file for ear_erasure.
# This may be replaced when dependencies are built.
