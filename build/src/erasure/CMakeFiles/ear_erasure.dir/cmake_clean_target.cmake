file(REMOVE_RECURSE
  "libear_erasure.a"
)
