# Empty dependencies file for ear_analysis.
# This may be replaced when dependencies are built.
