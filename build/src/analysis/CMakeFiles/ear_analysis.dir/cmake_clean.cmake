file(REMOVE_RECURSE
  "CMakeFiles/ear_analysis.dir/availability.cc.o"
  "CMakeFiles/ear_analysis.dir/availability.cc.o.d"
  "CMakeFiles/ear_analysis.dir/balance.cc.o"
  "CMakeFiles/ear_analysis.dir/balance.cc.o.d"
  "CMakeFiles/ear_analysis.dir/throughput_model.cc.o"
  "CMakeFiles/ear_analysis.dir/throughput_model.cc.o.d"
  "libear_analysis.a"
  "libear_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ear_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
