file(REMOVE_RECURSE
  "libear_analysis.a"
)
