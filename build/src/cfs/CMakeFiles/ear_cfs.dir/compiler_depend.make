# Empty compiler generated dependencies file for ear_cfs.
# This may be replaced when dependencies are built.
