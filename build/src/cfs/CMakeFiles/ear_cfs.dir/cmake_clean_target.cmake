file(REMOVE_RECURSE
  "libear_cfs.a"
)
