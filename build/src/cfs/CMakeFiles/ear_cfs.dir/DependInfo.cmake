
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cfs/checkpoint.cc" "src/cfs/CMakeFiles/ear_cfs.dir/checkpoint.cc.o" "gcc" "src/cfs/CMakeFiles/ear_cfs.dir/checkpoint.cc.o.d"
  "/root/repo/src/cfs/filesystem.cc" "src/cfs/CMakeFiles/ear_cfs.dir/filesystem.cc.o" "gcc" "src/cfs/CMakeFiles/ear_cfs.dir/filesystem.cc.o.d"
  "/root/repo/src/cfs/inline_ec.cc" "src/cfs/CMakeFiles/ear_cfs.dir/inline_ec.cc.o" "gcc" "src/cfs/CMakeFiles/ear_cfs.dir/inline_ec.cc.o.d"
  "/root/repo/src/cfs/minicfs.cc" "src/cfs/CMakeFiles/ear_cfs.dir/minicfs.cc.o" "gcc" "src/cfs/CMakeFiles/ear_cfs.dir/minicfs.cc.o.d"
  "/root/repo/src/cfs/raidnode.cc" "src/cfs/CMakeFiles/ear_cfs.dir/raidnode.cc.o" "gcc" "src/cfs/CMakeFiles/ear_cfs.dir/raidnode.cc.o.d"
  "/root/repo/src/cfs/recovery.cc" "src/cfs/CMakeFiles/ear_cfs.dir/recovery.cc.o" "gcc" "src/cfs/CMakeFiles/ear_cfs.dir/recovery.cc.o.d"
  "/root/repo/src/cfs/transport.cc" "src/cfs/CMakeFiles/ear_cfs.dir/transport.cc.o" "gcc" "src/cfs/CMakeFiles/ear_cfs.dir/transport.cc.o.d"
  "/root/repo/src/cfs/workload.cc" "src/cfs/CMakeFiles/ear_cfs.dir/workload.cc.o" "gcc" "src/cfs/CMakeFiles/ear_cfs.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/placement/CMakeFiles/ear_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/erasure/CMakeFiles/ear_erasure.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ear_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ear_common.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/ear_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/gf256/CMakeFiles/ear_gf256.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
