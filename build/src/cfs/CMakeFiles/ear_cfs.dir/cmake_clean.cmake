file(REMOVE_RECURSE
  "CMakeFiles/ear_cfs.dir/checkpoint.cc.o"
  "CMakeFiles/ear_cfs.dir/checkpoint.cc.o.d"
  "CMakeFiles/ear_cfs.dir/filesystem.cc.o"
  "CMakeFiles/ear_cfs.dir/filesystem.cc.o.d"
  "CMakeFiles/ear_cfs.dir/inline_ec.cc.o"
  "CMakeFiles/ear_cfs.dir/inline_ec.cc.o.d"
  "CMakeFiles/ear_cfs.dir/minicfs.cc.o"
  "CMakeFiles/ear_cfs.dir/minicfs.cc.o.d"
  "CMakeFiles/ear_cfs.dir/raidnode.cc.o"
  "CMakeFiles/ear_cfs.dir/raidnode.cc.o.d"
  "CMakeFiles/ear_cfs.dir/recovery.cc.o"
  "CMakeFiles/ear_cfs.dir/recovery.cc.o.d"
  "CMakeFiles/ear_cfs.dir/transport.cc.o"
  "CMakeFiles/ear_cfs.dir/transport.cc.o.d"
  "CMakeFiles/ear_cfs.dir/workload.cc.o"
  "CMakeFiles/ear_cfs.dir/workload.cc.o.d"
  "libear_cfs.a"
  "libear_cfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ear_cfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
