file(REMOVE_RECURSE
  "libear_gf256.a"
)
