file(REMOVE_RECURSE
  "CMakeFiles/ear_gf256.dir/gf256.cc.o"
  "CMakeFiles/ear_gf256.dir/gf256.cc.o.d"
  "libear_gf256.a"
  "libear_gf256.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ear_gf256.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
