# Empty dependencies file for ear_gf256.
# This may be replaced when dependencies are built.
