file(REMOVE_RECURSE
  "libear_common.a"
)
