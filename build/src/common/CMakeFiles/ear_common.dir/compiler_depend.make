# Empty compiler generated dependencies file for ear_common.
# This may be replaced when dependencies are built.
