file(REMOVE_RECURSE
  "CMakeFiles/ear_common.dir/stats.cc.o"
  "CMakeFiles/ear_common.dir/stats.cc.o.d"
  "libear_common.a"
  "libear_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ear_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
