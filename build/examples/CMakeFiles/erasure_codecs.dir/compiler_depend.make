# Empty compiler generated dependencies file for erasure_codecs.
# This may be replaced when dependencies are built.
