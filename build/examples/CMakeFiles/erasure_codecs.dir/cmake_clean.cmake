file(REMOVE_RECURSE
  "CMakeFiles/erasure_codecs.dir/erasure_codecs.cpp.o"
  "CMakeFiles/erasure_codecs.dir/erasure_codecs.cpp.o.d"
  "erasure_codecs"
  "erasure_codecs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erasure_codecs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
