file(REMOVE_RECURSE
  "CMakeFiles/cluster_simulation.dir/cluster_simulation.cpp.o"
  "CMakeFiles/cluster_simulation.dir/cluster_simulation.cpp.o.d"
  "cluster_simulation"
  "cluster_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
