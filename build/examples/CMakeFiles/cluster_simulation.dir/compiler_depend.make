# Empty compiler generated dependencies file for cluster_simulation.
# This may be replaced when dependencies are built.
