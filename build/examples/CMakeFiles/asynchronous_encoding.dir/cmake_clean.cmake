file(REMOVE_RECURSE
  "CMakeFiles/asynchronous_encoding.dir/asynchronous_encoding.cpp.o"
  "CMakeFiles/asynchronous_encoding.dir/asynchronous_encoding.cpp.o.d"
  "asynchronous_encoding"
  "asynchronous_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asynchronous_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
