# Empty dependencies file for asynchronous_encoding.
# This may be replaced when dependencies are built.
