#include "erasure/matrix.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gf256/gf256.h"

namespace ear::erasure {
namespace {

TEST(Matrix, IdentityProperties) {
  const Matrix id = Matrix::identity(5);
  EXPECT_TRUE(id.is_identity());
  EXPECT_EQ(id.multiply(id), id);
  EXPECT_EQ(id.inverted(), id);
}

TEST(Matrix, VandermondeShape) {
  const Matrix v = Matrix::vandermonde(6, 4);
  EXPECT_EQ(v.rows(), 6);
  EXPECT_EQ(v.cols(), 4);
  // Row 0 evaluates at alpha^0 = 1: all entries 1.
  for (int c = 0; c < 4; ++c) EXPECT_EQ(v.at(0, c), 1);
  // Column 0 is x^0: all entries 1.
  for (int r = 0; r < 6; ++r) EXPECT_EQ(v.at(r, 0), 1);
}

TEST(Matrix, AnyKRowsOfVandermondeAreInvertible) {
  const int n = 12, k = 8;
  const Matrix v = Matrix::vandermonde(n, k);
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const auto rows64 =
        rng.sample_without_replacement(static_cast<size_t>(n),
                                       static_cast<size_t>(k));
    std::vector<int> rows(rows64.begin(), rows64.end());
    const Matrix sub = v.select_rows(rows);
    const Matrix inv = sub.inverted();
    ASSERT_NE(inv.rows(), 0) << "singular k-row subset";
    EXPECT_TRUE(sub.multiply(inv).is_identity());
  }
}

TEST(Matrix, EverySquareSubmatrixOfCauchyIsInvertible) {
  const Matrix c = Matrix::cauchy(4, 10);
  Rng rng(12);
  for (int trial = 0; trial < 200; ++trial) {
    const int size = static_cast<int>(rng.uniform(4)) + 1;
    const auto rows64 = rng.sample_without_replacement(4, static_cast<size_t>(size));
    const auto cols64 = rng.sample_without_replacement(10, static_cast<size_t>(size));
    Matrix sub(size, size);
    for (int r = 0; r < size; ++r) {
      for (int col = 0; col < size; ++col) {
        sub.at(r, col) = c.at(static_cast<int>(rows64[static_cast<size_t>(r)]),
                              static_cast<int>(cols64[static_cast<size_t>(col)]));
      }
    }
    EXPECT_NE(sub.inverted().rows(), 0);
  }
}

TEST(Matrix, SingularMatrixReturnsEmptyInverse) {
  Matrix m(3, 3);
  // Two identical rows -> singular.
  for (int c = 0; c < 3; ++c) {
    m.at(0, c) = static_cast<uint8_t>(c + 1);
    m.at(1, c) = static_cast<uint8_t>(c + 1);
    m.at(2, c) = static_cast<uint8_t>(7 * c + 3);
  }
  EXPECT_EQ(m.inverted().rows(), 0);
}

TEST(Matrix, MultiplyAgainstManualComputation) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  uint8_t v = 1;
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 3; ++c) a.at(r, c) = v++;
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 2; ++c) b.at(r, c) = v++;
  const Matrix prod = a.multiply(b);
  ASSERT_EQ(prod.rows(), 2);
  ASSERT_EQ(prod.cols(), 2);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      uint8_t acc = 0;
      for (int t = 0; t < 3; ++t) {
        acc = gf::add(acc, gf::mul(a.at(r, t), b.at(t, c)));
      }
      EXPECT_EQ(prod.at(r, c), acc);
    }
  }
}

TEST(Matrix, InverseRoundTripRandomMatrices) {
  Rng rng(13);
  int invertible = 0;
  for (int trial = 0; trial < 100; ++trial) {
    Matrix m(6, 6);
    for (int r = 0; r < 6; ++r) {
      for (int c = 0; c < 6; ++c) {
        m.at(r, c) = static_cast<uint8_t>(rng.uniform(256));
      }
    }
    const Matrix inv = m.inverted();
    if (inv.rows() == 0) continue;
    ++invertible;
    EXPECT_TRUE(m.multiply(inv).is_identity());
    EXPECT_TRUE(inv.multiply(m).is_identity());
  }
  EXPECT_GT(invertible, 80) << "random GF(256) matrices are rarely singular";
}

TEST(Matrix, SelectRowsPreservesContent) {
  const Matrix v = Matrix::vandermonde(5, 3);
  const Matrix sel = v.select_rows({4, 0, 2});
  EXPECT_EQ(sel.rows(), 3);
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(sel.at(0, c), v.at(4, c));
    EXPECT_EQ(sel.at(1, c), v.at(0, c));
    EXPECT_EQ(sel.at(2, c), v.at(2, c));
  }
}

}  // namespace
}  // namespace ear::erasure
