#include <gtest/gtest.h>

#include "mapred/mapreduce.h"
#include "mapred/swim.h"
#include "placement/policy.h"
#include "sim/network.h"

namespace ear::mapred {
namespace {

struct World {
  Topology topo{8, 4};
  sim::Engine engine;
  sim::Network network;
  std::unique_ptr<PlacementPolicy> policy;

  explicit World(bool use_ear, uint64_t seed = 3)
      : network(engine, topo, sim::NetConfig{}) {
    PlacementConfig pc;
    pc.code = CodeParams{8, 6};
    pc.replication = 3;
    policy = use_ear ? make_encoding_aware_replication(topo, pc, seed)
                     : make_random_replication(topo, pc, seed);
  }
};

MapReduceConfig small_mr() {
  MapReduceConfig cfg;
  cfg.block_size = 16_MB;
  cfg.map_slots_per_node = 2;
  cfg.reducers_per_job = 2;
  return cfg;
}

TEST(MapReduce, SingleMapOnlyJobCompletes) {
  World w(true);
  MapReduceCluster mr(w.engine, w.network, *w.policy, small_mr());
  JobSpec spec;
  spec.id = 0;
  spec.submit_time = 1.0;
  spec.input_size = 32_MB;  // 2 map tasks
  spec.shuffle_size = 0;
  spec.output_size = 16_MB;
  mr.submit(spec);
  w.engine.run();
  ASSERT_EQ(mr.results().size(), 1u);
  const JobResult& r = mr.results()[0];
  EXPECT_EQ(r.map_tasks, 2);
  EXPECT_GT(r.finish_time, r.submit_time);
}

TEST(MapReduce, ShuffleJobCompletes) {
  World w(true);
  MapReduceCluster mr(w.engine, w.network, *w.policy, small_mr());
  JobSpec spec;
  spec.id = 1;
  spec.submit_time = 0.0;
  spec.input_size = 64_MB;
  spec.shuffle_size = 32_MB;
  spec.output_size = 32_MB;
  mr.submit(spec);
  w.engine.run();
  ASSERT_EQ(mr.results().size(), 1u);
  EXPECT_EQ(mr.results()[0].map_tasks, 4);
}

TEST(MapReduce, MostMapsAreDataLocalWhenClusterIsIdle) {
  World w(false);
  MapReduceCluster mr(w.engine, w.network, *w.policy, small_mr());
  JobSpec spec;
  spec.id = 2;
  spec.submit_time = 0.0;
  spec.input_size = 20 * 16_MB;
  spec.output_size = 16_MB;
  mr.submit(spec);
  w.engine.run();
  ASSERT_EQ(mr.results().size(), 1u);
  const JobResult& r = mr.results()[0];
  EXPECT_EQ(r.data_local_maps + r.rack_local_maps + r.remote_maps,
            r.map_tasks);
  // With 3 replicas and 2 slots on each of 32 nodes, nearly every map should
  // land on a replica holder.
  EXPECT_GT(r.data_local_maps, r.map_tasks / 2);
}

TEST(MapReduce, ConcurrentJobsAllFinish) {
  World w(true);
  MapReduceCluster mr(w.engine, w.network, *w.policy, small_mr());
  for (int i = 0; i < 5; ++i) {
    JobSpec spec;
    spec.id = i;
    spec.submit_time = i * 0.5;
    spec.input_size = 4 * 16_MB;
    spec.shuffle_size = (i % 2 == 0) ? 0 : 16_MB;
    spec.output_size = 16_MB;
    mr.submit(spec);
  }
  w.engine.run();
  EXPECT_EQ(mr.results().size(), 5u);
  EXPECT_EQ(mr.total_map_tasks(), 20);
}

TEST(MapReduce, ZeroOutputJobFinishesAtShuffleEnd) {
  World w(true);
  MapReduceCluster mr(w.engine, w.network, *w.policy, small_mr());
  JobSpec spec;
  spec.id = 9;
  spec.submit_time = 0.0;
  spec.input_size = 16_MB;
  spec.shuffle_size = 0;
  spec.output_size = 0;
  mr.submit(spec);
  w.engine.run();
  ASSERT_EQ(mr.results().size(), 1u);
  EXPECT_GT(mr.results()[0].finish_time, 0.0);
}

TEST(Swim, GeneratesRequestedJobCount) {
  SwimConfig cfg;
  cfg.jobs = 50;
  const auto jobs = generate_swim_workload(cfg);
  ASSERT_EQ(jobs.size(), 50u);
  for (size_t i = 1; i < jobs.size(); ++i) {
    EXPECT_GE(jobs[i].submit_time, jobs[i - 1].submit_time);
  }
}

TEST(Swim, ShapesAreHeavyTailedAndMixed) {
  SwimConfig cfg;
  cfg.jobs = 500;
  cfg.seed = 9;
  const auto jobs = generate_swim_workload(cfg);
  int map_only = 0;
  Bytes min_input = jobs[0].input_size, max_input = jobs[0].input_size;
  for (const auto& j : jobs) {
    EXPECT_GE(j.input_size, cfg.block_size);
    if (j.shuffle_size == 0) ++map_only;
    min_input = std::min(min_input, j.input_size);
    max_input = std::max(max_input, j.input_size);
  }
  // ~60% map-only.
  EXPECT_GT(map_only, 250);
  EXPECT_LT(map_only, 350);
  // Heavy tail: largest job at least 10x the smallest.
  EXPECT_GE(max_input, 10 * min_input);
}

TEST(Swim, DeterministicPerSeed) {
  SwimConfig cfg;
  cfg.jobs = 20;
  const auto a = generate_swim_workload(cfg);
  const auto b = generate_swim_workload(cfg);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].input_size, b[i].input_size);
    EXPECT_DOUBLE_EQ(a[i].submit_time, b[i].submit_time);
  }
}

TEST(MapReduce, RrAndEarJobRuntimesAreComparable) {
  // Experiment A.3's conclusion: EAR does not hurt MapReduce on replicated
  // data.  Total completion time within 20% of each other.
  double makespan[2] = {0, 0};
  for (const bool use_ear : {false, true}) {
    World w(use_ear, 17);
    MapReduceCluster mr(w.engine, w.network, *w.policy, small_mr());
    SwimConfig swim;
    swim.jobs = 20;
    swim.block_size = 16_MB;
    swim.max_input_blocks = 16;
    for (const auto& job : generate_swim_workload(swim)) mr.submit(job);
    w.engine.run();
    EXPECT_EQ(mr.results().size(), 20u);
    for (const auto& r : mr.results()) {
      makespan[use_ear ? 1 : 0] =
          std::max(makespan[use_ear ? 1 : 0], r.finish_time);
    }
  }
  EXPECT_NEAR(makespan[0], makespan[1], makespan[0] * 0.2);
}

}  // namespace
}  // namespace ear::mapred
