#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "cfs/minicfs.h"
#include "common/rng.h"

namespace ear::cfs {
namespace {

CfsConfig inline_config() {
  CfsConfig cfg;
  cfg.racks = 10;
  cfg.nodes_per_rack = 4;
  cfg.placement.code = CodeParams{8, 6};
  cfg.placement.replication = 3;
  cfg.use_ear = true;
  cfg.block_size = 16_KB;
  cfg.seed = 61;
  return cfg;
}

std::unique_ptr<MiniCfs> make_cfs(const CfsConfig& cfg) {
  const Topology topo(cfg.racks, cfg.nodes_per_rack);
  return std::make_unique<MiniCfs>(cfg,
                                   std::make_unique<InstantTransport>(topo));
}

std::vector<std::vector<uint8_t>> random_stripe(const CfsConfig& cfg,
                                                Rng& rng) {
  std::vector<std::vector<uint8_t>> data(
      static_cast<size_t>(cfg.placement.code.k));
  for (auto& block : data) {
    block.resize(static_cast<size_t>(cfg.block_size));
    for (auto& b : block) b = static_cast<uint8_t>(rng.uniform(256));
  }
  return data;
}

std::vector<std::span<const uint8_t>> views(
    const std::vector<std::vector<uint8_t>>& blocks) {
  return {blocks.begin(), blocks.end()};
}

TEST(InlineEc, WriteAndReadBack) {
  const auto cfg = inline_config();
  auto cfs = make_cfs(cfg);
  Rng rng(1);
  const auto data = random_stripe(cfg, rng);
  const StripeId stripe = cfs->write_encoded_stripe(views(data), NodeId{0});

  EXPECT_TRUE(cfs->is_encoded(stripe));
  const StripeMeta meta = cfs->stripe_meta(stripe);
  ASSERT_EQ(meta.data_blocks.size(), 6u);
  ASSERT_EQ(meta.parity_blocks.size(), 2u);
  for (size_t i = 0; i < meta.data_blocks.size(); ++i) {
    EXPECT_EQ(cfs->read_block(meta.data_blocks[i], 0), data[i]);
  }
}

TEST(InlineEc, PlacementSpansNDistinctRacks) {
  const auto cfg = inline_config();
  auto cfs = make_cfs(cfg);
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const auto data = random_stripe(cfg, rng);
    const StripeId stripe = cfs->write_encoded_stripe(views(data));
    const StripeMeta meta = cfs->stripe_meta(stripe);
    std::set<RackId> racks;
    std::set<NodeId> nodes;
    for (const BlockId b : meta.data_blocks) {
      const NodeId n = cfs->block_locations(b)[0];
      nodes.insert(n);
      racks.insert(cfs->topology().rack_of(n));
    }
    for (const BlockId b : meta.parity_blocks) {
      const NodeId n = cfs->block_locations(b)[0];
      nodes.insert(n);
      racks.insert(cfs->topology().rack_of(n));
    }
    EXPECT_EQ(nodes.size(), 8u);
    EXPECT_EQ(racks.size(), 8u);
  }
}

TEST(InlineEc, DegradedReadAfterFailure) {
  const auto cfg = inline_config();
  auto cfs = make_cfs(cfg);
  Rng rng(3);
  const auto data = random_stripe(cfg, rng);
  const StripeId stripe = cfs->write_encoded_stripe(views(data));
  const StripeMeta meta = cfs->stripe_meta(stripe);
  const BlockId victim = meta.data_blocks[1];
  cfs->kill_node(cfs->block_locations(victim)[0]);
  NodeId reader = 0;
  while (!cfs->node_alive(reader)) ++reader;
  EXPECT_EQ(cfs->read_block(victim, reader), data[1]);
}

TEST(InlineEc, StripeIdsDoNotCollideWithAsyncPath) {
  const auto cfg = inline_config();
  auto cfs = make_cfs(cfg);
  Rng rng(4);
  // Fill one async stripe...
  std::vector<uint8_t> block(static_cast<size_t>(cfg.block_size), 0x11);
  while (cfs->sealed_stripes().empty()) cfs->write_block(block);
  const StripeId async_stripe = cfs->sealed_stripes()[0];
  // ...and one inline stripe.
  const auto data = random_stripe(cfg, rng);
  const StripeId inline_stripe = cfs->write_encoded_stripe(views(data));
  EXPECT_NE(async_stripe, inline_stripe);
  EXPECT_LT(inline_stripe, 0);
  // Both remain individually addressable.
  cfs->encode_stripe(async_stripe);
  EXPECT_TRUE(cfs->is_encoded(async_stripe));
  EXPECT_TRUE(cfs->is_encoded(inline_stripe));
}

TEST(InlineEc, RejectsBadInput) {
  const auto cfg = inline_config();
  auto cfs = make_cfs(cfg);
  Rng rng(5);
  auto data = random_stripe(cfg, rng);
  data.pop_back();  // k-1 blocks
  EXPECT_THROW(cfs->write_encoded_stripe(views(data)), std::invalid_argument);

  auto bad_size = random_stripe(cfg, rng);
  bad_size[0].resize(10);
  EXPECT_THROW(cfs->write_encoded_stripe(views(bad_size)),
               std::invalid_argument);
}

TEST(InlineEc, RecoveryHandlesInlineStripes) {
  const auto cfg = inline_config();
  auto cfs = make_cfs(cfg);
  Rng rng(6);
  const auto data = random_stripe(cfg, rng);
  const StripeId stripe = cfs->write_encoded_stripe(views(data));
  const StripeMeta meta = cfs->stripe_meta(stripe);
  cfs->kill_node(cfs->block_locations(meta.data_blocks[0])[0]);
  const auto report = cfs->restore_redundancy();
  EXPECT_EQ(report.repaired, 1);
  EXPECT_EQ(report.unrecoverable, 0);
}

}  // namespace
}  // namespace ear::cfs
