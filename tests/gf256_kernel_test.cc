// Kernel-equivalence layer for the runtime-dispatched GF(2^8) kernels:
// every compiled kernel (scalar, ssse3, avx2, neon — whatever this build
// and CPU provide) must be byte-identical to the scalar reference for
// every coefficient, the ISSUE-pinned length set, and every src/dst
// misalignment, plus race-free dispatch init and loud failure on unknown
// EAR_GF_KERNEL values.  Each TEST runs in its own process (ctest runs
// gtest cases individually), so the dispatch race test really is a first
// touch under TSan.
#include "gf256/kernel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "gf256/gf256.h"

namespace ear::gf {
namespace {

// Declared first so it is the first touch of kernel() when this binary's
// cases run in declaration order: N threads race the dispatch init and must
// all observe the same kernel (the magic static makes this race-free; TSan
// verifies).
TEST(Gf256Kernel, DispatchFirstTouchIsRaceFree) {
  constexpr int kThreads = 8;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<const GfKernel*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
      }
      seen[static_cast<size_t>(t)] = &kernel();
    });
  }
  while (ready.load() < kThreads) {
  }
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<size_t>(t)], seen[0]);
  }
  ASSERT_NE(seen[0], nullptr);
  EXPECT_STRNE(seen[0]->name, "");
}

TEST(Gf256Kernel, UnknownKernelFailsLoudlyWithSupportedList) {
  try {
    resolve_kernel("pentium");
    FAIL() << "resolve_kernel must reject unknown kernels";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("EAR_GF_KERNEL"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'pentium'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("supported:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("auto"), std::string::npos) << msg;
    EXPECT_NE(msg.find("scalar"), std::string::npos) << msg;
  }
}

TEST(Gf256Kernel, ResolveAutoAndNamesAndOverride) {
  const auto available = compiled_kernels();
  ASSERT_FALSE(available.empty());
  EXPECT_STREQ(available.back()->name, "scalar") << "scalar always compiled";
  EXPECT_EQ(&resolve_kernel("auto"), available.front());
  EXPECT_EQ(&resolve_kernel(""), available.front());
  for (const GfKernel* k : available) {
    EXPECT_EQ(&resolve_kernel(k->name), k);
  }
  // The override redirects the span-level API immediately and restores on
  // scope exit.
  {
    KernelOverride force_scalar("scalar");
    EXPECT_STREQ(kernel().name, "scalar");
    std::vector<uint8_t> src{0x12, 0x34}, dst{0x56, 0x78};
    mul_add(0x53, src, dst);
    EXPECT_EQ(dst[0], 0x56 ^ mul(0x53, 0x12));
  }
  // Back to the environment-driven choice.
  const char* env = std::getenv("EAR_GF_KERNEL");
  if (env != nullptr && std::string(env) != "auto") {
    EXPECT_STREQ(kernel().name, env);
  } else {
    EXPECT_EQ(&kernel(), available.front());
  }
}

// Exhaustive 256 x 256 products: every kernel's one-byte mul path must agree
// with the scalar log/exp field.
TEST(Gf256Kernel, ExhaustiveMulAgreesWithLogExpReference) {
  for (const GfKernel* k : compiled_kernels()) {
    SCOPED_TRACE(k->name);
    for (int c = 0; c < 256; ++c) {
      for (int b = 0; b < 256; ++b) {
        const uint8_t src = static_cast<uint8_t>(b);
        uint8_t out = 0xA5;
        k->mul_assign(static_cast<uint8_t>(c), &src, &out, 1);
        ASSERT_EQ(out, mul(static_cast<uint8_t>(c), static_cast<uint8_t>(b)))
            << "c=" << c << " b=" << b;
      }
    }
  }
}

// The ISSUE-pinned sweep grid.
constexpr size_t kLens[] = {0, 1, 15, 16, 17, 31, 32, 33, 63, 64, 4096, 4097};
constexpr size_t kMaxLen = 4097;
constexpr size_t kPad = 32;  // sentinel slack before/after the window

// Offset pairs for one length: the full 16 x 16 cross product for short
// lengths, a 32-pair slice (diagonal-ish plus one fixed-src column) for the
// two page-sized lengths so the sweep stays seconds, not minutes, under
// sanitizers.
std::vector<std::pair<size_t, size_t>> offset_pairs(size_t len) {
  std::vector<std::pair<size_t, size_t>> out;
  if (len <= 64) {
    for (size_t s = 0; s < 16; ++s) {
      for (size_t d = 0; d < 16; ++d) out.emplace_back(s, d);
    }
  } else {
    for (size_t s = 0; s < 16; ++s) out.emplace_back(s, (s * 7 + 3) % 16);
    for (size_t d = 0; d < 16; ++d) out.emplace_back(5, d);
  }
  return out;
}

// Runs `op` once through the scalar reference and once through `k` on
// identically seeded buffers, then requires the *entire* destination
// buffers (sentinel padding included) to match — any out-of-window write by
// a SIMD kernel shows up as a sentinel mismatch.
template <typename Op>
void expect_op_matches_scalar(const GfKernel& scalar, const GfKernel& k, Op op,
                              uint8_t c, size_t len, size_t soff, size_t doff,
                              const std::vector<uint8_t>& src_pool,
                              const std::vector<uint8_t>& dst_pool) {
  const size_t dst_bytes = doff + len + kPad;
  std::vector<uint8_t> a(dst_pool.begin(),
                         dst_pool.begin() + static_cast<ptrdiff_t>(dst_bytes));
  std::vector<uint8_t> b = a;
  op(scalar, c, src_pool.data() + soff, a.data() + doff, len);
  op(k, c, src_pool.data() + soff, b.data() + doff, len);
  ASSERT_EQ(a, b) << "kernel=" << k.name << " c=" << int(c) << " len=" << len
                  << " soff=" << soff << " doff=" << doff;
}

template <typename Op>
void sweep_vs_scalar(Op op) {
  Rng rng(20260808);
  std::vector<uint8_t> src_pool(kMaxLen + 16), dst_pool(kMaxLen + 16 + kPad);
  for (auto& v : src_pool) v = static_cast<uint8_t>(rng.uniform(256));
  for (auto& v : dst_pool) v = static_cast<uint8_t>(rng.uniform(256));

  const auto kernels = compiled_kernels();
  const GfKernel& scalar = *kernels.back();
  for (const GfKernel* k : kernels) {
    SCOPED_TRACE(k->name);
    for (int c = 0; c < 256; ++c) {
      for (const size_t len : kLens) {
        for (const auto& [soff, doff] : offset_pairs(len)) {
          expect_op_matches_scalar(scalar, *k, op, static_cast<uint8_t>(c),
                                   len, soff, doff, src_pool, dst_pool);
          if (::testing::Test::HasFatalFailure()) return;
        }
      }
    }
  }
}

TEST(Gf256Kernel, MulAddByteIdenticalToScalarEverywhere) {
  sweep_vs_scalar([](const GfKernel& k, uint8_t c, const uint8_t* src,
                     uint8_t* dst, size_t n) { k.mul_add(c, src, dst, n); });
}

TEST(Gf256Kernel, MulAssignByteIdenticalToScalarEverywhere) {
  sweep_vs_scalar([](const GfKernel& k, uint8_t c, const uint8_t* src,
                     uint8_t* dst,
                     size_t n) { k.mul_assign(c, src, dst, n); });
}

TEST(Gf256Kernel, XorAddByteIdenticalToScalarEverywhere) {
  // xor_add has no coefficient; run the same grid once (c is ignored).
  Rng rng(77);
  std::vector<uint8_t> src_pool(kMaxLen + 16), dst_pool(kMaxLen + 16 + kPad);
  for (auto& v : src_pool) v = static_cast<uint8_t>(rng.uniform(256));
  for (auto& v : dst_pool) v = static_cast<uint8_t>(rng.uniform(256));
  const auto kernels = compiled_kernels();
  const GfKernel& scalar = *kernels.back();
  for (const GfKernel* k : kernels) {
    SCOPED_TRACE(k->name);
    for (const size_t len : kLens) {
      for (const auto& [soff, doff] : offset_pairs(len)) {
        const size_t dst_bytes = doff + len + kPad;
        std::vector<uint8_t> a(
            dst_pool.begin(),
            dst_pool.begin() + static_cast<ptrdiff_t>(dst_bytes));
        std::vector<uint8_t> b = a;
        scalar.xor_add(src_pool.data() + soff, a.data() + doff, len);
        k->xor_add(src_pool.data() + soff, b.data() + doff, len);
        ASSERT_EQ(a, b) << "len=" << len << " soff=" << soff
                        << " doff=" << doff;
      }
    }
  }
}

// mul_add_multi must equal the term-by-term scalar expansion for random
// source sets: mixed zero/one/general coefficients, ragged lengths,
// misaligned windows, both accumulate modes, and source counts that cross
// the kernels' internal batch size.
TEST(Gf256Kernel, MulAddMultiMatchesTermByTermScalar) {
  Rng rng(424242);
  constexpr size_t kSpan = 5000;
  std::vector<std::vector<uint8_t>> pools(20, std::vector<uint8_t>(kSpan));
  for (auto& pool : pools) {
    for (auto& v : pool) v = static_cast<uint8_t>(rng.uniform(256));
  }
  for (const GfKernel* k : compiled_kernels()) {
    SCOPED_TRACE(k->name);
    for (int trial = 0; trial < 400; ++trial) {
      const size_t nsrc = static_cast<size_t>(rng.uniform(20));  // 0..19
      const size_t len = static_cast<size_t>(rng.uniform(4097));
      const size_t doff = static_cast<size_t>(rng.uniform(16));
      const bool accumulate = rng.uniform(2) == 1;
      std::vector<const uint8_t*> srcs(nsrc);
      std::vector<uint8_t> coeffs(nsrc);
      for (size_t j = 0; j < nsrc; ++j) {
        const size_t soff = static_cast<size_t>(rng.uniform(16));
        srcs[j] = pools[j].data() + soff;
        // Bias toward the special coefficients 0 and 1.
        const int draw = rng.uniform(10);
        coeffs[j] = draw < 2   ? uint8_t{0}
                    : draw < 4 ? uint8_t{1}
                               : static_cast<uint8_t>(rng.uniform(256));
      }
      std::vector<uint8_t> base(doff + len + kPad);
      for (auto& v : base) v = static_cast<uint8_t>(rng.uniform(256));

      // Reference: scalar term-by-term expansion of the documented
      // semantics.
      std::vector<uint8_t> want = base;
      {
        uint8_t* dst = want.data() + doff;
        if (!accumulate) std::memset(dst, 0, len);
        for (size_t j = 0; j < nsrc; ++j) {
          detail::scalar_mul_add(coeffs[j], srcs[j], dst, len);
        }
      }
      std::vector<uint8_t> got = base;
      k->mul_add_multi(got.data() + doff, srcs.data(), coeffs.data(), nsrc,
                       len, accumulate);
      ASSERT_EQ(got, want) << "trial=" << trial << " nsrc=" << nsrc
                           << " len=" << len << " doff=" << doff
                           << " accumulate=" << accumulate;
    }
  }
}

// The span-level API must route every consumer through the active kernel:
// a scalar override and the dispatched default must produce identical
// bytes through gf::mul_add_multi.
TEST(Gf256Kernel, SpanApiMatchesAcrossOverride) {
  Rng rng(9);
  std::vector<uint8_t> s0(1000), s1(1000), base(1000);
  for (auto& v : s0) v = static_cast<uint8_t>(rng.uniform(256));
  for (auto& v : s1) v = static_cast<uint8_t>(rng.uniform(256));
  for (auto& v : base) v = static_cast<uint8_t>(rng.uniform(256));
  const std::vector<const uint8_t*> srcs{s0.data(), s1.data()};
  const std::vector<uint8_t> coeffs{0x53, 0x01};

  std::vector<uint8_t> a = base, b = base;
  mul_add_multi(srcs, coeffs, a, /*accumulate=*/true);
  {
    KernelOverride force_scalar("scalar");
    mul_add_multi(srcs, coeffs, b, /*accumulate=*/true);
  }
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace ear::gf
