#include "flow/maxflow.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace ear::flow {
namespace {

TEST(MaxFlow, SingleEdge) {
  MaxFlow mf(2);
  const int e = mf.add_edge(0, 1, 7);
  EXPECT_EQ(mf.solve(0, 1), 7);
  EXPECT_EQ(mf.edge_flow(e), 7);
  EXPECT_EQ(mf.edge_residual(e), 0);
}

TEST(MaxFlow, SeriesBottleneck) {
  MaxFlow mf(3);
  mf.add_edge(0, 1, 10);
  mf.add_edge(1, 2, 3);
  EXPECT_EQ(mf.solve(0, 2), 3);
}

TEST(MaxFlow, ParallelPaths) {
  MaxFlow mf(4);
  mf.add_edge(0, 1, 5);
  mf.add_edge(1, 3, 5);
  mf.add_edge(0, 2, 4);
  mf.add_edge(2, 3, 4);
  EXPECT_EQ(mf.solve(0, 3), 9);
}

TEST(MaxFlow, ClassicCLRSExample) {
  // CLRS figure 26.1: max flow 23.
  MaxFlow mf(6);
  mf.add_edge(0, 1, 16);
  mf.add_edge(0, 2, 13);
  mf.add_edge(1, 2, 10);
  mf.add_edge(2, 1, 4);
  mf.add_edge(1, 3, 12);
  mf.add_edge(3, 2, 9);
  mf.add_edge(2, 4, 14);
  mf.add_edge(4, 3, 7);
  mf.add_edge(3, 5, 20);
  mf.add_edge(4, 5, 4);
  EXPECT_EQ(mf.solve(0, 5), 23);
}

TEST(MaxFlow, DisconnectedSinkIsZero) {
  MaxFlow mf(4);
  mf.add_edge(0, 1, 5);
  mf.add_edge(2, 3, 5);
  EXPECT_EQ(mf.solve(0, 3), 0);
}

TEST(MaxFlow, IncrementalResolveAfterAddingEdges) {
  // EAR adds one block's edges at a time and re-solves; the returned value
  // must be the cumulative flow.
  MaxFlow mf(4);
  mf.add_edge(0, 1, 1);
  mf.add_edge(1, 3, 1);
  EXPECT_EQ(mf.solve(0, 3), 1);
  mf.add_edge(0, 2, 1);
  mf.add_edge(2, 3, 1);
  EXPECT_EQ(mf.solve(0, 3), 2);
  // Solving again without changes is idempotent.
  EXPECT_EQ(mf.solve(0, 3), 2);
}

TEST(MaxFlow, FlowConservationOnRandomGraphs) {
  Rng rng(31);
  for (int trial = 0; trial < 40; ++trial) {
    const int v = 8;
    MaxFlow mf(v);
    struct E {
      int from, to, id;
      int64_t cap;
    };
    std::vector<E> edges;
    for (int i = 0; i < 24; ++i) {
      const int from = static_cast<int>(rng.uniform(v));
      int to = static_cast<int>(rng.uniform(v));
      if (from == to) to = (to + 1) % v;
      const auto cap = static_cast<int64_t>(rng.uniform(10));
      edges.push_back({from, to, mf.add_edge(from, to, cap), cap});
    }
    const int64_t total = mf.solve(0, v - 1);

    // Conservation: for every internal vertex, inflow == outflow.
    std::vector<int64_t> net(v, 0);
    for (const E& e : edges) {
      const int64_t f = mf.edge_flow(e.id);
      ASSERT_GE(f, 0);
      ASSERT_LE(f, e.cap);
      net[e.from] -= f;
      net[e.to] += f;
    }
    EXPECT_EQ(net[0], -total);
    EXPECT_EQ(net[v - 1], total);
    for (int i = 1; i < v - 1; ++i) EXPECT_EQ(net[i], 0) << "vertex " << i;
  }
}

TEST(BipartiteMatching, PerfectMatchingFound) {
  // 3 left, 3 right, bipartite cycle: perfect matching exists.
  const std::vector<std::vector<int>> adj{{0, 1}, {1, 2}, {2, 0}};
  const auto match = maximum_bipartite_matching(3, 3, adj);
  ASSERT_EQ(match.size(), 3u);
  std::vector<int> used;
  for (int l = 0; l < 3; ++l) {
    ASSERT_NE(match[static_cast<size_t>(l)], -1);
    used.push_back(match[static_cast<size_t>(l)]);
  }
  std::sort(used.begin(), used.end());
  EXPECT_EQ(used, (std::vector<int>{0, 1, 2}));
}

TEST(BipartiteMatching, PartialMatchingWhenContended) {
  // All three left vertices want right vertex 0 only.
  const std::vector<std::vector<int>> adj{{0}, {0}, {0}};
  const auto match = maximum_bipartite_matching(3, 2, adj);
  int matched = 0;
  for (const int m : match) {
    if (m != -1) ++matched;
  }
  EXPECT_EQ(matched, 1);
}

TEST(BipartiteMatching, MatchingIsValid) {
  Rng rng(32);
  for (int trial = 0; trial < 50; ++trial) {
    const int l = 6, r = 6;
    std::vector<std::vector<int>> adj(l);
    for (int i = 0; i < l; ++i) {
      for (int j = 0; j < r; ++j) {
        if (rng.bernoulli(0.4)) adj[static_cast<size_t>(i)].push_back(j);
      }
    }
    const auto match = maximum_bipartite_matching(l, r, adj);
    std::vector<bool> right_used(r, false);
    for (int i = 0; i < l; ++i) {
      const int m = match[static_cast<size_t>(i)];
      if (m == -1) continue;
      // Matched vertex must be adjacent and unused.
      EXPECT_TRUE(std::find(adj[static_cast<size_t>(i)].begin(),
                            adj[static_cast<size_t>(i)].end(),
                            m) != adj[static_cast<size_t>(i)].end());
      EXPECT_FALSE(right_used[static_cast<size_t>(m)]);
      right_used[static_cast<size_t>(m)] = true;
    }
  }
}

TEST(BipartiteMatching, HallViolatorLimitsMatching) {
  // Left {0,1,2} all map into right {0,1}: matching size must be 2.
  const std::vector<std::vector<int>> adj{{0, 1}, {0, 1}, {0, 1}, {2}};
  const auto match = maximum_bipartite_matching(4, 3, adj);
  int matched = 0;
  for (const int m : match) {
    if (m != -1) ++matched;
  }
  EXPECT_EQ(matched, 3);  // 2 from the contended set + 1 for vertex 3
}

}  // namespace
}  // namespace ear::flow
