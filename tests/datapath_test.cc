// Data-path layer tests: zero-copy BlockBuffer semantics, the shared
// worker pool, the staged chunked pipeline, and end-to-end equivalence of
// the chunked encode/degraded-read paths with the one-shot paths (parity
// must be byte-identical — GF(2^8) row ops are bytewise, so chunking can
// never change the result).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cfs/checkpoint.h"
#include "cfs/minicfs.h"
#include "cfs/raidnode.h"
#include "common/rng.h"
#include "datapath/block_buffer.h"
#include "datapath/pipeline.h"
#include "datapath/worker_pool.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace ear {
namespace {

using datapath::BlockBuffer;
using datapath::ChunkPlan;
using datapath::MutableBlockBuffer;
using datapath::StagedPipeline;
using datapath::TaskGroup;
using datapath::WorkerPool;

// ------------------------------------------------------------- BlockBuffer

TEST(BlockBuffer, CopyOfOwnsIndependentBytes) {
  std::vector<uint8_t> src{1, 2, 3, 4};
  const BlockBuffer buf = BlockBuffer::copy_of(src);
  src[0] = 99;
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.span()[0], 1);
  EXPECT_EQ(buf.window(1, 2)[0], 2);
}

TEST(BlockBuffer, TakeAdoptsWithoutCopy) {
  std::vector<uint8_t> src{5, 6, 7};
  const uint8_t* raw = src.data();
  const BlockBuffer buf = BlockBuffer::take(std::move(src));
  EXPECT_EQ(buf.data(), raw);  // same allocation, no byte copy
  EXPECT_EQ(buf.refs(), 1);
  const BlockBuffer shared = buf;
  EXPECT_EQ(shared.data(), raw);
  EXPECT_EQ(buf.refs(), 2);
}

TEST(BlockBuffer, SealFreezesWithoutCopy) {
  MutableBlockBuffer staging(8);
  staging.span()[3] = 42;
  const uint8_t* raw = staging.data();
  const BlockBuffer sealed = std::move(staging).seal();
  EXPECT_EQ(sealed.data(), raw);
  EXPECT_EQ(sealed.size(), 8u);
  EXPECT_EQ(sealed.span()[3], 42);
  EXPECT_EQ(staging.size(), 0u);  // handle dead after seal
}

TEST(BlockBuffer, EqualityAgainstVectorAndBuffer) {
  const std::vector<uint8_t> v{9, 8, 7};
  const BlockBuffer a = BlockBuffer::copy_of(v);
  const BlockBuffer b = BlockBuffer::take(std::vector<uint8_t>(v));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, v);
  EXPECT_EQ(v, a);  // reversed candidate (C++20)
  EXPECT_FALSE(a == BlockBuffer::copy_of(std::vector<uint8_t>{9, 8}));
}

TEST(BlockBuffer, CopyOfChargesBytesCopiedCounter) {
  obs::Config cfg;
  cfg.metrics = true;
  obs::init(cfg);
  obs::Registry::instance().reset_values();
  auto& ctr = obs::Registry::instance().counter("datapath.bytes_copied");

  const std::vector<uint8_t> v(1000, 1);
  const BlockBuffer copied = BlockBuffer::copy_of(v);
  EXPECT_EQ(ctr.value(), 1000);
  const BlockBuffer adopted = BlockBuffer::take(std::vector<uint8_t>(v));
  const BlockBuffer shared = adopted;  // ref share: free
  EXPECT_EQ(ctr.value(), 1000);
  (void)copied;
  (void)shared;
  const std::vector<uint8_t> out = adopted.to_vector();
  EXPECT_EQ(ctr.value(), 2000);
  EXPECT_EQ(out, v);
  obs::shutdown();
}

// -------------------------------------------------------------- WorkerPool

TEST(WorkerPool, RunsSubmittedTasks) {
  WorkerPool pool(4);
  std::atomic<int> ran{0};
  {
    TaskGroup group(pool);
    for (int i = 0; i < 100; ++i) {
      group.submit([&ran] { ran.fetch_add(1); });
    }
    group.wait();
  }
  EXPECT_EQ(ran.load(), 100);
  EXPECT_EQ(pool.tasks_executed(), 100);
  EXPECT_LE(pool.thread_count(), 4);
}

TEST(WorkerPool, TaskGroupBoundsConcurrency) {
  WorkerPool pool(8);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  TaskGroup group(pool, /*max_concurrency=*/2);
  for (int i = 0; i < 12; ++i) {
    group.submit([&] {
      const int now = running.fetch_add(1) + 1;
      int prev = peak.load();
      while (now > prev && !peak.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      running.fetch_sub(1);
    });
  }
  group.wait();
  EXPECT_LE(peak.load(), 2);
  EXPECT_GE(peak.load(), 1);
}

TEST(WorkerPool, SharedInstanceIsSingleton) {
  WorkerPool& a = WorkerPool::shared();
  WorkerPool& b = WorkerPool::shared();
  EXPECT_EQ(&a, &b);
}

// ---------------------------------------------------------------- ChunkPlan

TEST(ChunkPlan, SlicesBlockIntoWindows) {
  const ChunkPlan plan{100, 30};
  EXPECT_EQ(plan.count(), 4);
  EXPECT_EQ(plan.offset(0), 0u);
  EXPECT_EQ(plan.len(0), 30u);
  EXPECT_EQ(plan.offset(3), 90u);
  EXPECT_EQ(plan.len(3), 10u);  // tail window
}

TEST(ChunkPlan, ZeroChunkMeansOneShot) {
  EXPECT_EQ((ChunkPlan{100, 0}).count(), 1);
  EXPECT_EQ((ChunkPlan{100, 0}).len(0), 100u);
  EXPECT_EQ((ChunkPlan{100, 200}).count(), 1);
  EXPECT_EQ((ChunkPlan{100, 100}).count(), 1);
}

// ----------------------------------------------------------- StagedPipeline

TEST(StagedPipeline, StagesObserveChunkOrder) {
  const int chunks = 16;
  std::vector<int> fetched, computed, uploaded;
  std::mutex mu;
  StagedPipeline::run(
      chunks,
      [&](int c) {
        std::lock_guard<std::mutex> lock(mu);
        fetched.push_back(c);
      },
      [&](int c) {
        std::lock_guard<std::mutex> lock(mu);
        // compute(c) must run after fetch(c) finished.
        EXPECT_GE(static_cast<int>(fetched.size()), c + 1);
        computed.push_back(c);
      },
      [&](int c) {
        std::lock_guard<std::mutex> lock(mu);
        EXPECT_GE(static_cast<int>(computed.size()), c + 1);
        uploaded.push_back(c);
      });
  ASSERT_EQ(fetched.size(), static_cast<size_t>(chunks));
  ASSERT_EQ(computed.size(), static_cast<size_t>(chunks));
  ASSERT_EQ(uploaded.size(), static_cast<size_t>(chunks));
  for (int c = 0; c < chunks; ++c) {
    EXPECT_EQ(fetched[static_cast<size_t>(c)], c);
    EXPECT_EQ(computed[static_cast<size_t>(c)], c);
    EXPECT_EQ(uploaded[static_cast<size_t>(c)], c);
  }
}

TEST(StagedPipeline, FetchExceptionPropagates) {
  EXPECT_THROW(StagedPipeline::run(
                   4,
                   [&](int c) {
                     if (c == 2) throw std::runtime_error("link died");
                   },
                   [&](int) {}),
               std::runtime_error);
}

// ------------------------------------------- end-to-end chunked equivalence

cfs::CfsConfig equivalence_config() {
  cfs::CfsConfig cfg;
  cfg.racks = 10;
  cfg.nodes_per_rack = 4;
  cfg.placement.code = CodeParams{8, 6};
  cfg.placement.replication = 3;
  cfg.placement.c = 1;
  cfg.use_ear = true;
  cfg.block_size = 64_KB;
  cfg.seed = 11;
  return cfg;
}

// Builds a cluster, writes until one stripe seals, encodes it.
// `preferred_chunk` = 0 drives the one-shot path; a divisor-unaligned chunk
// drives the staged chunked path with a short tail window.
std::unique_ptr<cfs::MiniCfs> encoded_cluster(
    const cfs::CfsConfig& cfg, Bytes preferred_chunk,
    std::map<BlockId, std::vector<uint8_t>>* originals = nullptr,
    StripeId* encoded_stripe = nullptr) {
  const Topology topo(cfg.racks, cfg.nodes_per_rack);
  auto cfs = std::make_unique<cfs::MiniCfs>(
      cfg, std::make_unique<cfs::InstantTransport>(topo, preferred_chunk));
  Rng rng(7);
  while (cfs->sealed_stripes().empty()) {
    std::vector<uint8_t> data(static_cast<size_t>(cfg.block_size));
    for (auto& b : data) b = static_cast<uint8_t>(rng.uniform(256));
    const BlockId id = cfs->write_block(data);
    if (originals) (*originals)[id] = std::move(data);
  }
  const StripeId stripe = cfs->sealed_stripes()[0];
  cfs->encode_stripe(stripe);
  if (encoded_stripe) *encoded_stripe = stripe;
  return cfs;
}

TEST(ChunkedDataPath, ParityByteIdenticalToOneShot) {
  const auto cfg = equivalence_config();
  // 24 KB does not divide the 64 KB block: exercises the tail window.
  StripeId stripe_a = kInvalidStripe;
  StripeId stripe_b = kInvalidStripe;
  auto one_shot = encoded_cluster(cfg, 0, nullptr, &stripe_a);
  auto chunked = encoded_cluster(cfg, 24_KB, nullptr, &stripe_b);

  ASSERT_EQ(stripe_a, stripe_b);  // same seed, same write sequence
  const cfs::StripeMeta a = one_shot->stripe_meta(stripe_a);
  const cfs::StripeMeta b = chunked->stripe_meta(stripe_b);
  ASSERT_EQ(a.parity_blocks.size(), b.parity_blocks.size());
  for (size_t j = 0; j < a.parity_blocks.size(); ++j) {
    EXPECT_EQ(one_shot->read_block(a.parity_blocks[j], 0),
              chunked->read_block(b.parity_blocks[j], 0))
        << "parity " << j << " differs between one-shot and chunked encode";
  }
}

TEST(ChunkedDataPath, DegradedReadByteIdenticalToOneShot) {
  const auto cfg = equivalence_config();
  std::map<BlockId, std::vector<uint8_t>> originals;
  StripeId stripe = kInvalidStripe;
  auto chunked = encoded_cluster(cfg, 24_KB, &originals, &stripe);

  const cfs::StripeMeta meta = chunked->stripe_meta(stripe);
  const BlockId victim = meta.data_blocks[0];
  const NodeId holder = chunked->block_locations(victim)[0];
  chunked->kill_node(holder);
  const NodeId reader =
      (holder + 1) % chunked->topology().node_count();
  // Chunked reconstruction must reproduce the original bytes exactly.
  EXPECT_EQ(chunked->read_block(victim, reader), originals.at(victim));
}

TEST(ChunkedDataPath, RaidNodeJobMatchesAcrossChunking) {
  // Same seed, same writes; encode via RaidNode on the shared pool with and
  // without chunking — every data block must stay byte-identical.
  const auto cfg = equivalence_config();
  std::map<BlockId, std::vector<uint8_t>> originals;
  StripeId stripe = kInvalidStripe;
  auto one_shot = encoded_cluster(cfg, 0, &originals, &stripe);
  std::map<BlockId, std::vector<uint8_t>> originals_chunked;
  auto chunked = encoded_cluster(cfg, 16_KB, &originals_chunked);

  const cfs::StripeMeta a = one_shot->stripe_meta(stripe);
  for (const BlockId blk : a.data_blocks) {
    EXPECT_EQ(one_shot->read_block(blk, 0), originals.at(blk));
    EXPECT_EQ(chunked->read_block(blk, 0), originals_chunked.at(blk));
  }
}

// -------------------------------------------------- zero-copy write path

TEST(ZeroCopyWritePath, OneCopyPerBlockNotPerReplica) {
  obs::Config ocfg;
  ocfg.metrics = true;
  obs::init(ocfg);
  obs::Registry::instance().reset_values();
  auto& ctr = obs::Registry::instance().counter("datapath.bytes_copied");

  const auto cfg = equivalence_config();
  const Topology topo(cfg.racks, cfg.nodes_per_rack);
  auto cfs = std::make_unique<cfs::MiniCfs>(
      cfg, std::make_unique<cfs::InstantTransport>(topo));
  std::vector<uint8_t> data(static_cast<size_t>(cfg.block_size), 0xab);
  const BlockId id = cfs->write_block(data);
  // r = 3 replicas share ONE physical copy of the caller's buffer.
  EXPECT_EQ(ctr.value(), cfg.block_size);
  // A replica read shares the stored buffer: still no new copy.
  EXPECT_EQ(cfs->read_block(id, 0), data);
  EXPECT_EQ(ctr.value(), cfg.block_size);
  obs::shutdown();
}

// ------------------------------------------------- checkpoint round-trip

TEST(ZeroCopyWritePath, CheckpointRoundTripsThroughBlockBuffers) {
  const auto cfg = equivalence_config();
  std::map<BlockId, std::vector<uint8_t>> originals;
  StripeId stripe = kInvalidStripe;
  auto cfs = encoded_cluster(cfg, 16_KB, &originals, &stripe);

  const std::vector<uint8_t> image = cfs::save_checkpoint(*cfs);
  const Topology topo(cfg.racks, cfg.nodes_per_rack);
  auto restored = cfs::load_checkpoint(
      image, std::make_unique<cfs::InstantTransport>(topo, 16_KB));

  const cfs::StripeMeta meta = cfs->stripe_meta(stripe);
  for (const BlockId blk : meta.data_blocks) {
    EXPECT_EQ(restored->read_block(blk, 0), cfs->read_block(blk, 0));
  }
  for (const BlockId blk : meta.parity_blocks) {
    EXPECT_EQ(restored->read_block(blk, 0), cfs->read_block(blk, 0));
  }
  // Degraded read in the restored cluster still reconstructs exactly.
  const BlockId victim = meta.data_blocks[1];
  const NodeId holder = restored->block_locations(victim)[0];
  restored->kill_node(holder);
  EXPECT_EQ(restored->read_block(
                victim, (holder + 1) % restored->topology().node_count()),
            originals.at(victim));
}

// ---------------------------------------------------- set_transport contract

// Transport whose transfers block until released; lets the test hold a
// write in flight deterministically.
class GateTransport final : public cfs::Transport {
 public:
  void transfer(NodeId, NodeId, Bytes) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++entered_;
      cv_.notify_all();
    }
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return open_; });
  }
  int64_t cross_rack_bytes() const override { return 0; }
  int64_t intra_rack_bytes() const override { return 0; }

  void wait_entered() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return entered_ > 0; });
  }
  void open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int entered_ = 0;
  bool open_ = false;
};

TEST(SetTransport, ThrowsWhileDataMovementInFlight) {
  const auto cfg = equivalence_config();
  const Topology topo(cfg.racks, cfg.nodes_per_rack);
  auto gate = std::make_unique<GateTransport>();
  GateTransport* gate_ptr = gate.get();
  cfs::MiniCfs cluster(cfg, std::move(gate));

  std::thread writer([&] {
    std::vector<uint8_t> data(static_cast<size_t>(cfg.block_size), 1);
    cluster.write_block(data);
  });
  gate_ptr->wait_entered();  // the write is now blocked inside the transport
  EXPECT_THROW(
      cluster.set_transport(std::make_unique<cfs::InstantTransport>(topo)),
      std::logic_error);
  gate_ptr->open();
  writer.join();
  // Quiesced: the swap now succeeds, and the cluster keeps working.
  cluster.set_transport(std::make_unique<cfs::InstantTransport>(topo));
  std::vector<uint8_t> data(static_cast<size_t>(cfg.block_size), 2);
  const BlockId id = cluster.write_block(data);
  EXPECT_EQ(cluster.read_block(id, 0), data);
}

}  // namespace
}  // namespace ear
