#include <gtest/gtest.h>

#include "sim/cluster.h"
#include "sim/network.h"

namespace ear::sim {
namespace {

NetConfig fifo_config(double bw = 100.0, Bytes chunk = 10) {
  NetConfig c;
  c.node_bw = bw;
  c.rack_uplink_bw = bw;
  c.sharing = SharingModel::kFifoReservation;
  c.fifo_chunk = chunk;
  return c;
}

TEST(FifoNetwork, SingleTransferMatchesMaxMinTiming) {
  Engine e;
  const Topology topo(2, 2);
  Network net(e, topo, fifo_config());
  double done = -1;
  net.start_transfer(0, 2, 100, [&] { done = e.now(); });
  e.run();
  EXPECT_NEAR(done, 1.0, 1e-9);
}

TEST(FifoNetwork, ContendersShareInFifoChunks) {
  Engine e;
  const Topology topo(2, 4);
  Network net(e, topo, fifo_config());
  std::vector<double> done;
  net.start_transfer(0, 1, 100, [&] { done.push_back(e.now()); });
  net.start_transfer(0, 2, 100, [&] { done.push_back(e.now()); });
  e.run();
  ASSERT_EQ(done.size(), 2u);
  // Chunk interleaving: both finish around 2 s (one slightly earlier).
  EXPECT_NEAR(done[1], 2.0, 0.15);
  EXPECT_GT(done[0], 1.5);
}

TEST(FifoNetwork, EarlierArrivalFinishesFirst) {
  Engine e;
  const Topology topo(2, 4);
  Network net(e, topo, fifo_config());
  double first = -1, second = -1;
  net.start_transfer(0, 1, 100, [&] { first = e.now(); });
  e.schedule_at(0.5, [&] {
    net.start_transfer(0, 2, 100, [&] { second = e.now(); });
  });
  e.run();
  EXPECT_LT(first, second);
}

TEST(FifoNetwork, DiskReadsSerializePerNode) {
  Engine e;
  const Topology topo(2, 2);
  auto cfg = fifo_config();
  cfg.disk_bw = 50.0;
  Network net(e, topo, cfg);
  std::vector<double> done;
  net.start_disk_read(0, 100, [&] { done.push_back(e.now()); });
  net.start_disk_read(0, 100, [&] { done.push_back(e.now()); });
  // A different node's disk is independent.
  double other = -1;
  net.start_disk_read(1, 100, [&] { other = e.now(); });
  e.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[1], 4.0, 0.25);  // 200 bytes through one 50 B/s disk
  EXPECT_NEAR(other, 2.0, 1e-6);
}

TEST(FifoNetwork, DiskFreeWhenUnconfigured) {
  Engine e;
  const Topology topo(2, 2);
  Network net(e, topo, fifo_config());
  double done = -1;
  net.start_disk_read(0, 1'000'000, [&] { done = e.now(); });
  e.run();
  EXPECT_NEAR(done, 0.0, 1e-9);
}

TEST(MaxMinNetwork, DiskReadsShareFairly) {
  Engine e;
  const Topology topo(2, 2);
  NetConfig cfg;
  cfg.node_bw = 100.0;
  cfg.rack_uplink_bw = 100.0;
  cfg.disk_bw = 50.0;
  Network net(e, topo, cfg);
  std::vector<double> done;
  net.start_disk_read(0, 100, [&] { done.push_back(e.now()); });
  net.start_disk_read(0, 100, [&] { done.push_back(e.now()); });
  e.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 4.0, 1e-9);  // both at 25 B/s
  EXPECT_NEAR(done[1], 4.0, 1e-9);
}

TEST(ClusterSim, FifoModeProducesSameWinner) {
  SimConfig base;
  base.racks = 8;
  base.nodes_per_rack = 4;
  base.placement.code = CodeParams{8, 6};
  base.block_size = 8_MB;
  base.encode_processes = 4;
  base.stripes_per_process = 5;
  base.encode_start = 5.0;
  base.net.sharing = SharingModel::kFifoReservation;
  base.net.fifo_chunk = 256_KB;
  base.seed = 13;

  base.use_ear = false;
  const SimResult rr = ClusterSim(base).run();
  base.use_ear = true;
  const SimResult ear = ClusterSim(base).run();
  EXPECT_GT(ear.encode_throughput_mbps, rr.encode_throughput_mbps);
  EXPECT_EQ(ear.encoding_cross_rack_downloads, 0);
}

TEST(ClusterSim, ComputeDelaySlowsEncoding) {
  SimConfig base;
  base.racks = 8;
  base.nodes_per_rack = 4;
  base.placement.code = CodeParams{8, 6};
  base.block_size = 8_MB;
  base.encode_processes = 4;
  base.stripes_per_process = 5;
  base.encode_start = 1.0;
  base.write_rate = 0;
  base.background_rate = 0;
  base.seed = 21;

  const SimResult fast = ClusterSim(base).run();
  base.encode_compute_seconds = 2.0;
  const SimResult slow = ClusterSim(base).run();
  // 5 stripes per process, 2 s of compute each: at least 10 s slower.
  EXPECT_GE((slow.encode_end - slow.encode_begin) -
                (fast.encode_end - fast.encode_begin),
            9.0);
}

TEST(ClusterSim, DiskBandwidthSlowsEarEncoding) {
  // Single-node racks: every EAR first replica sits on the encoder itself,
  // so all k downloads become disk reads.
  SimConfig base;
  base.racks = 12;
  base.nodes_per_rack = 1;
  base.placement.code = CodeParams{8, 6};
  base.placement.replication = 2;
  base.use_ear = true;
  base.block_size = 8_MB;
  base.encode_processes = 4;
  base.stripes_per_process = 5;
  base.encode_start = 1.0;
  base.write_rate = 0;
  base.background_rate = 0;
  base.seed = 22;

  const SimResult free_disk = ClusterSim(base).run();
  base.net.disk_bw = base.net.node_bw / 10.0;
  const SimResult slow_disk = ClusterSim(base).run();
  EXPECT_GT(slow_disk.encode_end - slow_disk.encode_begin,
            free_disk.encode_end - free_disk.encode_begin);
}

}  // namespace
}  // namespace ear::sim
