// Edge cases and boundary conditions across the library that the main
// suites do not exercise.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <thread>

#include "cfs/minicfs.h"
#include "erasure/rs.h"
#include "placement/ear.h"
#include "placement/monitor.h"
#include "placement/random_replication.h"
#include "sim/cluster.h"

namespace ear {
namespace {

// ------------------------------------------------------- erasure boundaries

TEST(EdgeCases, MinimalCodeN2K1IsMirroring) {
  const erasure::RSCode code(2, 1);
  std::vector<uint8_t> data{1, 2, 3, 4};
  std::vector<uint8_t> parity(4);
  std::vector<erasure::BlockView> dv{data};
  std::vector<erasure::MutBlockView> pv{parity};
  code.encode(dv, pv);
  EXPECT_EQ(parity, data) << "(2,1) systematic RS is plain mirroring";
}

TEST(EdgeCases, SingleParityIsXorParity) {
  // (k+1, k) systematic RS with the Cauchy construction reduces to RAID-5
  // style parity: decode works with any single loss.
  const erasure::RSCode code(5, 4);
  Rng rng(1);
  std::vector<std::vector<uint8_t>> data(4, std::vector<uint8_t>(32));
  for (auto& blk : data) {
    for (auto& b : blk) b = static_cast<uint8_t>(rng.uniform(256));
  }
  std::vector<std::vector<uint8_t>> parity(1, std::vector<uint8_t>(32));
  std::vector<erasure::BlockView> dv(data.begin(), data.end());
  std::vector<erasure::MutBlockView> pv(parity.begin(), parity.end());
  code.encode(dv, pv);

  for (int lost = 0; lost < 5; ++lost) {
    std::vector<int> ids;
    std::vector<erasure::BlockView> available;
    for (int i = 0; i < 5; ++i) {
      if (i == lost) continue;
      ids.push_back(i);
      available.emplace_back(i < 4 ? data[static_cast<size_t>(i)]
                                   : parity[0]);
      if (static_cast<int>(ids.size()) == 4) break;
    }
    std::vector<std::vector<uint8_t>> out(1, std::vector<uint8_t>(32));
    std::vector<erasure::MutBlockView> ov(out.begin(), out.end());
    ASSERT_TRUE(code.reconstruct(ids, available, {lost}, ov));
    EXPECT_EQ(out[0], lost < 4 ? data[static_cast<size_t>(lost)] : parity[0]);
  }
}

TEST(EdgeCases, MaximumFieldSizedCode) {
  // n = 255 is the largest stripe GF(2^8) supports.
  const erasure::RSCode code(255, 251);
  EXPECT_EQ(code.generator().rows(), 255);
  Rng rng(2);
  std::vector<std::vector<uint8_t>> data(251, std::vector<uint8_t>(8));
  for (auto& blk : data) {
    for (auto& b : blk) b = static_cast<uint8_t>(rng.uniform(256));
  }
  std::vector<std::vector<uint8_t>> parity(4, std::vector<uint8_t>(8));
  std::vector<erasure::BlockView> dv(data.begin(), data.end());
  std::vector<erasure::MutBlockView> pv(parity.begin(), parity.end());
  code.encode(dv, pv);
  SUCCEED();
}

// ---------------------------------------------------- placement boundaries

TEST(EdgeCases, EarWithExactlyNRacksAndCOne) {
  // R == n with c == 1: the tightest feasible configuration — every rack
  // holds exactly one block of every stripe.
  const Topology topo(8, 4);
  PlacementConfig cfg;
  cfg.code = CodeParams{8, 6};
  cfg.replication = 3;
  cfg.c = 1;
  EncodingAwareReplication policy(topo, cfg, 3);
  BlockId next = 0;
  while (policy.sealed_stripes().size() < 3) {
    policy.place_block(next++, std::nullopt);
  }
  for (const StripeId id : policy.sealed_stripes()) {
    const EncodePlan plan = policy.plan_encoding(id);
    std::set<RackId> racks;
    for (const NodeId n : plan.kept) racks.insert(topo.rack_of(n));
    for (const NodeId n : plan.parity) racks.insert(topo.rack_of(n));
    EXPECT_EQ(racks.size(), 8u);
  }
}

TEST(EdgeCases, EarOnHeterogeneousRackSizes) {
  // Racks of uneven sizes (all >= r-1): invariants must still hold.
  const Topology topo(std::vector<int>{2, 5, 3, 2, 4, 6, 2, 3});
  PlacementConfig cfg;
  cfg.code = CodeParams{7, 5};
  cfg.replication = 3;
  cfg.c = 1;
  EncodingAwareReplication policy(topo, cfg, 4);
  PlacementMonitor monitor(topo, cfg.code);
  BlockId next = 0;
  while (policy.sealed_stripes().size() < 4) {
    policy.place_block(next++, std::nullopt);
    ASSERT_LT(next, 5000);
  }
  for (const StripeId id : policy.sealed_stripes()) {
    const EncodePlan plan = policy.plan_encoding(id);
    EXPECT_EQ(plan.cross_rack_downloads, 0);
    StripeLayout layout;
    layout.nodes = plan.kept;
    layout.nodes.insert(layout.nodes.end(), plan.parity.begin(),
                        plan.parity.end());
    EXPECT_TRUE(monitor.plan_relocations(layout, 1).empty());
  }
}

TEST(EdgeCases, RrOnTwoRackCluster) {
  // The smallest topology RR supports: replicas land in both racks.
  const Topology topo(2, 8);
  PlacementConfig cfg;
  cfg.code = CodeParams{4, 3};
  cfg.replication = 3;
  RandomReplication rr(topo, cfg, 5);
  for (BlockId b = 0; b < 30; ++b) {
    const auto p = rr.place_block(b, std::nullopt);
    std::set<RackId> racks;
    for (const NodeId n : p.replicas) racks.insert(topo.rack_of(n));
    EXPECT_EQ(racks.size(), 2u);
  }
}

TEST(EdgeCases, MonitorWithInfeasibleCReturnsPartialPlan) {
  // 2 racks cannot host 4 blocks at c = 1; the planner must stop rather
  // than loop.
  const Topology topo(2, 4);
  PlacementMonitor monitor(topo, CodeParams{4, 3});
  StripeLayout layout;
  layout.nodes = {0, 1, 4, 5};
  const auto moves = monitor.plan_relocations(layout, 1);
  EXPECT_LE(moves.size(), 2u);  // at most one block can move per rack
}

TEST(EdgeCases, ReplicationFactorOne) {
  // r = 1: no secondaries; EAR still forms stripes (first replica = only
  // replica, all in the core rack) but c must allow k blocks per rack.
  const Topology topo(6, 8);
  PlacementConfig cfg;
  cfg.code = CodeParams{6, 4};
  cfg.replication = 1;
  cfg.c = 4;
  EncodingAwareReplication policy(topo, cfg, 6);
  BlockId next = 0;
  while (policy.sealed_stripes().empty()) {
    policy.place_block(next++, std::nullopt);
    ASSERT_LT(next, 2000);
  }
  const EncodePlan plan =
      policy.plan_encoding(policy.sealed_stripes()[0]);
  EXPECT_EQ(plan.cross_rack_downloads, 0);
  EXPECT_TRUE(plan.deletions.empty()) << "nothing to delete with r = 1";
}

// ------------------------------------------------------------ cfs boundaries

TEST(EdgeCases, ReadUnknownBlockThrows) {
  cfs::CfsConfig cfg;
  cfg.racks = 4;
  cfg.nodes_per_rack = 2;
  cfg.placement.code = CodeParams{4, 3};
  cfg.block_size = 1_KB;
  const Topology topo(cfg.racks, cfg.nodes_per_rack);
  cfs::MiniCfs cfs(cfg, std::make_unique<cfs::InstantTransport>(topo));
  EXPECT_THROW(cfs.read_block(1234, 0), std::runtime_error);
  EXPECT_THROW(cfs.stripe_meta(99), std::runtime_error);
}

TEST(EdgeCases, EncodeUnsealedStripeThrows) {
  cfs::CfsConfig cfg;
  cfg.racks = 6;
  cfg.nodes_per_rack = 2;
  cfg.placement.code = CodeParams{6, 4};
  cfg.block_size = 1_KB;
  const Topology topo(cfg.racks, cfg.nodes_per_rack);
  cfs::MiniCfs cfs(cfg, std::make_unique<cfs::InstantTransport>(topo));
  std::vector<uint8_t> block(1024, 1);
  cfs.write_block(block);  // one block: stripe 0 exists but is unsealed
  EXPECT_THROW(cfs.encode_stripe(0), std::runtime_error);
}

// ------------------------------------------------ cfs concurrency boundaries

// Delegating transport that sleeps per transfer, widening the encode window
// so a racing revive/kill lands mid-flight.
class SlowTransport final : public cfs::Transport {
 public:
  explicit SlowTransport(const Topology& topo) : inner_(topo) {}
  void transfer(NodeId src, NodeId dst, Bytes size) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    inner_.transfer(src, dst, size);
  }
  int64_t cross_rack_bytes() const override {
    return inner_.cross_rack_bytes();
  }
  int64_t intra_rack_bytes() const override {
    return inner_.intra_rack_bytes();
  }

 private:
  cfs::InstantTransport inner_;
};

TEST(EdgeCases, ReviveNodeRacingEncode) {
  cfs::CfsConfig cfg;
  cfg.racks = 6;
  cfg.nodes_per_rack = 2;
  cfg.placement.code = CodeParams{6, 4};
  cfg.placement.replication = 2;
  cfg.block_size = 1_KB;
  cfg.seed = 17;
  const Topology topo(cfg.racks, cfg.nodes_per_rack);
  cfs::MiniCfs cfs(cfg, std::make_unique<SlowTransport>(topo));

  std::vector<uint8_t> block(static_cast<size_t>(cfg.block_size), 1);
  std::vector<BlockId> blocks;
  while (cfs.sealed_stripes().empty()) {
    for (auto& b : block) ++b;
    blocks.push_back(cfs.write_block(block, 0));
  }
  const StripeId stripe = cfs.sealed_stripes().front();

  // A node holding a replica of the stripe goes down, the encode starts
  // anyway, and the node reports back mid-encode (a transient failure).
  const NodeId victim = cfs.block_locations(blocks.front()).front();
  cfs.kill_node(victim);
  std::atomic<bool> encode_ok{true};
  std::thread enc([&] {
    try {
      cfs.encode_stripe(stripe);
    } catch (const std::runtime_error&) {
      // the dead replica was load-bearing for this plan; stays retryable
      encode_ok.store(false);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  cfs.revive_node(victim);
  enc.join();

  // Whichever way the race lands, the namespace must be consistent and the
  // stripe must still be encodable.
  if (!encode_ok.load()) {
    EXPECT_FALSE(cfs.is_encoded(stripe));
    cfs.encode_stripe(stripe);
  }
  EXPECT_TRUE(cfs.is_encoded(stripe));
  cfs.restore_redundancy();
  const cfs::StripeMeta meta = cfs.stripe_meta(stripe);
  ASSERT_EQ(meta.data_blocks.size(), 4u);
  ASSERT_EQ(meta.parity_blocks.size(), 2u);
  for (const BlockId b : blocks) {
    EXPECT_NO_THROW(cfs.read_block(b, victim));
  }
}

// Delegating transport whose transfers block on a gate, pinning an operation
// in flight for as long as the test needs.
class GateTransport final : public cfs::Transport {
 public:
  explicit GateTransport(const Topology& topo) : inner_(topo) {}

  void transfer(NodeId src, NodeId dst, Bytes size) override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++entered_;
      cv_.notify_all();
      cv_.wait(lock, [&] { return open_; });
    }
    inner_.transfer(src, dst, size);
  }
  int64_t cross_rack_bytes() const override {
    return inner_.cross_rack_bytes();
  }
  int64_t intra_rack_bytes() const override {
    return inner_.intra_rack_bytes();
  }

  void wait_entered() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return entered_ > 0; });
  }
  void open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }

 private:
  cfs::InstantTransport inner_;
  std::mutex mu_;
  std::condition_variable cv_;
  int entered_ = 0;
  bool open_ = false;
};

TEST(EdgeCases, SetTransportRejectsInFlightWrite) {
  cfs::CfsConfig cfg;
  cfg.racks = 4;
  cfg.nodes_per_rack = 2;
  cfg.placement.code = CodeParams{4, 3};
  cfg.placement.replication = 2;
  cfg.block_size = 1_KB;
  const Topology topo(cfg.racks, cfg.nodes_per_rack);
  auto gate_owner = std::make_unique<GateTransport>(topo);
  GateTransport* gate = gate_owner.get();
  cfs::MiniCfs cfs(cfg, std::move(gate_owner));

  const std::vector<uint8_t> block(static_cast<size_t>(cfg.block_size), 9);
  std::thread writer([&] { cfs.write_block(block, 0); });
  gate->wait_entered();

  // The write is parked inside the transport: swapping it now would pull the
  // rug out from under the pipeline, so the guard must refuse.
  EXPECT_THROW(cfs.set_transport(std::make_unique<cfs::InstantTransport>(topo)),
               std::logic_error);

  gate->open();
  writer.join();
  // Quiesced: the swap goes through.
  cfs.set_transport(std::make_unique<cfs::InstantTransport>(topo));
  cfs.write_block(block, 0);
}

// ------------------------------------------------------------ sim boundaries

TEST(EdgeCases, SimWithSingleEncodeProcess) {
  sim::SimConfig cfg;
  cfg.racks = 6;
  cfg.nodes_per_rack = 3;
  cfg.placement.code = CodeParams{6, 4};
  cfg.block_size = 4_MB;
  cfg.encode_processes = 1;
  cfg.stripes_per_process = 4;
  cfg.write_rate = 0;
  cfg.background_rate = 0;
  cfg.encode_start = 0;
  cfg.seed = 7;
  const sim::SimResult r = sim::ClusterSim(cfg).run();
  EXPECT_EQ(r.stripes_encoded, 4);
  // Strictly sequential completions.
  for (size_t i = 1; i < r.stripe_completions.size(); ++i) {
    EXPECT_GT(r.stripe_completions[i].first,
              r.stripe_completions[i - 1].first);
  }
}

TEST(EdgeCases, SimMoreProcessesThanStripes) {
  sim::SimConfig cfg;
  cfg.racks = 6;
  cfg.nodes_per_rack = 3;
  cfg.placement.code = CodeParams{6, 4};
  cfg.block_size = 4_MB;
  cfg.encode_processes = 8;
  cfg.stripes_per_process = 1;
  cfg.write_rate = 0;
  cfg.background_rate = 0;
  cfg.seed = 8;
  const sim::SimResult r = sim::ClusterSim(cfg).run();
  EXPECT_EQ(r.stripes_encoded, 8);
}

}  // namespace
}  // namespace ear
