#include "gf256/gf256.h"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "common/rng.h"

namespace ear::gf {
namespace {

TEST(Gf256, AddIsXor) {
  EXPECT_EQ(add(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(add(0, 0xFF), 0xFF);
  EXPECT_EQ(add(0xAB, 0xAB), 0);
}

TEST(Gf256, MulByZeroAndOne) {
  for (int a = 0; a < 256; ++a) {
    const auto byte = static_cast<uint8_t>(a);
    EXPECT_EQ(mul(byte, 0), 0);
    EXPECT_EQ(mul(0, byte), 0);
    EXPECT_EQ(mul(byte, 1), byte);
    EXPECT_EQ(mul(1, byte), byte);
  }
}

TEST(Gf256, MulMatchesSchoolbookCarrylessReduction) {
  // Reference multiply: carry-less polynomial product reduced mod 0x11d.
  const auto reference = [](uint8_t a, uint8_t b) {
    unsigned product = 0;
    unsigned aa = a;
    for (int i = 0; i < 8; ++i) {
      if (b & (1u << i)) product ^= aa << i;
    }
    for (int bit = 15; bit >= 8; --bit) {
      if (product & (1u << bit)) product ^= kPrimitivePoly << (bit - 8);
    }
    return static_cast<uint8_t>(product);
  };
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      ASSERT_EQ(mul(static_cast<uint8_t>(a), static_cast<uint8_t>(b)),
                reference(static_cast<uint8_t>(a), static_cast<uint8_t>(b)))
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(Gf256, MulIsCommutativeAndAssociative) {
  Rng rng(1);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto a = static_cast<uint8_t>(rng.uniform(256));
    const auto b = static_cast<uint8_t>(rng.uniform(256));
    const auto c = static_cast<uint8_t>(rng.uniform(256));
    EXPECT_EQ(mul(a, b), mul(b, a));
    EXPECT_EQ(mul(mul(a, b), c), mul(a, mul(b, c)));
    EXPECT_EQ(mul(a, add(b, c)), add(mul(a, b), mul(a, c)))
        << "distributivity";
  }
}

TEST(Gf256, EveryNonZeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto byte = static_cast<uint8_t>(a);
    EXPECT_EQ(mul(byte, inv(byte)), 1) << "a=" << a;
    EXPECT_EQ(div(byte, byte), 1);
  }
}

TEST(Gf256, ExpAlphaGeneratesWholeField) {
  std::array<bool, 256> seen{};
  for (unsigned i = 0; i < 255; ++i) {
    seen[exp_alpha(i)] = true;
  }
  int count = 0;
  for (int v = 1; v < 256; ++v) {
    if (seen[static_cast<size_t>(v)]) ++count;
  }
  EXPECT_EQ(count, 255) << "alpha must be primitive";
}

TEST(Gf256, PowMatchesRepeatedMul) {
  Rng rng(2);
  for (int trial = 0; trial < 500; ++trial) {
    const auto a = static_cast<uint8_t>(rng.uniform(255) + 1);
    const auto e = static_cast<unsigned>(rng.uniform(600));
    uint8_t expected = 1;
    for (unsigned i = 0; i < e; ++i) expected = mul(expected, a);
    EXPECT_EQ(pow(a, e), expected);
  }
  EXPECT_EQ(pow(0, 0), 1);
  EXPECT_EQ(pow(0, 5), 0);
}

TEST(Gf256, MulTableMatchesMul) {
  for (int c = 0; c < 256; ++c) {
    const MulTable table(static_cast<uint8_t>(c));
    for (int b = 0; b < 256; ++b) {
      ASSERT_EQ(table.apply(static_cast<uint8_t>(b)),
                mul(static_cast<uint8_t>(c), static_cast<uint8_t>(b)));
    }
  }
}

TEST(Gf256, MulAddKernel) {
  Rng rng(3);
  std::vector<uint8_t> src(1031), dst(1031), expected(1031);
  for (size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<uint8_t>(rng.uniform(256));
    dst[i] = static_cast<uint8_t>(rng.uniform(256));
  }
  for (int c : {0, 1, 2, 37, 255}) {
    std::vector<uint8_t> out = dst;
    for (size_t i = 0; i < src.size(); ++i) {
      expected[i] = add(dst[i], mul(static_cast<uint8_t>(c), src[i]));
    }
    mul_add(static_cast<uint8_t>(c), src, out);
    EXPECT_EQ(out, expected) << "c=" << c;
  }
}

TEST(Gf256, MulAssignKernel) {
  Rng rng(4);
  std::vector<uint8_t> src(517), dst(517), expected(517);
  for (size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<uint8_t>(rng.uniform(256));
  }
  for (int c : {0, 1, 91, 254}) {
    for (size_t i = 0; i < src.size(); ++i) {
      expected[i] = mul(static_cast<uint8_t>(c), src[i]);
    }
    mul_assign(static_cast<uint8_t>(c), src, dst);
    EXPECT_EQ(dst, expected) << "c=" << c;
  }
}

TEST(Gf256, XorAddKernelHandlesOddLengths) {
  for (size_t len : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 65u}) {
    std::vector<uint8_t> src(len, 0x5A), dst(len, 0xFF);
    xor_add(src, dst);
    for (const uint8_t b : dst) EXPECT_EQ(b, 0x5A ^ 0xFF);
  }
}

}  // namespace
}  // namespace ear::gf
