#include "cfs/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <map>

#include "common/rng.h"

namespace ear::cfs {
namespace {

CfsConfig ck_config() {
  CfsConfig cfg;
  cfg.racks = 10;
  cfg.nodes_per_rack = 4;
  cfg.placement.code = CodeParams{8, 6};
  cfg.placement.replication = 3;
  cfg.use_ear = true;
  cfg.block_size = 16_KB;
  cfg.seed = 51;
  return cfg;
}

std::unique_ptr<MiniCfs> make_cfs(const CfsConfig& cfg) {
  const Topology topo(cfg.racks, cfg.nodes_per_rack);
  return std::make_unique<MiniCfs>(cfg,
                                   std::make_unique<InstantTransport>(topo));
}

std::unique_ptr<Transport> instant(const CfsConfig& cfg) {
  return std::make_unique<InstantTransport>(
      Topology(cfg.racks, cfg.nodes_per_rack));
}

// Loads a cluster with some encoded and some replicated blocks.
std::map<BlockId, std::vector<uint8_t>> populate(MiniCfs& cfs, Rng& rng) {
  std::map<BlockId, std::vector<uint8_t>> contents;
  while (cfs.sealed_stripes().size() < 2) {
    std::vector<uint8_t> block(
        static_cast<size_t>(cfs.config().block_size));
    for (auto& b : block) b = static_cast<uint8_t>(rng.uniform(256));
    const BlockId id = cfs.write_block(block);
    contents[id] = std::move(block);
  }
  cfs.encode_stripe(cfs.sealed_stripes()[0]);
  return contents;
}

TEST(Checkpoint, RoundTripPreservesReadsAndMetadata) {
  const auto cfg = ck_config();
  auto original = make_cfs(cfg);
  Rng rng(1);
  const auto contents = populate(*original, rng);

  const auto image = save_checkpoint(*original);
  EXPECT_GT(image.size(), 1000u);
  auto restored = load_checkpoint(image, instant(cfg));

  for (const auto& [id, data] : contents) {
    EXPECT_EQ(restored->block_locations(id), original->block_locations(id));
    EXPECT_EQ(restored->read_block(id, 0), data);
  }
  const StripeId encoded = original->sealed_stripes()[0];
  EXPECT_TRUE(restored->is_encoded(encoded));
  const auto orig_meta = original->stripe_meta(encoded);
  const auto rest_meta = restored->stripe_meta(encoded);
  EXPECT_EQ(rest_meta.data_blocks, orig_meta.data_blocks);
  EXPECT_EQ(rest_meta.parity_blocks, orig_meta.parity_blocks);
}

TEST(Checkpoint, RestoredClusterSurvivesFailures) {
  const auto cfg = ck_config();
  auto original = make_cfs(cfg);
  Rng rng(2);
  const auto contents = populate(*original, rng);
  const auto image = save_checkpoint(*original);
  auto restored = load_checkpoint(image, instant(cfg));

  // Degraded read through decoding must work on the restored cluster.
  const StripeId stripe = restored->sealed_stripes().empty()
                              ? original->sealed_stripes()[0]
                              : restored->sealed_stripes()[0];
  (void)stripe;
  const auto meta = original->stripe_meta(original->sealed_stripes()[0]);
  const BlockId victim = meta.data_blocks[0];
  restored->kill_node(restored->block_locations(victim)[0]);
  NodeId reader = 0;
  while (!restored->node_alive(reader)) ++reader;
  EXPECT_EQ(restored->read_block(victim, reader), contents.at(victim));
}

TEST(Checkpoint, RestoredClusterAcceptsNewWrites) {
  const auto cfg = ck_config();
  auto original = make_cfs(cfg);
  Rng rng(3);
  populate(*original, rng);
  const BlockId last_before = original->all_blocks().back();

  auto restored = load_checkpoint(save_checkpoint(*original), instant(cfg));
  std::vector<uint8_t> fresh(static_cast<size_t>(cfg.block_size), 0x42);
  const BlockId id = restored->write_block(fresh);
  EXPECT_GT(id, last_before) << "block ids must not collide after restore";
  EXPECT_EQ(restored->read_block(id, 0), fresh);
}

TEST(Checkpoint, FileRoundTrip) {
  const auto cfg = ck_config();
  auto original = make_cfs(cfg);
  Rng rng(4);
  const auto contents = populate(*original, rng);

  const std::string path = ::testing::TempDir() + "/cluster.ckpt";
  ASSERT_TRUE(save_checkpoint_file(*original, path));
  auto restored = load_checkpoint_file(path, instant(cfg));
  for (const auto& [id, data] : contents) {
    EXPECT_EQ(restored->read_block(id, 0), data);
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsGarbage) {
  std::vector<uint8_t> garbage{'n', 'o', 'p', 'e'};
  EXPECT_THROW(load_checkpoint(garbage, instant(ck_config())),
               std::runtime_error);
  std::vector<uint8_t> truncated{'E', 'A', 'R', 'C', 'K', 'P', 'T', '1', 0};
  EXPECT_THROW(load_checkpoint(truncated, instant(ck_config())),
               std::runtime_error);
}

// Down-converts a freshly saved (v6) image to an older format version by
// deleting the fields that version lacks and patching the magic digit.
// Layout: 8-byte magic, 13 fixed i64 config fields, the v3 read-path pair
// (cache_bytes, read_fanout_lanes), the v4 store triple (backend,
// length-prefixed dir, segment bytes), the v5 ecdag_enable i64, then the
// v6 codec pair (codec_family, alpha).
constexpr size_t kV3Offset = 8 + 13 * 8;
constexpr size_t kV4Offset = kV3Offset + 2 * 8;

size_t v5_offset(const std::vector<uint8_t>& image) {
  uint64_t dir_len = 0;
  for (int i = 0; i < 8; ++i) {
    dir_len |= static_cast<uint64_t>(image[kV4Offset + 8 +
                                           static_cast<size_t>(i)])
               << (8 * i);
  }
  return kV4Offset + 3 * 8 + static_cast<size_t>(dir_len);
}

std::vector<uint8_t> downconvert(std::vector<uint8_t> image, int version) {
  const size_t kV5Offset = v5_offset(image);
  const size_t kV6Offset = kV5Offset + 8;
  const auto v6_begin = image.begin() + static_cast<ptrdiff_t>(kV6Offset);
  image.erase(v6_begin, v6_begin + 2 * 8);
  if (version <= 4) {
    const auto v5_begin = image.begin() + static_cast<ptrdiff_t>(kV5Offset);
    image.erase(v5_begin, v5_begin + 8);
  }
  if (version <= 3) {
    const uint64_t dir_len =
        static_cast<uint64_t>(kV5Offset - (kV4Offset + 3 * 8));
    const auto v4_begin = image.begin() + static_cast<ptrdiff_t>(kV4Offset);
    image.erase(v4_begin,
                v4_begin + static_cast<ptrdiff_t>(3 * 8 + dir_len));
  }
  if (version == 2) {
    const auto v3_begin = image.begin() + static_cast<ptrdiff_t>(kV3Offset);
    image.erase(v3_begin, v3_begin + 2 * 8);
  }
  image[7] = static_cast<uint8_t>('0' + version);
  return image;
}

TEST(Checkpoint, LoadsVersion3WithStoreDefaults) {
  const auto cfg = ck_config();
  auto original = make_cfs(cfg);
  Rng rng(5);
  const auto contents = populate(*original, rng);

  const auto v3 = downconvert(save_checkpoint(*original), 3);
  auto restored = load_checkpoint(v3, instant(cfg));
  EXPECT_EQ(restored->config().store_backend, store::StoreBackend::kMem);
  EXPECT_EQ(restored->config().store_dir, "");
  EXPECT_EQ(restored->config().store_segment_bytes, 256_MB);
  for (const auto& [id, data] : contents) {
    EXPECT_EQ(restored->read_block(id, 0), data);
  }
}

TEST(Checkpoint, LoadsVersion2WithReadPathAndStoreDefaults) {
  const auto cfg = ck_config();
  auto original = make_cfs(cfg);
  Rng rng(6);
  const auto contents = populate(*original, rng);

  const auto v2 = downconvert(save_checkpoint(*original), 2);
  auto restored = load_checkpoint(v2, instant(cfg));
  EXPECT_EQ(restored->config().cache_bytes, 0);
  EXPECT_EQ(restored->config().read_fanout_lanes, 0);
  EXPECT_EQ(restored->config().store_backend, store::StoreBackend::kMem);
  for (const auto& [id, data] : contents) {
    EXPECT_EQ(restored->read_block(id, 0), data);
  }
}

TEST(Checkpoint, RejectsVersionsOutsideSupportedRange) {
  const auto cfg = ck_config();
  auto original = make_cfs(cfg);
  Rng rng(7);
  populate(*original, rng);
  auto image = save_checkpoint(*original);

  // A too-old and a too-new digit must both fail loudly, naming the range,
  // even though the rest of the stream is intact.
  for (const char digit : {'1', '7'}) {
    auto bad = image;
    bad[7] = static_cast<uint8_t>(digit);
    try {
      load_checkpoint(bad, instant(cfg));
      FAIL() << "version '" << digit << "' must be rejected";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("supported: 2..6"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(Checkpoint, LoadsVersion4WithEcdagDefault) {
  const auto cfg = ck_config();
  auto original = make_cfs(cfg);
  Rng rng(9);
  const auto contents = populate(*original, rng);

  const auto v4 = downconvert(save_checkpoint(*original), 4);
  auto restored = load_checkpoint(v4, instant(cfg));
  EXPECT_FALSE(restored->config().ecdag_enable)
      << "pre-ecdag checkpoints must restore to the legacy data path";
  for (const auto& [id, data] : contents) {
    EXPECT_EQ(restored->read_block(id, 0), data);
  }
}

TEST(Checkpoint, RoundTripPreservesEcdagFlag) {
  auto cfg = ck_config();
  cfg.ecdag_enable = true;
  auto original = make_cfs(cfg);
  Rng rng(10);
  const auto contents = populate(*original, rng);

  auto restored = load_checkpoint(save_checkpoint(*original), instant(cfg));
  EXPECT_TRUE(restored->config().ecdag_enable);
  for (const auto& [id, data] : contents) {
    EXPECT_EQ(restored->read_block(id, 0), data);
  }
}

TEST(Checkpoint, LoadsVersion5WithCodecDefault) {
  const auto cfg = ck_config();
  auto original = make_cfs(cfg);
  Rng rng(11);
  const auto contents = populate(*original, rng);

  const auto v5 = downconvert(save_checkpoint(*original), 5);
  auto restored = load_checkpoint(v5, instant(cfg));
  EXPECT_EQ(restored->config().codec_family, erasure::CodecFamily::kRS)
      << "pre-codec checkpoints must restore to scalar Reed-Solomon";
  EXPECT_EQ(restored->codec().alpha(), 1);
  for (const auto& [id, data] : contents) {
    EXPECT_EQ(restored->read_block(id, 0), data);
  }
}

TEST(Checkpoint, RoundTripPreservesCodecFamily) {
  auto cfg = ck_config();
  cfg.codec_family = erasure::CodecFamily::kClay;  // (8,6): alpha = 16
  auto original = make_cfs(cfg);
  Rng rng(12);
  const auto contents = populate(*original, rng);

  auto restored = load_checkpoint(save_checkpoint(*original), instant(cfg));
  EXPECT_EQ(restored->config().codec_family, erasure::CodecFamily::kClay);
  EXPECT_EQ(restored->codec().alpha(), 16);
  for (const auto& [id, data] : contents) {
    EXPECT_EQ(restored->read_block(id, 0), data);
  }
}

TEST(Checkpoint, RejectsSubPacketizationMismatch) {
  const auto cfg = ck_config();
  auto original = make_cfs(cfg);
  Rng rng(13);
  populate(*original, rng);
  auto image = save_checkpoint(*original);

  // Corrupt the serialized alpha (second v6 field): the reader must refuse
  // to mis-slice the block layout.
  const size_t alpha_offset = v5_offset(image) + 2 * 8;
  image[alpha_offset] = 99;
  try {
    load_checkpoint(image, instant(cfg));
    FAIL() << "alpha mismatch must be rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("sub-packetization mismatch"),
              std::string::npos)
        << e.what();
  }
}

TEST(Checkpoint, RoundTripPreservesStoreConfig) {
  auto cfg = ck_config();
  cfg.store_backend = store::StoreBackend::kMmap;
  cfg.store_dir = ::testing::TempDir() + "/ear-store-ckpt-roundtrip";
  cfg.store_segment_bytes = 4_MB;
  std::filesystem::remove_all(cfg.store_dir);
  std::filesystem::create_directories(cfg.store_dir);
  auto original = make_cfs(cfg);
  Rng rng(8);
  const auto contents = populate(*original, rng);
  const auto image = save_checkpoint(*original);

  // Destroy the writer before reopening: the restored cluster replays the
  // same on-disk directories, mirroring a full-cluster restart.
  original.reset();
  auto restored = load_checkpoint(image, instant(cfg));
  EXPECT_EQ(restored->config().store_backend, store::StoreBackend::kMmap);
  EXPECT_EQ(restored->config().store_dir, cfg.store_dir);
  EXPECT_EQ(restored->config().store_segment_bytes, 4_MB);
  for (const auto& [id, data] : contents) {
    EXPECT_EQ(restored->read_block(id, 0), data);
  }
  restored.reset();
  std::filesystem::remove_all(cfg.store_dir);
}

}  // namespace
}  // namespace ear::cfs
