// End-to-end lifecycle tests across modules: file namespace -> replication
// -> asynchronous encoding -> failures -> recovery -> verification, plus a
// concurrency stress test of the testbed.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <thread>

#include "cfs/checkpoint.h"
#include "cfs/filesystem.h"
#include "cfs/minicfs.h"
#include "cfs/raidnode.h"
#include "common/rng.h"
#include "placement/monitor.h"

namespace ear::cfs {
namespace {

CfsConfig big_config(bool use_ear = true) {
  CfsConfig cfg;
  cfg.racks = 12;
  cfg.nodes_per_rack = 4;
  cfg.placement.code = CodeParams{9, 6};
  cfg.placement.replication = 3;
  cfg.use_ear = use_ear;
  cfg.block_size = 8_KB;
  cfg.seed = 71;
  return cfg;
}

std::unique_ptr<MiniCfs> make_cfs(const CfsConfig& cfg) {
  const Topology topo(cfg.racks, cfg.nodes_per_rack);
  return std::make_unique<MiniCfs>(cfg,
                                   std::make_unique<InstantTransport>(topo));
}

std::vector<uint8_t> random_bytes(size_t size, Rng& rng) {
  std::vector<uint8_t> out(size);
  for (auto& b : out) b = static_cast<uint8_t>(rng.uniform(256));
  return out;
}

TEST(Integration, FullLifecycleWithRackFailuresAndRecovery) {
  const auto cfg = big_config();
  auto cfs = make_cfs(cfg);
  FileSystem fs(*cfs);
  Rng rng(1);

  // 1. Write a handful of files of varying sizes.
  std::map<std::string, std::vector<uint8_t>> files;
  for (int f = 0; f < 6; ++f) {
    const std::string name = "/data/file" + std::to_string(f);
    fs.create(name);
    const size_t size =
        static_cast<size_t>(cfg.block_size) * static_cast<size_t>(3 + f * 4) +
        static_cast<size_t>(rng.uniform(1000));
    files[name] = random_bytes(size, rng);
    fs.append(name, files[name]);
  }

  // 2. Encode every sealed stripe via the RaidNode.
  auto stripes = cfs->sealed_stripes();
  ASSERT_GE(stripes.size(), 5u);
  RaidNode raid(*cfs, 6);
  const EncodeReport report = raid.encode_stripes(stripes);
  EXPECT_EQ(report.cross_rack_downloads, 0) << "EAR property end-to-end";

  // 3. Every encoded stripe passes the placement monitor.
  const Topology& topo = cfs->topology();
  const PlacementMonitor monitor(topo, cfg.placement.code);
  for (const StripeId s : stripes) {
    const StripeMeta meta = cfs->stripe_meta(s);
    StripeLayout layout;
    for (const BlockId b : meta.data_blocks) {
      layout.nodes.push_back(cfs->block_locations(b)[0]);
    }
    for (const BlockId b : meta.parity_blocks) {
      layout.nodes.push_back(cfs->block_locations(b)[0]);
    }
    EXPECT_TRUE(monitor.plan_relocations(layout, cfg.placement.c).empty());
  }

  // 4. Kill three racks (the code tolerates any 3 block losses per stripe,
  // and c = 1 means a rack holds at most one block per stripe).
  cfs->kill_rack(0);
  cfs->kill_rack(5);
  cfs->kill_rack(11);
  NodeId reader = 0;
  while (!cfs->node_alive(reader)) ++reader;

  // 5. All files still read back intact via degraded reads.
  for (const auto& [name, content] : files) {
    EXPECT_EQ(fs.read(name, reader), content) << name;
  }

  // 6. Restore redundancy, revive the racks, verify again.
  const auto recovery = cfs->restore_redundancy();
  EXPECT_EQ(recovery.unrecoverable, 0);
  EXPECT_GT(recovery.repaired + recovery.re_replicated, 0);
  cfs->revive_all();
  for (const auto& [name, content] : files) {
    EXPECT_EQ(fs.read(name, reader), content) << name;
  }
}

TEST(Integration, CheckpointMidLifecycleContinuesCorrectly) {
  const auto cfg = big_config();
  auto cfs = make_cfs(cfg);
  FileSystem fs(*cfs);
  Rng rng(2);

  fs.create("/journal");
  const auto part1 = random_bytes(static_cast<size_t>(cfg.block_size) * 7, rng);
  fs.append("/journal", part1);
  // Encode what sealed so far.
  for (const StripeId s : cfs->sealed_stripes()) cfs->encode_stripe(s);

  // Snapshot block-level state; the namespace is re-derivable (here we
  // carry the block list across manually, as a NameNode would from its
  // edit log).
  const auto blocks = fs.blocks("/journal");
  auto restored = MiniCfs::from_image(
      cfs->export_image(),
      std::make_unique<InstantTransport>(
          Topology(cfg.racks, cfg.nodes_per_rack)));

  // Reads of every original block still match on the restored cluster.
  for (size_t i = 0; i < blocks.size(); ++i) {
    const auto expected = cfs->read_block(blocks[i], 0);
    EXPECT_EQ(restored->read_block(blocks[i], 0), expected);
  }

  // The restored cluster can keep writing and encoding.
  std::vector<uint8_t> more(static_cast<size_t>(cfg.block_size), 0x77);
  // Fixed writer: all new blocks share one core rack, so a stripe seals
  // after k of them.
  for (int i = 0; i < 12; ++i) restored->write_block(more, NodeId{0});
  int fresh_encoded = 0;
  for (const StripeId s : restored->sealed_stripes()) {
    if (!restored->is_encoded(s)) {
      restored->encode_stripe(s);
      ++fresh_encoded;
    }
  }
  EXPECT_GT(fresh_encoded, 0);
}

TEST(Integration, ConcurrentWritersAndEncodersStress) {
  const auto cfg = big_config();
  auto cfs = make_cfs(cfg);
  Rng seed_rng(3);

  // Phase 1: 4 concurrent writer threads.
  std::atomic<int> written{0};
  {
    std::vector<std::thread> writers;
    for (int w = 0; w < 4; ++w) {
      writers.emplace_back([&, w] {
        Rng rng(static_cast<uint64_t>(100 + w));
        std::vector<uint8_t> block(static_cast<size_t>(cfg.block_size));
        for (int i = 0; i < 30; ++i) {
          for (auto& b : block) b = static_cast<uint8_t>(rng.uniform(256));
          cfs->write_block(block);
          ++written;
        }
      });
    }
    for (auto& t : writers) t.join();
  }
  EXPECT_EQ(written.load(), 120);

  // Phase 2: encode everything sealed with 8 parallel map tasks while more
  // writes continue.
  auto stripes = cfs->sealed_stripes();
  ASSERT_GE(stripes.size(), 10u);
  std::thread late_writer([&] {
    Rng rng(999);
    std::vector<uint8_t> block(static_cast<size_t>(cfg.block_size), 0x1);
    for (int i = 0; i < 20; ++i) cfs->write_block(block);
  });
  RaidNode raid(*cfs, 8);
  const EncodeReport report = raid.encode_stripes(stripes);
  late_writer.join();
  EXPECT_EQ(report.completion_times.size(), stripes.size());
  for (const StripeId s : stripes) EXPECT_TRUE(cfs->is_encoded(s));

  // All blocks remain readable.
  for (const BlockId b : cfs->all_blocks()) {
    EXPECT_NO_THROW(cfs->read_block(b, 0));
  }
}

TEST(Integration, RrLifecycleNeedsRelocationsButEarDoesNot) {
  int relocations[2] = {0, 0};
  for (const bool use_ear : {false, true}) {
    const auto cfg = big_config(use_ear);
    auto cfs = make_cfs(cfg);
    Rng rng(4);
    std::vector<uint8_t> block(static_cast<size_t>(cfg.block_size));
    while (cfs->sealed_stripes().size() < 15) {
      for (auto& b : block) b = static_cast<uint8_t>(rng.uniform(256));
      cfs->write_block(block);
    }
    auto stripes = cfs->sealed_stripes();
    stripes.resize(15);
    RaidNode raid(*cfs, 6);
    raid.encode_stripes(stripes);

    const PlacementMonitor monitor(cfs->topology(), cfg.placement.code);
    for (const StripeId s : stripes) {
      const StripeMeta meta = cfs->stripe_meta(s);
      StripeLayout layout;
      for (const BlockId b : meta.data_blocks) {
        layout.nodes.push_back(cfs->block_locations(b)[0]);
      }
      for (const BlockId b : meta.parity_blocks) {
        layout.nodes.push_back(cfs->block_locations(b)[0]);
      }
      relocations[use_ear ? 1 : 0] += static_cast<int>(
          monitor.plan_relocations(layout, cfg.placement.c).size());
    }
  }
  EXPECT_GT(relocations[0], 0);
  EXPECT_EQ(relocations[1], 0);
}

}  // namespace
}  // namespace ear::cfs
