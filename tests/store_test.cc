// Persistent block-store tests: backend contract, crash-consistent
// recovery (manifest truncation sweep, torn segment tails, corrupt
// payloads, a fork+SIGKILL writer), zero-copy mmap views, and the MiniCfs
// integration — mem/mmap read equivalence, hardened fetch/erase errors,
// and restart_node delta repair.
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cfs/minicfs.h"
#include "store/mem_store.h"
#include "store/mmap_store.h"

#if defined(__SANITIZE_THREAD__)
#define EAR_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define EAR_TSAN 1
#endif
#endif

namespace ear::store {
namespace {

namespace fs = std::filesystem;
using datapath::BlockBuffer;

constexpr int64_t kManifestHeader = 8;
constexpr int64_t kRecordSize = 48;

// Deterministic per-block payload so any process can regenerate and verify
// the exact bytes a block must hold.
std::vector<uint8_t> pattern(BlockId block, size_t size) {
  std::vector<uint8_t> out(size);
  for (size_t i = 0; i < size; ++i) {
    out[i] = static_cast<uint8_t>((static_cast<uint64_t>(block) * 31 + i) &
                                  0xFF);
  }
  return out;
}

// Fresh scratch directory under the test temp root.
std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/ear-store-" + name;
  fs::remove_all(dir);
  return dir;
}

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name) : path_(scratch_dir(name)) {}
  ~ScratchDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

void truncate_file(const std::string& path, int64_t size) {
  ASSERT_EQ(::truncate(path.c_str(), static_cast<off_t>(size)), 0)
      << path << ": " << strerror(errno);
}

// ---- backend contract ----------------------------------------------------

template <typename MakeStore>
void exercise_contract(MakeStore make) {
  auto store = make();
  EXPECT_EQ(store->block_count(), 0u);
  EXPECT_EQ(store->bytes_stored(), 0);
  EXPECT_FALSE(store->get(7).has_value());
  EXPECT_FALSE(store->erase(7));

  store->put(7, BlockBuffer::take(pattern(7, 4096)));
  store->put(3, BlockBuffer::take(pattern(3, 4096)));
  EXPECT_TRUE(store->contains(7));
  EXPECT_EQ(store->block_count(), 2u);
  EXPECT_EQ(store->bytes_stored(), 2 * 4096);
  EXPECT_EQ(store->block_ids(), (std::vector<BlockId>{3, 7}));
  EXPECT_EQ(*store->get(7), pattern(7, 4096));

  // Overwrite replaces bytes and accounting.
  store->put(7, BlockBuffer::take(pattern(70, 2048)));
  EXPECT_EQ(*store->get(7), pattern(70, 2048));
  EXPECT_EQ(store->bytes_stored(), 4096 + 2048);

  const auto exported = store->export_blocks();
  EXPECT_EQ(exported.size(), 2u);
  EXPECT_EQ(exported.at(3), pattern(3, 4096));

  EXPECT_TRUE(store->erase(3));
  EXPECT_FALSE(store->contains(3));
  EXPECT_EQ(store->bytes_stored(), 2048);
  store->flush();
}

TEST(MemStore, Contract) {
  exercise_contract([] { return std::make_unique<MemBlockStore>(); });
}

TEST(MmapStore, Contract) {
  ScratchDir dir("contract");
  exercise_contract(
      [&] { return std::make_unique<MmapBlockStore>(dir.path()); });
}

// ---- mmap persistence and zero-copy views --------------------------------

TEST(MmapStore, PersistsAcrossReopen) {
  ScratchDir dir("reopen");
  {
    MmapBlockStore store(dir.path());
    for (BlockId b = 0; b < 8; ++b) {
      store.put(b, BlockBuffer::take(pattern(b, 4096)));
    }
    store.put(2, BlockBuffer::take(pattern(200, 4096)));  // overwrite
    store.erase(5);
  }
  MmapBlockStore reopened(dir.path());
  EXPECT_EQ(reopened.block_count(), 7u);
  EXPECT_EQ(reopened.open_report().records_replayed, 10);
  EXPECT_EQ(reopened.open_report().blocks_recovered, 7);
  EXPECT_EQ(reopened.open_report().torn_bytes_truncated, 0);
  EXPECT_EQ(reopened.open_report().corrupt_blocks_dropped, 0);
  EXPECT_FALSE(reopened.contains(5));
  EXPECT_EQ(*reopened.get(2), pattern(200, 4096));
  for (const BlockId b : {0, 1, 3, 4, 6, 7}) {
    EXPECT_EQ(*reopened.get(b), pattern(b, 4096)) << "block " << b;
  }
}

TEST(MmapStore, SegmentRolloverKeepsEveryBlockReadable) {
  ScratchDir dir("rollover");
  MmapStoreOptions options;
  options.segment_bytes = 16_KB;  // 4 blocks of 4 KB per segment
  MmapBlockStore store(dir.path(), options);
  for (BlockId b = 0; b < 10; ++b) {
    store.put(b, BlockBuffer::take(pattern(b, 4096)));
  }
  EXPECT_GE(store.segment_count(), 3);
  for (BlockId b = 0; b < 10; ++b) {
    EXPECT_EQ(*store.get(b), pattern(b, 4096)) << "block " << b;
  }
}

TEST(MmapStore, ViewsSurviveEraseOverwriteAndStoreDestruction) {
  ScratchDir dir("views");
  BlockBuffer erased, overwritten, orphaned;
  {
    MmapBlockStore store(dir.path());
    store.put(1, BlockBuffer::take(pattern(1, 4096)));
    store.put(2, BlockBuffer::take(pattern(2, 4096)));
    store.put(3, BlockBuffer::take(pattern(3, 4096)));
    erased = *store.get(1);
    overwritten = *store.get(2);
    orphaned = *store.get(3);
    store.erase(1);
    store.put(2, BlockBuffer::take(pattern(20, 4096)));
    // Old views still read the original bytes: segments are append-only and
    // the views' shared_ptr pins the mapping.
    EXPECT_EQ(erased, pattern(1, 4096));
    EXPECT_EQ(overwritten, pattern(2, 4096));
    EXPECT_EQ(*store.get(2), pattern(20, 4096));
  }
  // The store is gone; mappings outlive it through the views.
  EXPECT_EQ(erased, pattern(1, 4096));
  EXPECT_EQ(overwritten, pattern(2, 4096));
  EXPECT_EQ(orphaned, pattern(3, 4096));
}

TEST(MmapStore, OnFlushPolicyIsDurableAfterFlush) {
  ScratchDir dir("onflush");
  {
    MmapStoreOptions options;
    options.sync = MmapStoreOptions::SyncPolicy::kOnFlush;
    MmapBlockStore store(dir.path(), options);
    for (BlockId b = 0; b < 6; ++b) {
      store.put(b, BlockBuffer::take(pattern(b, 4096)));
    }
    store.flush();
  }
  MmapBlockStore reopened(dir.path());
  EXPECT_EQ(reopened.block_count(), 6u);
  for (BlockId b = 0; b < 6; ++b) {
    EXPECT_EQ(*reopened.get(b), pattern(b, 4096));
  }
}

TEST(MmapStore, RejectsForeignManifest) {
  ScratchDir dir("foreign");
  fs::create_directories(dir.path());
  {
    std::ofstream out(dir.path() + "/manifest.log", std::ios::binary);
    out << "NOTEARST garbage";
  }
  EXPECT_THROW(MmapBlockStore store(dir.path()), std::runtime_error);
}

// ---- crash consistency ---------------------------------------------------

// The core property: cut the manifest at EVERY byte position and the store
// must reopen to exactly the committed-record prefix, byte-identical, and
// stay writable.  Mirrors a crash that tore the manifest mid-append.
TEST(MmapStoreCrash, ManifestTruncationSweepRecoversCommittedPrefix) {
  ScratchDir master("sweep-master");
  // A mixed history: puts, an overwrite, an erase — each 1 record.
  struct Op {
    uint8_t type;  // 1=PUT 2=ERASE
    BlockId block;
    BlockId content;  // pattern seed for PUT
  };
  const std::vector<Op> ops = {
      {1, 0, 0}, {1, 1, 1}, {1, 2, 2},  {1, 3, 3},  {1, 1, 100},
      {2, 2, 0}, {1, 4, 4}, {2, 0, 0},  {1, 5, 5},  {1, 6, 6},
  };
  const size_t kBlockBytes = 2048;
  {
    MmapBlockStore store(master.path());
    for (const Op& op : ops) {
      if (op.type == 1) {
        store.put(op.block,
                  BlockBuffer::take(pattern(op.content, kBlockBytes)));
      } else {
        store.erase(op.block);
      }
    }
  }
  const int64_t manifest_size =
      static_cast<int64_t>(fs::file_size(master.path() + "/manifest.log"));
  ASSERT_EQ(manifest_size,
            kManifestHeader + kRecordSize * static_cast<int64_t>(ops.size()));

  ScratchDir work("sweep-work");
  for (int64_t cut = kManifestHeader; cut <= manifest_size; ++cut) {
    fs::remove_all(work.path());
    fs::copy(master.path(), work.path());
    truncate_file(work.path() + "/manifest.log", cut);

    MmapBlockStore store(work.path());
    const int64_t committed = (cut - kManifestHeader) / kRecordSize;

    // Expected index: the committed prefix of the history.
    std::map<BlockId, BlockId> expect;
    for (int64_t i = 0; i < committed; ++i) {
      const Op& op = ops[static_cast<size_t>(i)];
      if (op.type == 1) {
        expect[op.block] = op.content;
      } else {
        expect.erase(op.block);
      }
    }
    ASSERT_EQ(store.open_report().records_replayed, committed)
        << "cut=" << cut;
    ASSERT_EQ(store.block_count(), expect.size()) << "cut=" << cut;
    for (const auto& [block, content] : expect) {
      ASSERT_EQ(*store.get(block), pattern(content, kBlockBytes))
          << "cut=" << cut << " block=" << block;
    }
    // The torn tail is physically gone and the store stays writable.
    ASSERT_EQ(store.manifest_bytes(),
              kManifestHeader + kRecordSize * committed)
        << "cut=" << cut;
    if (cut % 97 == 0) {  // spot-check writability, not every iteration
      store.put(999, BlockBuffer::take(pattern(999, kBlockBytes)));
      ASSERT_EQ(*store.get(999), pattern(999, kBlockBytes));
    }
  }
}

TEST(MmapStoreCrash, OrphanSegmentTailIsTruncated) {
  ScratchDir dir("orphan-tail");
  {
    MmapBlockStore store(dir.path());
    store.put(1, BlockBuffer::take(pattern(1, 4096)));
  }
  // Payload landed in the segment but its manifest record was lost: model
  // by appending bytes the manifest doesn't cover.
  {
    std::ofstream seg(dir.path() + "/seg-000000.dat",
                      std::ios::binary | std::ios::app);
    const std::vector<uint8_t> junk(1234, 0xAB);
    seg.write(reinterpret_cast<const char*>(junk.data()),
              static_cast<std::streamsize>(junk.size()));
  }
  MmapBlockStore reopened(dir.path());
  EXPECT_EQ(reopened.open_report().segment_bytes_truncated, 1234);
  EXPECT_EQ(fs::file_size(dir.path() + "/seg-000000.dat"), 4096u);
  EXPECT_EQ(*reopened.get(1), pattern(1, 4096));
  // The reclaimed tail is reusable: the next put appends where the
  // watermark now is.
  reopened.put(2, BlockBuffer::take(pattern(2, 4096)));
  EXPECT_EQ(fs::file_size(dir.path() + "/seg-000000.dat"), 8192u);
}

TEST(MmapStoreCrash, CorruptPayloadIsDroppedOnVerify) {
  ScratchDir dir("corrupt");
  {
    MmapBlockStore store(dir.path());
    store.put(1, BlockBuffer::take(pattern(1, 4096)));
    store.put(2, BlockBuffer::take(pattern(2, 4096)));
  }
  // Flip one byte inside block 1's payload (offset 0 of segment 0).
  {
    std::fstream seg(dir.path() + "/seg-000000.dat",
                     std::ios::binary | std::ios::in | std::ios::out);
    seg.seekp(100);
    char byte;
    seg.seekg(100);
    seg.get(byte);
    byte = static_cast<char>(byte ^ 0xFF);
    seg.seekp(100);
    seg.put(byte);
  }
  MmapBlockStore reopened(dir.path());
  EXPECT_EQ(reopened.open_report().corrupt_blocks_dropped, 1);
  EXPECT_FALSE(reopened.contains(1)) << "corrupt block must not be served";
  EXPECT_EQ(*reopened.get(2), pattern(2, 4096));
}

#if !defined(EAR_TSAN)
// Real crash: a forked child writes blocks with fsync-per-commit and logs
// each block id to a side file only AFTER put() returned (so every logged
// id is a completed, durable commit).  The parent SIGKILLs it mid-stream
// and verifies every logged block reopens byte-identical.
TEST(MmapStoreCrash, SigkilledWriterLosesNoCommittedBlock) {
  for (int round = 0; round < 3; ++round) {
    ScratchDir dir("sigkill-" + std::to_string(round));
    const std::string committed_log = dir.path() + ".committed";
    fs::remove(committed_log);
    fs::create_directories(dir.path());

    const pid_t child = fork();
    ASSERT_GE(child, 0) << strerror(errno);
    if (child == 0) {
      // Child: write until killed.  _exit on any error; the parent only
      // trusts the committed log, not the child's exit.
      try {
        MmapStoreOptions options;
        options.segment_bytes = 64_KB;
        MmapBlockStore store(dir.path(), options);
        const int fd = ::open(committed_log.c_str(),
                              O_WRONLY | O_CREAT | O_APPEND, 0644);
        if (fd < 0) _exit(2);
        for (BlockId b = 0;; ++b) {
          store.put(b, BlockBuffer::take(pattern(b, 4096)));
          // put() returned => the commit is durable; log it durably too.
          const std::string line = std::to_string(b) + "\n";
          if (::write(fd, line.data(), line.size()) !=
              static_cast<ssize_t>(line.size())) {
            _exit(3);
          }
          if (::fdatasync(fd) != 0) _exit(4);
        }
      } catch (...) {
        _exit(5);
      }
    }

    // Parent: let the child commit a few blocks, then kill it cold.
    std::this_thread::sleep_for(std::chrono::milliseconds(60 + 40 * round));
    ASSERT_EQ(::kill(child, SIGKILL), 0) << strerror(errno);
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
        << "child exited on its own (status " << status
        << ") — kill arrived too late to test anything";

    std::vector<BlockId> committed;
    {
      std::ifstream in(committed_log);
      BlockId b;
      while (in >> b) committed.push_back(b);
    }
    MmapBlockStore reopened(dir.path());
    for (const BlockId b : committed) {
      ASSERT_TRUE(reopened.contains(b))
          << "round " << round << ": committed block " << b
          << " lost after crash (report: replayed="
          << reopened.open_report().records_replayed << " torn="
          << reopened.open_report().torn_bytes_truncated << ")";
      ASSERT_EQ(*reopened.get(b), pattern(b, 4096));
    }
    fs::remove(committed_log);
  }
}
#endif  // !EAR_TSAN

// ---- concurrency ---------------------------------------------------------

TEST(MmapStore, ConcurrentPutsAndReadsFromDisjointRanges) {
  ScratchDir dir("concurrent");
  MmapStoreOptions options;
  options.sync = MmapStoreOptions::SyncPolicy::kOnFlush;
  options.segment_bytes = 64_KB;
  MmapBlockStore store(dir.path(), options);

  constexpr int kThreads = 4;
  constexpr BlockId kPerThread = 40;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&store, t] {
      const BlockId base = static_cast<BlockId>(t) * kPerThread;
      for (BlockId b = base; b < base + kPerThread; ++b) {
        store.put(b, BlockBuffer::take(pattern(b, 2048)));
        const auto got = store.get(b);
        ASSERT_TRUE(got.has_value());
        ASSERT_EQ(*got, pattern(b, 2048));
        if (b > base) {
          ASSERT_TRUE(store.contains(b - 1));
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  store.flush();
  EXPECT_EQ(store.block_count(),
            static_cast<size_t>(kThreads * kPerThread));
  for (BlockId b = 0; b < kThreads * kPerThread; ++b) {
    EXPECT_EQ(*store.get(b), pattern(b, 2048));
  }
}

}  // namespace
}  // namespace ear::store

// ---- MiniCfs integration -------------------------------------------------

namespace ear::cfs {

// Friend of MiniCfs: reaches the private fetch/erase error paths.
class MiniCfsTestPeer {
 public:
  static datapath::BlockBuffer fetch(MiniCfs& cfs, NodeId node,
                                     BlockId block) {
    return cfs.fetch(node, block);
  }
  static void erase(MiniCfs& cfs, NodeId node, BlockId block) {
    cfs.erase(node, block);
  }
};

namespace {

namespace fs = std::filesystem;

std::vector<uint8_t> pattern(BlockId block, size_t size) {
  std::vector<uint8_t> out(size);
  for (size_t i = 0; i < size; ++i) {
    out[i] = static_cast<uint8_t>((static_cast<uint64_t>(block) * 31 + i) &
                                  0xFF);
  }
  return out;
}

CfsConfig store_cfg() {
  CfsConfig cfg;
  cfg.racks = 6;
  cfg.nodes_per_rack = 3;
  cfg.placement.code = CodeParams{6, 4};
  cfg.placement.replication = 3;
  cfg.use_ear = true;
  cfg.block_size = 8_KB;
  cfg.seed = 77;
  return cfg;
}

std::unique_ptr<MiniCfs> make_cfs(const CfsConfig& cfg) {
  const Topology topo(cfg.racks, cfg.nodes_per_rack);
  return std::make_unique<MiniCfs>(cfg,
                                   std::make_unique<InstantTransport>(topo));
}

// Writes blocks until two stripes seal, encodes the first, returns the
// contents map.
std::map<BlockId, std::vector<uint8_t>> populate(MiniCfs& cfs) {
  std::map<BlockId, std::vector<uint8_t>> contents;
  BlockId seed = 0;
  while (cfs.sealed_stripes().size() < 2) {
    auto data = pattern(seed++, static_cast<size_t>(cfs.config().block_size));
    const BlockId id = cfs.write_block(data);
    contents[id] = std::move(data);
  }
  cfs.encode_stripe(cfs.sealed_stripes()[0]);
  return contents;
}

// Writes `count` replicated blocks with NO encoding: every store record is
// a PUT, so the restart tests' manifest surgery has a deterministic effect
// (encode would append replica-delete ERASE records).
std::map<BlockId, std::vector<uint8_t>> populate_replicated(MiniCfs& cfs,
                                                            int count) {
  std::map<BlockId, std::vector<uint8_t>> contents;
  for (int i = 0; i < count; ++i) {
    auto data = pattern(i, static_cast<size_t>(cfs.config().block_size));
    const BlockId id = cfs.write_block(data);
    contents[id] = std::move(data);
  }
  return contents;
}

TEST(StoreCfs, MemAndMmapClustersServeIdenticalReads) {
  auto mem_cfg = store_cfg();
  auto mmap_cfg = store_cfg();
  mmap_cfg.store_backend = store::StoreBackend::kMmap;
  mmap_cfg.store_dir = ::testing::TempDir() + "/ear-store-cfs-equiv";
  fs::remove_all(mmap_cfg.store_dir);

  auto mem = make_cfs(mem_cfg);
  auto mmap = make_cfs(mmap_cfg);
  const auto mem_contents = populate(*mem);
  const auto mmap_contents = populate(*mmap);

  // Same seed, same op sequence: identical ids, placement and bytes.
  ASSERT_EQ(mem_contents.size(), mmap_contents.size());
  for (const auto& [id, data] : mem_contents) {
    ASSERT_TRUE(mmap_contents.count(id));
    EXPECT_EQ(mem->block_locations(id), mmap->block_locations(id));
    EXPECT_EQ(mem->read_block(id, 0), data);
    EXPECT_EQ(mmap->read_block(id, 0), data);
  }

  // Degraded reads decode the same bytes out of both backends.
  const StripeId encoded = mem->sealed_stripes()[0];
  const BlockId victim = mem->stripe_meta(encoded).data_blocks[0];
  mem->kill_node(mem->block_locations(victim)[0]);
  mmap->kill_node(mmap->block_locations(victim)[0]);
  NodeId reader = 0;
  while (!mem->node_alive(reader)) ++reader;
  EXPECT_EQ(mem->read_block(victim, reader), mem_contents.at(victim));
  EXPECT_EQ(mmap->read_block(victim, reader), mem_contents.at(victim));

  mmap.reset();
  fs::remove_all(mmap_cfg.store_dir);
}

TEST(StoreCfs, FetchAndEraseNameNodeBlockAndBackendInErrors) {
  auto cfs = make_cfs(store_cfg());
  try {
    MiniCfsTestPeer::fetch(*cfs, 4, 1234);
    FAIL() << "fetch of a missing block must throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("block 1234"), std::string::npos) << msg;
    EXPECT_NE(msg.find("node 4"), std::string::npos) << msg;
    EXPECT_NE(msg.find("mem"), std::string::npos) << msg;
  }
  try {
    MiniCfsTestPeer::erase(*cfs, 2, 987);
    FAIL() << "erase of a missing block must throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("block 987"), std::string::npos) << msg;
    EXPECT_NE(msg.find("node 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("mem"), std::string::npos) << msg;
  }
}

TEST(StoreCfs, RestartNodeMmapRecoversBlocksAndRepairsOnlyTheDelta) {
  auto cfg = store_cfg();
  cfg.store_backend = store::StoreBackend::kMmap;
  cfg.store_dir = ::testing::TempDir() + "/ear-store-cfs-restart";
  fs::remove_all(cfg.store_dir);
  auto cfs = make_cfs(cfg);
  const auto contents = populate_replicated(*cfs, 16);

  // Pick a node holding several replicated (un-encoded) blocks.
  NodeId victim = 0;
  for (NodeId n = 0; n < cfg.racks * cfg.nodes_per_rack; ++n) {
    if (cfs->blocks_stored_on(n) > cfs->blocks_stored_on(victim)) victim = n;
  }
  const int64_t held = cfs->blocks_stored_on(victim);
  ASSERT_GT(held, 1);

  cfs->kill_node(victim);

  // Crash damage: tear the last manifest record off the victim's store so
  // exactly one committed block is lost (the delta).
  char sub[16];
  std::snprintf(sub, sizeof(sub), "node-%04d", victim);
  const std::string manifest =
      cfg.store_dir + "/" + sub + "/manifest.log";
  const int64_t manifest_size = static_cast<int64_t>(fs::file_size(manifest));
  ASSERT_EQ(::truncate(manifest.c_str(),
                       static_cast<off_t>(manifest_size - 48)),
            0)
      << strerror(errno);

  const auto report = cfs->restart_node(victim);
  EXPECT_EQ(report.blocks_recovered, held - 1);
  EXPECT_EQ(report.locations_pruned, 1);
  // The namespace still listed this node (nothing repaired it away while
  // it was down), so survivors need no re-adding.
  EXPECT_EQ(report.blocks_reregistered, 0);

  // Redundancy repair moves only the lost delta, not the whole node.
  const int64_t before = cfs->transport().cross_rack_bytes() +
                         cfs->transport().intra_rack_bytes();
  const auto recovery = cfs->restore_redundancy();
  const int64_t repaired_bytes = cfs->transport().cross_rack_bytes() +
                                 cfs->transport().intra_rack_bytes() - before;
  EXPECT_EQ(recovery.re_replicated + recovery.repaired, 1);
  EXPECT_LT(repaired_bytes, held * cfg.block_size);

  // Every byte is still served correctly afterwards.
  for (const auto& [id, data] : contents) {
    EXPECT_EQ(cfs->read_block(id, 1), data);
  }

  // Second crash, but this time redundancy is restored while the node is
  // down: the NameNode prunes it and re-homes its blocks, so the restart
  // must re-register every surviving on-disk copy.
  const int64_t held2 = cfs->blocks_stored_on(victim);
  ASSERT_GT(held2, 0);
  cfs->kill_node(victim);
  cfs->restore_redundancy();
  const auto report2 = cfs->restart_node(victim);
  EXPECT_EQ(report2.blocks_recovered, held2);
  EXPECT_EQ(report2.locations_pruned, 0);
  EXPECT_EQ(report2.blocks_reregistered, held2);
  for (const auto& [id, data] : contents) {
    EXPECT_EQ(cfs->read_block(id, 1), data);
  }

  cfs.reset();
  fs::remove_all(cfg.store_dir);
}

TEST(StoreCfs, RestartNodeMemLosesEverythingAndRebuildsInFull) {
  auto cfs = make_cfs(store_cfg());
  const auto contents = populate_replicated(*cfs, 16);

  NodeId victim = 0;
  const int total_nodes = store_cfg().racks * store_cfg().nodes_per_rack;
  for (NodeId n = 0; n < total_nodes; ++n) {
    if (cfs->blocks_stored_on(n) > cfs->blocks_stored_on(victim)) victim = n;
  }
  const int64_t held = cfs->blocks_stored_on(victim);
  ASSERT_GT(held, 1);

  cfs->kill_node(victim);
  const auto report = cfs->restart_node(victim);
  EXPECT_EQ(report.blocks_recovered, 0) << "mem restart loses the store";
  EXPECT_EQ(report.locations_pruned, held);
  EXPECT_EQ(report.blocks_reregistered, 0);
  EXPECT_EQ(cfs->blocks_stored_on(victim), 0);

  // Full rebuild: every block the node held needs redundancy work.
  const auto recovery = cfs->restore_redundancy();
  EXPECT_GE(recovery.re_replicated + recovery.repaired, held);
  for (const auto& [id, data] : contents) {
    EXPECT_EQ(cfs->read_block(id, 1), data);
  }
}

}  // namespace
}  // namespace ear::cfs
