// Cross-validation: the closed-form encode-duration model must match the
// discrete-event simulator in idle-network conditions.
#include "analysis/throughput_model.h"

#include <gtest/gtest.h>

#include "sim/cluster.h"

namespace ear::analysis {
namespace {

sim::SimConfig idle_config(bool use_ear) {
  sim::SimConfig cfg;
  cfg.racks = 12;
  cfg.nodes_per_rack = 1;  // single-node racks: EAR reads all k locally
  cfg.placement.code = CodeParams{10, 8};
  cfg.placement.replication = 2;
  cfg.use_ear = use_ear;
  cfg.block_size = 32_MB;
  cfg.write_rate = 0;
  cfg.background_rate = 0;
  cfg.encode_start = 0.0;
  cfg.encode_processes = 4;
  cfg.stripes_per_process = 6;
  cfg.seed = 77;
  return cfg;
}

TEST(ThroughputModel, RrCrossDownloadFormula) {
  EXPECT_NEAR(rr_expected_cross_downloads(10, 20), 9.0, 1e-12);
  EXPECT_NEAR(rr_expected_cross_downloads(8, 12), 8.0 * (1 - 2.0 / 12),
              1e-12);
  EXPECT_NEAR(rr_expected_cross_downloads(4, 2), 0.0, 1e-12);
}

TEST(ThroughputModel, EarPredictionMatchesIdleSimulator) {
  const auto cfg = idle_config(true);
  const sim::SimResult result = sim::ClusterSim(cfg).run();

  EncodeModelInput model;
  model.code = cfg.placement.code;
  model.racks = cfg.racks;
  model.block_size = cfg.block_size;
  model.node_bw = cfg.net.node_bw;
  model.stripes_per_process = cfg.stripes_per_process;
  model.local_blocks = cfg.placement.code.k;  // single-node core racks

  const double predicted = predicted_encode_seconds(model);
  const double simulated = result.encode_end - result.encode_begin;
  // EAR in an idle network: the model should be nearly exact.
  EXPECT_NEAR(simulated, predicted, predicted * 0.15);
}

TEST(ThroughputModel, RrPredictionIsALowerBound) {
  const auto cfg = idle_config(false);
  const sim::SimResult result = sim::ClusterSim(cfg).run();

  EncodeModelInput model;
  model.code = cfg.placement.code;
  model.racks = cfg.racks;
  model.block_size = cfg.block_size;
  model.node_bw = cfg.net.node_bw;
  model.stripes_per_process = cfg.stripes_per_process;
  // RR: on average 2/R of the k blocks have a rack-local (here: node-local)
  // replica.
  model.local_blocks = cfg.placement.code.k -
                       rr_expected_cross_downloads(cfg.placement.code.k,
                                                   cfg.racks);

  const double predicted = predicted_encode_seconds(model);
  const double simulated = result.encode_end - result.encode_begin;
  EXPECT_GE(simulated, predicted * 0.95)
      << "the contention-free model must lower-bound the simulator";
  // And it should not be absurdly loose in a lightly-loaded cluster.
  EXPECT_LE(simulated, predicted * 3.0);
}

TEST(ThroughputModel, ThroughputInverseToDuration) {
  EncodeModelInput model;
  model.code = CodeParams{14, 10};
  model.block_size = 64_MB;
  model.node_bw = gbps(1);
  model.stripes_per_process = 10;
  model.local_blocks = 10;
  const double thpt1 = predicted_encode_throughput_mbps(model, 10);
  const double thpt2 = predicted_encode_throughput_mbps(model, 20);
  // Independent processes: throughput scales with the fleet.
  EXPECT_NEAR(thpt2, 2 * thpt1, 1e-9);
}

TEST(ThroughputModel, DiskBoundWhenDiskSlower) {
  EncodeModelInput model;
  model.code = CodeParams{10, 8};
  model.block_size = 64_MB;
  model.node_bw = gbps(1);
  model.stripes_per_process = 1;
  model.local_blocks = 8;

  const double free_disk = predicted_encode_seconds(model);
  model.disk_bw = gbps(0.5);
  const double slow_disk = predicted_encode_seconds(model);
  EXPECT_GT(slow_disk, free_disk);
}

}  // namespace
}  // namespace ear::analysis
