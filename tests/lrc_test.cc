#include "erasure/lrc.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/rng.h"
#include "gf256/gf256.h"

namespace ear::erasure {
namespace {

std::vector<std::vector<uint8_t>> random_blocks(int count, size_t size,
                                                Rng& rng) {
  std::vector<std::vector<uint8_t>> blocks(static_cast<size_t>(count));
  for (auto& b : blocks) {
    b.resize(size);
    for (auto& byte : b) byte = static_cast<uint8_t>(rng.uniform(256));
  }
  return blocks;
}

std::vector<BlockView> views(const std::vector<std::vector<uint8_t>>& v) {
  return {v.begin(), v.end()};
}
std::vector<MutBlockView> mut_views(std::vector<std::vector<uint8_t>>& v) {
  return {v.begin(), v.end()};
}

// Encodes a full LRC stripe; returns all n blocks.
std::vector<std::vector<uint8_t>> full_stripe(const LRCCode& code,
                                              size_t block_size, Rng& rng) {
  auto data = random_blocks(code.k(), block_size, rng);
  std::vector<std::vector<uint8_t>> parity(
      static_cast<size_t>(code.l() + code.g()),
      std::vector<uint8_t>(block_size));
  auto pv = mut_views(parity);
  code.encode(views(data), pv);
  data.insert(data.end(), parity.begin(), parity.end());
  return data;
}

TEST(LRC, ShapeAndGroups) {
  const LRCCode code(12, 2, 2);  // Azure LRC(12, 2, 2)
  EXPECT_EQ(code.n(), 16);
  EXPECT_EQ(code.group_size(), 6);
  EXPECT_EQ(code.group_of(0), 0);
  EXPECT_EQ(code.group_of(5), 0);
  EXPECT_EQ(code.group_of(6), 1);
  EXPECT_EQ(code.group_of(12), 0);   // local parity of group 0
  EXPECT_EQ(code.group_of(13), 1);   // local parity of group 1
  EXPECT_EQ(code.group_of(14), -1);  // global parity
}

TEST(LRC, RejectsInvalidShapes) {
  EXPECT_THROW(LRCCode(10, 3, 2), std::invalid_argument);  // 10 % 3 != 0
  EXPECT_THROW(LRCCode(10, 0, 2), std::invalid_argument);
}

TEST(LRC, LocalParityIsGroupXor) {
  Rng rng(71);
  const LRCCode code(6, 2, 2);
  const auto all = full_stripe(code, 64, rng);
  for (int g = 0; g < 2; ++g) {
    std::vector<uint8_t> expected(64, 0);
    for (int d = g * 3; d < (g + 1) * 3; ++d) {
      gf::xor_add(all[static_cast<size_t>(d)], expected);
    }
    EXPECT_EQ(all[static_cast<size_t>(6 + g)], expected);
  }
}

TEST(LRC, RepairPlanIsLocalForDataBlocks) {
  const LRCCode code(12, 2, 2);
  const auto plan = code.repair_plan(3);
  // Group 0 = blocks 0..5 plus local parity 12.
  EXPECT_EQ(plan.size(), 6u);  // 5 group members + local parity
  for (const int id : plan) {
    EXPECT_NE(id, 3);
    EXPECT_TRUE((id >= 0 && id < 6) || id == 12);
  }
}

TEST(LRC, RepairReadsFewerBlocksThanRs) {
  // The headline LRC benefit: single-failure repair reads group_size blocks
  // instead of k.
  const LRCCode code(12, 2, 2);
  EXPECT_EQ(code.repair_plan(0).size(), 6u);
  const RSCode rs(16, 12);
  (void)rs;  // RS repair always needs k = 12 reads
  EXPECT_LT(code.repair_plan(0).size(), 12u);
}

TEST(LRC, SingleFailureLocalRepairRestoresEveryBlock) {
  Rng rng(72);
  const LRCCode code(12, 2, 2);
  const size_t block_size = 96;
  const auto all = full_stripe(code, block_size, rng);

  for (int lost = 0; lost < code.n(); ++lost) {
    const auto plan = code.repair_plan(lost);
    std::vector<BlockView> sources;
    for (const int id : plan) {
      sources.emplace_back(all[static_cast<size_t>(id)]);
    }
    std::vector<uint8_t> rebuilt(block_size);
    code.repair(lost, sources, rebuilt);
    EXPECT_EQ(rebuilt, all[static_cast<size_t>(lost)]) << "lost=" << lost;
  }
}

TEST(LRC, ReconstructAfterTwoFailuresInDifferentGroups) {
  Rng rng(73);
  const LRCCode code(8, 2, 2);
  const size_t block_size = 48;
  const auto all = full_stripe(code, block_size, rng);

  // Lose data 1 (group 0) and data 6 (group 1).
  std::vector<int> available_ids;
  std::vector<BlockView> available;
  for (int id = 0; id < code.n(); ++id) {
    if (id == 1 || id == 6) continue;
    available_ids.push_back(id);
    available.emplace_back(all[static_cast<size_t>(id)]);
  }
  std::vector<std::vector<uint8_t>> out(2, std::vector<uint8_t>(block_size));
  auto ov = mut_views(out);
  ASSERT_TRUE(code.reconstruct(available_ids, available, {1, 6}, ov));
  EXPECT_EQ(out[0], all[1]);
  EXPECT_EQ(out[1], all[6]);
}

TEST(LRC, ReconstructAfterGlobalPlusLocalFailures) {
  Rng rng(74);
  const LRCCode code(8, 2, 2);
  const size_t block_size = 32;
  const auto all = full_stripe(code, block_size, rng);

  // Lose data 0, data 1 (same group!) and one global parity: 3 failures,
  // recoverable via the remaining global parity + local relations.
  std::vector<int> lost{0, 1, 10};
  std::vector<int> available_ids;
  std::vector<BlockView> available;
  for (int id = 0; id < code.n(); ++id) {
    if (std::find(lost.begin(), lost.end(), id) != lost.end()) continue;
    available_ids.push_back(id);
    available.emplace_back(all[static_cast<size_t>(id)]);
  }
  std::vector<std::vector<uint8_t>> out(3, std::vector<uint8_t>(block_size));
  auto ov = mut_views(out);
  ASSERT_TRUE(code.reconstruct(available_ids, available, lost, ov));
  for (size_t i = 0; i < lost.size(); ++i) {
    EXPECT_EQ(out[i], all[static_cast<size_t>(lost[i])]);
  }
}

TEST(LRC, DetectsUnrecoverablePattern) {
  Rng rng(75);
  const LRCCode code(8, 2, 2);
  const auto all = full_stripe(code, 32, rng);
  (void)all;

  // Lose an entire group's data + its local parity + both globals:
  // 4 data unknowns in the group but only ... nothing to recover them.
  std::vector<int> lost{0, 1, 2, 3, 8, 10, 11};
  std::vector<int> available_ids;
  std::vector<BlockView> available;
  for (int id = 0; id < code.n(); ++id) {
    if (std::find(lost.begin(), lost.end(), id) != lost.end()) continue;
    available_ids.push_back(id);
    available.emplace_back(all[static_cast<size_t>(id)]);
  }
  std::vector<std::vector<uint8_t>> out(1, std::vector<uint8_t>(32));
  auto ov = mut_views(out);
  EXPECT_FALSE(code.reconstruct(available_ids, available, {0}, ov));
}

// Parameterized sweep over LRC shapes: single-failure repair must always
// work, and the storage overhead stays below the replication factor.
class LRCShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(LRCShapes, SingleRepairAndOverhead) {
  const auto [k, l, g] = GetParam();
  if (k % l != 0) GTEST_SKIP() << "grid combo invalid";
  Rng rng(static_cast<uint64_t>(k * 100 + l * 10 + g));
  const LRCCode code(k, l, g);
  const auto all = full_stripe(code, 40, rng);
  for (int lost = 0; lost < code.n(); ++lost) {
    const auto plan = code.repair_plan(lost);
    std::vector<BlockView> sources;
    for (const int id : plan) sources.emplace_back(all[static_cast<size_t>(id)]);
    std::vector<uint8_t> rebuilt(40);
    code.repair(lost, sources, rebuilt);
    ASSERT_EQ(rebuilt, all[static_cast<size_t>(lost)]);
  }
  const double overhead = static_cast<double>(code.n()) / code.k();
  EXPECT_LE(overhead, 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LRCShapes,
    ::testing::Combine(::testing::Values(6, 8, 12), ::testing::Values(2, 3),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace ear::erasure
