// Read-path tests: the reader-side BlockCache (LRU semantics, coherence
// with delete/encode/repair/revive, the set_transport fill fence) and the
// degraded-read fan-out (per-source lanes must reconstruct byte-identical
// blocks in every interleaving of failures, cache state and lane count).
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cfs/minicfs.h"
#include "common/rng.h"
#include "datapath/block_cache.h"
#include "datapath/pipeline.h"
#include "mapred/read_job.h"

namespace ear {
namespace {

using datapath::BlockBuffer;
using datapath::BlockCache;
using datapath::StagedPipeline;

BlockBuffer filled(size_t size, uint8_t value) {
  return BlockBuffer::copy_of(std::vector<uint8_t>(size, value));
}

// ---------------------------------------------------------------- BlockCache

TEST(BlockCache, HitReturnsSharedBytesAndCounts) {
  BlockCache cache(1024);
  cache.insert(/*reader=*/1, /*block=*/7, filled(100, 0xaa));
  const auto hit = cache.lookup(1, 7);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->size(), 100u);
  EXPECT_EQ(hit->span()[0], 0xaa);
  EXPECT_GE(hit->refs(), 2);  // shares the cached allocation, no copy
  EXPECT_FALSE(cache.lookup(2, 7).has_value());  // other reader: miss
  EXPECT_FALSE(cache.lookup(1, 8).has_value());  // other block: miss
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 2);
}

TEST(BlockCache, EvictsLeastRecentlyUsedUntilFit) {
  BlockCache cache(300);
  cache.insert(1, 1, filled(100, 1));
  cache.insert(1, 2, filled(100, 2));
  cache.insert(1, 3, filled(100, 3));
  EXPECT_EQ(cache.bytes_used(), 300);
  // Touch block 1 so block 2 is now the LRU tail.
  EXPECT_TRUE(cache.lookup(1, 1).has_value());
  cache.insert(1, 4, filled(100, 4));
  EXPECT_EQ(cache.bytes_used(), 300);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_FALSE(cache.lookup(1, 2).has_value());  // evicted
  EXPECT_TRUE(cache.lookup(1, 1).has_value());
  EXPECT_TRUE(cache.lookup(1, 3).has_value());
  EXPECT_TRUE(cache.lookup(1, 4).has_value());
}

TEST(BlockCache, OversizedBufferIsNotCached) {
  BlockCache cache(100);
  cache.insert(1, 1, filled(101, 9));
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes_used(), 0);
}

TEST(BlockCache, ReinsertRefreshesRecency) {
  BlockCache cache(200);
  cache.insert(1, 1, filled(100, 1));
  cache.insert(1, 2, filled(100, 2));
  cache.insert(1, 1, filled(100, 11));  // refresh: 2 becomes the tail
  cache.insert(1, 3, filled(100, 3));
  EXPECT_FALSE(cache.lookup(1, 2).has_value());
  const auto one = cache.lookup(1, 1);
  ASSERT_TRUE(one.has_value());
  EXPECT_EQ(one->span()[0], 11);  // newest bytes won
}

TEST(BlockCache, InvalidateBlockDropsEveryReader) {
  BlockCache cache(1024);
  cache.insert(1, 7, filled(100, 1));
  cache.insert(2, 7, filled(100, 2));
  cache.insert(1, 8, filled(100, 3));
  cache.invalidate_block(7);
  EXPECT_FALSE(cache.lookup(1, 7).has_value());
  EXPECT_FALSE(cache.lookup(2, 7).has_value());
  EXPECT_TRUE(cache.lookup(1, 8).has_value());
  EXPECT_EQ(cache.bytes_used(), 100);
  cache.clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes_used(), 0);
}

TEST(BlockCache, ZeroCapacityDisablesEverything) {
  BlockCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.insert(1, 1, filled(10, 1));
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_FALSE(cache.lookup(1, 1).has_value());
}

// --------------------------------------------------------------- run_fanout

TEST(StagedPipelineFanout, EveryLaneFetchesEveryChunkBeforeCompute) {
  const int chunks = 8, lanes = 3;
  std::mutex mu;
  std::vector<std::vector<int>> per_lane(lanes);
  std::vector<int> computed;
  StagedPipeline::run_fanout(
      chunks, lanes,
      [&](int lane, int c) {
        std::lock_guard<std::mutex> lock(mu);
        per_lane[static_cast<size_t>(lane)].push_back(c);
      },
      [&](int c) {
        std::lock_guard<std::mutex> lock(mu);
        // compute(c) requires chunk c from EVERY lane.
        for (const auto& fetched : per_lane) {
          EXPECT_GE(static_cast<int>(fetched.size()), c + 1);
        }
        computed.push_back(c);
      });
  ASSERT_EQ(computed.size(), static_cast<size_t>(chunks));
  for (const auto& fetched : per_lane) {
    ASSERT_EQ(fetched.size(), static_cast<size_t>(chunks));
    for (int c = 0; c < chunks; ++c) {
      EXPECT_EQ(fetched[static_cast<size_t>(c)], c);  // in-order per lane
    }
  }
}

TEST(StagedPipelineFanout, SingleChunkStillRunsEveryLane) {
  // Regression: chunks == 1 must not collapse to lane 0 only — each lane
  // covers a disjoint share of the sources.
  std::mutex mu;
  std::vector<int> lanes_run;
  int computes = 0;
  StagedPipeline::run_fanout(
      /*chunks=*/1, /*lanes=*/4,
      [&](int lane, int c) {
        EXPECT_EQ(c, 0);
        std::lock_guard<std::mutex> lock(mu);
        lanes_run.push_back(lane);
      },
      [&](int) { ++computes; });
  EXPECT_EQ(lanes_run.size(), 4u);
  EXPECT_EQ(computes, 1);
}

TEST(StagedPipelineFanout, LaneExceptionPropagatesAndDrains) {
  std::atomic<int> fetches{0};
  EXPECT_THROW(StagedPipeline::run_fanout(
                   8, 3,
                   [&](int lane, int c) {
                     fetches.fetch_add(1);
                     if (lane == 1 && c == 2) {
                       throw std::runtime_error("lane died");
                     }
                   },
                   [&](int) {}),
               std::runtime_error);
  EXPECT_GE(fetches.load(), 3);
}

// --------------------------------------------------- MiniCfs + cache wiring

cfs::CfsConfig readpath_config() {
  cfs::CfsConfig cfg;
  cfg.racks = 10;
  cfg.nodes_per_rack = 4;
  cfg.placement.code = CodeParams{8, 6};
  cfg.placement.replication = 3;
  cfg.placement.c = 1;
  cfg.use_ear = true;
  cfg.block_size = 16_KB;
  cfg.seed = 11;
  cfg.cache_bytes = 64_MB;
  return cfg;
}

// Writes until one stripe seals; returns the cluster and the originals.
std::unique_ptr<cfs::MiniCfs> sealed_cluster(
    const cfs::CfsConfig& cfg, Bytes preferred_chunk,
    std::map<BlockId, std::vector<uint8_t>>* originals,
    StripeId* stripe_out) {
  const Topology topo(cfg.racks, cfg.nodes_per_rack);
  auto cfs = std::make_unique<cfs::MiniCfs>(
      cfg, std::make_unique<cfs::InstantTransport>(topo, preferred_chunk));
  Rng rng(7);
  while (cfs->sealed_stripes().empty()) {
    std::vector<uint8_t> data(static_cast<size_t>(cfg.block_size));
    for (auto& b : data) b = static_cast<uint8_t>(rng.uniform(256));
    const BlockId id = cfs->write_block(data);
    if (originals) (*originals)[id] = std::move(data);
  }
  if (stripe_out) *stripe_out = cfs->sealed_stripes()[0];
  return cfs;
}

int64_t transport_bytes(cfs::MiniCfs& cfs) {
  return cfs.transport().cross_rack_bytes() +
         cfs.transport().intra_rack_bytes();
}

TEST(ReadPathCache, HitCostsZeroTransportBytesAndZeroCopies) {
  const auto cfg = readpath_config();
  std::map<BlockId, std::vector<uint8_t>> originals;
  auto cfs = sealed_cluster(cfg, 0, &originals, nullptr);
  const BlockId block = originals.begin()->first;

  // A reader holding no replica: the first read pays a transfer.
  NodeId reader = 0;
  const auto locs = cfs->block_locations(block);
  while (std::find(locs.begin(), locs.end(), reader) != locs.end()) ++reader;

  const int64_t before = transport_bytes(*cfs);
  EXPECT_EQ(cfs->read_block(block, reader), originals.at(block));
  EXPECT_EQ(transport_bytes(*cfs), before + cfg.block_size);

  const BlockCache* cache = cfs->block_cache();
  ASSERT_NE(cache, nullptr);
  const int64_t hits_before = cache->hits();
  EXPECT_EQ(cfs->read_block(block, reader), originals.at(block));
  EXPECT_EQ(transport_bytes(*cfs), before + cfg.block_size);  // no new bytes
  EXPECT_EQ(cache->hits(), hits_before + 1);

  // A different reader has its own entry: it pays its own first transfer.
  NodeId other = reader + 1;
  const auto locs2 = cfs->block_locations(block);
  while (std::find(locs2.begin(), locs2.end(), other) != locs2.end()) ++other;
  EXPECT_EQ(cfs->read_block(block, other), originals.at(block));
  EXPECT_EQ(transport_bytes(*cfs), before + 2 * cfg.block_size);
}

TEST(ReadPathCache, ZeroCacheBytesReproducesPreCachePath) {
  auto cfg = readpath_config();
  cfg.cache_bytes = 0;
  std::map<BlockId, std::vector<uint8_t>> originals;
  auto cfs = sealed_cluster(cfg, 0, &originals, nullptr);
  EXPECT_EQ(cfs->block_cache(), nullptr);
  const BlockId block = originals.begin()->first;
  const int64_t before = transport_bytes(*cfs);
  EXPECT_EQ(cfs->read_block(block, 0), originals.at(block));
  EXPECT_EQ(cfs->read_block(block, 0), originals.at(block));
  // Every read pays (unless the reader holds a replica) — no caching.
  const auto locs = cfs->block_locations(block);
  const bool local = std::find(locs.begin(), locs.end(), 0) != locs.end();
  EXPECT_EQ(transport_bytes(*cfs),
            before + (local ? 0 : 2 * cfg.block_size));
}

TEST(ReadPathCache, EncodeDeletionsInvalidateCachedReplicas) {
  const auto cfg = readpath_config();
  std::map<BlockId, std::vector<uint8_t>> originals;
  StripeId stripe = kInvalidStripe;
  auto cfs = sealed_cluster(cfg, 0, &originals, &stripe);

  // Warm the cache for every data block from one remote reader.
  const NodeId reader = cfs->topology().node_count() - 1;
  for (const auto& [block, bytes] : originals) {
    EXPECT_EQ(cfs->read_block(block, reader), bytes);
  }
  const BlockCache* cache = cfs->block_cache();
  ASSERT_NE(cache, nullptr);
  const size_t warm_entries = cache->entries();
  EXPECT_GT(warm_entries, 0u);

  // Encoding deletes redundant replicas; every deleted block's cached copy
  // must be dropped (visibility rule), then re-reads still match.
  cfs->encode_stripe(stripe);
  EXPECT_LT(cache->entries(), warm_entries);
  for (const auto& [block, bytes] : originals) {
    EXPECT_EQ(cfs->read_block(block, reader), bytes);
  }
}

TEST(ReadPathCache, RepairAndReviveInvalidate) {
  const auto cfg = readpath_config();
  std::map<BlockId, std::vector<uint8_t>> originals;
  StripeId stripe = kInvalidStripe;
  auto cfs = sealed_cluster(cfg, 0, &originals, &stripe);
  cfs->encode_stripe(stripe);

  const cfs::StripeMeta meta = cfs->stripe_meta(stripe);
  const BlockId victim = meta.data_blocks[0];
  const NodeId holder = cfs->block_locations(victim)[0];
  const NodeId reader = (holder + 1) % cfs->topology().node_count();

  EXPECT_EQ(cfs->read_block(victim, reader), originals.at(victim));
  cfs->kill_node(holder);

  // Repair rewrites the block: cached copies drop, the repaired block reads
  // back correct from everyone.
  const NodeId target = (holder + 2) % cfs->topology().node_count();
  cfs->repair_block(victim, target);
  EXPECT_EQ(cfs->read_block(victim, reader), originals.at(victim));

  // Revive flushes entries for blocks the returning node stores.
  const BlockCache* cache = cfs->block_cache();
  ASSERT_NE(cache, nullptr);
  cfs->revive_node(holder);
  EXPECT_EQ(cfs->read_block(victim, reader), originals.at(victim));
}

// ------------------------------------------- degraded-read fan-out property

// Property: for seeded random single-node failures, a degraded read through
// the fan-out lanes is byte-identical to the original data — for every lane
// count, chunked or one-shot, cache hot or cold, first and repeated reads.
TEST(DegradedFanout, ByteIdenticalAcrossFailuresLanesAndCacheStates) {
  for (const uint64_t seed : {1u, 2u, 3u, 4u}) {
    for (const int lanes : {0, 1, 2}) {          // auto, round-robin, two
      for (const Bytes chunk : {Bytes{0}, 6_KB}) {  // one-shot, unaligned
        auto cfg = readpath_config();
        cfg.seed = seed;
        cfg.read_fanout_lanes = lanes;
        // Alternate cache on/off across the sweep.
        cfg.cache_bytes = (seed % 2 == 0) ? 64_MB : 0;
        std::map<BlockId, std::vector<uint8_t>> originals;
        StripeId stripe = kInvalidStripe;
        auto cfs = sealed_cluster(cfg, chunk, &originals, &stripe);
        cfs->encode_stripe(stripe);

        Rng rng(seed * 977 + static_cast<uint64_t>(lanes));
        const NodeId dead = static_cast<NodeId>(rng.uniform(
            static_cast<uint64_t>(cfs->topology().node_count())));
        cfs->kill_node(dead);

        for (const auto& [block, bytes] : originals) {
          const NodeId reader = static_cast<NodeId>(rng.uniform(
              static_cast<uint64_t>(cfs->topology().node_count())));
          const auto got = cfs->read_block(block, reader);
          ASSERT_EQ(got, bytes)
              << "seed " << seed << " lanes " << lanes << " chunk " << chunk
              << " block " << block;
          // Second read (cache hit when enabled) must be identical too.
          ASSERT_EQ(cfs->read_block(block, reader), bytes);
        }
      }
    }
  }
}

// ------------------------------------------------ set_transport fill fence

// Transport whose transfers block until released (same pattern as
// datapath_test): holds a read in flight deterministically.
class GateTransport final : public cfs::Transport {
 public:
  void transfer(NodeId, NodeId, Bytes) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++entered_;
      cv_.notify_all();
    }
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return open_; });
  }
  int64_t cross_rack_bytes() const override { return 0; }
  int64_t intra_rack_bytes() const override { return 0; }

  void wait_entered() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return entered_ > 0; });
  }
  void open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int entered_ = 0;
  bool open_ = false;
};

TEST(SetTransport, InFlightGuardFencesCacheFills) {
  const auto cfg = readpath_config();
  const Topology topo(cfg.racks, cfg.nodes_per_rack);
  std::map<BlockId, std::vector<uint8_t>> originals;
  auto cfs = sealed_cluster(cfg, 0, &originals, nullptr);
  const BlockId block = originals.begin()->first;
  NodeId reader = 0;
  const auto locs = cfs->block_locations(block);
  while (std::find(locs.begin(), locs.end(), reader) != locs.end()) ++reader;

  auto gate = std::make_unique<GateTransport>();
  GateTransport* gate_ptr = gate.get();
  cfs->set_transport(std::move(gate));

  // A read is now parked inside the transport, about to fill the cache: the
  // swap must refuse until the read (and its fill) completes.
  std::thread reading([&] { cfs->read_block(block, reader); });
  gate_ptr->wait_entered();
  EXPECT_THROW(
      cfs->set_transport(std::make_unique<cfs::InstantTransport>(topo)),
      std::logic_error);
  gate_ptr->open();
  reading.join();

  // Quiesced: swap succeeds, the filled entry survives it, and a hit moves
  // zero bytes through the NEW transport.
  cfs->set_transport(std::make_unique<cfs::InstantTransport>(topo));
  EXPECT_EQ(cfs->read_block(block, reader), originals.at(block));
  EXPECT_EQ(transport_bytes(*cfs), 0);
}

// ----------------------------------------------------------- TestbedReadJob

TEST(TestbedReadJob, ReaderPinningIsStableAcrossPasses) {
  const auto cfg = readpath_config();
  std::map<BlockId, std::vector<uint8_t>> originals;
  auto cfs = sealed_cluster(cfg, 0, &originals, nullptr);

  mapred::ReadJobConfig job_cfg;
  job_cfg.map_slots = 4;
  job_cfg.locality = mapred::ReadLocality::kRandomRemote;
  job_cfg.seed = 5;
  mapred::TestbedReadJob job(*cfs, job_cfg);

  std::vector<BlockId> blocks;
  for (const auto& [id, bytes] : originals) blocks.push_back(id);
  std::map<BlockId, NodeId> first;
  for (const BlockId b : blocks) first[b] = job.reader_for(b);
  const auto r1 = job.run(blocks);
  const auto r2 = job.run(blocks);
  EXPECT_EQ(r1.blocks_read, static_cast<int64_t>(blocks.size()));
  EXPECT_EQ(r2.blocks_read, static_cast<int64_t>(blocks.size()));
  EXPECT_EQ(r1.failed, 0);
  for (const BlockId b : blocks) EXPECT_EQ(job.reader_for(b), first.at(b));

  // Pass 2 runs entirely out of the warmed cache.
  const BlockCache* cache = cfs->block_cache();
  ASSERT_NE(cache, nullptr);
  EXPECT_GE(cache->hits(), static_cast<int64_t>(blocks.size()));
}

TEST(TestbedReadJob, DataLocalPinsToReplicaHolders) {
  const auto cfg = readpath_config();
  std::map<BlockId, std::vector<uint8_t>> originals;
  auto cfs = sealed_cluster(cfg, 0, &originals, nullptr);

  mapred::ReadJobConfig job_cfg;
  job_cfg.locality = mapred::ReadLocality::kDataLocal;
  mapred::TestbedReadJob job(*cfs, job_cfg);
  std::vector<BlockId> blocks;
  for (const auto& [id, bytes] : originals) blocks.push_back(id);
  const auto report = job.run(blocks);
  EXPECT_EQ(report.data_local_reads, static_cast<int64_t>(blocks.size()));
  EXPECT_EQ(report.remote_reads, 0);
  EXPECT_EQ(report.latencies_s.size(), blocks.size());
}

// -------------------------------------------------------- concurrency (TSan)

// Readers hammer the cache while repairs and kill/revive rewrite blocks
// under it — every successful read must still return the original bytes.
TEST(ReadPathConcurrency, ReadsRacingInvalidationsStayCorrect) {
  auto cfg = readpath_config();
  cfg.block_size = 4_KB;
  cfg.cache_bytes = 1_MB;  // small: eviction races too
  std::map<BlockId, std::vector<uint8_t>> originals;
  StripeId stripe = kInvalidStripe;
  auto cfs = sealed_cluster(cfg, 2_KB, &originals, &stripe);
  cfs->encode_stripe(stripe);

  std::vector<BlockId> blocks;
  for (const auto& [id, bytes] : originals) blocks.push_back(id);
  const int node_count = cfs->topology().node_count();

  std::atomic<bool> stop{false};
  std::thread chaos([&] {
    Rng rng(99);
    while (!stop.load(std::memory_order_relaxed)) {
      const BlockId b = blocks[rng.index(blocks.size())];
      const auto locs = cfs->block_locations(b);
      if (locs.empty()) continue;
      const NodeId holder = locs[0];
      cfs->kill_node(holder);
      const NodeId target =
          static_cast<NodeId>((holder + 1 + rng.uniform(
                                   static_cast<uint64_t>(node_count - 1))) %
                              node_count);
      try {
        cfs->repair_block(b, target);
      } catch (const std::runtime_error&) {
        // stripe momentarily unrecoverable under the race — benign
      }
      cfs->revive_node(holder);
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(1000 + t));
      for (int i = 0; i < 120; ++i) {
        const BlockId b = blocks[rng.index(blocks.size())];
        const NodeId reader = static_cast<NodeId>(
            rng.uniform(static_cast<uint64_t>(node_count)));
        try {
          const auto got = cfs->read_block(b, reader);
          EXPECT_EQ(got, originals.at(b)) << "block " << b;
        } catch (const std::runtime_error&) {
          // all copies momentarily dead — benign
        }
      }
    });
  }
  for (auto& t : readers) t.join();
  stop.store(true);
  chaos.join();
}

}  // namespace
}  // namespace ear
