#include "sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

namespace ear::sim {
namespace {

TEST(Engine, ExecutesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
  EXPECT_EQ(e.events_executed(), 3u);
}

TEST(Engine, TiesBreakByInsertionOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    e.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, ScheduleInIsRelative) {
  Engine e;
  double fired_at = -1;
  e.schedule_at(5.0, [&] {
    e.schedule_in(2.5, [&] { fired_at = e.now(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool ran = false;
  const EventId id = e.schedule_at(1.0, [&] { ran = true; });
  e.cancel(id);
  e.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(e.events_executed(), 0u);
}

TEST(Engine, CancelIsIdempotentAndSafeAfterRun) {
  Engine e;
  const EventId id = e.schedule_at(1.0, [] {});
  e.run();
  e.cancel(id);  // already executed: no-op
  e.cancel(id);
  SUCCEED();
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine e;
  std::vector<double> fired;
  e.schedule_at(1.0, [&] { fired.push_back(1.0); });
  e.schedule_at(2.0, [&] { fired.push_back(2.0); });
  e.schedule_at(3.0, [&] { fired.push_back(3.0); });
  e.run_until(2.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
  e.run();
  EXPECT_EQ(fired.size(), 3u);
}

TEST(Engine, EventsScheduledFromCallbacksRun) {
  Engine e;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) e.schedule_in(1.0, recurse);
  };
  e.schedule_at(0.0, recurse);
  e.run();
  EXPECT_EQ(depth, 10);
  EXPECT_DOUBLE_EQ(e.now(), 9.0);
}

TEST(Engine, PendingCountTracksCalendar) {
  Engine e;
  EXPECT_FALSE(e.has_pending());
  const EventId a = e.schedule_at(1.0, [] {});
  e.schedule_at(2.0, [] {});
  EXPECT_EQ(e.pending_count(), 2u);
  e.cancel(a);
  EXPECT_EQ(e.pending_count(), 1u);
  e.run();
  EXPECT_FALSE(e.has_pending());
}

}  // namespace
}  // namespace ear::sim
