#include "erasure/rs.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/rng.h"

namespace ear::erasure {
namespace {

std::vector<std::vector<uint8_t>> random_blocks(int count, size_t size,
                                                Rng& rng) {
  std::vector<std::vector<uint8_t>> blocks(static_cast<size_t>(count));
  for (auto& b : blocks) {
    b.resize(size);
    for (auto& byte : b) byte = static_cast<uint8_t>(rng.uniform(256));
  }
  return blocks;
}

std::vector<BlockView> views(const std::vector<std::vector<uint8_t>>& blocks) {
  std::vector<BlockView> v;
  v.reserve(blocks.size());
  for (const auto& b : blocks) v.emplace_back(b);
  return v;
}

std::vector<MutBlockView> mut_views(std::vector<std::vector<uint8_t>>& blocks) {
  std::vector<MutBlockView> v;
  v.reserve(blocks.size());
  for (auto& b : blocks) v.emplace_back(b);
  return v;
}

TEST(RSCode, GeneratorIsSystematic) {
  for (const auto construction :
       {Construction::kVandermonde, Construction::kCauchy}) {
    const RSCode code(14, 10, construction);
    const Matrix& g = code.generator();
    ASSERT_EQ(g.rows(), 14);
    ASSERT_EQ(g.cols(), 10);
    for (int r = 0; r < 10; ++r) {
      for (int c = 0; c < 10; ++c) {
        EXPECT_EQ(g.at(r, c), r == c ? 1 : 0);
      }
    }
  }
}

TEST(RSCode, EncodeDeterministic) {
  Rng rng(21);
  const RSCode code(6, 4);
  auto data = random_blocks(4, 257, rng);
  std::vector<std::vector<uint8_t>> p1(2, std::vector<uint8_t>(257));
  std::vector<std::vector<uint8_t>> p2(2, std::vector<uint8_t>(257));
  auto v1 = mut_views(p1);
  auto v2 = mut_views(p2);
  code.encode(views(data), v1);
  code.encode(views(data), v2);
  EXPECT_EQ(p1, p2);
}

TEST(RSCode, ParityIsNotTriviallyZero) {
  Rng rng(22);
  const RSCode code(6, 4);
  auto data = random_blocks(4, 64, rng);
  std::vector<std::vector<uint8_t>> parity(2, std::vector<uint8_t>(64));
  auto pv = mut_views(parity);
  code.encode(views(data), pv);
  for (const auto& p : parity) {
    bool all_zero = true;
    for (const uint8_t b : p) {
      if (b != 0) all_zero = false;
    }
    EXPECT_FALSE(all_zero);
  }
}

// Property test: any k of the n blocks reconstruct the data, across code
// parameters and both constructions.
class RSAnyK : public ::testing::TestWithParam<std::tuple<int, int, Construction>> {};

TEST_P(RSAnyK, AnyKBlocksReconstructData) {
  const auto [n, k, construction] = GetParam();
  if (k >= n) GTEST_SKIP() << "invalid combination in sweep grid";
  const RSCode code(n, k, construction);
  Rng rng(static_cast<uint64_t>(n * 1000 + k));

  const size_t block_size = 113;
  auto data = random_blocks(k, block_size, rng);
  std::vector<std::vector<uint8_t>> parity(
      static_cast<size_t>(n - k), std::vector<uint8_t>(block_size));
  auto pv = mut_views(parity);
  code.encode(views(data), pv);

  // All blocks, indexed 0..n-1.
  std::vector<std::vector<uint8_t>> all = data;
  all.insert(all.end(), parity.begin(), parity.end());

  for (int trial = 0; trial < 60; ++trial) {
    const auto picks64 = rng.sample_without_replacement(
        static_cast<size_t>(n), static_cast<size_t>(k));
    std::vector<int> ids(picks64.begin(), picks64.end());
    std::vector<BlockView> available;
    for (const int id : ids) {
      available.emplace_back(all[static_cast<size_t>(id)]);
    }
    std::vector<std::vector<uint8_t>> out(
        static_cast<size_t>(k), std::vector<uint8_t>(block_size));
    auto ov = mut_views(out);
    ASSERT_TRUE(code.decode_data(ids, available, ov));
    EXPECT_EQ(out, data) << "erasure pattern trial " << trial;
  }
}

std::string rs_param_name(
    const ::testing::TestParamInfo<std::tuple<int, int, Construction>>& info) {
  const int n = std::get<0>(info.param);
  const int k = std::get<1>(info.param);
  const Construction c = std::get<2>(info.param);
  return "n" + std::to_string(n) + "_k" + std::to_string(k) +
         (c == Construction::kCauchy ? "_cauchy" : "_vand");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RSAnyK,
    ::testing::Combine(::testing::Values(5, 6, 8, 10, 12, 14, 16),
                       ::testing::Values(3, 4, 6, 8, 10, 12),
                       ::testing::Values(Construction::kVandermonde,
                                         Construction::kCauchy)),
    rs_param_name);

TEST(RSCode, ReconstructSpecificParityBlock) {
  Rng rng(23);
  const RSCode code(9, 6);
  const size_t block_size = 97;
  auto data = random_blocks(6, block_size, rng);
  std::vector<std::vector<uint8_t>> parity(3, std::vector<uint8_t>(block_size));
  auto pv = mut_views(parity);
  code.encode(views(data), pv);

  // Lose parity block 1 (stripe index 7); rebuild it from blocks 0..5.
  std::vector<int> ids{0, 1, 2, 3, 4, 5};
  auto available = views(data);
  std::vector<std::vector<uint8_t>> rebuilt(1,
                                            std::vector<uint8_t>(block_size));
  auto rv = mut_views(rebuilt);
  ASSERT_TRUE(code.reconstruct(ids, available, {7}, rv));
  EXPECT_EQ(rebuilt[0], parity[1]);
}

TEST(RSCode, ReconstructFromMixOfDataAndParity) {
  Rng rng(24);
  const RSCode code(8, 5, Construction::kVandermonde);
  const size_t block_size = 41;
  auto data = random_blocks(5, block_size, rng);
  std::vector<std::vector<uint8_t>> parity(3, std::vector<uint8_t>(block_size));
  auto pv = mut_views(parity);
  code.encode(views(data), pv);

  // Available: data 1, 4 and parity 5, 6, 7. Rebuild data 0, 2, 3.
  std::vector<int> ids{1, 4, 5, 6, 7};
  std::vector<BlockView> available{data[1], data[4], parity[0], parity[1],
                                   parity[2]};
  std::vector<std::vector<uint8_t>> out(3, std::vector<uint8_t>(block_size));
  auto ov = mut_views(out);
  ASSERT_TRUE(code.reconstruct(ids, available, {0, 2, 3}, ov));
  EXPECT_EQ(out[0], data[0]);
  EXPECT_EQ(out[1], data[2]);
  EXPECT_EQ(out[2], data[3]);
}

TEST(RSCode, SingleFailureRepairMatchesOriginal) {
  Rng rng(25);
  const RSCode code(14, 10);
  const size_t block_size = 128;
  auto data = random_blocks(10, block_size, rng);
  std::vector<std::vector<uint8_t>> parity(4, std::vector<uint8_t>(block_size));
  auto pv = mut_views(parity);
  code.encode(views(data), pv);
  std::vector<std::vector<uint8_t>> all = data;
  all.insert(all.end(), parity.begin(), parity.end());

  for (int lost = 0; lost < 14; ++lost) {
    std::vector<int> ids;
    std::vector<BlockView> available;
    for (int i = 0; i < 14 && static_cast<int>(ids.size()) < 10; ++i) {
      if (i == lost) continue;
      ids.push_back(i);
      available.emplace_back(all[static_cast<size_t>(i)]);
    }
    std::vector<std::vector<uint8_t>> rebuilt(
        1, std::vector<uint8_t>(block_size));
    auto rv = mut_views(rebuilt);
    ASSERT_TRUE(code.reconstruct(ids, available, {lost}, rv));
    EXPECT_EQ(rebuilt[0], all[static_cast<size_t>(lost)]) << "lost=" << lost;
  }
}

TEST(RSCode, EmptyBlocksAreHandled) {
  const RSCode code(4, 2);
  std::vector<std::vector<uint8_t>> data(2), parity(2);
  auto pv = mut_views(parity);
  code.encode(views(data), pv);
  EXPECT_TRUE(parity[0].empty());
}

}  // namespace
}  // namespace ear::erasure
