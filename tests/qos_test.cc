// Tests for the cluster-wide QoS subsystem (qos/qos.h, qos/scheduler.h):
// deterministic WFQ grant order and convergence on FairQueueCore, real-time
// fairness / work-conservation / starvation-freedom / budget properties on
// LinkScheduler and ThrottledTransport, context-scope semantics, and the
// byte-identity sweep (invariant 11) over a full MiniCfs
// encode / kill / repair / read sequence with QoS off vs on.
//
// Real-time assertions use wide bands so the suite stays reliable under
// TSan's ~5-15x slowdown (the CI TSan job runs this file): ratios between
// two equally-slowed measurements are asserted tightly, absolute durations
// loosely.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "cfs/minicfs.h"
#include "cfs/transport.h"
#include "common/rng.h"
#include "qos/qos.h"
#include "qos/scheduler.h"

namespace ear::qos {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

constexpr auto kFgRead = TrafficClass::kForegroundRead;
constexpr auto kRepair = TrafficClass::kRepair;

TransferContext ctx_of(TrafficClass cls, int tenant) {
  TransferContext c;
  c.cls = cls;
  c.tenant = tenant;
  return c;
}

bool admit_all(const FairQueueCore::Request&) { return true; }

// ------------------------------------------------------------ FairQueueCore

TEST(FairQueueCore, GrantsInVirtualFinishOrder) {
  QosConfig cfg;
  cfg.tenant_weight[1] = 3.0;
  cfg.tenant_weight[2] = 1.0;
  FairQueueCore core(cfg);

  // Both flows enqueue two equal requests while backlogged.  Tenant 1
  // (weight 12 = class 4 x tenant 3) accumulates virtual finish time three
  // times slower than tenant 2 (weight 4), so the order must be
  // t1, t1, t2, t1-would-be... — concretely with 2 requests each:
  // vfinish t1: B/12, 2B/12;  t2: B/4, 2B/4  ->  t1, t1, t2, t2.
  const uint64_t a1 = core.add(ctx_of(kFgRead, 1), 1200, true);
  const uint64_t b1 = core.add(ctx_of(kFgRead, 2), 1200, true);
  const uint64_t a2 = core.add(ctx_of(kFgRead, 1), 1200, true);
  const uint64_t b2 = core.add(ctx_of(kFgRead, 2), 1200, true);

  std::vector<uint64_t> order;
  FairQueueCore::Request req;
  while (core.grant_next(admit_all, &req)) order.push_back(req.id);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], a1);
  EXPECT_EQ(order[1], a2);
  EXPECT_EQ(order[2], b1);
  EXPECT_EQ(order[3], b2);
}

TEST(FairQueueCore, EqualWeightsGrantFifo) {
  QosConfig cfg;
  FairQueueCore core(cfg);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(core.add(ctx_of(kFgRead, i % 2), 512, true));
  }
  FairQueueCore::Request req;
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_TRUE(core.grant_next(admit_all, &req));
    // Equal vfinish increments: arrival id breaks the tie, i.e. FIFO.
    EXPECT_EQ(req.id, ids[i]);
  }
  EXPECT_TRUE(core.empty());
}

// The deterministic convergence proof: two continuously-backlogged flows
// with 3:1 weights must split granted bytes 3:1 (+/-10%) over any long
// window — no threads, no clock, pure WFQ accounting.
TEST(FairQueueCore, ConvergesToConfiguredWeights) {
  QosConfig cfg;
  cfg.tenant_weight[1] = 3.0;
  cfg.tenant_weight[2] = 1.0;
  FairQueueCore core(cfg);

  // Keep both flows at a backlog of 4 requests; replenish after each grant
  // (the open-loop condition WFQ's guarantees are stated under).
  const Bytes kReq = 64 * 1024;
  int queued[2] = {0, 0};
  int64_t granted[2] = {0, 0};
  const auto top_up = [&] {
    for (int t = 0; t < 2; ++t) {
      while (queued[t] < 4) {
        core.add(ctx_of(kFgRead, t + 1), kReq, true);
        ++queued[t];
      }
    }
  };
  top_up();
  FairQueueCore::Request req;
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(core.grant_next(admit_all, &req));
    granted[req.tenant - 1] += req.bytes;
    --queued[req.tenant - 1];
    top_up();
  }
  const double ratio =
      static_cast<double>(granted[0]) / static_cast<double>(granted[1]);
  EXPECT_GT(ratio, 3.0 * 0.9);
  EXPECT_LT(ratio, 3.0 * 1.1);
}

// Budget deferral must not starve or reorder a class away: requests the
// admit predicate rejects stay queued and are granted once admissible.
TEST(FairQueueCore, DeferredClassIsGrantedOnceAdmissible) {
  QosConfig cfg;
  FairQueueCore core(cfg);
  core.add(ctx_of(kRepair, 0), 1000, true);
  const uint64_t fg = core.add(ctx_of(kFgRead, 1), 1000, true);

  const auto reject_charged_repair = [](const FairQueueCore::Request& r) {
    return !(r.charge && r.class_idx == static_cast<int>(kRepair));
  };
  FairQueueCore::Request req;
  ASSERT_TRUE(core.grant_next(reject_charged_repair, &req));
  EXPECT_EQ(req.id, fg);
  // Repair is deferred, not lost...
  EXPECT_EQ(core.class_size(static_cast<int>(kRepair)), 1u);
  EXPECT_FALSE(core.grant_next(reject_charged_repair, &req));
  // ...and granted as soon as the budget admits it.
  ASSERT_TRUE(core.grant_next(admit_all, &req));
  EXPECT_EQ(req.class_idx, static_cast<int>(kRepair));
  EXPECT_TRUE(core.empty());
}

// Charge-once-per-path semantics: non-charging hops (every link of a
// transfer's path after the first) bypass budget admission entirely.
TEST(FairQueueCore, UnchargedRequestsBypassBudgetAdmission) {
  QosConfig cfg;
  FairQueueCore core(cfg);
  core.add(ctx_of(kRepair, 0), 1000, /*charge=*/false);
  const auto reject_all_charged = [](const FairQueueCore::Request& r) {
    return !r.charge;
  };
  FairQueueCore::Request req;
  ASSERT_TRUE(core.grant_next(reject_all_charged, &req));
  EXPECT_FALSE(req.charge);
}

// ------------------------------------------------------------ LinkScheduler

// Work-conservation, part 1: a single backlogged flow on an otherwise idle
// link gets the full link rate — its class weight (1 of 10) is irrelevant
// without competition.
TEST(LinkScheduler, SingleFlowGetsFullLinkRate) {
  QosConfig cfg;
  cfg.rebalance_period = 0;  // no controller on a bare link
  const double spb = 1.0 / 40e6;  // 40 MB/s
  LinkScheduler link(spb, cfg);

  const Bytes total = 2 * 1024 * 1024;  // 50 ms of link time
  const auto t0 = Clock::now();
  Clock::time_point end{};
  for (Bytes sent = 0; sent < total; sent += 64 * 1024) {
    end = link.request(ctx_of(TrafficClass::kBackgroundEncode, 0), 64 * 1024);
  }
  std::this_thread::sleep_until(end);
  const double elapsed = seconds_since(t0);
  const double ideal = static_cast<double>(total) * spb;
  EXPECT_GT(elapsed, ideal * 0.8);
  EXPECT_LT(elapsed, ideal * 8);  // generous: TSan, CI noise
}

// Work-conservation, part 2: an unused byte budget on one class must not
// idle the link for other classes.
TEST(LinkScheduler, UnusedBudgetDoesNotIdleTheLink) {
  QosConfig cfg;
  cfg.rebalance_period = 0;
  const double spb = 1.0 / 40e6;
  LinkScheduler link(spb, cfg);
  link.set_class_rate(static_cast<int>(kRepair), 1000);  // ~nothing

  const Bytes total = 2 * 1024 * 1024;
  const auto t0 = Clock::now();
  Clock::time_point end{};
  for (Bytes sent = 0; sent < total; sent += 64 * 1024) {
    end = link.request(ctx_of(kFgRead, 1), 64 * 1024);
  }
  std::this_thread::sleep_until(end);
  const double elapsed = seconds_since(t0);
  const double ideal = static_cast<double>(total) * spb;
  EXPECT_LT(elapsed, ideal * 8);
}

// A charged request beyond the class budget is deferred for roughly the
// bucket refill time; an uncharged request of the same class is not.
TEST(LinkScheduler, BudgetDefersChargedButNotUnchargedHops) {
  QosConfig cfg;
  cfg.rebalance_period = 0;
  const double spb = 1.0 / 200e6;  // fast link: waits are bucket waits
  LinkScheduler link(spb, cfg);
  const Bytes kB = 256 * 1024;
  // Rate 512 KB/s, bucket starts full at max(rate/2, 256KB) = 256KB.
  link.set_class_rate(static_cast<int>(kRepair), 512 * 1024);

  // The bucket is debt-style (admit while tokens are positive, charge the
  // full request): the first request drains the full bucket, the second is
  // still admitted into debt, and it is the next charged request that waits
  // for the refill to climb back above zero (~256KB / 512KB/s = 0.5 s).
  link.request(ctx_of(kRepair, 0), kB);
  link.request(ctx_of(kRepair, 0), kB);

  // Uncharged hop: granted without waiting on tokens even while in debt.
  auto t0 = Clock::now();
  link.request(ctx_of(kRepair, 0), kB, /*charge=*/false);
  EXPECT_LT(seconds_since(t0), 0.2);

  // Charged request: deferred until the debt is repaid.
  t0 = Clock::now();
  link.request(ctx_of(kRepair, 0), kB, /*charge=*/true);
  EXPECT_GT(seconds_since(t0), 0.2);
}

// Starvation-freedom: a weight-1 background flow keeps making progress
// while a weight-12 foreground flow saturates the link from several
// threads.  WFQ gives it ~weight share; the assertion only requires it not
// be starved.
TEST(LinkScheduler, LowWeightFlowIsNotStarved) {
  QosConfig cfg;
  cfg.rebalance_period = 0;
  cfg.tenant_weight[1] = 3.0;
  const double spb = 1.0 / 40e6;
  LinkScheduler link(spb, cfg);

  std::atomic<bool> running{true};
  std::atomic<int64_t> fg_bytes{0};
  std::atomic<int64_t> bg_bytes{0};
  const Bytes kReq = 64 * 1024;
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&] {
      while (running.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_until(link.request(ctx_of(kFgRead, 1), kReq));
        fg_bytes.fetch_add(kReq, std::memory_order_relaxed);
      }
    });
  }
  threads.emplace_back([&] {
    while (running.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_until(
          link.request(ctx_of(TrafficClass::kBackgroundEncode, 0), kReq));
      bg_bytes.fetch_add(kReq, std::memory_order_relaxed);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  running.store(false);
  for (auto& t : threads) t.join();

  EXPECT_GT(bg_bytes.load(), 0);
  // Expected share 1/13; require at least 1/50 (starvation would be ~0).
  EXPECT_GT(static_cast<double>(bg_bytes.load()),
            static_cast<double>(fg_bytes.load()) / 50.0);
}

// -------------------------------------------------------- ThrottledTransport

// End-to-end weighted shares through the real transport: two tenants with
// 3:1 weights push through one receiver; delivered bytes must converge near
// the configured ratio.  The band is wider than the bench's (+/-25% vs
// +/-10%): CI runs this under TSan where scheduling noise is severe.
TEST(QosTransport, TenantsConvergeTowardWeightedShares) {
  const Topology topo(3, 1);
  cfs::ThrottleConfig tcfg;
  tcfg.node_bw = 20e6;
  tcfg.rack_uplink_bw = 20e6;
  tcfg.chunk_size = 64_KB;
  tcfg.qos.enable = true;
  tcfg.qos.tenant_weight[1] = 3.0;
  tcfg.qos.tenant_weight[2] = 1.0;
  cfs::ThrottledTransport transport(topo, tcfg);

  std::atomic<bool> running{true};
  std::atomic<int64_t> bytes[2] = {0, 0};
  std::vector<std::thread> pushers;
  for (int t = 0; t < 2; ++t) {
    for (int i = 0; i < 3; ++i) {  // backlog: several pushers per flow
      pushers.emplace_back([&, t] {
        QosScope scope(kFgRead, t + 1);
        while (running.load(std::memory_order_relaxed)) {
          transport.transfer(static_cast<NodeId>(t), 2, 64_KB);
          bytes[t].fetch_add(64_KB, std::memory_order_relaxed);
        }
      });
    }
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  running.store(false);
  for (auto& p : pushers) p.join();

  const double ratio = static_cast<double>(bytes[0].load()) /
                       static_cast<double>(bytes[1].load());
  EXPECT_GT(ratio, 3.0 * 0.75);
  EXPECT_LT(ratio, 3.0 * 1.25);
}

// ------------------------------------------------------------ scope semantics

TEST(QosContext, DefaultContextIsInactive) {
  EXPECT_FALSE(context_active());
  EXPECT_EQ(current_context(), ctx_of(kFgRead, 0));
}

TEST(QosContext, QosScopeInstallsAndRestores) {
  {
    QosScope scope(kRepair, 7);
    EXPECT_TRUE(context_active());
    EXPECT_EQ(current_context(), ctx_of(kRepair, 7));
    {
      QosScope inner(kFgRead, 2);
      EXPECT_EQ(current_context(), ctx_of(kFgRead, 2));
    }
    EXPECT_EQ(current_context(), ctx_of(kRepair, 7));
  }
  EXPECT_FALSE(context_active());
}

TEST(QosContext, OpScopeYieldsToOuterContext) {
  // Bare: OpScope installs the operation default.
  {
    OpScope op(TrafficClass::kBackgroundEncode);
    EXPECT_EQ(current_context().cls, TrafficClass::kBackgroundEncode);
  }
  // Wrapped: the outer (explicit) scope wins — the read a tenant issues
  // stays that tenant's even while MiniCfs tags its own entry points.
  {
    QosScope outer(kFgRead, 5);
    OpScope op(TrafficClass::kBackgroundEncode);
    EXPECT_EQ(current_context(), ctx_of(kFgRead, 5));
  }
}

TEST(QosContext, CaptureCarriesContextAcrossThreads) {
  QosScope outer(TrafficClass::kForegroundWrite, 9);
  const Captured cap = capture();
  TransferContext seen;
  bool seen_active = false;
  std::thread helper([&] {
    EXPECT_FALSE(context_active());  // fresh thread: nothing ambient
    InstallScope install(cap);
    seen = current_context();
    seen_active = context_active();
  });
  helper.join();
  EXPECT_TRUE(seen_active);
  EXPECT_EQ(seen, ctx_of(TrafficClass::kForegroundWrite, 9));
}

// ------------------------------------------------------------ byte identity

// Invariant 11 sweep: the same deterministic encode / kill / repair / read
// sequence with QoS off and on must produce identical payloads everywhere —
// every read result and every stored block, parity included.
std::vector<std::vector<uint8_t>> payload_sweep(bool qos_on) {
  cfs::CfsConfig cfg;
  cfg.racks = 8;
  cfg.nodes_per_rack = 1;
  cfg.placement.code = CodeParams{6, 4};
  cfg.placement.replication = 2;
  cfg.use_ear = true;
  cfg.block_size = 32_KB;
  cfg.seed = 17;

  Topology topo(cfg.racks, cfg.nodes_per_rack);
  cfs::ThrottleConfig tcfg;
  tcfg.node_bw = 100e6;  // fast: the sweep is about bytes, not timing
  tcfg.rack_uplink_bw = 100e6;
  tcfg.chunk_size = 8_KB;
  tcfg.qos.enable = qos_on;
  tcfg.qos.tenant_weight[1] = 3.0;
  cfs::MiniCfs cfs(cfg,
                   std::make_unique<cfs::ThrottledTransport>(topo, tcfg));

  Rng rng(23);
  for (int i = 0; i < 8; ++i) {
    std::vector<uint8_t> data(static_cast<size_t>(cfg.block_size));
    for (auto& b : data) b = static_cast<uint8_t>(rng.uniform(256));
    cfs.write_block(data);
  }
  for (const StripeId s : cfs.sealed_stripes()) cfs.encode_stripe(s);
  cfs.kill_node(2);
  cfs.restore_redundancy();

  std::vector<std::vector<uint8_t>> payloads;
  QosScope scope(kFgRead, 1);
  for (const BlockId b : cfs.all_blocks()) {
    const auto buf = cfs.read_block(b, /*reader=*/1);
    payloads.emplace_back(buf.span().begin(), buf.span().end());
  }
  const cfs::ClusterImage image = cfs.export_image();
  for (const auto& node : image.node_blocks) {
    for (const auto& [block, buf] : node) {
      payloads.emplace_back(buf.span().begin(), buf.span().end());
    }
  }
  return payloads;
}

TEST(QosByteIdentity, SchedulingNeverChangesPayloads) {
  const auto off = payload_sweep(false);
  const auto on = payload_sweep(true);
  ASSERT_EQ(off.size(), on.size());
  for (size_t i = 0; i < off.size(); ++i) {
    ASSERT_EQ(off[i], on[i]) << "payload " << i << " diverged under QoS";
  }
}

}  // namespace
}  // namespace ear::qos
