// Concurrency stress / property tests for the lock-striped NameNode
// namespace (cfs/namespace.h): seeded multi-threaded harnesses where
// foreground writers, a RaidNode encode pass, RepairManager drainers, and
// snapshot readers race on one MiniCfs.  Runs under TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <chrono>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "cfs/minicfs.h"
#include "cfs/raidnode.h"
#include "common/rng.h"
#include "failure/repair.h"

namespace ear::cfs {
namespace {

CfsConfig harness_config(int namespace_shards = NamespaceShards::kDefaultShards) {
  CfsConfig cfg;
  cfg.racks = 10;
  cfg.nodes_per_rack = 3;
  cfg.placement.code = CodeParams{6, 4};
  cfg.placement.replication = 2;
  cfg.placement.c = 1;
  cfg.use_ear = true;
  cfg.block_size = 4_KB;
  cfg.seed = 21;
  cfg.namespace_shards = namespace_shards;
  return cfg;
}

std::unique_ptr<MiniCfs> make_cfs(const CfsConfig& cfg) {
  const Topology topo(cfg.racks, cfg.nodes_per_rack);
  return std::make_unique<MiniCfs>(cfg,
                                   std::make_unique<InstantTransport>(topo));
}

std::vector<uint8_t> payload_for(uint64_t seed, Bytes block_size) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  std::vector<uint8_t> data(static_cast<size_t>(block_size));
  for (auto& b : data) b = static_cast<uint8_t>(rng.uniform(256));
  return data;
}

// The internal-consistency property every snapshot must satisfy, no matter
// when it was taken: the block and stripe views agree (no torn commit).
void expect_consistent(const NamespaceSnapshot& snap, int k, int m) {
  const int n = k + m;
  for (const auto& [block, status] : snap.blocks) {
    if (status.stripe == kInvalidStripe) continue;
    const auto it = snap.stripes.find(status.stripe);
    ASSERT_NE(it, snap.stripes.end())
        << "block " << block << " points at missing stripe " << status.stripe;
    const StripeMeta& meta = it->second;
    ASSERT_GE(status.position, 0);
    ASSERT_LT(status.position, n);
    if (status.position < k) {
      ASSERT_LT(static_cast<size_t>(status.position),
                meta.data_blocks.size());
      EXPECT_EQ(meta.data_blocks[static_cast<size_t>(status.position)], block)
          << "stripe " << status.stripe << " slot " << status.position;
    } else {
      ASSERT_TRUE(meta.encoded)
          << "parity block registered on unencoded stripe";
      ASSERT_LT(static_cast<size_t>(status.position - k),
                meta.parity_blocks.size());
      EXPECT_EQ(meta.parity_blocks[static_cast<size_t>(status.position - k)],
                block);
    }
    EXPECT_EQ(status.encoded, meta.encoded);
  }
  for (const auto& [id, meta] : snap.stripes) {
    EXPECT_EQ(meta.id, id);
    ASSERT_LE(static_cast<int>(meta.data_blocks.size()), k);
    if (meta.encoded) {
      // No torn stripe: an encoded stripe is complete — k data slots, all
      // filled, m parity blocks, every one registered with a location.
      ASSERT_EQ(static_cast<int>(meta.data_blocks.size()), k)
          << "stripe " << id;
      ASSERT_EQ(static_cast<int>(meta.parity_blocks.size()), m)
          << "stripe " << id;
    }
    for (size_t pos = 0; pos < meta.data_blocks.size(); ++pos) {
      const BlockId b = meta.data_blocks[pos];
      if (b == kInvalidBlock) continue;  // writer commit still in flight
      const auto bit = snap.blocks.find(b);
      if (meta.encoded) {
        ASSERT_NE(bit, snap.blocks.end()) << "encoded stripe " << id
                                          << " lost data block " << b;
      }
      if (bit == snap.blocks.end()) continue;
      EXPECT_EQ(bit->second.stripe, id);
      EXPECT_EQ(bit->second.position, static_cast<int>(pos));
      EXPECT_FALSE(bit->second.locations.empty());
    }
    for (size_t j = 0; j < meta.parity_blocks.size(); ++j) {
      const BlockId b = meta.parity_blocks[j];
      const auto bit = snap.blocks.find(b);
      ASSERT_NE(bit, snap.blocks.end())
          << "encoded stripe " << id << " lost parity block " << b;
      EXPECT_EQ(bit->second.stripe, id);
      EXPECT_EQ(bit->second.position, static_cast<int>(k + j));
      EXPECT_FALSE(bit->second.locations.empty());
    }
  }
}

// ------------------------------------------------------------- the harness

TEST(NameNodeConcurrency, WritersEncodersRepairersSnapshottersRace) {
  const CfsConfig cfg = harness_config();
  const int k = cfg.placement.code.k;
  const int m = cfg.placement.code.m();
  auto cfs = make_cfs(cfg);
  const int node_count = cfs->topology().node_count();

  constexpr int kWriters = 4;
  constexpr int kBlocksPerWriter = 24;
  std::atomic<bool> writers_done{false};
  std::atomic<bool> all_done{false};
  std::vector<std::vector<BlockId>> written(kWriters);

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kBlocksPerWriter; ++i) {
        const auto data = payload_for(
            static_cast<uint64_t>(w * 1000 + i), cfg.block_size);
        const NodeId writer =
            static_cast<NodeId>((w * 7 + i) % node_count);
        written[static_cast<size_t>(w)].push_back(
            cfs->write_block(data, writer));
      }
    });
  }

  // RaidNode encode passes racing the writers; failed stripes (a source
  // replica died or a store had not landed yet) stay sealed and retryable.
  std::set<StripeId> attempted;
  std::vector<StripeId> failed_once;
  std::thread encoder([&] {
    RaidNode raid(*cfs, /*map_slots=*/2);
    while (!writers_done.load()) {
      std::vector<StripeId> batch;
      for (const StripeId s : cfs->sealed_stripes()) {
        if (attempted.insert(s).second) batch.push_back(s);
      }
      if (!batch.empty()) {
        const EncodeReport report = raid.encode_stripes(batch);
        failed_once.insert(failed_once.end(), report.failed.begin(),
                           report.failed.end());
      } else {
        std::this_thread::yield();
      }
    }
    std::vector<StripeId> final_batch;
    for (const StripeId s : cfs->sealed_stripes()) {
      if (attempted.insert(s).second) final_batch.push_back(s);
    }
    if (!final_batch.empty()) {
      const EncodeReport report = raid.encode_stripes(final_batch);
      failed_once.insert(failed_once.end(), report.failed.begin(),
                         report.failed.end());
    }
  });

  // Repair drainers racing everything: a node dies mid-run, gets scheduled,
  // and live workers rebuild / re-replicate while writes and encodes go on.
  const NodeId victim = 4;
  failure::RepairConfig rcfg;
  rcfg.workers = 2;
  failure::RepairManager repair(*cfs, rcfg);
  repair.start();
  std::thread failure_driver([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    cfs->kill_node(victim);
    repair.schedule_node(victim);
    for (int i = 0; i < 3; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      repair.schedule_scan();
    }
  });

  // Snapshot readers assert internal consistency the whole time.
  std::vector<std::thread> snapshotters;
  for (int s = 0; s < 2; ++s) {
    snapshotters.emplace_back([&] {
      while (!all_done.load()) {
        expect_consistent(cfs->namespace_snapshot(), k, m);
      }
    });
  }

  for (auto& t : threads) t.join();
  writers_done.store(true);
  encoder.join();
  failure_driver.join();
  repair.wait_idle();
  repair.stop();
  all_done.store(true);
  for (auto& t : snapshotters) t.join();

  // Mop up: restore redundancy and retry stripes whose encode raced the
  // victim's death.
  cfs->restore_redundancy();
  {
    RaidNode raid(*cfs, /*map_slots=*/2);
    std::vector<StripeId> retry;
    for (const StripeId s : failed_once) {
      if (!cfs->is_encoded(s)) retry.push_back(s);
    }
    if (!retry.empty()) {
      const EncodeReport report = raid.encode_stripes(retry);
      EXPECT_TRUE(report.failed.empty());
    }
  }

  // No duplicate BlockIds across writers.
  std::set<BlockId> ids;
  size_t total = 0;
  for (const auto& w : written) {
    total += w.size();
    ids.insert(w.begin(), w.end());
  }
  EXPECT_EQ(ids.size(), total);
  EXPECT_EQ(total, static_cast<size_t>(kWriters * kBlocksPerWriter));

  // No lost blocks: every written id is registered and every registered
  // block (data and parity) is readable somewhere.
  const NamespaceSnapshot snap = cfs->namespace_snapshot();
  expect_consistent(snap, k, m);
  for (const BlockId b : ids) {
    ASSERT_TRUE(snap.blocks.count(b)) << "lost block " << b;
  }
  NodeId reader = 0;
  while (!cfs->node_alive(reader)) ++reader;
  for (const auto& [block, status] : snap.blocks) {
    (void)status;
    EXPECT_NO_THROW(cfs->read_block(block, reader)) << "block " << block;
  }

  // Every encoded stripe resolves to k + m distinct positions.
  int encoded = 0;
  for (const auto& [id, meta] : snap.stripes) {
    if (!meta.encoded) continue;
    ++encoded;
    std::set<int> positions;
    for (const BlockId b : meta.data_blocks) {
      positions.insert(snap.blocks.at(b).position);
    }
    for (const BlockId b : meta.parity_blocks) {
      positions.insert(snap.blocks.at(b).position);
    }
    EXPECT_EQ(static_cast<int>(positions.size()), k + m) << "stripe " << id;
    EXPECT_EQ(*positions.begin(), 0);
    EXPECT_EQ(*positions.rbegin(), k + m - 1);
  }
  EXPECT_GT(encoded, 0) << "harness never exercised the encode path";
}

// ------------------------------------------------- snapshot property test

TEST(NameNodeConcurrency, SnapshotsAreConsistentWhileMutatorsRun) {
  // An odd shard count exercises the hash spread; the property must hold
  // for any N.
  const CfsConfig cfg = harness_config(/*namespace_shards=*/5);
  const int k = cfg.placement.code.k;
  const int m = cfg.placement.code.m();
  auto cfs = make_cfs(cfg);
  const int node_count = cfs->topology().node_count();

  // Bounded mutator load: unbounded writers would outrun the snapshot loop
  // on a single-core host (each snapshot copies the whole namespace, so the
  // loop slows as the namespace grows and never catches up).
  constexpr int kWriterThreads = 3;
  constexpr int kBlocksPerWriter = 60;
  std::atomic<int> writers_running{kWriterThreads};
  std::atomic<bool> writers_done{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriterThreads; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kBlocksPerWriter; ++i) {
        const auto data = payload_for(
            static_cast<uint64_t>(w) * 100000 + static_cast<uint64_t>(i),
            cfg.block_size);
        cfs->write_block(data,
                         static_cast<NodeId>((w * 11 + i) % node_count));
      }
      if (writers_running.fetch_sub(1) == 1) writers_done.store(true);
    });
  }
  std::thread encoder([&] {
    std::set<StripeId> attempted;
    while (!writers_done.load()) {
      bool found = false;
      for (const StripeId s : cfs->sealed_stripes()) {
        if (!attempted.insert(s).second) continue;
        found = true;
        try {
          cfs->encode_stripe(s);
        } catch (const std::runtime_error&) {
          // a racing store had not landed; leave it for the next pass
          attempted.erase(s);
        }
      }
      if (!found) std::this_thread::yield();
    }
  });

  // At least 100 snapshots, and keep snapshotting as long as the mutators
  // run so plenty of them land mid-commit.
  int taken = 0;
  while (taken < 100 || !writers_done.load()) {
    expect_consistent(cfs->namespace_snapshot(), k, m);
    ++taken;
    std::this_thread::yield();
  }
  for (auto& t : writers) t.join();
  encoder.join();

  const NamespaceSnapshot final_snap = cfs->namespace_snapshot();
  expect_consistent(final_snap, k, m);
  EXPECT_GT(final_snap.blocks.size(), 0u);
}

// ---------------------------------------------------- determinism harness

struct ScheduleResult {
  NamespaceSnapshot snap;
  std::vector<BlockId> blocks;
};

// Runs a barrier-stepped schedule: S ops, op s executed by thread s % T
// while the other threads wait at the barrier.  The schedule (who does what,
// with which payload) is a pure function of the seed, so two runs must
// produce identical namespaces — this guards the pre-drawn-RNG contract:
// no hidden thread-local or wall-clock state may leak into placement,
// encoding, or id assignment.
ScheduleResult run_schedule(uint64_t seed) {
  CfsConfig cfg = harness_config();
  cfg.seed = seed;
  auto cfs = make_cfs(cfg);
  const int node_count = cfs->topology().node_count();

  constexpr int kThreads = 3;
  constexpr int kSteps = 90;
  std::barrier sync(kThreads);
  std::vector<BlockId> blocks(kSteps, kInvalidBlock);
  std::set<StripeId> encoded;

  auto op = [&](int step) {
    if (step % 10 == 9) {
      // Encode the lowest sealed, not-yet-encoded stripe (sorted, so the
      // choice is schedule-determined, not timing-determined).
      auto sealed = cfs->sealed_stripes();
      std::sort(sealed.begin(), sealed.end());
      for (const StripeId s : sealed) {
        if (encoded.count(s)) continue;
        cfs->encode_stripe(s);
        encoded.insert(s);
        break;
      }
    } else {
      const auto data =
          payload_for(seed * 1000 + static_cast<uint64_t>(step),
                      cfg.block_size);
      blocks[static_cast<size_t>(step)] = cfs->write_block(
          data, static_cast<NodeId>(step % node_count));
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int step = 0; step < kSteps; ++step) {
        if (step % kThreads == t) op(step);
        sync.arrive_and_wait();
      }
    });
  }
  for (auto& th : threads) th.join();

  return ScheduleResult{cfs->namespace_snapshot(), std::move(blocks)};
}

void expect_equal_namespaces(const NamespaceSnapshot& a,
                             const NamespaceSnapshot& b) {
  ASSERT_EQ(a.blocks.size(), b.blocks.size());
  for (const auto& [block, sa] : a.blocks) {
    const auto it = b.blocks.find(block);
    ASSERT_NE(it, b.blocks.end()) << "block " << block;
    const BlockStatus& sb = it->second;
    EXPECT_EQ(sa.locations, sb.locations) << "block " << block;
    EXPECT_EQ(sa.stripe, sb.stripe) << "block " << block;
    EXPECT_EQ(sa.position, sb.position) << "block " << block;
    EXPECT_EQ(sa.encoded, sb.encoded) << "block " << block;
  }
  ASSERT_EQ(a.stripes.size(), b.stripes.size());
  for (const auto& [id, ma] : a.stripes) {
    const auto it = b.stripes.find(id);
    ASSERT_NE(it, b.stripes.end()) << "stripe " << id;
    EXPECT_EQ(ma.data_blocks, it->second.data_blocks) << "stripe " << id;
    EXPECT_EQ(ma.parity_blocks, it->second.parity_blocks) << "stripe " << id;
    EXPECT_EQ(ma.encoded, it->second.encoded) << "stripe " << id;
  }
}

TEST(NameNodeConcurrency, BarrierSteppedScheduleIsDeterministic) {
  const ScheduleResult first = run_schedule(31);
  const ScheduleResult second = run_schedule(31);
  EXPECT_EQ(first.blocks, second.blocks)
      << "same schedule must assign the same block ids";
  expect_equal_namespaces(first.snap, second.snap);

  // A different seed must actually change the outcome (the comparison above
  // is not vacuous).
  const ScheduleResult other = run_schedule(32);
  bool any_difference = other.snap.blocks.size() != first.snap.blocks.size();
  for (const auto& [block, status] : first.snap.blocks) {
    if (any_difference) break;
    const auto it = other.snap.blocks.find(block);
    any_difference =
        it == other.snap.blocks.end() ||
        it->second.locations != status.locations;
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace ear::cfs
