#include "cfs/transport.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace ear::cfs {
namespace {

using Clock = std::chrono::steady_clock;

double timed(const std::function<void()>& fn) {
  const auto start = Clock::now();
  fn();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

TEST(InstantTransport, CountsBytesByLocality) {
  const Topology topo(3, 2);
  InstantTransport t(topo);
  t.transfer(0, 1, 100);  // intra
  t.transfer(0, 2, 200);  // cross
  t.transfer(4, 4, 999);  // local: free
  EXPECT_EQ(t.intra_rack_bytes(), 100);
  EXPECT_EQ(t.cross_rack_bytes(), 200);
}

TEST(ThrottledTransport, SingleTransferTakesExpectedTime) {
  const Topology topo(2, 2);
  ThrottleConfig cfg;
  cfg.node_bw = 10e6;  // 10 MB/s
  cfg.rack_uplink_bw = 10e6;
  cfg.chunk_size = 64_KB;
  ThrottledTransport t(topo, cfg);
  // 1 MB at 10 MB/s = 0.1 s.
  const double elapsed = timed([&] { t.transfer(0, 2, 1_MB); });
  EXPECT_GT(elapsed, 0.08);
  EXPECT_LT(elapsed, 0.25);
  EXPECT_EQ(t.cross_rack_bytes(), 1_MB);
}

TEST(ThrottledTransport, LocalTransferIsFree) {
  const Topology topo(2, 2);
  ThrottleConfig cfg;
  cfg.node_bw = 1e6;
  cfg.rack_uplink_bw = 1e6;
  ThrottledTransport t(topo, cfg);
  const double elapsed = timed([&] { t.transfer(1, 1, 100_MB); });
  EXPECT_LT(elapsed, 0.01);
}

TEST(ThrottledTransport, ContendingTransfersShareALink) {
  const Topology topo(2, 2);
  ThrottleConfig cfg;
  cfg.node_bw = 20e6;
  cfg.rack_uplink_bw = 20e6;
  cfg.chunk_size = 64_KB;
  ThrottledTransport t(topo, cfg);

  // Alone: 1 MB through node 0's uplink at 20 MB/s = 50 ms.
  const double alone = timed([&] { t.transfer(0, 1, 1_MB); });

  // Two concurrent transfers out of node 0 share its uplink: ~2x slower.
  std::vector<std::thread> threads;
  const double together = timed([&] {
    threads.emplace_back([&] { t.transfer(0, 1, 1_MB); });
    threads.emplace_back([&] { t.transfer(0, 2, 1_MB); });
    for (auto& th : threads) th.join();
  });
  EXPECT_GT(together, alone * 1.5);
}

TEST(ThrottledTransport, DisjointPathsDoNotContend) {
  const Topology topo(4, 2);
  ThrottleConfig cfg;
  cfg.node_bw = 20e6;
  cfg.rack_uplink_bw = 20e6;
  cfg.chunk_size = 64_KB;
  ThrottledTransport t(topo, cfg);

  const double alone = timed([&] { t.transfer(0, 1, 1_MB); });
  std::vector<std::thread> threads;
  const double together = timed([&] {
    threads.emplace_back([&] { t.transfer(2, 3, 1_MB); });
    threads.emplace_back([&] { t.transfer(4, 5, 1_MB); });
    for (auto& th : threads) th.join();
  });
  EXPECT_LT(together, alone * 1.8) << "disjoint paths should run in parallel";
}

TEST(ThrottledTransport, OversubscribedCoreSlowsCrossRackOnly) {
  const Topology topo(2, 4);
  ThrottleConfig cfg;
  cfg.node_bw = 40e6;
  cfg.rack_uplink_bw = 10e6;  // 4:1 oversubscription
  cfg.chunk_size = 64_KB;
  ThrottledTransport t(topo, cfg);
  const double intra = timed([&] { t.transfer(0, 1, 1_MB); });
  const double cross = timed([&] { t.transfer(0, 4, 1_MB); });
  EXPECT_GT(cross, intra * 2.0);
}

}  // namespace
}  // namespace ear::cfs
