#include "mapred/encoding_job.h"

#include <gtest/gtest.h>

#include <memory>

#include "sim/network.h"

namespace ear::mapred {
namespace {

struct World {
  Topology topo{10, 4};
  sim::Engine engine;
  sim::Network network;
  std::unique_ptr<PlacementPolicy> policy;
  std::vector<StripeId> stripes;

  explicit World(bool use_ear, int stripe_count = 10, uint64_t seed = 5)
      : network(engine, topo, sim::NetConfig{}) {
    PlacementConfig pc;
    pc.code = CodeParams{8, 6};
    pc.replication = 3;
    policy = use_ear ? make_encoding_aware_replication(topo, pc, seed)
                     : make_random_replication(topo, pc, seed);
    BlockId next = 0;
    while (static_cast<int>(policy->sealed_stripes().size()) < stripe_count) {
      policy->place_block(next++, std::nullopt);
    }
    stripes = policy->sealed_stripes();
    stripes.resize(static_cast<size_t>(stripe_count));
  }
};

EncodingJobConfig job_config(EncodingLocality locality) {
  EncodingJobConfig cfg;
  cfg.map_slots_per_node = 2;
  cfg.block_size = 16_MB;
  cfg.locality = locality;
  return cfg;
}

TEST(EncodingJob, StrictKeepsEveryTaskInTheCoreRack) {
  World w(true);
  EncodingJob job(w.engine, w.network, *w.policy,
                  job_config(EncodingLocality::kStrict));
  job.submit(w.stripes);
  w.engine.run();
  const EncodingJobReport& r = job.report();
  EXPECT_EQ(r.stripes, 10);
  EXPECT_EQ(r.tasks_in_core_rack, 10);
  EXPECT_EQ(r.tasks_elsewhere, 0);
  EXPECT_EQ(r.cross_rack_downloads, 0);
  EXPECT_GT(r.duration, 0.0);
}

TEST(EncodingJob, NoLocalityCausesCrossRackDownloadsEvenForEar) {
  // §IV-B motivation: without the JobTracker changes, EAR placements alone
  // do not prevent cross-rack downloads.
  World w(true, 10, 7);
  EncodingJob job(w.engine, w.network, *w.policy,
                  job_config(EncodingLocality::kNone));
  job.submit(w.stripes);
  w.engine.run();
  const EncodingJobReport& r = job.report();
  EXPECT_GT(r.tasks_elsewhere, 0);
  EXPECT_GT(r.cross_rack_downloads, 0);
}

TEST(EncodingJob, PreferredModeMostlyHitsTheCoreRack) {
  World w(true, 10, 9);
  EncodingJob job(w.engine, w.network, *w.policy,
                  job_config(EncodingLocality::kPreferred));
  job.submit(w.stripes);
  w.engine.run();
  const EncodingJobReport& r = job.report();
  // With 2 slots x 4 nodes per rack and 10 stripes, the preferred node (or
  // its rack) is almost always free.
  EXPECT_GE(r.tasks_in_core_rack, 8);
}

TEST(EncodingJob, StrictQueuesWhenCoreRackIsSaturated) {
  // Many stripes, tiny slot count: strict tasks must wait for core-rack
  // slots but all must eventually run there.
  World w(true, 20, 11);
  auto cfg = job_config(EncodingLocality::kStrict);
  cfg.map_slots_per_node = 1;
  EncodingJob job(w.engine, w.network, *w.policy, cfg);
  job.submit(w.stripes);
  w.engine.run();
  const EncodingJobReport& r = job.report();
  EXPECT_EQ(r.tasks_in_core_rack, 20);
  EXPECT_EQ(r.cross_rack_downloads, 0);
}

TEST(EncodingJob, WorksForRandomReplicationToo) {
  World w(false, 10, 13);
  EncodingJob job(w.engine, w.network, *w.policy,
                  job_config(EncodingLocality::kPreferred));
  job.submit(w.stripes);
  w.engine.run();
  const EncodingJobReport& r = job.report();
  EXPECT_EQ(r.stripes, 10);
  EXPECT_GT(r.duration, 0.0);
  // RR placements force cross-rack downloads no matter the scheduling.
  EXPECT_GT(r.cross_rack_downloads, 0);
}

TEST(EncodingJob, StrictIsNoSlowerThanNoneForEar) {
  double durations[2];
  for (const auto mode :
       {EncodingLocality::kStrict, EncodingLocality::kNone}) {
    World w(true, 16, 15);
    EncodingJob job(w.engine, w.network, *w.policy, job_config(mode));
    job.submit(w.stripes);
    w.engine.run();
    durations[mode == EncodingLocality::kStrict ? 0 : 1] =
        job.report().duration;
  }
  EXPECT_LT(durations[0], durations[1]);
}

}  // namespace
}  // namespace ear::mapred
