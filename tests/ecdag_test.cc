// Property tests for the distributed encode/repair DAG subsystem
// (src/ecdag/): every DAG result must be byte-identical to the single-node
// RSCode / LRCCode / CRSCode computation it distributes, across (k, m) x
// rack-layout x failure-pattern sweeps, and the transport schedule must
// actually cut cross-rack hops when racks hold more blocks than outputs.
#include "ecdag/dag.h"
#include "ecdag/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <stdexcept>
#include <vector>

#include "cfs/minicfs.h"
#include "common/rng.h"
#include "datapath/pipeline.h"
#include "erasure/crs.h"
#include "erasure/lrc.h"
#include "erasure/rs.h"
#include "sim/cluster.h"

namespace ear::ecdag {
namespace {

std::vector<uint8_t> random_block(Rng& rng, size_t size) {
  std::vector<uint8_t> b(size);
  for (auto& x : b) x = static_cast<uint8_t>(rng.uniform(256));
  return b;
}

// Round-robin block placement: block i on node i % node_count.
std::vector<NodeId> rr_nodes(int count, const Topology& topo) {
  std::vector<NodeId> nodes(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) nodes[static_cast<size_t>(i)] = i % topo.node_count();
  return nodes;
}

// Executes `dag` with a transport that just counts bytes, returning stats.
ExecStats run_counting(const EcDag& dag, const Topology& topo,
                       const std::vector<erasure::BlockView>& in,
                       const std::vector<erasure::MutBlockView>& out,
                       Bytes unit, Bytes chunk = 0) {
  ExecOptions opts;
  opts.unit_size = unit;
  opts.preferred_chunk = chunk;
  opts.charge_local_reads = true;
  std::atomic<int64_t> local_bytes{0};
  return execute(
      dag, topo, in, out, [](NodeId, NodeId, Bytes) {},
      [&local_bytes](NodeId, Bytes len) { local_bytes += len; }, opts);
}

TEST(EcDag, BuilderValidatesAcrossCodesAndLayouts) {
  const std::pair<int, int> layouts[] = {{4, 1}, {3, 4}, {2, 6}, {6, 2}};
  const std::pair<int, int> codes[] = {{4, 2}, {6, 3}, {8, 2}};
  for (const auto& [racks, npr] : layouts) {
    const Topology topo(racks, npr);
    for (const auto& [k, m] : codes) {
      for (const auto construction : {erasure::Construction::kCauchy,
                                      erasure::Construction::kVandermonde}) {
        const erasure::RSCode code(k + m, k, construction);
        std::vector<int> parity_rows;
        for (int j = 0; j < m; ++j) parity_rows.push_back(k + j);
        const erasure::Matrix coeffs =
            code.generator().select_rows(parity_rows);
        const auto inputs = rr_nodes(k, topo);
        std::vector<NodeId> outputs;
        for (int j = 0; j < m; ++j) {
          outputs.push_back((k + j) % topo.node_count());
        }
        for (const NodeId root : {NodeId{0}, topo.node_count() - 1}) {
          const EcDag dag =
              build_aggregation_dag(coeffs, inputs, outputs, root, topo);
          EXPECT_EQ(validate(dag, coeffs), "")
              << "racks=" << racks << " npr=" << npr << " k=" << k
              << " m=" << m << " root=" << root;
        }
      }
    }
  }
}

TEST(EcDag, EncodeMatchesSingleNodeRS) {
  Rng rng(7);
  const size_t block = 4096 + 13;  // ragged chunk tail
  const std::pair<int, int> layouts[] = {{4, 3}, {2, 6}, {6, 1}};
  for (const auto& [racks, npr] : layouts) {
    const Topology topo(racks, npr);
    for (const auto& [k, m] : {std::pair{8, 2}, std::pair{6, 3}}) {
      const erasure::RSCode code(k + m, k);
      std::vector<std::vector<uint8_t>> data;
      std::vector<erasure::BlockView> data_views;
      for (int i = 0; i < k; ++i) data.push_back(random_block(rng, block));
      for (const auto& d : data) data_views.emplace_back(d);

      std::vector<std::vector<uint8_t>> want(static_cast<size_t>(m)),
          got(static_cast<size_t>(m));
      std::vector<erasure::MutBlockView> want_views, got_views;
      for (int j = 0; j < m; ++j) {
        want[static_cast<size_t>(j)].resize(block);
        got[static_cast<size_t>(j)].resize(block);
        want_views.emplace_back(want[static_cast<size_t>(j)]);
        got_views.emplace_back(got[static_cast<size_t>(j)]);
      }
      code.encode(data_views, want_views);

      std::vector<int> parity_rows;
      for (int j = 0; j < m; ++j) parity_rows.push_back(k + j);
      const erasure::Matrix coeffs = code.generator().select_rows(parity_rows);
      const auto inputs = rr_nodes(k, topo);
      std::vector<NodeId> outputs(static_cast<size_t>(m),
                                  topo.node_count() - 1);
      const EcDag dag = build_aggregation_dag(coeffs, inputs, outputs,
                                              /*root=*/0, topo);
      ASSERT_EQ(validate(dag, coeffs), "");
      for (const Bytes chunk : {Bytes{0}, Bytes{1000}}) {
        for (auto& g : got) std::fill(g.begin(), g.end(), uint8_t{0xcc});
        run_counting(dag, topo, data_views, got_views,
                     static_cast<Bytes>(block), chunk);
        for (int j = 0; j < m; ++j) {
          EXPECT_EQ(got[static_cast<size_t>(j)], want[static_cast<size_t>(j)])
              << "racks=" << racks << " k=" << k << " m=" << m
              << " chunk=" << chunk << " parity " << j;
        }
      }
    }
  }
}

TEST(EcDag, DegradedReconstructionMatchesDecodeAcrossFailures) {
  Rng rng(11);
  const int k = 6, m = 3, n = k + m;
  const size_t block = 2048;
  const erasure::RSCode code(n, k);
  const Topology topo(3, 4);

  std::vector<std::vector<uint8_t>> blocks;
  std::vector<erasure::BlockView> data_views;
  for (int i = 0; i < k; ++i) blocks.push_back(random_block(rng, block));
  for (const auto& b : blocks) data_views.emplace_back(b);
  std::vector<std::vector<uint8_t>> parity(static_cast<size_t>(m),
                                           std::vector<uint8_t>(block));
  {
    std::vector<erasure::MutBlockView> pv;
    for (auto& p : parity) pv.emplace_back(p);
    code.encode(data_views, pv);
  }
  for (const auto& p : parity) blocks.push_back(p);  // stripe order 0..n-1

  // Failure patterns: each entry lists the lost positions; reconstruct the
  // first lost one from the k lowest-numbered survivors.
  const std::vector<std::vector<int>> failures = {
      {0}, {5}, {6}, {8}, {0, 7}, {2, 3, 8}};
  for (const auto& lost : failures) {
    std::vector<int> available_ids;
    std::vector<erasure::BlockView> available;
    std::vector<NodeId> sources;
    for (int pos = 0; pos < n && static_cast<int>(available_ids.size()) < k;
         ++pos) {
      if (std::find(lost.begin(), lost.end(), pos) != lost.end()) continue;
      available_ids.push_back(pos);
      available.emplace_back(blocks[static_cast<size_t>(pos)]);
      sources.push_back(pos % topo.node_count());
    }
    const int wanted = lost.front();
    erasure::Matrix coeffs;
    ASSERT_TRUE(code.plan_reconstruct(available_ids, {wanted}, &coeffs));

    std::vector<uint8_t> want(block), got(block, 0xee);
    std::vector<erasure::MutBlockView> want_views{erasure::MutBlockView{want}};
    erasure::RSCode::decode_chunk(coeffs, available, want_views, 0, block);
    EXPECT_EQ(want, blocks[static_cast<size_t>(wanted)]);

    const NodeId reader = topo.node_count() - 1;
    const EcDag dag = build_aggregation_dag(coeffs, sources, {reader},
                                            reader, topo);
    ASSERT_EQ(validate(dag, coeffs), "");
    std::vector<erasure::MutBlockView> got_views{erasure::MutBlockView{got}};
    run_counting(dag, topo, available, got_views, static_cast<Bytes>(block),
                 512);
    EXPECT_EQ(got, want) << "lost position " << wanted;
  }
}

TEST(EcDag, LrcEncodeAndLocalRepair) {
  Rng rng(13);
  const int k = 6, l = 2, g = 2;
  const size_t block = 1024;
  const erasure::LRCCode code(k, l, g);
  const Topology topo(4, 2);

  std::vector<std::vector<uint8_t>> data;
  std::vector<erasure::BlockView> data_views;
  for (int i = 0; i < k; ++i) data.push_back(random_block(rng, block));
  for (const auto& d : data) data_views.emplace_back(d);

  const int m = l + g;
  std::vector<std::vector<uint8_t>> want(static_cast<size_t>(m),
                                         std::vector<uint8_t>(block)),
      got(static_cast<size_t>(m), std::vector<uint8_t>(block, 0x11));
  {
    std::vector<erasure::MutBlockView> wv;
    for (auto& w : want) wv.emplace_back(w);
    code.encode(data_views, wv);
  }
  std::vector<int> parity_rows;
  for (int j = 0; j < m; ++j) parity_rows.push_back(k + j);
  const erasure::Matrix coeffs = code.generator().select_rows(parity_rows);
  const auto inputs = rr_nodes(k, topo);
  const EcDag dag = build_aggregation_dag(
      coeffs, inputs, std::vector<NodeId>(static_cast<size_t>(m), 7),
      /*root=*/7, topo);
  ASSERT_EQ(validate(dag, coeffs), "");
  {
    std::vector<erasure::MutBlockView> gv;
    for (auto& x : got) gv.emplace_back(x);
    run_counting(dag, topo, data_views, gv, static_cast<Bytes>(block), 300);
  }
  EXPECT_EQ(got, want);

  // Local repair of a data block: XOR of the group's survivors plus the
  // group's local parity (all LRC local coefficients are 1).
  const int lost = 1;
  const auto plan = code.repair_plan(lost);
  ASSERT_LT(plan.size(), static_cast<size_t>(k));  // local, not global
  std::vector<erasure::BlockView> srcs;
  std::vector<NodeId> src_nodes;
  for (const int id : plan) {
    srcs.emplace_back(id < k ? erasure::BlockView(data[static_cast<size_t>(id)])
                             : erasure::BlockView(
                                   want[static_cast<size_t>(id - k)]));
    src_nodes.push_back(id % topo.node_count());
  }
  erasure::Matrix ones(1, static_cast<int>(plan.size()));
  for (int i = 0; i < ones.cols(); ++i) ones.at(0, i) = 1;
  const EcDag repair_dag =
      build_aggregation_dag(ones, src_nodes, {0}, /*root=*/0, topo);
  ASSERT_EQ(validate(repair_dag, ones), "");
  std::vector<uint8_t> rebuilt(block, 0x22);
  std::vector<erasure::MutBlockView> rv{erasure::MutBlockView{rebuilt}};
  run_counting(repair_dag, topo, srcs, rv, static_cast<Bytes>(block));
  EXPECT_EQ(rebuilt, data[static_cast<size_t>(lost)]);
}

TEST(EcDag, CrsPacketGranularityLowering) {
  Rng rng(17);
  const int k = 4, m = 2, n = k + m;
  constexpr int kW = erasure::CRSCode::kW;
  const size_t block = static_cast<size_t>(kW) * 96;
  const size_t packet = block / kW;
  const erasure::CRSCode code(n, k);
  const Topology topo(3, 2);

  std::vector<std::vector<uint8_t>> data;
  for (int i = 0; i < k; ++i) data.push_back(random_block(rng, block));
  std::vector<erasure::BlockView> data_views;
  for (const auto& d : data) data_views.emplace_back(d);
  std::vector<std::vector<uint8_t>> want(static_cast<size_t>(m),
                                         std::vector<uint8_t>(block)),
      got(static_cast<size_t>(m), std::vector<uint8_t>(block, 0x33));
  {
    std::vector<erasure::MutBlockView> wv;
    for (auto& w : want) wv.emplace_back(w);
    code.encode(data_views, wv);
  }

  // Packet-granularity lowering: input p = packet p%kW of block p/kW; the
  // {0,1} coefficient matrix is exactly the CRS XOR schedule.
  erasure::Matrix coeffs(m * kW, k * kW);
  for (int r = 0; r < m * kW; ++r) {
    for (const int src : code.schedule()[static_cast<size_t>(r)]) {
      coeffs.at(r, src) = 1;
    }
  }
  std::vector<erasure::BlockView> in_packets;
  std::vector<NodeId> in_nodes;
  for (int i = 0; i < k; ++i) {
    for (int w = 0; w < kW; ++w) {
      in_packets.push_back(
          data_views[static_cast<size_t>(i)].subspan(
              static_cast<size_t>(w) * packet, packet));
      in_nodes.push_back(i % topo.node_count());
    }
  }
  std::vector<erasure::MutBlockView> out_packets;
  std::vector<NodeId> out_nodes;
  for (int j = 0; j < m; ++j) {
    for (int w = 0; w < kW; ++w) {
      out_packets.push_back(erasure::MutBlockView(got[static_cast<size_t>(j)])
                                .subspan(static_cast<size_t>(w) * packet,
                                         packet));
      out_nodes.push_back((k + j) % topo.node_count());
    }
  }
  const EcDag dag = build_aggregation_dag(coeffs, in_nodes, out_nodes,
                                          /*root=*/0, topo);
  ASSERT_EQ(validate(dag, coeffs), "");
  run_counting(dag, topo, in_packets, out_packets,
               static_cast<Bytes>(packet), 64);
  EXPECT_EQ(got, want);
}

TEST(EcDag, AggregationCutsCrossHopsWhenRacksHoldMoreBlocksThanOutputs) {
  // 4 racks x 2 nodes, k = 8 round-robin => every rack holds 2 blocks.
  const Topology topo(4, 2);
  const int k = 8;
  erasure::Matrix coeffs(1, k);  // m = 1: XOR-style repair / single parity
  for (int i = 0; i < k; ++i) coeffs.at(0, i) = static_cast<uint8_t>(i + 1);
  const auto inputs = rr_nodes(k, topo);
  const EcDag dag =
      build_aggregation_dag(coeffs, inputs, {0}, /*root=*/0, topo);
  ASSERT_EQ(validate(dag, coeffs), "");
  const FlowPlan plan = plan_flows(dag, topo);
  // Legacy fan-in ships the 6 remote blocks across the core; the DAG ships
  // one partial per remote rack.  Streams: the 3 remote racks plus the
  // root's rack-mate feeding its raw block intra-rack.
  EXPECT_EQ(plan.cross_hops, 3);
  EXPECT_EQ(plan.streams.size(), 4u);
  EXPECT_TRUE(plan.scatter.empty());  // output lives on the root

  // No-win case: 1 block per rack — aggregation cannot beat raw shipping,
  // and the planner must not try (cross hops == remote blocks).
  const Topology wide(8, 1);
  const auto spread = rr_nodes(k, wide);
  const EcDag flat =
      build_aggregation_dag(coeffs, spread, {0}, /*root=*/0, wide);
  ASSERT_EQ(validate(flat, coeffs), "");
  EXPECT_EQ(plan_flows(flat, wide).cross_hops, 7);
}

TEST(EcDag, ForceAggregatePicksLowestContributingNode) {
  // One remote rack holding 2 blocks, m = 3 outputs: aggregation would ship
  // 3 partials instead of 2 raws, so the default planner refuses...
  const Topology topo(2, 4);
  const int k = 4, m = 3;
  erasure::Matrix coeffs(m, k);
  for (int j = 0; j < m; ++j) {
    for (int i = 0; i < k; ++i) coeffs.at(j, i) = static_cast<uint8_t>(j + i + 1);
  }
  const std::vector<NodeId> inputs = {0, 1, 6, 5};  // nodes 5, 6 in rack 1
  const std::vector<NodeId> outputs = {0, 0, 0};    // all at the root
  const EcDag lazy =
      build_aggregation_dag(coeffs, inputs, outputs, /*root=*/0, topo);
  ASSERT_EQ(validate(lazy, coeffs), "");
  EXPECT_EQ(plan_flows(lazy, topo).cross_hops, 2);  // raw blocks from 5, 6

  // ...but force_aggregate overrides, and the aggregator must be the
  // lowest-numbered contributing node (5), its rack-mate feeding it.
  BuildOptions opts;
  opts.force_aggregate = true;
  const EcDag forced =
      build_aggregation_dag(coeffs, inputs, outputs, /*root=*/0, topo, opts);
  ASSERT_EQ(validate(forced, coeffs), "");
  const FlowPlan plan = plan_flows(forced, topo);
  EXPECT_EQ(plan.cross_hops, 3);  // one partial per output
  EXPECT_EQ(plan.intra_hops, 2);  // 6 -> 5, plus 1 -> 0 in the root's rack
  ASSERT_EQ(plan.streams.size(), 2u);
  const auto& rack1 = plan.streams.back();  // streams ordered by source rack
  EXPECT_EQ(rack1.front().src, 6);
  EXPECT_EQ(rack1.front().dst, 5);
  for (size_t h = 1; h < rack1.size(); ++h) {
    EXPECT_EQ(rack1[h].src, 5);
    EXPECT_EQ(rack1[h].dst, 0);
  }
}

TEST(EcDag, TransferFailureAbortsAllLanesAndRethrows) {
  Rng rng(19);
  const Topology topo(4, 2);
  const int k = 8, m = 1;
  erasure::Matrix coeffs(m, k);
  for (int i = 0; i < k; ++i) coeffs.at(0, i) = 1;
  const auto inputs = rr_nodes(k, topo);
  const EcDag dag =
      build_aggregation_dag(coeffs, inputs, {0}, /*root=*/0, topo);

  const size_t block = 64 * 1024;
  std::vector<std::vector<uint8_t>> data;
  std::vector<erasure::BlockView> views;
  for (int i = 0; i < k; ++i) data.push_back(random_block(rng, block));
  for (const auto& d : data) views.emplace_back(d);
  std::vector<uint8_t> out(block);
  std::vector<erasure::MutBlockView> out_views{erasure::MutBlockView{out}};

  // An aggregator's source dies mid-stripe: the transfer from node 2 starts
  // failing after the first chunk.  The executor must drain every lane and
  // rethrow instead of hanging on the ladder.
  std::atomic<int> calls_from_2{0};
  ExecOptions opts;
  opts.unit_size = static_cast<Bytes>(block);
  opts.preferred_chunk = 4096;
  EXPECT_THROW(
      execute(
          dag, topo, views, out_views,
          [&calls_from_2](NodeId src, NodeId, Bytes) {
            if (src == 2 && ++calls_from_2 > 1) {
              throw std::runtime_error("source died");
            }
          },
          nullptr, opts),
      std::runtime_error);
}

TEST(EcDag, FanoutUploadRunsAfterComputePerChunk) {
  std::vector<int> uploaded;
  std::atomic<int> computed{0};
  datapath::StagedPipeline::run_fanout(
      /*chunks=*/8, /*lanes=*/3, [](int, int) {},
      [&computed](int c) {
        ASSERT_EQ(computed.load(), c);
        ++computed;
      },
      [&uploaded, &computed](int c) {
        // upload(c) may only run once compute(c) has finished.
        EXPECT_GT(computed.load(), c);
        uploaded.push_back(c);
      });
  ASSERT_EQ(uploaded.size(), 8u);
  for (int c = 0; c < 8; ++c) EXPECT_EQ(uploaded[static_cast<size_t>(c)], c);
}

TEST(EcDag, ValidatorRejectsDefectiveDags) {
  const Topology topo(2, 2);
  erasure::Matrix coeffs(1, 2);
  coeffs.at(0, 0) = 3;
  coeffs.at(0, 1) = 5;
  const EcDag good =
      build_aggregation_dag(coeffs, {0, 2}, {0}, /*root=*/0, topo);
  ASSERT_EQ(validate(good, coeffs), "");

  // Wrong coefficient.
  EcDag wrong = good;
  for (auto& node : wrong.nodes) {
    if (node.op == DagOp::kMulAdd) {
      node.coeff = static_cast<uint8_t>(node.coeff ^ 1);
      break;
    }
  }
  EXPECT_NE(validate(wrong, coeffs), "");

  // Output delivered twice.
  EcDag twice = good;
  twice.nodes.push_back(twice.nodes[static_cast<size_t>(twice.outputs[0])]);
  EXPECT_NE(validate(twice, coeffs), "");

  // Fetch moved off the node that stores the input.
  EcDag displaced = good;
  for (auto& node : displaced.nodes) {
    if (node.op == DagOp::kFetch) {
      node.where = node.where + 1;
      break;
    }
  }
  EXPECT_NE(validate(displaced, coeffs), "");
}

// ---- End-to-end: MiniCfs with ecdag on must byte-match ecdag off ---------

cfs::CfsConfig pair_config(bool ecdag) {
  cfs::CfsConfig cfg;
  cfg.racks = 4;
  cfg.nodes_per_rack = 4;
  cfg.placement.code = CodeParams{13, 12};
  cfg.placement.replication = 2;
  cfg.placement.c = 1;
  cfg.use_ear = false;  // scattered RR placement => racks hold several blocks
  cfg.block_size = 64_KB;
  cfg.seed = 29;
  cfg.ecdag_enable = ecdag;
  return cfg;
}

std::unique_ptr<cfs::MiniCfs> make_pair_cfs(const cfs::CfsConfig& cfg) {
  const Topology topo(cfg.racks, cfg.nodes_per_rack);
  return std::make_unique<cfs::MiniCfs>(
      cfg, std::make_unique<cfs::InstantTransport>(topo, /*chunk=*/16_KB));
}

TEST(EcDagMiniCfs, EncodeRepairDegradedReadByteIdentical) {
  const auto cfg_off = pair_config(false);
  const auto cfg_on = pair_config(true);
  auto legacy = make_pair_cfs(cfg_off);
  auto dist = make_pair_cfs(cfg_on);

  Rng rng(31);
  NodeId writer = 0;
  while (legacy->sealed_stripes().size() < 2) {
    const auto payload = random_block(
        rng, static_cast<size_t>(cfg_off.block_size));
    const BlockId a = legacy->write_block(payload, writer);
    const BlockId b = dist->write_block(payload, writer);
    ASSERT_EQ(a, b) << "clusters must evolve in lockstep";
    writer = (writer + 1) % (cfg_off.racks * cfg_off.nodes_per_rack);
  }
  ASSERT_EQ(legacy->sealed_stripes(), dist->sealed_stripes());

  for (const StripeId stripe : legacy->sealed_stripes()) {
    legacy->encode_stripe(stripe);
    dist->encode_stripe(stripe);
  }
  const int64_t legacy_cross = legacy->transport().cross_rack_bytes();
  const int64_t dist_cross = dist->transport().cross_rack_bytes();
  EXPECT_LT(dist_cross, legacy_cross)
      << "rack aggregation must cut core-switch bytes on scattered layouts";

  // Parity bytes must be identical block for block.
  for (const StripeId stripe : legacy->sealed_stripes()) {
    const auto meta_l = legacy->stripe_meta(stripe);
    const auto meta_d = dist->stripe_meta(stripe);
    ASSERT_EQ(meta_l.parity_blocks, meta_d.parity_blocks);
    for (const BlockId p : meta_l.parity_blocks) {
      ASSERT_EQ(legacy->block_locations(p), dist->block_locations(p));
      const NodeId holder = legacy->block_locations(p)[0];
      EXPECT_EQ(legacy->read_block(p, holder), dist->read_block(p, holder))
          << "parity block " << p;
    }
  }

  // Degraded read + repair through the DAG must rebuild identical bytes.
  const StripeId stripe = legacy->sealed_stripes()[0];
  const auto meta = legacy->stripe_meta(stripe);
  const BlockId victim = meta.data_blocks[0];
  const NodeId lost_node = legacy->block_locations(victim)[0];
  legacy->kill_node(lost_node);
  dist->kill_node(lost_node);
  NodeId reader = 0;
  while (!legacy->node_alive(reader)) ++reader;
  EXPECT_EQ(legacy->read_block(victim, reader),
            dist->read_block(victim, reader));

  NodeId target = reader + 1;
  while (!legacy->node_alive(target)) ++target;
  legacy->repair_block(victim, target);
  dist->repair_block(victim, target);
  EXPECT_EQ(legacy->read_block(victim, target),
            dist->read_block(victim, target));
}

TEST(EcDagSim, DistributedEncodeCutsSimulatedCrossBytes) {
  sim::SimConfig cfg;
  cfg.racks = 4;
  cfg.nodes_per_rack = 4;
  cfg.placement.code = CodeParams{13, 12};
  cfg.placement.replication = 2;
  cfg.placement.c = 1;
  cfg.use_ear = false;
  cfg.block_size = 4_MB;
  cfg.write_rate = 0;       // encoding traffic only: the comparison is exact
  cfg.background_rate = 0;
  cfg.encode_start = 0.0;
  cfg.encode_processes = 2;
  cfg.stripes_per_process = 3;
  cfg.seed = 5;

  sim::ClusterSim legacy(cfg);
  const sim::SimResult off = legacy.run();
  cfg.ecdag_enable = true;
  sim::ClusterSim dist(cfg);
  const sim::SimResult on = dist.run();

  EXPECT_EQ(on.stripes_encoded, off.stripes_encoded);
  EXPECT_LT(on.cross_rack_bytes, off.cross_rack_bytes);
  EXPECT_GT(on.encode_throughput_mbps, 0.0);
}

}  // namespace
}  // namespace ear::ecdag
