#include "topology/topology.h"

#include <gtest/gtest.h>

namespace ear {
namespace {

TEST(Topology, HomogeneousLayout) {
  const Topology topo(5, 6);
  EXPECT_EQ(topo.rack_count(), 5);
  EXPECT_EQ(topo.node_count(), 30);
  for (RackId r = 0; r < 5; ++r) {
    EXPECT_EQ(topo.rack_size(r), 6);
    EXPECT_EQ(topo.rack_first_node(r), r * 6);
  }
  EXPECT_EQ(topo.rack_of(0), 0);
  EXPECT_EQ(topo.rack_of(5), 0);
  EXPECT_EQ(topo.rack_of(6), 1);
  EXPECT_EQ(topo.rack_of(29), 4);
}

TEST(Topology, HeterogeneousLayout) {
  const Topology topo(std::vector<int>{2, 5, 1});
  EXPECT_EQ(topo.rack_count(), 3);
  EXPECT_EQ(topo.node_count(), 8);
  EXPECT_EQ(topo.rack_size(0), 2);
  EXPECT_EQ(topo.rack_size(1), 5);
  EXPECT_EQ(topo.rack_size(2), 1);
  EXPECT_EQ(topo.rack_of(1), 0);
  EXPECT_EQ(topo.rack_of(2), 1);
  EXPECT_EQ(topo.rack_of(7), 2);
  EXPECT_EQ(topo.rack_first_node(2), 7);
}

TEST(Topology, NodesInRackAreContiguous) {
  const Topology topo(4, 3);
  const auto nodes = topo.nodes_in_rack(2);
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[0], 6);
  EXPECT_EQ(nodes[1], 7);
  EXPECT_EQ(nodes[2], 8);
  for (const NodeId n : nodes) EXPECT_EQ(topo.rack_of(n), 2);
}

TEST(Topology, SameRackPredicate) {
  const Topology topo(3, 4);
  EXPECT_TRUE(topo.same_rack(0, 3));
  EXPECT_FALSE(topo.same_rack(3, 4));
  EXPECT_TRUE(topo.same_rack(8, 11));
}

TEST(Topology, SingleNodeRacksMatchPaperTestbed) {
  // The paper's testbed: 12 racks with one DataNode each.
  const Topology topo(12, 1);
  EXPECT_EQ(topo.node_count(), 12);
  for (NodeId n = 0; n < 12; ++n) EXPECT_EQ(topo.rack_of(n), n);
}

}  // namespace
}  // namespace ear
