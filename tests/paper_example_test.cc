// Executable documentation: the paper's own worked examples, run literally
// against this implementation.
#include <gtest/gtest.h>

#include <set>

#include "analysis/availability.h"
#include "placement/ear.h"
#include "placement/monitor.h"
#include "placement/random_replication.h"

namespace ear {
namespace {

// §II-B / Figure 2: a CFS with 30 nodes evenly grouped into five racks
// (six nodes per rack), four blocks written with 3-way replication, then
// encoded with (5,4) erasure coding.
TEST(PaperExample, Figure2MotivatingScenario) {
  const Topology topo(5, 6);
  PlacementConfig cfg;
  cfg.code = CodeParams{5, 4};
  cfg.replication = 3;
  cfg.c = 1;

  // Under EAR the stripe encodes with zero cross-rack downloads and
  // tolerates a single rack failure with no relocation (Figure 2(b)).
  EncodingAwareReplication ear_policy(topo, cfg, 123);
  BlockId next = 0;
  while (ear_policy.sealed_stripes().empty()) {
    ear_policy.place_block(next++, std::nullopt);
  }
  const StripeId stripe = ear_policy.sealed_stripes()[0];
  const EncodePlan plan = ear_policy.plan_encoding(stripe);
  EXPECT_EQ(plan.cross_rack_downloads, 0);

  StripeLayout layout;
  layout.nodes = plan.kept;
  layout.nodes.insert(layout.nodes.end(), plan.parity.begin(),
                      plan.parity.end());
  const PlacementMonitor monitor(topo, cfg.code);
  const auto report = monitor.analyze(layout);
  EXPECT_GE(report.tolerable_rack_failures, 1);
  // Five blocks in five racks: each rack holds exactly one.
  EXPECT_EQ(report.max_blocks_per_rack, 1);

  // Under RR, §II-B argues cross-rack downloads are almost inevitable:
  // the expected count is k - 2k/R = 4 - 8/5 = 2.4.
  RandomReplication rr(topo, cfg, 124);
  double cross = 0;
  int stripes = 0;
  BlockId b = 0;
  while (stripes < 500) {
    rr.place_block(b++, std::nullopt);
    const auto sealed = rr.sealed_stripes();
    if (static_cast<int>(sealed.size()) > stripes) {
      cross += rr.plan_encoding(sealed.back()).cross_rack_downloads;
      ++stripes;
    }
  }
  EXPECT_NEAR(cross / stripes, 2.4, 0.25);
}

// §III-A: the preliminary design's availability violation example — three
// data blocks, (4,3) coding, single-rack fault tolerance required.  If the
// second and third replicas of all three blocks land in the same rack, no
// deletion choice can avoid two blocks sharing a rack.
TEST(PaperExample, SectionIIIAViolationMechanism) {
  const Topology topo(4, 6);
  // Layout forced to the bad case: first replicas in rack 0 (core), all
  // secondaries in rack 1.
  std::vector<std::vector<NodeId>> replicas{
      {0, 6, 7},   // block 1: core rack 0, secondaries rack 1
      {1, 8, 9},   // block 2
      {2, 10, 11}  // block 3
  };
  // c = 1: a full matching would need 3 distinct racks among {0, 1}.
  EXPECT_LT(ear_stripe_max_flow(topo, 1, replicas, {}), 3);
  // EAR's re-draw loop exists precisely to reject this layout; with c = 2
  // it becomes acceptable (two blocks may share rack 1).
  EXPECT_EQ(ear_stripe_max_flow(topo, 2, replicas, {}), 3);
}

// §III-A / Figure 3 anchor and §III-C / Theorem 1 remark, quoted verbatim
// in the paper's text.
TEST(PaperExample, QuotedNumbersHold) {
  EXPECT_NEAR(analysis::preliminary_violation_probability(16, 12), 0.97,
              0.015);
  EXPECT_NEAR(analysis::theorem1_iteration_bound(20, 10, 1), 1.9, 1e-12);
}

// §III-D / Figure 6: (6,3) code over R = 6 racks, c = 3, R' = 2 target
// racks — after encoding, all six blocks live in the two target racks.
TEST(PaperExample, Figure6TargetRacks) {
  const Topology topo(6, 6);
  PlacementConfig cfg;
  cfg.code = CodeParams{6, 3};
  cfg.replication = 3;
  cfg.c = 3;
  cfg.target_racks = 2;
  EncodingAwareReplication ear_policy(topo, cfg, 125);
  BlockId next = 0;
  while (ear_policy.sealed_stripes().empty()) {
    ear_policy.place_block(next++, std::nullopt);
  }
  const StripeId stripe = ear_policy.sealed_stripes()[0];
  const EncodePlan plan = ear_policy.plan_encoding(stripe);
  const auto& targets = ear_policy.stripe_target_racks(stripe);
  const std::set<RackId> target_set(targets.begin(), targets.end());
  ASSERT_EQ(target_set.size(), 2u);
  std::set<RackId> used;
  for (const NodeId node : plan.kept) used.insert(topo.rack_of(node));
  for (const NodeId node : plan.parity) used.insert(topo.rack_of(node));
  for (const RackId r : used) EXPECT_TRUE(target_set.count(r));
  // c = 3, n - k = 3: single-rack fault tolerance.
  StripeLayout layout;
  layout.nodes = plan.kept;
  layout.nodes.insert(layout.nodes.end(), plan.parity.begin(),
                      plan.parity.end());
  const PlacementMonitor monitor(topo, cfg.code);
  EXPECT_GE(monitor.analyze(layout).tolerable_rack_failures, 1);
}

}  // namespace
}  // namespace ear
