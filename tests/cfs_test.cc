#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "cfs/minicfs.h"
#include "cfs/raidnode.h"
#include "common/rng.h"

namespace ear::cfs {
namespace {

CfsConfig small_config(bool use_ear, int n = 8, int k = 6, int racks = 10,
                       int nodes_per_rack = 4) {
  CfsConfig cfg;
  cfg.racks = racks;
  cfg.nodes_per_rack = nodes_per_rack;
  cfg.placement.code = CodeParams{n, k};
  cfg.placement.replication = 3;
  cfg.placement.c = 1;
  cfg.use_ear = use_ear;
  cfg.block_size = 64_KB;
  cfg.seed = 11;
  return cfg;
}

std::unique_ptr<MiniCfs> make_cfs(const CfsConfig& cfg) {
  Topology topo(cfg.racks, cfg.nodes_per_rack);
  return std::make_unique<MiniCfs>(cfg,
                                   std::make_unique<InstantTransport>(topo));
}

std::vector<uint8_t> random_block(const CfsConfig& cfg, Rng& rng) {
  std::vector<uint8_t> data(static_cast<size_t>(cfg.block_size));
  for (auto& b : data) b = static_cast<uint8_t>(rng.uniform(256));
  return data;
}

TEST(MiniCfs, WriteReadRoundTrip) {
  const auto cfg = small_config(true);
  auto cfs = make_cfs(cfg);
  Rng rng(1);
  const auto data = random_block(cfg, rng);
  const BlockId id = cfs->write_block(data);
  EXPECT_EQ(cfs->read_block(id, 0), data);
  EXPECT_EQ(cfs->block_locations(id).size(), 3u);
}

TEST(MiniCfs, RejectsWrongSizeWrite) {
  auto cfs = make_cfs(small_config(true));
  std::vector<uint8_t> tiny(10);
  EXPECT_THROW(cfs->write_block(tiny), std::invalid_argument);
}

TEST(MiniCfs, ReplicasLandOnDistinctNodes) {
  const auto cfg = small_config(false);
  auto cfs = make_cfs(cfg);
  Rng rng(2);
  for (int i = 0; i < 30; ++i) {
    const BlockId id = cfs->write_block(random_block(cfg, rng));
    const auto locs = cfs->block_locations(id);
    const std::set<NodeId> unique(locs.begin(), locs.end());
    EXPECT_EQ(unique.size(), locs.size());
  }
}

TEST(MiniCfs, EncodeProducesDecodableStripe) {
  const auto cfg = small_config(true);
  auto cfs = make_cfs(cfg);
  Rng rng(3);
  std::map<BlockId, std::vector<uint8_t>> originals;
  while (cfs->sealed_stripes().empty()) {
    auto data = random_block(cfg, rng);
    const BlockId id = cfs->write_block(data);
    originals[id] = std::move(data);
  }
  const StripeId stripe = cfs->sealed_stripes()[0];
  cfs->encode_stripe(stripe);
  EXPECT_TRUE(cfs->is_encoded(stripe));

  const StripeMeta meta = cfs->stripe_meta(stripe);
  EXPECT_EQ(meta.data_blocks.size(), 6u);
  EXPECT_EQ(meta.parity_blocks.size(), 2u);

  // Every data block is now singly-replicated and still readable.
  for (size_t i = 0; i < meta.data_blocks.size(); ++i) {
    const auto locs = cfs->block_locations(meta.data_blocks[i]);
    ASSERT_EQ(locs.size(), 1u);
    EXPECT_EQ(cfs->read_block(meta.data_blocks[i], 0),
              originals.at(meta.data_blocks[i]));
  }
}

TEST(MiniCfs, EncodedStripeSpansDistinctNodesAndRacks) {
  const auto cfg = small_config(true);
  auto cfs = make_cfs(cfg);
  Rng rng(4);
  while (cfs->sealed_stripes().empty()) {
    cfs->write_block(random_block(cfg, rng));
  }
  const StripeId stripe = cfs->sealed_stripes()[0];
  cfs->encode_stripe(stripe);
  const StripeMeta meta = cfs->stripe_meta(stripe);

  std::set<NodeId> nodes;
  std::set<RackId> racks;
  for (const BlockId b : meta.data_blocks) {
    const auto locs = cfs->block_locations(b);
    nodes.insert(locs[0]);
    racks.insert(cfs->topology().rack_of(locs[0]));
  }
  for (const BlockId b : meta.parity_blocks) {
    const auto locs = cfs->block_locations(b);
    nodes.insert(locs[0]);
    racks.insert(cfs->topology().rack_of(locs[0]));
  }
  EXPECT_EQ(nodes.size(), 8u) << "n distinct nodes";
  EXPECT_EQ(racks.size(), 8u) << "c = 1: n distinct racks";
}

TEST(MiniCfs, EarEncodingHasZeroCrossRackDownloads) {
  const auto cfg = small_config(true);
  auto cfs = make_cfs(cfg);
  Rng rng(5);
  while (cfs->sealed_stripes().size() < 5) {
    cfs->write_block(random_block(cfg, rng));
  }
  for (const StripeId s : cfs->sealed_stripes()) cfs->encode_stripe(s);
  EXPECT_EQ(cfs->encode_cross_rack_downloads(), 0);
}

TEST(MiniCfs, RrEncodingHasCrossRackDownloads) {
  const auto cfg = small_config(false);
  auto cfs = make_cfs(cfg);
  Rng rng(6);
  while (cfs->sealed_stripes().size() < 5) {
    cfs->write_block(random_block(cfg, rng));
  }
  for (const StripeId s : cfs->sealed_stripes()) cfs->encode_stripe(s);
  EXPECT_GT(cfs->encode_cross_rack_downloads(), 0);
}

TEST(MiniCfs, DegradedReadAfterNodeFailure) {
  const auto cfg = small_config(true);
  auto cfs = make_cfs(cfg);
  Rng rng(7);
  std::map<BlockId, std::vector<uint8_t>> originals;
  while (cfs->sealed_stripes().empty()) {
    auto data = random_block(cfg, rng);
    const BlockId id = cfs->write_block(data);
    originals[id] = std::move(data);
  }
  const StripeId stripe = cfs->sealed_stripes()[0];
  cfs->encode_stripe(stripe);
  const StripeMeta meta = cfs->stripe_meta(stripe);

  // Kill the node holding data block 0; its only copy is gone.
  const BlockId victim = meta.data_blocks[0];
  cfs->kill_node(cfs->block_locations(victim)[0]);
  const NodeId reader = [&] {
    for (NodeId n = 0; n < cfs->topology().node_count(); ++n) {
      if (cfs->node_alive(n)) return n;
    }
    return kInvalidNode;
  }();
  EXPECT_EQ(cfs->read_block(victim, reader), originals.at(victim));
}

TEST(MiniCfs, DegradedReadAfterRackFailure) {
  const auto cfg = small_config(true);
  auto cfs = make_cfs(cfg);
  Rng rng(8);
  std::map<BlockId, std::vector<uint8_t>> originals;
  while (cfs->sealed_stripes().empty()) {
    auto data = random_block(cfg, rng);
    const BlockId id = cfs->write_block(data);
    originals[id] = std::move(data);
  }
  const StripeId stripe = cfs->sealed_stripes()[0];
  cfs->encode_stripe(stripe);
  const StripeMeta meta = cfs->stripe_meta(stripe);

  // c = 1: killing any whole rack removes at most one block of the stripe.
  const BlockId victim = meta.data_blocks[2];
  const RackId dead_rack =
      cfs->topology().rack_of(cfs->block_locations(victim)[0]);
  cfs->kill_rack(dead_rack);
  NodeId reader = kInvalidNode;
  for (NodeId n = 0; n < cfs->topology().node_count(); ++n) {
    if (cfs->node_alive(n)) {
      reader = n;
      break;
    }
  }
  EXPECT_EQ(cfs->read_block(victim, reader), originals.at(victim));
}

TEST(MiniCfs, UnrecoverableWhenTooManyFailures) {
  const auto cfg = small_config(true);
  auto cfs = make_cfs(cfg);
  Rng rng(9);
  while (cfs->sealed_stripes().empty()) {
    cfs->write_block(random_block(cfg, rng));
  }
  const StripeId stripe = cfs->sealed_stripes()[0];
  cfs->encode_stripe(stripe);
  const StripeMeta meta = cfs->stripe_meta(stripe);

  // Kill the nodes of 3 blocks (> n - k = 2): the stripe must be lost.
  std::set<NodeId> victims;
  for (int i = 0; i < 3; ++i) {
    victims.insert(cfs->block_locations(meta.data_blocks[static_cast<size_t>(i)])[0]);
  }
  for (const NodeId v : victims) cfs->kill_node(v);
  NodeId reader = kInvalidNode;
  for (NodeId n = 0; n < cfs->topology().node_count(); ++n) {
    if (cfs->node_alive(n)) {
      reader = n;
      break;
    }
  }
  EXPECT_THROW(cfs->read_block(meta.data_blocks[0], reader),
               std::runtime_error);
}

TEST(MiniCfs, RepairRestoresRedundancy) {
  const auto cfg = small_config(true);
  auto cfs = make_cfs(cfg);
  Rng rng(10);
  std::map<BlockId, std::vector<uint8_t>> originals;
  while (cfs->sealed_stripes().empty()) {
    auto data = random_block(cfg, rng);
    const BlockId id = cfs->write_block(data);
    originals[id] = std::move(data);
  }
  const StripeId stripe = cfs->sealed_stripes()[0];
  cfs->encode_stripe(stripe);
  const StripeMeta meta = cfs->stripe_meta(stripe);

  const BlockId victim = meta.data_blocks[1];
  const NodeId dead = cfs->block_locations(victim)[0];
  cfs->kill_node(dead);

  // Repair to a live node in a rack that holds no other stripe block.
  std::set<RackId> used;
  for (const BlockId b : meta.data_blocks) {
    used.insert(cfs->topology().rack_of(cfs->block_locations(b)[0]));
  }
  for (const BlockId b : meta.parity_blocks) {
    used.insert(cfs->topology().rack_of(cfs->block_locations(b)[0]));
  }
  NodeId target = kInvalidNode;
  for (NodeId n = 0; n < cfs->topology().node_count(); ++n) {
    if (cfs->node_alive(n) && !used.count(cfs->topology().rack_of(n))) {
      target = n;
      break;
    }
  }
  ASSERT_NE(target, kInvalidNode);
  cfs->repair_block(victim, target);

  const auto locs = cfs->block_locations(victim);
  ASSERT_EQ(locs.size(), 1u);
  EXPECT_EQ(locs[0], target);
  // After reviving nothing, the block reads fine from the repaired copy.
  EXPECT_EQ(cfs->read_block(victim, target), originals.at(victim));
}

TEST(MiniCfs, ParityBlocksAreDegradedReadable) {
  const auto cfg = small_config(true);
  auto cfs = make_cfs(cfg);
  Rng rng(12);
  while (cfs->sealed_stripes().empty()) {
    cfs->write_block(random_block(cfg, rng));
  }
  const StripeId stripe = cfs->sealed_stripes()[0];
  cfs->encode_stripe(stripe);
  const StripeMeta meta = cfs->stripe_meta(stripe);

  const BlockId parity = meta.parity_blocks[0];
  const auto before = cfs->read_block(parity, 0);
  cfs->kill_node(cfs->block_locations(parity)[0]);
  NodeId reader = kInvalidNode;
  for (NodeId n = 0; n < cfs->topology().node_count(); ++n) {
    if (cfs->node_alive(n)) {
      reader = n;
      break;
    }
  }
  EXPECT_EQ(cfs->read_block(parity, reader), before);
}

TEST(MiniCfs, EncodeStripeTwiceThrows) {
  const auto cfg = small_config(true);
  auto cfs = make_cfs(cfg);
  Rng rng(13);
  while (cfs->sealed_stripes().empty()) {
    cfs->write_block(random_block(cfg, rng));
  }
  const StripeId stripe = cfs->sealed_stripes()[0];
  cfs->encode_stripe(stripe);
  EXPECT_THROW(cfs->encode_stripe(stripe), std::runtime_error);
}

TEST(RaidNode, ParallelJobEncodesEverything) {
  const auto cfg = small_config(true);
  auto cfs = make_cfs(cfg);
  Rng rng(14);
  while (cfs->sealed_stripes().size() < 8) {
    cfs->write_block(random_block(cfg, rng));
  }
  auto stripes = cfs->sealed_stripes();
  stripes.resize(8);
  RaidNode raid(*cfs, /*map_slots=*/4);
  const EncodeReport report = raid.encode_stripes(stripes);
  EXPECT_EQ(report.completion_times.size(), 8u);
  EXPECT_EQ(report.cross_rack_downloads, 0);
  for (const StripeId s : stripes) EXPECT_TRUE(cfs->is_encoded(s));
  EXPECT_GT(report.throughput_mbps, 0.0);
}

TEST(RaidNode, ScatteredEncodersCauseCrossRackDownloadsUnderEar) {
  // Ablation for the paper's §IV-B JobTracker modifications: when the map
  // task does NOT run in the core rack, even EAR-placed stripes need
  // cross-rack downloads.
  const auto cfg = small_config(true);
  auto cfs = make_cfs(cfg);
  Rng rng(15);
  while (cfs->sealed_stripes().size() < 8) {
    cfs->write_block(random_block(cfg, rng));
  }
  auto stripes = cfs->sealed_stripes();
  stripes.resize(8);
  RaidNode raid(*cfs, 4);
  const EncodeReport report =
      raid.encode_stripes(stripes, /*scatter_encoders=*/true);
  EXPECT_GT(report.cross_rack_downloads, 0);
}

TEST(MiniCfs, TestbedModeTwoWayReplicationOnSingleNodeRacks) {
  // The paper's 12-machine testbed: 12 racks x 1 node, r = 2, (10,8).
  CfsConfig cfg;
  cfg.racks = 12;
  cfg.nodes_per_rack = 1;
  cfg.placement.code = CodeParams{10, 8};
  cfg.placement.replication = 2;
  cfg.placement.c = 1;
  cfg.use_ear = true;
  cfg.block_size = 64_KB;
  cfg.seed = 16;
  auto cfs = make_cfs(cfg);
  Rng rng(17);
  std::map<BlockId, std::vector<uint8_t>> originals;
  while (cfs->sealed_stripes().empty()) {
    auto data = random_block(cfg, rng);
    const BlockId id = cfs->write_block(data);
    originals[id] = std::move(data);
  }
  const StripeId stripe = cfs->sealed_stripes()[0];
  cfs->encode_stripe(stripe);
  EXPECT_EQ(cfs->encode_cross_rack_downloads(), 0);
  const StripeMeta meta = cfs->stripe_meta(stripe);
  for (size_t i = 0; i < meta.data_blocks.size(); ++i) {
    EXPECT_EQ(cfs->read_block(meta.data_blocks[i], 0),
              originals.at(meta.data_blocks[i]));
  }
}

}  // namespace
}  // namespace ear::cfs
