// Byte- and time-accounting invariants: the traffic counters that the
// paper's argument rests on must be internally consistent across the
// simulator and the testbed.
#include <gtest/gtest.h>

#include <memory>

#include "cfs/minicfs.h"
#include "cfs/raidnode.h"
#include "mapred/mapreduce.h"
#include "sim/cluster.h"

namespace ear {
namespace {

TEST(Accounting, SimLastStripeCompletionIsEncodeEnd) {
  sim::SimConfig cfg;
  cfg.racks = 8;
  cfg.nodes_per_rack = 4;
  cfg.placement.code = CodeParams{8, 6};
  cfg.block_size = 8_MB;
  cfg.encode_processes = 4;
  cfg.stripes_per_process = 5;
  cfg.write_rate = 0;
  cfg.background_rate = 0;
  cfg.seed = 31;
  const sim::SimResult r = sim::ClusterSim(cfg).run();
  ASSERT_FALSE(r.stripe_completions.empty());
  EXPECT_DOUBLE_EQ(r.stripe_completions.back().first, r.encode_end);
  EXPECT_GE(r.stripe_completions.front().first, r.encode_begin);
}

TEST(Accounting, SimEarEncodingTrafficIsParityOnly) {
  // With writes and background off, EAR's cross-rack bytes are exactly the
  // parity uploads that leave the core rack.
  sim::SimConfig cfg;
  cfg.racks = 10;
  cfg.nodes_per_rack = 4;
  cfg.placement.code = CodeParams{8, 6};
  cfg.placement.replication = 3;
  cfg.use_ear = true;
  cfg.block_size = 8_MB;
  cfg.encode_processes = 4;
  cfg.stripes_per_process = 5;
  cfg.write_rate = 0;
  cfg.background_rate = 0;
  cfg.seed = 32;
  const sim::SimResult r = sim::ClusterSim(cfg).run();
  const int64_t max_parity_bytes =
      static_cast<int64_t>(r.stripes_encoded) * 2 * cfg.block_size;
  EXPECT_LE(r.cross_rack_bytes, max_parity_bytes);
  EXPECT_EQ(r.encoding_cross_rack_downloads, 0);
  // Downloads happen intra-rack (or on-node), so intra bytes are bounded by
  // k blocks per stripe plus parity that stayed local.
  EXPECT_LE(r.intra_rack_bytes,
            static_cast<int64_t>(r.stripes_encoded) * 8 * cfg.block_size);
}

TEST(Accounting, SimRrEncodingTrafficExceedsEar) {
  int64_t cross[2];
  for (const bool use_ear : {false, true}) {
    sim::SimConfig cfg;
    cfg.racks = 10;
    cfg.nodes_per_rack = 4;
    cfg.placement.code = CodeParams{8, 6};
    cfg.use_ear = use_ear;
    cfg.block_size = 8_MB;
    cfg.encode_processes = 4;
    cfg.stripes_per_process = 5;
    cfg.write_rate = 0;
    cfg.background_rate = 0;
    cfg.seed = 33;
    cross[use_ear ? 1 : 0] = sim::ClusterSim(cfg).run().cross_rack_bytes;
  }
  EXPECT_GT(cross[0], 2 * cross[1])
      << "RR moves k-ish blocks across racks per stripe, EAR only parity";
}

TEST(Accounting, TestbedEncodeReportMatchesTransportDelta) {
  cfs::CfsConfig cfg;
  cfg.racks = 10;
  cfg.nodes_per_rack = 4;
  cfg.placement.code = CodeParams{8, 6};
  cfg.placement.replication = 3;
  cfg.use_ear = true;
  cfg.block_size = 32_KB;
  cfg.seed = 34;
  const Topology topo(cfg.racks, cfg.nodes_per_rack);
  cfs::MiniCfs cluster(cfg, std::make_unique<cfs::InstantTransport>(topo));
  Rng rng(35);
  std::vector<uint8_t> block(static_cast<size_t>(cfg.block_size));
  while (cluster.sealed_stripes().size() < 6) {
    for (auto& b : block) b = static_cast<uint8_t>(rng.uniform(256));
    cluster.write_block(block);
  }
  auto stripes = cluster.sealed_stripes();
  stripes.resize(6);

  const int64_t cross_before = cluster.transport().cross_rack_bytes();
  cfs::RaidNode raid(cluster, 4);
  const cfs::EncodeReport report = raid.encode_stripes(stripes);
  EXPECT_EQ(report.cross_rack_bytes,
            cluster.transport().cross_rack_bytes() - cross_before);
  EXPECT_EQ(report.cross_rack_downloads, 0);
  // EAR cross bytes during encoding are at most the parity uploads.
  EXPECT_LE(report.cross_rack_bytes,
            static_cast<int64_t>(stripes.size()) * 2 * cfg.block_size);
}

TEST(Accounting, MapReduceRemoteMapsMoveBytes) {
  // Force remote maps by giving the cluster a single slot overall region:
  // replicas concentrated via EAR, but slots scanned randomly.
  const Topology topo(6, 2);
  sim::Engine engine;
  sim::Network network(engine, topo, sim::NetConfig{});
  PlacementConfig pc;
  pc.code = CodeParams{6, 4};
  pc.replication = 2;
  auto policy = make_random_replication(topo, pc, 36);

  mapred::MapReduceConfig mr_cfg;
  mr_cfg.block_size = 32_MB;
  mr_cfg.map_slots_per_node = 1;
  mapred::MapReduceCluster mr(engine, network, *policy, mr_cfg);

  mapred::JobSpec spec;
  spec.id = 0;
  spec.submit_time = 0;
  spec.input_size = 24 * 32_MB;  // more tasks than replica holders
  spec.shuffle_size = 0;
  spec.output_size = 0;
  mr.submit(spec);
  engine.run();
  ASSERT_EQ(mr.results().size(), 1u);
  const auto& r = mr.results()[0];
  EXPECT_EQ(r.map_tasks, 24);
  if (r.remote_maps + r.rack_local_maps > 0) {
    EXPECT_GT(network.cross_rack_bytes() + network.intra_rack_bytes(), 0);
  }
}

TEST(Accounting, WriteThroughputBoundedByArrivals) {
  // Completed write bytes during the encoding window cannot exceed what the
  // Poisson stream could have issued (arrival rate x window, with slack for
  // the in-flight backlog).
  sim::SimConfig cfg;
  cfg.racks = 8;
  cfg.nodes_per_rack = 4;
  cfg.placement.code = CodeParams{8, 6};
  cfg.block_size = 16_MB;
  cfg.write_rate = 2.0;
  cfg.background_rate = 0;
  cfg.encode_start = 10.0;
  cfg.encode_processes = 4;
  cfg.stripes_per_process = 5;
  cfg.seed = 37;
  const sim::SimResult r = sim::ClusterSim(cfg).run();
  const double window = r.encode_end - r.encode_begin;
  ASSERT_GT(window, 0);
  const double offered_mbps = cfg.write_rate * to_mb(cfg.block_size);
  EXPECT_LE(r.write_throughput_mbps, offered_mbps * 2.0)
      << "completed rate cannot wildly exceed the offered rate";
}

}  // namespace
}  // namespace ear
