// Vector-codec layer tests: the ErasureCodec interface, Clay coupled-layer
// MSR codes, Hitchhiker piggybacking, the scalar adapters' byte-identity
// with the seed codecs, and the sub-packetized consumers (MiniCfs degraded
// reads / repair, checkpoint round-trip, ClusterSim repair model).
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <numeric>
#include <vector>

#include "cfs/minicfs.h"
#include "common/rng.h"
#include "datapath/block_buffer.h"
#include "erasure/clay.h"
#include "gf256/gf256.h"
#include "gf256/kernel.h"
#include "erasure/codec.h"
#include "erasure/hitchhiker.h"
#include "erasure/rs.h"
#include "sim/cluster.h"
#include "store/mem_store.h"

namespace ear::erasure {
namespace {

std::vector<uint8_t> random_bytes(size_t size, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> out(size);
  for (auto& b : out) b = static_cast<uint8_t>(rng.uniform(256));
  return out;
}

// Encodes a full stripe; returns n blocks (k data + m parity).
std::vector<std::vector<uint8_t>> make_stripe(const ErasureCodec& codec,
                                              size_t block, uint64_t seed) {
  std::vector<std::vector<uint8_t>> blocks;
  for (int i = 0; i < codec.k(); ++i) {
    blocks.push_back(random_bytes(block, seed + static_cast<uint64_t>(i)));
  }
  std::vector<BlockView> data(blocks.begin(), blocks.end());
  std::vector<std::vector<uint8_t>> parity(
      static_cast<size_t>(codec.m()), std::vector<uint8_t>(block));
  std::vector<MutBlockView> pv(parity.begin(), parity.end());
  codec.encode(data, pv);
  for (auto& p : parity) blocks.push_back(std::move(p));
  return blocks;
}

// Gathers the units a plan fetches from the stripe's blocks.
std::vector<BlockView> gather_units(
    const RepairPlan& plan, const std::vector<std::vector<uint8_t>>& blocks) {
  const size_t sub = blocks.front().size() / static_cast<size_t>(plan.alpha);
  std::vector<BlockView> units;
  for (const RepairSource& src : plan.sources) {
    for (const int z : src.sub_blocks) {
      units.push_back(BlockView(blocks[static_cast<size_t>(src.id)])
                          .subspan(static_cast<size_t>(z) * sub, sub));
    }
  }
  return units;
}

std::vector<int> all_but(int n, int lost) {
  std::vector<int> ids;
  for (int i = 0; i < n; ++i) {
    if (i != lost) ids.push_back(i);
  }
  return ids;
}

TEST(ClayCode, ParametersAndShortening) {
  const ClayCode c86(8, 6);
  EXPECT_EQ(c86.q(), 2);
  EXPECT_EQ(c86.t(), 4);
  EXPECT_EQ(c86.alpha(), 16);
  EXPECT_EQ(c86.beta(), 8);

  const ClayCode c1410(14, 10);  // shortened from (16, 12)
  EXPECT_EQ(c1410.q(), 4);
  EXPECT_EQ(c1410.t(), 4);
  EXPECT_EQ(c1410.alpha(), 256);

  const ClayCode c129(12, 9);
  EXPECT_EQ(c129.alpha(), 81);

  EXPECT_THROW(ClayCode(5, 4), std::invalid_argument);   // m == 1
  EXPECT_THROW(ClayCode(20, 16), std::invalid_argument);  // alpha 1024
}

TEST(ClayCode, ReconstructAnyPattern) {
  for (const auto& [n, k] : {std::pair{6, 4}, {8, 6}, {12, 9}}) {
    const ClayCode codec(n, k);
    const size_t block = static_cast<size_t>(codec.alpha()) * 6;
    const auto blocks = make_stripe(codec, block, 77);
    Rng rng(static_cast<uint64_t>(n * 100 + k));

    for (int trial = 0; trial < 6; ++trial) {
      std::vector<int> ids(static_cast<size_t>(n));
      std::iota(ids.begin(), ids.end(), 0);
      for (size_t i = ids.size(); i > 1; --i) {
        std::swap(ids[i - 1], ids[rng.uniform(i)]);
      }
      const std::vector<int> lost(ids.begin(), ids.begin() + codec.m());
      std::vector<int> avail_ids(ids.begin() + codec.m(), ids.end());
      std::vector<BlockView> avail;
      for (const int id : avail_ids) {
        avail.emplace_back(blocks[static_cast<size_t>(id)]);
      }
      std::vector<std::vector<uint8_t>> rebuilt(
          lost.size(), std::vector<uint8_t>(block));
      std::vector<MutBlockView> out(rebuilt.begin(), rebuilt.end());
      ASSERT_TRUE(codec.reconstruct(avail_ids, avail, lost, out));
      for (size_t w = 0; w < lost.size(); ++w) {
        EXPECT_EQ(rebuilt[w], blocks[static_cast<size_t>(lost[w])])
            << "Clay(" << n << "," << k << ") lost id " << lost[w];
      }
    }
  }
}

TEST(ClayCode, RepairPlanEveryBlockByteIdentical) {
  for (const auto& [n, k] : {std::pair{8, 6}, {12, 9}, {14, 10}}) {
    const ClayCode codec(n, k);
    const size_t block = static_cast<size_t>(codec.alpha()) * 4;
    const auto blocks = make_stripe(codec, block, 123);

    for (int lost = 0; lost < n; ++lost) {
      RepairPlan plan;
      ASSERT_TRUE(codec.plan_repair(lost, all_but(n, lost), &plan));
      EXPECT_EQ(plan.lost_id, lost);
      EXPECT_EQ(plan.alpha, codec.alpha());
      EXPECT_EQ(static_cast<int>(plan.sources.size()), n - 1);
      // Optimal repair bandwidth: (n - 1) * alpha / q sub-blocks.
      EXPECT_EQ(plan.bytes_read(block),
                static_cast<Bytes>(n - 1) * block /
                    static_cast<Bytes>(codec.q()));

      const auto units = gather_units(plan, blocks);
      std::vector<uint8_t> rebuilt(block);
      ErasureCodec::apply_plan(plan, units, rebuilt);
      EXPECT_EQ(rebuilt, blocks[static_cast<size_t>(lost)])
          << "Clay(" << n << "," << k << ") lost id " << lost;
    }
  }
}

TEST(ClayCode, RepairMovesAtMost60PercentOfRs) {
  // The acceptance bar: Clay single-block repair <= 0.6x RS network bytes
  // at matched (n, k).
  for (const auto& [n, k] : {std::pair{8, 6}, {12, 9}, {14, 10}}) {
    const ClayCode codec(n, k);
    const Bytes block = static_cast<Bytes>(codec.alpha()) * 16;
    RepairPlan plan;
    ASSERT_TRUE(codec.plan_repair(0, all_but(n, 0), &plan));
    const double rs_bytes = static_cast<double>(block) * k;
    EXPECT_LE(static_cast<double>(plan.bytes_read(block)), 0.6 * rs_bytes)
        << "Clay(" << n << "," << k << ")";
  }
}

TEST(ClayCode, PlanNeedsEveryHelper) {
  const ClayCode codec(8, 6);
  std::vector<int> avail = all_but(8, 3);
  avail.erase(avail.begin());  // one helper down: no MSR plan
  RepairPlan plan;
  EXPECT_FALSE(codec.plan_repair(3, avail, &plan));
}

TEST(ClayCode, ChunkedEncodeMatchesFullEncode) {
  const ClayCode codec(8, 6);
  const size_t block = static_cast<size_t>(codec.alpha()) * 12;
  const size_t sub = block / static_cast<size_t>(codec.alpha());
  std::vector<std::vector<uint8_t>> data;
  for (int i = 0; i < codec.k(); ++i) {
    data.push_back(random_bytes(block, static_cast<uint64_t>(40 + i)));
  }
  std::vector<BlockView> dv(data.begin(), data.end());

  std::vector<std::vector<uint8_t>> full(
      static_cast<size_t>(codec.m()), std::vector<uint8_t>(block));
  std::vector<MutBlockView> fv(full.begin(), full.end());
  codec.encode(dv, fv);

  std::vector<std::vector<uint8_t>> chunked(
      static_cast<size_t>(codec.m()), std::vector<uint8_t>(block));
  std::vector<MutBlockView> cv(chunked.begin(), chunked.end());
  for (size_t offset = 0; offset < sub; offset += 5) {
    codec.encode_chunk(dv, cv, offset, std::min<size_t>(5, sub - offset));
  }
  EXPECT_EQ(full, chunked);
}

TEST(ClayCode, EncodeScheduleMatchesEncode) {
  const ClayCode codec(6, 4);
  Matrix sched;
  ASSERT_TRUE(codec.encode_schedule(&sched));
  ASSERT_EQ(sched.rows(), codec.m() * codec.alpha());
  ASSERT_EQ(sched.cols(), codec.k() * codec.alpha());

  const size_t block = static_cast<size_t>(codec.alpha()) * 3;
  const size_t sub = block / static_cast<size_t>(codec.alpha());
  const auto blocks = make_stripe(codec, block, 9);
  for (int j = 0; j < codec.m(); ++j) {
    for (int z = 0; z < codec.alpha(); ++z) {
      for (size_t b = 0; b < sub; ++b) {
        uint8_t sum = 0;
        for (int i = 0; i < codec.k(); ++i) {
          for (int y = 0; y < codec.alpha(); ++y) {
            const uint8_t c = sched.at(j * codec.alpha() + z,
                                       i * codec.alpha() + y);
            if (c != 0) {
              sum = gf::add(sum, gf::mul(c, blocks[static_cast<size_t>(i)]
                                                [static_cast<size_t>(y) * sub +
                                                 b]));
            }
          }
        }
        EXPECT_EQ(sum, blocks[static_cast<size_t>(codec.k() + j)]
                             [static_cast<size_t>(z) * sub + b]);
      }
    }
  }
}

TEST(HitchhikerCode, DataRepairMovesFewerBytesThanRs) {
  const HitchhikerCode codec(14, 10);
  const size_t block = 512;
  const auto blocks = make_stripe(codec, block, 321);

  for (int lost = 0; lost < codec.k(); ++lost) {
    RepairPlan plan;
    ASSERT_TRUE(codec.plan_repair(lost, all_but(14, lost), &plan));
    // (k - 1 + 2) b-halves plus |S_j| - 1 a-halves < k full blocks.
    EXPECT_LT(plan.bytes_read(block), static_cast<Bytes>(block) * 10);
    const auto units = gather_units(plan, blocks);
    std::vector<uint8_t> rebuilt(block);
    ErasureCodec::apply_plan(plan, units, rebuilt);
    EXPECT_EQ(rebuilt, blocks[static_cast<size_t>(lost)]) << "lost " << lost;
  }
}

TEST(HitchhikerCode, ParityRepairAndReconstruct) {
  const HitchhikerCode codec(8, 4);
  const size_t block = 256;
  const auto blocks = make_stripe(codec, block, 555);

  for (int lost = codec.k(); lost < codec.n(); ++lost) {
    RepairPlan plan;
    ASSERT_TRUE(codec.plan_repair(lost, all_but(8, lost), &plan));
    EXPECT_EQ(plan.bytes_read(block), static_cast<Bytes>(block) * 4);
    const auto units = gather_units(plan, blocks);
    std::vector<uint8_t> rebuilt(block);
    ErasureCodec::apply_plan(plan, units, rebuilt);
    EXPECT_EQ(rebuilt, blocks[static_cast<size_t>(lost)]) << "lost " << lost;
  }

  // Multi-failure: lose m mixed blocks, rebuild from the rest.
  const std::vector<int> lost = {1, 5, 2, 7};
  std::vector<int> avail_ids;
  std::vector<BlockView> avail;
  for (int id = 0; id < codec.n(); ++id) {
    if (std::find(lost.begin(), lost.end(), id) == lost.end()) {
      avail_ids.push_back(id);
      avail.emplace_back(blocks[static_cast<size_t>(id)]);
    }
  }
  std::vector<std::vector<uint8_t>> rebuilt(lost.size(),
                                            std::vector<uint8_t>(block));
  std::vector<MutBlockView> out(rebuilt.begin(), rebuilt.end());
  ASSERT_TRUE(codec.reconstruct(avail_ids, avail, lost, out));
  for (size_t w = 0; w < lost.size(); ++w) {
    EXPECT_EQ(rebuilt[w], blocks[static_cast<size_t>(lost[w])]);
  }
}

TEST(HitchhikerCode, ChunkedEncodeMatchesFullEncode) {
  const HitchhikerCode codec(9, 6);
  const size_t block = 250;  // even, not a power of two
  std::vector<std::vector<uint8_t>> data;
  for (int i = 0; i < codec.k(); ++i) {
    data.push_back(random_bytes(block, static_cast<uint64_t>(70 + i)));
  }
  std::vector<BlockView> dv(data.begin(), data.end());
  std::vector<std::vector<uint8_t>> full(
      static_cast<size_t>(codec.m()), std::vector<uint8_t>(block));
  std::vector<MutBlockView> fv(full.begin(), full.end());
  codec.encode(dv, fv);

  std::vector<std::vector<uint8_t>> chunked(
      static_cast<size_t>(codec.m()), std::vector<uint8_t>(block));
  std::vector<MutBlockView> cv(chunked.begin(), chunked.end());
  const size_t sub = block / 2;
  for (size_t offset = 0; offset < sub; offset += 17) {
    codec.encode_chunk(dv, cv, offset, std::min<size_t>(17, sub - offset));
  }
  EXPECT_EQ(full, chunked);
}

TEST(ScalarAdapters, RsCodecByteIdenticalToSeedRs) {
  const RSCode seed(14, 10);
  const RsCodec codec(14, 10);
  EXPECT_EQ(codec.alpha(), 1);

  const size_t block = 1024;
  std::vector<std::vector<uint8_t>> data;
  for (int i = 0; i < 10; ++i) {
    data.push_back(random_bytes(block, static_cast<uint64_t>(i)));
  }
  std::vector<BlockView> dv(data.begin(), data.end());
  std::vector<std::vector<uint8_t>> p_seed(4, std::vector<uint8_t>(block));
  std::vector<std::vector<uint8_t>> p_codec(4, std::vector<uint8_t>(block));
  std::vector<MutBlockView> sv(p_seed.begin(), p_seed.end());
  std::vector<MutBlockView> cv(p_codec.begin(), p_codec.end());
  seed.encode(dv, sv);
  codec.encode(dv, cv);
  EXPECT_EQ(p_seed, p_codec);

  // The repair plan is the classic k-block decode row.
  RepairPlan plan;
  ASSERT_TRUE(codec.plan_repair(3, all_but(14, 3), &plan));
  EXPECT_EQ(plan.alpha, 1);
  EXPECT_EQ(plan.total_units(), 10);
  EXPECT_EQ(plan.bytes_read(block), static_cast<Bytes>(block) * 10);
}

TEST(ScalarAdapters, LrcLocalRepairPlanReadsOneGroup) {
  const LrcCodec codec(10, 2, 2);  // n = 14, k = 10, two groups of 5
  const size_t block = 640;
  const auto blocks = make_stripe(codec, block, 999);

  RepairPlan plan;
  ASSERT_TRUE(codec.plan_repair(2, all_but(14, 2), &plan));
  EXPECT_EQ(plan.total_units(), 5);  // 4 group members + local parity
  EXPECT_EQ(plan.bytes_read(block), static_cast<Bytes>(block) * 5);
  const auto units = gather_units(plan, blocks);
  std::vector<uint8_t> rebuilt(block);
  ErasureCodec::apply_plan(plan, units, rebuilt);
  EXPECT_EQ(rebuilt, blocks[2]);

  // Global parity: generator-row plan over the k data blocks.
  ASSERT_TRUE(codec.plan_repair(13, all_but(14, 13), &plan));
  EXPECT_EQ(plan.total_units(), 10);
  const auto gunits = gather_units(plan, blocks);
  ErasureCodec::apply_plan(plan, gunits, rebuilt);
  EXPECT_EQ(rebuilt, blocks[13]);
}

TEST(RepairSourceRanges, CoalescesAdjacentSubBlocks) {
  const RepairSource src{0, {0, 1, 3, 6, 7}};
  const auto ranges = src.ranges(/*block_size=*/800, /*alpha=*/8);
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0].offset, 0);
  EXPECT_EQ(ranges[0].len, 200);
  EXPECT_EQ(ranges[1].offset, 300);
  EXPECT_EQ(ranges[1].len, 100);
  EXPECT_EQ(ranges[2].offset, 600);
  EXPECT_EQ(ranges[2].len, 200);
}

TEST(RsFailureReporting, SingularPlanNamesAvailableIds) {
  const RSCode code(6, 4);
  Matrix coeffs;
  std::string why;
  // A duplicated id makes the decode matrix singular; the diagnostic must
  // name the offending id set (satellite: callers used to log nothing).
  EXPECT_FALSE(code.plan_reconstruct({0, 0, 1, 2}, {3}, &coeffs, &why));
  EXPECT_NE(why.find("available_ids=[0,0,1,2]"), std::string::npos) << why;
  EXPECT_NE(why.find("RS(6,4"), std::string::npos) << why;
}

TEST(CodecFactory, BuildsEachFamily) {
  const auto rs = make_codec(CodecFamily::kRS, 14, 10);
  EXPECT_EQ(rs->alpha(), 1);
  const auto lrc = make_codec(CodecFamily::kLRC, 14, 10);
  EXPECT_EQ(lrc->n(), 14);
  const auto clay = make_codec(CodecFamily::kClay, 14, 10);
  EXPECT_EQ(clay->alpha(), 256);
  const auto hh = make_codec(CodecFamily::kHitchhiker, 14, 10);
  EXPECT_EQ(hh->alpha(), 2);
  EXPECT_THROW(make_codec(CodecFamily::kCRS, 14, 10), std::invalid_argument);
  EXPECT_THROW(make_codec(CodecFamily::kLRC, 13, 11), std::invalid_argument);
}

// ------------------------------------------------------- ranged block reads

TEST(RangedReads, BlockBufferViewAliasesWithoutCopying) {
  const auto bytes = random_bytes(4096, 901);
  const auto buf = datapath::BlockBuffer::copy_of(bytes);
  const auto window = buf.view(1024, 512);
  ASSERT_EQ(window.size(), 512u);
  EXPECT_TRUE(std::equal(window.span().begin(), window.span().end(),
                         bytes.begin() + 1024));
  // The view shares the parent's allocation (aliasing shared_ptr): no copy.
  EXPECT_GE(buf.refs(), 2);
}

TEST(RangedReads, BlockStoreGetRangeServesSubRanges) {
  store::MemBlockStore store;
  const auto bytes = random_bytes(8192, 902);
  store.put(7, datapath::BlockBuffer::copy_of(bytes));
  const auto mid = store.get_range(7, 4096, 1024);
  ASSERT_TRUE(mid.has_value());
  EXPECT_TRUE(std::equal(mid->span().begin(), mid->span().end(),
                         bytes.begin() + 4096));
  EXPECT_FALSE(store.get_range(7, 8000, 1000).has_value());  // past the end
  EXPECT_FALSE(store.get_range(8, 0, 16).has_value());       // unknown block
}

// ----------------------------------------------- MiniCfs vector degraded read

cfs::CfsConfig vector_cfs_config(CodecFamily family) {
  cfs::CfsConfig cfg;
  cfg.racks = 15;
  cfg.nodes_per_rack = 4;
  cfg.placement.code = CodeParams{14, 10};  // the paper's default geometry
  cfg.placement.replication = 3;
  cfg.placement.c = 1;
  cfg.use_ear = true;
  cfg.block_size = 16_KB;  // divisible by Clay's alpha = 256
  cfg.seed = 11;
  cfg.codec_family = family;
  return cfg;
}

// Writes until one stripe seals and encodes it; returns cluster + originals.
std::unique_ptr<cfs::MiniCfs> sealed_encoded_cluster(
    const cfs::CfsConfig& cfg,
    std::map<BlockId, std::vector<uint8_t>>* originals, StripeId* stripe_out) {
  const Topology topo(cfg.racks, cfg.nodes_per_rack);
  auto cfs = std::make_unique<cfs::MiniCfs>(
      cfg, std::make_unique<cfs::InstantTransport>(topo));
  Rng rng(7);
  while (cfs->sealed_stripes().empty()) {
    std::vector<uint8_t> data(static_cast<size_t>(cfg.block_size));
    for (auto& b : data) b = static_cast<uint8_t>(rng.uniform(256));
    const BlockId id = cfs->write_block(data);
    if (originals) (*originals)[id] = std::move(data);
  }
  const StripeId stripe = cfs->sealed_stripes()[0];
  cfs->encode_stripe(stripe);
  if (stripe_out) *stripe_out = stripe;
  return cfs;
}

int64_t transport_bytes(cfs::MiniCfs& cfs) {
  return cfs.transport().cross_rack_bytes() +
         cfs.transport().intra_rack_bytes();
}

// Degraded reads through each vector family reconstruct byte-identical
// blocks, and the plan-driven families move fewer network bytes than the
// scalar RS whole-block fallback.
TEST(CfsVectorCodecs, DegradedReadByteIdenticalAndCheaperThanRs) {
  std::map<CodecFamily, int64_t> read_bytes;
  for (const CodecFamily family :
       {CodecFamily::kRS, CodecFamily::kClay, CodecFamily::kHitchhiker}) {
    const auto cfg = vector_cfs_config(family);
    std::map<BlockId, std::vector<uint8_t>> originals;
    StripeId stripe = kInvalidStripe;
    auto cfs = sealed_encoded_cluster(cfg, &originals, &stripe);
    const auto meta = cfs->stripe_meta(stripe);

    const BlockId victim = meta.data_blocks[1];
    const auto locs = cfs->block_locations(victim);
    ASSERT_FALSE(locs.empty());
    for (const NodeId holder : locs) cfs->kill_node(holder);

    NodeId reader = 0;
    while (!cfs->node_alive(reader)) ++reader;
    const int64_t before = transport_bytes(*cfs);
    const auto got = cfs->read_block(victim, reader);
    read_bytes[family] = transport_bytes(*cfs) - before;
    ASSERT_EQ(got, originals.at(victim)) << family_name(family);
    ASSERT_GT(read_bytes[family], 0) << family_name(family);
  }
  // RS fetches k full blocks; Clay (14,10) needs (n-1)/q = 3.25 blocks'
  // worth; Hitchhiker fetches 14 half-blocks (9 b-halves + 2 parity
  // b-halves + 3 group a-halves).
  const int64_t rs = read_bytes[CodecFamily::kRS];
  EXPECT_EQ(rs, 10 * 16_KB);
  EXPECT_LE(read_bytes[CodecFamily::kClay] * 10, rs * 6);  // <= 0.6x RS
  EXPECT_LT(read_bytes[CodecFamily::kHitchhiker], rs);
  EXPECT_EQ(read_bytes[CodecFamily::kClay], 13 * 16_KB / 4);
}

// planned_repair_bytes reports each family's plan cost; RepairManager
// charges it when replaying repair traffic.
TEST(CfsVectorCodecs, PlannedRepairBytesMatchesFamilyModel) {
  for (const CodecFamily family :
       {CodecFamily::kRS, CodecFamily::kClay, CodecFamily::kHitchhiker}) {
    const auto cfg = vector_cfs_config(family);
    std::map<BlockId, std::vector<uint8_t>> originals;
    StripeId stripe = kInvalidStripe;
    auto cfs = sealed_encoded_cluster(cfg, &originals, &stripe);
    const auto meta = cfs->stripe_meta(stripe);
    const Bytes planned = cfs->planned_repair_bytes(meta.data_blocks[0]);
    switch (family) {
      case CodecFamily::kRS:
        EXPECT_EQ(planned, 10 * 16_KB);  // k full blocks, the seed model
        break;
      case CodecFamily::kClay:
        EXPECT_EQ(planned, 13 * 16_KB / 4);  // (n-1) helpers x block/q
        break;
      case CodecFamily::kHitchhiker:
        EXPECT_LT(planned, 10 * 16_KB);
        break;
      default:
        break;
    }
    // Un-encoded blocks are re-replicated from a live copy: one block.
    std::vector<uint8_t> data(static_cast<size_t>(cfg.block_size), 0x5a);
    const BlockId plain = cfs->write_block(data);
    EXPECT_EQ(cfs->planned_repair_bytes(plain), cfg.block_size);
  }
}

// Repairing a lost block through the vector codec restores byte-identical
// contents readable from the repair target.
TEST(CfsVectorCodecs, RepairBlockRestoresBytes) {
  const auto cfg = vector_cfs_config(CodecFamily::kClay);
  std::map<BlockId, std::vector<uint8_t>> originals;
  StripeId stripe = kInvalidStripe;
  auto cfs = sealed_encoded_cluster(cfg, &originals, &stripe);
  const auto meta = cfs->stripe_meta(stripe);
  const BlockId victim = meta.data_blocks[3];
  for (const NodeId holder : cfs->block_locations(victim)) {
    cfs->kill_node(holder);
  }
  const NodeId target =
      cfs->pick_repair_target({}, cfs->live_stripe_racks(victim));
  cfs->repair_block(victim, target);
  NodeId reader = 0;
  while (!cfs->node_alive(reader)) ++reader;
  EXPECT_EQ(cfs->read_block(victim, reader), originals.at(victim));
}

// ---------------------------------------------------- ClusterSim repair drill

sim::SimConfig drill_sim_config(CodecFamily family) {
  sim::SimConfig cfg;
  cfg.racks = 10;
  cfg.nodes_per_rack = 4;
  cfg.placement.code = CodeParams{8, 6};
  cfg.block_size = 8_MB;
  cfg.encode_processes = 4;
  cfg.stripes_per_process = 5;
  cfg.write_rate = 0;
  cfg.background_rate = 0;
  cfg.repair_drill_blocks = 40;
  cfg.codec_family = family;
  cfg.seed = 41;
  return cfg;
}

TEST(SimRepairDrill, ClayMovesAtMost60PercentOfRsBytes) {
  const sim::SimResult rs =
      sim::ClusterSim(drill_sim_config(CodecFamily::kRS)).run();
  const sim::SimResult clay =
      sim::ClusterSim(drill_sim_config(CodecFamily::kClay)).run();
  ASSERT_EQ(rs.repairs_simulated, 40);
  ASSERT_EQ(clay.repairs_simulated, 40);
  // RS replays k full blocks per repair; Clay's plan ships
  // (n-1) * block / q = 3.5 blocks' worth.
  EXPECT_EQ(rs.repair_bytes, 40 * 6 * static_cast<int64_t>(8_MB));
  EXPECT_EQ(clay.repair_bytes, 40 * 7 * static_cast<int64_t>(8_MB) / 2);
  EXPECT_LE(clay.repair_bytes * 10, rs.repair_bytes * 6);
  EXPECT_GT(clay.repair_drill_seconds, 0);
}

TEST(SimRepairDrill, ZeroDrillBlocksReproducesPreCodecSim) {
  auto cfg = drill_sim_config(CodecFamily::kClay);
  cfg.repair_drill_blocks = 0;
  const sim::SimResult r = sim::ClusterSim(cfg).run();
  EXPECT_EQ(r.repairs_simulated, 0);
  EXPECT_EQ(r.repair_bytes, 0);
  EXPECT_EQ(r.repair_drill_seconds, 0);
}

// ---------------------------------------------------- GF kernel sweep fuzz
//
// Differential fixture: run the same seeded codec workload once under every
// compiled GF kernel (forced via gf::KernelOverride) and require the bytes
// to match the scalar kernel exactly.  The scalar field is the reference;
// any SIMD kernel drift in encode_chunk / apply_plan_chunk — including
// ragged final chunks and the Clay/Hitchhiker sub-block schedules — fails
// here byte-for-byte.
class KernelSweep : public ::testing::Test {
 protected:
  // Runs `work` under each kernel, comparing its byte output to scalar's.
  static void ExpectIdenticalOnEveryKernel(
      const std::function<std::vector<uint8_t>()>& work) {
    std::vector<uint8_t> want;
    {
      gf::KernelOverride scalar("scalar");
      want = work();
    }
    for (const gf::GfKernel* k : gf::compiled_kernels()) {
      gf::KernelOverride forced(k->name);
      const std::vector<uint8_t> got = work();
      ASSERT_EQ(got.size(), want.size()) << k->name;
      ASSERT_EQ(got, want) << "kernel " << k->name
                           << " diverges from scalar";
    }
  }

  // A ragged chunk schedule over [0, sub): prime-length steps so the final
  // chunk is partial and chunk edges land inside every vector width.
  static void ForEachRaggedChunk(
      size_t sub, const std::function<void(size_t, size_t)>& chunk) {
    constexpr size_t kStep = 1009;
    for (size_t off = 0; off < sub; off += kStep) {
      chunk(off, std::min(kStep, sub - off));
    }
  }
};

TEST_F(KernelSweep, EncodeChunkIdenticalAcrossKernelsAllFamilies) {
  struct Case {
    CodecFamily family;
    int n, k;
  };
  const Case cases[] = {
      {CodecFamily::kRS, 10, 6},
      {CodecFamily::kLRC, 11, 8},
      {CodecFamily::kClay, 10, 6},
      {CodecFamily::kHitchhiker, 10, 6},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(family_name(c.family));
    const auto codec = make_codec(c.family, c.n, c.k);
    // Divisible by any alpha <= 256 and not a multiple of the ragged step.
    const size_t block = 64 * 1024;
    const size_t sub = codec->sub_block_size(block);
    std::vector<std::vector<uint8_t>> data;
    for (int i = 0; i < codec->k(); ++i) {
      data.push_back(random_bytes(block, 600 + static_cast<uint64_t>(i)));
    }
    const std::vector<BlockView> dv(data.begin(), data.end());
    ExpectIdenticalOnEveryKernel([&] {
      std::vector<std::vector<uint8_t>> parity(
          static_cast<size_t>(codec->m()), std::vector<uint8_t>(block));
      const std::vector<MutBlockView> pv(parity.begin(), parity.end());
      ForEachRaggedChunk(sub, [&](size_t off, size_t len) {
        codec->encode_chunk(dv, pv, off, len);
      });
      std::vector<uint8_t> all;
      for (const auto& p : parity) all.insert(all.end(), p.begin(), p.end());
      return all;
    });
  }
}

TEST_F(KernelSweep, RandomCoefficientPlansIdenticalAcrossKernels) {
  Rng rng(20260808);
  for (int trial = 0; trial < 25; ++trial) {
    SCOPED_TRACE(trial);
    const int alpha = 1 << rng.uniform(4);  // 1, 2, 4, 8
    const int nunits = 1 + rng.uniform(12);
    const size_t block = 8 * 1024;  // divisible by every alpha drawn above
    const size_t sub = block / static_cast<size_t>(alpha);
    RepairPlan plan;
    plan.lost_id = 0;
    plan.alpha = alpha;
    plan.coeffs = Matrix(alpha, nunits);
    for (int r = 0; r < alpha; ++r) {
      for (int u = 0; u < nunits; ++u) {
        // Sparse rows with the special values over-represented.
        const int draw = rng.uniform(8);
        plan.coeffs.at(r, u) = draw < 2   ? uint8_t{0}
                               : draw < 3 ? uint8_t{1}
                                          : static_cast<uint8_t>(
                                                rng.uniform(256));
      }
    }
    std::vector<std::vector<uint8_t>> unit_store;
    for (int u = 0; u < nunits; ++u) {
      unit_store.push_back(
          random_bytes(sub, 900 + static_cast<uint64_t>(trial * 16 + u)));
    }
    const std::vector<BlockView> units(unit_store.begin(), unit_store.end());
    ExpectIdenticalOnEveryKernel([&] {
      std::vector<uint8_t> out(block, 0xEE);
      ForEachRaggedChunk(sub, [&](size_t off, size_t len) {
        ErasureCodec::apply_plan_chunk(plan, units, out, off, len);
      });
      return out;
    });
  }
}

TEST_F(KernelSweep, ClayAndHitchhikerRepairPlansIdenticalAcrossKernels) {
  struct Case {
    CodecFamily family;
    int n, k;
  };
  const Case cases[] = {
      {CodecFamily::kClay, 10, 6},
      {CodecFamily::kClay, 12, 8},
      {CodecFamily::kHitchhiker, 10, 6},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(family_name(c.family));
    const auto codec = make_codec(c.family, c.n, c.k);
    const size_t block = 64 * 1024;
    const auto blocks = make_stripe(*codec, block, 1234);
    for (const int lost : {0, c.k - 1, c.n - 1}) {
      RepairPlan plan;
      ASSERT_TRUE(codec->plan_repair(lost, all_but(c.n, lost), &plan));
      const auto units = gather_units(plan, blocks);
      const size_t sub = block / static_cast<size_t>(plan.alpha);
      ExpectIdenticalOnEveryKernel([&] {
        std::vector<uint8_t> out(block, 0x00);
        ForEachRaggedChunk(sub, [&](size_t off, size_t len) {
          ErasureCodec::apply_plan_chunk(plan, units, out, off, len);
        });
        EXPECT_EQ(out, blocks[static_cast<size_t>(lost)])
            << "repair must also be correct, not merely consistent";
        return out;
      });
    }
  }
}

}  // namespace
}  // namespace ear::erasure
