#include "sim/cluster.h"

#include <gtest/gtest.h>

namespace ear::sim {
namespace {

SimConfig small_config(bool use_ear, uint64_t seed = 7) {
  SimConfig cfg;
  cfg.racks = 8;
  cfg.nodes_per_rack = 4;
  cfg.placement.code = CodeParams{8, 6};
  cfg.placement.replication = 3;
  cfg.placement.c = 1;
  cfg.use_ear = use_ear;
  cfg.block_size = 8_MB;
  cfg.write_rate = 0.5;
  cfg.background_rate = 0.5;
  cfg.background_mean_size = 8_MB;
  cfg.encode_start = 10.0;
  cfg.encode_processes = 4;
  cfg.stripes_per_process = 5;
  cfg.seed = seed;
  return cfg;
}

TEST(ClusterSim, RunsToCompletion) {
  ClusterSim sim(small_config(true));
  const SimResult result = sim.run();
  EXPECT_EQ(result.stripes_encoded, 20);
  EXPECT_GT(result.encode_end, result.encode_begin);
  EXPECT_GT(result.encode_throughput_mbps, 0.0);
  EXPECT_GT(result.writes_completed, 0);
  EXPECT_EQ(result.stripe_completions.size(), 20u);
  // Completion curve is monotone.
  for (size_t i = 1; i < result.stripe_completions.size(); ++i) {
    EXPECT_GE(result.stripe_completions[i].first,
              result.stripe_completions[i - 1].first);
    EXPECT_EQ(result.stripe_completions[i].second, static_cast<int>(i) + 1);
  }
}

TEST(ClusterSim, EarHasZeroCrossRackDownloads) {
  ClusterSim sim(small_config(true));
  const SimResult result = sim.run();
  EXPECT_EQ(result.encoding_cross_rack_downloads, 0);
}

TEST(ClusterSim, RrHasManyCrossRackDownloads) {
  ClusterSim sim(small_config(false));
  const SimResult result = sim.run();
  // Expectation ~ k(1 - 2/R) = 6 * 0.75 = 4.5 per stripe; with 20 stripes
  // anything below 40 would be suspicious.
  EXPECT_GT(result.encoding_cross_rack_downloads, 40);
}

TEST(ClusterSim, EarEncodesFasterThanRr) {
  const SimResult ear = ClusterSim(small_config(true)).run();
  const SimResult rr = ClusterSim(small_config(false)).run();
  EXPECT_GT(ear.encode_throughput_mbps, rr.encode_throughput_mbps);
}

TEST(ClusterSim, EarUsesLessCrossRackBandwidth) {
  const SimResult ear = ClusterSim(small_config(true)).run();
  const SimResult rr = ClusterSim(small_config(false)).run();
  EXPECT_LT(ear.cross_rack_bytes, rr.cross_rack_bytes);
}

TEST(ClusterSim, DeterministicForFixedSeed) {
  const SimResult a = ClusterSim(small_config(true, 99)).run();
  const SimResult b = ClusterSim(small_config(true, 99)).run();
  EXPECT_DOUBLE_EQ(a.encode_throughput_mbps, b.encode_throughput_mbps);
  EXPECT_DOUBLE_EQ(a.encode_end, b.encode_end);
  EXPECT_EQ(a.writes_completed, b.writes_completed);
  EXPECT_EQ(a.cross_rack_bytes, b.cross_rack_bytes);
}

TEST(ClusterSim, DifferentSeedsDiffer) {
  const SimResult a = ClusterSim(small_config(true, 1)).run();
  const SimResult b = ClusterSim(small_config(true, 2)).run();
  EXPECT_NE(a.encode_end, b.encode_end);
}

TEST(ClusterSim, RelocationAblationChargesRrOnly) {
  auto rr_cfg = small_config(false);
  rr_cfg.simulate_relocation = true;
  const SimResult rr = ClusterSim(rr_cfg).run();
  EXPECT_GT(rr.relocations, 0) << "RR should need relocations in 8 racks";
  EXPECT_EQ(rr.relocation_bytes, rr.relocations * rr_cfg.block_size);

  auto ear_cfg = small_config(true);
  ear_cfg.simulate_relocation = true;
  const SimResult ear = ClusterSim(ear_cfg).run();
  EXPECT_EQ(ear.relocations, 0) << "EAR layouts comply by construction";
}

TEST(ClusterSim, WritesBeforeEncodingAreFasterThanDuring) {
  auto cfg = small_config(true);
  cfg.encode_start = 60.0;
  cfg.write_rate = 1.0;
  const SimResult result = ClusterSim(cfg).run();
  ASSERT_GT(result.write_response_before.count(), 0u);
  ASSERT_GT(result.write_response_during.count(), 0u);
  EXPECT_LT(result.write_response_before.mean(),
            result.write_response_during.mean());
}

TEST(ClusterSim, NoWriteTrafficStillEncodes) {
  auto cfg = small_config(true);
  cfg.write_rate = 0.0;
  cfg.background_rate = 0.0;
  const SimResult result = ClusterSim(cfg).run();
  EXPECT_EQ(result.stripes_encoded, 20);
  EXPECT_EQ(result.writes_completed, 0);
}

TEST(ClusterSim, PipelinedEncodeRunsToCompletion) {
  auto cfg = small_config(true);
  cfg.encode_pipeline_chunks = 4;
  cfg.encode_compute_seconds = 0.2;
  const SimResult result = ClusterSim(cfg).run();
  EXPECT_EQ(result.stripes_encoded, 20);
  EXPECT_GT(result.encode_end, result.encode_begin);
  EXPECT_GT(result.encode_throughput_mbps, 0.0);
}

TEST(ClusterSim, PipelinedEncodeNoSlowerThanSerial) {
  // With nonzero compute the staged overlap must hide (part of) the compute
  // and upload time behind the downloads; with compute = 0 it still overlaps
  // uploads with later downloads.  Quiesce the generators so the comparison
  // is deterministic.
  for (const double compute : {0.0, 0.5}) {
    auto serial_cfg = small_config(true);
    serial_cfg.write_rate = 0.0;
    serial_cfg.background_rate = 0.0;
    serial_cfg.encode_compute_seconds = compute;
    auto piped_cfg = serial_cfg;
    piped_cfg.encode_pipeline_chunks = 8;
    const SimResult serial = ClusterSim(serial_cfg).run();
    const SimResult piped = ClusterSim(piped_cfg).run();
    EXPECT_LE(piped.encode_end, serial.encode_end + 1e-9)
        << "compute=" << compute;
    if (compute > 0) {
      EXPECT_LT(piped.encode_end, serial.encode_end) << "compute=" << compute;
    }
  }
}

TEST(ClusterSim, PipelinedEncodeMovesIdenticalBytes) {
  // Pipelining changes when bytes move, never which bytes: same seed, same
  // placements, so the per-category byte totals must match the serial model.
  auto serial_cfg = small_config(true);
  serial_cfg.write_rate = 0.0;
  serial_cfg.background_rate = 0.0;
  serial_cfg.encode_compute_seconds = 0.1;
  auto piped_cfg = serial_cfg;
  piped_cfg.encode_pipeline_chunks = 5;
  const SimResult serial = ClusterSim(serial_cfg).run();
  const SimResult piped = ClusterSim(piped_cfg).run();
  EXPECT_EQ(piped.cross_rack_bytes, serial.cross_rack_bytes);
  EXPECT_EQ(piped.intra_rack_bytes, serial.intra_rack_bytes);
  EXPECT_EQ(piped.encoding_cross_rack_downloads,
            serial.encoding_cross_rack_downloads);
  EXPECT_EQ(piped.stripes_encoded, serial.stripes_encoded);
}

TEST(ClusterSim, MeanLayoutIterationsReportedForEar) {
  const SimResult ear = ClusterSim(small_config(true)).run();
  EXPECT_GE(ear.mean_layout_iterations, 1.0);
  const SimResult rr = ClusterSim(small_config(false)).run();
  EXPECT_EQ(rr.mean_layout_iterations, 0.0);
}

}  // namespace
}  // namespace ear::sim
