// Tests for the failure & repair subsystem: event vocabulary, the seeded
// failure process, heartbeat detection (including false positives), the
// prioritized RepairManager, chaos under real threads (the TSan target), and
// the Monte Carlo reliability engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "cfs/minicfs.h"
#include "cfs/raidnode.h"
#include "common/rng.h"
#include "failure/detector.h"
#include "failure/events.h"
#include "failure/process.h"
#include "failure/reliability.h"
#include "failure/repair.h"
#include "sim/engine.h"

namespace ear::failure {
namespace {

cfs::CfsConfig small_config(int racks = 10, int nodes_per_rack = 4,
                            int replication = 3) {
  cfs::CfsConfig cfg;
  cfg.racks = racks;
  cfg.nodes_per_rack = nodes_per_rack;
  cfg.placement.code = CodeParams{8, 6};
  cfg.placement.replication = replication;
  cfg.placement.c = 1;
  cfg.use_ear = true;
  cfg.block_size = 16_KB;
  cfg.seed = 11;
  return cfg;
}

std::unique_ptr<cfs::MiniCfs> make_cfs(const cfs::CfsConfig& cfg) {
  Topology topo(cfg.racks, cfg.nodes_per_rack);
  return std::make_unique<cfs::MiniCfs>(
      cfg, std::make_unique<cfs::InstantTransport>(topo));
}

// Writes blocks until `stripes` stripes are sealed; returns block payloads.
std::map<BlockId, std::vector<uint8_t>> load_stripes(cfs::MiniCfs& cfs,
                                                     int stripes) {
  std::map<BlockId, std::vector<uint8_t>> payloads;
  Rng rng(7);
  NodeId writer = 0;
  while (static_cast<int>(cfs.sealed_stripes().size()) < stripes) {
    std::vector<uint8_t> data(
        static_cast<size_t>(cfs.config().block_size));
    for (auto& b : data) b = static_cast<uint8_t>(rng.uniform(256));
    const BlockId id = cfs.write_block(data, writer);
    payloads[id] = std::move(data);
    writer = (writer + 1) % cfs.topology().node_count();
  }
  return payloads;
}

// ---- events ---------------------------------------------------------------

TEST(FailureEvents, FormatParseRoundTrip) {
  const FailureEvent ev{12.345678, EventKind::kRackRecover, 3};
  const auto parsed = parse_event(format_event(ev));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, ev);
}

TEST(FailureEvents, ParseSkipsCommentsAndBlankLines) {
  EXPECT_FALSE(parse_event("").has_value());
  EXPECT_FALSE(parse_event("  # comment").has_value());
  EXPECT_THROW(parse_event("t=1.0 bogus_kind 3"), std::runtime_error);
  EXPECT_THROW(parse_event("t=1.0 node_fail"), std::runtime_error);
}

TEST(FailureEvents, ParseTraceEnforcesTimeOrder) {
  std::istringstream good(
      "# trace\n"
      "t=0.500000 node_fail 1\n"
      "t=1.000000 node_recover 1\n");
  const auto events = parse_trace(good);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kNodeFail);

  std::istringstream bad(
      "t=2.000000 node_fail 1\n"
      "t=1.000000 node_recover 1\n");
  EXPECT_THROW(parse_trace(bad), std::runtime_error);
}

// ---- failure process ------------------------------------------------------

TEST(FailureProcess, DeterministicAndSorted) {
  const Topology topo(6, 2);
  FailureModel model;
  model.node_mttf = 10;
  model.node_mttr = 2;
  model.rack_mttf = 30;
  model.rack_mttr = 5;
  model.seed = 42;
  const FailureProcess process(topo, model);
  const auto a = process.generate(100);
  const auto b = process.generate(100);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));

  // Per component the schedule must alternate fail/recover.
  std::map<std::pair<bool, int>, bool> down;  // (is_rack, id) -> down?
  for (const auto& ev : a) {
    const bool is_rack = ev.kind == EventKind::kRackFail ||
                         ev.kind == EventKind::kRackRecover;
    const bool fails = ev.kind == EventKind::kNodeFail ||
                       ev.kind == EventKind::kRackFail;
    bool& state = down[{is_rack, ev.id}];
    EXPECT_NE(state, fails) << "double " << kind_name(ev.kind);
    state = fails;
  }
}

TEST(FailureProcess, SeedChangesSchedule) {
  const Topology topo(6, 2);
  FailureModel model;
  model.node_mttf = 10;
  model.node_mttr = 2;
  model.seed = 1;
  const auto a = FailureProcess(topo, model).generate(50);
  model.seed = 2;
  const auto b = FailureProcess(topo, model).generate(50);
  EXPECT_NE(a, b);
}

TEST(FailureProcess, RealTimeDriverAppliesAll) {
  auto cfs = make_cfs(small_config());
  const std::vector<FailureEvent> events = {
      {0.001, EventKind::kNodeFail, 2},
      {0.002, EventKind::kRackFail, 1},
      {0.003, EventKind::kNodeRecover, 2},
      {0.004, EventKind::kRackRecover, 1},
  };
  RealTimeFailureDriver driver(*cfs, events, /*time_compression=*/1.0);
  std::atomic<int> seen{0};
  driver.start([&](const FailureEvent&) { seen.fetch_add(1); });
  driver.wait();
  EXPECT_EQ(driver.events_applied(), events.size());
  EXPECT_EQ(seen.load(), static_cast<int>(events.size()));
  for (NodeId n = 0; n < cfs->topology().node_count(); ++n) {
    EXPECT_TRUE(cfs->node_alive(n));
  }
}

TEST(FailureProcess, ScheduleOnEngineRunsInVirtualTime) {
  sim::Engine engine;
  const std::vector<FailureEvent> events = {
      {1.0, EventKind::kNodeFail, 0},
      {2.5, EventKind::kNodeRecover, 0},
  };
  std::vector<std::pair<Seconds, EventKind>> seen;
  schedule_on_engine(engine, events, [&](const FailureEvent& ev) {
    seen.emplace_back(engine.now(), ev.kind);
  });
  engine.run();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_DOUBLE_EQ(seen[0].first, 1.0);
  EXPECT_EQ(seen[0].second, EventKind::kNodeFail);
  EXPECT_DOUBLE_EQ(seen[1].first, 2.5);
}

// ---- detector -------------------------------------------------------------

TEST(FailureDetector, DeclaresSilentNodeDown) {
  Seconds clock = 0;
  DetectorConfig cfg;
  cfg.timeout = 1.0;
  FailureDetector detector(4, cfg, [&clock] { return clock; });

  clock = 0.5;
  for (NodeId n = 0; n < 4; ++n) detector.record_heartbeat(n);
  EXPECT_TRUE(detector.poll().empty());

  // Node 2 goes silent; the others keep reporting.
  clock = 1.4;
  for (const NodeId n : {0, 1, 3}) detector.record_heartbeat(n);
  EXPECT_TRUE(detector.poll().empty());  // within timeout

  clock = 1.6;
  const auto events = detector.poll();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].node, 2);
  EXPECT_TRUE(events[0].down);
  EXPECT_TRUE(detector.is_down(2));
  EXPECT_EQ(detector.down_nodes(), std::vector<NodeId>{2});
}

TEST(FailureDetector, LateHeartbeatIsFalsePositive) {
  Seconds clock = 0;
  DetectorConfig cfg;
  cfg.timeout = 1.0;
  FailureDetector detector(2, cfg, [&clock] { return clock; });
  detector.record_heartbeat(0);
  detector.record_heartbeat(1);

  clock = 2.0;
  detector.record_heartbeat(0);
  ASSERT_EQ(detector.poll().size(), 1u);  // node 1 declared down
  EXPECT_EQ(detector.false_positives(), 0);

  // The "dead" node was only slow: its next heartbeat reinstates it.
  clock = 2.5;
  detector.record_heartbeat(1);
  EXPECT_FALSE(detector.is_down(1));
  EXPECT_EQ(detector.false_positives(), 1);
  const auto events = detector.poll();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].node, 1);
  EXPECT_FALSE(events[0].down);
}

// A detector false positive must not move any bytes: the repair manager
// re-verifies each task against live metadata and no-ops it.
TEST(FailureDetector, DelayedHeartbeatTriggersNoSpuriousRepair) {
  auto cfs = make_cfs(small_config());
  load_stripes(*cfs, 2);

  Seconds clock = 0;
  DetectorConfig dcfg;
  dcfg.timeout = 1.0;
  FailureDetector detector(cfs->topology().node_count(), dcfg,
                           [&clock] { return clock; });
  for (NodeId n = 0; n < cfs->topology().node_count(); ++n) {
    detector.record_heartbeat(n);
  }

  // Node 5 is merely slow: it misses heartbeats but never loses data.  A
  // transient cluster blip makes it miss the window and get declared down.
  clock = 2.0;
  cfs->kill_node(5);
  for (NodeId n = 0; n < cfs->topology().node_count(); ++n) {
    if (n != 5) detector.record_heartbeat(n);
  }
  RepairManager repair(*cfs, RepairConfig{});
  int queued = 0;
  for (const auto& ev : detector.poll()) {
    ASSERT_TRUE(ev.down);
    queued += repair.schedule_node(ev.node);
  }
  EXPECT_GT(queued, 0);

  // It reports back before the repair runs; every queued task re-verifies
  // as healthy and becomes a no-op instead of a spurious copy.
  clock = 2.5;
  cfs->revive_node(5);
  detector.record_heartbeat(5);
  EXPECT_EQ(detector.false_positives(), 1);
  const auto report = repair.drain();
  EXPECT_EQ(report.re_replicated, 0);
  EXPECT_EQ(report.repaired, 0);
  EXPECT_EQ(report.bytes_moved, 0);
  EXPECT_GT(report.noop, 0);
  EXPECT_EQ(report.noop, queued);
}

// ---- repair manager -------------------------------------------------------

TEST(RepairManager, RestoresReplicationAfterNodeKill) {
  auto cfs = make_cfs(small_config());
  const auto payloads = load_stripes(*cfs, 2);

  const NodeId victim = cfs->block_locations(payloads.begin()->first)[0];
  cfs->kill_node(victim);
  RepairManager repair(*cfs, RepairConfig{});
  EXPECT_GT(repair.schedule_node(victim), 0);
  const auto report = repair.drain();
  EXPECT_GT(report.re_replicated, 0);
  EXPECT_EQ(report.unrecoverable, 0);
  EXPECT_EQ(repair.queue_depth(), 0u);

  const int r = cfs->config().placement.replication;
  for (const auto& [block, data] : payloads) {
    int live = 0;
    for (const NodeId n : cfs->block_locations(block)) {
      if (cfs->node_alive(n)) ++live;
    }
    EXPECT_GE(live, r) << "block " << block;
    EXPECT_EQ(cfs->read_block(block, (victim + 1) %
                                         cfs->topology().node_count()),
              data);
  }
}

TEST(RepairManager, RebuildsEncodedBlockByDecoding) {
  auto cfs = make_cfs(small_config());
  const auto payloads = load_stripes(*cfs, 1);
  const StripeId stripe = cfs->sealed_stripes().front();
  cfs->encode_stripe(stripe);

  const BlockId lost = cfs->stripe_meta(stripe).data_blocks[0];
  const NodeId victim = cfs->block_locations(lost)[0];
  cfs->kill_node(victim);

  RepairManager repair(*cfs, RepairConfig{});
  repair.schedule_node(victim);
  const auto report = repair.drain();
  EXPECT_GE(report.repaired, 1);
  EXPECT_EQ(report.unrecoverable, 0);

  // The rebuilt copy lives on a fresh node and the bytes are intact.
  const auto locs = cfs->block_locations(lost);
  ASSERT_FALSE(locs.empty());
  for (const NodeId n : locs) EXPECT_TRUE(cfs->node_alive(n));
  EXPECT_EQ(cfs->read_block(lost, (victim + 1) %
                                      cfs->topology().node_count()),
            payloads.at(lost));
}

TEST(RepairManager, DrainsInPriorityOrder) {
  auto cfs = make_cfs(small_config());
  const auto payloads = load_stripes(*cfs, 3);

  // Encode one stripe (its lost blocks compete at stripe-level priority)
  // and knock a replicated block down to its last copy (priority 0).
  const StripeId stripe = cfs->sealed_stripes().front();
  cfs->encode_stripe(stripe);
  const BlockId encoded_block = cfs->stripe_meta(stripe).data_blocks[0];
  cfs->kill_node(cfs->block_locations(encoded_block)[0]);

  BlockId frail = kInvalidBlock;
  for (const auto& [block, data] : payloads) {
    if (cfs->is_block_encoded(block)) continue;
    const auto locs = cfs->block_locations(block);
    if (std::all_of(locs.begin(), locs.end(),
                    [&](NodeId n) { return cfs->node_alive(n); })) {
      frail = block;
      cfs->kill_node(locs[0]);
      cfs->kill_node(locs[1]);
      break;
    }
  }
  ASSERT_NE(frail, kInvalidBlock);

  std::vector<std::pair<BlockId, int>> order;
  RepairConfig rcfg;
  rcfg.on_task = [&order](BlockId block, int priority) {
    order.emplace_back(block, priority);
  };
  RepairManager repair(*cfs, rcfg);
  repair.schedule_scan();
  repair.drain();

  ASSERT_GE(order.size(), 2u);
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(order[i - 1].second, order[i].second)
        << "priority inversion at task " << i;
  }
  // The last-copy block runs in the leading priority-0 batch.
  EXPECT_EQ(order.front().second, 0);
  bool frail_at_zero = false;
  for (const auto& [block, priority] : order) {
    if (block == frail && priority == 0) frail_at_zero = true;
  }
  EXPECT_TRUE(frail_at_zero);
}

TEST(RepairManager, GivesUpAfterMaxAttempts) {
  auto cfs = make_cfs(small_config());
  const auto payloads = load_stripes(*cfs, 1);

  // Kill every replica of one block: re-replication has no live source, so
  // each attempt fails until attempts are exhausted.
  const BlockId block = payloads.begin()->first;
  for (const NodeId n : cfs->block_locations(block)) cfs->kill_node(n);

  RepairConfig rcfg;
  rcfg.max_attempts = 3;
  rcfg.retry_backoff = 0.0001;
  RepairManager repair(*cfs, rcfg);
  repair.schedule_scan();
  const auto report = repair.drain();
  EXPECT_GE(report.unrecoverable, 1);
  EXPECT_GE(report.retries, 2);  // max_attempts - 1 requeues for that block
  EXPECT_EQ(repair.queue_depth(), 0u);
}

TEST(RepairManager, LiveWorkersMatchDrainSemantics) {
  auto cfs = make_cfs(small_config());
  load_stripes(*cfs, 2);
  const NodeId victim = 3;
  cfs->kill_node(victim);

  RepairConfig rcfg;
  rcfg.workers = 3;
  RepairManager repair(*cfs, rcfg);
  repair.start();
  repair.schedule_node(victim);
  repair.wait_idle();
  repair.stop();

  const auto report = repair.report();
  EXPECT_EQ(report.unrecoverable, 0);
  EXPECT_EQ(repair.queue_depth(), 0u);
  const auto snap = cfs->namespace_snapshot();
  const int r = cfs->config().placement.replication;
  for (const auto& [block, status] : snap.blocks) {
    int live = 0;
    for (const NodeId n : status.locations) {
      if (cfs->node_alive(n)) ++live;
    }
    EXPECT_GE(live, status.encoded ? 1 : r);
  }
}

// ---- recovery fixes (uniform target selection, snapshot sweep) -------------

TEST(Recovery, RepairTargetsAreSpreadUniformly) {
  auto cfs = make_cfs(small_config(12, 2, /*replication=*/2));
  load_stripes(*cfs, 20);

  // Many independent picks with identical constraints must not collapse onto
  // one candidate (the old sweep always took the first).
  std::set<NodeId> picked;
  for (int i = 0; i < 200; ++i) {
    picked.insert(cfs->pick_repair_target({0, 1}, {0}));
  }
  EXPECT_GE(picked.size(), 10u);

  // End to end: one failed node's blocks re-replicate onto many targets.
  const NodeId victim = 5;
  const auto before = cfs->namespace_snapshot();
  cfs->kill_node(victim);
  ASSERT_GT(cfs->restore_redundancy().re_replicated, 3);
  std::set<NodeId> targets;
  for (const auto& [block, status] : before.blocks) {
    const auto& locs = status.locations;
    if (std::find(locs.begin(), locs.end(), victim) == locs.end()) continue;
    for (const NodeId n : cfs->block_locations(block)) {
      if (n != victim &&
          std::find(locs.begin(), locs.end(), n) == locs.end()) {
        targets.insert(n);
      }
    }
  }
  EXPECT_GE(targets.size(), 4u);
}

// ---- chaos under real threads (the TSan workload) -------------------------

TEST(Chaos, RackKillMidEncodeCompletesOrRetriesCleanly) {
  auto cfg = small_config();
  Topology topo(cfg.racks, cfg.nodes_per_rack);
  // Throttled links stretch the encode window so the kill lands mid-job.
  cfs::ThrottleConfig throttle;
  throttle.node_bw = 20e6;
  throttle.rack_uplink_bw = 20e6;
  throttle.disk_bw = 26e6;
  throttle.chunk_size = 4_KB;
  cfg.block_size = 64_KB;
  auto cfs = std::make_unique<cfs::MiniCfs>(
      cfg, std::make_unique<cfs::InstantTransport>(topo));
  const auto payloads = load_stripes(*cfs, 8);
  cfs->set_transport(
      std::make_unique<cfs::ThrottledTransport>(topo, throttle));

  // Replicas span two racks, so a double rack kill can eliminate every copy
  // of some blocks and force clean encode failures (single kills only
  // degrade).
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    cfs->kill_rack(2);
    cfs->kill_rack(5);
  });
  cfs::RaidNode raid(*cfs, /*map_slots=*/2);
  const auto stripes = cfs->sealed_stripes();
  cfs::EncodeReport report = raid.encode_stripes(stripes);
  killer.join();

  // Every stripe either finished encoding or failed cleanly and retryably.
  for (const StripeId s : stripes) {
    const bool failed = std::find(report.failed.begin(), report.failed.end(),
                                  s) != report.failed.end();
    EXPECT_EQ(cfs->is_encoded(s), !failed) << "stripe " << s;
  }

  cfs->set_transport(std::make_unique<cfs::InstantTransport>(topo));
  cfs->revive_rack(2);
  cfs->revive_rack(5);
  cfs->restore_redundancy();
  if (!report.failed.empty()) {
    const auto retry = raid.encode_stripes(report.failed);
    EXPECT_TRUE(retry.failed.empty());
  }
  for (const StripeId s : stripes) EXPECT_TRUE(cfs->is_encoded(s));
  for (const auto& [block, data] : payloads) {
    EXPECT_EQ(cfs->read_block(block, 0), data) << "block " << block;
  }
}

TEST(Chaos, DetectorRepairAndWritesUnderFailureDriver) {
  auto cfs = make_cfs(small_config());
  load_stripes(*cfs, 2);

  FailureModel model;
  model.node_mttf = 4;
  model.node_mttr = 0.5;
  model.seed = 9;
  const auto events =
      FailureProcess(cfs->topology(), model).generate(/*horizon=*/2.0);

  DetectorConfig dcfg;
  dcfg.timeout = 0.05;
  dcfg.check_interval = 0.01;
  FailureDetector detector(cfs->topology().node_count(), dcfg);
  HeartbeatPump pump(*cfs, detector, /*period=*/0.01);
  RepairConfig rcfg;
  rcfg.workers = 2;
  RepairManager repair(*cfs, rcfg);

  repair.start();
  detector.start([&](const FailureDetector::Event& ev) {
    if (ev.down) repair.schedule_node(ev.node);
  });
  pump.start();
  RealTimeFailureDriver driver(*cfs, events, /*time_compression=*/10.0);
  driver.start();

  // Foreground writes race the chaos.  A write can catch a replica node
  // dying mid-pipeline; that surfaces as a runtime_error, like a real
  // client timeout, and is retried.
  Rng rng(3);
  std::vector<uint8_t> data(static_cast<size_t>(cfs->config().block_size));
  for (auto& b : data) b = static_cast<uint8_t>(rng.uniform(256));
  int written = 0;
  for (int i = 0; i < 40; ++i) {
    try {
      cfs->write_block(data, static_cast<NodeId>(i % 8));
      ++written;
    } catch (const std::runtime_error&) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(written, 0);

  driver.wait();
  repair.wait_idle();
  pump.stop();
  detector.stop();
  repair.stop();

  cfs->revive_all();
  cfs->restore_redundancy();
  for (const BlockId block : cfs->all_blocks()) {
    EXPECT_NO_THROW(cfs->read_block(block, 0)) << "block " << block;
  }
}

// ---- reliability ----------------------------------------------------------

TEST(Reliability, DeterministicAcrossCalls) {
  const Topology topo(6, 2);
  std::vector<StripePlacement> stripes;
  for (int i = 0; i < 10; ++i) {
    StripePlacement sp;
    for (NodeId n = 0; n < 6; ++n) sp.blocks.push_back({n});
    sp.max_lost_blocks = 2;
    stripes.push_back(sp);
  }
  ReliabilityConfig cfg;
  cfg.node_mttf = 50;
  cfg.node_mttr = 5;
  cfg.horizon = 500;
  cfg.trials = 200;
  const auto a = estimate_reliability(topo, stripes, cfg);
  const auto b = estimate_reliability(topo, stripes, cfg);
  EXPECT_EQ(a.losses, b.losses);
  EXPECT_DOUBLE_EQ(a.mttdl, b.mttdl);
  EXPECT_GT(a.losses, 0);
  EXPECT_DOUBLE_EQ(a.p_loss + a.p_no_loss, 1.0);
}

TEST(Reliability, NoFailuresMeansNoLoss) {
  const Topology topo(4, 1);
  std::vector<StripePlacement> stripes(1);
  stripes[0].blocks = {{0}, {1}, {2}};
  stripes[0].max_lost_blocks = 1;
  ReliabilityConfig cfg;
  cfg.node_mttf = 0;  // disabled
  cfg.rack_mttf = 0;
  cfg.trials = 50;
  const auto r = estimate_reliability(topo, stripes, cfg);
  EXPECT_EQ(r.losses, 0);
  EXPECT_EQ(r.p_loss, 0);
  EXPECT_EQ(r.mttdl, std::numeric_limits<double>::infinity());
}

TEST(Reliability, RackConcentrationLosesToSpread) {
  // Same stripe redundancy (m = 2), different rack exposure: three blocks
  // stacked in rack 0 die together on a rack failure; the spread placement
  // loses at most one block per rack — exactly the RR-vs-EAR post-encoding
  // difference.
  const Topology topo(8, 2);
  StripePlacement stacked;
  stacked.blocks = {{0}, {1}, {2}, {4}, {6}, {8}};  // nodes 0,1 in rack 0
  stacked.max_lost_blocks = 2;
  StripePlacement spread;
  spread.blocks = {{0}, {2}, {4}, {6}, {8}, {10}};  // one rack each
  spread.max_lost_blocks = 2;

  ReliabilityConfig cfg;
  cfg.node_mttf = 0;
  cfg.rack_mttf = 50;  // rack failures only
  cfg.rack_mttr = 1;
  cfg.horizon = 500;
  cfg.trials = 200;
  // Nodes 0,1,2 span racks 0,0,1: one rack-0 failure kills blocks 0 and 1,
  // a concurrent rack-1 failure pushes past max_lost_blocks.
  const auto bad = estimate_reliability(topo, {stacked}, cfg);
  const auto good = estimate_reliability(topo, {spread}, cfg);
  EXPECT_GT(bad.p_loss, good.p_loss);
  EXPECT_GE(bad.mttdl, 0);
}

TEST(Reliability, PolicyPlacementsEarBeatsRrPostEncoding) {
  const Topology topo(12, 2);
  PlacementConfig pcfg;
  pcfg.code = CodeParams{8, 6};
  pcfg.replication = 2;
  pcfg.c = 1;
  ReliabilityConfig rel;
  rel.node_mttf = 0;   // isolate the rack-failure channel
  rel.rack_mttf = 100;
  rel.rack_mttr = 1;
  rel.horizon = 300;
  rel.trials = 150;

  const auto run = [&](bool use_ear) {
    auto policy = use_ear ? make_encoding_aware_replication(topo, pcfg, 5)
                          : make_random_replication(topo, pcfg, 5);
    BlockId next = 0;
    while (static_cast<int>(policy->sealed_stripes().size()) < 40) {
      policy->place_block(next++, std::nullopt);
    }
    return estimate_reliability(topo, encoded_placements(*policy), rel);
  };
  const auto rr = run(false);
  const auto ear = run(true);
  // RR can stack >m blocks of a stripe in one rack; EAR's c=1 cannot, so
  // isolated rack failures never lose EAR data.
  EXPECT_GT(rr.p_loss, ear.p_loss);
  EXPECT_GE(ear.p_no_loss, rr.p_no_loss);
}

TEST(Reliability, SnapshotPlacementsCoverMixedNamespace) {
  auto cfs = make_cfs(small_config());
  load_stripes(*cfs, 2);
  cfs->encode_stripe(cfs->sealed_stripes().front());

  const auto placements =
      placements_from_snapshot(cfs->namespace_snapshot(),
                               cfs->config().placement.code.k);
  ASSERT_FALSE(placements.empty());
  size_t covered_blocks = 0;
  bool saw_encoded = false;
  for (const auto& sp : placements) {
    covered_blocks += sp.blocks.size();
    if (sp.max_lost_blocks > 0) saw_encoded = true;
    for (const auto& holders : sp.blocks) EXPECT_FALSE(holders.empty());
  }
  EXPECT_TRUE(saw_encoded);
  EXPECT_EQ(covered_blocks, cfs->all_blocks().size());
}

}  // namespace
}  // namespace ear::failure
