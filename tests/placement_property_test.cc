// Parameterized property sweep: EAR's invariants must hold across the whole
// configuration grid, not just the defaults.  For every combination of
// (racks, k, n-k, replication, c) this suite places several stripes and
// checks:
//   1. every block's first replica sits in its stripe's core rack;
//   2. the encoder is in the core rack and needs zero cross-rack downloads;
//   3. the kept-replica matching uses real replicas, distinct nodes, and at
//      most c blocks per rack;
//   4. the full post-encode layout tolerates floor((n-k)/c) rack failures
//      with no relocation;
//   5. RR under the same configuration yields the documented cross-rack
//      download count on average.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "placement/ear.h"
#include "placement/monitor.h"
#include "placement/random_replication.h"

namespace ear {
namespace {

using Params = std::tuple<int /*racks*/, int /*k*/, int /*m*/, int /*r*/,
                          int /*c*/>;

class EarPropertySweep : public ::testing::TestWithParam<Params> {};

TEST_P(EarPropertySweep, InvariantsHold) {
  const auto [racks, k, m, r, c] = GetParam();
  const int n = k + m;
  const int nodes_per_rack = 8;
  if (racks * c < n) GTEST_SKIP() << "infeasible grid combo";
  if (r - 1 > nodes_per_rack) GTEST_SKIP();

  const Topology topo(racks, nodes_per_rack);
  PlacementConfig cfg;
  cfg.code = CodeParams{n, k};
  cfg.replication = r;
  cfg.c = c;
  EncodingAwareReplication ear_policy(
      topo, cfg, static_cast<uint64_t>(racks * 1000 + k * 10 + c));
  const PlacementMonitor monitor(topo, cfg.code);

  BlockId next = 0;
  while (ear_policy.sealed_stripes().size() < 5) {
    ear_policy.place_block(next++, std::nullopt);
    ASSERT_LT(next, 10000) << "placement failed to seal stripes";
  }

  for (const StripeId id : ear_policy.sealed_stripes()) {
    const StripeInfo& s = ear_policy.stripe(id);

    // (1) first replica in core rack; replica sets well-formed.
    for (const auto& replicas : s.replicas) {
      ASSERT_EQ(static_cast<int>(replicas.size()), r);
      EXPECT_EQ(topo.rack_of(replicas[0]), s.core_rack);
      const std::set<NodeId> unique(replicas.begin(), replicas.end());
      EXPECT_EQ(unique.size(), replicas.size());
    }

    const EncodePlan plan = ear_policy.plan_encoding(id);

    // (2) encoder locality.
    EXPECT_EQ(topo.rack_of(plan.encoder), s.core_rack);
    EXPECT_EQ(plan.cross_rack_downloads, 0);

    // (3) matching validity.
    std::set<NodeId> nodes;
    std::vector<int> rack_load(static_cast<size_t>(racks), 0);
    for (int i = 0; i < k; ++i) {
      const NodeId kept = plan.kept[static_cast<size_t>(i)];
      const auto& reps = s.replicas[static_cast<size_t>(i)];
      EXPECT_TRUE(std::find(reps.begin(), reps.end(), kept) != reps.end());
      EXPECT_TRUE(nodes.insert(kept).second) << "node reused";
      ++rack_load[static_cast<size_t>(topo.rack_of(kept))];
    }
    for (const NodeId p : plan.parity) {
      EXPECT_TRUE(nodes.insert(p).second) << "parity node reused";
      ++rack_load[static_cast<size_t>(topo.rack_of(p))];
    }
    for (const int load : rack_load) EXPECT_LE(load, c);

    // (4) fault tolerance without relocation.
    StripeLayout layout;
    layout.nodes = plan.kept;
    layout.nodes.insert(layout.nodes.end(), plan.parity.begin(),
                        plan.parity.end());
    const auto report = monitor.analyze(layout);
    EXPECT_GE(report.tolerable_rack_failures, m / c);
    EXPECT_TRUE(monitor.plan_relocations(layout, c).empty());

    // Deletions cover exactly the replicas not kept.
    EXPECT_EQ(plan.deletions.size(),
              static_cast<size_t>(k) * static_cast<size_t>(r - 1));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EarPropertySweep,
    ::testing::Combine(::testing::Values(8, 14, 20),   // racks
                       ::testing::Values(4, 6, 10),    // k
                       ::testing::Values(2, 4),        // m = n - k
                       ::testing::Values(2, 3),        // replication
                       ::testing::Values(1, 2)));      // c

class RrPropertySweep : public ::testing::TestWithParam<Params> {};

TEST_P(RrPropertySweep, CrossRackDownloadsTrackTheFormula) {
  const auto [racks, k, m, r, c] = GetParam();
  (void)c;
  const Topology topo(racks, 8);
  PlacementConfig cfg;
  cfg.code = CodeParams{k + m, k};
  cfg.replication = r;
  RandomReplication rr(topo, cfg,
                       static_cast<uint64_t>(racks * 77 + k));

  BlockId next = 0;
  double cross = 0;
  int stripes = 0;
  while (stripes < 150) {
    rr.place_block(next++, std::nullopt);
    const auto sealed = rr.sealed_stripes();
    if (static_cast<int>(sealed.size()) > stripes) {
      cross += rr.plan_encoding(sealed.back()).cross_rack_downloads;
      ++stripes;
    }
  }
  // §II-B: expected cross-rack downloads = k (1 - racks_with_replica / R).
  // With r replicas in min(r, 2) racks the per-block hit rate is ~2/R for
  // r >= 3 and ~2/R for r = 2 as well (two racks hold replicas).
  const double expected = k * (1.0 - 2.0 / racks);
  EXPECT_NEAR(cross / stripes, expected, expected * 0.2 + 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RrPropertySweep,
    ::testing::Combine(::testing::Values(10, 20), ::testing::Values(6, 10),
                       ::testing::Values(4), ::testing::Values(2, 3),
                       ::testing::Values(1)));

}  // namespace
}  // namespace ear
