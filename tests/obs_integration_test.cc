// End-to-end checks that the instrumented components actually emit the
// spans, counter series and metrics the observability subsystem promises —
// on both time bases: real threads (MiniCfs / RaidNode / ThrottledTransport)
// and virtual sim time (Network flows, ClusterSim encode phases, MapReduce).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cfs/minicfs.h"
#include "cfs/raidnode.h"
#include "common/rng.h"
#include "mapred/mapreduce.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "sim/cluster.h"
#include "sim/network.h"

namespace ear {
namespace {

void enable_all(Seconds link_sample_period = 0.005) {
  obs::Config cfg;
  cfg.metrics = true;
  cfg.trace = true;
  cfg.link_sample_period = link_sample_period;
  obs::init(cfg);
  obs::trace_reset();
  obs::Registry::instance().reset_values();
}

// A 6-rack single-DataNode testbed with fast emulated links, pre-loaded with
// `stripes` sealed stripes (the testbed_util recipe, shrunk for tests).
struct SmallTestbed {
  std::unique_ptr<cfs::MiniCfs> cfs;
  std::vector<StripeId> stripes;
};

SmallTestbed make_small_testbed(int stripes) {
  cfs::CfsConfig cfg;
  cfg.racks = 6;
  cfg.nodes_per_rack = 1;
  cfg.placement.code = CodeParams{6, 4};
  cfg.placement.replication = 2;
  cfg.placement.c = 1;
  cfg.use_ear = true;
  cfg.block_size = 64_KB;
  cfg.seed = 11;

  const Topology topo(cfg.racks, cfg.nodes_per_rack);
  auto cfs = std::make_unique<cfs::MiniCfs>(
      cfg, std::make_unique<cfs::InstantTransport>(topo));

  Rng rng(99);
  std::vector<uint8_t> payload(static_cast<size_t>(cfg.block_size));
  for (auto& b : payload) b = static_cast<uint8_t>(rng.uniform(256));
  NodeId writer = 0;
  while (static_cast<int>(cfs->sealed_stripes().size()) < stripes) {
    cfs->write_block(payload, writer);
    writer = (writer + 1) % topo.node_count();
  }
  auto sealed = cfs->sealed_stripes();
  sealed.resize(static_cast<size_t>(stripes));

  cfs::ThrottleConfig throttle;
  throttle.node_bw = 400e6;
  throttle.rack_uplink_bw = 400e6;
  throttle.disk_bw = 500e6;
  throttle.chunk_size = 16_KB;
  cfs->set_transport(
      std::make_unique<cfs::ThrottledTransport>(topo, throttle));
  return SmallTestbed{std::move(cfs), std::move(sealed)};
}

TEST(ObsIntegration, TestbedEncodeEmitsExpectedSpans) {
  enable_all();
  {
    SmallTestbed tb = make_small_testbed(/*stripes=*/3);
    cfs::RaidNode raid(*tb.cfs, /*map_slots=*/2);
    raid.encode_stripes(tb.stripes);
    for (const StripeId s : tb.stripes) {
      EXPECT_TRUE(tb.cfs->is_encoded(s));
    }
  }  // destroying the transport stops the link sampler (final sample)

  for (const char* name :
       {"raid.encode_job", "raid.map_task", "cfs.encode_stripe",
        "datapath.fetch", "datapath.compute", "datapath.upload",
        "cfs.write_block"}) {
    EXPECT_TRUE(obs::trace_has_event(name)) << name;
  }
  // The link sampler emitted per-link counter series (at the latest, the
  // final synchronous sample on sampler shutdown).
  bool saw_link_counter = false;
  for (const obs::TraceEvent& ev : obs::trace_snapshot()) {
    if (ev.ph == 'C' && std::string(ev.name).rfind("link/", 0) == 0) {
      saw_link_counter = true;
      break;
    }
  }
  EXPECT_TRUE(saw_link_counter);

  EXPECT_EQ(obs::Registry::instance().counter("cfs.stripes_encoded").value(),
            3);
  EXPECT_GT(obs::Registry::instance().counter("testbed.net.transfers").value(),
            0);
  EXPECT_EQ(
      obs::Registry::instance()
          .histogram("cfs.encode_stripe_seconds", {})
          .count(),
      3);
  EXPECT_EQ(obs::trace_dropped_events(), 0);

  obs::trace_reset();
  obs::shutdown();
}

TEST(ObsIntegration, DegradedReadAndRepairEmitSpans) {
  enable_all(/*link_sample_period=*/0);  // no sampler: exercises that path
  {
    SmallTestbed tb = make_small_testbed(/*stripes=*/1);
    cfs::RaidNode raid(*tb.cfs, 1);
    raid.encode_stripes(tb.stripes);

    const cfs::StripeMeta meta = tb.cfs->stripe_meta(tb.stripes[0]);
    const BlockId victim = meta.data_blocks[0];
    const NodeId holder = tb.cfs->block_locations(victim)[0];
    tb.cfs->kill_node(holder);

    const NodeId reader = (holder + 1) % tb.cfs->topology().node_count();
    EXPECT_EQ(tb.cfs->read_block(victim, reader).size(),
              static_cast<size_t>(tb.cfs->config().block_size));
    tb.cfs->repair_block(victim, reader);
  }

  EXPECT_TRUE(obs::trace_has_event("cfs.degraded_read"));
  EXPECT_TRUE(obs::trace_has_event("cfs.repair_block"));
  // >= 1: repair_block reconstructs through the same degraded-read path.
  EXPECT_GE(obs::Registry::instance().counter("cfs.degraded_reads").value(),
            1);
  EXPECT_EQ(obs::Registry::instance().counter("cfs.blocks_repaired").value(),
            1);

  obs::trace_reset();
  obs::shutdown();
}

TEST(ObsIntegration, SimNetworkEmitsFlowSpansMaxMin) {
  enable_all();
  const Topology topo(2, 2);
  sim::Engine engine;
  sim::NetConfig net;
  net.disk_bw = 100e6;
  sim::Network network(engine, topo, net);
  network.start_transfer(0, 2, 1_MB, [] {});  // cross-rack
  network.start_transfer(0, 1, 1_MB, [] {});  // intra-rack
  network.start_disk_read(3, 1_MB, [] {});
  engine.run();

  EXPECT_TRUE(obs::trace_has_event("sim.flow.cross"));
  EXPECT_TRUE(obs::trace_has_event("sim.flow.intra"));
  EXPECT_TRUE(obs::trace_has_event("sim.disk_read"));
  EXPECT_TRUE(obs::trace_has_event("sim.active_flows"));
  EXPECT_GT(
      obs::Registry::instance().counter("sim.events_executed").value(), 0);

  // Flow spans live on pid kSimPid with virtual-time stamps.
  bool saw_sim_span = false;
  for (const obs::TraceEvent& ev : obs::trace_snapshot()) {
    if (ev.ph == 'X' && std::string(ev.name) == "sim.flow.cross") {
      saw_sim_span = true;
      EXPECT_EQ(ev.pid, obs::kSimPid);
      EXPECT_GT(ev.dur_us, 0);
    }
  }
  EXPECT_TRUE(saw_sim_span);

  obs::trace_reset();
  obs::shutdown();
}

TEST(ObsIntegration, SimNetworkEmitsFlowSpansFifo) {
  enable_all();
  const Topology topo(2, 2);
  sim::Engine engine;
  sim::NetConfig net;
  net.sharing = sim::SharingModel::kFifoReservation;
  sim::Network network(engine, topo, net);
  bool done = false;
  network.start_transfer(0, 2, 1_MB, [&done] { done = true; });
  engine.run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(obs::trace_has_event("sim.flow.cross"));
  obs::trace_reset();
  obs::shutdown();
}

TEST(ObsIntegration, ClusterSimEmitsEncodePhaseSpans) {
  enable_all();
  sim::SimConfig cfg;
  cfg.racks = 6;
  cfg.nodes_per_rack = 3;
  cfg.placement.code = CodeParams{6, 4};
  cfg.block_size = 4_MB;
  cfg.encode_processes = 2;
  cfg.stripes_per_process = 3;
  cfg.encode_start = 5.0;
  cfg.seed = 9;
  const sim::SimResult result = sim::ClusterSim(cfg).run();
  EXPECT_EQ(result.stripes_encoded, 6);

  for (const char* name :
       {"sim.encode.download", "sim.encode.compute", "sim.encode.upload"}) {
    EXPECT_TRUE(obs::trace_has_event(name)) << name;
  }
  // Encode-process tracks were named.
  bool named = false;
  for (const auto& entry : obs::sim_track_names()) {
    if (entry.second == "encode-proc-0") named = true;
  }
  EXPECT_TRUE(named);

  obs::trace_reset();
  obs::shutdown();
}

TEST(ObsIntegration, MapReduceEmitsMapAndJobSpans) {
  enable_all();
  const Topology topo(4, 1);
  sim::Engine engine;
  sim::NetConfig net;
  sim::Network network(engine, topo, net);
  PlacementConfig pc;
  pc.code = CodeParams{6, 4};
  pc.replication = 2;
  auto policy = make_random_replication(topo, pc, 5);
  mapred::MapReduceConfig mr_cfg;
  mr_cfg.block_size = 64_KB;
  mapred::MapReduceCluster mr(engine, network, *policy, mr_cfg);

  mapred::JobSpec job;
  job.id = 1;
  job.submit_time = 0.0;
  job.input_size = 3 * mr_cfg.block_size;
  job.shuffle_size = mr_cfg.block_size;
  job.output_size = mr_cfg.block_size;
  mr.submit(job);
  engine.run();

  ASSERT_EQ(mr.results().size(), 1u);
  EXPECT_TRUE(obs::trace_has_event("mr.map"));
  EXPECT_TRUE(obs::trace_has_event("mr.job"));

  obs::trace_reset();
  obs::shutdown();
}

TEST(ObsIntegration, DisabledObsRecordsNothing) {
  obs::shutdown();
  obs::trace_reset();
  obs::Registry::instance().reset_values();

  SmallTestbed tb = make_small_testbed(/*stripes=*/1);
  cfs::RaidNode raid(*tb.cfs, 1);
  raid.encode_stripes(tb.stripes);

  EXPECT_EQ(obs::trace_event_count(), 0u);
  EXPECT_EQ(obs::Registry::instance().counter("cfs.stripes_encoded").value(),
            0);
}

}  // namespace
}  // namespace ear
