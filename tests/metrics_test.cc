#include "sim/metrics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace ear::sim {
namespace {

SimResult tiny_run() {
  SimConfig cfg;
  cfg.racks = 6;
  cfg.nodes_per_rack = 3;
  cfg.placement.code = CodeParams{6, 4};
  cfg.block_size = 4_MB;
  cfg.encode_processes = 2;
  cfg.stripes_per_process = 3;
  cfg.encode_start = 5.0;
  cfg.seed = 9;
  return ClusterSim(cfg).run();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Metrics, StripeCompletionCsv) {
  const SimResult result = tiny_run();
  const std::string path = ::testing::TempDir() + "/stripes.csv";
  ASSERT_TRUE(write_stripe_completion_csv(result, path));
  const std::string content = slurp(path);
  EXPECT_NE(content.find("time_s,stripes_encoded"), std::string::npos);
  // 6 stripes -> header + 6 rows.
  EXPECT_EQ(std::count(content.begin(), content.end(), '\n'), 7);
  std::remove(path.c_str());
}

TEST(Metrics, ResponseTimesCsv) {
  const SimResult result = tiny_run();
  const std::string path = ::testing::TempDir() + "/responses.csv";
  ASSERT_TRUE(write_response_times_csv(result, path));
  const std::string content = slurp(path);
  EXPECT_NE(content.find("phase,response_s"), std::string::npos);
  const auto rows = static_cast<size_t>(
      std::count(content.begin(), content.end(), '\n'));
  EXPECT_EQ(rows, 1 + result.write_response_before.count() +
                      result.write_response_during.count());
  std::remove(path.c_str());
}

TEST(Metrics, WriteFailsOnBadPath) {
  const SimResult result = tiny_run();
  EXPECT_FALSE(write_stripe_completion_csv(result, "/no/such/dir/x.csv"));
  EXPECT_FALSE(write_response_times_csv(result, "/no/such/dir/x.csv"));
}

TEST(Metrics, SummaryContainsKeyFields) {
  const SimResult result = tiny_run();
  const std::string s = summarize(result);
  EXPECT_NE(s.find("stripes=6"), std::string::npos);
  EXPECT_NE(s.find("encode_mbps="), std::string::npos);
  EXPECT_NE(s.find("xdl="), std::string::npos);
}

}  // namespace
}  // namespace ear::sim
