#include <gtest/gtest.h>

#include "analysis/availability.h"
#include "analysis/balance.h"

namespace ear::analysis {
namespace {

TEST(Availability, Equation1MatchesPaperAnchors) {
  // Figure 3 anchor quoted in §III-A: f ~= 0.97 for k = 12, R = 16.
  EXPECT_NEAR(preliminary_violation_probability(16, 12), 0.97, 0.015);
  // Small cases computed by hand:
  //  R = 3, k = 2: secondaries land in one of 2 racks; span >= 1 always ->
  //  never violates.
  EXPECT_DOUBLE_EQ(preliminary_violation_probability(3, 2), 0.0);
  //  R = 3, k = 3: 2 non-core racks, 3 blocks; distinct <= 2 always, need
  //  >= 2: violation iff all three in the same rack: 2/8.
  EXPECT_NEAR(preliminary_violation_probability(3, 3), 0.25, 1e-12);
}

TEST(Availability, Equation1MonotoneDecreasingInRacks) {
  for (const int k : {6, 8, 10, 12}) {
    double prev = 1.1;
    for (int r = k + 1; r <= 60; r += 3) {
      const double f = preliminary_violation_probability(r, k);
      EXPECT_LE(f, prev + 1e-12) << "k=" << k << " R=" << r;
      EXPECT_GE(f, 0.0);
      EXPECT_LE(f, 1.0);
      prev = f;
    }
  }
}

TEST(Availability, Equation1IncreasesWithK) {
  const int r = 30;
  EXPECT_LT(preliminary_violation_probability(r, 6),
            preliminary_violation_probability(r, 8));
  EXPECT_LT(preliminary_violation_probability(r, 8),
            preliminary_violation_probability(r, 10));
  EXPECT_LT(preliminary_violation_probability(r, 10),
            preliminary_violation_probability(r, 12));
}

TEST(Availability, MonteCarloAgreesWithClosedForm) {
  for (const int r : {10, 16, 24, 40}) {
    for (const int k : {6, 10, 12}) {
      const double closed = preliminary_violation_probability(r, k);
      const double mc =
          preliminary_violation_probability_mc(r, k, 200000, 7);
      EXPECT_NEAR(mc, closed, 0.01) << "R=" << r << " k=" << k;
    }
  }
}

TEST(Availability, Theorem1BoundMatchesPaperRemark) {
  // §III-C remark: R = 20, c = 1 -> E_k <= 1.9 for k = 10.
  EXPECT_NEAR(theorem1_iteration_bound(20, 10, 1), 19.0 / 10.0, 1e-12);
  // First block always succeeds immediately.
  EXPECT_DOUBLE_EQ(theorem1_iteration_bound(20, 1, 1), 1.0);
  // Larger c shrinks the bound (fewer racks fill up).
  EXPECT_LT(theorem1_iteration_bound(20, 10, 2),
            theorem1_iteration_bound(20, 10, 1));
}

TEST(Availability, CrossRackRepairTraffic) {
  EXPECT_EQ(cross_rack_repair_blocks(10, 1), 9);   // paper: k-1 for c=1
  EXPECT_EQ(cross_rack_repair_blocks(10, 3), 7);
  EXPECT_EQ(cross_rack_repair_blocks(3, 3), 0);
  EXPECT_EQ(cross_rack_repair_blocks(3, 5), 0);
}

TEST(Balance, StorageSharesAreNearUniformForBothPolicies) {
  // Figure 14: with R = 20 racks the shares sit between ~4.9% and ~5.1%.
  for (const bool use_ear : {false, true}) {
    BalanceConfig cfg;
    cfg.use_ear = use_ear;
    const auto shares = storage_share_by_rack(cfg, /*blocks=*/10000,
                                              /*runs=*/10);
    ASSERT_EQ(shares.size(), 20u);
    double total = 0;
    for (const double s : shares) total += s;
    EXPECT_NEAR(total, 100.0, 1e-9);
    EXPECT_LT(shares.front(), 5.4) << (use_ear ? "EAR" : "RR");
    EXPECT_GT(shares.back(), 4.6) << (use_ear ? "EAR" : "RR");
    // Ranked shares must be non-increasing.
    for (size_t i = 1; i < shares.size(); ++i) {
      EXPECT_LE(shares[i], shares[i - 1] + 1e-12);
    }
  }
}

TEST(Balance, EarAndRrStorageSharesAreClose) {
  BalanceConfig rr_cfg;
  rr_cfg.use_ear = false;
  BalanceConfig ear_cfg;
  ear_cfg.use_ear = true;
  const auto rr = storage_share_by_rack(rr_cfg, 2000, 20);
  const auto ear = storage_share_by_rack(ear_cfg, 2000, 20);
  for (size_t i = 0; i < rr.size(); ++i) {
    EXPECT_NEAR(rr[i], ear[i], 0.25) << "rack rank " << i;
  }
}

TEST(Balance, HotnessDecreasesWithFileSize) {
  BalanceConfig cfg;
  const double h_small = read_hotness_index(cfg, 10, 30);
  const double h_large = read_hotness_index(cfg, 1000, 10);
  EXPECT_GT(h_small, h_large);
  // A 1000-block file over 20 racks: H must approach 5%.
  EXPECT_LT(h_large, 7.0);
  EXPECT_GE(h_large, 5.0);
}

TEST(Balance, EarAndRrHotnessAreClose) {
  for (const int file_blocks : {10, 100, 1000}) {
    BalanceConfig rr_cfg;
    rr_cfg.use_ear = false;
    BalanceConfig ear_cfg;
    ear_cfg.use_ear = true;
    const double rr = read_hotness_index(rr_cfg, file_blocks, 20);
    const double ear = read_hotness_index(ear_cfg, file_blocks, 20);
    EXPECT_NEAR(rr, ear, rr * 0.15) << "file=" << file_blocks;
  }
}

}  // namespace
}  // namespace ear::analysis
