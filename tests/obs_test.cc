#include <gtest/gtest.h>

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace ear::obs {
namespace {

// Minimal recursive-descent JSON validator (RFC 8259 grammar, no semantic
// interpretation), so the Chrome-trace export can be parsed back without an
// external JSON dependency.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool eof() const { return pos_ >= s_.size(); }
  char peek() const { return s_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }

  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (eof() || peek() != *p) return false;
    }
    return true;
  }

  bool string() {
    if (eof() || peek() != '"') return false;
    ++pos_;
    while (!eof() && peek() != '"') {
      if (static_cast<unsigned char>(peek()) < 0x20) return false;
      if (peek() == '\\') {
        ++pos_;
        if (eof()) return false;
        const char e = peek();
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (eof() || std::isxdigit(static_cast<unsigned char>(peek())) == 0)
              return false;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos_;
    }
    if (eof()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool digits() {
    if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0)
      return false;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    return true;
  }

  bool number() {
    if (!eof() && peek() == '-') ++pos_;
    if (!digits()) return false;
    if (!eof() && peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  bool members(char close, bool with_keys) {
    skip_ws();
    if (!eof() && peek() == close) {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (with_keys) {
        if (!string()) return false;
        skip_ws();
        if (eof() || peek() != ':') return false;
        ++pos_;
        skip_ws();
      }
      if (!value()) return false;
      skip_ws();
      if (eof()) return false;
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == close) {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool value() {
    if (eof()) return false;
    switch (peek()) {
      case '{':
        ++pos_;
        return members('}', /*with_keys=*/true);
      case '[':
        ++pos_;
        return members(']', /*with_keys=*/false);
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void enable(bool metrics, bool trace) {
  Config cfg;
  cfg.metrics = metrics;
  cfg.trace = trace;
  init(cfg);
}

TEST(ObsMetrics, ConcurrentCounterSumsExactly) {
  enable(/*metrics=*/true, /*trace=*/false);
  Counter& c = Registry::instance().counter("test.concurrent");
  c.reset();
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kIters; ++i) c.add();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), int64_t{kThreads} * kIters);
  shutdown();
}

TEST(ObsMetrics, HistogramBucketBoundaries) {
  enable(true, false);
  Histogram& h =
      Registry::instance().histogram("test.hist_bounds", {1.0, 2.0, 5.0});
  h.reset();
  // Bucket semantics: bucket i counts v <= bounds[i] (and > bounds[i-1]).
  h.record(0.5);  // bucket 0
  h.record(1.0);  // bucket 0 (le boundary)
  h.record(1.5);  // bucket 1
  h.record(2.0);  // bucket 1
  h.record(5.0);  // bucket 2
  h.record(7.0);  // overflow
  EXPECT_EQ(h.bucket_count(0), 2);
  EXPECT_EQ(h.bucket_count(1), 2);
  EXPECT_EQ(h.bucket_count(2), 1);
  EXPECT_EQ(h.bucket_count(3), 1);
  EXPECT_EQ(h.count(), 6);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 5.0 + 7.0);
  shutdown();
}

TEST(ObsMetrics, SameNameReturnsSameInstrument) {
  enable(true, false);
  Counter& a = Registry::instance().counter("test.identity");
  Counter& b = Registry::instance().counter("test.identity");
  EXPECT_EQ(&a, &b);
  // Histogram bounds are fixed by the first registration.
  Histogram& h1 = Registry::instance().histogram("test.hist_id", {1.0, 2.0});
  Histogram& h2 = Registry::instance().histogram("test.hist_id", {9.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
  shutdown();
}

TEST(ObsMetrics, GaugeSetMaxKeepsHighWaterMark) {
  enable(true, false);
  Gauge& g = Registry::instance().gauge("test.gauge_max");
  g.reset();
  g.set_max(2.0);
  g.set_max(5.0);
  g.set_max(3.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.set(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
  shutdown();
}

TEST(ObsMetrics, DisabledMutatorsAreNoOps) {
  enable(true, false);
  Counter& c = Registry::instance().counter("test.disabled");
  Gauge& g = Registry::instance().gauge("test.disabled_gauge");
  Histogram& h = Registry::instance().histogram("test.disabled_hist", {1.0});
  c.reset();
  g.reset();
  h.reset();
  shutdown();
  c.add(42);
  g.set(3.0);
  h.record(0.5);
  EXPECT_EQ(c.value(), 0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0);
}

TEST(ObsMetrics, DumpsContainRegisteredInstruments) {
  enable(true, false);
  Counter& c = Registry::instance().counter("test.dump_counter");
  c.reset();
  c.add(7);
  const std::string text = Registry::instance().to_text();
  EXPECT_NE(text.find("counter test.dump_counter 7"), std::string::npos);
  const std::string json = Registry::instance().to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"test.dump_counter\":7"), std::string::npos);
  shutdown();
}

TEST(ObsTrace, ChromeTraceJsonParsesBack) {
  enable(true, true);
  trace_reset();
  set_current_thread_name("obs-test-main");
  set_sim_track_name(3, "track \"three\"\\");
  {
    Span span("span.with.args", "test");
    span.arg("bytes", 123);
    span.arg("neg", -45);
  }
  trace_instant("quote\"and\\slash", "test", {{"k", 1}});
  trace_counter("test.counter", {{"a", 1}, {"b", 2}});
  sim_complete("sim.span", "test", 1.5, 2.5, 3, {{"x", 9}});
  sim_instant("sim.mark", "test", 2.0, 3);
  ASSERT_GE(trace_event_count(), 5u);

  const std::string json = chrome_trace_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("span.with.args"), std::string::npos);
  EXPECT_NE(json.find("quote\\\"and\\\\slash"), std::string::npos);
  EXPECT_NE(json.find("testbed (real time)"), std::string::npos);
  EXPECT_NE(json.find("simulator (virtual time)"), std::string::npos);
  // sim.span: 1.5s..2.5s -> ts 1500000 us, dur 1000000 us on pid kSimPid.
  EXPECT_NE(json.find("\"ts\":1500000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1000000"), std::string::npos);

  const std::string path = ::testing::TempDir() + "/obs_trace.json";
  ASSERT_TRUE(write_chrome_trace(path));
  EXPECT_EQ(slurp(path), json);
  std::remove(path.c_str());
  trace_reset();
  shutdown();
}

TEST(ObsTrace, SpanRecordsArgsAndDuration) {
  enable(false, true);
  trace_reset();
  {
    Span span("arg.span", "test");
    span.arg("alpha", 11);
    span.arg("beta", 22);
  }
  const std::vector<TraceEvent> events = trace_snapshot();
  ASSERT_EQ(events.size(), 1u);
  const TraceEvent& ev = events[0];
  EXPECT_STREQ(ev.name, "arg.span");
  EXPECT_EQ(ev.ph, 'X');
  EXPECT_EQ(ev.pid, kRealPid);
  EXPECT_GE(ev.dur_us, 0);
  ASSERT_EQ(ev.arg_count, 2);
  EXPECT_STREQ(ev.arg_keys[0], "alpha");
  EXPECT_EQ(ev.arg_values[0], 11);
  EXPECT_STREQ(ev.arg_keys[1], "beta");
  EXPECT_EQ(ev.arg_values[1], 22);
  trace_reset();
  shutdown();
}

TEST(ObsTrace, DisabledTracingRecordsNothing) {
  enable(false, false);
  trace_reset();
  {
    Span span("dead.span", "test");
    span.arg("x", 1);
  }
  trace_instant("dead.instant", "test");
  sim_complete("dead.sim", "test", 0.0, 1.0, 0);
  EXPECT_EQ(trace_event_count(), 0u);
  EXPECT_FALSE(trace_has_event("dead.span"));
}

TEST(ObsTrace, WritersFailWithErrnoOnBadPath) {
  enable(true, true);
  errno = 0;
  EXPECT_FALSE(write_chrome_trace("/no/such/dir/trace.json"));
  EXPECT_EQ(errno, ENOENT);
  errno = 0;
  EXPECT_FALSE(write_metrics_text("/no/such/dir/metrics.txt"));
  EXPECT_EQ(errno, ENOENT);
  EXPECT_FALSE(write_metrics_json("/no/such/dir/metrics.json"));
  trace_reset();
  shutdown();
}

TEST(ObsTrace, MetricsWritersRoundTrip) {
  enable(true, false);
  Counter& c = Registry::instance().counter("test.roundtrip");
  c.reset();
  c.add(3);
  const std::string text_path = ::testing::TempDir() + "/obs_metrics.txt";
  const std::string json_path = ::testing::TempDir() + "/obs_metrics.json";
  ASSERT_TRUE(write_metrics_text(text_path));
  ASSERT_TRUE(write_metrics_json(json_path));
  EXPECT_NE(slurp(text_path).find("counter test.roundtrip 3"),
            std::string::npos);
  const std::string json = slurp(json_path);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  std::remove(text_path.c_str());
  std::remove(json_path.c_str());
  shutdown();
}

TEST(ObsTrace, ResetValuesKeepsReferencesValid) {
  enable(true, false);
  Counter& c = Registry::instance().counter("test.reset_keep");
  c.add(5);
  Registry::instance().reset_values();
  EXPECT_EQ(c.value(), 0);
  c.add(2);  // reference still usable after reset
  EXPECT_EQ(c.value(), 2);
  shutdown();
}

}  // namespace
}  // namespace ear::obs
