// Tests for the real-time workload drivers (kept short: total sleep time in
// this file is well under a second).
#include "cfs/workload.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

namespace ear::cfs {
namespace {

CfsConfig tiny_config() {
  CfsConfig cfg;
  cfg.racks = 6;
  cfg.nodes_per_rack = 2;
  cfg.placement.code = CodeParams{6, 4};
  cfg.placement.replication = 2;
  cfg.use_ear = true;
  cfg.block_size = 16_KB;
  cfg.seed = 41;
  return cfg;
}

TEST(WriteWorkload, GeneratesAndRecordsWrites) {
  const auto cfg = tiny_config();
  const Topology topo(cfg.racks, cfg.nodes_per_rack);
  MiniCfs cfs(cfg, std::make_unique<InstantTransport>(topo));

  WriteWorkload writes(cfs, /*rate=*/200.0, /*seed=*/1);
  writes.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  writes.stop();

  EXPECT_GT(writes.completed(), 3);
  const auto samples = writes.samples();
  EXPECT_EQ(static_cast<int>(samples.size()), writes.completed());
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].first, samples[i - 1].first) << "sorted by issue";
  }
  const Summary summary = writes.response_summary();
  EXPECT_EQ(summary.count(), samples.size());
  // Instant transport: responses are just bookkeeping overhead.
  EXPECT_LT(summary.mean(), 0.05);
}

TEST(WriteWorkload, StopIsIdempotentAndPromptly) {
  const auto cfg = tiny_config();
  const Topology topo(cfg.racks, cfg.nodes_per_rack);
  MiniCfs cfs(cfg, std::make_unique<InstantTransport>(topo));
  WriteWorkload writes(cfs, 50.0, 2);
  writes.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const auto t0 = std::chrono::steady_clock::now();
  writes.stop();
  const double stop_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(stop_s, 0.5);
  const int count = writes.completed();
  writes.stop();  // second stop: no-op
  EXPECT_EQ(writes.completed(), count);
}

TEST(BackgroundTraffic, InjectsBytesWhileRunning) {
  const auto cfg = tiny_config();
  const Topology topo(cfg.racks, cfg.nodes_per_rack);
  MiniCfs cfs(cfg, std::make_unique<InstantTransport>(topo));

  BackgroundTraffic traffic(cfs, {{0, 2}, {4, 6}},
                            /*bytes_per_second=*/10e6, /*burst=*/16_KB);
  traffic.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  traffic.stop();

  EXPECT_GT(cfs.transport().cross_rack_bytes(), 0);
}

TEST(BackgroundTraffic, StopHaltsInjection) {
  const auto cfg = tiny_config();
  const Topology topo(cfg.racks, cfg.nodes_per_rack);
  MiniCfs cfs(cfg, std::make_unique<InstantTransport>(topo));
  BackgroundTraffic traffic(cfs, {{0, 2}}, 10e6, 16_KB);
  traffic.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  traffic.stop();
  const int64_t after_stop = cfs.transport().cross_rack_bytes();
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_EQ(cfs.transport().cross_rack_bytes(), after_stop);
}

}  // namespace
}  // namespace ear::cfs
