#include "cfs/filesystem.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"

namespace ear::cfs {
namespace {

CfsConfig fs_config(bool use_ear = true) {
  CfsConfig cfg;
  cfg.racks = 10;
  cfg.nodes_per_rack = 4;
  cfg.placement.code = CodeParams{8, 6};
  cfg.placement.replication = 3;
  cfg.use_ear = use_ear;
  cfg.block_size = 32_KB;
  cfg.seed = 31;
  return cfg;
}

std::unique_ptr<MiniCfs> make_cfs(const CfsConfig& cfg) {
  const Topology topo(cfg.racks, cfg.nodes_per_rack);
  return std::make_unique<MiniCfs>(cfg,
                                   std::make_unique<InstantTransport>(topo));
}

std::vector<uint8_t> random_bytes(size_t size, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> out(size);
  for (auto& b : out) b = static_cast<uint8_t>(rng.uniform(256));
  return out;
}

TEST(FileSystem, CreateListRemove) {
  const auto cfg = fs_config();
  auto cfs = make_cfs(cfg);
  FileSystem fs(*cfs);
  fs.create("/a");
  fs.create("/b");
  EXPECT_TRUE(fs.exists("/a"));
  EXPECT_EQ(fs.list().size(), 2u);
  EXPECT_THROW(fs.create("/a"), std::runtime_error);
  fs.remove("/a");
  EXPECT_FALSE(fs.exists("/a"));
  EXPECT_THROW(fs.remove("/a"), std::runtime_error);
}

TEST(FileSystem, RoundTripExactMultipleOfBlockSize) {
  const auto cfg = fs_config();
  auto cfs = make_cfs(cfg);
  FileSystem fs(*cfs);
  fs.create("/data");
  const auto payload = random_bytes(static_cast<size_t>(cfg.block_size) * 3, 1);
  const auto written = fs.append("/data", payload);
  EXPECT_EQ(written.size(), 3u);
  EXPECT_EQ(fs.size("/data"), cfg.block_size * 3);
  EXPECT_EQ(fs.read("/data", 0), payload);
}

TEST(FileSystem, RoundTripWithPartialTailBlock) {
  const auto cfg = fs_config();
  auto cfs = make_cfs(cfg);
  FileSystem fs(*cfs);
  fs.create("/tail");
  const auto payload =
      random_bytes(static_cast<size_t>(cfg.block_size) * 2 + 1234, 2);
  fs.append("/tail", payload);
  EXPECT_EQ(fs.size("/tail"), static_cast<Bytes>(payload.size()));
  EXPECT_EQ(fs.read("/tail", 5), payload);
}

TEST(FileSystem, MultipleAppendsConcatenate) {
  const auto cfg = fs_config();
  auto cfs = make_cfs(cfg);
  FileSystem fs(*cfs);
  fs.create("/log");
  const auto part1 = random_bytes(1000, 3);
  const auto part2 = random_bytes(static_cast<size_t>(cfg.block_size), 4);
  fs.append("/log", part1);
  fs.append("/log", part2);
  auto expected = part1;
  expected.insert(expected.end(), part2.begin(), part2.end());
  EXPECT_EQ(fs.read("/log", 0), expected);
  EXPECT_EQ(fs.blocks("/log").size(), 2u);
}

TEST(FileSystem, ReadSurvivesEncodingAndFailure) {
  const auto cfg = fs_config();
  auto cfs = make_cfs(cfg);
  FileSystem fs(*cfs);
  fs.create("/big");
  // Enough data that at least one stripe seals.
  const auto payload =
      random_bytes(static_cast<size_t>(cfg.block_size) * 12, 5);
  fs.append("/big", payload);
  while (!cfs->sealed_stripes().empty() &&
         !cfs->is_encoded(cfs->sealed_stripes()[0])) {
    cfs->encode_stripe(cfs->sealed_stripes()[0]);
    break;
  }
  // Kill the node holding the first encoded block's only copy.
  for (const BlockId b : fs.blocks("/big")) {
    if (cfs->is_block_encoded(b)) {
      cfs->kill_node(cfs->block_locations(b)[0]);
      break;
    }
  }
  NodeId reader = kInvalidNode;
  for (NodeId n = 0; n < cfs->topology().node_count(); ++n) {
    if (cfs->node_alive(n)) {
      reader = n;
      break;
    }
  }
  EXPECT_EQ(fs.read("/big", reader), payload);
}

TEST(FileSystem, EmptyAppendWritesNothing) {
  const auto cfg = fs_config();
  auto cfs = make_cfs(cfg);
  FileSystem fs(*cfs);
  fs.create("/empty");
  EXPECT_TRUE(fs.append("/empty", {}).empty());
  EXPECT_EQ(fs.size("/empty"), 0);
  EXPECT_TRUE(fs.read("/empty", 0).empty());
}

TEST(FileSystem, UnknownFileThrows) {
  const auto cfg = fs_config();
  auto cfs = make_cfs(cfg);
  FileSystem fs(*cfs);
  EXPECT_THROW(fs.read("/nope", 0), std::runtime_error);
  EXPECT_THROW(fs.size("/nope"), std::runtime_error);
  EXPECT_THROW(fs.blocks("/nope"), std::runtime_error);
  std::vector<uint8_t> data(10);
  EXPECT_THROW(fs.append("/nope", data), std::runtime_error);
}

// ------------------------------------------------------------- recovery

TEST(Recovery, ReReplicatesAfterNodeFailure) {
  const auto cfg = fs_config(false);
  auto cfs = make_cfs(cfg);
  Rng rng(6);
  std::vector<uint8_t> block(static_cast<size_t>(cfg.block_size), 0x5A);
  const BlockId id = cfs->write_block(block);
  const auto locs = cfs->block_locations(id);
  cfs->kill_node(locs[0]);

  const auto report = cfs->restore_redundancy();
  EXPECT_GE(report.re_replicated, 1);
  EXPECT_EQ(report.unrecoverable, 0);

  const auto fresh = cfs->block_locations(id);
  EXPECT_EQ(fresh.size(), 3u);
  for (const NodeId n : fresh) EXPECT_TRUE(cfs->node_alive(n));
}

TEST(Recovery, RepairsEncodedBlocksAfterRackFailure) {
  const auto cfg = fs_config();
  auto cfs = make_cfs(cfg);
  Rng rng(7);
  std::vector<uint8_t> payload(static_cast<size_t>(cfg.block_size));
  for (auto& b : payload) b = static_cast<uint8_t>(rng.uniform(256));
  while (cfs->sealed_stripes().empty()) {
    cfs->write_block(payload);
  }
  const StripeId stripe = cfs->sealed_stripes()[0];
  cfs->encode_stripe(stripe);
  const StripeMeta meta = cfs->stripe_meta(stripe);

  // Kill one rack; with c = 1 that removes at most one block of the stripe.
  const RackId dead =
      cfs->topology().rack_of(cfs->block_locations(meta.data_blocks[0])[0]);
  cfs->kill_rack(dead);

  const auto report = cfs->restore_redundancy();
  EXPECT_EQ(report.unrecoverable, 0);
  // Every stripe block has a live copy now.
  for (const BlockId b : meta.data_blocks) {
    const auto locs = cfs->block_locations(b);
    ASSERT_FALSE(locs.empty());
    EXPECT_TRUE(cfs->node_alive(locs[0]));
  }
}

TEST(Recovery, ReportsUnrecoverableReplicatedBlock) {
  const auto cfg = fs_config(false);
  auto cfs = make_cfs(cfg);
  std::vector<uint8_t> block(static_cast<size_t>(cfg.block_size), 1);
  const BlockId id = cfs->write_block(block);
  for (const NodeId n : cfs->block_locations(id)) cfs->kill_node(n);
  const auto report = cfs->restore_redundancy();
  EXPECT_GE(report.unrecoverable, 1);
}

TEST(Recovery, IdempotentWhenHealthy) {
  const auto cfg = fs_config();
  auto cfs = make_cfs(cfg);
  std::vector<uint8_t> block(static_cast<size_t>(cfg.block_size), 2);
  for (int i = 0; i < 10; ++i) cfs->write_block(block);
  const auto report = cfs->restore_redundancy();
  EXPECT_EQ(report.re_replicated, 0);
  EXPECT_EQ(report.repaired, 0);
  EXPECT_EQ(report.unrecoverable, 0);
}

TEST(Recovery, ReReplicationPrefersNewRacks) {
  const auto cfg = fs_config(false);
  auto cfs = make_cfs(cfg);
  std::vector<uint8_t> block(static_cast<size_t>(cfg.block_size), 3);
  const BlockId id = cfs->write_block(block);
  const auto locs = cfs->block_locations(id);
  // Kill the doubled rack's nodes (replicas 2+3 share a rack).
  const RackId doubled = cfs->topology().rack_of(locs[1]);
  cfs->kill_rack(doubled);
  cfs->restore_redundancy();
  const auto fresh = cfs->block_locations(id);
  ASSERT_EQ(fresh.size(), 3u);
  std::set<RackId> racks;
  for (const NodeId n : fresh) {
    EXPECT_TRUE(cfs->node_alive(n));
    racks.insert(cfs->topology().rack_of(n));
  }
  EXPECT_GE(racks.size(), 2u);
}

}  // namespace
}  // namespace ear::cfs
