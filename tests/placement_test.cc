#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"
#include "placement/ear.h"
#include "placement/monitor.h"
#include "placement/policy.h"
#include "placement/random_replication.h"
#include "placement/replica_layout.h"

namespace ear {
namespace {

PlacementConfig default_config(int n = 14, int k = 10, int r = 3, int c = 1) {
  PlacementConfig cfg;
  cfg.code = CodeParams{n, k};
  cfg.replication = r;
  cfg.c = c;
  return cfg;
}

// ---------------------------------------------------------------- layouts

TEST(ReplicaLayout, HdfsDefaultShape) {
  const Topology topo(8, 4);
  const auto cfg = default_config();
  Rng rng(41);
  for (int trial = 0; trial < 200; ++trial) {
    const NodeId first = random_node(topo, rng);
    const auto replicas = draw_secondary_replicas(topo, cfg, first, rng);
    ASSERT_EQ(replicas.size(), 3u);
    EXPECT_EQ(replicas[0], first);
    // All distinct nodes.
    std::set<NodeId> unique(replicas.begin(), replicas.end());
    EXPECT_EQ(unique.size(), 3u);
    // Replicas 2 and 3 share a rack that differs from the first replica's.
    EXPECT_EQ(topo.rack_of(replicas[1]), topo.rack_of(replicas[2]));
    EXPECT_NE(topo.rack_of(replicas[0]), topo.rack_of(replicas[1]));
  }
}

TEST(ReplicaLayout, OneReplicaPerRackShape) {
  const Topology topo(10, 3);
  auto cfg = default_config();
  cfg.replication = 5;
  cfg.one_replica_per_rack = true;
  Rng rng(42);
  for (int trial = 0; trial < 100; ++trial) {
    const auto replicas =
        draw_secondary_replicas(topo, cfg, random_node(topo, rng), rng);
    ASSERT_EQ(replicas.size(), 5u);
    std::set<RackId> racks;
    for (const NodeId n : replicas) racks.insert(topo.rack_of(n));
    EXPECT_EQ(racks.size(), 5u);
  }
}

TEST(ReplicaLayout, TwoWayReplicationForSingleNodeRacks) {
  // Paper testbed mode: r = 2, racks of one node.
  const Topology topo(12, 1);
  auto cfg = default_config(10, 8, /*r=*/2);
  Rng rng(43);
  for (int trial = 0; trial < 100; ++trial) {
    const auto replicas =
        draw_secondary_replicas(topo, cfg, random_node(topo, rng), rng);
    ASSERT_EQ(replicas.size(), 2u);
    EXPECT_NE(topo.rack_of(replicas[0]), topo.rack_of(replicas[1]));
  }
}

// ---------------------------------------------------------------- RR

TEST(RandomReplication, StripesSealAfterKBlocks) {
  const Topology topo(20, 20);
  RandomReplication rr(topo, default_config(14, 10), 44);
  for (BlockId b = 0; b < 25; ++b) {
    rr.place_block(b, std::nullopt);
  }
  const auto sealed = rr.sealed_stripes();
  ASSERT_EQ(sealed.size(), 2u);  // 25 blocks -> 2 sealed stripes of 10
  for (const StripeId id : sealed) {
    const StripeInfo& s = rr.stripe(id);
    EXPECT_EQ(s.blocks.size(), 10u);
    EXPECT_EQ(s.core_rack, kInvalidRack);
  }
}

TEST(RandomReplication, WriterHoldsFirstReplica) {
  const Topology topo(6, 5);
  RandomReplication rr(topo, default_config(8, 6), 45);
  const auto p = rr.place_block(0, NodeId{17});
  EXPECT_EQ(p.replicas[0], 17);
}

TEST(RandomReplication, EncodingPlanKeepsOneReplicaPerBlock) {
  const Topology topo(20, 20);
  const auto cfg = default_config(14, 10);
  RandomReplication rr(topo, cfg, 46);
  for (BlockId b = 0; b < 10; ++b) rr.place_block(b, std::nullopt);
  const auto sealed = rr.sealed_stripes();
  ASSERT_EQ(sealed.size(), 1u);

  const EncodePlan plan = rr.plan_encoding(sealed[0]);
  ASSERT_EQ(plan.kept.size(), 10u);
  ASSERT_EQ(plan.parity.size(), 4u);
  const StripeInfo& s = rr.stripe(sealed[0]);
  for (int i = 0; i < 10; ++i) {
    const auto& reps = s.replicas[static_cast<size_t>(i)];
    EXPECT_TRUE(std::find(reps.begin(), reps.end(),
                          plan.kept[static_cast<size_t>(i)]) != reps.end())
        << "kept replica must be one of the block's replicas";
  }
  // deletions + kept must cover every replica exactly once.
  EXPECT_EQ(plan.deletions.size(), 10u * 2u);
  // All n blocks on distinct nodes (node-level fault tolerance).
  std::set<NodeId> nodes(plan.kept.begin(), plan.kept.end());
  nodes.insert(plan.parity.begin(), plan.parity.end());
  EXPECT_EQ(nodes.size(), 14u);
}

TEST(RandomReplication, CrossRackDownloadsMatchExpectation) {
  // §II-B: expected cross-rack downloads ~ k(1 - 2/R).  With R = 20, k = 10
  // that is 9.0.
  const Topology topo(20, 20);
  RandomReplication rr(topo, default_config(14, 10), 47);
  for (BlockId b = 0; b < 10 * 400; ++b) rr.place_block(b, std::nullopt);
  double total = 0;
  int stripes = 0;
  for (const StripeId id : rr.sealed_stripes()) {
    total += rr.plan_encoding(id).cross_rack_downloads;
    ++stripes;
  }
  const double avg = total / stripes;
  EXPECT_NEAR(avg, 9.0, 0.35);
}

// ---------------------------------------------------------------- EAR

TEST(EncodingAwareReplication, AllBlocksHaveFirstReplicaInCoreRack) {
  const Topology topo(20, 20);
  EncodingAwareReplication ear(topo, default_config(14, 10), 48);
  for (BlockId b = 0; b < 200; ++b) ear.place_block(b, std::nullopt);
  for (const StripeId id : ear.sealed_stripes()) {
    const StripeInfo& s = ear.stripe(id);
    ASSERT_NE(s.core_rack, kInvalidRack);
    for (const auto& replicas : s.replicas) {
      EXPECT_EQ(topo.rack_of(replicas[0]), s.core_rack);
    }
  }
}

TEST(EncodingAwareReplication, ZeroCrossRackDownloads) {
  const Topology topo(20, 20);
  EncodingAwareReplication ear(topo, default_config(14, 10), 49);
  for (BlockId b = 0; b < 300; ++b) ear.place_block(b, std::nullopt);
  ASSERT_FALSE(ear.sealed_stripes().empty());
  for (const StripeId id : ear.sealed_stripes()) {
    const EncodePlan plan = ear.plan_encoding(id);
    EXPECT_EQ(plan.cross_rack_downloads, 0);
    EXPECT_EQ(topo.rack_of(plan.encoder), ear.stripe(id).core_rack);
  }
}

TEST(EncodingAwareReplication, PostEncodeLayoutSatisfiesRackFaultTolerance) {
  const Topology topo(20, 20);
  const auto cfg = default_config(14, 10, 3, /*c=*/1);
  EncodingAwareReplication ear(topo, cfg, 50);
  PlacementMonitor monitor(topo, cfg.code);
  for (BlockId b = 0; b < 400; ++b) ear.place_block(b, std::nullopt);
  ASSERT_FALSE(ear.sealed_stripes().empty());
  for (const StripeId id : ear.sealed_stripes()) {
    const EncodePlan plan = ear.plan_encoding(id);
    StripeLayout layout;
    layout.nodes = plan.kept;
    layout.nodes.insert(layout.nodes.end(), plan.parity.begin(),
                        plan.parity.end());
    const auto report = monitor.analyze(layout);
    EXPECT_EQ(report.max_blocks_per_node, 1);
    EXPECT_LE(report.max_blocks_per_rack, cfg.c);
    // c = 1 => tolerate n - k = 4 rack failures without relocation.
    EXPECT_GE(report.tolerable_rack_failures, 4);
    EXPECT_TRUE(monitor.plan_relocations(layout, cfg.c).empty());
  }
}

TEST(EncodingAwareReplication, KeptReplicaIsAnActualReplica) {
  const Topology topo(16, 8);
  EncodingAwareReplication ear(topo, default_config(12, 8), 51);
  for (BlockId b = 0; b < 200; ++b) ear.place_block(b, std::nullopt);
  for (const StripeId id : ear.sealed_stripes()) {
    const EncodePlan plan = ear.plan_encoding(id);
    const StripeInfo& s = ear.stripe(id);
    for (size_t i = 0; i < plan.kept.size(); ++i) {
      const auto& reps = s.replicas[i];
      EXPECT_TRUE(std::find(reps.begin(), reps.end(), plan.kept[i]) !=
                  reps.end());
    }
  }
}

TEST(EncodingAwareReplication, LargerCAllowsMoreBlocksPerRack) {
  const Topology topo(8, 10);
  const auto cfg = default_config(14, 10, 3, /*c=*/2);
  EncodingAwareReplication ear(topo, cfg, 52);
  PlacementMonitor monitor(topo, cfg.code);
  for (BlockId b = 0; b < 300; ++b) ear.place_block(b, std::nullopt);
  ASSERT_FALSE(ear.sealed_stripes().empty());
  for (const StripeId id : ear.sealed_stripes()) {
    const EncodePlan plan = ear.plan_encoding(id);
    StripeLayout layout;
    layout.nodes = plan.kept;
    layout.nodes.insert(layout.nodes.end(), plan.parity.begin(),
                        plan.parity.end());
    const auto report = monitor.analyze(layout);
    EXPECT_LE(report.max_blocks_per_rack, 2);
    // c = 2 => tolerate floor(4/2) = 2 rack failures.
    EXPECT_GE(report.tolerable_rack_failures, 2);
  }
}

TEST(EncodingAwareReplication, TargetRacksConfineEncodedStripe) {
  // Figure 6: (6,3) code, c = 3, R' = 2 target racks out of 6.
  const Topology topo(6, 6);
  auto cfg = default_config(6, 3, 3, /*c=*/3);
  cfg.target_racks = 2;
  EncodingAwareReplication ear(topo, cfg, 53);
  for (BlockId b = 0; b < 60; ++b) ear.place_block(b, std::nullopt);
  ASSERT_FALSE(ear.sealed_stripes().empty());
  for (const StripeId id : ear.sealed_stripes()) {
    const auto& targets = ear.stripe_target_racks(id);
    ASSERT_EQ(targets.size(), 2u);
    const EncodePlan plan = ear.plan_encoding(id);
    std::set<RackId> target_set(targets.begin(), targets.end());
    for (const NodeId n : plan.kept) {
      EXPECT_TRUE(target_set.count(topo.rack_of(n)))
          << "kept block outside target racks";
    }
    for (const NodeId n : plan.parity) {
      EXPECT_TRUE(target_set.count(topo.rack_of(n)))
          << "parity block outside target racks";
    }
  }
}

TEST(EncodingAwareReplication, IterationCountsAreModest) {
  // Theorem 1: with R = 20 racks and c = 1, E_i <= 1.9 for k = 10.  The
  // *average* over all blocks is well below that.
  const Topology topo(20, 20);
  EncodingAwareReplication ear(topo, default_config(14, 10), 54);
  for (BlockId b = 0; b < 2000; ++b) ear.place_block(b, std::nullopt);
  const double avg =
      static_cast<double>(ear.total_layout_iterations()) /
      static_cast<double>(ear.total_blocks_placed());
  EXPECT_LT(avg, 1.6);
  EXPECT_GE(avg, 1.0);
}

TEST(EncodingAwareReplication, DistinctCoreRacksProgressIndependently) {
  const Topology topo(5, 8);
  EncodingAwareReplication ear(topo, default_config(5, 4, 3, 1), 55);
  // Alternate writers between racks 0 and 1: two stripes fill in parallel.
  for (BlockId b = 0; b < 6; ++b) {
    const NodeId writer = (b % 2 == 0) ? NodeId{0} : NodeId{8};
    ear.place_block(b, writer);
  }
  EXPECT_TRUE(ear.sealed_stripes().empty());  // 3 blocks each, k = 4
  ear.place_block(6, NodeId{0});
  ear.place_block(7, NodeId{8});
  EXPECT_EQ(ear.sealed_stripes().size(), 2u);
}

TEST(EncodingAwareReplication, RejectsInfeasibleConfig) {
  const Topology topo(4, 4);
  // n = 14 blocks cannot fit in 4 racks with c = 1.
  EXPECT_THROW(
      EncodingAwareReplication(topo, default_config(14, 10, 3, 1), 56),
      std::invalid_argument);
  // c = 0 invalid.
  EXPECT_THROW(EncodingAwareReplication(topo, default_config(5, 4, 3, 0), 57),
               std::invalid_argument);
  // target_racks > rack count.
  auto cfg = default_config(5, 4, 3, 2);
  cfg.target_racks = 9;
  EXPECT_THROW(EncodingAwareReplication(topo, cfg, 58), std::invalid_argument);
}

TEST(EarStripeMaxFlow, MatchesHandComputedExample) {
  // Figure 4: 4 racks x 2 nodes, 3 blocks, c = 1.
  const Topology topo(4, 2);
  // Block replicas as in the paper's figure: each block has replicas on
  // nodes spanning the core rack (rack 0) plus another rack.
  std::vector<std::vector<NodeId>> replicas{
      {0, 2, 3},  // block 1: rack0, rack1, rack1
      {1, 2, 4},  // block 2: rack0, rack1, rack2
      {0, 6, 7},  // block 3: rack0, rack3, rack3
  };
  std::vector<NodeId> matching;
  const int flow = ear_stripe_max_flow(topo, 1, replicas, {}, &matching);
  EXPECT_EQ(flow, 3);
  ASSERT_EQ(matching.size(), 3u);
  // Valid matching: distinct nodes, distinct racks (c = 1).
  std::set<NodeId> nodes(matching.begin(), matching.end());
  EXPECT_EQ(nodes.size(), 3u);
  std::set<RackId> racks;
  for (const NodeId n : matching) racks.insert(topo.rack_of(n));
  EXPECT_EQ(racks.size(), 3u);
}

TEST(EarStripeMaxFlow, DetectsInfeasibleLayout) {
  // Both blocks only have replicas in rack 0; with c = 1 at most one can be
  // kept.
  const Topology topo(3, 4);
  std::vector<std::vector<NodeId>> replicas{{0, 1, 2}, {1, 2, 3}};
  EXPECT_EQ(ear_stripe_max_flow(topo, 1, replicas, {}), 1);
  EXPECT_EQ(ear_stripe_max_flow(topo, 2, replicas, {}), 2);
}

TEST(EarStripeMaxFlow, NodeCapacityLimitsMatching) {
  // Two blocks share the single replica node: only one can keep it.
  const Topology topo(2, 2);
  std::vector<std::vector<NodeId>> replicas{{0}, {0}};
  EXPECT_EQ(ear_stripe_max_flow(topo, 2, replicas, {}), 1);
}

TEST(EarStripeMaxFlow, EligibleRacksRestrictMatching) {
  const Topology topo(3, 2);
  std::vector<std::vector<NodeId>> replicas{{0, 2}, {1, 4}};
  // Only rack 0 eligible: both blocks must match inside rack 0, c = 1 allows
  // one.
  EXPECT_EQ(ear_stripe_max_flow(topo, 1, replicas, {0}), 1);
  // Racks 0 and 1: block 0 -> rack 1 (node 2), block 1 -> rack 0 (node 1).
  EXPECT_EQ(ear_stripe_max_flow(topo, 1, replicas, {0, 1}), 2);
}

// ---------------------------------------------------------------- monitor

TEST(PlacementMonitor, AnalyzeCountsWorstCaseFailures) {
  const Topology topo(5, 4);
  PlacementMonitor monitor(topo, CodeParams{5, 4});
  // Layout: two blocks in rack 0, one each in racks 1, 2, 3.
  StripeLayout layout;
  layout.nodes = {0, 1, 4, 8, 12};
  const auto report = monitor.analyze(layout);
  EXPECT_EQ(report.max_blocks_per_node, 1);
  EXPECT_EQ(report.max_blocks_per_rack, 2);
  // m = 1: losing rack 0 loses 2 blocks > m -> zero rack failures tolerable.
  EXPECT_EQ(report.tolerable_rack_failures, 0);
  EXPECT_EQ(report.tolerable_node_failures, 1);
}

TEST(PlacementMonitor, PerfectSpreadToleratesMFailures) {
  const Topology topo(6, 4);
  PlacementMonitor monitor(topo, CodeParams{6, 4});
  StripeLayout layout;
  layout.nodes = {0, 4, 8, 12, 16, 20};  // one per rack
  const auto report = monitor.analyze(layout);
  EXPECT_EQ(report.tolerable_rack_failures, 2);
  EXPECT_EQ(report.tolerable_node_failures, 2);
}

TEST(PlacementMonitor, RelocationPlanRestoresCompliance) {
  const Topology topo(6, 4);
  PlacementMonitor monitor(topo, CodeParams{6, 4});
  StripeLayout layout;
  layout.nodes = {0, 1, 2, 3, 4, 8};  // four blocks in rack 0
  auto moves = monitor.plan_relocations(layout, 1);
  EXPECT_EQ(moves.size(), 3u);
  for (const auto& mv : moves) {
    layout.nodes[static_cast<size_t>(mv.block_index)] = mv.to;
  }
  const auto report = monitor.analyze(layout);
  EXPECT_EQ(report.max_blocks_per_rack, 1);
  EXPECT_TRUE(monitor.plan_relocations(layout, 1).empty());
}

TEST(PlacementMonitor, DoubledNodeTriggersRelocation) {
  const Topology topo(6, 4);
  PlacementMonitor monitor(topo, CodeParams{4, 3});
  StripeLayout layout;
  layout.nodes = {0, 0, 4, 8};  // block doubled on node 0
  const auto report = monitor.analyze(layout);
  EXPECT_EQ(report.max_blocks_per_node, 2);
  const auto moves = monitor.plan_relocations(layout, 1);
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].from, 0);
}

TEST(PlacementMonitor, RandomReplicationOftenViolatesButEarNever) {
  const Topology topo(10, 10);
  const auto cfg = default_config(10, 8, 3, 1);
  RandomReplication rr(topo, cfg, 59);
  EncodingAwareReplication ear(topo, cfg, 60);
  PlacementMonitor monitor(topo, cfg.code);

  int rr_violations = 0, ear_violations = 0, stripes = 0;
  for (BlockId b = 0; b < 8 * 100; ++b) {
    rr.place_block(b, std::nullopt);
    ear.place_block(b, std::nullopt);
  }
  for (const StripeId id : rr.sealed_stripes()) {
    const auto plan = rr.plan_encoding(id);
    StripeLayout layout;
    layout.nodes = plan.kept;
    layout.nodes.insert(layout.nodes.end(), plan.parity.begin(),
                        plan.parity.end());
    if (!monitor.plan_relocations(layout, 1).empty()) ++rr_violations;
    ++stripes;
  }
  for (const StripeId id : ear.sealed_stripes()) {
    const auto plan = ear.plan_encoding(id);
    StripeLayout layout;
    layout.nodes = plan.kept;
    layout.nodes.insert(layout.nodes.end(), plan.parity.begin(),
                        plan.parity.end());
    if (!monitor.plan_relocations(layout, 1).empty()) ++ear_violations;
  }
  EXPECT_EQ(ear_violations, 0);
  EXPECT_GT(rr_violations, 0) << "RR should violate n-racks-for-n-blocks "
                                 "sometimes in a 10-rack cluster, over "
                              << stripes << " stripes";
}


TEST(EncodingAwareReplication, TargetRacksConfineAllReplicas) {
  // SIII-D: "all data and parity blocks of every stripe must be placed in
  // the target racks" - including the pre-encoding secondary replicas.
  const Topology topo(20, 20);
  auto cfg = default_config(14, 10, 3, /*c=*/4);
  cfg.target_racks = 4;
  EncodingAwareReplication ear(topo, cfg, 61);
  for (BlockId b = 0; b < 200; ++b) ear.place_block(b, std::nullopt);
  ASSERT_FALSE(ear.sealed_stripes().empty());
  for (const StripeId id : ear.sealed_stripes()) {
    const auto& targets = ear.stripe_target_racks(id);
    const std::set<RackId> target_set(targets.begin(), targets.end());
    for (const auto& replicas : ear.stripe(id).replicas) {
      for (const NodeId n : replicas) {
        EXPECT_TRUE(target_set.count(topo.rack_of(n)))
            << "replica outside the stripe's target racks";
      }
    }
  }
}

TEST(EncodingAwareReplication, LargeCPutsParityInCoreRack) {
  // SIII-D locality: with c > 1 most parity blocks can live in the core
  // rack, making their uploads intra-rack.
  const Topology topo(20, 20);
  auto cfg = default_config(14, 10, 3, /*c=*/4);
  cfg.target_racks = 4;
  EncodingAwareReplication ear(topo, cfg, 62);
  for (BlockId b = 0; b < 10 * 60; ++b) ear.place_block(b, std::nullopt);
  double cross = 0;
  int stripes = 0;
  for (const StripeId id : ear.sealed_stripes()) {
    cross += ear.plan_encoding(id).cross_rack_parity_uploads;
    ++stripes;
  }
  ASSERT_GT(stripes, 0);
  // With c = 1 every parity upload crosses racks (4 per stripe); with c = 4
  // most land in the core rack.
  EXPECT_LT(cross / stripes, 2.5);
}

TEST(EncodingAwareReplication, PostPassKeepsLayoutValid) {
  // The core-eviction post-pass must not break the placement invariants.
  const Topology topo(20, 20);
  auto cfg = default_config(14, 10, 3, /*c=*/2);
  cfg.target_racks = 7;
  EncodingAwareReplication ear(topo, cfg, 63);
  PlacementMonitor monitor(topo, cfg.code);
  for (BlockId b = 0; b < 10 * 40; ++b) ear.place_block(b, std::nullopt);
  for (const StripeId id : ear.sealed_stripes()) {
    const EncodePlan plan = ear.plan_encoding(id);
    const StripeInfo& s = ear.stripe(id);
    // Kept replicas are actual replicas.
    for (size_t i = 0; i < plan.kept.size(); ++i) {
      const auto& reps = s.replicas[i];
      EXPECT_TRUE(std::find(reps.begin(), reps.end(), plan.kept[i]) !=
                  reps.end());
    }
    StripeLayout layout;
    layout.nodes = plan.kept;
    layout.nodes.insert(layout.nodes.end(), plan.parity.begin(),
                        plan.parity.end());
    const auto report = monitor.analyze(layout);
    EXPECT_EQ(report.max_blocks_per_node, 1);
    EXPECT_LE(report.max_blocks_per_rack, 2);
    EXPECT_GE(report.tolerable_rack_failures, 2);
    // Deletions + kept cover every replica exactly once.
    EXPECT_EQ(plan.deletions.size(), 10u * 3u - 10u);
  }
}

}  // namespace
}  // namespace ear
