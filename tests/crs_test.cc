#include "erasure/crs.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace ear::erasure {
namespace {

std::vector<std::vector<uint8_t>> random_blocks(int count, size_t size,
                                                Rng& rng) {
  std::vector<std::vector<uint8_t>> blocks(static_cast<size_t>(count));
  for (auto& b : blocks) {
    b.resize(size);
    for (auto& byte : b) byte = static_cast<uint8_t>(rng.uniform(256));
  }
  return blocks;
}

std::vector<BlockView> views(const std::vector<std::vector<uint8_t>>& v) {
  return {v.begin(), v.end()};
}
std::vector<MutBlockView> mut_views(std::vector<std::vector<uint8_t>>& v) {
  return {v.begin(), v.end()};
}

TEST(CRS, EncodeIsDeterministicAndNonTrivial) {
  Rng rng(81);
  const CRSCode code(10, 8);
  const size_t block = 128;  // divisible by 8
  auto data = random_blocks(8, block, rng);
  std::vector<std::vector<uint8_t>> p1(2, std::vector<uint8_t>(block));
  std::vector<std::vector<uint8_t>> p2(2, std::vector<uint8_t>(block));
  auto v1 = mut_views(p1);
  auto v2 = mut_views(p2);
  code.encode(views(data), v1);
  code.encode(views(data), v2);
  EXPECT_EQ(p1, p2);
  bool nonzero = false;
  for (const uint8_t b : p1[0]) {
    if (b) nonzero = true;
  }
  EXPECT_TRUE(nonzero);
}

TEST(CRS, RejectsUnalignedBlocks) {
  Rng rng(82);
  const CRSCode code(6, 4);
  auto data = random_blocks(4, 13, rng);  // not divisible by 8
  std::vector<std::vector<uint8_t>> parity(2, std::vector<uint8_t>(13));
  auto pv = mut_views(parity);
  EXPECT_THROW(code.encode(views(data), pv), std::invalid_argument);
}

TEST(CRS, AnyKSubsetReconstructsData) {
  Rng rng(83);
  for (const auto& [n, k] : std::vector<std::pair<int, int>>{
           {6, 4}, {10, 8}, {14, 10}}) {
    const CRSCode code(n, k);
    const size_t block = 64;
    auto data = random_blocks(k, block, rng);
    std::vector<std::vector<uint8_t>> parity(
        static_cast<size_t>(n - k), std::vector<uint8_t>(block));
    auto pv = mut_views(parity);
    code.encode(views(data), pv);
    std::vector<std::vector<uint8_t>> all = data;
    all.insert(all.end(), parity.begin(), parity.end());

    for (int trial = 0; trial < 30; ++trial) {
      const auto picks = rng.sample_without_replacement(
          static_cast<size_t>(n), static_cast<size_t>(k));
      std::vector<int> ids(picks.begin(), picks.end());
      std::vector<BlockView> available;
      for (const int id : ids) {
        available.emplace_back(all[static_cast<size_t>(id)]);
      }
      std::vector<int> wanted;
      for (int i = 0; i < k; ++i) wanted.push_back(i);
      std::vector<std::vector<uint8_t>> out(
          static_cast<size_t>(k), std::vector<uint8_t>(block));
      auto ov = mut_views(out);
      ASSERT_TRUE(code.reconstruct(ids, available, wanted, ov));
      EXPECT_EQ(out, data) << "n=" << n << " k=" << k;
    }
  }
}

TEST(CRS, ReconstructParityBlocks) {
  Rng rng(84);
  const CRSCode code(9, 6);
  const size_t block = 48;
  auto data = random_blocks(6, block, rng);
  std::vector<std::vector<uint8_t>> parity(3, std::vector<uint8_t>(block));
  auto pv = mut_views(parity);
  code.encode(views(data), pv);

  std::vector<int> ids{0, 1, 2, 3, 4, 5};
  auto available = views(data);
  std::vector<std::vector<uint8_t>> out(3, std::vector<uint8_t>(block));
  auto ov = mut_views(out);
  ASSERT_TRUE(code.reconstruct(ids, available, {6, 7, 8}, ov));
  EXPECT_EQ(out[0], parity[0]);
  EXPECT_EQ(out[1], parity[1]);
  EXPECT_EQ(out[2], parity[2]);
}

TEST(CRS, IdentityCoefficientYieldsPlainCopy) {
  // Reconstructing an available data block must reproduce it exactly
  // (bit-matrix of coefficient 1 is the identity).
  Rng rng(85);
  const CRSCode code(6, 4);
  const size_t block = 32;
  auto data = random_blocks(4, block, rng);
  std::vector<std::vector<uint8_t>> parity(2, std::vector<uint8_t>(block));
  auto pv = mut_views(parity);
  code.encode(views(data), pv);

  std::vector<int> ids{0, 1, 2, 3};
  auto available = views(data);
  std::vector<std::vector<uint8_t>> out(1, std::vector<uint8_t>(block));
  auto ov = mut_views(out);
  ASSERT_TRUE(code.reconstruct(ids, available, {2}, ov));
  EXPECT_EQ(out[0], data[2]);
}

TEST(CRS, ScheduleDensityIsReasonable) {
  // Each nonzero coefficient contributes between 8 (identity-like) and 64
  // XORed packets; the schedule must stay within those bounds.
  const CRSCode code(14, 10);
  const int64_t nonzero_coeffs = 10 * 4;  // dense Cauchy parity rows
  EXPECT_GE(code.schedule_xor_count(), nonzero_coeffs * 8);
  EXPECT_LE(code.schedule_xor_count(), nonzero_coeffs * 64);
}

TEST(CRS, MatchesByteCodeParameters) {
  const CRSCode code(12, 10);
  EXPECT_EQ(code.n(), 12);
  EXPECT_EQ(code.k(), 10);
  EXPECT_EQ(code.m(), 2);
  EXPECT_EQ(code.byte_code().construction(), Construction::kCauchy);
}

}  // namespace
}  // namespace ear::erasure
