#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/flags.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/units.h"

namespace ear {
namespace {

// ------------------------------------------------------------------- rng

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.next();
    EXPECT_EQ(va, b.next());
  }
  // Different seed should diverge immediately with overwhelming probability.
  Rng a2(42);
  EXPECT_NE(a2.next(), c.next());
}

TEST(Rng, UniformBoundIsRespectedAndCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.uniform(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIsApproximatelyUniform) {
  Rng rng(8);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.uniform(kBuckets)];
  }
  // Chi-squared with 9 dof: 99.9th percentile ~ 27.9.
  double chi2 = 0;
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (const int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 27.9);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
  // Degenerate range.
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(10);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng(11);
  double sum = 0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(2.5);
  EXPECT_NEAR(sum / kSamples, 2.5, 0.05);
}

TEST(Rng, NormalMomentsConverge) {
  Rng rng(12);
  double sum = 0, sq = 0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const double v = rng.normal(10.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kSamples;
  const double var = sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(14);
  for (const size_t range : {10u, 100u, 1000u}) {
    for (const size_t m : {1u, 5u, 10u}) {
      const auto sample = rng.sample_without_replacement(range, m);
      ASSERT_EQ(sample.size(), m);
      std::set<size_t> unique(sample.begin(), sample.end());
      EXPECT_EQ(unique.size(), m);
      for (const size_t v : sample) EXPECT_LT(v, range);
    }
  }
  // m == range: a permutation.
  const auto all = rng.sample_without_replacement(8, 8);
  std::set<size_t> unique(all.begin(), all.end());
  EXPECT_EQ(unique.size(), 8u);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(15);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto shuffled = v;
  rng.shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(16);
  Rng child = parent.fork();
  EXPECT_NE(parent.next(), child.next());
}

// ------------------------------------------------------------------ stats

TEST(Summary, BasicMoments) {
  Summary s;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Summary, PercentilesInterpolate) {
  Summary s;
  for (int i = 1; i <= 5; ++i) s.add(i);  // 1..5
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.125), 1.5);  // halfway between 1 and 2
}

TEST(Summary, BoxplotOrdering) {
  Summary s;
  Rng rng(17);
  for (int i = 0; i < 500; ++i) s.add(rng.uniform_double(0, 100));
  const auto b = s.boxplot();
  EXPECT_LE(b.min, b.q1);
  EXPECT_LE(b.q1, b.median);
  EXPECT_LE(b.median, b.q3);
  EXPECT_LE(b.q3, b.max);
}

TEST(Summary, EmptyIsSafe) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_EQ(format_boxplot(s), "(no samples)");
}

TEST(Summary, FormatBoxplotContainsFields) {
  Summary s;
  s.add(1.0);
  s.add(2.0);
  const std::string out = format_boxplot(s);
  EXPECT_NE(out.find("min="), std::string::npos);
  EXPECT_NE(out.find("med="), std::string::npos);
  EXPECT_NE(out.find("max="), std::string::npos);
}

TEST(LatencyPercentiles, KnownDistribution) {
  // 1..1000: p50 interpolates to 500.5, p99 to 990.01, p999 to 999.001.
  std::vector<double> v;
  for (int i = 1000; i >= 1; --i) v.push_back(i);  // unsorted on purpose
  const auto p = LatencyPercentiles::from(std::move(v));
  EXPECT_EQ(p.count, 1000u);
  EXPECT_DOUBLE_EQ(p.mean, 500.5);
  EXPECT_NEAR(p.p50, 500.5, 1e-9);
  EXPECT_NEAR(p.p90, 900.1, 1e-9);
  EXPECT_NEAR(p.p99, 990.01, 1e-9);
  EXPECT_NEAR(p.p999, 999.001, 1e-9);
  EXPECT_DOUBLE_EQ(p.max, 1000.0);
}

TEST(LatencyPercentiles, TailOrdering) {
  Summary s;
  Rng rng(23);
  for (int i = 0; i < 2000; ++i) s.add(rng.uniform_double(0, 1));
  const auto p = LatencyPercentiles::from(s);
  EXPECT_LE(p.p50, p.p90);
  EXPECT_LE(p.p90, p.p99);
  EXPECT_LE(p.p99, p.p999);
  EXPECT_LE(p.p999, p.max);
}

TEST(LatencyPercentiles, EmptyAndSingle) {
  const auto empty = LatencyPercentiles::from(std::vector<double>{});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.p999, 0.0);

  const auto one = LatencyPercentiles::from({0.125});
  EXPECT_EQ(one.count, 1u);
  EXPECT_DOUBLE_EQ(one.p50, 0.125);
  EXPECT_DOUBLE_EQ(one.p999, 0.125);
  EXPECT_DOUBLE_EQ(one.mean, 0.125);
}

TEST(LatencyPercentiles, FormatContainsFields) {
  const auto p = LatencyPercentiles::from({0.01, 0.02, 0.03});
  const std::string out = p.format();
  EXPECT_NE(out.find("p50="), std::string::npos);
  EXPECT_NE(out.find("p99="), std::string::npos);
  EXPECT_NE(out.find("p999="), std::string::npos);
}

// ------------------------------------------------------------------ units

TEST(Units, LiteralsAndConversions) {
  EXPECT_EQ(1_KB, 1024);
  EXPECT_EQ(1_MB, 1024 * 1024);
  EXPECT_EQ(2_GB, 2LL * 1024 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(gbps(1.0), 1e9 / 8.0);
  EXPECT_DOUBLE_EQ(mbps(800), 1e8);
  EXPECT_DOUBLE_EQ(to_mb(64_MB), 64.0);
}

// ------------------------------------------------------------------ flags

TEST(FlagParser, ParsesAllForms) {
  const char* argv[] = {"prog",       "--alpha=3",  "--beta", "7",
                        "--gamma",    "--delta=hi", "pos1",   "--eps=2.5",
                        "--neg", "-4"};
  FlagParser flags(static_cast<int>(std::size(argv)),
                   const_cast<char**>(argv));
  EXPECT_EQ(flags.get_int("alpha", 0), 3);
  EXPECT_EQ(flags.get_int("beta", 0), 7);
  EXPECT_TRUE(flags.get_bool("gamma"));
  EXPECT_EQ(flags.get_string("delta"), "hi");
  EXPECT_DOUBLE_EQ(flags.get_double("eps", 0), 2.5);
  // "--neg -4": the -4 is not consumed as a value (leading dash); it falls
  // through to the positional list.
  EXPECT_TRUE(flags.get_bool("neg"));
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "pos1");
  EXPECT_EQ(flags.positional()[1], "-4");
}

TEST(FlagParser, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  FlagParser flags(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.get_int("missing", 42), 42);
  EXPECT_DOUBLE_EQ(flags.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(flags.get_string("missing", "x"), "x");
  EXPECT_FALSE(flags.get_bool("missing"));
  EXPECT_TRUE(flags.get_bool("missing", true));
  EXPECT_FALSE(flags.has("missing"));
}

TEST(FlagParser, ExplicitFalse) {
  const char* argv[] = {"prog", "--opt=false", "--zero=0"};
  FlagParser flags(3, const_cast<char**>(argv));
  EXPECT_FALSE(flags.get_bool("opt", true));
  EXPECT_FALSE(flags.get_bool("zero", true));
}

}  // namespace
}  // namespace ear
