#include "sim/network.h"

#include <gtest/gtest.h>

#include <vector>

namespace ear::sim {
namespace {

// Convenient round numbers: every link 100 bytes/s.
NetConfig flat_config(double bw = 100.0) {
  NetConfig c;
  c.node_bw = bw;
  c.rack_uplink_bw = bw;
  return c;
}

TEST(Network, SingleIntraRackTransferTime) {
  Engine e;
  const Topology topo(2, 4);
  Network net(e, topo, flat_config());
  double done_at = -1;
  net.start_transfer(0, 1, 100, [&] { done_at = e.now(); });
  e.run();
  EXPECT_NEAR(done_at, 1.0, 1e-9);
  EXPECT_EQ(net.intra_rack_bytes(), 100);
  EXPECT_EQ(net.cross_rack_bytes(), 0);
}

TEST(Network, SingleCrossRackTransferTime) {
  Engine e;
  const Topology topo(2, 4);
  Network net(e, topo, flat_config());
  double done_at = -1;
  net.start_transfer(0, 4, 100, [&] { done_at = e.now(); });
  e.run();
  EXPECT_NEAR(done_at, 1.0, 1e-9);
  EXPECT_EQ(net.cross_rack_bytes(), 100);
  EXPECT_EQ(net.cross_rack_transfers(), 1);
}

TEST(Network, LocalTransferIsImmediate) {
  Engine e;
  const Topology topo(2, 2);
  Network net(e, topo, flat_config());
  double done_at = -1;
  net.start_transfer(1, 1, 1000000, [&] { done_at = e.now(); });
  e.run();
  EXPECT_NEAR(done_at, 0.0, 1e-9);
  EXPECT_EQ(net.cross_rack_bytes() + net.intra_rack_bytes(), 0);
}

TEST(Network, SharedUplinkHalvesRates) {
  Engine e;
  const Topology topo(2, 4);
  Network net(e, topo, flat_config());
  // Two transfers leaving node 0 simultaneously share its uplink.
  std::vector<double> done;
  net.start_transfer(0, 1, 100, [&] { done.push_back(e.now()); });
  net.start_transfer(0, 2, 100, [&] { done.push_back(e.now()); });
  e.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 2.0, 1e-9);
  EXPECT_NEAR(done[1], 2.0, 1e-9);
}

TEST(Network, RackUplinkIsTheCrossRackBottleneck) {
  Engine e;
  const Topology topo(2, 4);
  NetConfig cfg;
  cfg.node_bw = 100.0;
  cfg.rack_uplink_bw = 50.0;  // oversubscribed core
  Network net(e, topo, cfg);
  double done_at = -1;
  net.start_transfer(0, 4, 100, [&] { done_at = e.now(); });
  e.run();
  EXPECT_NEAR(done_at, 2.0, 1e-9);
}

TEST(Network, LateArrivalGetsMaxMinShare) {
  Engine e;
  const Topology topo(2, 4);
  Network net(e, topo, flat_config());
  double first_done = -1, second_done = -1;
  // First flow runs alone for 0.5 s (50 bytes done), then shares.
  net.start_transfer(0, 1, 100, [&] { first_done = e.now(); });
  e.schedule_at(0.5, [&] {
    net.start_transfer(0, 2, 100, [&] { second_done = e.now(); });
  });
  e.run();
  // First: 50 bytes at 100 B/s, then 50 bytes at 50 B/s -> done at 1.5 s.
  EXPECT_NEAR(first_done, 1.5, 1e-9);
  // Second: 50 bytes at 50 B/s (until 1.5), then 50 at 100 -> done at 2.0 s.
  EXPECT_NEAR(second_done, 2.0, 1e-9);
}

TEST(Network, DisjointTransfersDoNotInterfere) {
  Engine e;
  const Topology topo(4, 2);
  Network net(e, topo, flat_config());
  std::vector<double> done;
  net.start_transfer(0, 1, 100, [&] { done.push_back(e.now()); });
  net.start_transfer(2, 3, 100, [&] { done.push_back(e.now()); });
  net.start_transfer(4, 5, 100, [&] { done.push_back(e.now()); });
  e.run();
  for (const double t : done) EXPECT_NEAR(t, 1.0, 1e-9);
}

TEST(Network, ManyToOneCongestsReceiverDownlink) {
  Engine e;
  const Topology topo(5, 4);
  Network net(e, topo, flat_config());
  // 4 senders in different racks all target node 0: its downlink (100 B/s)
  // is the bottleneck -> each gets 25 B/s.
  int completed = 0;
  for (NodeId src : {4, 8, 12, 16}) {
    net.start_transfer(src, 0, 100, [&] { ++completed; });
  }
  EXPECT_TRUE(net.check_rates_feasible());
  e.run();
  EXPECT_EQ(completed, 4);
  EXPECT_NEAR(e.now(), 4.0, 1e-9);
}

TEST(Network, RatesStayFeasibleUnderChurn) {
  Engine e;
  const Topology topo(4, 4);
  Network net(e, topo, flat_config());
  // Staggered arrivals with varied sizes; verify feasibility after each
  // arrival.
  for (int i = 0; i < 30; ++i) {
    e.schedule_at(0.1 * i, [&net, &e, i] {
      const NodeId src = (i * 5) % 16;
      const NodeId dst = (i * 7 + 3) % 16;
      net.start_transfer(src, dst, 50 + 10 * (i % 5), [] {});
      EXPECT_TRUE(net.check_rates_feasible()) << "after arrival " << i;
    });
  }
  e.run();
  EXPECT_EQ(net.active_transfers(), 0);
}

TEST(Network, CompletionCallbackCanStartNewTransfer) {
  Engine e;
  const Topology topo(2, 2);
  Network net(e, topo, flat_config());
  double chain_done = -1;
  net.start_transfer(0, 1, 100, [&] {
    net.start_transfer(1, 2, 100, [&] { chain_done = e.now(); });
  });
  e.run();
  EXPECT_NEAR(chain_done, 2.0, 1e-9);
}

TEST(Network, ByteAccountingSumsAllTransfers) {
  Engine e;
  const Topology topo(3, 2);
  Network net(e, topo, flat_config());
  net.start_transfer(0, 1, 10, [] {});   // intra
  net.start_transfer(0, 2, 20, [] {});   // cross
  net.start_transfer(3, 5, 30, [] {});   // cross
  e.run();
  EXPECT_EQ(net.intra_rack_bytes(), 10);
  EXPECT_EQ(net.cross_rack_bytes(), 50);
  EXPECT_EQ(net.cross_rack_transfers(), 2);
}

}  // namespace
}  // namespace ear::sim
