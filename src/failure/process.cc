#include "failure/process.h"

#include <algorithm>
#include <chrono>

#include "cfs/minicfs.h"
#include "common/rng.h"
#include "sim/engine.h"

namespace ear::failure {

FailureProcess::FailureProcess(const Topology& topo, const FailureModel& model)
    : topo_(&topo), model_(model) {}

namespace {

// Alternating renewal process: up for exp(mttf), down for exp(mttr).
void generate_component(Rng rng, Seconds horizon, Seconds mttf, Seconds mttr,
                        EventKind fail, EventKind recover, int id,
                        std::vector<FailureEvent>* out) {
  Seconds t = rng.exponential(mttf);
  while (t < horizon) {
    out->push_back({t, fail, id});
    t += rng.exponential(mttr);
    if (t >= horizon) break;
    out->push_back({t, recover, id});
    t += rng.exponential(mttf);
  }
}

}  // namespace

std::vector<FailureEvent> FailureProcess::generate(Seconds horizon) const {
  std::vector<FailureEvent> events;
  Rng master(model_.seed);
  if (model_.node_mttf > 0) {
    for (NodeId n = 0; n < topo_->node_count(); ++n) {
      generate_component(master.fork(), horizon, model_.node_mttf,
                         model_.node_mttr, EventKind::kNodeFail,
                         EventKind::kNodeRecover, n, &events);
    }
  }
  if (model_.rack_mttf > 0) {
    for (RackId r = 0; r < topo_->rack_count(); ++r) {
      generate_component(master.fork(), horizon, model_.rack_mttf,
                         model_.rack_mttr, EventKind::kRackFail,
                         EventKind::kRackRecover, r, &events);
    }
  }
  std::sort(events.begin(), events.end());
  return events;
}

// ---------------------------------------------------------- real-time driver

RealTimeFailureDriver::RealTimeFailureDriver(cfs::MiniCfs& cfs,
                                             std::vector<FailureEvent> events,
                                             double time_compression)
    : cfs_(&cfs),
      events_(std::move(events)),
      time_compression_(time_compression) {
  std::sort(events_.begin(), events_.end());
}

RealTimeFailureDriver::~RealTimeFailureDriver() { stop(); }

void RealTimeFailureDriver::start(
    std::function<void(const FailureEvent&)> on_event) {
  thread_ = std::thread([this, on_event = std::move(on_event)]() mutable {
    run(std::move(on_event));
  });
}

void RealTimeFailureDriver::run(
    std::function<void(const FailureEvent&)> on_event) {
  const auto start = std::chrono::steady_clock::now();
  for (const FailureEvent& ev : events_) {
    const auto due =
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(ev.time / time_compression_));
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_until(lock, due, [this] { return stop_; });
      if (stop_) break;
    }
    apply_event(*cfs_, ev);
    applied_.fetch_add(1, std::memory_order_relaxed);
    if (on_event) on_event(ev);
  }
  std::lock_guard<std::mutex> lock(mu_);
  done_ = true;
  cv_.notify_all();
}

void RealTimeFailureDriver::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return done_; });
}

void RealTimeFailureDriver::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

// ------------------------------------------------------------- sim scheduling

void schedule_on_engine(sim::Engine& engine,
                        const std::vector<FailureEvent>& events,
                        std::function<void(const FailureEvent&)> handler) {
  for (const FailureEvent& ev : events) {
    engine.schedule_at(ev.time, [handler, ev] { handler(ev); });
  }
}

}  // namespace ear::failure
