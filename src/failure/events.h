// Failure-event vocabulary shared by the whole failure & repair subsystem
// (see DESIGN.md "Failure & repair").
//
// An event is (time, kind, id): a node or rack fails or recovers at a point
// in simulated time.  Schedules are plain sorted vectors so they can be
// generated from a stochastic model (failure/process.h), loaded from a trace
// file, replayed in real time against MiniCfs, or scheduled as virtual-time
// events on the sim engine — the four drivers all consume the same type.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common/units.h"
#include "topology/topology.h"

namespace ear::cfs {
class MiniCfs;
}

namespace ear::failure {

enum class EventKind {
  kNodeFail,
  kNodeRecover,
  kRackFail,
  kRackRecover,
};

struct FailureEvent {
  Seconds time = 0;
  EventKind kind = EventKind::kNodeFail;
  int id = 0;  // NodeId for node events, RackId for rack events
};

// Deterministic total order: (time, kind, id).  Schedules are kept sorted so
// replays are byte-for-byte reproducible.
bool operator<(const FailureEvent& a, const FailureEvent& b);
bool operator==(const FailureEvent& a, const FailureEvent& b);

// "node_fail", "node_recover", "rack_fail", "rack_recover".
const char* kind_name(EventKind kind);

// "t=12.345678 node_fail 3" — fixed precision so event logs from identical
// seeds compare byte-identical.
std::string format_event(const FailureEvent& ev);

// Parses one trace line "<time> <kind> <id>" (the format_event fields with
// the "t=" prefix optional).  Returns nullopt for blank lines and '#'
// comments; throws std::runtime_error on malformed input.
std::optional<FailureEvent> parse_event(const std::string& line);

// Parses a whole trace stream; lines must be non-decreasing in time.
std::vector<FailureEvent> parse_trace(std::istream& in);

// Applies one event to a live cluster (kill/revive node or rack).
void apply_event(cfs::MiniCfs& cfs, const FailureEvent& ev);

}  // namespace ear::failure
