// Heartbeat failure detection (HDFS NameNode heartbeat protocol).
//
// DataNodes report liveness via record_heartbeat(); the detector declares a
// node down after `timeout` seconds of silence.  Detection is *observed*
// state, deliberately distinct from MiniCfs ground truth — a slow node can
// be declared dead and later report back, in which case the detector emits
// an up-transition and counts a false positive so repair work triggered by
// the suspicion can be reconciled (RepairManager re-verifies every task
// against live metadata, so a false positive produces no spurious copies).
//
// The time source is pluggable: tests drive a manual clock through the poll
// API; live deployments call start() for a background polling thread on the
// steady clock.  HeartbeatPump supplies the DataNode side for MiniCfs.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/units.h"
#include "obs/metrics.h"
#include "topology/topology.h"

namespace ear::cfs {
class MiniCfs;
}

namespace ear::failure {

struct DetectorConfig {
  Seconds timeout = 0.2;         // silence before a node is declared down
  Seconds check_interval = 0.05;  // background poll period (start() mode)
};

class FailureDetector {
 public:
  struct Event {
    NodeId node = kInvalidNode;
    bool down = false;  // true: declared down; false: reported back
    Seconds at = 0;
  };

  using ClockFn = std::function<Seconds()>;

  // `clock` defaults to the steady clock (seconds since construction).
  FailureDetector(int node_count, const DetectorConfig& config,
                  ClockFn clock = {});
  ~FailureDetector();

  FailureDetector(const FailureDetector&) = delete;
  FailureDetector& operator=(const FailureDetector&) = delete;

  // DataNode side.  Thread-safe.  A heartbeat from a node currently marked
  // down revives it immediately and counts a false positive.
  void record_heartbeat(NodeId node);

  // Scans the table once, returning state transitions since the last poll
  // (up-transitions queued by late heartbeats first).  Thread-safe; tests
  // call this directly with a manual clock.
  std::vector<Event> poll();

  bool is_down(NodeId node) const;
  std::vector<NodeId> down_nodes() const;
  // Down-declarations later contradicted by a heartbeat.
  int64_t false_positives() const {
    return false_positives_.load(std::memory_order_relaxed);
  }

  // Background polling every check_interval; `on_event` runs on the
  // detector thread for each transition.
  void start(std::function<void(const Event&)> on_event);
  void stop();

 private:
  Seconds now() const;

  DetectorConfig config_;
  ClockFn clock_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::vector<Seconds> last_heartbeat_;
  std::vector<bool> down_;
  std::vector<Event> pending_;  // up-transitions awaiting the next poll
  std::atomic<int64_t> false_positives_{0};

  obs::Gauge* gauge_down_;
  obs::Counter* ctr_false_positives_;

  std::thread thread_;
  std::condition_variable cv_;
  bool stop_ = false;
};

// Background thread that heartbeats on behalf of every live MiniCfs node —
// the in-process stand-in for the DataNode heartbeat RPC.  Killed nodes stop
// heartbeating, so the detector discovers failures instead of being told.
class HeartbeatPump {
 public:
  HeartbeatPump(cfs::MiniCfs& cfs, FailureDetector& detector, Seconds period);
  ~HeartbeatPump();

  HeartbeatPump(const HeartbeatPump&) = delete;
  HeartbeatPump& operator=(const HeartbeatPump&) = delete;

  void start();
  void stop();

 private:
  cfs::MiniCfs* cfs_;
  FailureDetector* detector_;
  Seconds period_;

  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace ear::failure
