// Prioritized, throttled repair — the replacement for MiniCfs's monolithic
// restore_redundancy() sweep (HDFS ReplicationMonitor + RaidNode BlockFixer
// as a continuous service instead of a one-shot pass).
//
// Blocks needing work enter a priority queue keyed by *remaining redundancy*:
// how many further failures the block survives before data loss.  A lost
// block of a stripe with exactly k live blocks, or a replicated block down to
// one copy, has priority 0 and is repaired first.  Workers (bounded
// concurrency) re-verify every task against live NameNode metadata before
// acting, so stale queue entries — e.g. from a detector false positive or a
// node that recovered mid-queue — degrade to no-ops instead of spurious
// copies.  Failures mid-repair (sources dying under the reader) retry with
// exponential backoff up to max_attempts.
//
// All data movement goes through the MiniCfs Transport; an optional token
// bucket caps aggregate repair bandwidth on top of it, modelling HDFS's
// dfs.datanode.balance / replication throttles so repair traffic cannot
// starve foreground work.
//
// Two execution modes:
//  * start()/stop() — live mode: up to `workers` drainer tasks on the shared
//    data-path pool (datapath::WorkerPool) service the queue until it is
//    empty, and scheduling new work re-pumps drainers as needed.  No
//    persistent threads: an idle manager costs nothing.
//  * drain()        — processes the whole queue synchronously on the caller
//    thread in strict priority order, deterministically (benches, sim).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "cfs/minicfs.h"
#include "common/units.h"
#include "obs/metrics.h"

namespace ear::failure {

struct RepairConfig {
  int workers = 2;            // live-mode repair concurrency
  int max_attempts = 3;       // attempts per block before giving up
  Seconds retry_backoff = 0.005;  // initial backoff, doubles per attempt
  BytesPerSec repair_bandwidth = 0;  // aggregate cap; 0 = unthrottled
  // Observability/test hook: runs before each task attempt with the block
  // and its queue priority (live mode: on the worker thread).
  std::function<void(BlockId, int)> on_task;
};

class RepairManager {
 public:
  struct Report {
    int64_t re_replicated = 0;  // replica copies created
    int64_t repaired = 0;       // blocks rebuilt via decoding
    int64_t unrecoverable = 0;  // blocks given up on (after retries)
    int64_t noop = 0;           // tasks already satisfied at re-verification
    int64_t retries = 0;        // attempts that failed and were requeued
    int64_t bytes_moved = 0;    // transport bytes charged to repair
  };

  RepairManager(cfs::MiniCfs& cfs, const RepairConfig& config);
  ~RepairManager();

  RepairManager(const RepairManager&) = delete;
  RepairManager& operator=(const RepairManager&) = delete;

  // ---- scheduling (thread-safe) -------------------------------------------
  // Scans the namespace once (one NameNode lock) and enqueues every block
  // below its redundancy target.  Returns the number of tasks enqueued.
  int schedule_scan();
  // Enqueues only blocks with a registered copy on `node` / in `rack` —
  // the detector-driven path, avoiding full scans per failure.
  int schedule_node(NodeId node);
  int schedule_rack(RackId rack);

  // ---- execution ----------------------------------------------------------
  // Live mode: at most `workers` concurrent drainer tasks on the shared
  // data-path pool service the queue until stop().
  void start();
  // Stops live mode and blocks until every drainer has exited.
  void stop();
  // Blocks until the queue is empty and all drainers are idle.
  void wait_idle();

  // Synchronous mode: processes the entire queue (including retries) on the
  // calling thread in strict priority order.  Returns the work done by this
  // call.  Not concurrent with start().
  Report drain();

  // ---- introspection ------------------------------------------------------
  Report report() const;  // cumulative over the manager's lifetime
  size_t queue_depth() const;

 private:
  struct Task {
    int priority = 0;  // extra failures tolerable before data loss
    BlockId block = kInvalidBlock;
    int attempts = 0;
  };
  enum class Outcome { kDone, kNoop, kRetry, kUnrecoverable };

  // Priority of a block given live copy/stripe state; <0 means healthy.
  int compute_priority(const cfs::BlockStatus& status,
                       const cfs::NamespaceSnapshot& snap) const;
  int enqueue_snapshot(const cfs::NamespaceSnapshot& snap,
                       const std::function<bool(const cfs::BlockStatus&)>&
                           filter);
  void push_task(Task task);  // caller holds mu_
  bool pop_task(Task* task);  // caller holds mu_

  // One repair attempt; re-verifies state, then decodes or re-replicates.
  Outcome attempt(const Task& task, bool live_mode);
  void finish(const Task& task, Outcome outcome, bool live_mode);
  // Submits drainer tasks to the shared pool until min(config.workers,
  // queue depth) are running.  Caller holds mu_; no-op unless running_.
  void pump_locked();
  void drainer_loop();
  void throttle(Bytes bytes, bool live_mode);

  cfs::MiniCfs* cfs_;
  RepairConfig config_;

  mutable std::mutex mu_;
  std::condition_variable cv_;       // queue non-empty or stopping
  std::condition_variable idle_cv_;  // queue empty and workers idle
  std::set<std::pair<int, BlockId>> queue_;  // (priority, block)
  std::set<BlockId> queued_;                 // dedupe
  std::map<BlockId, int> attempts_;          // retry counts for queued blocks
  int drainers_ = 0;      // drainer tasks alive on the shared pool
  int active_ = 0;        // drainers currently executing a repair
  bool running_ = false;  // between start() and stop()
  bool stop_ = false;
  Report report_;

  std::mutex throttle_mu_;
  double tokens_ = 0;
  std::chrono::steady_clock::time_point last_refill_;

  obs::Gauge* gauge_queue_depth_;
  obs::Counter* ctr_repaired_;
  obs::Counter* ctr_re_replicated_;
  obs::Counter* ctr_unrecoverable_;
  obs::Counter* ctr_retries_;
  obs::Counter* ctr_bytes_;
};

}  // namespace ear::failure
