#include "failure/detector.h"

#include "cfs/minicfs.h"
#include "obs/trace.h"

namespace ear::failure {

FailureDetector::FailureDetector(int node_count, const DetectorConfig& config,
                                 ClockFn clock)
    : config_(config),
      clock_(std::move(clock)),
      epoch_(std::chrono::steady_clock::now()),
      gauge_down_(&obs::Registry::instance().gauge("detector.nodes_down")),
      ctr_false_positives_(
          &obs::Registry::instance().counter("detector.false_positives")) {
  last_heartbeat_.assign(static_cast<size_t>(node_count), now());
  down_.assign(static_cast<size_t>(node_count), false);
}

FailureDetector::~FailureDetector() { stop(); }

Seconds FailureDetector::now() const {
  if (clock_) return clock_();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void FailureDetector::record_heartbeat(NodeId node) {
  const Seconds t = now();
  std::lock_guard<std::mutex> lock(mu_);
  last_heartbeat_[static_cast<size_t>(node)] = t;
  if (down_[static_cast<size_t>(node)]) {
    // The node was declared dead but is alive after all: reinstate it and
    // surface the contradiction at the next poll.
    down_[static_cast<size_t>(node)] = false;
    pending_.push_back({node, /*down=*/false, t});
    false_positives_.fetch_add(1, std::memory_order_relaxed);
    ctr_false_positives_->add();
  }
}

std::vector<FailureDetector::Event> FailureDetector::poll() {
  const Seconds t = now();
  std::vector<Event> events;
  int down_count = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events.swap(pending_);
    for (size_t n = 0; n < down_.size(); ++n) {
      if (!down_[n] && t - last_heartbeat_[n] > config_.timeout) {
        down_[n] = true;
        events.push_back({static_cast<NodeId>(n), /*down=*/true, t});
      }
      if (down_[n]) ++down_count;
    }
  }
  gauge_down_->set(down_count);
  for (const Event& ev : events) {
    obs::trace_instant(ev.down ? "detector.node_down" : "detector.node_up",
                       "failure", {{"node", ev.node}});
  }
  return events;
}

bool FailureDetector::is_down(NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  return down_[static_cast<size_t>(node)];
}

std::vector<NodeId> FailureDetector::down_nodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<NodeId> out;
  for (size_t n = 0; n < down_.size(); ++n) {
    if (down_[n]) out.push_back(static_cast<NodeId>(n));
  }
  return out;
}

void FailureDetector::start(std::function<void(const Event&)> on_event) {
  thread_ = std::thread([this, on_event = std::move(on_event)] {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      cv_.wait_for(lock,
                   std::chrono::duration<double>(config_.check_interval),
                   [this] { return stop_; });
      if (stop_) break;
      lock.unlock();
      for (const Event& ev : poll()) {
        if (on_event) on_event(ev);
      }
      lock.lock();
    }
  });
}

void FailureDetector::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

// ------------------------------------------------------------ HeartbeatPump

HeartbeatPump::HeartbeatPump(cfs::MiniCfs& cfs, FailureDetector& detector,
                             Seconds period)
    : cfs_(&cfs), detector_(&detector), period_(period) {}

HeartbeatPump::~HeartbeatPump() { stop(); }

void HeartbeatPump::start() {
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      lock.unlock();
      const int nodes = cfs_->topology().node_count();
      for (NodeId n = 0; n < nodes; ++n) {
        if (cfs_->node_alive(n)) detector_->record_heartbeat(n);
      }
      lock.lock();
      cv_.wait_for(lock, std::chrono::duration<double>(period_),
                   [this] { return stop_; });
    }
  });
}

void HeartbeatPump::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

}  // namespace ear::failure
