// Failure-event generation and replay drivers.
//
// FailureProcess turns an exponential-lifetime model (independent alternating
// fail/repair renewal processes per node and per rack, the standard Markov
// reliability assumption used by the Facebook warehouse studies in PAPERS.md)
// into a deterministic, seed-reproducible event schedule.  The same schedule
// type also loads from trace files (failure/events.h), so recorded production
// incidents can be replayed.
//
// Two replay drivers cover the repo's two execution layers:
//  * RealTimeFailureDriver — own thread, applies events to a live MiniCfs
//    with simulated seconds compressed into wall-clock time;
//  * schedule_on_engine    — registers every event as a virtual-time event
//    on the discrete-event sim engine.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/units.h"
#include "failure/events.h"
#include "topology/topology.h"

namespace ear::sim {
class Engine;
}

namespace ear::failure {

struct FailureModel {
  Seconds node_mttf = 100;  // mean time to failure per node
  Seconds node_mttr = 10;   // mean downtime per node failure
  Seconds rack_mttf = 0;    // per rack; 0 disables whole-rack failures
  Seconds rack_mttr = 30;
  uint64_t seed = 1;
};

class FailureProcess {
 public:
  FailureProcess(const Topology& topo, const FailureModel& model);

  // All events in [0, horizon), sorted by (time, kind, id).  Each component
  // draws from its own forked RNG stream, so the schedule is a pure function
  // of (topology, model) — identical across calls and runs.
  std::vector<FailureEvent> generate(Seconds horizon) const;

 private:
  const Topology* topo_;
  FailureModel model_;
};

// Replays a schedule against a live MiniCfs from a background thread.
// `time_compression` maps schedule seconds to wall seconds: an event at
// schedule time t fires after t / time_compression wall seconds.
class RealTimeFailureDriver {
 public:
  RealTimeFailureDriver(cfs::MiniCfs& cfs, std::vector<FailureEvent> events,
                        double time_compression = 1.0);
  ~RealTimeFailureDriver();

  RealTimeFailureDriver(const RealTimeFailureDriver&) = delete;
  RealTimeFailureDriver& operator=(const RealTimeFailureDriver&) = delete;

  // Starts replay; `on_event` (optional) runs on the driver thread after
  // each event is applied.
  void start(std::function<void(const FailureEvent&)> on_event = {});
  // Blocks until every event has been applied.
  void wait();
  // Stops early (or joins a finished replay).  Idempotent.
  void stop();

  size_t events_applied() const {
    return applied_.load(std::memory_order_relaxed);
  }

 private:
  void run(std::function<void(const FailureEvent&)> on_event);

  cfs::MiniCfs* cfs_;
  std::vector<FailureEvent> events_;
  double time_compression_;

  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool done_ = false;
  std::atomic<size_t> applied_{0};
};

// Schedules every event on the virtual-time engine; `handler` runs at
// ev.time with the engine clock already advanced.
void schedule_on_engine(sim::Engine& engine,
                        const std::vector<FailureEvent>& events,
                        std::function<void(const FailureEvent&)> handler);

}  // namespace ear::failure
