#include "failure/reliability.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>
#include <tuple>

#include "common/rng.h"

namespace ear::failure {

namespace {

struct Ev {
  Seconds t = 0;
  uint64_t seq = 0;  // tie-break so heap order is deterministic
  bool rack = false;
  bool fail = true;
  int id = 0;
};

struct EvLater {
  bool operator()(const Ev& a, const Ev& b) const {
    return std::tie(a.t, a.seq) > std::tie(b.t, b.seq);
  }
};

}  // namespace

ReliabilityResult estimate_reliability(
    const Topology& topo, const std::vector<StripePlacement>& stripes,
    const ReliabilityConfig& config) {
  const int nodes = topo.node_count();
  const int racks = topo.rack_count();

  // Index: component -> stripes it can affect, so each event touches only
  // the relevant stripes.
  std::vector<std::vector<int>> node_stripes(static_cast<size_t>(nodes));
  std::vector<std::vector<int>> rack_stripes(static_cast<size_t>(racks));
  for (size_t si = 0; si < stripes.size(); ++si) {
    std::vector<bool> node_seen(static_cast<size_t>(nodes), false);
    std::vector<bool> rack_seen(static_cast<size_t>(racks), false);
    for (const auto& holders : stripes[si].blocks) {
      for (const NodeId n : holders) {
        if (!node_seen[static_cast<size_t>(n)]) {
          node_seen[static_cast<size_t>(n)] = true;
          node_stripes[static_cast<size_t>(n)].push_back(
              static_cast<int>(si));
        }
        const RackId r = topo.rack_of(n);
        if (!rack_seen[static_cast<size_t>(r)]) {
          rack_seen[static_cast<size_t>(r)] = true;
          rack_stripes[static_cast<size_t>(r)].push_back(
              static_cast<int>(si));
        }
      }
    }
  }

  // Blocks with no holders at all are dead from t = 0.
  bool lost_at_start = false;
  for (const auto& sp : stripes) {
    int dead = 0;
    for (const auto& holders : sp.blocks) {
      if (holders.empty()) ++dead;
    }
    if (dead > sp.max_lost_blocks) {
      lost_at_start = true;
      break;
    }
  }

  ReliabilityResult result;
  result.trials = config.trials;
  if (lost_at_start) {
    result.losses = config.trials;
    result.p_loss = 1;
    result.p_no_loss = 0;
    result.mttdl = 0;
    return result;
  }

  std::vector<bool> node_down(static_cast<size_t>(nodes));
  std::vector<bool> rack_down(static_cast<size_t>(racks));
  const auto block_dead = [&](const std::vector<NodeId>& holders) {
    for (const NodeId n : holders) {
      if (!node_down[static_cast<size_t>(n)] &&
          !rack_down[static_cast<size_t>(topo.rack_of(n))]) {
        return false;
      }
    }
    return true;
  };
  const auto stripe_lost = [&](int si) {
    const StripePlacement& sp = stripes[static_cast<size_t>(si)];
    int dead = 0;
    for (const auto& holders : sp.blocks) {
      if (block_dead(holders) && ++dead > sp.max_lost_blocks) return true;
    }
    return false;
  };

  Rng master(config.seed);
  double total_time = 0;
  double loss_time_sum = 0;

  for (int trial = 0; trial < config.trials; ++trial) {
    Rng rng = master.fork();
    std::fill(node_down.begin(), node_down.end(), false);
    std::fill(rack_down.begin(), rack_down.end(), false);

    std::priority_queue<Ev, std::vector<Ev>, EvLater> heap;
    uint64_t seq = 0;
    if (config.node_mttf > 0) {
      for (NodeId n = 0; n < nodes; ++n) {
        heap.push({rng.exponential(config.node_mttf), seq++, false, true, n});
      }
    }
    if (config.rack_mttf > 0) {
      for (RackId r = 0; r < racks; ++r) {
        heap.push({rng.exponential(config.rack_mttf), seq++, true, true, r});
      }
    }

    Seconds loss_at = -1;
    while (!heap.empty()) {
      const Ev ev = heap.top();
      heap.pop();
      if (ev.t >= config.horizon) break;
      auto& down = ev.rack ? rack_down : node_down;
      if (ev.fail) {
        down[static_cast<size_t>(ev.id)] = true;
        const Seconds mttr =
            ev.rack ? config.rack_mttr : config.node_mttr;
        heap.push({ev.t + rng.exponential(mttr), seq++, ev.rack, false,
                   ev.id});
        const auto& affected = ev.rack
                                   ? rack_stripes[static_cast<size_t>(ev.id)]
                                   : node_stripes[static_cast<size_t>(ev.id)];
        bool lost = false;
        for (const int si : affected) {
          if (stripe_lost(si)) {
            lost = true;
            break;
          }
        }
        if (lost) {
          loss_at = ev.t;
          break;
        }
      } else {
        down[static_cast<size_t>(ev.id)] = false;
        const Seconds mttf =
            ev.rack ? config.rack_mttf : config.node_mttf;
        heap.push({ev.t + rng.exponential(mttf), seq++, ev.rack, true,
                   ev.id});
      }
    }

    if (loss_at >= 0) {
      ++result.losses;
      total_time += loss_at;
      loss_time_sum += loss_at;
    } else {
      total_time += config.horizon;
    }
  }

  result.p_loss =
      static_cast<double>(result.losses) / static_cast<double>(result.trials);
  result.p_no_loss = 1.0 - result.p_loss;
  result.mttdl = result.losses > 0
                     ? total_time / static_cast<double>(result.losses)
                     : std::numeric_limits<double>::infinity();
  result.mean_time_to_loss =
      result.losses > 0 ? loss_time_sum / static_cast<double>(result.losses)
                        : 0;
  return result;
}

// ------------------------------------------------------ placement builders

std::vector<StripePlacement> replicated_placements(
    const PlacementPolicy& policy) {
  std::vector<StripePlacement> out;
  for (const StripeId id : policy.sealed_stripes()) {
    const StripeInfo& info = policy.stripe(id);
    StripePlacement sp;
    sp.blocks = info.replicas;
    sp.max_lost_blocks = 0;
    out.push_back(std::move(sp));
  }
  return out;
}

std::vector<StripePlacement> encoded_placements(PlacementPolicy& policy) {
  std::vector<StripePlacement> out;
  for (const StripeId id : policy.sealed_stripes()) {
    const EncodePlan plan = policy.plan_encoding(id);
    StripePlacement sp;
    for (const NodeId n : plan.kept) sp.blocks.push_back({n});
    for (const NodeId n : plan.parity) sp.blocks.push_back({n});
    sp.max_lost_blocks = static_cast<int>(plan.parity.size());
    out.push_back(std::move(sp));
  }
  return out;
}

std::vector<StripePlacement> placements_from_snapshot(
    const cfs::NamespaceSnapshot& snap, int k) {
  std::vector<StripePlacement> out;
  std::set<BlockId> covered;
  for (const auto& [id, meta] : snap.stripes) {
    if (!meta.encoded) continue;
    StripePlacement sp;
    std::vector<BlockId> members = meta.data_blocks;
    members.insert(members.end(), meta.parity_blocks.begin(),
                   meta.parity_blocks.end());
    for (const BlockId b : members) {
      covered.insert(b);
      const auto it = snap.blocks.find(b);
      sp.blocks.push_back(it == snap.blocks.end()
                              ? std::vector<NodeId>{}
                              : it->second.locations);
    }
    sp.max_lost_blocks = static_cast<int>(members.size()) - k;
    out.push_back(std::move(sp));
  }
  // Remaining (unencoded) blocks: replication is the only shield.
  for (const auto& [block, status] : snap.blocks) {
    if (covered.count(block)) continue;
    StripePlacement sp;
    sp.blocks.push_back(status.locations);
    sp.max_lost_blocks = 0;
    out.push_back(std::move(sp));
  }
  return out;
}

}  // namespace ear::failure
