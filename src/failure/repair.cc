#include "failure/repair.h"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "datapath/worker_pool.h"
#include "obs/trace.h"
#include "qos/qos.h"

namespace ear::failure {

using Clock = std::chrono::steady_clock;

RepairManager::RepairManager(cfs::MiniCfs& cfs, const RepairConfig& config)
    : cfs_(&cfs),
      config_(config),
      last_refill_(Clock::now()),
      gauge_queue_depth_(
          &obs::Registry::instance().gauge("repair.queue_depth")),
      ctr_repaired_(&obs::Registry::instance().counter("repair.blocks_repaired")),
      ctr_re_replicated_(
          &obs::Registry::instance().counter("repair.blocks_re_replicated")),
      ctr_unrecoverable_(
          &obs::Registry::instance().counter("repair.blocks_unrecoverable")),
      ctr_retries_(&obs::Registry::instance().counter("repair.retries")),
      ctr_bytes_(&obs::Registry::instance().counter("repair.bytes_moved")) {
  // Allow a burst of a few blocks so single repairs never stall at startup.
  tokens_ = static_cast<double>(cfs_->config().block_size) * 4;
}

RepairManager::~RepairManager() { stop(); }

// ------------------------------------------------------------- scheduling

int RepairManager::compute_priority(const cfs::BlockStatus& status,
                                    const cfs::NamespaceSnapshot& snap) const {
  int live = 0;
  for (const NodeId n : status.locations) {
    if (cfs_->node_alive(n)) ++live;
  }
  const int target =
      status.encoded ? 1 : cfs_->config().placement.replication;
  if (live >= target) return -1;  // healthy
  if (live == 0 && status.encoded) {
    // Lost block of an encoded stripe: urgency is how many more failures the
    // stripe tolerates before dropping below k live blocks.
    const auto meta = snap.stripes.find(status.stripe);
    if (meta == snap.stripes.end()) return 0;
    std::vector<BlockId> siblings = meta->second.data_blocks;
    siblings.insert(siblings.end(), meta->second.parity_blocks.begin(),
                    meta->second.parity_blocks.end());
    int live_blocks = 0;
    for (const BlockId sibling : siblings) {
      const auto it = snap.blocks.find(sibling);
      if (it == snap.blocks.end()) continue;
      for (const NodeId n : it->second.locations) {
        if (cfs_->node_alive(n)) {
          ++live_blocks;
          break;
        }
      }
    }
    return std::max(0, live_blocks - cfs_->config().placement.code.k);
  }
  // Replicated (or partially live): one more failure than (live - 1) loses
  // the block.
  return std::max(0, live - 1);
}

void RepairManager::push_task(Task task) {
  if (queued_.insert(task.block).second) {
    queue_.emplace(task.priority, task.block);
  }
  attempts_[task.block] = task.attempts;
  gauge_queue_depth_->set(static_cast<double>(queue_.size()));
}

bool RepairManager::pop_task(Task* task) {
  if (queue_.empty()) return false;
  const auto it = queue_.begin();
  task->priority = it->first;
  task->block = it->second;
  queue_.erase(it);
  queued_.erase(task->block);
  const auto at = attempts_.find(task->block);
  task->attempts = at == attempts_.end() ? 0 : at->second;
  attempts_.erase(task->block);
  gauge_queue_depth_->set(static_cast<double>(queue_.size()));
  return true;
}

int RepairManager::enqueue_snapshot(
    const cfs::NamespaceSnapshot& snap,
    const std::function<bool(const cfs::BlockStatus&)>& filter) {
  int enqueued = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [block, status] : snap.blocks) {
    if (filter && !filter(status)) continue;
    const int priority = compute_priority(status, snap);
    if (priority < 0) continue;
    if (queued_.count(block)) continue;
    push_task({priority, block, 0});
    ++enqueued;
  }
  if (enqueued > 0) pump_locked();
  return enqueued;
}

int RepairManager::schedule_scan() {
  return enqueue_snapshot(cfs_->namespace_snapshot(), nullptr);
}

int RepairManager::schedule_node(NodeId node) {
  return enqueue_snapshot(
      cfs_->namespace_snapshot(), [node](const cfs::BlockStatus& status) {
        return std::find(status.locations.begin(), status.locations.end(),
                         node) != status.locations.end();
      });
}

int RepairManager::schedule_rack(RackId rack) {
  const Topology& topo = cfs_->topology();
  return enqueue_snapshot(
      cfs_->namespace_snapshot(),
      [&topo, rack](const cfs::BlockStatus& status) {
        for (const NodeId n : status.locations) {
          if (topo.rack_of(n) == rack) return true;
        }
        return false;
      });
}

// -------------------------------------------------------------- execution

void RepairManager::throttle(Bytes bytes, bool live_mode) {
  const BytesPerSec rate = config_.repair_bandwidth;
  if (rate <= 0) return;
  // When the transport schedules with QoS, the repair budget is enforced
  // there as the kRepair class rate — metering here too would throttle the
  // same bytes twice.
  if (cfs_->transport().qos_enabled()) return;
  double wait_s = 0;
  {
    std::lock_guard<std::mutex> lock(throttle_mu_);
    const auto now = Clock::now();
    const double burst = static_cast<double>(cfs_->config().block_size) * 4;
    tokens_ = std::min(
        burst,
        tokens_ + std::chrono::duration<double>(now - last_refill_).count() *
                      rate);
    last_refill_ = now;
    if (tokens_ >= static_cast<double>(bytes)) {
      tokens_ -= static_cast<double>(bytes);
    } else {
      wait_s = (static_cast<double>(bytes) - tokens_) / rate;
      tokens_ = 0;
      // The wait itself pays the deficit: push the refill origin past the
      // sleep, or the slept seconds would refill the bucket a second time
      // and the effective rate would double under sustained load.
      last_refill_ = now + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(wait_s));
    }
  }
  // drain() never sleeps: synchronous mode stays deterministic; the bucket
  // still meters so live workers resuming later inherit the debt.
  if (live_mode && wait_s > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(wait_s));
  }
}

RepairManager::Outcome RepairManager::attempt(const Task& task,
                                              bool live_mode) {
  // Everything a repair task moves — decode fetches, re-replication copies —
  // is repair traffic of the system tenant, whichever pool thread runs it.
  qos::QosScope qscope(qos::TrafficClass::kRepair, 0);
  const BlockId block = task.block;
  obs::Span span("repair.task", "failure");
  span.arg("block", block);
  span.arg("priority", task.priority);

  const std::vector<NodeId> locs = cfs_->block_locations(block);
  if (locs.empty()) return Outcome::kNoop;  // deleted or unknown block
  const bool encoded = cfs_->is_block_encoded(block);
  std::vector<NodeId> live;
  for (const NodeId n : locs) {
    if (cfs_->node_alive(n)) live.push_back(n);
  }
  const int target = encoded ? 1 : cfs_->config().placement.replication;
  if (static_cast<int>(live.size()) >= target) return Outcome::kNoop;

  const Bytes block_size = cfs_->config().block_size;
  if (live.empty()) {
    if (!encoded) return Outcome::kRetry;  // only a revival can save it
    const std::set<RackId> avoid = cfs_->live_stripe_racks(block);
    const NodeId dst = cfs_->pick_repair_target({}, avoid);
    if (dst == kInvalidNode) return Outcome::kRetry;
    // Per-codec repair traffic: the codec's cheapest plan for the live
    // helper set (sub-block ranges for Clay/Hitchhiker, a local group for
    // LRC) — k full blocks only when no plan exists.  Scalar RS resolves
    // to exactly the old block_size * k model.
    const Bytes moved = cfs_->planned_repair_bytes(block);
    throttle(moved, live_mode);
    try {
      cfs_->repair_block(block, dst);
    } catch (const std::runtime_error&) {
      return Outcome::kRetry;
    }
    ctr_repaired_->add();
    ctr_bytes_->add(moved);
    std::lock_guard<std::mutex> lock(mu_);
    ++report_.repaired;
    report_.bytes_moved += moved;
    return Outcome::kDone;
  }

  // Under-replicated: add copies until the target, avoiding used racks.
  while (static_cast<int>(live.size()) < target) {
    std::set<RackId> used;
    for (const NodeId n : live) used.insert(cfs_->topology().rack_of(n));
    const NodeId dst = cfs_->pick_repair_target(live, used);
    if (dst == kInvalidNode) return Outcome::kRetry;
    throttle(block_size, live_mode);
    try {
      cfs_->replicate_block(block, dst);
    } catch (const std::runtime_error&) {
      return Outcome::kRetry;
    }
    live.push_back(dst);
    ctr_re_replicated_->add();
    ctr_bytes_->add(block_size);
    std::lock_guard<std::mutex> lock(mu_);
    ++report_.re_replicated;
    report_.bytes_moved += block_size;
  }
  return Outcome::kDone;
}

void RepairManager::finish(const Task& task, Outcome outcome,
                           bool live_mode) {
  switch (outcome) {
    case Outcome::kDone:
      return;
    case Outcome::kNoop: {
      std::lock_guard<std::mutex> lock(mu_);
      ++report_.noop;
      return;
    }
    case Outcome::kUnrecoverable:
      break;
    case Outcome::kRetry: {
      if (task.attempts + 1 < config_.max_attempts) {
        if (live_mode) {
          // Exponential backoff, interruptible by stop().
          const Seconds backoff =
              config_.retry_backoff * static_cast<double>(1 << task.attempts);
          std::unique_lock<std::mutex> lock(mu_);
          cv_.wait_for(lock, std::chrono::duration<double>(backoff),
                       [this] { return stop_; });
          if (stop_) return;
          ++report_.retries;
          push_task({task.priority, task.block, task.attempts + 1});
          cv_.notify_all();
        } else {
          std::lock_guard<std::mutex> lock(mu_);
          ++report_.retries;
          push_task({task.priority, task.block, task.attempts + 1});
        }
        ctr_retries_->add();
        return;
      }
      break;
    }
  }
  ctr_unrecoverable_->add();
  std::lock_guard<std::mutex> lock(mu_);
  ++report_.unrecoverable;
}

void RepairManager::pump_locked() {
  if (!running_ || stop_) return;
  const int wanted = std::min<int>(config_.workers,
                                   static_cast<int>(queue_.size()));
  while (drainers_ < wanted) {
    ++drainers_;
    datapath::WorkerPool::shared().submit([this] { drainer_loop(); });
  }
}

// A drainer services the queue until it runs dry, then exits (pump_locked
// re-submits one when new work arrives).  It must not throw — it runs as a
// shared-pool task — and it never waits on another queued pool task, only
// on the transport and its own retry backoff.
void RepairManager::drainer_loop() {
  while (true) {
    Task task;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_ || !running_ || !pop_task(&task)) {
        --drainers_;
        if (drainers_ == 0) idle_cv_.notify_all();
        return;
      }
      ++active_;
    }
    if (config_.on_task) config_.on_task(task.block, task.priority);
    const Outcome outcome = attempt(task, /*live_mode=*/true);
    finish(task, outcome, /*live_mode=*/true);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void RepairManager::start() {
  std::lock_guard<std::mutex> lock(mu_);
  stop_ = false;
  running_ = true;
  pump_locked();
}

void RepairManager::stop() {
  std::unique_lock<std::mutex> lock(mu_);
  stop_ = true;  // stays set until the next start(); wait_idle() unblocks
  running_ = false;
  cv_.notify_all();  // wake retry-backoff waits
  idle_cv_.notify_all();
  idle_cv_.wait(lock, [this] { return drainers_ == 0; });
}

void RepairManager::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock,
                [this] { return (queue_.empty() && active_ == 0) || stop_; });
}

RepairManager::Report RepairManager::drain() {
  const Report before = report();
  while (true) {
    Task task;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!pop_task(&task)) break;
    }
    if (config_.on_task) config_.on_task(task.block, task.priority);
    const Outcome outcome = attempt(task, /*live_mode=*/false);
    finish(task, outcome, /*live_mode=*/false);
  }
  const Report after = report();
  Report delta;
  delta.re_replicated = after.re_replicated - before.re_replicated;
  delta.repaired = after.repaired - before.repaired;
  delta.unrecoverable = after.unrecoverable - before.unrecoverable;
  delta.noop = after.noop - before.noop;
  delta.retries = after.retries - before.retries;
  delta.bytes_moved = after.bytes_moved - before.bytes_moved;
  return delta;
}

RepairManager::Report RepairManager::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  return report_;
}

size_t RepairManager::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace ear::failure
