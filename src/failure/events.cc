#include "failure/events.h"

#include <cstdio>
#include <istream>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "cfs/minicfs.h"

namespace ear::failure {

bool operator<(const FailureEvent& a, const FailureEvent& b) {
  return std::tie(a.time, a.kind, a.id) < std::tie(b.time, b.kind, b.id);
}

bool operator==(const FailureEvent& a, const FailureEvent& b) {
  return a.time == b.time && a.kind == b.kind && a.id == b.id;
}

const char* kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kNodeFail:
      return "node_fail";
    case EventKind::kNodeRecover:
      return "node_recover";
    case EventKind::kRackFail:
      return "rack_fail";
    case EventKind::kRackRecover:
      return "rack_recover";
  }
  return "unknown";
}

std::string format_event(const FailureEvent& ev) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "t=%.6f %s %d", ev.time,
                kind_name(ev.kind), ev.id);
  return buf;
}

std::optional<FailureEvent> parse_event(const std::string& line) {
  std::istringstream in(line);
  std::string time_tok;
  if (!(in >> time_tok) || time_tok[0] == '#') return std::nullopt;
  if (time_tok.rfind("t=", 0) == 0) time_tok = time_tok.substr(2);
  FailureEvent ev;
  try {
    ev.time = std::stod(time_tok);
  } catch (const std::exception&) {
    throw std::runtime_error("bad failure-trace time: " + line);
  }
  std::string kind;
  if (!(in >> kind >> ev.id)) {
    throw std::runtime_error("bad failure-trace line: " + line);
  }
  if (kind == "node_fail") {
    ev.kind = EventKind::kNodeFail;
  } else if (kind == "node_recover") {
    ev.kind = EventKind::kNodeRecover;
  } else if (kind == "rack_fail") {
    ev.kind = EventKind::kRackFail;
  } else if (kind == "rack_recover") {
    ev.kind = EventKind::kRackRecover;
  } else {
    throw std::runtime_error("unknown failure kind: " + kind);
  }
  return ev;
}

std::vector<FailureEvent> parse_trace(std::istream& in) {
  std::vector<FailureEvent> events;
  std::string line;
  while (std::getline(in, line)) {
    const auto ev = parse_event(line);
    if (!ev) continue;
    if (!events.empty() && ev->time < events.back().time) {
      throw std::runtime_error("failure trace not time-sorted at: " + line);
    }
    events.push_back(*ev);
  }
  return events;
}

void apply_event(cfs::MiniCfs& cfs, const FailureEvent& ev) {
  switch (ev.kind) {
    case EventKind::kNodeFail:
      cfs.kill_node(ev.id);
      break;
    case EventKind::kNodeRecover:
      cfs.revive_node(ev.id);
      break;
    case EventKind::kRackFail:
      cfs.kill_rack(ev.id);
      break;
    case EventKind::kRackRecover:
      cfs.revive_rack(ev.id);
      break;
  }
}

}  // namespace ear::failure
