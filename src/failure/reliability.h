// Monte Carlo reliability analysis: MTTDL and P(data loss by t) for concrete
// placements (paper §III's reliability-preserving claim, quantified).
//
// Each trial runs an independent event-driven simulation of node and rack
// lifetimes (exponential fail/repair, the Markov model of the Facebook
// warehouse studies) over a fixed placement and records the first instant a
// stripe becomes unrecoverable: a replicated block with every copy down, or
// an encoded stripe with more than m = n - k blocks down.  Repairs here are
// component recoveries (the failed machine coming back); block-level repair
// bandwidth can be folded in by shrinking node_mttr to the rebuild time.
//
// Because trials only inspect stripes touching the component that just
// failed, 10^3 trials over 10^2 stripes run in milliseconds — fast enough
// for RR-vs-EAR comparisons inside a bench.
#pragma once

#include <cstdint>
#include <vector>

#include "cfs/minicfs.h"
#include "common/units.h"
#include "placement/policy.h"
#include "topology/topology.h"

namespace ear::failure {

// One stripe's exposure: per block, the nodes holding a copy.  A block is
// dead when every holder is down; the stripe is lost when more than
// max_lost_blocks blocks are dead simultaneously (0 for replicated data,
// n - k for an encoded stripe).
struct StripePlacement {
  std::vector<std::vector<NodeId>> blocks;
  int max_lost_blocks = 0;
};

struct ReliabilityConfig {
  Seconds node_mttf = 1000;
  Seconds node_mttr = 10;
  Seconds rack_mttf = 0;  // per rack; 0 disables rack failures
  Seconds rack_mttr = 30;
  Seconds horizon = 10000;  // observation window per trial
  int trials = 1000;
  uint64_t seed = 1;
};

struct ReliabilityResult {
  int trials = 0;
  int losses = 0;          // trials that lost data within the horizon
  double p_loss = 0;       // losses / trials
  double p_no_loss = 1;
  // Total-time-on-test estimator: sum(min(loss time, horizon)) / losses.
  // Infinity when no trial lost data.
  double mttdl = 0;
  double mean_time_to_loss = 0;  // over lossy trials only; 0 if none
};

ReliabilityResult estimate_reliability(
    const Topology& topo, const std::vector<StripePlacement>& stripes,
    const ReliabilityConfig& config);

// ---- placement extraction -------------------------------------------------

// Pre-encoding exposure of every sealed stripe: each block guarded by its r
// replicas, stripe lost if any block loses all of them.
std::vector<StripePlacement> replicated_placements(
    const PlacementPolicy& policy);

// Post-encoding exposure: plan_encoding() per sealed stripe (single copies
// of k data + m parity blocks, m losses tolerable).  Non-const: planning
// advances the policy's RNG.
std::vector<StripePlacement> encoded_placements(PlacementPolicy& policy);

// Exposure of a live cluster as-is (mixed encoded/unencoded), from a
// NameNode snapshot.
std::vector<StripePlacement> placements_from_snapshot(
    const cfs::NamespaceSnapshot& snap, int k);

}  // namespace ear::failure
