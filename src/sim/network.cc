#include "sim/network.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "obs/trace.h"

namespace ear::sim {

namespace {
// Flows with fewer remaining bytes than this are considered finished
// (guards against floating-point residue).
constexpr double kEpsilonBytes = 1e-3;

// Virtual-time flow spans are spread over a handful of trace lanes (tid on
// pid kSimPid) so concurrent flows render side by side instead of stacking
// on one row.
constexpr int kFlowLanes = 16;

int flow_lane(TransferId id) { return static_cast<int>(id % kFlowLanes); }
}  // namespace

Network::Network(Engine& engine, const Topology& topo, const NetConfig& config)
    : engine_(&engine), topo_(&topo), config_(config) {
  const int n = topo.node_count();
  const int r = topo.rack_count();
  link_capacity_.assign(static_cast<size_t>(2 * n + 2 * r + n), 0.0);
  link_available_at_.assign(link_capacity_.size(), 0.0);
  for (int i = 0; i < n; ++i) {
    link_capacity_[static_cast<size_t>(node_up(i))] = config.node_bw;
    link_capacity_[static_cast<size_t>(node_down(i))] = config.node_bw;
    link_capacity_[static_cast<size_t>(disk(i))] =
        config.disk_bw > 0 ? config.disk_bw : 1e18;
  }
  for (int i = 0; i < r; ++i) {
    link_capacity_[static_cast<size_t>(rack_up(i))] = config.rack_uplink_bw;
    link_capacity_[static_cast<size_t>(rack_down(i))] = config.rack_uplink_bw;
  }
}

TransferId Network::start_transfer(NodeId src, NodeId dst, Bytes size,
                                   std::function<void()> on_complete) {
  assert(size >= 0);
  const TransferId id = next_id_++;
  if (src == dst || size == 0) {
    // Local copy: no network resources involved.
    engine_->schedule_in(0.0, std::move(on_complete));
    return id;
  }

  std::vector<int> links;
  links.push_back(node_up(src));
  const bool cross = !topo_->same_rack(src, dst);
  if (cross) {
    links.push_back(rack_up(topo_->rack_of(src)));
    links.push_back(rack_down(topo_->rack_of(dst)));
    cross_rack_bytes_ += size;
    ++cross_rack_transfers_;
  } else {
    intra_rack_bytes_ += size;
  }
  links.push_back(node_down(dst));
  return start_flow(std::move(links), size, std::move(on_complete),
                    cross ? "sim.flow.cross" : "sim.flow.intra");
}

TransferId Network::start_disk_read(NodeId node, Bytes size,
                                    std::function<void()> on_complete) {
  if (config_.disk_bw <= 0 || size == 0) {
    const TransferId id = next_id_++;
    engine_->schedule_in(0.0, std::move(on_complete));
    return id;
  }
  return start_flow({disk(node)}, size, std::move(on_complete),
                    "sim.disk_read");
}

TransferId Network::start_flow(std::vector<int> links, Bytes size,
                               std::function<void()> on_complete,
                               const char* trace_name) {
  const TransferId id = next_id_++;
  if (config_.sharing == SharingModel::kFifoReservation) {
    if (obs::trace_enabled()) {
      // Wrap the continuation so the whole chunked FIFO transfer appears as
      // one virtual-time span when its last chunk lands.
      on_complete = [trace_name, start = engine_->now(), size, id,
                     engine = engine_, inner = std::move(on_complete)] {
        obs::sim_complete(trace_name, "sim.net", start, engine->now(),
                          flow_lane(id), {{"bytes", size}});
        inner();
      };
    }
    fifo_step(std::move(links), size, std::move(on_complete));
    return id;
  }

  advance_flows();
  Flow flow;
  flow.id = id;
  flow.remaining = static_cast<double>(size);
  flow.on_complete = std::move(on_complete);
  flow.links = std::move(links);
  if (obs::trace_enabled()) {
    flow.trace_name = trace_name;
    flow.start = engine_->now();
    flow.total = size;
  }
  flows_.push_back(std::move(flow));

  recompute_rates();
  schedule_next_completion();
  trace_active_flows();
  return id;
}

void Network::trace_active_flows() const {
  if (!obs::trace_enabled()) return;
  obs::sim_counter("sim.active_flows", engine_->now(),
                   {{"flows", static_cast<int64_t>(flows_.size())}});
}

void Network::fifo_step(std::vector<int> links, Bytes remaining,
                        std::function<void()> on_complete) {
  if (remaining <= 0) {
    on_complete();
    return;
  }
  const Bytes chunk = std::min(remaining, config_.fifo_chunk);
  Seconds done = engine_->now();
  for (const int l : links) {
    auto& avail = link_available_at_[static_cast<size_t>(l)];
    const Seconds start = std::max(engine_->now(), avail);
    avail = start + static_cast<double>(chunk) /
                        link_capacity_[static_cast<size_t>(l)];
    done = std::max(done, avail);
  }
  engine_->schedule_at(
      done, [this, links = std::move(links), remaining, chunk,
             on_complete = std::move(on_complete)]() mutable {
        fifo_step(std::move(links), remaining - chunk,
                  std::move(on_complete));
      });
}

BytesPerSec Network::transfer_rate(TransferId id) const {
  for (const Flow& f : flows_) {
    if (f.id == id) return f.rate;
  }
  return 0.0;
}

void Network::advance_flows() {
  const Seconds now = engine_->now();
  const Seconds dt = now - last_update_;
  last_update_ = now;
  if (dt <= 0) return;
  for (Flow& f : flows_) {
    f.remaining -= f.rate * dt;
    if (f.remaining < 0) f.remaining = 0;
  }
}

void Network::recompute_rates() {
  // Progressive filling: repeatedly find the most congested link (smallest
  // fair share among its unfrozen flows), freeze those flows at that share,
  // subtract, repeat.
  const size_t link_count = link_capacity_.size();
  std::vector<double> residual = link_capacity_;
  std::vector<int> active(link_count, 0);
  for (const Flow& f : flows_) {
    for (const int l : f.links) ++active[static_cast<size_t>(l)];
  }

  std::vector<bool> frozen(flows_.size(), false);
  size_t remaining_flows = flows_.size();
  while (remaining_flows > 0) {
    // Find the bottleneck link.
    double best_share = std::numeric_limits<double>::infinity();
    int bottleneck = -1;
    for (size_t l = 0; l < link_count; ++l) {
      if (active[l] <= 0) continue;
      const double share = residual[l] / active[l];
      if (share < best_share) {
        best_share = share;
        bottleneck = static_cast<int>(l);
      }
    }
    if (bottleneck < 0) break;  // no active links left (shouldn't happen)

    // Freeze every unfrozen flow crossing the bottleneck at best_share.
    for (size_t i = 0; i < flows_.size(); ++i) {
      if (frozen[i]) continue;
      Flow& f = flows_[i];
      if (std::find(f.links.begin(), f.links.end(), bottleneck) ==
          f.links.end()) {
        continue;
      }
      f.rate = best_share;
      frozen[i] = true;
      --remaining_flows;
      for (const int l : f.links) {
        residual[static_cast<size_t>(l)] -= best_share;
        if (residual[static_cast<size_t>(l)] < 0) {
          residual[static_cast<size_t>(l)] = 0;
        }
        --active[static_cast<size_t>(l)];
      }
    }
  }
}

void Network::schedule_next_completion() {
  if (completion_event_ != kInvalidEvent) {
    engine_->cancel(completion_event_);
    completion_event_ = kInvalidEvent;
  }
  if (flows_.empty()) return;

  double earliest = std::numeric_limits<double>::infinity();
  for (const Flow& f : flows_) {
    if (f.rate <= 0) continue;
    earliest = std::min(earliest, f.remaining / f.rate);
  }
  if (!std::isfinite(earliest)) return;  // all rates zero: deadlocked config
  completion_event_ =
      engine_->schedule_in(std::max(earliest, 0.0), [this] {
        completion_event_ = kInvalidEvent;
        on_completion_event();
      });
}

void Network::on_completion_event() {
  advance_flows();

  // Collect and remove finished flows before invoking callbacks, since
  // callbacks commonly start new transfers.
  std::vector<std::function<void()>> callbacks;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->remaining <= kEpsilonBytes) {
      if (it->trace_name != nullptr && obs::trace_enabled()) {
        obs::sim_complete(it->trace_name, "sim.net", it->start,
                          engine_->now(), flow_lane(it->id),
                          {{"bytes", it->total}});
      }
      callbacks.push_back(std::move(it->on_complete));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  recompute_rates();
  schedule_next_completion();
  trace_active_flows();
  for (auto& cb : callbacks) cb();
}

bool Network::check_rates_feasible() const {
  std::vector<double> used(link_capacity_.size(), 0.0);
  for (const Flow& f : flows_) {
    for (const int l : f.links) used[static_cast<size_t>(l)] += f.rate;
  }
  for (size_t l = 0; l < used.size(); ++l) {
    if (used[l] > link_capacity_[l] * (1.0 + 1e-9) + 1e-6) return false;
  }
  // Max-min property: every flow is limited by at least one saturated link.
  for (const Flow& f : flows_) {
    bool bottlenecked = false;
    for (const int l : f.links) {
      if (used[static_cast<size_t>(l)] >=
          link_capacity_[static_cast<size_t>(l)] * (1.0 - 1e-6)) {
        bottlenecked = true;
        break;
      }
    }
    if (!bottlenecked && !flows_.empty()) return false;
  }
  return true;
}

}  // namespace ear::sim
