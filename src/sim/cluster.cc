#include "sim/cluster.h"

#include <algorithm>
#include <cassert>

#include "ecdag/dag.h"
#include "erasure/matrix.h"
#include "obs/trace.h"
#include "placement/ear.h"
#include "placement/monitor.h"
#include "placement/replica_layout.h"

namespace ear::sim {

namespace {
// Virtual-time trace tracks: flow lanes occupy the low tids, encode
// processes get their own rows starting here.
constexpr int kEncodeTrackBase = 100;

int encode_track(int proc_id) { return kEncodeTrackBase + proc_id; }
}  // namespace

// One of the `encode_processes` parallel encoding workers.  Each worker
// pulls the next un-encoded stripe from the shared queue and simulates the
// three-step encoding operation of §II-A: download k data blocks, upload
// n - k parity blocks, delete redundant replicas (free).
struct ClusterSim::EncodeProcess {
  int id = 0;
  size_t stripe_index = 0;  // index into stripes_/plans_ being worked on
  int pending_transfers = 0;
  enum class Phase { kIdle, kDownload, kUpload, kRelocate } phase = Phase::kIdle;
  Seconds phase_start = 0;  // virtual time the current phase began (tracing)
};

ClusterSim::ClusterSim(const SimConfig& config)
    : config_(config),
      topo_(config.racks, config.nodes_per_rack),
      engine_(),
      network_(engine_, topo_, config.net),
      policy_(config.use_ear
                  ? make_encoding_aware_replication(topo_, config.placement,
                                                    config.seed)
                  : make_random_replication(topo_, config.placement,
                                            config.seed)),
      rng_(config.seed ^ 0x9e3779b97f4a7c15ULL) {}

ClusterSim::~ClusterSim() = default;

SimResult ClusterSim::run() {
  // ---- Pre-place the stripes to be encoded (they were written long before
  // the simulated window; their write traffic is not part of the run).
  const int target_stripes =
      config_.encode_processes * config_.stripes_per_process;
  while (static_cast<int>(policy_->sealed_stripes().size()) < target_stripes) {
    const NodeId writer = random_node(topo_, rng_);
    policy_->place_block(next_block_id_++, writer);
  }
  stripes_ = policy_->sealed_stripes();
  stripes_.resize(static_cast<size_t>(target_stripes));
  plans_.reserve(stripes_.size());
  for (const StripeId id : stripes_) {
    plans_.push_back(policy_->plan_encoding(id));
  }

  // ---- Traffic generators.
  if (config_.write_rate > 0) schedule_next_write();
  if (config_.background_rate > 0) schedule_next_background();

  // ---- Encoding fleet starts at encode_start.
  engine_.schedule_at(config_.encode_start, [this] {
    result_.encode_begin = engine_.now();
    for (int p = 0; p < config_.encode_processes; ++p) {
      auto proc = std::make_unique<EncodeProcess>();
      proc->id = p;
      if (obs::trace_enabled()) {
        obs::set_sim_track_name(encode_track(p),
                                "encode-proc-" + std::to_string(p));
      }
      processes_.push_back(std::move(proc));
    }
    processes_running_ = config_.encode_processes;
    for (auto& proc : processes_) start_stripe(*proc);
  });

  engine_.run();

  // ---- Final metrics.
  result_.stripes_encoded = static_cast<int>(stripes_.size());
  const Seconds encode_time = result_.encode_end - result_.encode_begin;
  if (encode_time > 0) {
    const double encoded_mb =
        to_mb(config_.block_size) * config_.placement.code.k *
        static_cast<double>(stripes_.size());
    result_.encode_throughput_mbps = encoded_mb / encode_time;
    result_.write_throughput_mbps /= encode_time;  // accumulated MB -> MB/s
  }
  result_.cross_rack_bytes = network_.cross_rack_bytes();
  result_.intra_rack_bytes = network_.intra_rack_bytes();
  if (const auto* ear_policy =
          dynamic_cast<const EncodingAwareReplication*>(policy_.get())) {
    result_.mean_layout_iterations =
        static_cast<double>(ear_policy->total_layout_iterations()) /
        static_cast<double>(ear_policy->total_blocks_placed());
  }
  return result_;
}

// --------------------------------------------------------------- writes

void ClusterSim::schedule_next_write() {
  engine_.schedule_in(rng_.exponential(1.0 / config_.write_rate),
                      [this] { generate_write(); });
}

void ClusterSim::generate_write() {
  if (generators_stopped_) return;
  schedule_next_write();

  const NodeId writer = random_node(topo_, rng_);
  const BlockPlacement placement =
      policy_->place_block(next_block_id_++, writer);
  const Seconds issued = engine_.now();

  // HDFS write pipeline: writer -> replica2 -> replica3 -> ...  The hops
  // stream concurrently; the request completes when every hop has delivered
  // the full block.
  const auto& replicas = placement.replicas;
  const int hops = static_cast<int>(replicas.size()) - 1;
  auto complete = [this, issued] {
    const Seconds response = engine_.now() - issued;
    ++result_.writes_completed;
    if (issued < config_.encode_start) {
      result_.write_response_before.add(response);
    } else {
      result_.write_response_during.add(response);
    }
    if (engine_.now() >= config_.encode_start && !encoding_done_) {
      // Accumulate MB completed during the encoding window; converted to
      // MB/s at the end of run().
      result_.write_throughput_mbps += to_mb(config_.block_size);
    }
  };
  if (hops <= 0) {
    engine_.schedule_in(0.0, complete);
    return;
  }
  auto remaining = std::make_shared<int>(hops);
  for (int h = 0; h < hops; ++h) {
    network_.start_transfer(replicas[static_cast<size_t>(h)],
                            replicas[static_cast<size_t>(h + 1)],
                            config_.block_size, [remaining, complete] {
                              if (--*remaining == 0) complete();
                            });
  }
}

// ----------------------------------------------------------- background

void ClusterSim::schedule_next_background() {
  engine_.schedule_in(rng_.exponential(1.0 / config_.background_rate),
                      [this] { generate_background(); });
}

void ClusterSim::generate_background() {
  if (generators_stopped_) return;
  schedule_next_background();

  const NodeId src = random_node(topo_, rng_);
  NodeId dst;
  if (rng_.bernoulli(config_.background_cross_fraction)) {
    do {
      dst = random_node(topo_, rng_);
    } while (topo_.same_rack(src, dst));
  } else {
    do {
      dst = random_node_in_rack(topo_, topo_.rack_of(src), rng_);
    } while (dst == src && topo_.rack_size(topo_.rack_of(src)) > 1);
  }
  const auto size = static_cast<Bytes>(std::max(
      1.0, rng_.exponential(static_cast<double>(config_.background_mean_size))));
  network_.start_transfer(src, dst, size, [] {});
}

// -------------------------------------------------------------- encoding

void ClusterSim::start_stripe(EncodeProcess& proc) {
  if (next_stripe_index_ >= stripes_.size()) {
    proc.phase = EncodeProcess::Phase::kIdle;
    if (--processes_running_ == 0) on_all_encoding_done();
    return;
  }
  proc.stripe_index = next_stripe_index_++;
  proc.phase = EncodeProcess::Phase::kDownload;
  proc.phase_start = engine_.now();

  const StripeInfo& stripe = policy_->stripe(stripes_[proc.stripe_index]);
  const EncodePlan& plan = plans_[proc.stripe_index];

  // Step (i): download one replica of each of the k data blocks, preferring
  // a local copy, then a same-rack copy, then any replica.
  proc.pending_transfers = 0;
  const RackId encoder_rack = topo_.rack_of(plan.encoder);
  std::vector<NodeId> sources;
  sources.reserve(stripe.replicas.size());
  for (const auto& replicas : stripe.replicas) {
    NodeId src = kInvalidNode;
    for (const NodeId r : replicas) {
      if (r == plan.encoder) {
        src = r;
        break;
      }
    }
    if (src == kInvalidNode) {
      std::vector<NodeId> same_rack;
      for (const NodeId r : replicas) {
        if (topo_.rack_of(r) == encoder_rack) same_rack.push_back(r);
      }
      if (!same_rack.empty()) {
        src = same_rack[rng_.index(same_rack.size())];
      } else {
        src = replicas[rng_.index(replicas.size())];
        ++result_.encoding_cross_rack_downloads;
      }
    }
    sources.push_back(src);
  }

  if (config_.ecdag_enable) {
    start_stripe_ecdag(proc, sources);
    return;
  }
  if (config_.encode_pipeline_chunks > 1) {
    start_stripe_pipelined(proc, sources);
    return;
  }

  for (const NodeId src : sources) {
    ++proc.pending_transfers;
    auto on_done = [this, &proc] {
      if (--proc.pending_transfers == 0) finish_stripe(proc);
    };
    if (src == plan.encoder) {
      // Local read: charged to the node's disk (free unless disk_bw set).
      network_.start_disk_read(src, config_.block_size, std::move(on_done));
    } else {
      network_.start_transfer(src, plan.encoder, config_.block_size,
                              std::move(on_done));
    }
  }
  if (proc.pending_transfers == 0) {
    engine_.schedule_in(0.0, [this, &proc] { finish_stripe(proc); });
  }
}

// Distributed-encode gather: the same rack-aware partial-sum tree the
// testbed executor runs (src/ecdag/), modelled at whole-block granularity.
// The simulator moves no real bytes, so the coefficient structure is all it
// needs: RS parity rows are dense (every coefficient nonzero), which an
// all-ones m x k matrix reproduces — every rack with more data blocks than
// parity outputs aggregates.  Each remote rack's gather runs as a two-level
// flow: the leaf -> aggregator transfers in parallel, then the
// aggregator -> encoder partials (one per parity) in parallel.  The real
// executor pipelines these per chunk; the two-level barrier here is the
// conservative store-and-forward approximation.
void ClusterSim::start_stripe_ecdag(EncodeProcess& proc,
                                    const std::vector<NodeId>& sources) {
  const EncodePlan& plan = plans_[proc.stripe_index];
  const int k = static_cast<int>(sources.size());
  const int m = config_.placement.code.n - config_.placement.code.k;
  erasure::Matrix dense(m, k);
  for (int j = 0; j < m; ++j) {
    for (int i = 0; i < k; ++i) dense.at(j, i) = 1;
  }
  const ecdag::EcDag dag = ecdag::build_aggregation_dag(
      dense, sources, plan.parity, plan.encoder, topo_);
  const ecdag::FlowPlan flows = ecdag::plan_flows(dag, topo_);

  proc.pending_transfers = static_cast<int>(flows.streams.size()) +
                           static_cast<int>(flows.local_inputs.size());
  auto stream_done = [this, &proc] {
    if (--proc.pending_transfers == 0) finish_stripe(proc);
  };
  for (const int input : flows.local_inputs) {
    // Consumed where it lives: charged to the node's disk, like the legacy
    // encoder-local read.
    network_.start_disk_read(sources[static_cast<size_t>(input)],
                             config_.block_size, stream_done);
  }
  for (const auto& stream : flows.streams) {
    auto level1 = std::make_shared<std::vector<ecdag::Hop>>();
    auto level2 = std::make_shared<std::vector<ecdag::Hop>>();
    for (const ecdag::Hop& hop : stream) {
      (hop.dst == plan.encoder ? level2 : level1)->push_back(hop);
    }
    auto run_level = [this](const std::vector<ecdag::Hop>& hops,
                            std::function<void()> done) {
      if (hops.empty()) {
        done();
        return;
      }
      auto remaining = std::make_shared<int>(static_cast<int>(hops.size()));
      for (const ecdag::Hop& hop : hops) {
        network_.start_transfer(hop.src, hop.dst, config_.block_size,
                                [remaining, done] {
                                  if (--*remaining == 0) done();
                                });
      }
    };
    run_level(*level1, [run_level, level2, stream_done] {
      run_level(*level2, stream_done);
    });
  }
  if (proc.pending_transfers == 0) {
    engine_.schedule_in(0.0, [this, &proc] { finish_stripe(proc); });
  }
}

// Chunk-pipelined encode (SimConfig::encode_pipeline_chunks > 1): the
// testbed's staged fetch -> compute -> upload ladder at chunk granularity.
// Stage rules mirror datapath::StagedPipeline: downloads run serially per
// chunk (one fetch lane), compute consumes downloaded chunks in order, and
// parity uploads trail compute in order — so chunk c + 1's download overlaps
// chunk c's compute and chunk c - 1's upload, and a stripe costs roughly
// max(download, compute, upload) instead of their sum.  Per-chunk compute is
// encode_compute_seconds / chunks.  The virtual clock, not threads, provides
// the overlap; at chunks == 1 callers take the legacy serial branch instead.
void ClusterSim::start_stripe_pipelined(EncodeProcess& proc,
                                        const std::vector<NodeId>& sources) {
  const EncodePlan& plan = plans_[proc.stripe_index];
  const int chunks = config_.encode_pipeline_chunks;
  const Seconds compute_per_chunk =
      config_.encode_compute_seconds / static_cast<double>(chunks);

  struct State {
    int chunks = 0;
    int downloaded = 0;
    int computed = 0;
    int uploaded = 0;
    bool computing = false;
    bool uploading = false;
    Seconds download_begin = 0;
    Seconds upload_begin = -1;
    std::function<void(int)> start_download;
    std::function<void()> maybe_compute;
    std::function<void()> maybe_upload;
  };
  auto st = std::make_shared<State>();
  st->chunks = chunks;
  st->download_begin = engine_.now();

  const Bytes base = config_.block_size / chunks;
  const Bytes rem = config_.block_size % chunks;
  auto chunk_len = [base, rem](int c) {
    return base + (static_cast<Bytes>(c) < rem ? 1 : 0);
  };

  st->start_download = [this, st, &proc, sources, &plan, chunk_len](int c) {
    // One completion per source plus a sentinel so `done` fires exactly once
    // even when every source is the encoder itself (all disk reads free).
    auto pending = std::make_shared<int>(1);
    auto done = [this, st, &proc, c, pending] {
      if (--*pending != 0) return;
      st->downloaded = c + 1;
      if (c + 1 < st->chunks) {
        st->start_download(c + 1);
      } else if (obs::trace_enabled()) {
        obs::sim_complete("sim.encode.download", "sim.encode",
                          st->download_begin, engine_.now(),
                          encode_track(proc.id),
                          {{"stripe", stripes_[proc.stripe_index]}});
      }
      st->maybe_compute();
    };
    const Bytes len = chunk_len(c);
    for (const NodeId src : sources) {
      ++*pending;
      if (src == plan.encoder) {
        network_.start_disk_read(src, len, done);
      } else {
        network_.start_transfer(src, plan.encoder, len, done);
      }
    }
    engine_.schedule_in(0.0, done);  // release the sentinel
  };

  st->maybe_compute = [this, st, compute_per_chunk] {
    if (st->computing || st->computed >= st->downloaded) return;
    st->computing = true;
    engine_.schedule_in(compute_per_chunk, [st] {
      st->computing = false;
      ++st->computed;
      st->maybe_compute();
      st->maybe_upload();
    });
  };

  st->maybe_upload = [this, st, &proc, &plan, chunk_len] {
    if (st->uploading || st->uploaded >= st->computed) return;
    st->uploading = true;
    if (st->upload_begin < 0) st->upload_begin = engine_.now();
    const int c = st->uploaded;
    auto pending = std::make_shared<int>(1);
    auto done = [this, st, &proc, pending] {
      if (--*pending != 0) return;
      st->uploading = false;
      ++st->uploaded;
      if (st->uploaded < st->chunks) {
        st->maybe_upload();
        return;
      }
      // Whole stripe pipelined through.  Hand the tail (relocation ablation,
      // completion bookkeeping, next stripe) to finish_stripe's kUpload arm,
      // and break the State's self-referential std::function cycle so the
      // shared_ptr can actually free it.
      proc.phase = EncodeProcess::Phase::kUpload;
      proc.phase_start = st->upload_begin;
      st->start_download = nullptr;
      st->maybe_compute = nullptr;
      st->maybe_upload = nullptr;
      finish_stripe(proc);
    };
    for (const NodeId dst : plan.parity) {
      if (dst == plan.encoder) continue;
      ++*pending;
      network_.start_transfer(plan.encoder, dst, chunk_len(c), done);
    }
    engine_.schedule_in(0.0, done);  // release the sentinel
  };

  st->start_download(0);
}

void ClusterSim::finish_stripe(EncodeProcess& proc) {
  const EncodePlan& plan = plans_[proc.stripe_index];

  if (proc.phase == EncodeProcess::Phase::kDownload) {
    if (obs::trace_enabled()) {
      const int64_t stripe = stripes_[proc.stripe_index];
      obs::sim_complete("sim.encode.download", "sim.encode", proc.phase_start,
                        engine_.now(), encode_track(proc.id),
                        {{"stripe", stripe}});
      // Compute duration is a fixed model parameter, so its span can be
      // emitted at dispatch time.
      obs::sim_complete("sim.encode.compute", "sim.encode", engine_.now(),
                        engine_.now() + config_.encode_compute_seconds,
                        encode_track(proc.id), {{"stripe", stripe}});
    }
    // Step (ii): parity computation, then upload of the n - k parity
    // blocks.
    proc.phase = EncodeProcess::Phase::kUpload;
    auto begin_uploads = [this, &proc, &plan] {
      proc.phase_start = engine_.now();
      proc.pending_transfers = 0;
      for (const NodeId dst : plan.parity) {
        if (dst == plan.encoder) continue;
        ++proc.pending_transfers;
        network_.start_transfer(plan.encoder, dst, config_.block_size,
                                [this, &proc] {
                                  if (--proc.pending_transfers == 0) {
                                    finish_stripe(proc);
                                  }
                                });
      }
      if (proc.pending_transfers == 0) {
        engine_.schedule_in(0.0, [this, &proc] { finish_stripe(proc); });
      }
    };
    engine_.schedule_in(config_.encode_compute_seconds, begin_uploads);
    return;
  }

  if (proc.phase == EncodeProcess::Phase::kUpload && obs::trace_enabled()) {
    obs::sim_complete("sim.encode.upload", "sim.encode", proc.phase_start,
                      engine_.now(), encode_track(proc.id),
                      {{"stripe", stripes_[proc.stripe_index]}});
  }

  if (proc.phase == EncodeProcess::Phase::kUpload &&
      config_.simulate_relocation) {
    // Ablation: PlacementMonitor check + BlockMover traffic (RR pays; EAR's
    // layouts comply by construction so the plan is empty).
    StripeLayout layout;
    layout.nodes = plan.kept;
    layout.nodes.insert(layout.nodes.end(), plan.parity.begin(),
                        plan.parity.end());
    const PlacementMonitor monitor(topo_, config_.placement.code);
    const auto moves = monitor.plan_relocations(layout, config_.placement.c);
    if (!moves.empty()) {
      proc.phase = EncodeProcess::Phase::kRelocate;
      proc.phase_start = engine_.now();
      proc.pending_transfers = static_cast<int>(moves.size());
      result_.relocations += static_cast<int64_t>(moves.size());
      result_.relocation_bytes +=
          static_cast<int64_t>(moves.size()) * config_.block_size;
      for (const auto& mv : moves) {
        network_.start_transfer(mv.from, mv.to, config_.block_size,
                                [this, &proc] {
                                  if (--proc.pending_transfers == 0) {
                                    finish_stripe(proc);
                                  }
                                });
      }
      return;
    }
  }

  if (proc.phase == EncodeProcess::Phase::kRelocate && obs::trace_enabled()) {
    obs::sim_complete("sim.encode.relocate", "sim.encode", proc.phase_start,
                      engine_.now(), encode_track(proc.id),
                      {{"stripe", stripes_[proc.stripe_index]}});
  }

  // Step (iii): replica deletion is metadata-only.  Record completion.
  result_.stripe_completions.emplace_back(
      engine_.now(),
      static_cast<int>(result_.stripe_completions.size()) + 1);
  start_stripe(proc);
}

void ClusterSim::on_all_encoding_done() {
  encoding_done_ = true;
  generators_stopped_ = true;
  result_.encode_end = engine_.now();
  if (config_.repair_drill_blocks > 0) run_repair_drill();
}

// Post-encode repair drill: replay `repair_drill_blocks` single-block
// repairs through the network, each moving exactly what the codec's
// cheapest RepairPlan names per helper — not the hardcoded k-full-blocks
// model the simulator used to assume for every family.  The drill runs
// after encode_end, so encode throughput numbers are unaffected; drill
// traffic does land in the cross/intra-rack byte totals.
void ClusterSim::run_repair_drill() {
  const int n = config_.placement.code.n;
  const int k = config_.placement.code.k;
  const auto codec = erasure::make_codec(config_.codec_family, n, k);
  const Seconds drill_begin = engine_.now();
  auto remaining = std::make_shared<int>(0);
  auto transfer_done = [this, remaining, drill_begin] {
    if (--*remaining == 0) {
      result_.repair_drill_seconds = engine_.now() - drill_begin;
    }
  };

  for (int d = 0; d < config_.repair_drill_blocks; ++d) {
    const EncodePlan& plan = plans_[rng_.index(plans_.size())];
    // Post-encode stripe layout: kept data nodes then parity nodes, in
    // stripe position order.
    std::vector<NodeId> layout = plan.kept;
    layout.insert(layout.end(), plan.parity.begin(), plan.parity.end());
    const int lost = static_cast<int>(rng_.index(layout.size()));
    std::vector<int> helpers;
    for (int pos = 0; pos < static_cast<int>(layout.size()); ++pos) {
      if (pos != lost) helpers.push_back(pos);
    }
    // Rebuild destination: any node not already holding a stripe block.
    NodeId dst = random_node(topo_, rng_);
    while (std::find(layout.begin(), layout.end(), dst) != layout.end()) {
      dst = random_node(topo_, rng_);
    }

    erasure::RepairPlan rp;
    if (codec->plan_repair(lost, helpers, &rp)) {
      for (const erasure::RepairSource& src : rp.sources) {
        const Bytes bytes = src.bytes(config_.block_size, rp.alpha);
        ++*remaining;
        result_.repair_bytes += static_cast<int64_t>(bytes);
        network_.start_transfer(layout[static_cast<size_t>(src.id)], dst,
                                bytes, transfer_done);
      }
    } else {
      // No schedule-driven plan (packet codes, degenerate patterns): the
      // whole-stripe decode ships k full blocks.
      for (int h = 0; h < k; ++h) {
        ++*remaining;
        result_.repair_bytes += static_cast<int64_t>(config_.block_size);
        network_.start_transfer(
            layout[static_cast<size_t>(helpers[static_cast<size_t>(h)])], dst,
            config_.block_size, transfer_done);
      }
    }
    ++result_.repairs_simulated;
  }
}

}  // namespace ear::sim
