#include "sim/metrics.h"

#include <cstdio>

#include "common/csv.h"

namespace ear::sim {

bool write_stripe_completion_csv(const SimResult& result,
                                 const std::string& path) {
  CsvWriter f(path);
  if (!f.ok()) return false;
  std::fprintf(f.get(), "time_s,stripes_encoded\n");
  for (const auto& [t, count] : result.stripe_completions) {
    std::fprintf(f.get(), "%.6f,%d\n", t, count);
  }
  return f.close();
}

bool write_response_times_csv(const SimResult& result,
                              const std::string& path) {
  CsvWriter f(path);
  if (!f.ok()) return false;
  std::fprintf(f.get(), "phase,response_s\n");
  for (const double r : result.write_response_before.samples()) {
    std::fprintf(f.get(), "before,%.6f\n", r);
  }
  for (const double r : result.write_response_during.samples()) {
    std::fprintf(f.get(), "during,%.6f\n", r);
  }
  return f.close();
}

std::string summarize(const SimResult& result) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "stripes=%d encode_s=%.3f encode_mbps=%.2f write_mbps=%.2f "
      "write_before_s=%.4f write_during_s=%.4f cross_gb=%.3f "
      "xdl=%lld relocations=%lld draws=%.3f",
      result.stripes_encoded, result.encode_end - result.encode_begin,
      result.encode_throughput_mbps, result.write_throughput_mbps,
      result.write_response_before.empty()
          ? 0.0
          : result.write_response_before.mean(),
      result.write_response_during.empty()
          ? 0.0
          : result.write_response_during.mean(),
      result.cross_rack_bytes / 1e9,
      static_cast<long long>(result.encoding_cross_rack_downloads),
      static_cast<long long>(result.relocations),
      result.mean_layout_iterations);
  return buf;
}

}  // namespace ear::sim
