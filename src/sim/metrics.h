// Export helpers for simulation results: CSV series suitable for gnuplot /
// matplotlib, so every figure of the paper can be re-plotted from raw runs.
#pragma once

#include <string>

#include "sim/cluster.h"

namespace ear::sim {

// Writes the (time, cumulative stripes encoded) curve — Figure 12's series.
// Returns false on I/O failure with errno describing the cause.
[[nodiscard]] bool write_stripe_completion_csv(const SimResult& result,
                                               const std::string& path);

// Writes per-request write response times as (issue_window, response_s)
// rows, split into before/during encoding.  Returns false on I/O failure
// with errno describing the cause.
[[nodiscard]] bool write_response_times_csv(const SimResult& result,
                                            const std::string& path);

// One-line machine-readable summary (key=value pairs) for sweep scripts.
std::string summarize(const SimResult& result);

}  // namespace ear::sim
