// Flow-level network model of the CFS topology (paper Figure 1 and §V-B's
// Topology module).
//
// Links:
//   * per node: an uplink (node -> top-of-rack switch) and a downlink,
//     each of capacity `node_bw`;
//   * per rack: an uplink (ToR -> core) and a downlink, each of capacity
//     `rack_uplink_bw`.  Cross-rack transfers traverse four links; intra-rack
//     transfers only the two node links — making cross-rack bandwidth the
//     shared, scarce resource, as in the paper.
//
// Active transfers are fluid flows; whenever a flow starts or finishes, rates
// are re-assigned max-min fairly (progressive filling), which is the standard
// fluid approximation of per-connection TCP fairness.  A flow's completion
// event fires when its remaining bytes reach zero at the current rate.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/units.h"
#include "sim/engine.h"
#include "topology/topology.h"

namespace ear::sim {

// How concurrent flows share a link:
//  * kMaxMin — fluid max-min fair sharing (TCP-like); rates are re-assigned
//    whenever the flow set changes.  Default, used for the B.2 sweeps.
//  * kFifoReservation — each link hands out chunk-sized time slots in FIFO
//    order, the CSIM-style "hold the resource for size/bandwidth" model and
//    the virtual-time twin of cfs::ThrottledTransport.  Used by the
//    simulator-validation experiment so both sides queue identically.
enum class SharingModel { kMaxMin, kFifoReservation };

struct NetConfig {
  BytesPerSec node_bw = gbps(1);
  BytesPerSec rack_uplink_bw = gbps(1);
  SharingModel sharing = SharingModel::kMaxMin;
  Bytes fifo_chunk = 64_KB;  // reservation granularity in FIFO mode
  // Per-node disk bandwidth for local reads (start_disk_read); 0 = free.
  BytesPerSec disk_bw = 0;
};

using TransferId = uint64_t;

class Network {
 public:
  Network(Engine& engine, const Topology& topo, const NetConfig& config);

  // Starts a transfer of `size` bytes from src to dst; `on_complete` runs
  // when the last byte arrives.  A src == dst transfer is local (no network)
  // and completes immediately (next event).
  TransferId start_transfer(NodeId src, NodeId dst, Bytes size,
                            std::function<void()> on_complete);

  // Charges a local disk read on `node` (per-node disk resource); completes
  // immediately when disk_bw == 0.
  TransferId start_disk_read(NodeId node, Bytes size,
                             std::function<void()> on_complete);

  int active_transfers() const { return static_cast<int>(flows_.size()); }

  // Byte accounting (paper's cross-rack traffic argument).
  int64_t cross_rack_bytes() const { return cross_rack_bytes_; }
  int64_t intra_rack_bytes() const { return intra_rack_bytes_; }
  int64_t cross_rack_transfers() const { return cross_rack_transfers_; }

  // Current max-min rate of a transfer (testing hook); 0 if unknown/local.
  BytesPerSec transfer_rate(TransferId id) const;

  // Invariant check (testing hook): per-link allocated rate <= capacity and
  // allocation is max-min fair.  Returns false on violation.
  bool check_rates_feasible() const;

  const Topology& topology() const { return *topo_; }

 private:
  struct Flow {
    TransferId id;
    std::vector<int> links;
    double remaining;  // bytes
    BytesPerSec rate = 0.0;
    std::function<void()> on_complete;
    // obs trace context (set only while tracing is enabled).
    const char* trace_name = nullptr;
    Seconds start = 0;
    Bytes total = 0;
  };

  // Link layout: [0, N) node up, [N, 2N) node down,
  // [2N, 2N+R) rack up, [2N+R, 2N+2R) rack down.
  int node_up(NodeId n) const { return n; }
  int node_down(NodeId n) const { return topo_->node_count() + n; }
  int rack_up(RackId r) const { return 2 * topo_->node_count() + r; }
  int rack_down(RackId r) const {
    return 2 * topo_->node_count() + topo_->rack_count() + r;
  }
  int disk(NodeId n) const {
    return 2 * topo_->node_count() + 2 * topo_->rack_count() + n;
  }

  // Registers a flow over the given links (common path of start_transfer /
  // start_disk_read).  `trace_name` labels the flow's span in traces.
  TransferId start_flow(std::vector<int> links, Bytes size,
                        std::function<void()> on_complete,
                        const char* trace_name);
  void trace_active_flows() const;

  void advance_flows();
  void recompute_rates();
  void schedule_next_completion();
  void on_completion_event();

  // FIFO mode: reserves the next chunk of a transfer on all its links and
  // schedules the continuation.
  void fifo_step(std::vector<int> links, Bytes remaining,
                 std::function<void()> on_complete);

  Engine* engine_;
  const Topology* topo_;
  NetConfig config_;
  std::vector<BytesPerSec> link_capacity_;
  std::vector<Seconds> link_available_at_;  // FIFO mode reservation horizon
  std::vector<Flow> flows_;
  Seconds last_update_ = 0.0;
  EventId completion_event_ = kInvalidEvent;
  TransferId next_id_ = 1;
  int64_t cross_rack_bytes_ = 0;
  int64_t intra_rack_bytes_ = 0;
  int64_t cross_rack_transfers_ = 0;
};

}  // namespace ear::sim
