#include "sim/engine.h"

#include <cassert>
#include <utility>

#include "obs/metrics.h"

namespace ear::sim {

namespace {
// Registered once; instruments are never deallocated, so the cached
// reference stays valid for the process lifetime (add() is gated
// internally and a no-op while metrics are disabled).
obs::Counter& events_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("sim.events_executed");
  return c;
}
}  // namespace

EventId Engine::schedule_at(Seconds t, Callback cb) {
  assert(t >= now_ - 1e-12 && "cannot schedule in the past");
  if (t < now_) t = now_;
  const Key key{t, next_seq_++};
  const EventId id = key.seq;  // seq doubles as the event id (never 0)
  calendar_.emplace(key, id);
  pending_.emplace(id, std::make_pair(key, std::move(cb)));
  return id;
}

bool Engine::step() {
  while (!calendar_.empty()) {
    const auto it = calendar_.begin();
    const Key key = it->first;
    const EventId id = it->second;
    calendar_.erase(it);
    const auto pending_it = pending_.find(id);
    if (pending_it == pending_.end()) continue;  // cancelled
    Callback cb = std::move(pending_it->second.second);
    pending_.erase(pending_it);
    now_ = key.time;
    ++executed_;
    events_counter().add();
    cb();
    return true;
  }
  return false;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(Seconds t) {
  while (!calendar_.empty()) {
    // Skip over cancelled entries at the head.
    const auto it = calendar_.begin();
    if (pending_.find(it->second) == pending_.end()) {
      calendar_.erase(it);
      continue;
    }
    if (it->first.time > t) break;
    step();
  }
  now_ = t;
}

}  // namespace ear::sim
