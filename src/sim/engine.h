// Discrete-event simulation engine (our replacement for CSIM 20, §V-B).
//
// A minimal calendar: events are (time, callback) pairs executed in
// non-decreasing time order; ties break by insertion order so runs are
// deterministic.  Components schedule follow-up events from inside
// callbacks.  Events can be cancelled (used by the network model, which
// reschedules the next-completion event whenever the flow set changes).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>

#include "common/units.h"

namespace ear::sim {

using EventId = uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Engine {
 public:
  using Callback = std::function<void()>;

  Seconds now() const { return now_; }

  // Schedules `cb` at absolute simulated time `t` (>= now).
  EventId schedule_at(Seconds t, Callback cb);

  // Schedules `cb` after `dt` simulated seconds.
  EventId schedule_in(Seconds dt, Callback cb) {
    return schedule_at(now_ + dt, std::move(cb));
  }

  // Cancels a pending event; a no-op if it already ran or was cancelled.
  void cancel(EventId id) { pending_.erase(id); }

  bool has_pending() const { return !pending_.empty(); }
  size_t pending_count() const { return pending_.size(); }

  // Executes the next event.  Returns false when the calendar is empty.
  bool step();

  // Runs until the calendar empties.
  void run();

  // Runs while events exist with time <= t, then sets now() = t.
  void run_until(Seconds t);

  uint64_t events_executed() const { return executed_; }

 private:
  struct Key {
    Seconds time;
    uint64_t seq;
    bool operator<(const Key& o) const {
      return time != o.time ? time < o.time : seq < o.seq;
    }
  };

  Seconds now_ = 0.0;
  uint64_t next_seq_ = 1;
  uint64_t executed_ = 0;
  std::map<Key, EventId> calendar_;
  std::map<EventId, std::pair<Key, Callback>> pending_;
};

}  // namespace ear::sim
