// Discrete-event CFS simulation (paper §V-B, Figure 11).
//
// Mirrors the paper's simulator structure: a PlacementManager (our
// PlacementPolicy) decides replica and encoded-block locations, a
// TrafficManager generates write / encoding / background traffic streams, and
// the Topology module (our Network) arbitrates link bandwidth.
//
// Timeline of one run:
//   t = 0 .......... write and background Poisson streams start
//   t = encode_start encoding of the pre-placed stripes starts
//                    (encode_processes parallel workers, each encoding its
//                     share of stripes sequentially)
//   encoding ends .. generators stop; the run drains remaining transfers
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/units.h"
#include "erasure/codec.h"
#include "placement/policy.h"
#include "sim/network.h"

namespace ear::sim {

struct SimConfig {
  int racks = 20;
  int nodes_per_rack = 20;
  NetConfig net{};

  PlacementConfig placement{};  // default (14,10), r = 3, c = 1
  bool use_ear = true;

  Bytes block_size = 64_MB;

  // Write stream: Poisson arrivals, one block per request (§V-B).
  double write_rate = 1.0;  // requests/s
  // Background stream: Poisson arrivals of exponentially-sized transfers.
  double background_rate = 1.0;  // requests/s
  Bytes background_mean_size = 64_MB;
  double background_cross_fraction = 0.5;  // cross:intra = 1:1

  Seconds encode_start = 30.0;
  int encode_processes = 20;
  int stripes_per_process = 50;

  // Ablation: make RR pay for the BlockMover relocations it needs after
  // encoding (the paper notes it does NOT simulate this, over-estimating
  // RR; enabling this shows the extra gap).
  bool simulate_relocation = false;

  // Parity computation time per stripe, inserted between the downloads and
  // the uploads.  The validation experiment sets this to the measured
  // Reed-Solomon encode time of the testbed; 0 models compute as free.
  Seconds encode_compute_seconds = 0.0;

  // Chunk-pipelined encode: split each block into this many chunks and
  // overlap the stages the way the testbed's StagedPipeline does — chunk
  // c + 1 downloads while chunk c computes and chunk c - 1's parity uploads
  // (downloads serial per chunk, compute in order, uploads trailing).
  // 1 (default) is the legacy serial download -> compute -> upload model,
  // exactly; > 1 lets Figure 13 sweeps predict the testbed's pipelined
  // numbers.
  int encode_pipeline_chunks = 1;

  // Distributed-encode DAGs (src/ecdag/): each remote rack XOR-combines its
  // data blocks locally and ships one partial per parity block across the
  // core switch instead of every raw block, mirroring
  // CfsConfig::ecdag_enable on the testbed.  The gather of each rack runs
  // as a two-level flow (leaf -> aggregator, then aggregator -> encoder).
  bool ecdag_enable = false;

  // Post-encode repair drill: after encoding completes, this many
  // single-block failures are drawn uniformly over the encoded stripes and
  // each one's repair traffic is replayed through the network — the
  // cheapest RepairPlan of `codec_family` decides how many bytes every
  // helper ships (sub-block ranges for Clay/Hitchhiker, a local group for
  // LRC, k full blocks for scalar RS).  0 (default) skips the drill: the
  // pre-codec simulation, exactly.
  int repair_drill_blocks = 0;
  erasure::CodecFamily codec_family = erasure::CodecFamily::kRS;

  uint64_t seed = 1;
};

struct SimResult {
  Seconds encode_begin = 0;
  Seconds encode_end = 0;
  int stripes_encoded = 0;

  // Total data encoded (k * block_size per stripe) / encoding duration.
  double encode_throughput_mbps = 0;
  // Write payload completed during the encoding window / its duration.
  double write_throughput_mbps = 0;

  Summary write_response_before;  // arrivals before encoding started
  Summary write_response_during;  // arrivals while encoding ran

  // (time, cumulative stripes) curve — Figure 12.
  std::vector<std::pair<Seconds, int>> stripe_completions;

  int64_t cross_rack_bytes = 0;
  int64_t intra_rack_bytes = 0;
  int64_t encoding_cross_rack_downloads = 0;  // data blocks fetched cross-rack

  // RR availability repair work (EAR: always zero).
  int64_t relocations = 0;
  int64_t relocation_bytes = 0;

  // EAR layout-retry statistics (Theorem 1); 0 for RR.
  double mean_layout_iterations = 0;

  int writes_completed = 0;

  // Repair drill (when SimConfig::repair_drill_blocks > 0).
  int repairs_simulated = 0;
  int64_t repair_bytes = 0;          // network bytes the repair plans moved
  Seconds repair_drill_seconds = 0;  // drill duration in virtual time
};

class ClusterSim {
 public:
  explicit ClusterSim(const SimConfig& config);
  ~ClusterSim();

  ClusterSim(const ClusterSim&) = delete;
  ClusterSim& operator=(const ClusterSim&) = delete;

  // Runs the whole scenario to completion and returns the metrics.
  SimResult run();

 private:
  struct EncodeProcess;

  void generate_write();
  void schedule_next_write();
  void generate_background();
  void schedule_next_background();
  void start_stripe(EncodeProcess& proc);
  void start_stripe_ecdag(EncodeProcess& proc,
                          const std::vector<NodeId>& sources);
  void start_stripe_pipelined(EncodeProcess& proc,
                              const std::vector<NodeId>& sources);
  void finish_stripe(EncodeProcess& proc);
  void on_all_encoding_done();
  void run_repair_drill();

  SimConfig config_;
  Topology topo_;
  Engine engine_;
  Network network_;
  std::unique_ptr<PlacementPolicy> policy_;
  Rng rng_;

  std::vector<StripeId> stripes_;          // stripes to encode
  std::vector<EncodePlan> plans_;          // parallel to stripes_
  std::vector<std::unique_ptr<EncodeProcess>> processes_;
  size_t next_stripe_index_ = 0;
  int processes_running_ = 0;
  bool encoding_done_ = false;
  bool generators_stopped_ = false;

  BlockId next_block_id_ = 0;
  int writes_in_flight_ = 0;

  SimResult result_;
};

}  // namespace ear::sim
