#include "datapath/block_cache.h"

#include <algorithm>

namespace ear::datapath {

BlockCache::BlockCache(Bytes capacity)
    : capacity_(capacity > 0 ? capacity : 0),
      ctr_hits_(&obs::Registry::instance().counter("datapath.cache.hits")),
      ctr_misses_(&obs::Registry::instance().counter("datapath.cache.misses")),
      ctr_evictions_(
          &obs::Registry::instance().counter("datapath.cache.evictions")),
      ctr_invalidations_(
          &obs::Registry::instance().counter("datapath.cache.invalidations")),
      gauge_bytes_(&obs::Registry::instance().gauge("datapath.cache.bytes")) {}

std::optional<BlockBuffer> BlockCache::lookup(int reader, int64_t block) {
  if (!enabled()) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(Key{reader, block});
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    ctr_misses_->add();
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // most recently used
  hits_.fetch_add(1, std::memory_order_relaxed);
  ctr_hits_->add();
  return it->second->bytes;  // shared reference, no byte copy
}

void BlockCache::insert(int reader, int64_t block, BlockBuffer bytes) {
  if (!enabled()) return;
  const Bytes size = static_cast<Bytes>(bytes.size());
  if (size <= 0 || size > capacity_) return;
  std::lock_guard<std::mutex> lock(mu_);
  const Key key{reader, block};
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Newest bytes win (a repair may have rewritten the block between the
    // two fills), and the entry becomes most recently used.
    lru_.splice(lru_.begin(), lru_, it->second);
    used_ += size - static_cast<Bytes>(it->second->bytes.size());
    it->second->bytes = std::move(bytes);
    while (used_ > capacity_ && lru_.size() > 1) {
      drop_locked(std::prev(lru_.end()));
      evictions_.fetch_add(1, std::memory_order_relaxed);
      ctr_evictions_->add();
    }
    set_bytes_gauge_locked();
    return;
  }
  while (used_ + size > capacity_ && !lru_.empty()) {
    drop_locked(std::prev(lru_.end()));
    evictions_.fetch_add(1, std::memory_order_relaxed);
    ctr_evictions_->add();
  }
  lru_.push_front(Entry{key, std::move(bytes)});
  index_.emplace(key, lru_.begin());
  auto& readers = readers_of_[block];
  if (std::find(readers.begin(), readers.end(), reader) == readers.end()) {
    readers.push_back(reader);
  }
  used_ += size;
  set_bytes_gauge_locked();
}

void BlockCache::invalidate_block(int64_t block) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto found = readers_of_.find(block);
  if (found == readers_of_.end()) return;
  // drop_locked edits readers_of_[block] in place; iterate a copy.
  const std::vector<int> readers = found->second;
  for (const int reader : readers) {
    const auto it = index_.find(Key{reader, block});
    if (it != index_.end()) {
      drop_locked(it->second);
      ctr_invalidations_->add();
    }
  }
  set_bytes_gauge_locked();
}

void BlockCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  readers_of_.clear();
  used_ = 0;
  set_bytes_gauge_locked();
}

Bytes BlockCache::bytes_used() const {
  std::lock_guard<std::mutex> lock(mu_);
  return used_;
}

size_t BlockCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

void BlockCache::drop_locked(std::list<Entry>::iterator it) {
  used_ -= static_cast<Bytes>(it->bytes.size());
  const Key key = it->key;
  index_.erase(key);
  const auto readers = readers_of_.find(key.block);
  if (readers != readers_of_.end()) {
    auto& vec = readers->second;
    vec.erase(std::remove(vec.begin(), vec.end(), key.reader), vec.end());
    if (vec.empty()) readers_of_.erase(readers);
  }
  lru_.erase(it);
  set_bytes_gauge_locked();
}

void BlockCache::set_bytes_gauge_locked() {
  gauge_bytes_->set(static_cast<double>(used_));
}

}  // namespace ear::datapath
