#include "datapath/pipeline.h"

#include <algorithm>
#include <exception>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ear::datapath {

// -------------------------------------------------------------- ChunkLadder

void ChunkLadder::publish(int upto) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ready_ = std::max(ready_, upto);
  }
  cv_.notify_all();
}

bool ChunkLadder::wait_for(int upto) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this, upto] { return aborted_ || ready_ >= upto; });
  return ready_ >= upto;
}

void ChunkLadder::abort() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    aborted_ = true;
  }
  cv_.notify_all();
}

int ChunkLadder::ready() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ready_;
}

// ----------------------------------------------------------- StagedPipeline

void StagedPipeline::run(int chunks, const std::function<void(int)>& fetch,
                         const std::function<void(int)>& compute,
                         const std::function<void(int)>& upload) {
  if (chunks <= 1) {
    // One-shot path: no stage threads, no handoff.
    fetch(0);
    compute(0);
    if (upload) upload(0);
    return;
  }

  static obs::Gauge* gauge_in_flight =
      &obs::Registry::instance().gauge("datapath.chunks_in_flight");

  ChunkLadder fetched;   // fetch -> compute
  ChunkLadder computed;  // compute -> upload
  std::exception_ptr fetch_error;

  std::thread fetcher([&] {
    obs::Span span("datapath.fetch", "datapath");
    span.arg("chunks", chunks);
    try {
      for (int c = 0; c < chunks; ++c) {
        fetch(c);
        fetched.publish(c + 1);
      }
    } catch (...) {
      fetch_error = std::current_exception();
      fetched.abort();
    }
  });

  std::thread uploader;
  if (upload) {
    uploader = std::thread([&] {
      obs::Span span("datapath.upload", "datapath");
      span.arg("chunks", chunks);
      for (int c = 0; c < chunks; ++c) {
        if (!computed.wait_for(c + 1)) return;
        upload(c);
      }
    });
  }

  {
    obs::Span span("datapath.compute", "datapath");
    span.arg("chunks", chunks);
    for (int c = 0; c < chunks; ++c) {
      if (!fetched.wait_for(c + 1)) {
        computed.abort();
        break;
      }
      // Chunks fetched but not yet consumed: > 1 means transfer and compute
      // are overlapping (the fetch stage ran ahead while we computed).
      gauge_in_flight->set_max(static_cast<double>(fetched.ready() - c));
      compute(c);
      computed.publish(c + 1);
    }
  }

  fetcher.join();
  if (uploader.joinable()) uploader.join();
  if (fetch_error) std::rethrow_exception(fetch_error);
}

}  // namespace ear::datapath
