#include "datapath/pipeline.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "qos/qos.h"

namespace ear::datapath {

// -------------------------------------------------------------- ChunkLadder

void ChunkLadder::publish(int upto) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ready_ = std::max(ready_, upto);
  }
  cv_.notify_all();
}

bool ChunkLadder::wait_for(int upto) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this, upto] { return aborted_ || ready_ >= upto; });
  return ready_ >= upto;
}

void ChunkLadder::abort() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    aborted_ = true;
  }
  cv_.notify_all();
}

int ChunkLadder::ready() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ready_;
}

// ----------------------------------------------------------- StagedPipeline

void StagedPipeline::run(int chunks, const std::function<void(int)>& fetch,
                         const std::function<void(int)>& compute,
                         const std::function<void(int)>& upload) {
  if (chunks <= 1) {
    // One-shot path: no stage threads, no handoff.
    fetch(0);
    compute(0);
    if (upload) upload(0);
    return;
  }

  static obs::Gauge* gauge_in_flight =
      &obs::Registry::instance().gauge("datapath.chunks_in_flight");

  ChunkLadder fetched;   // fetch -> compute
  ChunkLadder computed;  // compute -> upload
  std::exception_ptr fetch_error;

  // Stage threads move bytes on behalf of the caller's operation, so they
  // inherit its (class, tenant) flow (see qos/qos.h).
  const qos::Captured qctx = qos::capture();

  std::thread fetcher([&] {
    qos::InstallScope qscope(qctx);
    obs::Span span("datapath.fetch", "datapath");
    span.arg("chunks", chunks);
    try {
      for (int c = 0; c < chunks; ++c) {
        fetch(c);
        fetched.publish(c + 1);
      }
    } catch (...) {
      fetch_error = std::current_exception();
      fetched.abort();
    }
  });

  std::thread uploader;
  if (upload) {
    uploader = std::thread([&] {
      qos::InstallScope qscope(qctx);
      obs::Span span("datapath.upload", "datapath");
      span.arg("chunks", chunks);
      for (int c = 0; c < chunks; ++c) {
        if (!computed.wait_for(c + 1)) return;
        upload(c);
      }
    });
  }

  {
    obs::Span span("datapath.compute", "datapath");
    span.arg("chunks", chunks);
    for (int c = 0; c < chunks; ++c) {
      if (!fetched.wait_for(c + 1)) {
        computed.abort();
        break;
      }
      // Chunks fetched but not yet consumed: > 1 means transfer and compute
      // are overlapping (the fetch stage ran ahead while we computed).
      gauge_in_flight->set_max(static_cast<double>(fetched.ready() - c));
      compute(c);
      computed.publish(c + 1);
    }
  }

  fetcher.join();
  if (uploader.joinable()) uploader.join();
  if (fetch_error) std::rethrow_exception(fetch_error);
}

namespace {

// Counting semaphore bounding how many fan-out lanes move bytes at once
// across the whole process.  A lane holds a slot only while it fetches —
// never while waiting on another lane — so the gate cannot deadlock: every
// slot holder finishes unconditionally and frees its slot.
class LaneGate {
 public:
  explicit LaneGate(int slots) : slots_(slots) {}

  void acquire() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return slots_ > 0; });
    --slots_;
  }

  void release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++slots_;
    }
    cv_.notify_one();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int slots_;
};

}  // namespace

void StagedPipeline::run_fanout(int chunks, int lanes,
                                const std::function<void(int, int)>& fetch,
                                const std::function<void(int)>& compute,
                                const std::function<void(int)>& upload) {
  if (lanes <= 1) {
    // Single lane: identical to the round-robin baseline.  Note chunks <= 1
    // must NOT collapse to this path when lanes > 1 — each lane covers a
    // disjoint share of the sources, so every lane must still run.
    run(
        chunks, [&fetch](int c) { fetch(0, c); }, compute, upload);
    return;
  }

  static LaneGate gate(kMaxActiveLanes);
  static obs::Gauge* gauge_in_flight =
      &obs::Registry::instance().gauge("datapath.chunks_in_flight");
  static obs::Gauge* gauge_lanes =
      &obs::Registry::instance().gauge("datapath.fetch_lanes");
  gauge_lanes->set_max(static_cast<double>(lanes));

  std::vector<ChunkLadder> ladders(static_cast<size_t>(lanes));
  std::vector<std::exception_ptr> errors(static_cast<size_t>(lanes));
  std::atomic<bool> aborting{false};

  const qos::Captured qctx = qos::capture();

  std::vector<std::thread> lane_threads;
  lane_threads.reserve(static_cast<size_t>(lanes));
  for (int l = 0; l < lanes; ++l) {
    lane_threads.emplace_back([&, l] {
      qos::InstallScope qscope(qctx);
      gate.acquire();
      obs::Span span("datapath.fetch_lane", "datapath");
      span.arg("lane", l);
      span.arg("chunks", chunks);
      try {
        for (int c = 0; c < chunks; ++c) {
          if (aborting.load(std::memory_order_relaxed)) break;
          fetch(l, c);
          ladders[static_cast<size_t>(l)].publish(c + 1);
        }
      } catch (...) {
        errors[static_cast<size_t>(l)] = std::current_exception();
        aborting.store(true, std::memory_order_relaxed);
      }
      // Release any waiter stuck beyond this lane's published rungs (a
      // no-op for waits the lane already satisfied).
      if (aborting.load(std::memory_order_relaxed)) {
        ladders[static_cast<size_t>(l)].abort();
      }
      gate.release();
    });
  }

  ChunkLadder computed;  // compute -> upload
  std::thread uploader;
  if (upload) {
    uploader = std::thread([&] {
      qos::InstallScope qscope(qctx);
      obs::Span span("datapath.upload", "datapath");
      span.arg("chunks", chunks);
      for (int c = 0; c < chunks; ++c) {
        if (!computed.wait_for(c + 1)) return;
        upload(c);
      }
    });
  }

  {
    obs::Span span("datapath.compute", "datapath");
    span.arg("chunks", chunks);
    span.arg("lanes", lanes);
    for (int c = 0; c < chunks; ++c) {
      bool rung_complete = true;
      int min_ready = chunks;
      for (auto& ladder : ladders) {
        if (!ladder.wait_for(c + 1)) {
          rung_complete = false;
          break;
        }
        min_ready = std::min(min_ready, ladder.ready());
      }
      if (!rung_complete) {
        computed.abort();
        break;
      }
      // Rungs every lane has fully delivered but compute has not consumed:
      // > 1 proves the lanes ran ahead while we decoded.
      gauge_in_flight->set_max(static_cast<double>(min_ready - c));
      compute(c);
      computed.publish(c + 1);
    }
  }

  for (auto& t : lane_threads) t.join();
  if (uploader.joinable()) uploader.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace ear::datapath
