#include "datapath/worker_pool.h"

#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ear::datapath {

WorkerPool& WorkerPool::shared() {
  // Data-path tasks mostly sleep on emulated-network reservations, so the
  // cap is sized for concurrency, not cores: it must cover the bench
  // configurations (12 map slots + repair workers + headroom) on any host.
  static WorkerPool pool(/*max_threads=*/64);
  return pool;
}

WorkerPool::WorkerPool(int max_threads) : max_threads_(max_threads) {
  threads_.reserve(static_cast<size_t>(max_threads));
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
    if (idle_ == 0 && static_cast<int>(threads_.size()) < max_threads_) {
      spawn_locked();
    }
  }
  cv_.notify_one();
}

void WorkerPool::spawn_locked() {
  const int index = static_cast<int>(threads_.size());
  threads_.emplace_back([this, index] { worker_loop(index); });
}

void WorkerPool::worker_loop(int index) {
  obs::set_current_thread_name("datapath-" + std::to_string(index));
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    ++idle_;
    cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    --idle_;
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    std::function<void()> fn = std::move(queue_.front());
    queue_.pop_front();
    ++executed_;
    lock.unlock();
    fn();
    lock.lock();
  }
}

int WorkerPool::thread_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(threads_.size());
}

int64_t WorkerPool::tasks_executed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return executed_;
}

// ---------------------------------------------------------------- TaskGroup

TaskGroup::TaskGroup(WorkerPool& pool, int max_concurrency)
    : pool_(&pool), limit_(max_concurrency) {}

TaskGroup::~TaskGroup() { wait(); }

void TaskGroup::submit(std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  ++pending_;
  if (limit_ > 0 && running_ >= limit_) {
    backlog_.push_back(std::move(fn));
    return;
  }
  ++running_;
  pool_->submit([this, fn = std::move(fn)]() mutable { run_one(std::move(fn)); });
}

void TaskGroup::run_one(std::function<void()> fn) {
  // Chain backlogged tasks onto this pool slot (keeps `running_` at the
  // limit and avoids re-queueing behind unrelated work).
  while (true) {
    fn();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
      if (backlog_.empty()) {
        --running_;
        if (pending_ == 0) cv_.notify_all();
        return;
      }
      fn = std::move(backlog_.front());
      backlog_.pop_front();
    }
  }
}

void TaskGroup::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return pending_ == 0; });
}

}  // namespace ear::datapath
