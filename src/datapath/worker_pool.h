// Shared bounded worker pool — the one place data-path work is scheduled
// (see DESIGN.md "Data path").
//
// RaidNode map tasks and RepairManager drainers submit here instead of
// spawning ad-hoc std::thread vectors, so the process-wide thread count on
// the data path stays bounded no matter how many jobs run concurrently.
// Threads are spawned on demand up to `max_threads` and parked on a
// condition variable when idle (data-path tasks spend most of their time
// asleep on emulated-network reservations, so the cap is deliberately much
// larger than the core count).
//
// Tasks must not throw: an escaping exception would terminate the process.
// Blocking inside a task is allowed (transport sleeps, retry backoff), but
// a task must never wait on another *queued* pool task — only on work that
// is already running or runs on a dedicated thread (the staged pipeline's
// stage threads are dedicated for exactly this reason).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ear::datapath {

class WorkerPool {
 public:
  // The process-wide pool used by RaidNode, RepairManager and tests.
  static WorkerPool& shared();

  explicit WorkerPool(int max_threads);
  ~WorkerPool();  // drains the queue, then joins every thread

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  void submit(std::function<void()> fn);

  int max_threads() const { return max_threads_; }
  int thread_count() const;     // threads spawned so far
  int64_t tasks_executed() const;

 private:
  void spawn_locked();
  void worker_loop(int index);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  int idle_ = 0;
  int64_t executed_ = 0;
  bool stop_ = false;
  const int max_threads_;
};

// Bounded fan-out of tasks onto a pool: at most `max_concurrency` of this
// group's tasks occupy pool slots at once (0 = unlimited); the rest wait in
// a local backlog.  wait() blocks until every submitted task has finished.
class TaskGroup {
 public:
  explicit TaskGroup(WorkerPool& pool, int max_concurrency = 0);
  ~TaskGroup();  // waits

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void submit(std::function<void()> fn);
  void wait();

 private:
  void run_one(std::function<void()> fn);

  WorkerPool* pool_;
  const int limit_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> backlog_;
  int running_ = 0;
  int pending_ = 0;  // running + backlog
};

}  // namespace ear::datapath
