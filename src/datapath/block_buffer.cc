#include "datapath/block_buffer.h"

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"

namespace ear::datapath {

void count_copy(size_t bytes) {
  static obs::Counter* ctr =
      &obs::Registry::instance().counter("datapath.bytes_copied");
  ctr->add(static_cast<int64_t>(bytes));
}

BlockBuffer BlockBuffer::copy_of(std::span<const uint8_t> data) {
  std::shared_ptr<uint8_t[]> bytes(new uint8_t[data.size()]);
  if (!data.empty()) std::memcpy(bytes.get(), data.data(), data.size());
  count_copy(data.size());
  return BlockBuffer(std::move(bytes), data.size());
}

BlockBuffer BlockBuffer::take(std::vector<uint8_t> data) {
  // Alias the shared_ptr onto the vector's storage: the control block keeps
  // the vector alive, the element pointer addresses its bytes — no copy.
  auto owner = std::make_shared<std::vector<uint8_t>>(std::move(data));
  std::shared_ptr<const uint8_t[]> bytes(owner, owner->data());
  return BlockBuffer(std::move(bytes), owner->size());
}

BlockBuffer BlockBuffer::view_of(std::shared_ptr<const void> owner,
                                 const uint8_t* data, size_t size) {
  // Alias onto the owner's control block: the view shares the owner's
  // lifetime, the element pointer addresses the mapped bytes — no copy.
  std::shared_ptr<const uint8_t[]> bytes(std::move(owner), data);
  return BlockBuffer(std::move(bytes), size);
}

std::vector<uint8_t> BlockBuffer::to_vector() const {
  count_copy(size_);
  return std::vector<uint8_t>(data(), data() + size_);
}

}  // namespace ear::datapath
