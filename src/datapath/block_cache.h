// Reader-side block cache — LRU over zero-copy BlockBuffers (see DESIGN.md
// "Read path").
//
// MiniCfs::read_block charges a full-block transport transfer on every
// call, even when the same reader just fetched the same block; for the
// read-dominated workloads the paper measures (Figure 10 MapReduce, Figure
// 15 read balance) that makes repeated reads the slowest path in the
// system.  BlockCache models each reader node's client-side cache: entries
// are keyed by (reader, block) — a hit means *that reader* already holds
// the bytes locally, so it costs zero transport bytes and, because
// BlockBuffer is ref-counted, zero byte copies.
//
// Semantics:
//  * Capacity is in bytes; eviction is strict LRU across all readers'
//    entries (one shared budget, like an OS page cache split by client).
//    capacity 0 disables the cache entirely: lookup always misses, insert
//    is a no-op — the pre-cache read path, byte for byte.
//  * Cached contents are immutable BlockBuffers, so a hit can never return
//    torn or mutated bytes.  Staleness is about *visibility*, not content:
//    the owner invalidates on block delete, re-encode, repair-rewrite and
//    node revive (see MiniCfs) so a cached entry never makes a read
//    succeed against metadata under which the uncached path would behave
//    differently.
//  * Thread-safe; one mutex.  The hot path is a hash lookup + list splice,
//    never a byte copy.
//
// Instruments: datapath.cache.{hits,misses,evictions,invalidations}
// counters and the datapath.cache.bytes gauge.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/units.h"
#include "datapath/block_buffer.h"
#include "obs/metrics.h"

namespace ear::datapath {

class BlockCache {
 public:
  // `capacity` in bytes; 0 disables the cache (every lookup misses without
  // counting, every insert is a no-op).
  explicit BlockCache(Bytes capacity);

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  bool enabled() const { return capacity_ > 0; }
  Bytes capacity() const { return capacity_; }

  // Returns reader's cached copy of `block` and marks it most recently
  // used; nullopt on miss.  The returned buffer shares the cached
  // allocation (zero copies).
  std::optional<BlockBuffer> lookup(int reader, int64_t block);

  // Caches `bytes` for (reader, block), evicting least-recently-used
  // entries until it fits.  A buffer larger than the whole capacity is not
  // cached.  Re-inserting an existing key replaces its bytes (newest fill
  // wins) and refreshes its recency.
  void insert(int reader, int64_t block, BlockBuffer bytes);

  // Drops every reader's entry for `block` (delete / re-encode / repair /
  // revive coherence points; see the class comment).
  void invalidate_block(int64_t block);

  // Drops everything (checkpoint import).
  void clear();

  // ---- introspection (tests, benches) ------------------------------------
  Bytes bytes_used() const;
  size_t entries() const;
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  struct Key {
    int reader;
    int64_t block;
    bool operator==(const Key& o) const {
      return reader == o.reader && block == o.block;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      // Fibonacci-style mix; reader counts are small and block ids dense.
      const uint64_t h =
          (static_cast<uint64_t>(k.block) * 0x9e3779b97f4a7c15ULL) ^
          (static_cast<uint64_t>(static_cast<uint32_t>(k.reader)) *
           0xc2b2ae3d27d4eb4fULL);
      return static_cast<size_t>(h);
    }
  };
  struct Entry {
    Key key;
    BlockBuffer bytes;
  };

  // Drops the entry at `it` (mu_ held).  Adjusts maps and the byte gauge
  // but charges no hit/miss/eviction counter — callers account the cause.
  void drop_locked(std::list<Entry>::iterator it);
  void set_bytes_gauge_locked();

  const Bytes capacity_;

  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
  // block -> readers holding it; makes invalidate_block O(readers of that
  // block) instead of a full scan.
  std::unordered_map<int64_t, std::vector<int>> readers_of_;
  Bytes used_ = 0;

  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};

  obs::Counter* ctr_hits_;
  obs::Counter* ctr_misses_;
  obs::Counter* ctr_evictions_;
  obs::Counter* ctr_invalidations_;
  obs::Gauge* gauge_bytes_;
};

}  // namespace ear::datapath
