// Staged chunked pipeline — overlapped fetch → compute → upload for the
// encode and degraded-read data paths (see DESIGN.md "Data path").
//
// The paper's encoder (§IV-C) downloads k blocks, computes parity, then
// uploads it, each stage waiting for the previous one.  RapidRAID-style
// pipelining instead streams the block in chunks: the GF(2^8) math for
// chunk c runs while chunk c+1 is still in flight on the transport, and
// parity chunk c uploads while chunk c+2 is being fetched.  Fetch and
// upload use disjoint links (the encoder's down- and up-link), so the
// three stages genuinely overlap in real time under ThrottledTransport.
//
// StagedPipeline::run coordinates the three stages with chunk-granularity
// handoff; ChunkPlan slices a block into transport-sized windows; the
// `datapath.chunks_in_flight` gauge records the high-water fetch/compute
// distance, proving the overlap.
//
// The chunked computation must be byte-identical to the one-shot path:
// callers pass windowed views of the same buffers, and GF(2^8) row
// operations are bytewise, so chunking never changes the result.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>

#include "common/units.h"

namespace ear::datapath {

// Slices [0, block_size) into windows of at most `chunk` bytes.
// chunk <= 0 (or >= block_size) means a single window: the one-shot path.
struct ChunkPlan {
  Bytes block_size = 0;
  Bytes chunk = 0;

  int count() const {
    if (block_size <= 0) return 1;
    if (chunk <= 0 || chunk >= block_size) return 1;
    return static_cast<int>((block_size + chunk - 1) / chunk);
  }
  size_t offset(int c) const {
    return static_cast<size_t>(c) * static_cast<size_t>(effective_chunk());
  }
  size_t len(int c) const {
    const size_t begin = offset(c);
    const size_t total = static_cast<size_t>(block_size);
    const size_t step = static_cast<size_t>(effective_chunk());
    return begin + step <= total ? step : total - begin;
  }

 private:
  Bytes effective_chunk() const {
    return (chunk <= 0 || chunk >= block_size) ? block_size : chunk;
  }
};

// Single-producer progress ladder: the producer publishes "chunks [0, upto)
// are ready"; consumers block until the chunk they need is ready.  abort()
// releases every waiter with a failure indication.
class ChunkLadder {
 public:
  void publish(int upto);
  // Returns false iff the ladder was aborted before `upto` was reached.
  bool wait_for(int upto);
  void abort();
  int ready() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int ready_ = 0;
  bool aborted_ = false;
};

class StagedPipeline {
 public:
  // Runs `fetch`, `compute` and (optionally) `upload` once per chunk with
  // chunk-granularity handoff: compute(c) starts as soon as fetch(c) has
  // finished, upload(c) as soon as compute(c) has.  fetch and upload run on
  // dedicated stage threads (never on pool slots — a pool task waiting on a
  // queued pool task could deadlock the bounded pool); compute runs on the
  // calling thread.  With a single chunk everything runs inline: the
  // one-shot path has no threading overhead.
  //
  // Stage callbacks must not throw, except `fetch`, whose exception aborts
  // the pipeline and is rethrown to the caller after the stages drain.
  static void run(int chunks, const std::function<void(int)>& fetch,
                  const std::function<void(int)>& compute,
                  const std::function<void(int)>& upload = nullptr);

  // Fan-out variant for degraded reads and DAG execution: `lanes` fetch
  // lanes run concurrently, each on its own dedicated stage thread, and
  // fetch(lane, c) is called once per (lane, chunk).  Each lane streams its
  // chunks independently — a lane stuck behind a congested cross-rack link
  // no longer head-of-line-blocks the intra-rack lanes — and compute(c)
  // starts as soon as every lane has delivered chunk c (the k chunks of
  // ladder rung c have landed).  An optional `upload` stage mirrors run():
  // upload(c) runs on its own dedicated thread as soon as compute(c) has
  // finished, so result chunks leave while later rungs are still arriving
  // (the ecdag executor ships parity/reconstruction chunks this way).
  //
  // Lane threads are dedicated, never pool slots (see the pool's
  // wait-on-queued-task rule), but their *concurrency* is bounded: at most
  // kMaxActiveLanes lanes across the whole process move bytes at once —
  // matching the shared WorkerPool's thread cap — and surplus lanes wait
  // their turn.  The gate cannot deadlock: a lane holds a slot only while
  // fetching, never while waiting on another lane.
  //
  // lanes <= 1 degenerates to run(fetch(0, ·), compute): the exact
  // pre-fan-out behaviour, used as the round-robin baseline.  chunks <= 1
  // with lanes > 1 still runs every lane (each covers a disjoint share of
  // the work); only the ladder depth is trivial.
  //
  // Like run(), only `fetch` may throw; the first lane error aborts every
  // stage (including the uploader) and is rethrown after the lanes drain.
  static void run_fanout(int chunks, int lanes,
                         const std::function<void(int, int)>& fetch,
                         const std::function<void(int)>& compute,
                         const std::function<void(int)>& upload = nullptr);

  // Process-wide cap on lanes concurrently moving bytes (== the shared
  // WorkerPool thread cap).
  static constexpr int kMaxActiveLanes = 64;
};

}  // namespace ear::datapath
