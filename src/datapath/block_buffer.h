// Zero-copy block buffers — the unit of byte ownership on the data path
// (see DESIGN.md "Data path").
//
// BlockBuffer is an immutable, ref-counted byte buffer: DataNode stores,
// the staged encode/repair pipelines and checkpoint import/export hand
// these around by reference instead of deep-copying block-sized vectors.
// A replicated block held by r DataNodes is one allocation with r refs;
// fetching a block for encoding or repair shares the store's buffer under
// the store's own mutex instead of copying a full block per access.
//
// The only places bytes are physically duplicated are BlockBuffer::copy_of
// (ingesting caller-owned data, e.g. the client write path) and to_vector
// (materialising for external consumers).  Both charge the
// `datapath.bytes_copied` counter, so benches and tests can prove the copy
// elimination end to end.
//
// Ownership rules:
//  * BlockBuffer contents are immutable for the buffer's whole lifetime;
//    sharing is therefore always safe, across threads included.
//  * MutableBlockBuffer is the single-writer staging area (parity under
//    construction, decode output).  seal() freezes it into a BlockBuffer
//    without copying; the mutable handle is dead afterwards.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

namespace ear::datapath {

// Charges `bytes` to the `datapath.bytes_copied` counter (no-op when
// metrics are disabled).
void count_copy(size_t bytes);

class BlockBuffer {
 public:
  BlockBuffer() = default;

  // Copies `data` into a fresh buffer (charged to datapath.bytes_copied).
  static BlockBuffer copy_of(std::span<const uint8_t> data);

  // Takes ownership of `data` without copying the bytes.
  static BlockBuffer take(std::vector<uint8_t> data);

  // Zero-copy view of memory owned by `owner` (an mmap'd store segment, a
  // pooled arena, ...).  The returned buffer keeps `owner` alive for its
  // whole lifetime via the shared_ptr aliasing constructor; the bytes at
  // [data, data + size) must stay valid and immutable for as long as
  // `owner`'s control block is.  refs() counts handles on `owner` exactly
  // like the heap-backed variants, so cache/pipeline sharing asserts keep
  // working over persistent stores.
  static BlockBuffer view_of(std::shared_ptr<const void> owner,
                             const uint8_t* data, size_t size);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const uint8_t* data() const { return data_.get(); }
  std::span<const uint8_t> span() const { return {data_.get(), size_}; }
  // View of bytes [offset, offset + len); the chunk windows of the staged
  // pipeline.
  std::span<const uint8_t> window(size_t offset, size_t len) const {
    return span().subspan(offset, len);
  }

  // Zero-copy sub-buffer of bytes [offset, offset + len): shares this
  // buffer's control block via the aliasing constructor, so the full
  // allocation stays alive while any range view does.  The vector-codec
  // repair path reads sub-block ranges of helper blocks through this.
  BlockBuffer view(size_t offset, size_t len) const {
    return BlockBuffer(
        std::shared_ptr<const uint8_t[]>(data_, data_.get() + offset), len);
  }

  // Materialises a private copy (charged to datapath.bytes_copied).
  std::vector<uint8_t> to_vector() const;

  // Number of BlockBuffer handles sharing this allocation (diagnostics /
  // tests asserting zero-copy sharing).
  long refs() const { return data_.use_count(); }

  friend bool operator==(const BlockBuffer& a, const BlockBuffer& b) {
    return a.size_ == b.size_ &&
           std::equal(a.data(), a.data() + a.size_, b.data());
  }
  friend bool operator==(const BlockBuffer& a, std::span<const uint8_t> b) {
    return a.size_ == b.size() &&
           std::equal(a.data(), a.data() + a.size_, b.data());
  }
  friend bool operator==(const BlockBuffer& a,
                         const std::vector<uint8_t>& b) {
    return a == std::span<const uint8_t>(b);
  }

 private:
  BlockBuffer(std::shared_ptr<const uint8_t[]> data, size_t size)
      : data_(std::move(data)), size_(size) {}

  friend class MutableBlockBuffer;

  std::shared_ptr<const uint8_t[]> data_;
  size_t size_ = 0;
};

// Single-writer staging buffer; seal() freezes it into an immutable
// BlockBuffer without copying.
class MutableBlockBuffer {
 public:
  MutableBlockBuffer() = default;
  explicit MutableBlockBuffer(size_t size)
      : data_(new uint8_t[size]()), size_(size) {}

  size_t size() const { return size_; }
  uint8_t* data() { return data_.get(); }
  std::span<uint8_t> span() { return {data_.get(), size_}; }
  std::span<uint8_t> window(size_t offset, size_t len) {
    return span().subspan(offset, len);
  }

  // Freezes the contents; this handle becomes empty.  No bytes move.
  BlockBuffer seal() && {
    const size_t size = size_;
    size_ = 0;
    return BlockBuffer(std::shared_ptr<const uint8_t[]>(std::move(data_)),
                       size);
  }

 private:
  std::shared_ptr<uint8_t[]> data_;
  size_t size_ = 0;
};

}  // namespace ear::datapath
