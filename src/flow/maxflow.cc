#include "flow/maxflow.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

namespace ear::flow {

MaxFlow::MaxFlow(int vertex_count)
    : vertex_count_(vertex_count), graph_(static_cast<size_t>(vertex_count)) {
  assert(vertex_count > 0);
}

int MaxFlow::add_edge(int from, int to, int64_t capacity) {
  assert(from >= 0 && from < vertex_count_);
  assert(to >= 0 && to < vertex_count_);
  assert(capacity >= 0);
  auto& fwd_list = graph_[static_cast<size_t>(from)];
  auto& rev_list = graph_[static_cast<size_t>(to)];
  const int fwd_offset = static_cast<int>(fwd_list.size());
  const int rev_offset = static_cast<int>(rev_list.size()) +
                         (from == to ? 1 : 0);
  fwd_list.push_back(Edge{to, capacity, rev_offset, capacity});
  rev_list.push_back(Edge{from, 0, fwd_offset, 0});
  edge_index_.emplace_back(from, fwd_offset);
  return static_cast<int>(edge_index_.size()) - 1;
}

bool MaxFlow::bfs(int s, int t) {
  level_.assign(static_cast<size_t>(vertex_count_), -1);
  std::queue<int> q;
  level_[static_cast<size_t>(s)] = 0;
  q.push(s);
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    for (const Edge& e : graph_[static_cast<size_t>(v)]) {
      if (e.cap > 0 && level_[static_cast<size_t>(e.to)] < 0) {
        level_[static_cast<size_t>(e.to)] = level_[static_cast<size_t>(v)] + 1;
        q.push(e.to);
      }
    }
  }
  return level_[static_cast<size_t>(t)] >= 0;
}

int64_t MaxFlow::dfs(int v, int t, int64_t pushed) {
  if (v == t) return pushed;
  auto& it = iter_[static_cast<size_t>(v)];
  auto& edges = graph_[static_cast<size_t>(v)];
  for (; it < static_cast<int>(edges.size()); ++it) {
    Edge& e = edges[static_cast<size_t>(it)];
    if (e.cap <= 0 ||
        level_[static_cast<size_t>(e.to)] != level_[static_cast<size_t>(v)] + 1) {
      continue;
    }
    const int64_t got = dfs(e.to, t, std::min(pushed, e.cap));
    if (got > 0) {
      e.cap -= got;
      graph_[static_cast<size_t>(e.to)][static_cast<size_t>(e.rev)].cap += got;
      return got;
    }
  }
  return 0;
}

int64_t MaxFlow::solve(int s, int t) {
  assert(s != t);
  int64_t total = 0;
  while (bfs(s, t)) {
    iter_.assign(static_cast<size_t>(vertex_count_), 0);
    while (int64_t pushed =
               dfs(s, t, std::numeric_limits<int64_t>::max())) {
      total += pushed;
    }
  }
  // Add flow pushed by previous solve() calls: derive from source edges.
  // (total above counts only this call; recompute the cumulative value.)
  int64_t cumulative = 0;
  for (const Edge& e : graph_[static_cast<size_t>(s)]) {
    cumulative += e.original_cap - e.cap;
  }
  return cumulative;
}

int64_t MaxFlow::edge_flow(int id) const {
  const auto [v, off] = edge_index_.at(static_cast<size_t>(id));
  const Edge& e = graph_[static_cast<size_t>(v)][static_cast<size_t>(off)];
  return e.original_cap - e.cap;
}

int64_t MaxFlow::edge_residual(int id) const {
  const auto [v, off] = edge_index_.at(static_cast<size_t>(id));
  return graph_[static_cast<size_t>(v)][static_cast<size_t>(off)].cap;
}

std::vector<int> maximum_bipartite_matching(
    int left_count, int right_count,
    const std::vector<std::vector<int>>& adjacency) {
  assert(static_cast<int>(adjacency.size()) == left_count);
  const int s = left_count + right_count;
  const int t = s + 1;
  MaxFlow mf(left_count + right_count + 2);

  std::vector<std::vector<int>> edge_ids(static_cast<size_t>(left_count));
  for (int l = 0; l < left_count; ++l) {
    mf.add_edge(s, l, 1);
    for (const int r : adjacency[static_cast<size_t>(l)]) {
      assert(r >= 0 && r < right_count);
      edge_ids[static_cast<size_t>(l)].push_back(
          mf.add_edge(l, left_count + r, 1));
    }
  }
  for (int r = 0; r < right_count; ++r) {
    mf.add_edge(left_count + r, t, 1);
  }
  mf.solve(s, t);

  std::vector<int> match(static_cast<size_t>(left_count), -1);
  for (int l = 0; l < left_count; ++l) {
    const auto& ids = edge_ids[static_cast<size_t>(l)];
    for (size_t j = 0; j < ids.size(); ++j) {
      if (mf.edge_flow(ids[j]) > 0) {
        match[static_cast<size_t>(l)] = adjacency[static_cast<size_t>(l)][j];
        break;
      }
    }
  }
  return match;
}

}  // namespace ear::flow
