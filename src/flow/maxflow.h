// Dinic's maximum-flow algorithm on small integer-capacity graphs.
//
// EAR's feasibility check (paper §III-B) reduces replica selection to a
// max-flow instance with O(k + nodes + racks) vertices, so the graphs here
// are tiny; Dinic's O(V^2 E) worst case is irrelevant at this scale but its
// incremental re-solve (add edges, continue pushing flow) is exactly what the
// per-block placement loop of §III-C needs.
#pragma once

#include <cstdint>
#include <vector>

namespace ear::flow {

class MaxFlow {
 public:
  // Vertices are dense ints [0, vertex_count).
  explicit MaxFlow(int vertex_count);

  int vertex_count() const { return vertex_count_; }

  // Adds a directed edge and returns its id (usable with edge_flow /
  // set_capacity).  Capacity must be >= 0.
  int add_edge(int from, int to, int64_t capacity);

  // Computes max flow from s to t.  May be called repeatedly after adding
  // edges; flow already pushed is retained, so successive calls return the
  // *total* flow pushed so far.
  int64_t solve(int s, int t);

  // Flow currently assigned to edge `id`.
  int64_t edge_flow(int id) const;

  // Remaining capacity of edge `id`.
  int64_t edge_residual(int id) const;

 private:
  struct Edge {
    int to;
    int64_t cap;  // residual capacity
    int rev;      // index of the reverse edge in graph_[to]
    int64_t original_cap;
  };

  bool bfs(int s, int t);
  int64_t dfs(int v, int t, int64_t pushed);

  int vertex_count_;
  std::vector<std::vector<Edge>> graph_;
  std::vector<std::pair<int, int>> edge_index_;  // id -> (vertex, offset)
  std::vector<int> level_;
  std::vector<int> iter_;
};

// Maximum bipartite matching between `left_count` left vertices and
// `right_count` right vertices, given adjacency (left -> list of right).
// Returns for each left vertex the matched right vertex or -1.
std::vector<int> maximum_bipartite_matching(
    int left_count, int right_count,
    const std::vector<std::vector<int>>& adjacency);

}  // namespace ear::flow
