// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum the
// persistent block store uses for manifest records and block payloads.
//
// A plain byte-at-a-time table implementation: the store checksums a few
// dozen bytes per manifest record and one block per commit, so table lookup
// speed is never on the data-path critical path (the staged pipeline's GF
// kernels are).  Header-only so the store library stays dependency-free.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <span>

namespace ear {

namespace detail {

inline const std::array<uint32_t, 256>& crc32_table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace detail

// Incremental form: pass the previous return value as `seed` to continue a
// running checksum; the default starts a fresh one.
inline uint32_t crc32(std::span<const uint8_t> data, uint32_t seed = 0) {
  const auto& table = detail::crc32_table();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const uint8_t b : data) {
    c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

inline uint32_t crc32(const void* data, size_t len, uint32_t seed = 0) {
  return crc32({static_cast<const uint8_t*>(data), len}, seed);
}

}  // namespace ear
