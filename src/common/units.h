// Units used throughout the codebase.
//
// Convention: sizes are bytes (int64_t), rates are bytes/second (double),
// simulated time is seconds (double).  Helpers below make call sites read
// like the paper ("64 MB blocks", "1 Gb/s links").
#pragma once

#include <cstdint>

namespace ear {

using Bytes = int64_t;
using Seconds = double;
using BytesPerSec = double;

constexpr Bytes operator""_KB(unsigned long long v) {
  return static_cast<Bytes>(v) * 1024;
}
constexpr Bytes operator""_MB(unsigned long long v) {
  return static_cast<Bytes>(v) * 1024 * 1024;
}
constexpr Bytes operator""_GB(unsigned long long v) {
  return static_cast<Bytes>(v) * 1024 * 1024 * 1024;
}

// Network rates in the paper are quoted in Gb/s (decimal bits).
constexpr BytesPerSec gbps(double v) { return v * 1e9 / 8.0; }
constexpr BytesPerSec mbps(double v) { return v * 1e6 / 8.0; }

constexpr double to_mb(Bytes b) {
  return static_cast<double>(b) / (1024.0 * 1024.0);
}

}  // namespace ear
