// Deterministic pseudo-random number generation for simulations.
//
// Every stochastic component in this codebase draws from an explicitly seeded
// Rng instance so that experiments are reproducible run-to-run and the
// discrete-event simulator can be replayed.  We implement xoshiro256** with a
// SplitMix64 seeding stage (the reference construction recommended by the
// xoshiro authors) instead of std::mt19937 because it is faster, has a far
// smaller state, and its output is identical across standard libraries.
#pragma once

#include <cstdint>
#include <cmath>
#include <cassert>
#include <limits>
#include <vector>
#include <algorithm>
#include <numeric>

namespace ear {

// SplitMix64: used to expand a single 64-bit seed into xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(uint64_t seed) : state_(seed) {}

  constexpr uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// xoshiro256**: general-purpose 64-bit PRNG.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  uint64_t operator()() { return next(); }

  uint64_t next() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  // method for unbiased results.
  uint64_t uniform(uint64_t bound) {
    assert(bound > 0);
    uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      const uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t uniform_int(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double uniform_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double uniform_double(double lo, double hi) {
    return lo + (hi - lo) * uniform_double();
  }

  bool bernoulli(double p) { return uniform_double() < p; }

  // Exponential with the given mean (inter-arrival times of Poisson streams).
  double exponential(double mean) {
    assert(mean > 0);
    double u;
    do {
      u = uniform_double();
    } while (u <= 0.0);
    return -mean * std::log(u);
  }

  // Marsaglia polar method.
  double normal(double mean, double stddev) {
    if (have_spare_) {
      have_spare_ = false;
      return mean + stddev * spare_;
    }
    double u, v, s;
    do {
      u = uniform_double(-1.0, 1.0);
      v = uniform_double(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    have_spare_ = true;
    return mean + stddev * u * factor;
  }

  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  // Pick a uniformly random element index from a non-empty container size.
  size_t index(size_t size) {
    assert(size > 0);
    return static_cast<size_t>(uniform(size));
  }

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[uniform(i)]);
    }
  }

  // Sample m distinct values from [0, range) without replacement.
  std::vector<size_t> sample_without_replacement(size_t range, size_t m) {
    assert(m <= range);
    // Selection sampling for small m, shuffle prefix otherwise.
    if (m * 4 >= range) {
      std::vector<size_t> all(range);
      std::iota(all.begin(), all.end(), size_t{0});
      for (size_t i = 0; i < m; ++i) {
        std::swap(all[i], all[i + uniform(range - i)]);
      }
      all.resize(m);
      return all;
    }
    std::vector<size_t> out;
    out.reserve(m);
    while (out.size() < m) {
      const size_t candidate = index(range);
      if (std::find(out.begin(), out.end(), candidate) == out.end()) {
        out.push_back(candidate);
      }
    }
    return out;
  }

  // Derive an independent child stream (for per-component generators).
  Rng fork() { return Rng(next()); }

 private:
  static constexpr uint64_t rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4]{};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace ear
