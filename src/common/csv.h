// CSV output with honest I/O error reporting.
//
// A thin stdio wrapper shared by the sim exporters and the benches.  The
// important part is close(): buffered-write failures (ENOSPC on a full disk,
// EDQUOT over quota) often surface only when the stream is flushed, so a
// writer that ignores fclose() silently truncates result files.  close()
// checks both the stream error flag and the fclose() return, leaving errno
// set for the caller's diagnostic.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

namespace ear {

class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path)
      : handle_(std::fopen(path.c_str(), "w")) {}
  ~CsvWriter() {
    if (handle_) std::fclose(handle_);
  }
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  bool ok() const { return handle_ != nullptr; }
  std::FILE* get() { return handle_; }

  // printf-style row (caller supplies the commas and newline).
#if defined(__GNUC__) || defined(__clang__)
  __attribute__((format(printf, 2, 3)))
#endif
  void row(const char* fmt, ...) {
    if (!handle_) return;
    va_list args;
    va_start(args, fmt);
    std::vfprintf(handle_, fmt, args);
    va_end(args);
  }

  // Flushes and closes, reporting deferred write errors.  Leaves errno set
  // on failure.  Safe to call once; ok() is false afterwards.
  bool close() {
    if (!handle_) return false;
    const bool had_error = std::ferror(handle_) != 0;
    const bool close_failed = std::fclose(handle_) != 0;
    handle_ = nullptr;
    return !had_error && !close_failed;
  }

 private:
  std::FILE* handle_;
};

}  // namespace ear
