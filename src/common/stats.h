// Small statistics helpers shared by benches and tests: running summaries,
// percentiles and the five-number boxplot summary the paper's Figure 13 uses.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

namespace ear {

// Accumulates samples and answers summary queries.  Percentile queries sort a
// copy lazily; intended for experiment post-processing, not hot loops.
class Summary {
 public:
  void add(double x) {
    samples_.push_back(x);
    sum_ += x;
  }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double sum() const { return sum_; }

  double mean() const {
    return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
  }

  double min() const {
    return samples_.empty()
               ? 0.0
               : *std::min_element(samples_.begin(), samples_.end());
  }

  double max() const {
    return samples_.empty()
               ? 0.0
               : *std::max_element(samples_.begin(), samples_.end());
  }

  double stddev() const {
    if (samples_.size() < 2) return 0.0;
    const double m = mean();
    double acc = 0.0;
    for (double x : samples_) acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
  }

  // Linear-interpolation percentile, q in [0, 1].
  double percentile(double q) const {
    assert(!samples_.empty());
    assert(q >= 0.0 && q <= 1.0);
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }

  double median() const { return percentile(0.5); }

  // min / Q1 / median / Q3 / max — the boxplot rows printed for Figure 13.
  struct Boxplot {
    double min, q1, median, q3, max;
  };
  Boxplot boxplot() const {
    return Boxplot{min(), percentile(0.25), median(), percentile(0.75), max()};
  }

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
  double sum_ = 0.0;
};

// Fixed-format boxplot row used by the figure-13 benches.
std::string format_boxplot(const Summary& s);

// The tail-latency summary the QoS experiments report per (tenant, class):
// p50 / p90 / p99 / p999 plus mean and count, computed with one sort.  All
// values are in the unit of the input samples (the benches feed seconds).
struct LatencyPercentiles {
  size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  double max = 0.0;

  // Linear-interpolation percentiles, same convention as Summary::percentile.
  // Accepts unsorted input; an empty vector yields all zeros.
  static LatencyPercentiles from(std::vector<double> samples);
  static LatencyPercentiles from(const Summary& s) { return from(s.samples()); }

  // "n=  120 mean=0.012 p50=0.010 p90=0.021 p99=0.043 p999=0.051" — the row
  // format shared by bench_ext_qos and the latency tables in EXPERIMENTS.md.
  std::string format() const;
};

}  // namespace ear
