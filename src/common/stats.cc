#include "common/stats.h"

#include <cstdio>

namespace ear {

std::string format_boxplot(const Summary& s) {
  if (s.empty()) return "(no samples)";
  const Summary::Boxplot b = s.boxplot();
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "min=%.3f q1=%.3f med=%.3f q3=%.3f max=%.3f", b.min, b.q1,
                b.median, b.q3, b.max);
  return buf;
}

}  // namespace ear
