#include "common/stats.h"

#include <cstdio>

namespace ear {

std::string format_boxplot(const Summary& s) {
  if (s.empty()) return "(no samples)";
  const Summary::Boxplot b = s.boxplot();
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "min=%.3f q1=%.3f med=%.3f q3=%.3f max=%.3f", b.min, b.q1,
                b.median, b.q3, b.max);
  return buf;
}

namespace {

double percentile_sorted(const std::vector<double>& sorted, double q) {
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

LatencyPercentiles LatencyPercentiles::from(std::vector<double> samples) {
  LatencyPercentiles out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  out.count = samples.size();
  double acc = 0.0;
  for (const double x : samples) acc += x;
  out.mean = acc / static_cast<double>(samples.size());
  out.p50 = percentile_sorted(samples, 0.50);
  out.p90 = percentile_sorted(samples, 0.90);
  out.p99 = percentile_sorted(samples, 0.99);
  out.p999 = percentile_sorted(samples, 0.999);
  out.max = samples.back();
  return out;
}

std::string LatencyPercentiles::format() const {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "n=%5zu mean=%.4f p50=%.4f p90=%.4f p99=%.4f p999=%.4f", count,
                mean, p50, p90, p99, p999);
  return buf;
}

}  // namespace ear
