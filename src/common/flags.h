// Minimal command-line flag parsing for example and bench binaries.
//
// Usage:
//   FlagParser flags(argc, argv);
//   int k = flags.get_int("k", 10);
//   bool paper = flags.get_bool("paper-scale");
// Flags are written as --name=value or --name value; bare --name is a boolean.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace ear {

class FlagParser {
 public:
  FlagParser(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(std::move(arg));
        continue;
      }
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && argv[i + 1][0] != '-') {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "true";
      }
    }
  }

  bool has(const std::string& name) const { return values_.count(name) > 0; }

  std::string get_string(const std::string& name,
                         const std::string& fallback = "") const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  int64_t get_int(const std::string& name, int64_t fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
  }

  double get_double(const std::string& name, double fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
  }

  bool get_bool(const std::string& name, bool fallback = false) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    return it->second != "false" && it->second != "0";
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace ear
