// Shared vocabulary types for replica placement (paper §II, §III).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "topology/topology.h"

namespace ear {

using BlockId = int64_t;
using StripeId = int64_t;

inline constexpr BlockId kInvalidBlock = -1;
inline constexpr StripeId kInvalidStripe = -1;

// Erasure code parameters: a stripe has k data blocks and n - k parity
// blocks; any k of the n blocks reconstruct the data (§II-A).
struct CodeParams {
  int n = 14;
  int k = 10;

  int m() const { return n - k; }
};

// Placement policy configuration shared by RR and EAR.
struct PlacementConfig {
  CodeParams code;

  // Replication factor r before encoding (3 in HDFS, 2 in the paper's
  // 12-machine testbed where each rack has a single node).
  int replication = 3;

  // How the r replicas spread over racks:
  //  false — HDFS default: first replica in one rack, replicas 2..r on
  //          distinct nodes of a single different rack (§II-A).
  //  true  — each replica in its own rack (Figure 13(f) variant).
  bool one_replica_per_rack = false;

  // EAR only: parameter c of §III-B — the maximum number of blocks of an
  // encoded stripe allowed in a single rack.  The stripe then tolerates
  // floor((n - k) / c) rack failures.  c = 1 reproduces Facebook's
  // n-blocks-in-n-racks policy.
  int c = 1;

  // EAR only: R' of §III-D — number of target racks that must hold all data
  // and parity blocks of a stripe after encoding.  0 means "all racks".
  // Requires target_racks >= ceil(n / c).
  int target_racks = 0;
};

// Where the r replicas of one block were put.  replicas[0] is the "first"
// replica (the core-rack copy under EAR).
struct BlockPlacement {
  BlockId block = kInvalidBlock;
  StripeId stripe = kInvalidStripe;
  std::vector<NodeId> replicas;
  // Number of layout re-draws EAR needed for this block (Theorem 1); always
  // 1 for RR.
  int iterations = 1;
};

// Assembled stripe state before encoding.
struct StripeInfo {
  StripeId id = kInvalidStripe;
  RackId core_rack = kInvalidRack;  // kInvalidRack for RR
  std::vector<BlockId> blocks;      // size <= k
  std::vector<std::vector<NodeId>> replicas;  // parallel to blocks

  bool sealed(int k) const { return static_cast<int>(blocks.size()) == k; }
};

// Complete plan for encoding one sealed stripe (§II-A's three-step encoding
// operation plus the replica-retirement decision).
struct EncodePlan {
  StripeId stripe = kInvalidStripe;
  NodeId encoder = kInvalidNode;

  // kept[i]: node that keeps the surviving replica of data block i.
  std::vector<NodeId> kept;
  // parity[j]: node that stores parity block j.
  std::vector<NodeId> parity;

  // Replica copies deleted after encoding: (block index, node).
  std::vector<std::pair<int, NodeId>> deletions;

  // Data blocks the encoder must download from another rack (0 under EAR by
  // construction; ~k(1 - 2/R) under RR, §II-B).
  int cross_rack_downloads = 0;
  // Parity uploads that leave the encoder's rack.
  int cross_rack_parity_uploads = 0;
};

}  // namespace ear
