// PlacementMonitor + BlockMover (paper §II-B, §IV-A).
//
// Facebook's HDFS periodically checks every encoded stripe against the
// rack-level fault-tolerance requirement (PlacementMonitor) and relocates
// blocks when it is violated (BlockMover).  EAR produces layouts that pass
// the check by construction; RR does not, which is the availability problem
// the paper measures (Figure 3 for the preliminary design, and the
// relocation traffic ablation for full RR).
#pragma once

#include <vector>

#include "placement/types.h"
#include "topology/topology.h"

namespace ear {

// Post-encode layout of one stripe: node of every block, data first then
// parity (size n).
struct StripeLayout {
  std::vector<NodeId> nodes;
};

struct FaultToleranceReport {
  int max_blocks_per_node = 0;
  int max_blocks_per_rack = 0;
  // Rack failures the stripe survives: the worst f racks removed still leave
  // >= k blocks.
  int tolerable_rack_failures = 0;
  // Node failures survived (n - k if all blocks are on distinct nodes).
  int tolerable_node_failures = 0;

  bool rack_safe(int required_rack_failures) const {
    return tolerable_rack_failures >= required_rack_failures;
  }
};

// One relocation decided by the BlockMover: move the block at stripe
// position `block_index` from `from` to `to`.
struct Relocation {
  int block_index = -1;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
};

class PlacementMonitor {
 public:
  PlacementMonitor(const Topology& topo, CodeParams code)
      : topo_(&topo), code_(code) {}

  // Evaluates node- and rack-level fault tolerance of a stripe layout.
  FaultToleranceReport analyze(const StripeLayout& layout) const;

  // Plans the minimum set of relocations that brings the stripe to at most
  // `c` blocks per rack (and one block per node), i.e. tolerance of
  // floor((n-k)/c) rack failures.  Greedy: blocks are moved out of the most
  // loaded racks into the least loaded racks with free nodes.  Returns an
  // empty vector when the layout already complies.
  std::vector<Relocation> plan_relocations(const StripeLayout& layout,
                                           int c) const;

 private:
  const Topology* topo_;
  CodeParams code_;
};

}  // namespace ear
