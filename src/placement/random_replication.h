// Random replication (RR), the HDFS default policy (paper §II-A, §II-B).
//
// Each block's replica set is drawn independently: first replica on the
// writer (or a random node), remaining replicas per the HDFS rule.  Stripes
// are formed by arrival order — the RaidNode simply groups every k
// consecutive data blocks (inter-file encoding, §IV-A) — so nothing relates
// the replica layouts of blocks that will share a stripe.  This is exactly
// what causes RR's cross-rack downloads and post-encoding relocations.
#pragma once

#include <algorithm>
#include <unordered_map>

#include "placement/policy.h"

namespace ear {

class RandomReplication final : public PlacementPolicy {
 public:
  RandomReplication(const Topology& topo, const PlacementConfig& config,
                    uint64_t seed);

  std::string name() const override { return "RR"; }
  const PlacementConfig& config() const override { return config_; }
  const Topology& topology() const override { return *topo_; }

  BlockPlacement place_block(BlockId block,
                             std::optional<NodeId> writer) override;
  std::vector<StripeId> sealed_stripes() const override;
  const StripeInfo& stripe(StripeId id) const override;
  EncodePlan plan_encoding(StripeId id) override;

  void reserve_stripe_ids(StripeId first_free) override {
    next_stripe_id_ = std::max(next_stripe_id_, first_free);
  }

 private:
  const Topology* topo_;
  PlacementConfig config_;
  Rng rng_;

  std::unordered_map<StripeId, StripeInfo> stripes_;
  StripeId open_stripe_ = kInvalidStripe;  // stripe currently accumulating
  StripeId next_stripe_id_ = 0;
  std::vector<StripeId> sealed_;
};

}  // namespace ear
