#include "placement/ear.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_map>

#include "flow/maxflow.h"
#include "placement/replica_layout.h"

namespace ear {

namespace {

// After this many uniform re-draws we switch to directed draws that force
// the secondary rack to each eligible rack in turn (still guaranteeing
// termination for feasible configs).  Theorem 1 bounds the expected number
// of uniform draws by (R-1)/(R-1-(i-1)/c), so 256 is far beyond the tail.
constexpr int kUniformRetries = 256;

}  // namespace

int ear_stripe_max_flow(const Topology& topo, int c,
                        const std::vector<std::vector<NodeId>>& replicas,
                        const std::vector<RackId>& eligible_racks,
                        std::vector<NodeId>* matching) {
  const int block_count = static_cast<int>(replicas.size());
  if (block_count == 0) {
    if (matching) matching->clear();
    return 0;
  }

  std::vector<bool> rack_eligible(static_cast<size_t>(topo.rack_count()),
                                  eligible_racks.empty());
  for (const RackId r : eligible_racks) {
    rack_eligible[static_cast<size_t>(r)] = true;
  }

  // Dense vertex numbering: S, blocks, then replica nodes and racks on
  // demand.
  std::unordered_map<NodeId, int> node_vertex;
  std::unordered_map<RackId, int> rack_vertex;
  int vertex_count = 1 + block_count;  // S + blocks
  for (const auto& nodes : replicas) {
    for (const NodeId n : nodes) {
      if (!rack_eligible[static_cast<size_t>(topo.rack_of(n))]) continue;
      if (node_vertex.emplace(n, 0).second) ++vertex_count;
      if (rack_vertex.emplace(topo.rack_of(n), 0).second) ++vertex_count;
    }
  }
  const int s = 0;
  const int t = vertex_count;
  ++vertex_count;

  int next = 1 + block_count;
  for (auto& [node, v] : node_vertex) v = next++;
  for (auto& [rack, v] : rack_vertex) v = next++;

  flow::MaxFlow mf(vertex_count);
  // block -> node edge ids, for matching extraction.
  std::vector<std::vector<std::pair<int, NodeId>>> block_edges(
      static_cast<size_t>(block_count));

  for (int b = 0; b < block_count; ++b) {
    mf.add_edge(s, 1 + b, 1);
    for (const NodeId n : replicas[static_cast<size_t>(b)]) {
      const auto it = node_vertex.find(n);
      if (it == node_vertex.end()) continue;  // ineligible rack
      const int edge = mf.add_edge(1 + b, it->second, 1);
      block_edges[static_cast<size_t>(b)].emplace_back(edge, n);
    }
  }
  for (const auto& [node, v] : node_vertex) {
    mf.add_edge(v, rack_vertex.at(topo.rack_of(node)), 1);
  }
  for (const auto& [rack, v] : rack_vertex) {
    (void)rack;
    mf.add_edge(v, t, c);
  }

  const auto max_flow = static_cast<int>(mf.solve(s, t));

  if (matching && max_flow == block_count) {
    matching->assign(static_cast<size_t>(block_count), kInvalidNode);
    for (int b = 0; b < block_count; ++b) {
      for (const auto& [edge, node] : block_edges[static_cast<size_t>(b)]) {
        if (mf.edge_flow(edge) > 0) {
          (*matching)[static_cast<size_t>(b)] = node;
          break;
        }
      }
      assert((*matching)[static_cast<size_t>(b)] != kInvalidNode);
    }
  }
  return max_flow;
}

EncodingAwareReplication::EncodingAwareReplication(
    const Topology& topo, const PlacementConfig& config, uint64_t seed)
    : topo_(&topo), config_(config), rng_(seed) {
  const int n = config.code.n;
  const int c = config.c;
  if (c < 1) throw std::invalid_argument("EAR: c must be >= 1");
  // §III-B: a stripe of n blocks spread <= c per rack needs R >= n / c racks.
  const int racks_available =
      config.target_racks > 0 ? config.target_racks : topo.rack_count();
  if (racks_available * c < n) {
    throw std::invalid_argument(
        "EAR: (target) racks * c must be >= n to place a stripe");
  }
  if (config.target_racks > topo.rack_count()) {
    throw std::invalid_argument("EAR: target_racks exceeds rack count");
  }
  // Each rack must be able to host c stripe blocks on distinct nodes and
  // r-1 secondary replicas.
  for (RackId r = 0; r < topo.rack_count(); ++r) {
    if (topo.rack_size(r) < std::max(c, config.replication - 1)) {
      throw std::invalid_argument("EAR: rack too small for c / replication");
    }
  }
}

StripeId EncodingAwareReplication::open_stripe_for_core_rack(
    RackId core_rack) {
  const auto it = open_stripes_.find(core_rack);
  if (it != open_stripes_.end()) return it->second;

  StripeInfo info;
  info.id = next_stripe_id_++;
  info.core_rack = core_rack;
  const StripeId id = info.id;
  stripes_.emplace(id, std::move(info));
  open_stripes_.emplace(core_rack, id);

  // §III-D: pick R' target racks for the stripe, always including the core
  // rack, uniformly at random otherwise.
  std::vector<RackId> targets;
  if (config_.target_racks > 0) {
    targets.push_back(core_rack);
    std::vector<RackId> others;
    for (RackId r = 0; r < topo_->rack_count(); ++r) {
      if (r != core_rack) others.push_back(r);
    }
    rng_.shuffle(others);
    others.resize(static_cast<size_t>(config_.target_racks - 1));
    targets.insert(targets.end(), others.begin(), others.end());
  }
  target_racks_.emplace(id, std::move(targets));
  return id;
}

BlockPlacement EncodingAwareReplication::place_block(
    BlockId block, std::optional<NodeId> writer) {
  // The rack of the first replica becomes (or joins) the core rack (§III-A):
  // "for each data block to be written, the rack that stores the first
  // replica will become the core rack that includes the data block."
  NodeId first = writer.value_or(random_node(*topo_, rng_));
  const RackId core_rack = topo_->rack_of(first);
  const StripeId stripe_id = open_stripe_for_core_rack(core_rack);
  StripeInfo& s = stripes_.at(stripe_id);
  const std::vector<RackId>& targets = target_racks_.at(stripe_id);

  // §III-C: draw the remaining replicas randomly, re-drawing until the flow
  // graph admits a full matching.  After kUniformRetries uniform draws,
  // direct the secondary rack at each eligible rack in turn.
  BlockPlacement placement;
  placement.block = block;
  placement.stripe = stripe_id;

  std::vector<RackId> directed_racks;  // lazily built fallback order
  int attempt = 0;
  while (true) {
    ++attempt;
    // When the writer does not pin the first replica, re-drawing its node
    // within the core rack gives the layout loop another degree of freedom
    // (essential for r = 1, where there are no secondaries to re-draw).
    if (attempt > 1 && !writer.has_value()) {
      first = random_node_in_rack(*topo_, core_rack, rng_);
    }
    std::vector<NodeId> candidate;
    if (attempt <= kUniformRetries || config_.one_replica_per_rack) {
      candidate = draw_secondary_replicas(
          *topo_, config_, first, rng_, targets.empty() ? nullptr : &targets);
    } else {
      if (directed_racks.empty()) {
        for (const RackId r :
             targets.empty() ? [&] {
               std::vector<RackId> all;
               for (RackId r2 = 0; r2 < topo_->rack_count(); ++r2)
                 all.push_back(r2);
               return all;
             }()
                             : targets) {
          if (r != core_rack) directed_racks.push_back(r);
        }
        rng_.shuffle(directed_racks);
      }
      const size_t idx = static_cast<size_t>(attempt - kUniformRetries - 1);
      if (idx >= directed_racks.size()) {
        throw std::runtime_error(
            "EAR: no feasible replica layout exists for this configuration");
      }
      const RackId forced = directed_racks[idx];
      candidate.push_back(first);
      const auto picks = rng_.sample_without_replacement(
          static_cast<size_t>(topo_->rack_size(forced)),
          static_cast<size_t>(config_.replication - 1));
      for (const size_t off : picks) {
        candidate.push_back(topo_->rack_first_node(forced) +
                            static_cast<NodeId>(off));
      }
    }

    s.blocks.push_back(block);
    s.replicas.push_back(candidate);
    const int flow = ear_stripe_max_flow(*topo_, config_.c, s.replicas,
                                         targets, nullptr);
    if (flow == static_cast<int>(s.blocks.size())) {
      placement.replicas = std::move(candidate);
      break;
    }
    s.blocks.pop_back();
    s.replicas.pop_back();
    if (config_.one_replica_per_rack && attempt > kUniformRetries * 16) {
      throw std::runtime_error(
          "EAR: no feasible one-replica-per-rack layout found");
    }
  }

  placement.iterations = attempt;
  total_iterations_ += attempt;
  ++total_blocks_;

  if (s.sealed(config_.code.k)) {
    sealed_.push_back(stripe_id);
    open_stripes_.erase(core_rack);
  }
  return placement;
}

std::vector<StripeId> EncodingAwareReplication::sealed_stripes() const {
  return sealed_;
}

const StripeInfo& EncodingAwareReplication::stripe(StripeId id) const {
  return stripes_.at(id);
}

const std::vector<RackId>& EncodingAwareReplication::stripe_target_racks(
    StripeId id) const {
  return target_racks_.at(id);
}

EncodePlan EncodingAwareReplication::plan_encoding(StripeId id) {
  const StripeInfo& s = stripes_.at(id);
  assert(s.sealed(config_.code.k));
  const int k = config_.code.k;
  const int m = config_.code.m();
  const std::vector<RackId>& targets = target_racks_.at(id);

  EncodePlan plan;
  plan.stripe = id;
  // The encoder runs inside the core rack (§III-A); all k first replicas
  // live there, so no data block crosses racks.
  plan.encoder = random_node_in_rack(*topo_, s.core_rack, rng_);
  plan.cross_rack_downloads =
      count_cross_rack_downloads(*topo_, plan.encoder, s.replicas);
  assert(plan.cross_rack_downloads == 0);

  // Kept replicas come from the maximum matching (§III-B).  The placement
  // loop guaranteed the matching exists.
  const int flow =
      ear_stripe_max_flow(*topo_, config_.c, s.replicas, targets, &plan.kept);
  (void)flow;
  assert(flow == k);

  std::vector<int> rack_load(static_cast<size_t>(topo_->rack_count()), 0);
  std::vector<bool> node_used(static_cast<size_t>(topo_->node_count()), false);
  for (const NodeId n : plan.kept) {
    ++rack_load[static_cast<size_t>(topo_->rack_of(n))];
    node_used[static_cast<size_t>(n)] = true;
  }

  // Locality post-pass (§III-D): when c > 1 the core rack can absorb parity
  // blocks, turning their uploads intra-rack.  Re-match blocks kept in the
  // core rack to alternative replicas in other eligible racks with spare
  // capacity, freeing core slots for up to m parity blocks.
  if (config_.c > 1) {
    const auto rack_eligible = [&](RackId r) {
      return targets.empty() ||
             std::find(targets.begin(), targets.end(), r) != targets.end();
    };
    int wanted_free = m;
    for (int i = 0; i < k && wanted_free > 0; ++i) {
      const NodeId kept = plan.kept[static_cast<size_t>(i)];
      if (topo_->rack_of(kept) != s.core_rack) continue;
      for (const NodeId alt : s.replicas[static_cast<size_t>(i)]) {
        const RackId alt_rack = topo_->rack_of(alt);
        if (alt == kept || alt_rack == s.core_rack) continue;
        if (!rack_eligible(alt_rack)) continue;
        if (node_used[static_cast<size_t>(alt)]) continue;
        if (rack_load[static_cast<size_t>(alt_rack)] >= config_.c) continue;
        // Move the kept replica out of the core rack.
        plan.kept[static_cast<size_t>(i)] = alt;
        node_used[static_cast<size_t>(kept)] = false;
        node_used[static_cast<size_t>(alt)] = true;
        --rack_load[static_cast<size_t>(s.core_rack)];
        ++rack_load[static_cast<size_t>(alt_rack)];
        --wanted_free;
        break;
      }
    }
  }

  // Deletion list reflects the (possibly adjusted) matching.
  for (int i = 0; i < k; ++i) {
    for (const NodeId n : s.replicas[static_cast<size_t>(i)]) {
      if (n != plan.kept[static_cast<size_t>(i)]) {
        plan.deletions.emplace_back(i, n);
      }
    }
  }

  // Parity blocks go to racks that still have fewer than c blocks of this
  // stripe, on nodes not already holding a stripe block (§III-B), preferring
  // the core rack so the upload stays intra-rack.
  std::vector<RackId> eligible =
      targets.empty()
          ? [&] {
              std::vector<RackId> all;
              for (RackId r = 0; r < topo_->rack_count(); ++r)
                all.push_back(r);
              return all;
            }()
          : targets;

  const RackId encoder_rack = topo_->rack_of(plan.encoder);
  for (int j = 0; j < m; ++j) {
    // Prefer the core rack (intra-rack upload) while it has spare capacity,
    // otherwise a random eligible rack with spare capacity and a free node.
    const auto rack_open = [&](RackId r) {
      if (rack_load[static_cast<size_t>(r)] >= config_.c) return false;
      for (const NodeId n : topo_->nodes_in_rack(r)) {
        if (!node_used[static_cast<size_t>(n)]) return true;
      }
      return false;
    };
    std::vector<RackId> open;
    if (rack_open(encoder_rack)) {
      open.push_back(encoder_rack);
    } else {
      for (const RackId r : eligible) {
        if (rack_open(r)) open.push_back(r);
      }
    }
    if (open.empty()) {
      throw std::runtime_error("EAR: no rack left for a parity block");
    }
    const RackId rack = open[rng_.index(open.size())];
    std::vector<NodeId> free;
    for (const NodeId n : topo_->nodes_in_rack(rack)) {
      if (!node_used[static_cast<size_t>(n)]) free.push_back(n);
    }
    const NodeId node = free[rng_.index(free.size())];
    node_used[static_cast<size_t>(node)] = true;
    ++rack_load[static_cast<size_t>(rack)];
    plan.parity.push_back(node);
    if (rack != encoder_rack) ++plan.cross_rack_parity_uploads;
  }
  return plan;
}

std::unique_ptr<PlacementPolicy> make_encoding_aware_replication(
    const Topology& topo, const PlacementConfig& config, uint64_t seed) {
  return std::make_unique<EncodingAwareReplication>(topo, config, seed);
}

}  // namespace ear
