// Encoding-aware replication (EAR) — the paper's contribution (§III).
//
// Invariants maintained per stripe:
//  * every data block keeps its first replica in the stripe's core rack, so
//    an encoder in the core rack downloads zero data blocks across racks;
//  * after each block's replicas are placed, the flow graph of §III-B admits
//    a maximum flow equal to the number of blocks placed so far, i.e. a
//    system of "kept" replicas exists with <= 1 block per node and <= c
//    blocks per rack — so encoding never needs relocation;
//  * replica draws are otherwise uniformly random (same layout shape as RR),
//    re-drawn until the flow constraint holds (§III-C, Theorem 1).
//
// With config.target_racks = R' > 0, the §III-D variant is used: each stripe
// picks R' target racks (core rack included) and all post-encode blocks must
// live there, trading rack-level fault tolerance for lower cross-rack
// recovery traffic.
#pragma once

#include <algorithm>
#include <unordered_map>

#include "placement/policy.h"

namespace ear {

class EncodingAwareReplication final : public PlacementPolicy {
 public:
  EncodingAwareReplication(const Topology& topo, const PlacementConfig& config,
                           uint64_t seed);

  std::string name() const override { return "EAR"; }
  const PlacementConfig& config() const override { return config_; }
  const Topology& topology() const override { return *topo_; }

  BlockPlacement place_block(BlockId block,
                             std::optional<NodeId> writer) override;
  std::vector<StripeId> sealed_stripes() const override;
  const StripeInfo& stripe(StripeId id) const override;
  EncodePlan plan_encoding(StripeId id) override;

  void reserve_stripe_ids(StripeId first_free) override {
    next_stripe_id_ = std::max(next_stripe_id_, first_free);
  }

  // Target racks of a stripe (empty when config.target_racks == 0).
  const std::vector<RackId>& stripe_target_racks(StripeId id) const;

  // Total replica-layout draws across all place_block calls (Theorem 1
  // measurements).
  int64_t total_layout_iterations() const { return total_iterations_; }
  int64_t total_blocks_placed() const { return total_blocks_; }

 private:
  StripeId open_stripe_for_core_rack(RackId core_rack);

  const Topology* topo_;
  PlacementConfig config_;
  Rng rng_;

  std::unordered_map<StripeId, StripeInfo> stripes_;
  std::unordered_map<StripeId, std::vector<RackId>> target_racks_;
  std::unordered_map<RackId, StripeId> open_stripes_;  // core rack -> stripe
  StripeId next_stripe_id_ = 0;
  std::vector<StripeId> sealed_;
  int64_t total_iterations_ = 0;
  int64_t total_blocks_ = 0;
};

// Flow-graph feasibility check of §III-B, exposed for tests and analysis.
//
// Computes the maximum flow of the graph
//   S -> block(cap 1) -> replica node(cap 1 into its rack) -> rack(cap c) -> T
// restricted to `eligible_racks` (empty = all racks).  If `matching` is
// non-null and the max flow equals the number of blocks, *matching receives
// the kept node of each block.
int ear_stripe_max_flow(const Topology& topo, int c,
                        const std::vector<std::vector<NodeId>>& replicas,
                        const std::vector<RackId>& eligible_racks,
                        std::vector<NodeId>* matching = nullptr);

}  // namespace ear
