// Shared replica-layout primitives used by both RR and EAR.
//
// Both policies draw the same *shape* of layout (HDFS default: replicas 2..r
// on distinct nodes of one rack different from the first replica's rack, or
// the one-replica-per-rack variant); they differ only in how the first
// replica's rack is chosen and whether a layout may be rejected.
#pragma once

#include <vector>

#include "common/rng.h"
#include "placement/types.h"
#include "topology/topology.h"

namespace ear {

// Draws the replica node list for one block given the (already chosen) node
// of the first replica.  Honors config.one_replica_per_rack.  The returned
// vector has config.replication entries, all distinct nodes, and — in HDFS
// default mode — replicas 2..r share one rack that differs from the first
// replica's rack.  When `allowed_racks` is non-null, secondary racks are
// drawn from it (EAR's §III-D target racks: every replica of the stripe
// lives in the target racks).
std::vector<NodeId> draw_secondary_replicas(
    const Topology& topo, const PlacementConfig& config, NodeId first_replica,
    Rng& rng, const std::vector<RackId>* allowed_racks = nullptr);

// Picks a uniformly random node of the given rack.
NodeId random_node_in_rack(const Topology& topo, RackId rack, Rng& rng);

// Picks a uniformly random node of the cluster.
NodeId random_node(const Topology& topo, Rng& rng);

}  // namespace ear
