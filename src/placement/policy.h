// Replica placement policy interface (paper §II-A / §III).
//
// A policy is driven block-by-block: the CFS calls place_block() for every
// new block written, and the policy both chooses the replica nodes and
// assembles blocks into stripes of k for later encoding.  Once a stripe is
// sealed, plan_encoding() decides the encoder node, the surviving replica of
// each data block, and the parity block locations.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "placement/types.h"
#include "topology/topology.h"

namespace ear {

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  virtual std::string name() const = 0;
  virtual const PlacementConfig& config() const = 0;
  virtual const Topology& topology() const = 0;

  // Places the replicas of a new block and assigns it to a stripe under
  // assembly.  `writer` is the node issuing the write (HDFS places the first
  // replica locally when possible); nullopt means a remote client.
  virtual BlockPlacement place_block(
      BlockId block, std::optional<NodeId> writer = std::nullopt) = 0;

  // Stripes that have accumulated k blocks and may be encoded.
  virtual std::vector<StripeId> sealed_stripes() const = 0;

  virtual const StripeInfo& stripe(StripeId id) const = 0;

  // Builds the full encoding plan for a sealed stripe.  For EAR the plan is
  // relocation-free by construction; for RR the caller may need
  // PlacementMonitor + BlockMover afterwards.
  virtual EncodePlan plan_encoding(StripeId id) = 0;

  // Ensures future stripes get ids >= first_free.  Used when restoring a
  // NameNode from a checkpoint so new stripes cannot collide with
  // snapshotted ones.
  virtual void reserve_stripe_ids(StripeId first_free) = 0;

 protected:
  // Counts how many data blocks the encoder must fetch from outside its own
  // rack, given one replica set per block.
  static int count_cross_rack_downloads(
      const Topology& topo, NodeId encoder,
      const std::vector<std::vector<NodeId>>& replicas);
};

// Factory helpers.
std::unique_ptr<PlacementPolicy> make_random_replication(
    const Topology& topo, const PlacementConfig& config, uint64_t seed);
std::unique_ptr<PlacementPolicy> make_encoding_aware_replication(
    const Topology& topo, const PlacementConfig& config, uint64_t seed);

}  // namespace ear
