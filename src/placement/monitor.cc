#include "placement/monitor.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace ear {

FaultToleranceReport PlacementMonitor::analyze(
    const StripeLayout& layout) const {
  assert(static_cast<int>(layout.nodes.size()) == code_.n);
  FaultToleranceReport report;

  std::map<NodeId, int> per_node;
  std::vector<int> per_rack(static_cast<size_t>(topo_->rack_count()), 0);
  for (const NodeId n : layout.nodes) {
    ++per_node[n];
    ++per_rack[static_cast<size_t>(topo_->rack_of(n))];
  }
  for (const auto& [node, count] : per_node) {
    (void)node;
    report.max_blocks_per_node = std::max(report.max_blocks_per_node, count);
  }
  report.max_blocks_per_rack =
      *std::max_element(per_rack.begin(), per_rack.end());

  // Worst-case failures remove the most loaded racks/nodes first; the stripe
  // survives while >= k blocks remain.
  const int m = code_.m();
  std::vector<int> rack_loads;
  for (const int load : per_rack) {
    if (load > 0) rack_loads.push_back(load);
  }
  std::sort(rack_loads.rbegin(), rack_loads.rend());
  int lost = 0;
  int rack_failures = 0;
  for (const int load : rack_loads) {
    lost += load;
    if (lost > m) break;
    ++rack_failures;
  }
  report.tolerable_rack_failures = rack_failures;

  std::vector<int> node_loads;
  node_loads.reserve(per_node.size());
  for (const auto& [node, count] : per_node) {
    (void)node;
    node_loads.push_back(count);
  }
  std::sort(node_loads.rbegin(), node_loads.rend());
  lost = 0;
  int node_failures = 0;
  for (const int load : node_loads) {
    lost += load;
    if (lost > m) break;
    ++node_failures;
  }
  report.tolerable_node_failures = node_failures;
  return report;
}

std::vector<Relocation> PlacementMonitor::plan_relocations(
    const StripeLayout& layout, int c) const {
  assert(c >= 1);
  std::vector<Relocation> moves;

  std::vector<int> per_rack(static_cast<size_t>(topo_->rack_count()), 0);
  std::vector<int> node_load(static_cast<size_t>(topo_->node_count()), 0);
  for (const NodeId n : layout.nodes) {
    ++node_load[static_cast<size_t>(n)];
    ++per_rack[static_cast<size_t>(topo_->rack_of(n))];
  }

  // Block indices that must move: extras beyond c in their rack, or blocks
  // doubled up on a node.  Walk blocks in stripe order and evict the later
  // ones.
  std::vector<int> rack_kept(static_cast<size_t>(topo_->rack_count()), 0);
  std::vector<bool> node_kept(static_cast<size_t>(topo_->node_count()), false);
  std::vector<int> to_move;
  for (size_t i = 0; i < layout.nodes.size(); ++i) {
    const NodeId n = layout.nodes[i];
    const RackId r = topo_->rack_of(n);
    if (node_kept[static_cast<size_t>(n)] ||
        rack_kept[static_cast<size_t>(r)] >= c) {
      to_move.push_back(static_cast<int>(i));
    } else {
      node_kept[static_cast<size_t>(n)] = true;
      ++rack_kept[static_cast<size_t>(r)];
    }
  }

  // Destination selection: least-loaded racks with capacity, first free node.
  for (const int idx : to_move) {
    RackId best_rack = kInvalidRack;
    for (RackId r = 0; r < topo_->rack_count(); ++r) {
      if (rack_kept[static_cast<size_t>(r)] >= c) continue;
      if (best_rack == kInvalidRack ||
          rack_kept[static_cast<size_t>(r)] <
              rack_kept[static_cast<size_t>(best_rack)]) {
        best_rack = r;
      }
    }
    if (best_rack == kInvalidRack) return moves;  // infeasible (c too small)

    NodeId dest = kInvalidNode;
    for (const NodeId n : topo_->nodes_in_rack(best_rack)) {
      if (!node_kept[static_cast<size_t>(n)]) {
        dest = n;
        break;
      }
    }
    if (dest == kInvalidNode) return moves;

    moves.push_back(Relocation{idx, layout.nodes[static_cast<size_t>(idx)],
                               dest});
    node_kept[static_cast<size_t>(dest)] = true;
    ++rack_kept[static_cast<size_t>(best_rack)];
  }
  return moves;
}

}  // namespace ear
