#include "placement/replica_layout.h"

#include <algorithm>
#include <cassert>

namespace ear {

NodeId random_node_in_rack(const Topology& topo, RackId rack, Rng& rng) {
  return topo.rack_first_node(rack) +
         static_cast<NodeId>(rng.uniform(
             static_cast<uint64_t>(topo.rack_size(rack))));
}

NodeId random_node(const Topology& topo, Rng& rng) {
  return static_cast<NodeId>(
      rng.uniform(static_cast<uint64_t>(topo.node_count())));
}

std::vector<NodeId> draw_secondary_replicas(
    const Topology& topo, const PlacementConfig& config, NodeId first_replica,
    Rng& rng, const std::vector<RackId>* allowed_racks) {
  const int r = config.replication;
  assert(r >= 1);
  std::vector<NodeId> replicas{first_replica};
  if (r == 1) return replicas;

  const RackId first_rack = topo.rack_of(first_replica);
  const auto draw_rack = [&]() -> RackId {
    if (allowed_racks != nullptr && !allowed_racks->empty()) {
      return (*allowed_racks)[rng.index(allowed_racks->size())];
    }
    return static_cast<RackId>(
        rng.uniform(static_cast<uint64_t>(topo.rack_count())));
  };

  if (config.one_replica_per_rack) {
    // Figure 13(f) variant: every replica in its own rack.
    assert(topo.rack_count() >= r);
    std::vector<RackId> used{first_rack};
    while (static_cast<int>(replicas.size()) < r) {
      const RackId rack = draw_rack();
      if (std::find(used.begin(), used.end(), rack) != used.end()) continue;
      used.push_back(rack);
      replicas.push_back(random_node_in_rack(topo, rack, rng));
    }
    return replicas;
  }

  // HDFS default (§II-A): replicas 2..r on r-1 distinct nodes of a single
  // rack different from the first replica's rack.
  assert(topo.rack_count() >= 2);
  RackId second_rack;
  do {
    second_rack = draw_rack();
  } while (second_rack == first_rack);
  assert(topo.rack_size(second_rack) >= r - 1);

  const auto picks = rng.sample_without_replacement(
      static_cast<size_t>(topo.rack_size(second_rack)),
      static_cast<size_t>(r - 1));
  for (const size_t offset : picks) {
    replicas.push_back(topo.rack_first_node(second_rack) +
                       static_cast<NodeId>(offset));
  }
  return replicas;
}

}  // namespace ear
