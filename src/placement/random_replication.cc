#include "placement/random_replication.h"

#include <algorithm>
#include <cassert>

#include "placement/replica_layout.h"

namespace ear {

RandomReplication::RandomReplication(const Topology& topo,
                                     const PlacementConfig& config,
                                     uint64_t seed)
    : topo_(&topo), config_(config), rng_(seed) {
  assert(topo.rack_count() >= 2);
  assert(config.replication >= 1);
}

BlockPlacement RandomReplication::place_block(BlockId block,
                                              std::optional<NodeId> writer) {
  // HDFS: first replica on the writing node when it is a DataNode, otherwise
  // a random node of a random rack.
  const NodeId first = writer.value_or(random_node(*topo_, rng_));

  BlockPlacement placement;
  placement.block = block;
  placement.replicas = draw_secondary_replicas(*topo_, config_, first, rng_);
  placement.iterations = 1;

  // Stripe assembly: arrival order, k blocks per stripe.
  if (open_stripe_ == kInvalidStripe) {
    StripeInfo info;
    info.id = next_stripe_id_++;
    open_stripe_ = info.id;
    stripes_.emplace(info.id, std::move(info));
  }
  StripeInfo& s = stripes_.at(open_stripe_);
  s.blocks.push_back(block);
  s.replicas.push_back(placement.replicas);
  placement.stripe = s.id;
  if (s.sealed(config_.code.k)) {
    sealed_.push_back(s.id);
    open_stripe_ = kInvalidStripe;
  }
  return placement;
}

std::vector<StripeId> RandomReplication::sealed_stripes() const {
  return sealed_;
}

const StripeInfo& RandomReplication::stripe(StripeId id) const {
  return stripes_.at(id);
}

EncodePlan RandomReplication::plan_encoding(StripeId id) {
  const StripeInfo& s = stripes_.at(id);
  assert(s.sealed(config_.code.k));
  const int k = config_.code.k;
  const int m = config_.code.m();

  EncodePlan plan;
  plan.stripe = id;
  // §II-A: "The CFS randomly selects a node to perform the encoding
  // operation for a stripe."
  plan.encoder = random_node(*topo_, rng_);
  plan.cross_rack_downloads =
      count_cross_rack_downloads(*topo_, plan.encoder, s.replicas);

  // Keep one replica per data block.  HDFS-RAID retains the first replica it
  // finds; we keep a uniformly random one, which matches the independence
  // assumption of the paper's analysis (§II-B).  Nothing aligns these picks,
  // so the post-encode layout may violate rack-level fault tolerance —
  // that is RR's availability problem, detected later by PlacementMonitor.
  std::vector<bool> node_used(static_cast<size_t>(topo_->node_count()), false);
  plan.kept.reserve(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    const auto& replicas = s.replicas[static_cast<size_t>(i)];
    // Prefer a replica on a node not already keeping another block of this
    // stripe (node-level fault tolerance), falling back to any replica.
    std::vector<NodeId> candidates;
    for (const NodeId n : replicas) {
      if (!node_used[static_cast<size_t>(n)]) candidates.push_back(n);
    }
    const NodeId kept = candidates.empty()
                            ? replicas[rng_.index(replicas.size())]
                            : candidates[rng_.index(candidates.size())];
    node_used[static_cast<size_t>(kept)] = true;
    plan.kept.push_back(kept);
    for (const NodeId n : replicas) {
      if (n != kept) plan.deletions.emplace_back(i, n);
    }
  }

  // Parity blocks are written through the normal HDFS write path with
  // replication 1: random distinct nodes not already holding stripe blocks.
  plan.parity.reserve(static_cast<size_t>(m));
  const RackId encoder_rack = topo_->rack_of(plan.encoder);
  for (int j = 0; j < m; ++j) {
    NodeId n;
    do {
      n = random_node(*topo_, rng_);
    } while (node_used[static_cast<size_t>(n)]);
    node_used[static_cast<size_t>(n)] = true;
    plan.parity.push_back(n);
    if (topo_->rack_of(n) != encoder_rack) ++plan.cross_rack_parity_uploads;
  }
  return plan;
}

std::unique_ptr<PlacementPolicy> make_random_replication(
    const Topology& topo, const PlacementConfig& config, uint64_t seed) {
  return std::make_unique<RandomReplication>(topo, config, seed);
}

}  // namespace ear
