#include "placement/policy.h"

namespace ear {

int PlacementPolicy::count_cross_rack_downloads(
    const Topology& topo, NodeId encoder,
    const std::vector<std::vector<NodeId>>& replicas) {
  const RackId encoder_rack = topo.rack_of(encoder);
  int cross = 0;
  for (const auto& nodes : replicas) {
    bool local = false;
    for (const NodeId n : nodes) {
      if (topo.rack_of(n) == encoder_rack) {
        local = true;
        break;
      }
    }
    if (!local) ++cross;
  }
  return cross;
}

}  // namespace ear
