// NEON GF(2^8) kernels: TBL (vqtbl1q_u8) over the same 16-entry nibble
// tables as the x86 shuffle kernels — the vtbl twin of PSHUFB.  2-way
// unrolled (32 bytes per iteration); ragged heads/tails fall back to the
// scalar reference so every length is bit-compatible with it.
//
// NEON is architecturally guaranteed on aarch64, so this kernel needs no
// runtime probe; the build only compiles this TU on ARM targets.
#include <arm_neon.h>

#include "gf256/kernel.h"

#include <cstring>

namespace ear::gf {

namespace {

using detail::NibbleTables;

// c * v for 16 bytes at once.
inline uint8x16_t mul_vec(uint8x16_t v, uint8x16_t lo, uint8x16_t hi) {
  const uint8x16_t l = vqtbl1q_u8(lo, vandq_u8(v, vdupq_n_u8(0x0f)));
  const uint8x16_t h = vqtbl1q_u8(hi, vshrq_n_u8(v, 4));
  return veorq_u8(l, h);
}

void neon_xor_add(const uint8_t* src, uint8_t* dst, size_t n) {
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    vst1q_u8(dst + i, veorq_u8(vld1q_u8(src + i), vld1q_u8(dst + i)));
    vst1q_u8(dst + i + 16,
             veorq_u8(vld1q_u8(src + i + 16), vld1q_u8(dst + i + 16)));
  }
  detail::scalar_xor_add(src + i, dst + i, n - i);
}

void neon_mul_add(uint8_t c, const uint8_t* src, uint8_t* dst, size_t n) {
  if (n == 0 || c == 0) return;
  if (c == 1) {
    neon_xor_add(src, dst, n);
    return;
  }
  const NibbleTables t = detail::make_nibble_tables(c);
  const uint8x16_t lo = vld1q_u8(t.lo);
  const uint8x16_t hi = vld1q_u8(t.hi);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    vst1q_u8(dst + i,
             veorq_u8(vld1q_u8(dst + i), mul_vec(vld1q_u8(src + i), lo, hi)));
    vst1q_u8(dst + i + 16, veorq_u8(vld1q_u8(dst + i + 16),
                                    mul_vec(vld1q_u8(src + i + 16), lo, hi)));
  }
  if (i + 16 <= n) {
    vst1q_u8(dst + i,
             veorq_u8(vld1q_u8(dst + i), mul_vec(vld1q_u8(src + i), lo, hi)));
    i += 16;
  }
  detail::scalar_mul_add(c, src + i, dst + i, n - i);
}

void neon_mul_assign(uint8_t c, const uint8_t* src, uint8_t* dst, size_t n) {
  if (n == 0) return;
  if (c == 0) {
    std::memset(dst, 0, n);
    return;
  }
  if (c == 1) {
    std::memmove(dst, src, n);
    return;
  }
  const NibbleTables t = detail::make_nibble_tables(c);
  const uint8x16_t lo = vld1q_u8(t.lo);
  const uint8x16_t hi = vld1q_u8(t.hi);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    vst1q_u8(dst + i, mul_vec(vld1q_u8(src + i), lo, hi));
    vst1q_u8(dst + i + 16, mul_vec(vld1q_u8(src + i + 16), lo, hi));
  }
  if (i + 16 <= n) {
    vst1q_u8(dst + i, mul_vec(vld1q_u8(src + i), lo, hi));
    i += 16;
  }
  detail::scalar_mul_assign(c, src + i, dst + i, n - i);
}

// Multi-source sweep: batches of 8 sources share the two accumulator
// vectors, so dst is loaded/stored once per batch instead of once per
// source.
void neon_mul_add_multi(uint8_t* dst, const uint8_t* const* srcs,
                        const uint8_t* coeffs, size_t nsrc, size_t n,
                        bool accumulate) {
  if (n == 0) return;
  constexpr size_t kBatch = 8;
  bool seeded = accumulate;  // does dst already hold a partial sum?
  size_t j = 0;
  while (j < nsrc) {
    const uint8_t* bsrc[kBatch];
    NibbleTables bt[kBatch];
    size_t b = 0;
    for (; j < nsrc && b < kBatch; ++j) {
      if (coeffs[j] == 0) continue;  // sparse schedules skip dead terms
      bsrc[b] = srcs[j];
      bt[b] = detail::make_nibble_tables(coeffs[j]);
      ++b;
    }
    if (b == 0) break;
    size_t i = 0;
    for (; i + 32 <= n; i += 32) {
      uint8x16_t acc0, acc1;
      if (seeded) {
        acc0 = vld1q_u8(dst + i);
        acc1 = vld1q_u8(dst + i + 16);
      } else {
        acc0 = vdupq_n_u8(0);
        acc1 = vdupq_n_u8(0);
      }
      for (size_t s = 0; s < b; ++s) {
        const uint8x16_t lo = vld1q_u8(bt[s].lo);
        const uint8x16_t hi = vld1q_u8(bt[s].hi);
        acc0 = veorq_u8(acc0, mul_vec(vld1q_u8(bsrc[s] + i), lo, hi));
        acc1 = veorq_u8(acc1, mul_vec(vld1q_u8(bsrc[s] + i + 16), lo, hi));
      }
      vst1q_u8(dst + i, acc0);
      vst1q_u8(dst + i + 16, acc1);
    }
    for (; i < n; ++i) {
      uint8_t v = seeded ? dst[i] : uint8_t{0};
      for (size_t s = 0; s < b; ++s) {
        const uint8_t a = bsrc[s][i];
        v ^= bt[s].lo[a & 0x0f] ^ bt[s].hi[a >> 4];
      }
      dst[i] = v;
    }
    seeded = true;
  }
  if (!seeded) std::memset(dst, 0, n);  // no live terms, no prior contents
}

}  // namespace

extern const GfKernel kNeonKernel;
const GfKernel kNeonKernel = {
    "neon",          neon_mul_add, neon_mul_assign,
    neon_xor_add, neon_mul_add_multi,
};

}  // namespace ear::gf
