// Arithmetic over GF(2^8), the field underlying the Reed-Solomon codec.
//
// The field is constructed from the primitive polynomial
//   x^8 + x^4 + x^3 + x^2 + 1   (0x11d),
// the same polynomial used by HDFS-RAID, ISA-L and Jerasure, so encoded
// parity bytes are bit-compatible with those implementations.
//
// Element representation: uint8_t.  Addition is XOR.  Single-element
// `mul`/`inv`/`div`/`pow` use constexpr log/exp tables and stay scalar —
// matrix inversion and plan construction need them at compile time and on
// one byte at a time, where SIMD buys nothing.
//
// The bulk kernels (`mul_add`, `mul_assign`, `xor_add`, `mul_add_multi`)
// dispatch through a per-ISA function table selected once at startup (see
// kernel.h): a scalar low/high-nibble split-table reference, and SSSE3 /
// AVX2 / NEON shuffle kernels that apply the same 16-entry nibble tables
// with PSHUFB/VPSHUFB/TBL, 32–64 bytes per iteration.  Every kernel is
// bit-compatible with the scalar field for all coefficients, lengths and
// alignments (enforced exhaustively by tests/gf256_kernel_test.cc); the
// `EAR_GF_KERNEL` environment variable pins a specific kernel for tests
// and CI.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>

namespace ear::gf {

inline constexpr unsigned kPrimitivePoly = 0x11d;
inline constexpr int kFieldSize = 256;

namespace detail {

struct Tables {
  uint8_t exp[512];   // exp[i] = alpha^i, doubled to avoid a mod in mul
  uint8_t log[256];   // log[exp[i]] = i; log[0] unused
  uint8_t inv[256];   // multiplicative inverse; inv[0] unused

  constexpr Tables() : exp{}, log{}, inv{} {
    unsigned x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[i] = static_cast<uint8_t>(x);
      log[x] = static_cast<uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= kPrimitivePoly;
    }
    for (int i = 255; i < 512; ++i) exp[i] = exp[i - 255];
    inv[1] = 1;
    for (int i = 2; i < 256; ++i) {
      inv[i] = exp[255 - log[i]];
    }
  }
};

inline constexpr Tables kTables{};

}  // namespace detail

constexpr uint8_t add(uint8_t a, uint8_t b) { return a ^ b; }
constexpr uint8_t sub(uint8_t a, uint8_t b) { return a ^ b; }

constexpr uint8_t mul(uint8_t a, uint8_t b) {
  if (a == 0 || b == 0) return 0;
  return detail::kTables
      .exp[detail::kTables.log[a] + detail::kTables.log[b]];
}

constexpr uint8_t inv(uint8_t a) {
  // Precondition: a != 0 (division by zero is undefined in the field).
  return detail::kTables.inv[a];
}

constexpr uint8_t div(uint8_t a, uint8_t b) { return mul(a, inv(b)); }

// alpha^i for the canonical generator alpha = 2.
constexpr uint8_t exp_alpha(unsigned i) {
  return detail::kTables.exp[i % 255];
}

constexpr uint8_t pow(uint8_t a, unsigned e) {
  if (a == 0) return e == 0 ? 1 : 0;
  const unsigned l = detail::kTables.log[a];
  return detail::kTables.exp[(l * e) % 255];
}

// Per-coefficient multiply table split by nibble: product of c with any byte
// b equals lo[b & 15] ^ hi[b >> 4].  Built once per coefficient, then applied
// to whole blocks.
class MulTable {
 public:
  explicit MulTable(uint8_t c) {
    for (int i = 0; i < 16; ++i) {
      lo_[i] = mul(c, static_cast<uint8_t>(i));
      hi_[i] = mul(c, static_cast<uint8_t>(i << 4));
    }
  }

  uint8_t apply(uint8_t b) const { return lo_[b & 0x0f] ^ hi_[b >> 4]; }

 private:
  uint8_t lo_[16];
  uint8_t hi_[16];
};

// dst[i] ^= c * src[i] for all i.  The core encode/decode kernel.
void mul_add(uint8_t c, std::span<const uint8_t> src, std::span<uint8_t> dst);

// dst[i] = c * src[i] for all i.
void mul_assign(uint8_t c, std::span<const uint8_t> src,
                std::span<uint8_t> dst);

// dst[i] ^= src[i] (c == 1 fast path).
void xor_add(std::span<const uint8_t> src, std::span<uint8_t> dst);

// dst = (accumulate ? dst : 0) XOR sum_j coeffs[j] * srcs[j], in one sweep
// over dst: the whole-row kernel behind RS/LRC/Clay row application, plan
// execution and the ecdag executor's compiled term lists.  Zero
// coefficients are skipped (sparse schedules pass them freely); with no
// live term and !accumulate, dst is zero-filled.  Each srcs[j] must cover
// dst.size() bytes and must not alias dst.
void mul_add_multi(std::span<const uint8_t* const> srcs,
                   std::span<const uint8_t> coeffs, std::span<uint8_t> dst,
                   bool accumulate);

}  // namespace ear::gf
