// AVX2 GF(2^8) kernels: VPSHUFB over the same 16-entry nibble tables as the
// SSSE3 kernel, broadcast to both 128-bit lanes so one shuffle multiplies 32
// bytes.  2-way unrolled (64 bytes per iteration); ragged heads/tails fall
// back to the scalar reference so every length is bit-compatible with it.
//
// This TU is compiled with -mavx2; nothing here may run before the
// dispatcher has checked __builtin_cpu_supports("avx2").
#include <immintrin.h>

#include "gf256/kernel.h"

#include <cstring>

namespace ear::gf {

namespace {

using detail::NibbleTables;

inline __m256i broadcast_table(const uint8_t* t) {
  return _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t)));
}

// c * v for 32 bytes at once.
inline __m256i mul_vec(__m256i v, __m256i lo, __m256i hi, __m256i mask) {
  const __m256i l = _mm256_shuffle_epi8(lo, _mm256_and_si256(v, mask));
  const __m256i h =
      _mm256_shuffle_epi8(hi, _mm256_and_si256(_mm256_srli_epi64(v, 4), mask));
  return _mm256_xor_si256(l, h);
}

void avx2_xor_add(const uint8_t* src, uint8_t* dst, size_t n) {
  size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i a0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i a1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    const __m256i b0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(a0, b0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32),
                        _mm256_xor_si256(a1, b1));
  }
  detail::scalar_xor_add(src + i, dst + i, n - i);
}

void avx2_mul_add(uint8_t c, const uint8_t* src, uint8_t* dst, size_t n) {
  if (n == 0 || c == 0) return;
  if (c == 1) {
    avx2_xor_add(src, dst, n);
    return;
  }
  const NibbleTables t = detail::make_nibble_tables(c);
  const __m256i lo = broadcast_table(t.lo);
  const __m256i hi = broadcast_table(t.hi);
  const __m256i mask = _mm256_set1_epi8(0x0f);
  size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i a0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i a1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    const __m256i b0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(b0, mul_vec(a0, lo, hi, mask)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32),
                        _mm256_xor_si256(b1, mul_vec(a1, lo, hi, mask)));
  }
  if (i + 32 <= n) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(b, mul_vec(a, lo, hi, mask)));
    i += 32;
  }
  detail::scalar_mul_add(c, src + i, dst + i, n - i);
}

void avx2_mul_assign(uint8_t c, const uint8_t* src, uint8_t* dst, size_t n) {
  if (n == 0) return;
  if (c == 0) {
    std::memset(dst, 0, n);
    return;
  }
  if (c == 1) {
    std::memmove(dst, src, n);
    return;
  }
  const NibbleTables t = detail::make_nibble_tables(c);
  const __m256i lo = broadcast_table(t.lo);
  const __m256i hi = broadcast_table(t.hi);
  const __m256i mask = _mm256_set1_epi8(0x0f);
  size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i a0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i a1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        mul_vec(a0, lo, hi, mask));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32),
                        mul_vec(a1, lo, hi, mask));
  }
  if (i + 32 <= n) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        mul_vec(a, lo, hi, mask));
    i += 32;
  }
  detail::scalar_mul_assign(c, src + i, dst + i, n - i);
}

// Multi-source sweep: batches of 8 sources share the two accumulator
// vectors, so dst is loaded/stored once per batch instead of once per
// source (the per-output term lists of the ecdag executor and the codec
// row applications are the callers).
void avx2_mul_add_multi(uint8_t* dst, const uint8_t* const* srcs,
                        const uint8_t* coeffs, size_t nsrc, size_t n,
                        bool accumulate) {
  if (n == 0) return;
  constexpr size_t kBatch = 8;
  const __m256i mask = _mm256_set1_epi8(0x0f);
  bool seeded = accumulate;  // does dst already hold a partial sum?
  size_t j = 0;
  while (j < nsrc) {
    const uint8_t* bsrc[kBatch];
    NibbleTables bt[kBatch];
    size_t b = 0;
    for (; j < nsrc && b < kBatch; ++j) {
      if (coeffs[j] == 0) continue;  // sparse schedules skip dead terms
      bsrc[b] = srcs[j];
      bt[b] = detail::make_nibble_tables(coeffs[j]);
      ++b;
    }
    if (b == 0) break;
    size_t i = 0;
    for (; i + 64 <= n; i += 64) {
      __m256i acc0, acc1;
      if (seeded) {
        acc0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
        acc1 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
      } else {
        acc0 = _mm256_setzero_si256();
        acc1 = _mm256_setzero_si256();
      }
      for (size_t s = 0; s < b; ++s) {
        const __m256i lo = broadcast_table(bt[s].lo);
        const __m256i hi = broadcast_table(bt[s].hi);
        const __m256i a0 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bsrc[s] + i));
        const __m256i a1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(bsrc[s] + i + 32));
        acc0 = _mm256_xor_si256(acc0, mul_vec(a0, lo, hi, mask));
        acc1 = _mm256_xor_si256(acc1, mul_vec(a1, lo, hi, mask));
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), acc0);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32), acc1);
    }
    for (; i < n; ++i) {
      uint8_t v = seeded ? dst[i] : uint8_t{0};
      for (size_t s = 0; s < b; ++s) {
        const uint8_t a = bsrc[s][i];
        v ^= bt[s].lo[a & 0x0f] ^ bt[s].hi[a >> 4];
      }
      dst[i] = v;
    }
    seeded = true;
  }
  if (!seeded) std::memset(dst, 0, n);  // no live terms, no prior contents
}

}  // namespace

extern const GfKernel kAvx2Kernel;
const GfKernel kAvx2Kernel = {
    "avx2",          avx2_mul_add, avx2_mul_assign,
    avx2_xor_add, avx2_mul_add_multi,
};

}  // namespace ear::gf
