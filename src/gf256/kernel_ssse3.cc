// SSSE3 GF(2^8) kernels: PSHUFB over per-coefficient 16-entry nibble tables
// (the ISA-L idiom).  Each 16-byte vector v splits into low/high nibbles;
// two shuffles and one XOR give c * v.  Loops are 2-way unrolled (32 bytes
// per iteration); ragged heads/tails fall back to the scalar reference so
// every length is bit-compatible with it.
//
// This TU is compiled with -mssse3; nothing here may run before the
// dispatcher has checked __builtin_cpu_supports("ssse3").
#include <tmmintrin.h>

#include "gf256/kernel.h"

#include <cstring>

namespace ear::gf {

namespace {

using detail::NibbleTables;

inline __m128i load_table(const uint8_t* t) {
  return _mm_load_si128(reinterpret_cast<const __m128i*>(t));
}

// c * v for 16 bytes at once.
inline __m128i mul_vec(__m128i v, __m128i lo, __m128i hi, __m128i mask) {
  const __m128i l = _mm_shuffle_epi8(lo, _mm_and_si128(v, mask));
  const __m128i h =
      _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(v, 4), mask));
  return _mm_xor_si128(l, h);
}

void ssse3_xor_add(const uint8_t* src, uint8_t* dst, size_t n) {
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m128i a0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i a1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i + 16));
    const __m128i b0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i b1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i + 16));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(a0, b0));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 16),
                     _mm_xor_si128(a1, b1));
  }
  detail::scalar_xor_add(src + i, dst + i, n - i);
}

void ssse3_mul_add(uint8_t c, const uint8_t* src, uint8_t* dst, size_t n) {
  if (n == 0 || c == 0) return;
  if (c == 1) {
    ssse3_xor_add(src, dst, n);
    return;
  }
  const NibbleTables t = detail::make_nibble_tables(c);
  const __m128i lo = load_table(t.lo);
  const __m128i hi = load_table(t.hi);
  const __m128i mask = _mm_set1_epi8(0x0f);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m128i a0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i a1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i + 16));
    const __m128i b0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i b1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i + 16));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(b0, mul_vec(a0, lo, hi, mask)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 16),
                     _mm_xor_si128(b1, mul_vec(a1, lo, hi, mask)));
  }
  if (i + 16 <= n) {
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(b, mul_vec(a, lo, hi, mask)));
    i += 16;
  }
  detail::scalar_mul_add(c, src + i, dst + i, n - i);
}

void ssse3_mul_assign(uint8_t c, const uint8_t* src, uint8_t* dst, size_t n) {
  if (n == 0) return;
  if (c == 0) {
    std::memset(dst, 0, n);
    return;
  }
  if (c == 1) {
    std::memmove(dst, src, n);
    return;
  }
  const NibbleTables t = detail::make_nibble_tables(c);
  const __m128i lo = load_table(t.lo);
  const __m128i hi = load_table(t.hi);
  const __m128i mask = _mm_set1_epi8(0x0f);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m128i a0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i a1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i + 16));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     mul_vec(a0, lo, hi, mask));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 16),
                     mul_vec(a1, lo, hi, mask));
  }
  if (i + 16 <= n) {
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     mul_vec(a, lo, hi, mask));
    i += 16;
  }
  detail::scalar_mul_assign(c, src + i, dst + i, n - i);
}

// Multi-source sweep: sources are processed in register-friendly batches of
// 8; within a batch the two accumulator vectors stay live across all
// sources, so dst is loaded/stored once per batch instead of once per
// source.
void ssse3_mul_add_multi(uint8_t* dst, const uint8_t* const* srcs,
                         const uint8_t* coeffs, size_t nsrc, size_t n,
                         bool accumulate) {
  if (n == 0) return;
  constexpr size_t kBatch = 8;
  const __m128i mask = _mm_set1_epi8(0x0f);
  bool seeded = accumulate;  // does dst already hold a partial sum?
  size_t j = 0;
  while (j < nsrc) {
    const uint8_t* bsrc[kBatch];
    NibbleTables bt[kBatch];
    size_t b = 0;
    for (; j < nsrc && b < kBatch; ++j) {
      if (coeffs[j] == 0) continue;  // sparse schedules skip dead terms
      bsrc[b] = srcs[j];
      bt[b] = detail::make_nibble_tables(coeffs[j]);
      ++b;
    }
    if (b == 0) break;
    size_t i = 0;
    for (; i + 32 <= n; i += 32) {
      __m128i acc0, acc1;
      if (seeded) {
        acc0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
        acc1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i + 16));
      } else {
        acc0 = _mm_setzero_si128();
        acc1 = _mm_setzero_si128();
      }
      for (size_t s = 0; s < b; ++s) {
        const __m128i lo = load_table(bt[s].lo);
        const __m128i hi = load_table(bt[s].hi);
        const __m128i a0 =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(bsrc[s] + i));
        const __m128i a1 = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(bsrc[s] + i + 16));
        acc0 = _mm_xor_si128(acc0, mul_vec(a0, lo, hi, mask));
        acc1 = _mm_xor_si128(acc1, mul_vec(a1, lo, hi, mask));
      }
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), acc0);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 16), acc1);
    }
    for (; i < n; ++i) {
      uint8_t v = seeded ? dst[i] : uint8_t{0};
      for (size_t s = 0; s < b; ++s) {
        const uint8_t a = bsrc[s][i];
        v ^= bt[s].lo[a & 0x0f] ^ bt[s].hi[a >> 4];
      }
      dst[i] = v;
    }
    seeded = true;
  }
  if (!seeded) std::memset(dst, 0, n);  // no live terms, no prior contents
}

}  // namespace

extern const GfKernel kSsse3Kernel;
const GfKernel kSsse3Kernel = {
    "ssse3",           ssse3_mul_add, ssse3_mul_assign,
    ssse3_xor_add, ssse3_mul_add_multi,
};

}  // namespace ear::gf
