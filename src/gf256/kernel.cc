#include "gf256/kernel.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "gf256/gf256.h"

namespace ear::gf {

namespace detail {

NibbleTables make_nibble_tables(uint8_t c) {
  NibbleTables t;
  for (int i = 0; i < 16; ++i) {
    t.lo[i] = mul(c, static_cast<uint8_t>(i));
    t.hi[i] = mul(c, static_cast<uint8_t>(i << 4));
  }
  return t;
}

void scalar_xor_add(const uint8_t* src, uint8_t* dst, size_t n) {
  size_t i = 0;
  // 8 bytes per iteration through a 64-bit XOR.
  for (; i + 8 <= n; i += 8) {
    uint64_t a, b;
    std::memcpy(&a, src + i, 8);
    std::memcpy(&b, dst + i, 8);
    b ^= a;
    std::memcpy(dst + i, &b, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void scalar_mul_add(uint8_t c, const uint8_t* src, uint8_t* dst, size_t n) {
  if (n == 0 || c == 0) return;
  if (c == 1) {
    scalar_xor_add(src, dst, n);
    return;
  }
  const MulTable table(c);
  for (size_t i = 0; i < n; ++i) dst[i] ^= table.apply(src[i]);
}

void scalar_mul_assign(uint8_t c, const uint8_t* src, uint8_t* dst, size_t n) {
  if (n == 0) return;
  if (c == 0) {
    std::memset(dst, 0, n);
    return;
  }
  if (c == 1) {
    std::memcpy(dst, src, n);
    return;
  }
  const MulTable table(c);
  for (size_t i = 0; i < n; ++i) dst[i] = table.apply(src[i]);
}

}  // namespace detail

namespace {

// Scalar multi-source sweep: first live term assigns, the rest accumulate.
// Every kernel's mul_add_multi must match this bytewise.
void scalar_mul_add_multi(uint8_t* dst, const uint8_t* const* srcs,
                          const uint8_t* coeffs, size_t nsrc, size_t n,
                          bool accumulate) {
  if (n == 0) return;
  bool first = !accumulate;
  for (size_t j = 0; j < nsrc; ++j) {
    if (coeffs[j] == 0) continue;
    if (first) {
      detail::scalar_mul_assign(coeffs[j], srcs[j], dst, n);
      first = false;
    } else {
      detail::scalar_mul_add(coeffs[j], srcs[j], dst, n);
    }
  }
  if (first) std::memset(dst, 0, n);
}

constexpr GfKernel kScalarKernel = {
    "scalar",          detail::scalar_mul_add, detail::scalar_mul_assign,
    detail::scalar_xor_add, scalar_mul_add_multi,
};

std::atomic<const GfKernel*> g_override{nullptr};

}  // namespace

#if defined(EAR_GF_X86)
// Defined in kernel_ssse3.cc / kernel_avx2.cc (compiled with -mssse3/-mavx2;
// only ever called after __builtin_cpu_supports says the ISA is present).
extern const GfKernel kSsse3Kernel;
extern const GfKernel kAvx2Kernel;
#endif
#if defined(EAR_GF_NEON)
extern const GfKernel kNeonKernel;  // kernel_neon.cc; NEON is baseline on
                                    // aarch64, no runtime probe needed
#endif

std::vector<const GfKernel*> compiled_kernels() {
  std::vector<const GfKernel*> out;
#if defined(EAR_GF_X86)
  if (__builtin_cpu_supports("avx2")) out.push_back(&kAvx2Kernel);
  if (__builtin_cpu_supports("ssse3")) out.push_back(&kSsse3Kernel);
#endif
#if defined(EAR_GF_NEON)
  out.push_back(&kNeonKernel);
#endif
  out.push_back(&kScalarKernel);
  return out;
}

const GfKernel& resolve_kernel(std::string_view spec) {
  const auto available = compiled_kernels();
  if (spec.empty() || spec == "auto") return *available.front();
  for (const GfKernel* k : available) {
    if (spec == k->name) return *k;
  }
  std::string supported = "auto";
  for (const GfKernel* k : available) {
    supported += ", ";
    supported += k->name;
  }
  throw std::runtime_error("unsupported EAR_GF_KERNEL '" + std::string(spec) +
                           "' (supported: " + supported + ")");
}

const GfKernel& kernel() {
  const GfKernel* forced = g_override.load(std::memory_order_acquire);
  if (forced != nullptr) return *forced;
  // Magic static: concurrent first touches block on one initialization.
  static const GfKernel& chosen = []() -> const GfKernel& {
    const char* env = std::getenv("EAR_GF_KERNEL");
    return resolve_kernel(env == nullptr ? "auto" : env);
  }();
  return chosen;
}

KernelOverride::KernelOverride(std::string_view spec)
    : prev_(g_override.exchange(&resolve_kernel(spec),
                                std::memory_order_acq_rel)) {}

KernelOverride::~KernelOverride() {
  g_override.store(prev_, std::memory_order_release);
}

}  // namespace ear::gf
