// Runtime-dispatched bulk kernels over GF(2^8).
//
// The scalar field (`mul`, `inv`, log/exp tables in gf256.h) is the single
// source of truth; every kernel here is an alternative *implementation* of
// the same bulk operations, required to be byte-identical to the scalar
// reference for all inputs (DESIGN.md invariant 10).  The SIMD variants use
// the ISA-L shuffle idiom: a per-coefficient pair of 16-entry nibble tables
// applied with PSHUFB/VPSHUFB (x86) or TBL (NEON), so one vector op computes
// 16/32 products.
//
// Selection happens once, on the first call to `kernel()`:
//   * `EAR_GF_KERNEL=auto` (or unset): the widest kernel the CPU supports
//     (avx2 > ssse3 > neon > scalar).
//   * `EAR_GF_KERNEL=scalar|ssse3|avx2|neon`: that kernel, or a loud
//     std::runtime_error naming the supported values if it is unknown or not
//     available on this CPU (mirrors the checkpoint version-error style).
// Tests switch kernels in-process with `KernelOverride`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace ear::gf {

// Function table for one ISA. All functions share the scalar semantics:
//   mul_add:       dst[i] ^= c * src[i]
//   mul_assign:    dst[i]  = c * src[i]
//   xor_add:       dst[i] ^= src[i]
//   mul_add_multi: dst[i] = (accumulate ? dst[i] : 0) ^ XOR_j coeffs[j] *
//                  srcs[j][i], zero coefficients skipped.  One sweep over
//                  dst replaces nsrc separate mul_add passes, so dst traffic
//                  stays resident while every source streams through once.
// Sources must not alias dst. Zero-length calls are no-ops.
struct GfKernel {
  const char* name;
  void (*mul_add)(uint8_t c, const uint8_t* src, uint8_t* dst, size_t n);
  void (*mul_assign)(uint8_t c, const uint8_t* src, uint8_t* dst, size_t n);
  void (*xor_add)(const uint8_t* src, uint8_t* dst, size_t n);
  void (*mul_add_multi)(uint8_t* dst, const uint8_t* const* srcs,
                        const uint8_t* coeffs, size_t nsrc, size_t n,
                        bool accumulate);
};

// The active kernel. First call resolves EAR_GF_KERNEL (function-local
// static, so concurrent first touches are race-free); later calls are an
// atomic load.  Throws std::runtime_error if EAR_GF_KERNEL is invalid.
const GfKernel& kernel();

// Kernels compiled into this binary *and* supported by this CPU, best first
// (the first entry is what `auto` picks; "scalar" is always last).
std::vector<const GfKernel*> compiled_kernels();

// Maps a kernel spec ("auto", "", or a kernel name) to a kernel.  Throws
// std::runtime_error for unknown names and for kernels this build or CPU
// lacks, listing the supported values.
const GfKernel& resolve_kernel(std::string_view spec);

// RAII: forces `kernel()` to return the named kernel until destruction.
// For equivalence tests and benches; not thread-safe against concurrent
// overrides (concurrent *readers* are fine).
class KernelOverride {
 public:
  explicit KernelOverride(std::string_view spec);
  ~KernelOverride();
  KernelOverride(const KernelOverride&) = delete;
  KernelOverride& operator=(const KernelOverride&) = delete;

 private:
  const GfKernel* prev_;
};

namespace detail {

// Per-coefficient shuffle tables: c * b == lo[b & 15] ^ hi[b >> 4].  The
// 16-byte alignment lets the SIMD kernels load each half as one register.
struct NibbleTables {
  alignas(16) uint8_t lo[16];
  alignas(16) uint8_t hi[16];
};

NibbleTables make_nibble_tables(uint8_t c);

// Scalar reference implementations (also the head/tail path of every SIMD
// kernel, so ragged edges stay bit-compatible by construction).
void scalar_mul_add(uint8_t c, const uint8_t* src, uint8_t* dst, size_t n);
void scalar_mul_assign(uint8_t c, const uint8_t* src, uint8_t* dst, size_t n);
void scalar_xor_add(const uint8_t* src, uint8_t* dst, size_t n);

}  // namespace detail

}  // namespace ear::gf
