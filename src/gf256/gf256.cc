#include "gf256/gf256.h"

#include <cassert>

#include "gf256/kernel.h"

namespace ear::gf {

// The span-level entry points resolve the active kernel per call (an atomic
// load plus an indirect call — noise next to the bulk work) so a
// KernelOverride in a test redirects every consumer immediately.

void mul_add(uint8_t c, std::span<const uint8_t> src, std::span<uint8_t> dst) {
  assert(src.size() == dst.size());
  if (dst.empty()) return;
  kernel().mul_add(c, src.data(), dst.data(), dst.size());
}

void mul_assign(uint8_t c, std::span<const uint8_t> src,
                std::span<uint8_t> dst) {
  assert(src.size() == dst.size());
  if (dst.empty()) return;
  kernel().mul_assign(c, src.data(), dst.data(), dst.size());
}

void xor_add(std::span<const uint8_t> src, std::span<uint8_t> dst) {
  assert(src.size() == dst.size());
  if (dst.empty()) return;
  kernel().xor_add(src.data(), dst.data(), dst.size());
}

void mul_add_multi(std::span<const uint8_t* const> srcs,
                   std::span<const uint8_t> coeffs, std::span<uint8_t> dst,
                   bool accumulate) {
  assert(srcs.size() == coeffs.size());
  if (dst.empty()) return;
  kernel().mul_add_multi(dst.data(), srcs.data(), coeffs.data(), srcs.size(),
                         dst.size(), accumulate);
}

}  // namespace ear::gf
