#include "gf256/gf256.h"

#include <cassert>
#include <cstring>

namespace ear::gf {

namespace {

// Processes 8 bytes per iteration through a 64-bit XOR when c == 1.
void xor_add_impl(const uint8_t* src, uint8_t* dst, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t a, b;
    std::memcpy(&a, src + i, 8);
    std::memcpy(&b, dst + i, 8);
    b ^= a;
    std::memcpy(dst + i, &b, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

}  // namespace

void mul_add(uint8_t c, std::span<const uint8_t> src, std::span<uint8_t> dst) {
  assert(src.size() == dst.size());
  if (c == 0) return;
  if (c == 1) {
    xor_add_impl(src.data(), dst.data(), src.size());
    return;
  }
  const MulTable table(c);
  const size_t n = src.size();
  for (size_t i = 0; i < n; ++i) {
    dst[i] ^= table.apply(src[i]);
  }
}

void mul_assign(uint8_t c, std::span<const uint8_t> src,
                std::span<uint8_t> dst) {
  assert(src.size() == dst.size());
  if (c == 0) {
    std::memset(dst.data(), 0, dst.size());
    return;
  }
  if (c == 1) {
    std::memcpy(dst.data(), src.data(), src.size());
    return;
  }
  const MulTable table(c);
  const size_t n = src.size();
  for (size_t i = 0; i < n; ++i) {
    dst[i] = table.apply(src[i]);
  }
}

void xor_add(std::span<const uint8_t> src, std::span<uint8_t> dst) {
  assert(src.size() == dst.size());
  xor_add_impl(src.data(), dst.data(), src.size());
}

}  // namespace ear::gf
