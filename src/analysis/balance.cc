#include "analysis/balance.h"

#include <algorithm>
#include <memory>
#include <set>

#include "placement/policy.h"

namespace ear::analysis {

namespace {

std::unique_ptr<PlacementPolicy> make_policy(const Topology& topo,
                                             const BalanceConfig& config,
                                             uint64_t seed) {
  return config.use_ear
             ? make_encoding_aware_replication(topo, config.placement, seed)
             : make_random_replication(topo, config.placement, seed);
}

}  // namespace

std::vector<double> storage_share_by_rack(const BalanceConfig& config,
                                          int blocks, int runs) {
  const Topology topo(config.racks, config.nodes_per_rack);
  std::vector<double> average(static_cast<size_t>(config.racks), 0.0);

  for (int run = 0; run < runs; ++run) {
    auto policy = make_policy(topo, config, config.seed + run);
    std::vector<int64_t> per_rack(static_cast<size_t>(config.racks), 0);
    int64_t total = 0;
    for (BlockId b = 0; b < blocks; ++b) {
      const BlockPlacement p = policy->place_block(b, std::nullopt);
      for (const NodeId n : p.replicas) {
        ++per_rack[static_cast<size_t>(topo.rack_of(n))];
        ++total;
      }
    }
    // Sort each run's shares descending before averaging (the paper plots
    // ranked shares).
    std::vector<double> shares;
    shares.reserve(per_rack.size());
    for (const int64_t count : per_rack) {
      shares.push_back(100.0 * static_cast<double>(count) /
                       static_cast<double>(total));
    }
    std::sort(shares.rbegin(), shares.rend());
    for (size_t i = 0; i < shares.size(); ++i) average[i] += shares[i];
  }
  for (double& v : average) v /= runs;
  return average;
}

double read_hotness_index(const BalanceConfig& config, int file_blocks,
                          int runs) {
  const Topology topo(config.racks, config.nodes_per_rack);
  double h_sum = 0.0;

  for (int run = 0; run < runs; ++run) {
    auto policy = make_policy(topo, config, config.seed + 1000 + run);
    // L(i): expected share of read requests served by rack i, assuming each
    // block is equally likely to be read and a request goes to a uniformly
    // random rack holding a replica.
    std::vector<double> load(static_cast<size_t>(config.racks), 0.0);
    for (BlockId b = 0; b < file_blocks; ++b) {
      const BlockPlacement p = policy->place_block(b, std::nullopt);
      std::set<RackId> racks;
      for (const NodeId n : p.replicas) racks.insert(topo.rack_of(n));
      const double share = 1.0 / (static_cast<double>(file_blocks) *
                                  static_cast<double>(racks.size()));
      for (const RackId r : racks) load[static_cast<size_t>(r)] += share;
    }
    h_sum += 100.0 * *std::max_element(load.begin(), load.end());
  }
  return h_sum / runs;
}

}  // namespace ear::analysis
