// Load-balancing analysis of RR vs EAR (paper §V-C, Figures 14 and 15).
//
// Monte-Carlo over the actual placement policies: place `blocks` blocks,
// then measure (a) the per-rack share of stored replicas (storage balance)
// and (b) the read hotness index H — the largest per-rack share of uniform
// read requests, where each request picks a uniformly random rack among
// those holding a replica of the requested block.
#pragma once

#include <cstdint>
#include <vector>

#include "placement/types.h"

namespace ear::analysis {

struct BalanceConfig {
  int racks = 20;
  int nodes_per_rack = 20;
  PlacementConfig placement{};  // default (14,10), r = 3, c = 1
  bool use_ear = true;
  uint64_t seed = 1;
};

// Average per-rack proportion of replicas (percent), sorted descending,
// averaged over `runs` independent placements of `blocks` blocks (Fig. 14).
std::vector<double> storage_share_by_rack(const BalanceConfig& config,
                                          int blocks, int runs);

// Average hotness index H (percent) for a file of `file_blocks` blocks over
// `runs` placements (Fig. 15).
double read_hotness_index(const BalanceConfig& config, int file_blocks,
                          int runs);

}  // namespace ear::analysis
