// Availability analysis of replica placement (paper §III-A/B, Figure 3,
// Theorem 1, and the §III-D recovery-traffic trade-off).
#pragma once

#include <cstdint>

namespace ear::analysis {

// Equation (1): probability that a stripe placed by the *preliminary* EAR
// (core rack + unconstrained random second/third replicas) violates
// rack-level fault tolerance and needs relocation, for 3-way replication,
// R racks and stripes of k data blocks:
//
//   f = 1 - [ C(R-1,k) k!  +  C(k,2) C(R-1,k-1) (k-1)! ] / (R-1)^k
//
// i.e. the layout is safe iff the k secondary racks span at least k-1
// distinct racks.
double preliminary_violation_probability(int racks, int k);

// Monte-Carlo estimate of the same probability (validates Equation (1)).
double preliminary_violation_probability_mc(int racks, int k, int trials,
                                            uint64_t seed);

// Theorem 1: upper bound on the expected number of replica-layout draws EAR
// needs for the i-th data block (1-indexed) with parameter c and R racks:
//
//   E_i <= (R - 1) / (R - 1 - floor((i-1)/c))
double theorem1_iteration_bound(int racks, int i, int c);

// §III-D: cross-rack blocks transferred to repair one lost block when each
// rack holds at most c blocks of a stripe.  The repairing node downloads k
// blocks; placing it in a rack still holding c surviving stripe blocks makes
// c of them rack-local, so k - c cross racks (k - 1 for c = 1, matching the
// paper's "the other k-1 blocks need to be downloaded from other racks").
int cross_rack_repair_blocks(int k, int c);

}  // namespace ear::analysis
