// Closed-form first-order model of the encoding operation's duration in an
// otherwise idle cluster — used to sanity-check the simulator (every DES
// deserves an analytical cross-check) and to reason about parameter choices
// without running anything.
//
// Assumptions: each encoding process works sequentially through its
// stripes; per stripe it first downloads the k data blocks, then uploads
// the n - k parity blocks; the bottleneck of each phase is the encoder's
// access link (downloads converge on its downlink, uploads leave its
// uplink), except that EAR's downloads are rack-local or disk-local.
// Cross-rack contention between processes is ignored (valid when processes
// spread over distinct racks), so the model is a LOWER bound for RR and
// nearly exact for EAR.
#pragma once

#include "common/units.h"
#include "placement/types.h"

namespace ear::analysis {

struct EncodeModelInput {
  CodeParams code;
  int racks = 20;
  Bytes block_size = 64_MB;
  BytesPerSec node_bw = gbps(1);
  // Per-node disk bandwidth for local reads; 0 = free (pure network model).
  BytesPerSec disk_bw = 0;
  int stripes_per_process = 10;
  // How many of the k data blocks the encoder holds locally (EAR with
  // single-node racks: all k; EAR with multi-node racks: ~k / nodes_per_rack;
  // RR: ~k * 2 / racks on average).
  double local_blocks = 0;
};

// Expected cross-rack downloads per stripe under RR (§II-B): k (1 - 2/R).
double rr_expected_cross_downloads(int k, int racks);

// Predicted duration (seconds) of one encoding process finishing its share
// of stripes in an idle network.
double predicted_encode_seconds(const EncodeModelInput& input);

// Predicted encoding throughput (MB/s of data-block bytes) for a fleet of
// `processes` parallel encoders, assuming they bottleneck independently.
double predicted_encode_throughput_mbps(const EncodeModelInput& input,
                                        int processes);

}  // namespace ear::analysis
