#include "analysis/availability.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>
#include <vector>

#include "common/rng.h"

namespace ear::analysis {

namespace {

// log(C(n, r)) computed stably via lgamma.
double log_choose(int n, int r) {
  if (r < 0 || r > n) return -std::numeric_limits<double>::infinity();
  return std::lgamma(n + 1.0) - std::lgamma(r + 1.0) -
         std::lgamma(n - r + 1.0);
}

double log_factorial(int n) { return std::lgamma(n + 1.0); }

}  // namespace

double preliminary_violation_probability(int racks, int k) {
  assert(racks >= 2 && k >= 1);
  const int r1 = racks - 1;  // non-core racks
  if (k == 1) return 0.0;
  const double log_denom = k * std::log(static_cast<double>(r1));

  // All k secondary racks distinct: C(R-1, k) * k!.
  double safe = 0.0;
  if (r1 >= k) {
    safe += std::exp(log_choose(r1, k) + log_factorial(k) - log_denom);
  }
  // Exactly one colliding pair: C(k,2) * C(R-1, k-1) * (k-1)!.
  if (r1 >= k - 1) {
    safe += std::exp(log_choose(k, 2) + log_choose(r1, k - 1) +
                     log_factorial(k - 1) - log_denom);
  }
  return std::clamp(1.0 - safe, 0.0, 1.0);
}

double preliminary_violation_probability_mc(int racks, int k, int trials,
                                            uint64_t seed) {
  assert(racks >= 2 && k >= 1 && trials > 0);
  Rng rng(seed);
  const int r1 = racks - 1;
  int violations = 0;
  std::vector<int> counts(static_cast<size_t>(r1));
  for (int t = 0; t < trials; ++t) {
    std::fill(counts.begin(), counts.end(), 0);
    int distinct = 0;
    for (int b = 0; b < k; ++b) {
      const auto rack = static_cast<size_t>(rng.uniform(
          static_cast<uint64_t>(r1)));
      if (counts[rack]++ == 0) ++distinct;
    }
    if (distinct < k - 1) ++violations;
  }
  return static_cast<double>(violations) / trials;
}

double theorem1_iteration_bound(int racks, int i, int c) {
  assert(racks >= 2 && i >= 1 && c >= 1);
  const int full_racks = (i - 1) / c;
  const int free_racks = racks - 1 - full_racks;
  assert(free_racks > 0 && "configuration cannot host the stripe");
  return static_cast<double>(racks - 1) / free_racks;
}

int cross_rack_repair_blocks(int k, int c) {
  assert(k >= 1 && c >= 1);
  return std::max(0, k - c);
}

}  // namespace ear::analysis
