#include "analysis/throughput_model.h"

#include <algorithm>
#include <cassert>

namespace ear::analysis {

double rr_expected_cross_downloads(int k, int racks) {
  assert(k >= 1 && racks >= 2);
  return k * (1.0 - 2.0 / racks);
}

double predicted_encode_seconds(const EncodeModelInput& input) {
  const int k = input.code.k;
  const int m = input.code.m();
  const double block = static_cast<double>(input.block_size);

  const double remote_blocks =
      std::max(0.0, static_cast<double>(k) - input.local_blocks);
  // Downloads: remote blocks stream through the encoder's downlink; local
  // blocks through its disk (if modeled).
  double download_s = remote_blocks * block / input.node_bw;
  if (input.disk_bw > 0) {
    download_s = std::max(download_s,
                          input.local_blocks * block / input.disk_bw);
  }
  // Uploads: all parity leaves through the encoder's uplink.
  const double upload_s = m * block / input.node_bw;

  return input.stripes_per_process * (download_s + upload_s);
}

double predicted_encode_throughput_mbps(const EncodeModelInput& input,
                                        int processes) {
  const double total_mb = to_mb(input.block_size) * input.code.k *
                          input.stripes_per_process * processes;
  const double duration = predicted_encode_seconds(input);
  return duration > 0 ? total_mb / duration : 0.0;
}

}  // namespace ear::analysis
