// CFS cluster topology: nodes grouped into racks (paper §II-A, Figure 1).
//
// Nodes within a rack share a top-of-rack switch; racks are joined by a
// network core.  Node ids are dense ints [0, node_count); rack ids are dense
// ints [0, rack_count).  The default layout is homogeneous (equal nodes per
// rack) but heterogeneous rack sizes are supported for failure tests.
#pragma once

#include <cassert>
#include <string>
#include <vector>

namespace ear {

using NodeId = int;
using RackId = int;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr RackId kInvalidRack = -1;

class Topology {
 public:
  // Homogeneous topology: `racks` racks of `nodes_per_rack` nodes each.
  Topology(int racks, int nodes_per_rack);

  // Heterogeneous topology: rack_sizes[i] nodes in rack i.
  explicit Topology(const std::vector<int>& rack_sizes);

  int rack_count() const { return static_cast<int>(rack_first_node_.size()); }
  int node_count() const { return node_rack_.empty() ? 0 : static_cast<int>(node_rack_.size()); }

  RackId rack_of(NodeId node) const {
    assert(node >= 0 && node < node_count());
    return node_rack_[static_cast<size_t>(node)];
  }

  int rack_size(RackId rack) const {
    assert(rack >= 0 && rack < rack_count());
    return rack_node_count_[static_cast<size_t>(rack)];
  }

  // Nodes of a rack are the contiguous id range
  // [rack_first_node(r), rack_first_node(r) + rack_size(r)).
  NodeId rack_first_node(RackId rack) const {
    assert(rack >= 0 && rack < rack_count());
    return rack_first_node_[static_cast<size_t>(rack)];
  }

  std::vector<NodeId> nodes_in_rack(RackId rack) const;

  bool same_rack(NodeId a, NodeId b) const { return rack_of(a) == rack_of(b); }

  std::string describe() const;

 private:
  std::vector<RackId> node_rack_;        // node -> rack
  std::vector<NodeId> rack_first_node_;  // rack -> first node id
  std::vector<int> rack_node_count_;     // rack -> size
};

}  // namespace ear
