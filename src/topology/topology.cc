#include "topology/topology.h"

#include <numeric>

namespace ear {

Topology::Topology(int racks, int nodes_per_rack)
    : Topology(std::vector<int>(static_cast<size_t>(racks), nodes_per_rack)) {
  assert(racks > 0 && nodes_per_rack > 0);
}

Topology::Topology(const std::vector<int>& rack_sizes) {
  assert(!rack_sizes.empty());
  rack_first_node_.reserve(rack_sizes.size());
  rack_node_count_ = rack_sizes;
  NodeId next = 0;
  for (const int size : rack_sizes) {
    assert(size > 0);
    rack_first_node_.push_back(next);
    for (int i = 0; i < size; ++i) {
      node_rack_.push_back(static_cast<RackId>(rack_first_node_.size()) - 1);
    }
    next += size;
  }
}

std::vector<NodeId> Topology::nodes_in_rack(RackId rack) const {
  std::vector<NodeId> out(static_cast<size_t>(rack_size(rack)));
  std::iota(out.begin(), out.end(), rack_first_node(rack));
  return out;
}

std::string Topology::describe() const {
  return std::to_string(rack_count()) + " racks / " +
         std::to_string(node_count()) + " nodes";
}

}  // namespace ear
