// MapReduce execution model on the discrete-event simulator (paper §IV-A,
// Experiment A.3).
//
// Mirrors Hadoop 1.x structure: a JobTracker schedules map tasks onto
// TaskTracker slots (a fixed number per node), preferring data-local nodes,
// then rack-local, then any free slot — the locality optimization MapReduce
// relies on and which EAR exploits for encoding jobs.  Reducers pull shuffle
// data as maps finish and write job output back to the CFS through the
// replica placement policy.
//
// The model is deliberately flow-level: map compute is a fixed rate over the
// input block, all data movement (remote map input, shuffle, output
// replication pipeline) goes through the shared Network, so jobs contend for
// cross-rack bandwidth exactly like the paper's testbed.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "placement/policy.h"
#include "sim/network.h"

namespace ear::mapred {

struct JobSpec {
  int id = 0;
  Seconds submit_time = 0;
  Bytes input_size = 0;
  Bytes shuffle_size = 0;
  Bytes output_size = 0;
};

struct JobResult {
  int id = 0;
  Seconds submit_time = 0;
  Seconds finish_time = 0;
  int map_tasks = 0;
  int data_local_maps = 0;
  int rack_local_maps = 0;
  int remote_maps = 0;
};

struct MapReduceConfig {
  int map_slots_per_node = 4;
  int reducers_per_job = 2;
  Bytes block_size = 64_MB;
  // Map function processing rate over its input block.
  BytesPerSec map_compute_rate = 400e6;
  uint64_t seed = 1;
};

class MapReduceCluster {
 public:
  // `policy` supplies both the pre-existing input block locations and the
  // output write placements.  The caller owns engine/network/policy.
  MapReduceCluster(sim::Engine& engine, sim::Network& network,
                   PlacementPolicy& policy, const MapReduceConfig& config);

  // Submits a job at spec.submit_time (input blocks are placed immediately,
  // modelling data written before the experiment starts).
  void submit(const JobSpec& spec);

  // Completed job results, in completion order.  Valid after the engine ran.
  const std::vector<JobResult>& results() const { return results_; }

  int64_t total_map_tasks() const { return total_maps_; }

 private:
  struct MapTask {
    int job_index;
    int task_index;
    std::vector<NodeId> input_replicas;
  };

  struct Job {
    JobSpec spec;
    JobResult result;
    std::vector<NodeId> reducers;
    int maps_remaining = 0;
    int shuffle_flows_remaining = 0;
    int output_blocks_remaining = 0;
    bool shuffle_done = false;
  };

  void start_job(int job_index);
  void try_dispatch();
  void run_map(const MapTask& task, NodeId node);
  void finish_map(const MapTask& task, NodeId node);
  void maybe_start_reduce(int job_index);
  void finish_job(int job_index);

  sim::Engine* engine_;
  sim::Network* network_;
  PlacementPolicy* policy_;
  MapReduceConfig config_;
  Rng rng_;

  std::vector<Job> jobs_;
  std::deque<MapTask> pending_maps_;
  std::vector<int> free_slots_;  // per node
  std::vector<JobResult> results_;
  BlockId next_block_id_ = 1'000'000'000;  // avoid colliding with user blocks
  int64_t total_maps_ = 0;
};

}  // namespace ear::mapred
