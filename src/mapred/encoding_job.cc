#include "mapred/encoding_job.h"

#include <algorithm>
#include <cassert>
#include <memory>

namespace ear::mapred {

EncodingJob::EncodingJob(sim::Engine& engine, sim::Network& network,
                         PlacementPolicy& policy,
                         const EncodingJobConfig& config)
    : engine_(&engine), network_(&network), policy_(&policy), config_(config),
      rng_(config.seed) {
  free_slots_.assign(static_cast<size_t>(policy.topology().node_count()),
                     config.map_slots_per_node);
}

void EncodingJob::submit(const std::vector<StripeId>& stripes) {
  started_ = engine_->now();
  report_.stripes = static_cast<int>(stripes.size());
  for (const StripeId id : stripes) {
    pending_.push_back(Task{id, policy_->plan_encoding(id)});
  }
  try_dispatch();
}

NodeId EncodingJob::choose_node(const Task& task) {
  const Topology& topo = policy_->topology();
  const StripeInfo& stripe = policy_->stripe(task.stripe);

  const auto free_in_rack = [&](RackId rack) -> NodeId {
    for (const NodeId n : topo.nodes_in_rack(rack)) {
      if (free_slots_[static_cast<size_t>(n)] > 0) return n;
    }
    return kInvalidNode;
  };

  switch (config_.locality) {
    case EncodingLocality::kStrict: {
      // The encoding-job flag: core rack or nothing (§IV-B, third
      // modification).  RR stripes have no core rack; fall back to the
      // preferred (plan) node's rack.
      const RackId rack = stripe.core_rack != kInvalidRack
                              ? stripe.core_rack
                              : topo.rack_of(task.plan.encoder);
      if (task.plan.encoder != kInvalidNode &&
          free_slots_[static_cast<size_t>(task.plan.encoder)] > 0 &&
          topo.rack_of(task.plan.encoder) == rack) {
        return task.plan.encoder;
      }
      return free_in_rack(rack);
    }
    case EncodingLocality::kPreferred: {
      // Best-effort: preferred node, its rack, then any free slot.
      if (free_slots_[static_cast<size_t>(task.plan.encoder)] > 0) {
        return task.plan.encoder;
      }
      const NodeId rack_local =
          free_in_rack(topo.rack_of(task.plan.encoder));
      if (rack_local != kInvalidNode) return rack_local;
      [[fallthrough]];
    }
    case EncodingLocality::kNone: {
      const int nodes = topo.node_count();
      const int start =
          static_cast<int>(rng_.uniform(static_cast<uint64_t>(nodes)));
      for (int off = 0; off < nodes; ++off) {
        const NodeId n = (start + off) % nodes;
        if (free_slots_[static_cast<size_t>(n)] > 0) return n;
      }
      return kInvalidNode;
    }
  }
  return kInvalidNode;
}

void EncodingJob::try_dispatch() {
  // Scan the queue; strict tasks whose core rack is busy are skipped (they
  // keep waiting) while later tasks may still dispatch.
  for (auto it = pending_.begin(); it != pending_.end();) {
    const NodeId node = choose_node(*it);
    if (node == kInvalidNode) {
      ++it;
      continue;
    }
    Task task = std::move(*it);
    it = pending_.erase(it);
    --free_slots_[static_cast<size_t>(node)];
    ++running_;
    run_task(std::move(task), node);
  }
}

void EncodingJob::run_task(Task task, NodeId node) {
  const Topology& topo = policy_->topology();
  const StripeInfo& stripe = policy_->stripe(task.stripe);
  if (stripe.core_rack != kInvalidRack &&
      topo.rack_of(node) == stripe.core_rack) {
    ++report_.tasks_in_core_rack;
  } else {
    ++report_.tasks_elsewhere;
  }

  // Phase 1: download one replica of each data block to `node`.
  auto state = std::make_shared<int>(0);
  auto plan = std::make_shared<EncodePlan>(std::move(task.plan));
  const RackId node_rack = topo.rack_of(node);

  auto finish_task = [this, node] {
    ++free_slots_[static_cast<size_t>(node)];
    --running_;
    if (pending_.empty() && running_ == 0) {
      report_.duration = engine_->now() - started_;
    }
    try_dispatch();
  };

  auto start_uploads = [this, node, plan, state, finish_task] {
    *state = 0;
    for (const NodeId dst : plan->parity) {
      if (dst == node) continue;
      ++*state;
      network_->start_transfer(node, dst, config_.block_size,
                               [state, finish_task] {
                                 if (--*state == 0) finish_task();
                               });
    }
    if (*state == 0) engine_->schedule_in(0.0, finish_task);
  };

  for (const auto& replicas : stripe.replicas) {
    NodeId src = kInvalidNode;
    for (const NodeId r : replicas) {
      if (r == node) {
        src = r;
        break;
      }
    }
    if (src == kInvalidNode) {
      for (const NodeId r : replicas) {
        if (topo.rack_of(r) == node_rack) {
          src = r;
          break;
        }
      }
    }
    if (src == kInvalidNode) {
      src = replicas[rng_.index(replicas.size())];
      ++report_.cross_rack_downloads;
    }
    ++*state;
    auto on_done = [state, start_uploads] {
      if (--*state == 0) start_uploads();
    };
    if (src == node) {
      network_->start_disk_read(node, config_.block_size, std::move(on_done));
    } else {
      network_->start_transfer(src, node, config_.block_size,
                               std::move(on_done));
    }
  }
  assert(*state > 0);
}

}  // namespace ear::mapred
