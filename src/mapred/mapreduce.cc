#include "mapred/mapreduce.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "obs/trace.h"
#include "placement/replica_layout.h"

namespace ear::mapred {

namespace {
// Virtual-time trace tracks: job spans share a few lanes starting at
// kJobTrackBase; map-task spans get one row per TaskTracker node starting
// at kMapTrackBase (above the sim flow lanes and encode-process rows).
constexpr int kJobTrackBase = 40;
constexpr int kJobLanes = 8;
constexpr int kMapTrackBase = 200;

int job_track(int job_index) { return kJobTrackBase + job_index % kJobLanes; }
int map_track(NodeId node) { return kMapTrackBase + node; }
}  // namespace

MapReduceCluster::MapReduceCluster(sim::Engine& engine, sim::Network& network,
                                   PlacementPolicy& policy,
                                   const MapReduceConfig& config)
    : engine_(&engine), network_(&network), policy_(&policy), config_(config),
      rng_(config.seed) {
  free_slots_.assign(
      static_cast<size_t>(policy.topology().node_count()),
      config.map_slots_per_node);
  if (obs::trace_enabled()) {
    for (int n = 0; n < policy.topology().node_count(); ++n) {
      obs::set_sim_track_name(map_track(n), "mr-node-" + std::to_string(n));
    }
    for (int l = 0; l < kJobLanes; ++l) {
      obs::set_sim_track_name(kJobTrackBase + l, "mr-jobs-" + std::to_string(l));
    }
  }
}

void MapReduceCluster::submit(const JobSpec& spec) {
  const int job_index = static_cast<int>(jobs_.size());
  Job job;
  job.spec = spec;
  job.result.id = spec.id;
  job.result.submit_time = spec.submit_time;
  jobs_.push_back(std::move(job));
  engine_->schedule_at(spec.submit_time, [this, job_index] {
    start_job(job_index);
  });
}

void MapReduceCluster::start_job(int job_index) {
  Job& job = jobs_[static_cast<size_t>(job_index)];
  const Topology& topo = policy_->topology();

  const int maps = std::max<int>(
      1, static_cast<int>((job.spec.input_size + config_.block_size - 1) /
                          config_.block_size));
  job.maps_remaining = maps;
  job.result.map_tasks = maps;
  total_maps_ += maps;

  // Input blocks were written to the CFS (with RR or EAR placement) before
  // the run; register their replica locations now.
  for (int t = 0; t < maps; ++t) {
    const BlockPlacement placement =
        policy_->place_block(next_block_id_++, std::nullopt);
    pending_maps_.push_back(MapTask{
        job_index, t,
        placement.replicas,
    });
  }

  // Reducers: random distinct nodes.
  const auto picks = rng_.sample_without_replacement(
      static_cast<size_t>(topo.node_count()),
      static_cast<size_t>(std::min(config_.reducers_per_job,
                                   topo.node_count())));
  for (const size_t n : picks) {
    job.reducers.push_back(static_cast<NodeId>(n));
  }

  try_dispatch();
}

void MapReduceCluster::try_dispatch() {
  const Topology& topo = policy_->topology();
  // Greedy locality-aware dispatch: for each pending task (FIFO), prefer a
  // free slot on a node holding a replica, then a node in a replica's rack,
  // then any free node.
  bool progress = true;
  while (progress && !pending_maps_.empty()) {
    progress = false;
    MapTask task = pending_maps_.front();

    NodeId chosen = kInvalidNode;
    int locality = 2;  // 0 = data-local, 1 = rack-local, 2 = remote
    for (const NodeId n : task.input_replicas) {
      if (free_slots_[static_cast<size_t>(n)] > 0) {
        chosen = n;
        locality = 0;
        break;
      }
    }
    if (chosen == kInvalidNode) {
      for (const NodeId r : task.input_replicas) {
        for (const NodeId n : topo.nodes_in_rack(topo.rack_of(r))) {
          if (free_slots_[static_cast<size_t>(n)] > 0) {
            chosen = n;
            locality = 1;
            break;
          }
        }
        if (chosen != kInvalidNode) break;
      }
    }
    if (chosen == kInvalidNode) {
      // Any free slot, scanning from a random offset for balance.
      const int nodes = topo.node_count();
      const int start = static_cast<int>(rng_.uniform(
          static_cast<uint64_t>(nodes)));
      for (int off = 0; off < nodes; ++off) {
        const NodeId n = (start + off) % nodes;
        if (free_slots_[static_cast<size_t>(n)] > 0) {
          chosen = n;
          locality = 2;
          break;
        }
      }
    }
    if (chosen == kInvalidNode) break;  // cluster fully busy

    pending_maps_.pop_front();
    progress = true;
    --free_slots_[static_cast<size_t>(chosen)];
    Job& job = jobs_[static_cast<size_t>(task.job_index)];
    if (locality == 0) {
      ++job.result.data_local_maps;
    } else if (locality == 1) {
      ++job.result.rack_local_maps;
    } else {
      ++job.result.remote_maps;
    }
    run_map(task, chosen);
  }
}

void MapReduceCluster::run_map(const MapTask& task, NodeId node) {
  // Fetch the input block if no local replica, then compute.
  const bool local =
      std::find(task.input_replicas.begin(), task.input_replicas.end(),
                node) != task.input_replicas.end();
  const Seconds dispatch = engine_->now();
  auto compute = [this, task, node, dispatch] {
    const Seconds compute_time = static_cast<double>(config_.block_size) /
                                 config_.map_compute_rate;
    engine_->schedule_in(compute_time, [this, task, node, dispatch] {
      if (obs::trace_enabled()) {
        obs::sim_complete(
            "mr.map", "mapred", dispatch, engine_->now(), map_track(node),
            {{"job", jobs_[static_cast<size_t>(task.job_index)].spec.id},
             {"task", task.task_index}});
      }
      finish_map(task, node);
    });
  };
  if (local) {
    compute();
    return;
  }
  // Prefer a rack-local replica as the source.
  NodeId src = task.input_replicas[rng_.index(task.input_replicas.size())];
  for (const NodeId r : task.input_replicas) {
    if (policy_->topology().same_rack(r, node)) {
      src = r;
      break;
    }
  }
  network_->start_transfer(src, node, config_.block_size, compute);
}

void MapReduceCluster::finish_map(const MapTask& task, NodeId node) {
  Job& job = jobs_[static_cast<size_t>(task.job_index)];

  // Emit this map's shuffle share to every reducer.
  if (job.spec.shuffle_size > 0 && !job.reducers.empty()) {
    const Bytes per_map = job.spec.shuffle_size / job.result.map_tasks;
    const Bytes per_flow =
        std::max<Bytes>(1, per_map / static_cast<Bytes>(job.reducers.size()));
    for (const NodeId reducer : job.reducers) {
      ++job.shuffle_flows_remaining;
      network_->start_transfer(node, reducer, per_flow,
                               [this, job_index = task.job_index] {
                                 Job& j = jobs_[static_cast<size_t>(job_index)];
                                 --j.shuffle_flows_remaining;
                                 maybe_start_reduce(job_index);
                               });
    }
  }

  ++free_slots_[static_cast<size_t>(node)];
  --job.maps_remaining;
  maybe_start_reduce(task.job_index);
  try_dispatch();
}

void MapReduceCluster::maybe_start_reduce(int job_index) {
  Job& job = jobs_[static_cast<size_t>(job_index)];
  if (job.maps_remaining > 0 || job.shuffle_flows_remaining > 0 ||
      job.shuffle_done) {
    return;
  }
  job.shuffle_done = true;

  // Reducers write the job output back to the CFS via the placement policy's
  // replication pipeline.
  const int output_blocks = static_cast<int>(
      (job.spec.output_size + config_.block_size - 1) / config_.block_size);
  if (output_blocks == 0) {
    finish_job(job_index);
    return;
  }
  job.output_blocks_remaining = output_blocks;
  for (int b = 0; b < output_blocks; ++b) {
    const NodeId writer =
        job.reducers[static_cast<size_t>(b) % job.reducers.size()];
    const BlockPlacement placement =
        policy_->place_block(next_block_id_++, writer);
    const auto& replicas = placement.replicas;
    const int hops = static_cast<int>(replicas.size()) - 1;
    if (hops <= 0) {
      engine_->schedule_in(0.0, [this, job_index] {
        if (--jobs_[static_cast<size_t>(job_index)].output_blocks_remaining ==
            0) {
          finish_job(job_index);
        }
      });
      continue;
    }
    auto remaining = std::make_shared<int>(hops);
    for (int h = 0; h < hops; ++h) {
      network_->start_transfer(
          replicas[static_cast<size_t>(h)],
          replicas[static_cast<size_t>(h + 1)], config_.block_size,
          [this, job_index, remaining] {
            if (--*remaining > 0) return;
            if (--jobs_[static_cast<size_t>(job_index)]
                     .output_blocks_remaining == 0) {
              finish_job(job_index);
            }
          });
    }
  }
}

void MapReduceCluster::finish_job(int job_index) {
  Job& job = jobs_[static_cast<size_t>(job_index)];
  job.result.finish_time = engine_->now();
  if (obs::trace_enabled()) {
    obs::sim_complete("mr.job", "mapred", job.spec.submit_time,
                      engine_->now(), job_track(job_index),
                      {{"job", job.spec.id},
                       {"maps", job.result.map_tasks},
                       {"data_local", job.result.data_local_maps}});
  }
  results_.push_back(job.result);
}

}  // namespace ear::mapred
