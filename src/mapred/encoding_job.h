// The asynchronous encoding operation as a map-only MapReduce job
// (paper §IV-B).
//
// HDFS-RAID submits encoding through MapReduce; the paper makes three
// modifications so map tasks actually run inside each stripe's core rack:
// a preferred node per task, grouping stripes by core rack, and an
// "encoding job" flag that makes the JobTracker refuse to schedule the task
// outside the core rack.  This module reproduces that machinery on the
// discrete-event simulator and exposes the scheduling policy as a knob:
//
//   kStrict    — the paper's flag: tasks wait for a slot in the core rack;
//   kPreferred — vanilla locality optimization: preferred node, then its
//                rack, then any free slot (what you get WITHOUT the flag);
//   kNone      — ignore locality entirely (vanilla HDFS-RAID + RR behaviour).
#pragma once

#include <deque>
#include <vector>

#include "common/rng.h"
#include "placement/policy.h"
#include "sim/network.h"

namespace ear::mapred {

enum class EncodingLocality { kStrict, kPreferred, kNone };

struct EncodingJobConfig {
  int map_slots_per_node = 2;
  Bytes block_size = 64_MB;
  EncodingLocality locality = EncodingLocality::kStrict;
  uint64_t seed = 1;
};

struct EncodingJobReport {
  Seconds duration = 0;
  int stripes = 0;
  int tasks_in_core_rack = 0;   // map ran inside the stripe's core rack
  int tasks_elsewhere = 0;
  int64_t cross_rack_downloads = 0;  // data blocks fetched across racks
};

class EncodingJob {
 public:
  EncodingJob(sim::Engine& engine, sim::Network& network,
              PlacementPolicy& policy, const EncodingJobConfig& config);

  // Queues all stripes at the current simulated time; run the engine to
  // completion, then read report().
  void submit(const std::vector<StripeId>& stripes);

  const EncodingJobReport& report() const { return report_; }

 private:
  struct Task {
    StripeId stripe;
    EncodePlan plan;
  };

  void try_dispatch();
  // Picks the node a task runs on under the configured locality policy;
  // kInvalidNode if it must keep waiting.
  NodeId choose_node(const Task& task);
  void run_task(Task task, NodeId node);

  sim::Engine* engine_;
  sim::Network* network_;
  PlacementPolicy* policy_;
  EncodingJobConfig config_;
  Rng rng_;

  std::deque<Task> pending_;
  std::vector<int> free_slots_;
  int running_ = 0;
  Seconds started_ = 0;
  EncodingJobReport report_;
};

}  // namespace ear::mapred
