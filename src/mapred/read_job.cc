#include "mapred/read_job.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <stdexcept>

#include "datapath/worker_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qos/qos.h"

namespace ear::mapred {

TestbedReadJob::TestbedReadJob(cfs::MiniCfs& cfs, const ReadJobConfig& config)
    : cfs_(&cfs), config_(config), rng_(config.seed ^ 0x5eadULL) {}

NodeId TestbedReadJob::reader_for(BlockId block) {
  const auto it = assigned_.find(block);
  if (it != assigned_.end()) return it->second;
  NodeId reader = kInvalidNode;
  if (config_.locality == ReadLocality::kDataLocal) {
    for (const NodeId n : cfs_->block_locations(block)) {
      if (cfs_->node_alive(n)) {
        reader = n;
        break;
      }
    }
  }
  if (reader == kInvalidNode) {
    reader = static_cast<NodeId>(rng_.uniform(
        static_cast<uint64_t>(cfs_->topology().node_count())));
  }
  assigned_.emplace(block, reader);
  return reader;
}

ReadJobReport TestbedReadJob::run(const std::vector<BlockId>& blocks) {
  using Clock = std::chrono::steady_clock;
  obs::Span span("mapred.read_job", "mapred");
  span.arg("blocks", static_cast<int64_t>(blocks.size()));
  static obs::Counter* ctr_reads =
      &obs::Registry::instance().counter("mapred.read_job.blocks");

  ReadJobReport report;
  std::mutex mu;  // guards the report across map tasks
  const auto job_start = Clock::now();
  // Map tasks read on pool threads for the submitting job's (class, tenant)
  // flow — a tenant-tagged MapReduce job stays that tenant's traffic.
  const qos::Captured qctx = qos::capture();
  {
    datapath::TaskGroup maps(datapath::WorkerPool::shared(),
                             config_.map_slots);
    for (const BlockId block : blocks) {
      // Assignment happens on the caller thread (rng_/assigned_ are not
      // shared with the tasks); only the read itself runs on the pool.
      const NodeId reader = reader_for(block);
      bool local = false;
      for (const NodeId n : cfs_->block_locations(block)) {
        if (n == reader && cfs_->node_alive(n)) {
          local = true;
          break;
        }
      }
      maps.submit([this, block, reader, local, &mu, &report, qctx] {
        qos::InstallScope qscope(qctx);
        const auto t0 = Clock::now();
        int64_t got = 0;
        bool ok = true;
        try {
          got = static_cast<int64_t>(cfs_->read_block(block, reader).size());
        } catch (const std::runtime_error&) {
          ok = false;  // unrecoverable under the current failure set
        }
        const double took =
            std::chrono::duration<double>(Clock::now() - t0).count();
        std::lock_guard<std::mutex> lock(mu);
        if (!ok) {
          ++report.failed;
          return;
        }
        ++report.blocks_read;
        report.bytes_read += got;
        (local ? report.data_local_reads : report.remote_reads) += 1;
        report.latencies_s.push_back(took);
      });
    }
    maps.wait();
  }
  report.duration_s =
      std::chrono::duration<double>(Clock::now() - job_start).count();
  if (report.duration_s > 0) {
    report.throughput_mbps =
        static_cast<double>(report.bytes_read) / 1e6 / report.duration_s;
  }
  std::sort(report.latencies_s.begin(), report.latencies_s.end());
  ctr_reads->add(report.blocks_read);
  return report;
}

}  // namespace ear::mapred
