// Map-only read job over the MiniCfs testbed (the consumer side of the
// paper's workloads: analytics tasks scanning blocks that were replicated,
// then encoded).
//
// Mirrors RaidNode's structure: one map task per input block runs on the
// shared data-path pool (datapath::WorkerPool), at most `map_slots`
// concurrently, each reading its block through MiniCfs::read_block — so
// tasks hit the reader-side BlockCache, take degraded reads when their
// block is lost, and contend on the emulated transport exactly like the
// encode/repair jobs they share the cluster with.
//
// Each block gets a FIXED reader node, assigned on first sight and reused
// on every later pass: repeated scans of the same input (the hot-read
// pattern the cache targets) land on the same reader's cache instead of
// re-rolling placement per pass.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cfs/minicfs.h"
#include "common/rng.h"
#include "common/units.h"

namespace ear::mapred {

// Where a block's map task runs.
enum class ReadLocality {
  // On a node holding a live replica (free local read when not encoded) —
  // Hadoop's data-local scheduling.
  kDataLocal,
  // On a uniformly random node (fixed per block): every read crosses the
  // network, the slot-starved case data-local scheduling cannot always
  // avoid, and the pattern the reader-side cache pays off on.
  kRandomRemote,
};

struct ReadJobConfig {
  int map_slots = 4;
  ReadLocality locality = ReadLocality::kRandomRemote;
  uint64_t seed = 1;
};

struct ReadJobReport {
  int64_t blocks_read = 0;
  int64_t bytes_read = 0;
  int64_t failed = 0;  // reads that threw (block unrecoverable mid-failure)
  double duration_s = 0;
  double throughput_mbps = 0;  // bytes_read per wall second
  int64_t data_local_reads = 0;  // reader held a live replica at dispatch
  int64_t remote_reads = 0;
  std::vector<double> latencies_s;  // per-read wall times, sorted ascending
};

class TestbedReadJob {
 public:
  TestbedReadJob(cfs::MiniCfs& cfs, const ReadJobConfig& config);

  // Reads every block once; blocks until the job finishes.  Reader
  // assignments persist across run() calls (see file comment).
  ReadJobReport run(const std::vector<BlockId>& blocks);

  // The reader a block's map task is pinned to (assigning it if new).
  NodeId reader_for(BlockId block);

 private:
  cfs::MiniCfs* cfs_;
  ReadJobConfig config_;
  Rng rng_;
  std::unordered_map<BlockId, NodeId> assigned_;
};

}  // namespace ear::mapred
