#include "mapred/swim.h"

#include <algorithm>
#include <cmath>

namespace ear::mapred {

std::vector<JobSpec> generate_swim_workload(const SwimConfig& config) {
  Rng rng(config.seed);
  std::vector<JobSpec> jobs;
  jobs.reserve(static_cast<size_t>(config.jobs));

  Seconds t = 0;
  for (int i = 0; i < config.jobs; ++i) {
    t += rng.exponential(1.0 / config.arrival_rate);

    const double raw_blocks =
        rng.lognormal(config.input_blocks_mu, config.input_blocks_sigma);
    const int input_blocks = std::clamp(
        static_cast<int>(std::lround(raw_blocks)), 1,
        config.max_input_blocks);

    JobSpec spec;
    spec.id = i;
    spec.submit_time = t;
    spec.input_size = static_cast<Bytes>(input_blocks) * config.block_size;
    if (rng.bernoulli(config.map_only_fraction)) {
      spec.shuffle_size = 0;
      spec.output_size = static_cast<Bytes>(
          static_cast<double>(spec.input_size) *
          rng.uniform_double(0.05, 0.3));
    } else {
      spec.shuffle_size = static_cast<Bytes>(
          static_cast<double>(spec.input_size) * rng.uniform_double(0.2, 1.0));
      spec.output_size = static_cast<Bytes>(
          static_cast<double>(spec.input_size) * rng.uniform_double(0.1, 0.8));
    }
    jobs.push_back(spec);
  }
  return jobs;
}

}  // namespace ear::mapred
