#include "qos/qos.h"

namespace ear::qos {

namespace {
thread_local TransferContext tl_ctx;
thread_local bool tl_active = false;
}  // namespace

const char* class_name(TrafficClass cls) {
  switch (cls) {
    case TrafficClass::kForegroundRead:
      return "fg-read";
    case TrafficClass::kForegroundWrite:
      return "fg-write";
    case TrafficClass::kBackgroundEncode:
      return "bg-encode";
    case TrafficClass::kRepair:
      return "repair";
  }
  return "unknown";
}

std::string class_metric(TrafficClass cls, const char* suffix) {
  return std::string("qos.class.") + class_name(cls) + "." + suffix;
}

TransferContext current_context() { return tl_ctx; }

bool context_active() { return tl_active; }

QosScope::QosScope(TransferContext ctx)
    : prev_(tl_ctx), prev_active_(tl_active) {
  tl_ctx = ctx;
  tl_active = true;
}

QosScope::QosScope(TrafficClass cls, int tenant)
    : QosScope(TransferContext{cls, tenant}) {}

QosScope::~QosScope() {
  tl_ctx = prev_;
  tl_active = prev_active_;
}

OpScope::OpScope(TrafficClass cls) {
  if (tl_active) return;  // an outer scope (operation or workload tag) wins
  installed_ = true;
  prev_ = tl_ctx;
  tl_ctx.cls = cls;
  tl_active = true;
}

OpScope::~OpScope() {
  if (!installed_) return;
  tl_ctx = prev_;
  tl_active = false;
}

Captured capture() { return Captured{tl_ctx, tl_active}; }

InstallScope::InstallScope(const Captured& captured)
    : prev_(tl_ctx), prev_active_(tl_active) {
  tl_ctx = captured.ctx;
  tl_active = captured.active;
}

InstallScope::~InstallScope() {
  tl_ctx = prev_;
  tl_active = prev_active_;
}

}  // namespace ear::qos
