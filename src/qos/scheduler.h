// Weighted fair-share link scheduling (the QoS tentpole; DESIGN.md "QoS &
// fair-share scheduling").
//
// Replaces the FIFO reservation discipline of ThrottledTransport's links
// with per-link weighted fair queuing over (traffic class, tenant) flows:
//
//  * FairQueueCore — the deterministic WFQ heart: start-time/finish-time
//    virtual clock (vstart = max(V, flow's last vfinish), vfinish = vstart
//    + bytes / weight), requests granted in vfinish order with FIFO
//    tie-break.  A flow's weight is class_weight x tenant_weight.  Pure
//    state machine, no clock, no threads — qos_test drives it directly for
//    the deterministic convergence proofs.
//
//  * LinkScheduler — one real link: a fluid reservation timeline (like the
//    old FIFO Link) plus a FairQueueCore deciding *which* queued request
//    gets the next timeline slot.  The timeline may run at most
//    `grant_horizon` seconds ahead of real time; arrivals beyond that wait,
//    so ordering decisions bind as late as possible (that lateness is what
//    turns weight ratios into real bandwidth ratios).  Work-conserving: an
//    idle link grants immediately, and any backlogged flow inherits idle
//    classes' share.  Optional per-class token-bucket ceilings (the repair
//    budget) are enforced at grant time: an over-budget class's requests
//    are skipped — not reordered away, merely deferred — and the link hands
//    the slot to the next admissible vfinish.
//
//  * QosScheduler — the cluster view: all links of one transport plus the
//    periodic controller that re-splits each class's *global* byte budget
//    across links proportional to observed per-link demand (EWMA), so e.g.
//    a single hot rack up-link can spend the entire cluster repair budget
//    instead of 1/L of it (YTsaurus distributed_throttler's scheme).
//
// Everything here decides only *when* a reservation is granted — payload
// routing and contents are untouched (invariant 11).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/units.h"
#include "obs/metrics.h"
#include "qos/qos.h"

namespace ear::qos {

struct QosConfig {
  bool enable = false;
  // Relative link share per traffic class while backlogged.  Defaults favor
  // foreground traffic 4:1 over background encode and repair.
  double class_weight[kClassCount] = {4.0, 4.0, 1.0, 1.0};
  // Per-tenant multiplier within a class (absent tenants weigh 1.0).
  // Effective flow weight = class_weight[cls] * tenant_weight[tenant].
  std::map<int, double> tenant_weight;
  // Cluster-wide rate ceiling per class in bytes/s; 0 = uncapped (purely
  // work-conserving).  This is where the RepairManager's old private token
  // bucket lives now: set class_rate[kRepair] to the repair budget.
  BytesPerSec class_rate[kClassCount] = {0, 0, 0, 0};
  // Controller tick re-splitting global class budgets across links by
  // observed demand; 0 = static equal split, no controller thread.
  Seconds rebalance_period = 0.05;
  // How far a link's reservation timeline may run ahead of real time before
  // arrivals queue in virtual-finish order.  Small = late binding (fair);
  // large degenerates toward the old FIFO.
  Seconds grant_horizon = 0.002;
};

// ------------------------------------------------------------ FairQueueCore

class FairQueueCore {
 public:
  struct Request {
    uint64_t id = 0;
    int class_idx = 0;
    int tenant = 0;
    Bytes bytes = 0;
    // Whether this request draws from its class's byte budget.  A transfer
    // spanning several links charges the budget exactly once (its first
    // link); the other hops still schedule in fair order but are not
    // metered, so a serial path is not throttled once per hop.
    bool charge = true;
    double vstart = 0;
    double vfinish = 0;
  };

  explicit FairQueueCore(const QosConfig& config);

  double weight_of(const TransferContext& ctx) const;

  // Enqueues a request and returns its ticket id.
  uint64_t add(const TransferContext& ctx, Bytes bytes, bool charge);

  // Pops the first request in (vfinish, arrival) order that `admit`
  // accepts, advancing virtual time to its vstart.  Returns false when the
  // queue is empty or nothing is admissible.
  bool grant_next(const std::function<bool(const Request&)>& admit,
                  Request* out);

  bool empty() const { return queue_.empty(); }
  size_t size() const { return queue_.size(); }
  // Queued requests of one class (budget-deferral introspection).
  size_t class_size(int class_idx) const;
  // Smallest queued request of `class_idx`; 0 when none (token wake hints).
  Bytes min_bytes(int class_idx) const;

 private:
  struct FlowKey {
    int class_idx;
    int tenant;
    bool operator<(const FlowKey& o) const {
      return class_idx != o.class_idx ? class_idx < o.class_idx
                                      : tenant < o.tenant;
    }
  };

  const QosConfig config_;
  double vtime_ = 0;
  uint64_t next_id_ = 1;
  std::map<FlowKey, double> flow_vfinish_;
  // (vfinish, id) -> request; id is monotonically increasing, so equal
  // vfinish tags resolve FIFO.
  std::map<std::pair<double, uint64_t>, Request> queue_;
  size_t class_count_[kClassCount] = {0, 0, 0, 0};
};

// ------------------------------------------------------------ LinkScheduler

class LinkScheduler {
 public:
  using Clock = std::chrono::steady_clock;

  LinkScheduler(double seconds_per_byte, const QosConfig& config);

  // Blocks until the request is granted a timeline slot; returns the time
  // the reservation ends (the caller sleeps until then for a delivered
  // transfer, or not at all for injected traffic).  `charge` = this hop
  // draws from the class byte budget (one hop per transfer chunk does).
  Clock::time_point request(const TransferContext& ctx, Bytes bytes,
                            bool charge = true);

  // Controller interface: this link's current byte budget for a class.
  void set_class_rate(int class_idx, BytesPerSec rate);
  // Bytes requested per class since the previous call (demand signal).
  int64_t take_demand(int class_idx);

  // Sampler interface.
  struct Sample {
    int64_t queued_bytes = 0;   // timeline backlog + waiting requests
    double busy_seconds = 0;    // cumulative reserved seconds
    int64_t waiting = 0;        // queued (not yet granted) requests
  };
  Sample sample(Clock::time_point now) const;

 private:
  struct TokenBucket {
    BytesPerSec rate = 0;  // 0 = uncapped
    double tokens = 0;
    Clock::time_point last_refill{};
  };

  bool admit_locked(int class_idx, Bytes bytes) const;
  void refill_locked(Clock::time_point now);
  // Grants every admissible head request while the timeline is within the
  // horizon.  Caller holds mu_.
  void try_grant_locked(Clock::time_point now);
  // Earliest instant another grant could become possible.  Caller holds mu_.
  Clock::time_point next_event_locked(Clock::time_point now) const;

  const double seconds_per_byte_;
  const QosConfig config_;
  const Clock::duration horizon_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  FairQueueCore core_;
  struct Grant {
    bool granted = false;
    Clock::time_point end{};
  };
  std::map<uint64_t, Grant> grants_;  // ticket -> grant state
  Clock::time_point available_at_{};
  double busy_seconds_ = 0;
  int64_t waiting_bytes_ = 0;
  TokenBucket buckets_[kClassCount];
  int64_t demand_[kClassCount] = {0, 0, 0, 0};
};

// ------------------------------------------------------------- QosScheduler

class QosScheduler {
 public:
  using Clock = LinkScheduler::Clock;

  // One LinkScheduler per entry of `seconds_per_byte` (index-compatible
  // with the transport's link table).
  QosScheduler(const std::vector<double>& seconds_per_byte,
               const QosConfig& config);
  ~QosScheduler();

  QosScheduler(const QosScheduler&) = delete;
  QosScheduler& operator=(const QosScheduler&) = delete;

  // Blocks until granted; returns the reservation end.  Also feeds the
  // qos.class.* byte counters (charged hops only, so a transfer's bytes
  // count once) and the grant-latency histogram.
  Clock::time_point request(int link, const TransferContext& ctx, Bytes bytes,
                            bool charge = true);

  LinkScheduler::Sample sample(int link, Clock::time_point now) const {
    return links_[static_cast<size_t>(link)]->sample(now);
  }

  const QosConfig& config() const { return config_; }

  // Total queued (not yet granted) requests across all links.
  int64_t total_waiting() const;

 private:
  void controller_loop();
  void rebalance();

  const QosConfig config_;
  std::vector<std::unique_ptr<LinkScheduler>> links_;

  // Controller state: EWMA of per-link demand, one row per class.
  std::vector<std::vector<double>> demand_ewma_;

  std::thread controller_;
  std::mutex controller_mu_;
  std::condition_variable controller_cv_;
  bool controller_stop_ = false;

  obs::Counter* ctr_bytes_[kClassCount] = {};
  obs::Counter* ctr_grants_[kClassCount] = {};
  obs::Gauge* gauge_queued_[kClassCount] = {};
  obs::Histogram* hist_grant_latency_;
  std::mutex queued_mu_;
  int64_t queued_bytes_[kClassCount] = {0, 0, 0, 0};
};

}  // namespace ear::qos
