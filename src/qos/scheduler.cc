#include "qos/scheduler.h"

#include <algorithm>
#include <cmath>

namespace ear::qos {

namespace {

constexpr double kMinWeight = 1e-9;

// Token buckets allow a short burst (half a second of the sustained rate)
// above it; the floor keeps chunk-sized requests moving when the budget is
// tiny.  Debt-style admission below handles requests larger than the cap.
double bucket_cap(BytesPerSec rate) {
  return std::max(rate * 0.5, static_cast<double>(256_KB));
}

LinkScheduler::Clock::duration to_duration(double seconds) {
  return std::chrono::duration_cast<LinkScheduler::Clock::duration>(
      std::chrono::duration<double>(std::max(0.0, seconds)));
}

}  // namespace

// ------------------------------------------------------------ FairQueueCore

FairQueueCore::FairQueueCore(const QosConfig& config) : config_(config) {}

double FairQueueCore::weight_of(const TransferContext& ctx) const {
  double w = config_.class_weight[static_cast<int>(ctx.cls)];
  auto it = config_.tenant_weight.find(ctx.tenant);
  if (it != config_.tenant_weight.end()) w *= it->second;
  return std::max(w, kMinWeight);
}

uint64_t FairQueueCore::add(const TransferContext& ctx, Bytes bytes,
                            bool charge) {
  Request r;
  r.id = next_id_++;
  r.class_idx = static_cast<int>(ctx.cls);
  r.tenant = ctx.tenant;
  r.bytes = bytes;
  r.charge = charge;

  const FlowKey key{r.class_idx, r.tenant};
  double& last_vfinish = flow_vfinish_[key];
  r.vstart = std::max(vtime_, last_vfinish);
  r.vfinish = r.vstart + static_cast<double>(bytes) / weight_of(ctx);
  last_vfinish = r.vfinish;

  queue_.emplace(std::make_pair(r.vfinish, r.id), r);
  ++class_count_[r.class_idx];
  return r.id;
}

bool FairQueueCore::grant_next(
    const std::function<bool(const Request&)>& admit, Request* out) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    const Request& r = it->second;
    if (!admit(r)) continue;
    *out = r;
    vtime_ = std::max(vtime_, r.vstart);
    --class_count_[r.class_idx];
    queue_.erase(it);
    if (queue_.empty()) {
      // System idle: restart the virtual clock so tags stay small and a
      // long-idle flow carries no stale credit or debt into the next busy
      // period.
      vtime_ = 0;
      flow_vfinish_.clear();
    }
    return true;
  }
  return false;
}

size_t FairQueueCore::class_size(int class_idx) const {
  return class_count_[class_idx];
}

Bytes FairQueueCore::min_bytes(int class_idx) const {
  Bytes best = 0;
  for (const auto& [tag, r] : queue_) {
    if (r.class_idx != class_idx) continue;
    if (best == 0 || r.bytes < best) best = r.bytes;
  }
  return best;
}

// ------------------------------------------------------------ LinkScheduler

LinkScheduler::LinkScheduler(double seconds_per_byte, const QosConfig& config)
    : seconds_per_byte_(seconds_per_byte),
      config_(config),
      horizon_(to_duration(config.grant_horizon)),
      core_(config) {}

LinkScheduler::Clock::time_point LinkScheduler::request(
    const TransferContext& ctx, Bytes bytes, bool charge) {
  const int cls = static_cast<int>(ctx.cls);
  std::unique_lock<std::mutex> lk(mu_);
  auto now = Clock::now();
  if (charge) demand_[cls] += bytes;
  refill_locked(now);

  // Fast path: idle link within the horizon, nobody queued, budget ok.
  if (core_.empty() && available_at_ <= now + horizon_ &&
      (!charge || admit_locked(cls, bytes))) {
    if (charge && buckets_[cls].rate > 0) buckets_[cls].tokens -= bytes;
    auto start = std::max(now, available_at_);
    double secs = static_cast<double>(bytes) * seconds_per_byte_;
    available_at_ = start + to_duration(secs);
    busy_seconds_ += secs;
    return available_at_;
  }

  const uint64_t id = core_.add(ctx, bytes, charge);
  waiting_bytes_ += bytes;
  grants_.emplace(id, Grant{});
  while (true) {
    try_grant_locked(Clock::now());
    auto it = grants_.find(id);
    if (it->second.granted) {
      auto end = it->second.end;
      grants_.erase(it);
      return end;
    }
    cv_.wait_until(lk, next_event_locked(Clock::now()));
  }
}

bool LinkScheduler::admit_locked(int class_idx, Bytes bytes) const {
  (void)bytes;
  const TokenBucket& b = buckets_[class_idx];
  // Debt-style bucket: admit while tokens are positive, charge the full
  // request (possibly going negative).  Long-run throughput converges to
  // the configured rate for any request size, and every class makes
  // progress once its tokens refill past zero — starvation-free.
  return b.rate <= 0 || b.tokens > 0;
}

void LinkScheduler::refill_locked(Clock::time_point now) {
  for (auto& b : buckets_) {
    if (b.rate <= 0) continue;
    if (b.last_refill == Clock::time_point{}) {
      b.last_refill = now;
      continue;
    }
    if (now <= b.last_refill) continue;
    double dt = std::chrono::duration<double>(now - b.last_refill).count();
    b.tokens = std::min(bucket_cap(b.rate), b.tokens + dt * b.rate);
    b.last_refill = now;
  }
}

void LinkScheduler::try_grant_locked(Clock::time_point now) {
  refill_locked(now);
  bool granted_any = false;
  while (!core_.empty() && available_at_ <= now + horizon_) {
    FairQueueCore::Request r;
    if (!core_.grant_next(
            [this](const FairQueueCore::Request& req) {
              return !req.charge || admit_locked(req.class_idx, req.bytes);
            },
            &r)) {
      break;
    }
    if (r.charge && buckets_[r.class_idx].rate > 0) {
      buckets_[r.class_idx].tokens -= r.bytes;
    }
    auto start = std::max(now, available_at_);
    double secs = static_cast<double>(r.bytes) * seconds_per_byte_;
    available_at_ = start + to_duration(secs);
    busy_seconds_ += secs;
    waiting_bytes_ -= r.bytes;
    auto& g = grants_[r.id];
    g.granted = true;
    g.end = available_at_;
    granted_any = true;
  }
  if (granted_any) cv_.notify_all();
}

LinkScheduler::Clock::time_point LinkScheduler::next_event_locked(
    Clock::time_point now) const {
  if (available_at_ > now + horizon_) return available_at_ - horizon_;
  // Timeline is open, so the queue heads must be waiting on tokens: wake
  // when the soonest capped class with queued work turns positive.
  Clock::time_point soonest = now + std::chrono::milliseconds(50);
  for (int c = 0; c < kClassCount; ++c) {
    const TokenBucket& b = buckets_[c];
    if (b.rate <= 0 || b.tokens > 0) continue;
    if (core_.class_size(c) == 0) continue;
    double wait = (-b.tokens) / b.rate + 1e-4;
    soonest = std::min(soonest, now + to_duration(wait));
  }
  return soonest;
}

void LinkScheduler::set_class_rate(int class_idx, BytesPerSec rate) {
  std::lock_guard<std::mutex> lk(mu_);
  TokenBucket& b = buckets_[class_idx];
  if (b.rate <= 0 && rate > 0) {
    // First assignment: start full so a fresh budget permits an immediate
    // burst, mirroring the RepairManager's old startup allowance.
    b.last_refill = Clock::time_point{};
    b.tokens = bucket_cap(rate);
  }
  b.rate = rate;
  if (rate > 0) b.tokens = std::min(b.tokens, bucket_cap(rate));
  cv_.notify_all();
}

int64_t LinkScheduler::take_demand(int class_idx) {
  std::lock_guard<std::mutex> lk(mu_);
  int64_t d = demand_[class_idx];
  demand_[class_idx] = 0;
  return d;
}

LinkScheduler::Sample LinkScheduler::sample(Clock::time_point now) const {
  std::lock_guard<std::mutex> lk(mu_);
  Sample s;
  double backlog = 0;
  if (available_at_ > now) {
    backlog = std::chrono::duration<double>(available_at_ - now).count();
  }
  s.queued_bytes = waiting_bytes_;
  if (seconds_per_byte_ > 0) {
    s.queued_bytes += static_cast<int64_t>(backlog / seconds_per_byte_);
  }
  s.busy_seconds = busy_seconds_;
  s.waiting = static_cast<int64_t>(core_.size());
  return s;
}

// ------------------------------------------------------------- QosScheduler

QosScheduler::QosScheduler(const std::vector<double>& seconds_per_byte,
                           const QosConfig& config)
    : config_(config) {
  links_.reserve(seconds_per_byte.size());
  for (double spb : seconds_per_byte) {
    links_.push_back(std::make_unique<LinkScheduler>(spb, config_));
  }

  const size_t n = links_.size();
  demand_ewma_.assign(kClassCount, std::vector<double>(n, 0.0));
  bool any_capped = false;
  for (int c = 0; c < kClassCount; ++c) {
    if (config_.class_rate[c] <= 0) continue;
    any_capped = true;
    // Start from an equal static split; the controller reshapes it from
    // observed demand.
    for (auto& link : links_) {
      link->set_class_rate(c, config_.class_rate[c] / static_cast<double>(n));
    }
  }

  auto& reg = obs::Registry::instance();
  for (int c = 0; c < kClassCount; ++c) {
    auto cls = static_cast<TrafficClass>(c);
    ctr_bytes_[c] = &reg.counter(class_metric(cls, "bytes"));
    ctr_grants_[c] = &reg.counter(class_metric(cls, "grants"));
    gauge_queued_[c] = &reg.gauge(class_metric(cls, "queued_bytes"));
  }
  hist_grant_latency_ = &reg.histogram(
      "qos.grant_latency_ms",
      {0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50, 100, 500, 1000});

  if (any_capped && config_.rebalance_period > 0 && n > 0) {
    controller_ = std::thread([this] { controller_loop(); });
  }
}

QosScheduler::~QosScheduler() {
  if (controller_.joinable()) {
    {
      std::lock_guard<std::mutex> lk(controller_mu_);
      controller_stop_ = true;
    }
    controller_cv_.notify_all();
    controller_.join();
  }
}

QosScheduler::Clock::time_point QosScheduler::request(
    int link, const TransferContext& ctx, Bytes bytes, bool charge) {
  const int c = static_cast<int>(ctx.cls);
  {
    std::lock_guard<std::mutex> lk(queued_mu_);
    queued_bytes_[c] += bytes;
    gauge_queued_[c]->set(static_cast<double>(queued_bytes_[c]));
  }
  auto t0 = Clock::now();
  auto end = links_[static_cast<size_t>(link)]->request(ctx, bytes, charge);
  auto granted = Clock::now();
  {
    std::lock_guard<std::mutex> lk(queued_mu_);
    queued_bytes_[c] -= bytes;
    gauge_queued_[c]->set(static_cast<double>(queued_bytes_[c]));
  }
  hist_grant_latency_->record(
      std::chrono::duration<double, std::milli>(granted - t0).count());
  if (charge) {
    // Charged hops only: a multi-link transfer's bytes count once.
    ctr_bytes_[c]->add(bytes);
    ctr_grants_[c]->add(1);
  }
  return end;
}

int64_t QosScheduler::total_waiting() const {
  auto now = Clock::now();
  int64_t total = 0;
  for (const auto& link : links_) total += link->sample(now).waiting;
  return total;
}

void QosScheduler::controller_loop() {
  std::unique_lock<std::mutex> lk(controller_mu_);
  while (!controller_stop_) {
    controller_cv_.wait_for(
        lk, std::chrono::duration<double>(config_.rebalance_period),
        [this] { return controller_stop_; });
    if (controller_stop_) break;
    lk.unlock();
    rebalance();
    lk.lock();
  }
}

void QosScheduler::rebalance() {
  const size_t n = links_.size();
  if (n == 0) return;
  for (int c = 0; c < kClassCount; ++c) {
    const BytesPerSec budget = config_.class_rate[c];
    if (budget <= 0) continue;
    auto& ewma = demand_ewma_[static_cast<size_t>(c)];
    double total = 0;
    for (size_t i = 0; i < n; ++i) {
      double d = static_cast<double>(links_[i]->take_demand(c));
      ewma[i] = 0.5 * ewma[i] + 0.5 * d;
      total += ewma[i];
    }
    for (size_t i = 0; i < n; ++i) {
      double share = total > 0 ? ewma[i] / total : 1.0 / static_cast<double>(n);
      // Blend with an equal-split floor so links with no recent demand can
      // still start a flow without waiting a full controller period.
      double rate =
          budget * (0.8 * share + 0.2 / static_cast<double>(n));
      links_[i]->set_class_rate(c, rate);
    }
  }
}

}  // namespace ear::qos
