// Traffic classification for cluster-wide QoS (see DESIGN.md "QoS &
// fair-share scheduling").
//
// Every byte the testbed moves belongs to a (traffic class, tenant) flow:
// the class says *why* the bytes move (foreground read/write, background
// encoding, repair), the tenant says *on whose behalf*.  The pair travels
// with the thread as an ambient TransferContext — installed by QosScope
// (benches/workloads tag their tenant) and defaulted per operation by
// MiniCfs (a repair is kRepair no matter which thread runs it) — and is
// read by ThrottledTransport at every link reservation, where the
// fair-share scheduler (qos/scheduler.h) turns it into a weighted grant.
//
// Propagation: data paths hop threads constantly (StagedPipeline stage and
// lane threads, WorkerPool map tasks, replication-pipeline hops), so the
// context must follow the work, not the thread.  capture()/InstallScope is
// the hand-off idiom: capture in the thread that owns the operation,
// install in every thread that moves bytes for it.  StagedPipeline does
// this automatically for its stage/lane threads.
//
// Invariant 11: the context only ever influences *when* a transfer is
// granted link time — never which bytes move, so payloads are byte-identical
// with QoS on or off.
#pragma once

#include <cstdint>
#include <string>

namespace ear::qos {

enum class TrafficClass : uint8_t {
  kForegroundRead = 0,
  kForegroundWrite = 1,
  kBackgroundEncode = 2,
  kRepair = 3,
};

inline constexpr int kClassCount = 4;

// Stable short names ("fg-read", ...) used for metric keys and bench tables.
const char* class_name(TrafficClass cls);

struct TransferContext {
  TrafficClass cls = TrafficClass::kForegroundRead;
  int tenant = 0;  // 0 = the system tenant (repair, conversion, tests)

  bool operator==(const TransferContext& other) const {
    return cls == other.cls && tenant == other.tenant;
  }
};

// The ambient context of the calling thread (the default-constructed
// context when nothing is installed).
TransferContext current_context();
// True when a QosScope / OpScope / InstallScope is active on this thread —
// i.e. current_context() is intentional, not the fallback default.
bool context_active();

// Installs a full (class, tenant) context for the scope's lifetime,
// restoring the previous state on destruction.  This is the *explicit* tag:
// workloads and benches wrap their request loops in one, and MiniCfs
// operation defaults never override it (see OpScope).
class QosScope {
 public:
  explicit QosScope(TransferContext ctx);
  QosScope(TrafficClass cls, int tenant);
  ~QosScope();

  QosScope(const QosScope&) = delete;
  QosScope& operator=(const QosScope&) = delete;

 private:
  TransferContext prev_;
  bool prev_active_;
};

// Per-operation default: installs {cls, current tenant} only when no
// context is active on this thread.  MiniCfs entry points use this so that
// an unwrapped caller still gets the right class (repair_block charges
// kRepair, encode_stripe kBackgroundEncode), while an outer QosScope — or
// an outer operation, e.g. the read inside repair_block — wins.
class OpScope {
 public:
  explicit OpScope(TrafficClass cls);
  ~OpScope();

  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

 private:
  bool installed_ = false;
  TransferContext prev_;
};

// Cross-thread hand-off: capture() in the thread that owns the operation,
// InstallScope the captured value in every helper thread that moves bytes
// for it (pipeline stages, pool tasks, replication hops).
struct Captured {
  TransferContext ctx;
  bool active = false;
};

Captured capture();

class InstallScope {
 public:
  explicit InstallScope(const Captured& captured);
  ~InstallScope();

  InstallScope(const InstallScope&) = delete;
  InstallScope& operator=(const InstallScope&) = delete;

 private:
  TransferContext prev_;
  bool prev_active_;
};

// Metric key for a class: "qos.class.<name>".
std::string class_metric(TrafficClass cls, const char* suffix);

}  // namespace ear::qos
