// Mmap-backed persistent block store with a crash-consistent directory.
//
// On-disk layout (one directory per DataNode):
//
//   manifest.log      append-only block directory
//   seg-000000.dat    payload segments, append-only
//   seg-000001.dat    ...
//
// The manifest starts with the 8-byte magic "EARSTOR1" followed by
// fixed-size 48-byte records:
//
//   u32 marker 'EARM' | u32 type (1=PUT 2=ERASE) | u64 block | u32 segment |
//   u32 reserved | u64 offset | u64 length | u32 payload_crc | u32 record_crc
//
// record_crc covers the first 44 bytes; payload_crc is the CRC-32 of the
// block bytes the record points at (0 for ERASE).
//
// Commit protocol (SyncPolicy::kEveryCommit, the default):
//   1. append the payload to the current segment, fdatasync(segment)
//   2. append the manifest record,              fdatasync(manifest)
// A block is committed exactly when its manifest record is durable; the
// ordering guarantees a durable record never points at undurable bytes.
// SyncPolicy::kOnFlush defers both syncs to flush() — faster ingest, and
// the crash guarantee holds only up to the last flush().
//
// Replay-on-open scans the manifest sequentially and stops at the first
// record that is short, has a bad marker, or fails record_crc — a torn tail
// from a crash mid-commit — truncating the manifest there.  Segment bytes
// beyond the highest replayed extent (payload written but record lost) are
// truncated too.  With verify_on_open, every surviving block's payload CRC
// is checked and corrupt blocks are dropped from the index; open_report()
// says what replay found.
//
// get() hands out a zero-copy BlockBuffer view of the mmap'd segment
// (BlockBuffer::view_of): the view's shared_ptr keeps the mapping alive, so
// outstanding readers — the PR 5 block cache included — stay valid across
// erase, overwrite, remap, and even store destruction.  The store itself
// retains no block payloads in RAM; resident size is page-cache-managed, so
// datasets larger than RAM work.
//
// Erase and overwrite append records; old payload bytes become garbage that
// is reclaimed only by a fresh store copy (no in-place compaction — the
// paper's workloads are write-once / encode-once).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/units.h"
#include "store/block_store.h"

namespace ear::store {

struct MmapStoreOptions {
  // Roll to a new segment file once the current one would exceed this.
  Bytes segment_bytes = 256_MB;

  enum class SyncPolicy {
    kEveryCommit,  // fdatasync segment + manifest on every put/erase
    kOnFlush,      // defer durability to flush()
  };
  SyncPolicy sync = SyncPolicy::kEveryCommit;

  // CRC-check every live block's payload during replay (drops corrupt
  // blocks instead of serving bad bytes).  Costs one sequential read of the
  // live dataset on open.
  bool verify_on_open = true;
};

class MmapBlockStore final : public BlockStore {
 public:
  struct OpenReport {
    int64_t records_replayed = 0;        // valid manifest records applied
    int64_t blocks_recovered = 0;        // live blocks after replay
    int64_t torn_bytes_truncated = 0;    // invalid manifest tail removed
    int64_t segment_bytes_truncated = 0; // orphan payload tails removed
    int64_t corrupt_blocks_dropped = 0;  // failed payload CRC / bad extent
  };

  // Opens (creating directories as needed) and replays the store at `dir`.
  // Throws std::runtime_error on unrecoverable I/O errors or a foreign
  // manifest magic.
  explicit MmapBlockStore(const std::string& dir,
                          const MmapStoreOptions& options = {});
  ~MmapBlockStore() override;

  StoreBackend backend() const override { return StoreBackend::kMmap; }

  void put(BlockId block, datapath::BlockBuffer bytes) override;
  std::optional<datapath::BlockBuffer> get(BlockId block) const override;
  bool erase(BlockId block) override;

  bool contains(BlockId block) const override;
  size_t block_count() const override;
  int64_t bytes_stored() const override;
  std::vector<BlockId> block_ids() const override;
  std::map<BlockId, datapath::BlockBuffer> export_blocks() const override;
  void flush() override;

  // ---- introspection (tests, benches) ------------------------------------
  const std::string& dir() const { return dir_; }
  const OpenReport& open_report() const { return open_report_; }
  // Current manifest file size; a commit's durability boundary (the
  // crash-consistency property test cuts the manifest at every byte).
  int64_t manifest_bytes() const;
  int segment_count() const;
  // Advises the kernel to drop the page cache for every segment (cold-start
  // read benches).  Pages are clean after fsync, so this models a restart
  // with an empty cache without needing privileges.
  void drop_page_cache() const;

 private:
  struct Extent {
    uint32_t segment = 0;
    uint64_t offset = 0;
    uint64_t length = 0;
    uint32_t payload_crc = 0;
  };

  // One mmap of a segment prefix.  Views returned by get() alias this via
  // shared_ptr, so the mapping outlives remaps and the store itself while
  // any reader holds a buffer.
  struct Mapping {
    const uint8_t* base = nullptr;
    size_t len = 0;
    ~Mapping();
  };

  struct Segment {
    int fd = -1;
    uint64_t size = 0;  // committed high watermark (append position)
    std::shared_ptr<Mapping> mapping;  // covers [0, mapping->len)
  };

  void replay(const MmapStoreOptions& options);
  // Mapping of segment `seg` covering at least `need` bytes (mu_ held).
  std::shared_ptr<Mapping> mapping_for(uint32_t seg, uint64_t need) const;
  // Opens seg-<id>.dat, creating it if asked (mu_ held).
  int open_segment_file(uint32_t seg, bool create) const;
  std::string segment_path(uint32_t seg) const;
  void sync_dir() const;
  void append_record(uint8_t type, BlockId block, const Extent& extent);
  void sync_fd(int fd, const char* what) const;

  const std::string dir_;
  MmapStoreOptions options_;
  OpenReport open_report_;

  mutable std::mutex mu_;
  int dir_fd_ = -1;
  int manifest_fd_ = -1;
  int64_t manifest_size_ = 0;
  mutable std::vector<Segment> segments_;
  std::map<BlockId, Extent> index_;
  int64_t live_bytes_ = 0;
};

}  // namespace ear::store
