// Persistent DataNode block stores (see DESIGN.md "Persistent store").
//
// MiniCfs used to keep every DataNode's blocks in a RAM-resident
// std::map<BlockId, BlockBuffer>, which caps datasets far below the paper's
// scale (96 x 64 MB stripes) and makes "node restart" indistinguishable
// from "node lost all data".  BlockStore is the seam that fixes both: one
// store instance per DataNode, with two implementations —
//
//  * MemBlockStore (mem_store.h)   — the existing in-RAM map, byte-identical
//    behavior, the default backend.
//  * MmapBlockStore (mmap_store.h) — per-node segment files plus a
//    crash-consistent append-only block directory; fetch() hands out a
//    zero-copy BlockBuffer view of the mmap'd segment, so the PR 3
//    ref-counting and the PR 5 reader cache work unchanged over it.
//
// Contract shared by all backends:
//  * put() overwrites: the latest bytes for a BlockId win (re-encode and
//    repair rewrite blocks in place).
//  * get() returns a buffer that shares the stored bytes (zero copies) and
//    stays valid after a later erase/overwrite/store-destruction —
//    BlockBuffer contents are immutable and ref-counted, so an outstanding
//    reader never observes torn or freed bytes.
//  * All methods are thread-safe; the store's internal mutex guards only
//    index state, never a byte copy.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "datapath/block_buffer.h"
#include "placement/types.h"

namespace ear::store {

// Which implementation a DataNode store uses (CfsConfig::store_backend,
// serialized in checkpoints since EARCKPT4).
enum class StoreBackend {
  kMem = 0,   // RAM-resident map; a restart loses every block
  kMmap = 1,  // mmap-backed segment files; a restart replays the directory
};

inline const char* backend_name(StoreBackend backend) {
  return backend == StoreBackend::kMem ? "mem" : "mmap";
}

class BlockStore {
 public:
  virtual ~BlockStore() = default;

  virtual StoreBackend backend() const = 0;
  const char* name() const { return backend_name(backend()); }

  // Stores (or overwrites) the block.  For persistent backends the call
  // returns only once the block is committed per the store's sync policy.
  virtual void put(BlockId block, datapath::BlockBuffer bytes) = 0;

  // Zero-copy reference to the stored bytes; nullopt when absent.
  virtual std::optional<datapath::BlockBuffer> get(BlockId block) const = 0;

  // Zero-copy reference to bytes [offset, offset + len) of the stored
  // block; nullopt when absent (or the range falls outside the block).
  // Backends whose get() already aliases the storage (mmap segments,
  // in-RAM buffers) serve this without touching the other bytes — the
  // vector-codec repair path fetches sub-block ranges through here.
  virtual std::optional<datapath::BlockBuffer> get_range(BlockId block,
                                                         size_t offset,
                                                         size_t len) const {
    auto full = get(block);
    if (!full.has_value() || offset + len > full->size()) return std::nullopt;
    return full->view(offset, len);
  }

  // Removes the block.  Returns false when it was not present.
  virtual bool erase(BlockId block) = 0;

  virtual bool contains(BlockId block) const = 0;
  virtual size_t block_count() const = 0;
  virtual int64_t bytes_stored() const = 0;  // live payload bytes
  virtual std::vector<BlockId> block_ids() const = 0;  // ascending

  // Snapshot of every block (checkpoint export).  Buffers share the stored
  // allocations / mappings; no payload copy.
  virtual std::map<BlockId, datapath::BlockBuffer> export_blocks() const = 0;

  // Durability barrier: returns once everything put() so far is on stable
  // storage (no-op for RAM stores; fsync for kOnFlush-policy mmap stores).
  virtual void flush() {}
};

}  // namespace ear::store
