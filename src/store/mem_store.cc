#include "store/mem_store.h"

namespace ear::store {

void MemBlockStore::put(BlockId block, datapath::BlockBuffer bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  blocks_[block] = std::move(bytes);
}

std::optional<datapath::BlockBuffer> MemBlockStore::get(BlockId block) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = blocks_.find(block);
  if (it == blocks_.end()) return std::nullopt;
  return it->second;  // shared reference, no byte copy
}

bool MemBlockStore::erase(BlockId block) {
  std::lock_guard<std::mutex> lock(mu_);
  return blocks_.erase(block) > 0;
}

bool MemBlockStore::contains(BlockId block) const {
  std::lock_guard<std::mutex> lock(mu_);
  return blocks_.count(block) > 0;
}

size_t MemBlockStore::block_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blocks_.size();
}

int64_t MemBlockStore::bytes_stored() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [id, bytes] : blocks_) {
    total += static_cast<int64_t>(bytes.size());
  }
  return total;
}

std::vector<BlockId> MemBlockStore::block_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<BlockId> ids;
  ids.reserve(blocks_.size());
  for (const auto& [id, bytes] : blocks_) ids.push_back(id);
  return ids;  // map order: ascending
}

std::map<BlockId, datapath::BlockBuffer> MemBlockStore::export_blocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blocks_;  // buffers shared, metadata-only copy
}

}  // namespace ear::store
