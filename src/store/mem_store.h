// RAM-resident block store — the seed MiniCfs::DataNode behavior behind the
// BlockStore interface, byte for byte: a mutex-guarded ordered map of
// ref-counted BlockBuffers.  The default backend; a restart_node() over it
// models a node that lost its disk (everything must be re-replicated).
#pragma once

#include <map>
#include <mutex>

#include "store/block_store.h"

namespace ear::store {

class MemBlockStore final : public BlockStore {
 public:
  MemBlockStore() = default;

  StoreBackend backend() const override { return StoreBackend::kMem; }

  void put(BlockId block, datapath::BlockBuffer bytes) override;
  std::optional<datapath::BlockBuffer> get(BlockId block) const override;
  bool erase(BlockId block) override;

  bool contains(BlockId block) const override;
  size_t block_count() const override;
  int64_t bytes_stored() const override;
  std::vector<BlockId> block_ids() const override;
  std::map<BlockId, datapath::BlockBuffer> export_blocks() const override;

 private:
  mutable std::mutex mu_;
  std::map<BlockId, datapath::BlockBuffer> blocks_;
};

}  // namespace ear::store
