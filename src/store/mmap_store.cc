#include "store/mmap_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "common/crc32.h"

namespace ear::store {

namespace {

constexpr char kStoreMagic[8] = {'E', 'A', 'R', 'S', 'T', 'O', 'R', '1'};
constexpr uint32_t kRecordMarker = 0x4D524145u;  // "EARM" little-endian
constexpr uint8_t kRecordPut = 1;
constexpr uint8_t kRecordErase = 2;
constexpr size_t kRecordSize = 48;
constexpr size_t kHeaderSize = 8;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void put_le32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

void put_le64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint32_t get_le32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t get_le64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

// Full-write loop (short writes are legal for write(2) even on regular
// files under signals).
void write_all(int fd, const uint8_t* data, size_t len,
               const char* what) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno(std::string("write ") + what);
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
}

void pwrite_all(int fd, const uint8_t* data, size_t len, uint64_t offset,
                const char* what) {
  while (len > 0) {
    const ssize_t n = ::pwrite(fd, data, len, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno(std::string("pwrite ") + what);
    }
    data += n;
    offset += static_cast<uint64_t>(n);
    len -= static_cast<size_t>(n);
  }
}

uint64_t file_size(int fd, const char* what) {
  struct stat st;
  if (::fstat(fd, &st) != 0) throw_errno(std::string("fstat ") + what);
  return static_cast<uint64_t>(st.st_size);
}

}  // namespace

MmapBlockStore::Mapping::~Mapping() {
  if (base != nullptr && len > 0) {
    ::munmap(const_cast<uint8_t*>(base), len);
  }
}

MmapBlockStore::MmapBlockStore(const std::string& dir,
                               const MmapStoreOptions& options)
    : dir_(dir), options_(options) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw std::runtime_error("cannot create store directory " + dir_ + ": " +
                             ec.message());
  }
  dir_fd_ = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd_ < 0) throw_errno("open " + dir_);
  replay(options);
}

MmapBlockStore::~MmapBlockStore() {
  // Mappings are released by their shared_ptrs (outstanding BlockBuffer
  // views keep theirs alive); fds can close now — mmap survives close(2).
  std::lock_guard<std::mutex> lock(mu_);
  for (Segment& seg : segments_) {
    if (seg.fd >= 0) ::close(seg.fd);
  }
  if (manifest_fd_ >= 0) ::close(manifest_fd_);
  if (dir_fd_ >= 0) ::close(dir_fd_);
}

// Makes freshly created files (manifest, new segments) durable: their data
// syncs cover the bytes, this covers the directory entry itself.
void MmapBlockStore::sync_dir() const {
  if (::fsync(dir_fd_) != 0) throw_errno("fsync " + dir_);
}

std::string MmapBlockStore::segment_path(uint32_t seg) const {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%06u.dat", seg);
  return dir_ + "/" + name;
}

int MmapBlockStore::open_segment_file(uint32_t seg, bool create) const {
  const std::string path = segment_path(seg);
  const int flags = O_RDWR | O_CLOEXEC | (create ? O_CREAT : 0);
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) throw_errno("open " + path);
  return fd;
}

void MmapBlockStore::sync_fd(int fd, const char* what) const {
  if (::fdatasync(fd) != 0) throw_errno(std::string("fdatasync ") + what);
}

void MmapBlockStore::replay(const MmapStoreOptions& options) {
  const std::string manifest_path = dir_ + "/manifest.log";
  manifest_fd_ =
      ::open(manifest_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (manifest_fd_ < 0) throw_errno("open " + manifest_path);

  uint64_t size = file_size(manifest_fd_, "manifest");
  if (size < kHeaderSize) {
    // Fresh store, or a crash tore the header itself: start over.  (A torn
    // header means no record was ever durable, so nothing is lost.)
    if (size != 0) {
      if (::ftruncate(manifest_fd_, 0) != 0) throw_errno("truncate manifest");
      open_report_.torn_bytes_truncated += static_cast<int64_t>(size);
    }
    write_all(manifest_fd_, reinterpret_cast<const uint8_t*>(kStoreMagic),
              kHeaderSize, "manifest header");
    sync_fd(manifest_fd_, "manifest");
    sync_dir();
    manifest_size_ = static_cast<int64_t>(kHeaderSize);
    return;  // empty directory: no segments yet
  }

  std::vector<uint8_t> manifest(size);
  for (uint64_t off = 0; off < size;) {
    const ssize_t n = ::pread(manifest_fd_, manifest.data() + off, size - off,
                              static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("pread manifest");
    }
    if (n == 0) throw std::runtime_error("manifest shrank during replay");
    off += static_cast<uint64_t>(n);
  }
  if (std::memcmp(manifest.data(), kStoreMagic, kHeaderSize) != 0) {
    throw std::runtime_error("not an EAR block store: " + manifest_path);
  }

  // Sequential scan; the first short / unmarked / CRC-failing record is a
  // torn tail from a crash mid-commit — everything before it is the
  // committed prefix, everything from it on is discarded.
  std::vector<uint64_t> watermark;  // per-segment payload high water
  uint64_t pos = kHeaderSize;
  while (pos + kRecordSize <= size) {
    const uint8_t* rec = manifest.data() + pos;
    const uint32_t marker = get_le32(rec);
    const uint32_t record_crc = get_le32(rec + 44);
    if (marker != kRecordMarker || crc32(rec, 44) != record_crc) break;
    const uint32_t type = get_le32(rec + 4);
    const BlockId block = static_cast<BlockId>(get_le64(rec + 8));
    Extent extent;
    extent.segment = get_le32(rec + 16);
    extent.offset = get_le64(rec + 24);
    extent.length = get_le64(rec + 32);
    extent.payload_crc = get_le32(rec + 40);
    if (type == kRecordPut) {
      const auto [it, inserted] = index_.insert_or_assign(block, extent);
      (void)it;
      (void)inserted;
      if (extent.length > 0) {
        if (watermark.size() <= extent.segment) {
          watermark.resize(extent.segment + 1, 0);
        }
        watermark[extent.segment] =
            std::max(watermark[extent.segment], extent.offset + extent.length);
      }
    } else if (type == kRecordErase) {
      index_.erase(block);
    } else {
      break;  // unknown type: treat as torn
    }
    ++open_report_.records_replayed;
    pos += kRecordSize;
  }
  if (pos != size) {
    if (::ftruncate(manifest_fd_, static_cast<off_t>(pos)) != 0) {
      throw_errno("truncate manifest tail");
    }
    sync_fd(manifest_fd_, "manifest");
    open_report_.torn_bytes_truncated += static_cast<int64_t>(size - pos);
  }
  manifest_size_ = static_cast<int64_t>(pos);

  // Open every segment file on disk (they are created in contiguous id
  // order); reconcile physical sizes with the replayed watermarks.
  uint32_t seg_count = static_cast<uint32_t>(watermark.size());
  while (std::filesystem::exists(segment_path(seg_count))) ++seg_count;
  segments_.resize(seg_count);
  for (uint32_t s = 0; s < seg_count; ++s) {
    if (!std::filesystem::exists(segment_path(s))) {
      // Referenced but missing (external tampering): extents on it are
      // dropped below by the bounds check.
      segments_[s].fd = open_segment_file(s, /*create=*/true);
      segments_[s].size = 0;
      continue;
    }
    segments_[s].fd = open_segment_file(s, /*create=*/false);
    const uint64_t physical = file_size(segments_[s].fd, "segment");
    const uint64_t committed = s < watermark.size() ? watermark[s] : 0;
    if (physical > committed) {
      // Payload appended but its manifest record never became durable.
      if (::ftruncate(segments_[s].fd, static_cast<off_t>(committed)) != 0) {
        throw_errno("truncate segment tail");
      }
      open_report_.segment_bytes_truncated +=
          static_cast<int64_t>(physical - committed);
    }
    segments_[s].size = committed;
  }

  // Validate surviving extents: bounds always, payload CRC when asked.
  // (The fsync ordering makes both vacuous after a clean crash; they guard
  // against media corruption and hand-edited stores.)
  for (auto it = index_.begin(); it != index_.end();) {
    const Extent& extent = it->second;
    bool ok = extent.length == 0 ||
              (extent.segment < segments_.size() &&
               extent.offset + extent.length <=
                   segments_[extent.segment].size);
    if (ok && options.verify_on_open && extent.length > 0) {
      const auto mapping = mapping_for(extent.segment,
                                       extent.offset + extent.length);
      ok = crc32(mapping->base + extent.offset, extent.length) ==
           extent.payload_crc;
    }
    if (!ok) {
      ++open_report_.corrupt_blocks_dropped;
      it = index_.erase(it);
    } else {
      live_bytes_ += static_cast<int64_t>(extent.length);
      ++it;
    }
  }
  open_report_.blocks_recovered = static_cast<int64_t>(index_.size());
}

std::shared_ptr<MmapBlockStore::Mapping> MmapBlockStore::mapping_for(
    uint32_t seg, uint64_t need) const {
  Segment& segment = segments_[seg];
  if (segment.mapping && segment.mapping->len >= need) {
    return segment.mapping;
  }
  // Map the full committed prefix so one remap serves all current blocks.
  const uint64_t len = std::max(need, segment.size);
  void* base =
      ::mmap(nullptr, len, PROT_READ, MAP_SHARED, segment.fd, 0);
  if (base == MAP_FAILED) throw_errno("mmap " + segment_path(seg));
  auto mapping = std::make_shared<Mapping>();
  mapping->base = static_cast<const uint8_t*>(base);
  mapping->len = len;
  // The previous (shorter) mapping is released when its last view drops.
  segment.mapping = mapping;
  return mapping;
}

void MmapBlockStore::append_record(uint8_t type, BlockId block,
                                   const Extent& extent) {
  uint8_t rec[kRecordSize];
  put_le32(rec, kRecordMarker);
  put_le32(rec + 4, type);
  put_le64(rec + 8, static_cast<uint64_t>(block));
  put_le32(rec + 16, extent.segment);
  put_le32(rec + 20, 0);  // reserved
  put_le64(rec + 24, extent.offset);
  put_le64(rec + 32, extent.length);
  put_le32(rec + 40, extent.payload_crc);
  put_le32(rec + 44, crc32(rec, 44));
  pwrite_all(manifest_fd_, rec, kRecordSize,
             static_cast<uint64_t>(manifest_size_), "manifest record");
  if (options_.sync == MmapStoreOptions::SyncPolicy::kEveryCommit) {
    sync_fd(manifest_fd_, "manifest");
  }
  manifest_size_ += static_cast<int64_t>(kRecordSize);
}

void MmapBlockStore::put(BlockId block, datapath::BlockBuffer bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  Extent extent;
  extent.length = bytes.size();
  extent.payload_crc = bytes.empty() ? 0 : crc32(bytes.data(), bytes.size());
  if (!bytes.empty()) {
    // Roll to a fresh segment when the current one is full (never split a
    // block across segments).
    if (segments_.empty() ||
        (segments_.back().size > 0 &&
         segments_.back().size + bytes.size() >
             static_cast<uint64_t>(options_.segment_bytes))) {
      Segment seg;
      seg.fd = open_segment_file(static_cast<uint32_t>(segments_.size()),
                                 /*create=*/true);
      seg.size = 0;
      segments_.push_back(std::move(seg));
      if (options_.sync == MmapStoreOptions::SyncPolicy::kEveryCommit) {
        sync_dir();  // the new file's directory entry must outlive a crash
      }
    }
    Segment& seg = segments_.back();
    extent.segment = static_cast<uint32_t>(segments_.size() - 1);
    extent.offset = seg.size;
    pwrite_all(seg.fd, bytes.data(), bytes.size(), seg.size, "segment");
    if (options_.sync == MmapStoreOptions::SyncPolicy::kEveryCommit) {
      // Payload durable before its record: a durable record never points
      // at undurable bytes (the commit protocol in the header comment).
      sync_fd(seg.fd, "segment");
    }
    seg.size += bytes.size();
  }
  append_record(kRecordPut, block, extent);
  const auto it = index_.find(block);
  if (it != index_.end()) {
    live_bytes_ -= static_cast<int64_t>(it->second.length);
  }
  live_bytes_ += static_cast<int64_t>(extent.length);
  index_[block] = extent;
}

std::optional<datapath::BlockBuffer> MmapBlockStore::get(
    BlockId block) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(block);
  if (it == index_.end()) return std::nullopt;
  const Extent& extent = it->second;
  if (extent.length == 0) return datapath::BlockBuffer();
  const auto mapping = mapping_for(extent.segment,
                                   extent.offset + extent.length);
  // Zero-copy view: the buffer shares the mapping's lifetime; no payload
  // bytes are resident beyond what the page cache chooses to keep.
  return datapath::BlockBuffer::view_of(mapping,
                                        mapping->base + extent.offset,
                                        extent.length);
}

bool MmapBlockStore::erase(BlockId block) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(block);
  if (it == index_.end()) return false;
  Extent extent;  // ERASE records carry no payload
  append_record(kRecordErase, block, extent);
  live_bytes_ -= static_cast<int64_t>(it->second.length);
  index_.erase(it);
  return true;
}

bool MmapBlockStore::contains(BlockId block) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.count(block) > 0;
}

size_t MmapBlockStore::block_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

int64_t MmapBlockStore::bytes_stored() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_bytes_;
}

std::vector<BlockId> MmapBlockStore::block_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<BlockId> ids;
  ids.reserve(index_.size());
  for (const auto& [id, extent] : index_) ids.push_back(id);
  return ids;  // map order: ascending
}

std::map<BlockId, datapath::BlockBuffer> MmapBlockStore::export_blocks()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<BlockId, datapath::BlockBuffer> out;
  for (const auto& [id, extent] : index_) {
    if (extent.length == 0) {
      out.emplace(id, datapath::BlockBuffer());
      continue;
    }
    const auto mapping = mapping_for(extent.segment,
                                     extent.offset + extent.length);
    out.emplace(id, datapath::BlockBuffer::view_of(
                        mapping, mapping->base + extent.offset,
                        extent.length));
  }
  return out;
}

void MmapBlockStore::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Segment& seg : segments_) sync_fd(seg.fd, "segment");
  sync_fd(manifest_fd_, "manifest");
  sync_dir();
}

int64_t MmapBlockStore::manifest_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return manifest_size_;
}

int MmapBlockStore::segment_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(segments_.size());
}

void MmapBlockStore::drop_page_cache() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Segment& seg : segments_) {
    ::posix_fadvise(seg.fd, 0, 0, POSIX_FADV_DONTNEED);
  }
  if (manifest_fd_ >= 0) {
    ::posix_fadvise(manifest_fd_, 0, 0, POSIX_FADV_DONTNEED);
  }
}

}  // namespace ear::store
