// ErasureCodec — the sub-packetized codec interface every byte-moving layer
// codes against (see DESIGN.md "Vector codecs").
//
// A scalar codec (RS/LRC/CRS) treats a block as one symbol: repairing one
// block fetches k full blocks.  Vector codes split every block into `alpha`
// equal sub-blocks and repair a single lost block from *sub-ranges* of the
// helpers — Clay/MSR coupled-layer codes fetch (n-1) * alpha/q sub-blocks
// (vs k * alpha for RS) and Hitchhiker piggyback codes roughly half a block
// from each helper.  ErasureCodec makes sub-packetization first-class:
//
//   * alpha()        — sub-blocks per block (1 for scalar codes);
//   * encode_chunk() — windowed encode, offsets sub-block-relative, so the
//     staged pipeline streams vector codes exactly like scalar ones;
//   * plan_repair()  — a RepairPlan naming, per helper block, the sub-block
//     indices to fetch plus a dense GF(2^8) coefficient schedule mapping
//     the fetched units to the lost block's alpha sub-blocks;
//   * reconstruct()  — whole-block fallback for patterns the cheap plan
//     cannot serve (multi-failures, insufficient helpers).
//
// Invariant: for the scalar adapters alpha() == 1 and every code path
// (encode, plan execution, reconstruct) is byte-identical to calling the
// wrapped RSCode/LRCCode/CRSCode directly — consumers switched from RSCode
// to ErasureCodec must not change a single output byte at alpha == 1.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "erasure/crs.h"
#include "erasure/lrc.h"
#include "erasure/matrix.h"
#include "erasure/rs.h"

namespace ear::erasure {

// Serialized in EARCKPT6 checkpoints and SimConfig — values are stable.
enum class CodecFamily : uint8_t {
  kRS = 0,
  kLRC = 1,
  kCRS = 2,
  kClay = 3,
  kHitchhiker = 4,
};

const char* family_name(CodecFamily family);

// A contiguous byte range inside one stored block.
struct SubRange {
  Bytes offset = 0;
  Bytes len = 0;
};

// One helper block of a RepairPlan: which sub-blocks to fetch from it.
struct RepairSource {
  int id = -1;                  // stripe position of the helper block
  std::vector<int> sub_blocks;  // ascending sub-block indices to fetch

  // The byte ranges to read from the stored block, adjacent sub-blocks
  // coalesced (a scalar source collapses to one [0, block_size) range).
  std::vector<SubRange> ranges(Bytes block_size, int alpha) const;
  Bytes bytes(Bytes block_size, int alpha) const {
    return static_cast<Bytes>(sub_blocks.size()) *
           (block_size / static_cast<Bytes>(alpha));
  }
};

// Recipe for rebuilding one lost block: fetch the named sub-blocks of each
// source, then out_sub[r] = sum_u coeffs(r, u) * unit[u], where the units
// are the fetched sub-blocks in source order (sources[0].sub_blocks first).
struct RepairPlan {
  int lost_id = -1;
  int alpha = 1;
  std::vector<RepairSource> sources;
  Matrix coeffs;  // alpha rows x total_units() cols

  int total_units() const;
  Bytes bytes_read(Bytes block_size) const;  // network bytes the plan moves
};

class ErasureCodec {
 public:
  virtual ~ErasureCodec() = default;

  virtual CodecFamily family() const = 0;
  const char* name() const { return family_name(family()); }
  virtual int n() const = 0;
  virtual int k() const = 0;
  int m() const { return n() - k(); }
  // Sub-blocks per block; block sizes handed to this codec must be
  // divisible by alpha().
  virtual int alpha() const { return 1; }
  Bytes sub_block_size(Bytes block_size) const {
    return block_size / static_cast<Bytes>(alpha());
  }

  // Computes parity bytes [offset, offset + len) *of every sub-block* from
  // the matching windows of the data blocks (offset/len are sub-block
  // relative; at alpha == 1 this is the classic whole-block window).  Every
  // codec here is bytewise within a sub-block position, so chunked encoding
  // is byte-identical to one full-window call.
  virtual void encode_chunk(const std::vector<BlockView>& data,
                            const std::vector<MutBlockView>& parity,
                            size_t offset, size_t len) const = 0;
  void encode(const std::vector<BlockView>& data,
              const std::vector<MutBlockView>& parity) const;

  // The (m * alpha) x (k * alpha) generator over sub-block units: parity
  // unit (j, z) = row j * alpha + z over data units i * alpha + y.  Feeds
  // the ecdag builder per-sub-block coefficient rows.  Returns false for
  // families that cannot express one (CRS bit-matrix packets).
  virtual bool encode_schedule(Matrix* /*out*/) const { return false; }

  // Cheapest single-block repair given the live block ids.  Returns false
  // when the family has no schedule-driven plan for this pattern (callers
  // fall back to reconstruct() over k full blocks).
  virtual bool plan_repair(int lost_id, const std::vector<int>& available_ids,
                           RepairPlan* plan) const = 0;

  // Whole-block reconstruction of `wanted_ids` from the available blocks.
  // Returns false when the pattern is unrecoverable; `why` (when non-null)
  // then names the available ids.
  virtual bool reconstruct(const std::vector<int>& available_ids,
                           const std::vector<BlockView>& available,
                           const std::vector<int>& wanted_ids,
                           const std::vector<MutBlockView>& out,
                           std::string* why = nullptr) const = 0;

  // Applies one window of a RepairPlan: units[u] is the u-th fetched
  // sub-block (full sub-block view, plan order); rebuilds bytes
  // [offset, offset + len) of every sub-block of the lost block into
  // `out_block` (a full block view).  Zero coefficients are skipped.
  static void apply_plan_chunk(const RepairPlan& plan,
                               const std::vector<BlockView>& units,
                               MutBlockView out_block, size_t offset,
                               size_t len);
  static void apply_plan(const RepairPlan& plan,
                         const std::vector<BlockView>& units,
                         MutBlockView out_block);
};

// ---------------------------------------------------------------- scalar
// Adapters making the seed codecs the alpha == 1 special case.

class RsCodec final : public ErasureCodec {
 public:
  RsCodec(int n, int k, Construction construction = Construction::kCauchy)
      : code_(n, k, construction) {}

  CodecFamily family() const override { return CodecFamily::kRS; }
  int n() const override { return code_.n(); }
  int k() const override { return code_.k(); }
  const RSCode& rs() const { return code_; }

  void encode_chunk(const std::vector<BlockView>& data,
                    const std::vector<MutBlockView>& parity, size_t offset,
                    size_t len) const override {
    code_.encode_chunk(data, parity, offset, len);
  }
  bool encode_schedule(Matrix* out) const override;
  bool plan_repair(int lost_id, const std::vector<int>& available_ids,
                   RepairPlan* plan) const override;
  bool reconstruct(const std::vector<int>& available_ids,
                   const std::vector<BlockView>& available,
                   const std::vector<int>& wanted_ids,
                   const std::vector<MutBlockView>& out,
                   std::string* why = nullptr) const override {
    return code_.reconstruct(available_ids, available, wanted_ids, out, why);
  }

 private:
  RSCode code_;
};

class LrcCodec final : public ErasureCodec {
 public:
  // LRC(k, l, g) with n = k + l + g; ids 0..k-1 data, then local, then
  // global parities — MiniCfs treats all n - k trailing ids as parity.
  LrcCodec(int k, int local_groups, int global_parities)
      : code_(k, local_groups, global_parities) {}

  CodecFamily family() const override { return CodecFamily::kLRC; }
  int n() const override { return code_.n(); }
  int k() const override { return code_.k(); }
  const LRCCode& lrc() const { return code_; }

  void encode_chunk(const std::vector<BlockView>& data,
                    const std::vector<MutBlockView>& parity, size_t offset,
                    size_t len) const override;
  bool encode_schedule(Matrix* out) const override;
  bool plan_repair(int lost_id, const std::vector<int>& available_ids,
                   RepairPlan* plan) const override;
  bool reconstruct(const std::vector<int>& available_ids,
                   const std::vector<BlockView>& available,
                   const std::vector<int>& wanted_ids,
                   const std::vector<MutBlockView>& out,
                   std::string* why = nullptr) const override;

 private:
  LRCCode code_;
};

class CrsCodec final : public ErasureCodec {
 public:
  CrsCodec(int n, int k) : code_(n, k) {}

  CodecFamily family() const override { return CodecFamily::kCRS; }
  int n() const override { return code_.n(); }
  int k() const override { return code_.k(); }
  const CRSCode& crs() const { return code_; }

  // CRS packets span the whole block, so only the full window is
  // encodable; the bit-matrix schedule is not expressible as byte-wise
  // GF(2^8) rows, hence no encode_schedule / plan_repair.
  void encode_chunk(const std::vector<BlockView>& data,
                    const std::vector<MutBlockView>& parity, size_t offset,
                    size_t len) const override;
  bool plan_repair(int lost_id, const std::vector<int>& available_ids,
                   RepairPlan* plan) const override;
  bool reconstruct(const std::vector<int>& available_ids,
                   const std::vector<BlockView>& available,
                   const std::vector<int>& wanted_ids,
                   const std::vector<MutBlockView>& out,
                   std::string* why = nullptr) const override;

 private:
  CRSCode code_;
};

// Builds a codec from the (n, k) the cluster configs carry.  kLRC splits
// the m parities as l = 2 local groups + g = m - 2 globals (requires
// k % 2 == 0 and m >= 3); kCRS is not constructible here (packet codes
// never ran under MiniCfs).  Throws std::invalid_argument on parameters
// the family cannot satisfy.
std::unique_ptr<ErasureCodec> make_codec(
    CodecFamily family, int n, int k,
    Construction construction = Construction::kCauchy);

}  // namespace ear::erasure
