#include "erasure/rs.h"

#include <algorithm>
#include <cassert>

#include "gf256/gf256.h"

namespace ear::erasure {

namespace {

Matrix make_generator(int n, int k, Construction construction) {
  if (construction == Construction::kCauchy) {
    Matrix g(n, k);
    for (int r = 0; r < k; ++r) g.at(r, r) = 1;
    const Matrix c = Matrix::cauchy(n - k, k);
    for (int r = 0; r < n - k; ++r) {
      for (int col = 0; col < k; ++col) {
        g.at(k + r, col) = c.at(r, col);
      }
    }
    return g;
  }

  // Vandermonde: systematize V by post-multiplying with inv(top k x k).
  const Matrix v = Matrix::vandermonde(n, k);
  std::vector<int> top(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) top[static_cast<size_t>(i)] = i;
  const Matrix head_inv = v.select_rows(top).inverted();
  assert(head_inv.rows() == k && "top Vandermonde square must be invertible");
  return v.multiply(head_inv);
}

// dst[j] = sum_i coeff[row][i] * src[i], applied blockwise: each output row
// is one multi-source kernel sweep, so the destination stays register/cache
// resident while every source streams through once.
void apply_rows(const Matrix& coeffs, const std::vector<BlockView>& src,
                const std::vector<MutBlockView>& dst) {
  assert(static_cast<size_t>(coeffs.rows()) == dst.size());
  assert(static_cast<size_t>(coeffs.cols()) == src.size());
  std::vector<const uint8_t*> srcs(src.size());
  std::vector<uint8_t> row(src.size());
  for (size_t c = 0; c < src.size(); ++c) srcs[c] = src[c].data();
  for (int r = 0; r < coeffs.rows(); ++r) {
    MutBlockView out = dst[static_cast<size_t>(r)];
    for (int c = 0; c < coeffs.cols(); ++c) {
      assert(src[static_cast<size_t>(c)].size() == out.size());
      row[static_cast<size_t>(c)] = coeffs.at(r, c);
    }
    gf::mul_add_multi(srcs, row, out, /*accumulate=*/false);
  }
}

// Windowed views of each block: bytes [offset, offset + len).
std::vector<BlockView> sub_views(const std::vector<BlockView>& views,
                                 size_t offset, size_t len) {
  std::vector<BlockView> out;
  out.reserve(views.size());
  for (const BlockView v : views) out.push_back(v.subspan(offset, len));
  return out;
}

std::vector<MutBlockView> sub_views(const std::vector<MutBlockView>& views,
                                    size_t offset, size_t len) {
  std::vector<MutBlockView> out;
  out.reserve(views.size());
  for (const MutBlockView v : views) out.push_back(v.subspan(offset, len));
  return out;
}

}  // namespace

RSCode::RSCode(int n, int k, Construction construction)
    : n_(n), k_(k), construction_(construction),
      generator_(make_generator(n, k, construction)) {
  assert(k >= 1 && k < n && n <= 255);
  std::vector<int> parity_rows;
  parity_rows.reserve(static_cast<size_t>(m()));
  for (int r = k_; r < n_; ++r) parity_rows.push_back(r);
  parity_coeffs_ = generator_.select_rows(parity_rows);
}

void RSCode::encode(const std::vector<BlockView>& data,
                    const std::vector<MutBlockView>& parity) const {
  assert(static_cast<int>(data.size()) == k_);
  const size_t size = data.empty() ? 0 : data.front().size();
  encode_chunk(data, parity, 0, size);
}

void RSCode::encode_chunk(const std::vector<BlockView>& data,
                          const std::vector<MutBlockView>& parity,
                          size_t offset, size_t len) const {
  assert(static_cast<int>(data.size()) == k_);
  assert(static_cast<int>(parity.size()) == m());
  apply_rows(parity_coeffs_, sub_views(data, offset, len),
             sub_views(parity, offset, len));
}

bool RSCode::plan_reconstruct(const std::vector<int>& available_ids,
                              const std::vector<int>& wanted_ids,
                              Matrix* coeffs, std::string* why) const {
  assert(static_cast<int>(available_ids.size()) == k_);

  // Rows of the generator for the available blocks map the original data to
  // the available blocks; inverting recovers data coefficients.
  const Matrix decode = generator_.select_rows(available_ids).inverted();
  if (decode.rows() == 0) {
    if (why != nullptr) {
      std::string ids;
      for (const int id : available_ids) {
        if (!ids.empty()) ids += ",";
        ids += std::to_string(id);
      }
      *why = "singular RS(" + std::to_string(n_) + "," + std::to_string(k_) +
             (construction_ == Construction::kCauchy ? ",cauchy" : ",vandermonde") +
             ") decode matrix for available_ids=[" + ids + "]";
    }
    return false;
  }

  // wanted = G[wanted_rows] * decode * available.
  *coeffs = generator_.select_rows(wanted_ids).multiply(decode);
  return true;
}

void RSCode::decode_chunk(const Matrix& coeffs,
                          const std::vector<BlockView>& available,
                          const std::vector<MutBlockView>& out,
                          size_t offset, size_t len) {
  apply_rows(coeffs, sub_views(available, offset, len),
             sub_views(out, offset, len));
}

bool RSCode::reconstruct(const std::vector<int>& available_ids,
                         const std::vector<BlockView>& available,
                         const std::vector<int>& wanted_ids,
                         const std::vector<MutBlockView>& out,
                         std::string* why) const {
  assert(available.size() == available_ids.size());
  assert(wanted_ids.size() == out.size());
  Matrix coeffs;
  if (!plan_reconstruct(available_ids, wanted_ids, &coeffs, why)) return false;
  const size_t size = available.empty() ? 0 : available.front().size();
  decode_chunk(coeffs, available, out, 0, size);
  return true;
}

bool RSCode::decode_data(const std::vector<int>& available_ids,
                         const std::vector<BlockView>& available,
                         const std::vector<MutBlockView>& data_out) const {
  assert(static_cast<int>(data_out.size()) == k_);
  std::vector<int> wanted(static_cast<size_t>(k_));
  for (int i = 0; i < k_; ++i) wanted[static_cast<size_t>(i)] = i;
  return reconstruct(available_ids, available, wanted, data_out);
}

}  // namespace ear::erasure
