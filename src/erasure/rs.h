// Systematic (n, k) Reed-Solomon codec over GF(2^8).
//
// A stripe holds n = k + m blocks: k original data blocks plus m parity
// blocks.  Any k of the n blocks suffice to reconstruct all k data blocks
// (the MDS property).  Two generator constructions are provided:
//
//  * kVandermonde — the construction used by HDFS-RAID / Jerasure: an n x k
//    Vandermonde matrix post-multiplied by the inverse of its top k x k
//    square, yielding a systematic generator whose every k-row subset is
//    nonsingular.
//  * kCauchy — generator [I ; C] with C a Cauchy matrix; every square
//    submatrix of a Cauchy matrix is nonsingular, which gives the MDS
//    property directly.
//
// Block indices: 0..k-1 are data blocks, k..n-1 are parity blocks.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "erasure/matrix.h"

namespace ear::erasure {

using BlockView = std::span<const uint8_t>;
using MutBlockView = std::span<uint8_t>;

enum class Construction { kVandermonde, kCauchy };

class RSCode {
 public:
  // Requires 1 <= k < n <= 255 (n - k <= 128 for Cauchy index disjointness).
  RSCode(int n, int k, Construction construction = Construction::kCauchy);

  int n() const { return n_; }
  int k() const { return k_; }
  int m() const { return n_ - k_; }
  Construction construction() const { return construction_; }

  // Full n x k systematic generator (top k rows are the identity).
  const Matrix& generator() const { return generator_; }

  // Computes the m parity blocks from the k data blocks.  All blocks must
  // have equal size; parity blocks are overwritten.
  void encode(const std::vector<BlockView>& data,
              const std::vector<MutBlockView>& parity) const;

  // Incremental window API for the staged data-path pipeline: computes
  // parity bytes [offset, offset + len) from the same window of every data
  // block.  GF(2^8) row operations are bytewise, so encoding a block
  // window-by-window is byte-identical to one encode() over the whole
  // block.  encode() itself is one full-size window.
  void encode_chunk(const std::vector<BlockView>& data,
                    const std::vector<MutBlockView>& parity, size_t offset,
                    size_t len) const;

  // Precomputes the decode coefficient matrix mapping the k available
  // blocks to `wanted_ids`, so a chunked reconstruction inverts the
  // generator once, not once per window.  Returns false iff the decode
  // matrix is singular (a defect for a correct MDS construction); when
  // `why` is non-null it then receives a diagnostic naming the exact
  // `available_ids` the caller passed, so the failure is actionable
  // instead of a bare boolean.
  bool plan_reconstruct(const std::vector<int>& available_ids,
                        const std::vector<int>& wanted_ids, Matrix* coeffs,
                        std::string* why = nullptr) const;

  // Applies a plan_reconstruct() plan to one window of the available
  // blocks; chunked decode is byte-identical to a one-shot reconstruct().
  static void decode_chunk(const Matrix& coeffs,
                           const std::vector<BlockView>& available,
                           const std::vector<MutBlockView>& out,
                           size_t offset, size_t len);

  // Reconstructs the blocks listed in `wanted_ids` (any mix of data and
  // parity indices) from any k available blocks.  `available_ids` must list
  // k distinct block indices in [0, n); `available[i]` is the content of
  // block `available_ids[i]`.  Returns false iff the decode matrix is
  // singular, which cannot happen for a correct MDS construction and is
  // treated as a defect, not an expected error.  On failure `why` (when
  // non-null) carries the offending `available_ids`.
  bool reconstruct(const std::vector<int>& available_ids,
                   const std::vector<BlockView>& available,
                   const std::vector<int>& wanted_ids,
                   const std::vector<MutBlockView>& out,
                   std::string* why = nullptr) const;

  // Convenience wrapper: recover all k data blocks from any k available
  // blocks.
  bool decode_data(const std::vector<int>& available_ids,
                   const std::vector<BlockView>& available,
                   const std::vector<MutBlockView>& data_out) const;

 private:
  int n_;
  int k_;
  Construction construction_;
  Matrix generator_;      // n x k, rows 0..k-1 form the identity
  Matrix parity_coeffs_;  // bottom m rows of the generator (cached)
};

}  // namespace ear::erasure
