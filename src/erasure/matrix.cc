#include "erasure/matrix.h"

#include <cstdio>

#include "gf256/gf256.h"

namespace ear::erasure {

Matrix Matrix::identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

Matrix Matrix::vandermonde(int rows, int cols) {
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      m.at(r, c) = gf::pow(gf::exp_alpha(static_cast<unsigned>(r)),
                           static_cast<unsigned>(c));
    }
  }
  return m;
}

Matrix Matrix::cauchy(int rows, int cols) {
  assert(rows + cols <= gf::kFieldSize);
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const auto x = static_cast<uint8_t>(r);
      const auto y = static_cast<uint8_t>(rows + c);
      m.at(r, c) = gf::inv(gf::add(x, y));
    }
  }
  return m;
}

Matrix Matrix::multiply(const Matrix& rhs) const {
  assert(cols_ == rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  for (int i = 0; i < rows_; ++i) {
    for (int j = 0; j < rhs.cols_; ++j) {
      uint8_t acc = 0;
      for (int t = 0; t < cols_; ++t) {
        acc = gf::add(acc, gf::mul(at(i, t), rhs.at(t, j)));
      }
      out.at(i, j) = acc;
    }
  }
  return out;
}

Matrix Matrix::inverted() const {
  assert(rows_ == cols_);
  const int n = rows_;
  Matrix aug = *this;
  Matrix inv = identity(n);

  for (int col = 0; col < n; ++col) {
    // Find a pivot row.
    int pivot = -1;
    for (int r = col; r < n; ++r) {
      if (aug.at(r, col) != 0) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) return Matrix();  // singular

    if (pivot != col) {
      for (int c = 0; c < n; ++c) {
        std::swap(aug.at(pivot, c), aug.at(col, c));
        std::swap(inv.at(pivot, c), inv.at(col, c));
      }
    }

    // Scale the pivot row so the pivot element becomes 1.
    const uint8_t scale = gf::inv(aug.at(col, col));
    if (scale != 1) {
      for (int c = 0; c < n; ++c) {
        aug.at(col, c) = gf::mul(aug.at(col, c), scale);
        inv.at(col, c) = gf::mul(inv.at(col, c), scale);
      }
    }

    // Eliminate the column from every other row.
    for (int r = 0; r < n; ++r) {
      if (r == col) continue;
      const uint8_t factor = aug.at(r, col);
      if (factor == 0) continue;
      for (int c = 0; c < n; ++c) {
        aug.at(r, c) = gf::add(aug.at(r, c), gf::mul(factor, aug.at(col, c)));
        inv.at(r, c) = gf::add(inv.at(r, c), gf::mul(factor, inv.at(col, c)));
      }
    }
  }
  return inv;
}

bool Matrix::is_identity() const {
  if (rows_ != cols_) return false;
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      if (at(r, c) != (r == c ? 1 : 0)) return false;
    }
  }
  return true;
}

Matrix Matrix::select_rows(const std::vector<int>& row_ids) const {
  Matrix out(static_cast<int>(row_ids.size()), cols_);
  for (size_t i = 0; i < row_ids.size(); ++i) {
    const int r = row_ids[i];
    assert(r >= 0 && r < rows_);
    for (int c = 0; c < cols_; ++c) {
      out.at(static_cast<int>(i), c) = at(r, c);
    }
  }
  return out;
}

std::string Matrix::to_string() const {
  std::string out;
  char buf[8];
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      std::snprintf(buf, sizeof(buf), "%3d ", at(r, c));
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace ear::erasure
