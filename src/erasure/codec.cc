#include "erasure/codec.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "erasure/clay.h"
#include "erasure/hitchhiker.h"
#include "gf256/gf256.h"

namespace ear::erasure {

const char* family_name(CodecFamily family) {
  switch (family) {
    case CodecFamily::kRS:
      return "rs";
    case CodecFamily::kLRC:
      return "lrc";
    case CodecFamily::kCRS:
      return "crs";
    case CodecFamily::kClay:
      return "clay";
    case CodecFamily::kHitchhiker:
      return "hitchhiker";
  }
  return "unknown";
}

std::vector<SubRange> RepairSource::ranges(Bytes block_size, int alpha) const {
  const Bytes sub = block_size / static_cast<Bytes>(alpha);
  std::vector<SubRange> out;
  for (const int z : sub_blocks) {
    const Bytes offset = static_cast<Bytes>(z) * sub;
    if (!out.empty() && out.back().offset + out.back().len == offset) {
      out.back().len += sub;  // coalesce adjacent sub-blocks into one read
    } else {
      out.push_back({offset, sub});
    }
  }
  return out;
}

int RepairPlan::total_units() const {
  int units = 0;
  for (const RepairSource& s : sources) {
    units += static_cast<int>(s.sub_blocks.size());
  }
  return units;
}

Bytes RepairPlan::bytes_read(Bytes block_size) const {
  Bytes total = 0;
  for (const RepairSource& s : sources) total += s.bytes(block_size, alpha);
  return total;
}

void ErasureCodec::encode(const std::vector<BlockView>& data,
                          const std::vector<MutBlockView>& parity) const {
  const size_t size = data.empty() ? 0 : data.front().size();
  encode_chunk(data, parity, 0, size / static_cast<size_t>(alpha()));
}

void ErasureCodec::apply_plan_chunk(const RepairPlan& plan,
                                    const std::vector<BlockView>& units,
                                    MutBlockView out_block, size_t offset,
                                    size_t len) {
  assert(static_cast<int>(units.size()) == plan.total_units());
  assert(plan.coeffs.rows() == plan.alpha);
  assert(plan.coeffs.cols() == plan.total_units());
  const size_t sub = out_block.size() / static_cast<size_t>(plan.alpha);
  // One multi-source sweep per output row; live (non-zero) terms are
  // compacted first so the kernel only ever touches units the row reads.
  std::vector<const uint8_t*> srcs;
  std::vector<uint8_t> row;
  srcs.reserve(units.size());
  row.reserve(units.size());
  for (int r = 0; r < plan.alpha; ++r) {
    MutBlockView out =
        out_block.subspan(static_cast<size_t>(r) * sub + offset, len);
    srcs.clear();
    row.clear();
    for (int u = 0; u < plan.coeffs.cols(); ++u) {
      const uint8_t coeff = plan.coeffs.at(r, u);
      if (coeff == 0) continue;  // vector schedules are sparse; skip
      srcs.push_back(units[static_cast<size_t>(u)].subspan(offset, len).data());
      row.push_back(coeff);
    }
    gf::mul_add_multi(srcs, row, out, /*accumulate=*/false);
  }
}

void ErasureCodec::apply_plan(const RepairPlan& plan,
                              const std::vector<BlockView>& units,
                              MutBlockView out_block) {
  apply_plan_chunk(plan, units, out_block,
                   0, units.empty() ? 0 : units.front().size());
}

// -------------------------------------------------------------------- RS

bool RsCodec::encode_schedule(Matrix* out) const {
  Matrix rows(m(), k());
  for (int j = 0; j < m(); ++j) {
    for (int i = 0; i < k(); ++i) {
      rows.at(j, i) = code_.generator().at(k() + j, i);
    }
  }
  *out = rows;
  return true;
}

bool RsCodec::plan_repair(int lost_id, const std::vector<int>& available_ids,
                          RepairPlan* plan) const {
  if (static_cast<int>(available_ids.size()) < k()) return false;
  std::vector<int> chosen(available_ids.begin(),
                          available_ids.begin() + k());
  Matrix coeffs;
  if (!code_.plan_reconstruct(chosen, {lost_id}, &coeffs)) return false;
  plan->lost_id = lost_id;
  plan->alpha = 1;
  plan->sources.clear();
  for (const int id : chosen) plan->sources.push_back({id, {0}});
  plan->coeffs = coeffs;
  return true;
}

// ------------------------------------------------------------------- LRC

void LrcCodec::encode_chunk(const std::vector<BlockView>& data,
                            const std::vector<MutBlockView>& parity,
                            size_t offset, size_t len) const {
  // All LRC parity rows are bytewise GF(2^8) combinations, so the windowed
  // encode applies the generator's parity rows to the window directly.
  assert(static_cast<int>(data.size()) == k());
  assert(static_cast<int>(parity.size()) == m());
  std::vector<const uint8_t*> srcs;
  std::vector<uint8_t> row;
  srcs.reserve(data.size());
  row.reserve(data.size());
  for (int j = 0; j < m(); ++j) {
    MutBlockView out = parity[static_cast<size_t>(j)].subspan(offset, len);
    srcs.clear();
    row.clear();
    for (int i = 0; i < k(); ++i) {
      const uint8_t coeff = code_.generator().at(k() + j, i);
      if (coeff == 0) continue;  // local parities touch one group only
      srcs.push_back(data[static_cast<size_t>(i)].subspan(offset, len).data());
      row.push_back(coeff);
    }
    gf::mul_add_multi(srcs, row, out, /*accumulate=*/false);
  }
}

bool LrcCodec::encode_schedule(Matrix* out) const {
  Matrix rows(m(), k());
  for (int j = 0; j < m(); ++j) {
    for (int i = 0; i < k(); ++i) {
      rows.at(j, i) = code_.generator().at(k() + j, i);
    }
  }
  *out = rows;
  return true;
}

bool LrcCodec::plan_repair(int lost_id, const std::vector<int>& available_ids,
                           RepairPlan* plan) const {
  const std::vector<int> needed = code_.repair_plan(lost_id);
  for (const int id : needed) {
    if (std::find(available_ids.begin(), available_ids.end(), id) ==
        available_ids.end()) {
      return false;  // the cheap plan needs every named source live
    }
  }
  // Local repair (data or local parity): XOR of the group; global parity:
  // its generator row over the k data blocks.
  Matrix coeffs(1, static_cast<int>(needed.size()));
  const bool global = lost_id >= code_.k() + code_.l();
  for (size_t s = 0; s < needed.size(); ++s) {
    coeffs.at(0, static_cast<int>(s)) =
        global ? code_.generator().at(lost_id, needed[s]) : uint8_t{1};
  }
  plan->lost_id = lost_id;
  plan->alpha = 1;
  plan->sources.clear();
  for (const int id : needed) plan->sources.push_back({id, {0}});
  plan->coeffs = coeffs;
  return true;
}

bool LrcCodec::reconstruct(const std::vector<int>& available_ids,
                           const std::vector<BlockView>& available,
                           const std::vector<int>& wanted_ids,
                           const std::vector<MutBlockView>& out,
                           std::string* why) const {
  if (code_.reconstruct(available_ids, available, wanted_ids, out)) {
    return true;
  }
  if (why != nullptr) {
    std::string ids;
    for (const int id : available_ids) {
      if (!ids.empty()) ids += ",";
      ids += std::to_string(id);
    }
    *why = "unrecoverable LRC(" + std::to_string(code_.k()) + "," +
           std::to_string(code_.l()) + "," + std::to_string(code_.g()) +
           ") pattern for available_ids=[" + ids + "]";
  }
  return false;
}

// ------------------------------------------------------------------- CRS

void CrsCodec::encode_chunk(const std::vector<BlockView>& data,
                            const std::vector<MutBlockView>& parity,
                            size_t offset, size_t len) const {
  assert(offset == 0 && (data.empty() || len == data.front().size()) &&
         "CRS packets span the whole block; only full-window encode");
  (void)offset;
  (void)len;
  code_.encode(data, parity);
}

bool CrsCodec::plan_repair(int, const std::vector<int>&, RepairPlan*) const {
  return false;  // packet schedule is bit-matrix XOR; no byte-wise rows
}

bool CrsCodec::reconstruct(const std::vector<int>& available_ids,
                           const std::vector<BlockView>& available,
                           const std::vector<int>& wanted_ids,
                           const std::vector<MutBlockView>& out,
                           std::string* why) const {
  if (code_.reconstruct(available_ids, available, wanted_ids, out)) {
    return true;
  }
  if (why != nullptr) {
    std::string ids;
    for (const int id : available_ids) {
      if (!ids.empty()) ids += ",";
      ids += std::to_string(id);
    }
    *why = "CRS(" + std::to_string(code_.n()) + "," +
           std::to_string(code_.k()) +
           ") reconstruction failed for available_ids=[" + ids + "]";
  }
  return false;
}

// --------------------------------------------------------------- factory

std::unique_ptr<ErasureCodec> make_codec(CodecFamily family, int n, int k,
                                         Construction construction) {
  switch (family) {
    case CodecFamily::kRS:
      return std::make_unique<RsCodec>(n, k, construction);
    case CodecFamily::kLRC: {
      const int m = n - k;
      if (m < 3 || k % 2 != 0) {
        throw std::invalid_argument(
            "LRC needs n - k >= 3 and even k for the (l=2, g=m-2) split");
      }
      return std::make_unique<LrcCodec>(k, 2, m - 2);
    }
    case CodecFamily::kCRS:
      throw std::invalid_argument(
          "CRS is a packet code; not constructible as a cluster codec");
    case CodecFamily::kClay:
      return std::make_unique<ClayCode>(n, k, construction);
    case CodecFamily::kHitchhiker:
      return std::make_unique<HitchhikerCode>(n, k, construction);
  }
  throw std::invalid_argument("unknown codec family");
}

}  // namespace ear::erasure
