// Cauchy Reed-Solomon with bit-matrix (XOR-only) encoding — the technique
// of Blaum et al. / Plank's Jerasure that HDFS-RAID's CRS codec uses
// (paper §II-A cites Cauchy Reed-Solomon codes [3]).
//
// Each GF(2^8) coefficient a of the Cauchy generator expands into an 8x8
// binary matrix whose column j holds the bits of a * x^j; a block is split
// into w = 8 equal packets and every parity packet becomes a pure XOR of
// selected data packets.  Field symbols are bit-sliced across the packets
// (bit b of byte t of packets 0..7 forms one GF(2^8) element), so the
// parity *bytes* differ from the byte-wise RSCode even though the code is
// the same Cauchy MDS code; decoding therefore also runs through bit
// matrices.  The map a -> M_a is a ring isomorphism, so the decode
// coefficients computed in GF(2^8) expand to correct XOR schedules.
#pragma once

#include <cstdint>
#include <vector>

#include "erasure/rs.h"

namespace ear::erasure {

class CRSCode {
 public:
  static constexpr int kW = 8;  // bits per field element / packets per block

  CRSCode(int n, int k);

  int n() const { return byte_code_.n(); }
  int k() const { return byte_code_.k(); }
  int m() const { return byte_code_.m(); }

  // XOR-only encode.  Block sizes must be equal and divisible by 8.
  void encode(const std::vector<BlockView>& data,
              const std::vector<MutBlockView>& parity) const;

  // XOR-only reconstruction of `wanted_ids` from any k available blocks.
  bool reconstruct(const std::vector<int>& available_ids,
                   const std::vector<BlockView>& available,
                   const std::vector<int>& wanted_ids,
                   const std::vector<MutBlockView>& out) const;

  // Total XORed source packets across the schedule — the density metric
  // Jerasure optimizes; useful for comparing constructions.
  int64_t schedule_xor_count() const { return xor_count_; }

  // The XOR schedule itself: entry r lists the data packet indices (in
  // [0, k*8)) XORed into parity packet r.  This is the packet-granularity
  // {0,1} coefficient structure the distributed-encode DAG lowers from.
  const std::vector<std::vector<int>>& schedule() const { return schedule_; }

  const RSCode& byte_code() const { return byte_code_; }

 private:
  RSCode byte_code_;
  // For parity packet r (r in [0, m*8)): list of data packet indices
  // (in [0, k*8)) to XOR together.
  std::vector<std::vector<int>> schedule_;
  int64_t xor_count_ = 0;
};

}  // namespace ear::erasure
