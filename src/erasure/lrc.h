// Local Repairable Codes (LRC) — the Azure-style code family the paper's
// related-work section discusses as the main alternative direction for
// cutting recovery traffic (Huang et al., "Erasure Coding in Windows Azure
// Storage").
//
// An LRC(k, l, g) stripe has n = k + l + g blocks:
//   * k data blocks, split into l equal local groups,
//   * l local parities, one per group (XOR of the group's data blocks),
//   * g global parities (Cauchy combinations of all k data blocks).
//
// The draw: a single lost block is repaired from its local group —
// k/l blocks read instead of k — while bursts of up to g+1 failures remain
// decodable in most patterns (LRC is not MDS; decode reports failure when a
// pattern is information-theoretically unrecoverable for this construction).
//
// Block indexing: 0..k-1 data, k..k+l-1 local parities, k+l..n-1 global
// parities.
#pragma once

#include <vector>

#include "erasure/matrix.h"
#include "erasure/rs.h"

namespace ear::erasure {

class LRCCode {
 public:
  // Requires l >= 1, k % l == 0, g >= 0, and n <= 255.
  LRCCode(int k, int local_groups, int global_parities);

  int k() const { return k_; }
  int l() const { return l_; }
  int g() const { return g_; }
  int n() const { return k_ + l_ + g_; }
  int group_size() const { return k_ / l_; }

  // Local group of a block (data or local parity); -1 for global parities.
  int group_of(int block_id) const;

  // Full (n x k) generator: rows 0..k-1 identity, then local, then global.
  const Matrix& generator() const { return generator_; }

  // Computes the l + g parity blocks from the k data blocks.
  void encode(const std::vector<BlockView>& data,
              const std::vector<MutBlockView>& parity) const;

  // Blocks to read for the cheapest repair of a single lost block:
  // the lost block's local group (group_size blocks) for data and local
  // parities, k data blocks for a global parity.
  std::vector<int> repair_plan(int lost_id) const;

  // Repairs one lost block from exactly the blocks of repair_plan().
  // `sources[i]` is the content of block repair_plan()[i].
  void repair(int lost_id, const std::vector<BlockView>& sources,
              MutBlockView out) const;

  // General reconstruction: recovers `wanted_ids` from any available subset
  // whose generator rows span the data space.  Returns false when the
  // erasure pattern is unrecoverable for this construction.
  bool reconstruct(const std::vector<int>& available_ids,
                   const std::vector<BlockView>& available,
                   const std::vector<int>& wanted_ids,
                   const std::vector<MutBlockView>& out) const;

 private:
  int k_;
  int l_;
  int g_;
  Matrix generator_;
};

}  // namespace ear::erasure
