// Clay (coupled-layer) MSR codes — repair-bandwidth-optimal vector codes
// built by pairwise-coupling alpha = q^t stacked layers of the existing
// scalar RS code (Vajha et al., FAST '18; SNIPPETS.md snippet 1).
//
// Construction.  Let q = n - k and t = ceil(n / q); when q does not divide
// n the code is shortened from (n' = q*t, k' = k + n' - n) with always-zero
// virtual data blocks.  The n' nodes sit on a q x t grid (node v at
// x = v % q, y = v / q); every block splits into alpha = q^t sub-blocks,
// one per plane z in [0, q)^t (z's y-th base-q digit selects a column
// coordinate).  The stored ("coupled") symbol C(v; z) relates to an
// uncoupled symbol U(v; z) by a symmetric pairwise transform within a
// column:
//
//     partner of (x, y; z): node (z_y, y), plane z with digit y set to x
//     C = U + gamma * U_partner     (unpaired when z_y == x: C = U)
//
// with gamma^2 != 1.  For every plane z the vector (U(0; z) ... U(n'-1; z))
// is a codeword of the base [n', k'] RS code; encode/decode walk the planes
// in order of "intersection score" (number of erased unpaired symbols),
// uncoupling pairs and MDS-decoding each plane.
//
// The draw: repairing one lost block contacts all n - 1 surviving blocks
// but fetches only the beta = alpha/q sub-blocks on the repair planes
// {z : z_y0 = x0} — (n-1)/(k*q) of the k full blocks RS moves (0.33x for
// (14,10), 0.58x for (8,6)).
//
// Everything numeric runs off *symbolically derived* GF(2^8) schedules:
// the layered algorithm is executed once over coefficient vectors, and
// encode_chunk / plan_repair / reconstruct apply the resulting sparse rows
// to sub-block windows.  This keeps one implementation of the algebra and
// makes the repair schedule a plain RepairPlan any executor can run.
#pragma once

#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "erasure/codec.h"

namespace ear::erasure {

class ClayCode final : public ErasureCodec {
 public:
  // Requires n - k >= 2 and q^t <= 4096 (alpha growth; (20,16) -> 1024).
  ClayCode(int n, int k, Construction construction = Construction::kCauchy);

  CodecFamily family() const override { return CodecFamily::kClay; }
  int n() const override { return n_; }
  int k() const override { return k_; }
  int alpha() const override { return alpha_; }
  int q() const { return q_; }
  int t() const { return t_; }
  // Sub-blocks fetched per helper by a single-block repair plan.
  int beta() const { return alpha_ / q_; }

  void encode_chunk(const std::vector<BlockView>& data,
                    const std::vector<MutBlockView>& parity, size_t offset,
                    size_t len) const override;
  bool encode_schedule(Matrix* out) const override;
  bool plan_repair(int lost_id, const std::vector<int>& available_ids,
                   RepairPlan* plan) const override;
  bool reconstruct(const std::vector<int>& available_ids,
                   const std::vector<BlockView>& available,
                   const std::vector<int>& wanted_ids,
                   const std::vector<MutBlockView>& out,
                   std::string* why = nullptr) const override;

 private:
  using Vec = std::vector<uint8_t>;  // symbolic GF(2^8) coefficient vector

  // Sparse row set over sub-block units (column index = unit).
  struct Sparse {
    int cols = 0;
    std::vector<std::vector<std::pair<int, uint8_t>>> rows;
  };

  // Grid helpers over the extended [n', k'] code.
  int node_x(int v) const { return v % q_; }
  int node_y(int v) const { return v / q_; }
  int zdigit(int z, int y) const;
  int zset(int z, int y, int x) const;  // z with digit y replaced by x
  // Real block id -> extended node index (virtual zeros sit in between).
  int node_of(int id) const { return id < k_ ? id : id + ext_k_ - k_; }

  // Runs the coupled-layer decode symbolically: given C coefficient
  // vectors at every non-erased extended node (zero vectors for virtual
  // blocks), returns the C vectors of the erased nodes, indexed
  // [erased index][plane].
  std::vector<std::vector<Vec>> decode_layered(
      const std::vector<bool>& erased,
      const std::vector<std::vector<Vec>>& c_in, int veclen) const;

  const Sparse& encode_rows() const;  // lazily derived, cached
  void apply_sparse(const Sparse& rows, const std::vector<BlockView>& units,
                    const std::vector<MutBlockView>& outs, size_t offset,
                    size_t len) const;

  int n_;
  int k_;
  int q_;      // n - k, also the column count of erasures repair handles
  int t_;      // grid columns: ceil(n / q)
  int ext_n_;  // q * t
  int ext_k_;  // ext_n - q
  int alpha_;  // q^t
  uint8_t gamma_;
  uint8_t inv_det_;  // (1 + gamma^2)^-1, the pair-uncoupling scale
  RSCode base_;      // the [n', k'] plane code

  mutable std::mutex mu_;
  mutable Sparse encode_rows_;               // empty until first use
  mutable std::map<int, RepairPlan> plans_;  // per lost id
  mutable std::map<std::pair<std::vector<int>, std::vector<int>>, Sparse>
      reconstruct_cache_;
};

}  // namespace ear::erasure
