// Dense matrices over GF(2^8) used to build and invert Reed-Solomon
// generator matrices.  Sizes here are tiny (n, k <= a few dozen), so clarity
// wins over blocking/tiling.
#pragma once

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace ear::erasure {

class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols)
      : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows) * cols, 0) {
    assert(rows >= 0 && cols >= 0);
  }

  static Matrix identity(int n);

  // Vandermonde matrix V[i][j] = alpha^(i*j), i in [0, rows), j in [0, cols).
  // Any `cols` rows form a square Vandermonde with distinct evaluation
  // points, hence are nonsingular.
  static Matrix vandermonde(int rows, int cols);

  // Cauchy matrix C[i][j] = 1 / (x_i + y_j) with x_i = i, y_j = rows + j.
  // Every square submatrix of a Cauchy matrix is nonsingular.
  static Matrix cauchy(int rows, int cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  uint8_t at(int r, int c) const {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  uint8_t& at(int r, int c) {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  const uint8_t* row(int r) const {
    return data_.data() + static_cast<size_t>(r) * cols_;
  }

  Matrix multiply(const Matrix& rhs) const;

  // Returns the inverse, or an empty (0x0) matrix if singular.
  Matrix inverted() const;

  bool is_identity() const;

  // Matrix formed from the given subset of rows (in the given order).
  Matrix select_rows(const std::vector<int>& row_ids) const;

  bool operator==(const Matrix& other) const = default;

  std::string to_string() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<uint8_t> data_;
};

}  // namespace ear::erasure
