#include "erasure/lrc.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "gf256/gf256.h"

namespace ear::erasure {

namespace {

Matrix make_lrc_generator(int k, int l, int g) {
  // Validate here: this runs before the constructor body.
  if (l < 1 || k < 1 || k % l != 0) {
    throw std::invalid_argument("LRC: k must divide evenly into l groups");
  }
  if (g < 0 || k + l + g > 255) {
    throw std::invalid_argument("LRC: invalid parity counts");
  }
  const int n = k + l + g;
  Matrix gen(n, k);
  for (int r = 0; r < k; ++r) gen.at(r, r) = 1;

  // Local parities: XOR of each group.
  const int group = k / l;
  for (int j = 0; j < l; ++j) {
    for (int c = j * group; c < (j + 1) * group; ++c) {
      gen.at(k + j, c) = 1;
    }
  }

  // Global parities: Cauchy rows over all data blocks.
  const Matrix cauchy = Matrix::cauchy(std::max(g, 1), k);
  for (int j = 0; j < g; ++j) {
    for (int c = 0; c < k; ++c) {
      gen.at(k + l + j, c) = cauchy.at(j, c);
    }
  }
  return gen;
}

// Greedy Gaussian elimination: returns indices of k linearly independent
// rows of `rows` (in scan order), or an empty vector if rank < k.
std::vector<int> independent_rows(const Matrix& rows, int k) {
  std::vector<std::vector<uint8_t>> pivots;  // reduced rows
  std::vector<int> pivot_cols;
  std::vector<int> chosen;

  for (int r = 0; r < rows.rows() && static_cast<int>(chosen.size()) < k;
       ++r) {
    std::vector<uint8_t> row(static_cast<size_t>(k));
    for (int c = 0; c < k; ++c) row[static_cast<size_t>(c)] = rows.at(r, c);

    // Reduce by existing pivots.
    for (size_t p = 0; p < pivots.size(); ++p) {
      const uint8_t factor = row[static_cast<size_t>(pivot_cols[p])];
      if (factor == 0) continue;
      for (int c = 0; c < k; ++c) {
        row[static_cast<size_t>(c)] = gf::add(
            row[static_cast<size_t>(c)],
            gf::mul(factor, pivots[p][static_cast<size_t>(c)]));
      }
    }

    // Find the new pivot column.
    int col = -1;
    for (int c = 0; c < k; ++c) {
      if (row[static_cast<size_t>(c)] != 0) {
        col = c;
        break;
      }
    }
    if (col < 0) continue;  // dependent row

    // Normalize so the pivot element is 1, then keep the pivot set in
    // reduced form (zero at every other pivot's column) so one reduction
    // pass per candidate suffices.
    const uint8_t inv = gf::inv(row[static_cast<size_t>(col)]);
    for (int c = 0; c < k; ++c) {
      row[static_cast<size_t>(c)] = gf::mul(row[static_cast<size_t>(c)], inv);
    }
    for (auto& pivot : pivots) {
      const uint8_t factor = pivot[static_cast<size_t>(col)];
      if (factor == 0) continue;
      for (int c = 0; c < k; ++c) {
        pivot[static_cast<size_t>(c)] =
            gf::add(pivot[static_cast<size_t>(c)],
                    gf::mul(factor, row[static_cast<size_t>(c)]));
      }
    }
    pivots.push_back(std::move(row));
    pivot_cols.push_back(col);
    chosen.push_back(r);
  }
  if (static_cast<int>(chosen.size()) < k) chosen.clear();
  return chosen;
}

void apply_rows(const Matrix& coeffs, const std::vector<BlockView>& src,
                const std::vector<MutBlockView>& dst) {
  assert(static_cast<size_t>(coeffs.rows()) == dst.size());
  assert(static_cast<size_t>(coeffs.cols()) == src.size());
  for (int r = 0; r < coeffs.rows(); ++r) {
    MutBlockView out = dst[static_cast<size_t>(r)];
    bool first = true;
    for (int c = 0; c < coeffs.cols(); ++c) {
      const uint8_t coeff = coeffs.at(r, c);
      if (first) {
        gf::mul_assign(coeff, src[static_cast<size_t>(c)], out);
        first = false;
      } else {
        gf::mul_add(coeff, src[static_cast<size_t>(c)], out);
      }
    }
    if (first) std::fill(out.begin(), out.end(), uint8_t{0});
  }
}

}  // namespace

LRCCode::LRCCode(int k, int local_groups, int global_parities)
    : k_(k), l_(local_groups), g_(global_parities),
      generator_(make_lrc_generator(k, local_groups, global_parities)) {
  if (l_ < 1 || k_ % l_ != 0) {
    throw std::invalid_argument("LRC: k must divide evenly into l groups");
  }
  if (g_ < 0 || n() > 255) {
    throw std::invalid_argument("LRC: invalid parity counts");
  }
}

int LRCCode::group_of(int block_id) const {
  assert(block_id >= 0 && block_id < n());
  if (block_id < k_) return block_id / group_size();
  if (block_id < k_ + l_) return block_id - k_;
  return -1;
}

void LRCCode::encode(const std::vector<BlockView>& data,
                     const std::vector<MutBlockView>& parity) const {
  assert(static_cast<int>(data.size()) == k_);
  assert(static_cast<int>(parity.size()) == l_ + g_);
  std::vector<int> parity_rows;
  for (int r = k_; r < n(); ++r) parity_rows.push_back(r);
  apply_rows(generator_.select_rows(parity_rows), data, parity);
}

std::vector<int> LRCCode::repair_plan(int lost_id) const {
  assert(lost_id >= 0 && lost_id < n());
  std::vector<int> plan;
  const int group = group_of(lost_id);
  if (group >= 0) {
    // Read the rest of the local group plus its local parity.
    for (int d = group * group_size(); d < (group + 1) * group_size(); ++d) {
      if (d != lost_id) plan.push_back(d);
    }
    if (lost_id != k_ + group) plan.push_back(k_ + group);
    return plan;
  }
  // Global parity: recompute from all data blocks.
  for (int d = 0; d < k_; ++d) plan.push_back(d);
  return plan;
}

void LRCCode::repair(int lost_id, const std::vector<BlockView>& sources,
                     MutBlockView out) const {
  const std::vector<int> plan = repair_plan(lost_id);
  assert(sources.size() == plan.size());

  if (group_of(lost_id) >= 0) {
    // XOR relation: lost = sum of the rest of the group (incl. parity).
    std::fill(out.begin(), out.end(), uint8_t{0});
    for (const BlockView& src : sources) gf::xor_add(src, out);
    return;
  }
  // Global parity: re-encode its generator row over the data blocks.
  const Matrix row = generator_.select_rows({lost_id});
  apply_rows(row, sources, {out});
}

bool LRCCode::reconstruct(const std::vector<int>& available_ids,
                          const std::vector<BlockView>& available,
                          const std::vector<int>& wanted_ids,
                          const std::vector<MutBlockView>& out) const {
  assert(available.size() == available_ids.size());
  assert(wanted_ids.size() == out.size());

  const Matrix rows = generator_.select_rows(available_ids);
  const std::vector<int> chosen = independent_rows(rows, k_);
  if (chosen.empty()) return false;

  std::vector<int> chosen_ids;
  std::vector<BlockView> chosen_blocks;
  for (const int idx : chosen) {
    chosen_ids.push_back(available_ids[static_cast<size_t>(idx)]);
    chosen_blocks.push_back(available[static_cast<size_t>(idx)]);
  }
  const Matrix decode = generator_.select_rows(chosen_ids).inverted();
  if (decode.rows() == 0) return false;
  const Matrix coeffs = generator_.select_rows(wanted_ids).multiply(decode);
  apply_rows(coeffs, chosen_blocks, out);
  return true;
}

}  // namespace ear::erasure
