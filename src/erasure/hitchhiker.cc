#include "erasure/hitchhiker.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "gf256/gf256.h"

namespace ear::erasure {

HitchhikerCode::HitchhikerCode(int n, int k, Construction construction)
    : base_(n, k, construction) {
  if (n - k < 2) {
    throw std::invalid_argument(
        "Hitchhiker needs n - k >= 2 (one clean parity plus piggybacked)");
  }
  // Contiguous groups as even as possible: data i joins group i*(m-1)/k.
  groups_.resize(static_cast<size_t>(m() - 1));
  for (int i = 0; i < k; ++i) {
    groups_[static_cast<size_t>(i * (m() - 1) / k)].push_back(i);
  }
}

int HitchhikerCode::group_of(int data_id) const {
  return data_id * (m() - 1) / k();
}

void HitchhikerCode::encode_chunk(const std::vector<BlockView>& data,
                                  const std::vector<MutBlockView>& parity,
                                  size_t offset, size_t len) const {
  assert(static_cast<int>(data.size()) == k());
  assert(static_cast<int>(parity.size()) == m());
  const size_t sub = data.front().size() / 2;
  assert(data.front().size() % 2 == 0);

  std::vector<const uint8_t*> srcs(static_cast<size_t>(k()));
  std::vector<uint8_t> row(static_cast<size_t>(k()));
  for (int j = 0; j < m(); ++j) {
    // a-half: f_j(a); b-half: f_j(b), then the group piggyback for j >= 1.
    for (int half = 0; half < 2; ++half) {
      MutBlockView out = parity[static_cast<size_t>(j)].subspan(
          static_cast<size_t>(half) * sub + offset, len);
      for (int i = 0; i < k(); ++i) {
        srcs[static_cast<size_t>(i)] =
            data[static_cast<size_t>(i)]
                .subspan(static_cast<size_t>(half) * sub + offset, len)
                .data();
        row[static_cast<size_t>(i)] = gen(j, i);
      }
      gf::mul_add_multi(srcs, row, out, /*accumulate=*/false);
    }
    if (j >= 1) {
      MutBlockView out =
          parity[static_cast<size_t>(j)].subspan(sub + offset, len);
      for (const int i : groups_[static_cast<size_t>(j - 1)]) {
        gf::xor_add(
            data[static_cast<size_t>(i)].subspan(offset, len), out);
      }
    }
  }
}

bool HitchhikerCode::encode_schedule(Matrix* out) const {
  // Units: data block i contributes columns 2i (a-half) and 2i+1 (b-half);
  // parity j rows 2j and 2j+1.
  Matrix rows(2 * m(), 2 * k());
  for (int j = 0; j < m(); ++j) {
    for (int i = 0; i < k(); ++i) {
      rows.at(2 * j, 2 * i) = gen(j, i);
      rows.at(2 * j + 1, 2 * i + 1) = gen(j, i);
    }
    if (j >= 1) {
      for (const int i : groups_[static_cast<size_t>(j - 1)]) {
        rows.at(2 * j + 1, 2 * i) = gf::add(rows.at(2 * j + 1, 2 * i), 1);
      }
    }
  }
  *out = rows;
  return true;
}

bool HitchhikerCode::plan_repair(int lost_id,
                                 const std::vector<int>& available_ids,
                                 RepairPlan* plan) const {
  if (lost_id < 0 || lost_id >= n()) return false;
  std::vector<bool> present(static_cast<size_t>(n()), false);
  for (const int id : available_ids) {
    if (id >= 0 && id < n()) present[static_cast<size_t>(id)] = true;
  }
  const auto have = [&present](int id) {
    return present[static_cast<size_t>(id)];
  };

  if (lost_id >= k()) {
    // Parity: no piggyback shortcut; re-encode from the k data blocks.
    for (int i = 0; i < k(); ++i) {
      if (!have(i)) return false;
    }
    const int j = lost_id - k();
    plan->lost_id = lost_id;
    plan->alpha = 2;
    plan->sources.clear();
    Matrix coeffs(2, 2 * k());
    for (int i = 0; i < k(); ++i) {
      plan->sources.push_back({i, {0, 1}});
      coeffs.at(0, 2 * i) = gen(j, i);
      coeffs.at(1, 2 * i + 1) = gen(j, i);
    }
    if (j >= 1) {
      for (const int i : groups_[static_cast<size_t>(j - 1)]) {
        coeffs.at(1, 2 * i) = gf::add(coeffs.at(1, 2 * i), 1);
      }
    }
    plan->coeffs = std::move(coeffs);
    return true;
  }

  // Lost data block i in group S_j (parity index j = group + 1): fetch the
  // b-halves of every other data block and parity 0 (decode substripe b),
  // parity j's b-half and the a-halves of S_j \ {i} (peel the piggyback).
  const int j = group_of(lost_id) + 1;
  const auto& group = groups_[static_cast<size_t>(j - 1)];
  for (int i = 0; i < k(); ++i) {
    if (i != lost_id && !have(i)) return false;
  }
  if (!have(k()) || !have(k() + j)) return false;

  // Substripe-b decode plan over positions {data != lost} + {parity 0}.
  std::vector<int> b_ids;
  for (int i = 0; i < k(); ++i) {
    if (i != lost_id) b_ids.push_back(i);
  }
  b_ids.push_back(k());
  Matrix b_rows;  // row 0: b_lost; row 1: f_j(b)
  if (!base_.plan_reconstruct(b_ids, {lost_id, k() + j}, &b_rows)) {
    return false;
  }

  // Sources in ascending id order; units in source order (a before b).
  plan->lost_id = lost_id;
  plan->alpha = 2;
  plan->sources.clear();
  std::vector<int> a_unit(static_cast<size_t>(n()), -1);
  std::vector<int> b_unit(static_cast<size_t>(n()), -1);
  int unit = 0;
  for (int id = 0; id < n(); ++id) {
    if (id == lost_id) continue;
    const bool in_group =
        id < k() && std::find(group.begin(), group.end(), id) != group.end();
    if (id < k()) {
      RepairSource src{id, {}};
      if (in_group) {
        src.sub_blocks = {0, 1};
        a_unit[static_cast<size_t>(id)] = unit++;
      } else {
        src.sub_blocks = {1};
      }
      b_unit[static_cast<size_t>(id)] = unit++;
      plan->sources.push_back(std::move(src));
    } else if (id == k() || id == k() + j) {
      b_unit[static_cast<size_t>(id)] = unit++;
      plan->sources.push_back({id, {1}});
    }
  }

  Matrix coeffs(2, unit);
  // Row 1 (b-half): the substripe-b decode row for b_lost.
  for (size_t s = 0; s < b_ids.size(); ++s) {
    coeffs.at(1, b_unit[static_cast<size_t>(b_ids[s])]) =
        b_rows.at(0, static_cast<int>(s));
  }
  // Row 0 (a-half): parity_j.b + f_j(b) + XOR of the group's other a's.
  coeffs.at(0, b_unit[static_cast<size_t>(k() + j)]) = 1;
  for (size_t s = 0; s < b_ids.size(); ++s) {
    const int u = b_unit[static_cast<size_t>(b_ids[s])];
    coeffs.at(0, u) = gf::add(coeffs.at(0, u), b_rows.at(1, static_cast<int>(s)));
  }
  for (const int i : group) {
    if (i != lost_id) {
      const int u = a_unit[static_cast<size_t>(i)];
      coeffs.at(0, u) = gf::add(coeffs.at(0, u), 1);
    }
  }
  plan->coeffs = std::move(coeffs);
  return true;
}

bool HitchhikerCode::reconstruct(const std::vector<int>& available_ids,
                                 const std::vector<BlockView>& available,
                                 const std::vector<int>& wanted_ids,
                                 const std::vector<MutBlockView>& out,
                                 std::string* why) const {
  assert(available.size() == available_ids.size());
  assert(wanted_ids.size() == out.size());
  if (static_cast<int>(available_ids.size()) < k()) {
    if (why != nullptr) {
      *why = "Hitchhiker(" + std::to_string(n()) + "," +
             std::to_string(k()) + ") needs k available blocks, got " +
             std::to_string(available_ids.size());
    }
    return false;
  }
  const std::vector<int> chosen(available_ids.begin(),
                                available_ids.begin() + k());
  const size_t size = available.front().size();
  assert(size % 2 == 0);
  const size_t sub = size / 2;

  // Substripe a is a clean RS codeword (every parity's a-half is f_j(a)):
  // decode all data a-halves first.
  std::vector<BlockView> a_views;
  for (int s = 0; s < k(); ++s) {
    a_views.push_back(available[static_cast<size_t>(s)].subspan(0, sub));
  }
  std::vector<std::vector<uint8_t>> a_data(
      static_cast<size_t>(k()), std::vector<uint8_t>(sub));
  std::vector<MutBlockView> a_out(a_data.begin(), a_data.end());
  std::vector<int> all_data(static_cast<size_t>(k()));
  for (int i = 0; i < k(); ++i) all_data[static_cast<size_t>(i)] = i;
  if (!base_.reconstruct(chosen, a_views, all_data, a_out, why)) return false;

  // Peel the piggybacks off the available parity b-halves, then decode
  // substripe b from the same k positions.
  std::vector<std::vector<uint8_t>> piggy(
      static_cast<size_t>(m()), std::vector<uint8_t>(sub, 0));
  for (int j = 1; j < m(); ++j) {
    for (const int i : groups_[static_cast<size_t>(j - 1)]) {
      gf::xor_add(a_data[static_cast<size_t>(i)],
                  piggy[static_cast<size_t>(j)]);
    }
  }
  std::vector<std::vector<uint8_t>> b_cleaned;  // keeps spans alive
  b_cleaned.reserve(static_cast<size_t>(k()));  // no reallocation: spans stay valid
  std::vector<BlockView> b_views;
  for (int s = 0; s < k(); ++s) {
    const int id = chosen[static_cast<size_t>(s)];
    const BlockView b = available[static_cast<size_t>(s)].subspan(sub, sub);
    if (id < k()) {
      b_views.push_back(b);
    } else {
      std::vector<uint8_t> cleaned(b.begin(), b.end());
      gf::xor_add(piggy[static_cast<size_t>(id - k())], cleaned);
      b_cleaned.push_back(std::move(cleaned));
      b_views.push_back(b_cleaned.back());
    }
  }
  std::vector<std::vector<uint8_t>> b_data(
      static_cast<size_t>(k()), std::vector<uint8_t>(sub));
  std::vector<MutBlockView> b_out(b_data.begin(), b_data.end());
  if (!base_.reconstruct(chosen, b_views, all_data, b_out, why)) return false;

  // Assemble the wanted blocks from the decoded data substripes.
  std::vector<BlockView> a_in(a_data.begin(), a_data.end());
  std::vector<BlockView> b_in(b_data.begin(), b_data.end());
  for (size_t w = 0; w < wanted_ids.size(); ++w) {
    const int id = wanted_ids[w];
    MutBlockView dst = out[w];
    assert(dst.size() == size);
    if (id < k()) {
      std::copy(a_data[static_cast<size_t>(id)].begin(),
                a_data[static_cast<size_t>(id)].end(), dst.begin());
      std::copy(b_data[static_cast<size_t>(id)].begin(),
                b_data[static_cast<size_t>(id)].end(),
                dst.begin() + static_cast<ptrdiff_t>(sub));
    } else {
      // Re-encode just this parity from the decoded data.
      const int j = id - k();
      std::vector<const uint8_t*> srcs(static_cast<size_t>(k()));
      std::vector<uint8_t> row(static_cast<size_t>(k()));
      for (int half = 0; half < 2; ++half) {
        MutBlockView hv = dst.subspan(static_cast<size_t>(half) * sub, sub);
        for (int i = 0; i < k(); ++i) {
          srcs[static_cast<size_t>(i)] =
              (half == 0 ? a_in[static_cast<size_t>(i)]
                         : b_in[static_cast<size_t>(i)])
                  .data();
          row[static_cast<size_t>(i)] = gen(j, i);
        }
        gf::mul_add_multi(srcs, row, hv, /*accumulate=*/false);
      }
      if (j >= 1) {
        MutBlockView hv = dst.subspan(sub, sub);
        gf::xor_add(piggy[static_cast<size_t>(j)], hv);
      }
    }
  }
  return true;
}

}  // namespace ear::erasure
