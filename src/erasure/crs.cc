#include "erasure/crs.h"

#include <cassert>
#include <stdexcept>

#include "gf256/gf256.h"

namespace ear::erasure {

namespace {

// Applies a GF(2^8) coefficient matrix to bit-sliced blocks: out[r] =
// sum_c coeffs(r, c) * src[c], where multiplication expands to the 8x8
// binary matrix XOR schedule over w packets.
void apply_bitmatrix(const Matrix& coeffs,
                     const std::vector<BlockView>& src,
                     const std::vector<MutBlockView>& out) {
  constexpr int w = CRSCode::kW;
  const size_t block = src.empty() ? 0 : src[0].size();
  assert(block % w == 0);
  const size_t packet = block / w;

  for (int r = 0; r < coeffs.rows(); ++r) {
    MutBlockView dst = out[static_cast<size_t>(r)];
    std::fill(dst.begin(), dst.end(), uint8_t{0});
    for (int c = 0; c < coeffs.cols(); ++c) {
      const uint8_t coeff = coeffs.at(r, c);
      if (coeff == 0) continue;
      const BlockView in = src[static_cast<size_t>(c)];
      for (int j = 0; j < w; ++j) {
        const uint8_t column = gf::mul(coeff, static_cast<uint8_t>(1u << j));
        for (int i = 0; i < w; ++i) {
          if (column & (1u << i)) {
            gf::xor_add(
                in.subspan(static_cast<size_t>(j) * packet, packet),
                dst.subspan(static_cast<size_t>(i) * packet, packet));
          }
        }
      }
    }
  }
}

}  // namespace

CRSCode::CRSCode(int n, int k)
    : byte_code_(n, k, Construction::kCauchy) {
  const int m = n - k;
  schedule_.resize(static_cast<size_t>(m) * kW);

  // Expand each generator coefficient into its 8x8 binary matrix: column j
  // holds the bit pattern of coeff * x^j, so parity bit-row i of the
  // coefficient block includes data packet j iff bit i of mul(coeff, 2^j)
  // is set.
  const Matrix& gen = byte_code_.generator();
  for (int pr = 0; pr < m; ++pr) {
    for (int c = 0; c < k; ++c) {
      const uint8_t coeff = gen.at(k + pr, c);
      if (coeff == 0) continue;
      for (int j = 0; j < kW; ++j) {
        const uint8_t column = gf::mul(coeff, static_cast<uint8_t>(1u << j));
        for (int i = 0; i < kW; ++i) {
          if (column & (1u << i)) {
            schedule_[static_cast<size_t>(pr) * kW + i].push_back(c * kW + j);
            ++xor_count_;
          }
        }
      }
    }
  }
}

void CRSCode::encode(const std::vector<BlockView>& data,
                     const std::vector<MutBlockView>& parity) const {
  assert(static_cast<int>(data.size()) == k());
  assert(static_cast<int>(parity.size()) == m());
  const size_t block = data.empty() ? 0 : data[0].size();
  if (block % kW != 0) {
    throw std::invalid_argument("CRS: block size must be divisible by 8");
  }
  const size_t packet = block / kW;

  for (int pr = 0; pr < m(); ++pr) {
    MutBlockView out = parity[static_cast<size_t>(pr)];
    assert(out.size() == block);
    for (int i = 0; i < kW; ++i) {
      MutBlockView out_packet = out.subspan(static_cast<size_t>(i) * packet,
                                            packet);
      std::fill(out_packet.begin(), out_packet.end(), uint8_t{0});
      for (const int src :
           schedule_[static_cast<size_t>(pr) * kW + i]) {
        const int data_block = src / kW;
        const int data_packet = src % kW;
        gf::xor_add(data[static_cast<size_t>(data_block)].subspan(
                        static_cast<size_t>(data_packet) * packet, packet),
                    out_packet);
      }
    }
  }
}

bool CRSCode::reconstruct(const std::vector<int>& available_ids,
                          const std::vector<BlockView>& available,
                          const std::vector<int>& wanted_ids,
                          const std::vector<MutBlockView>& out) const {
  assert(static_cast<int>(available_ids.size()) == k());
  assert(wanted_ids.size() == out.size());
  // Decode coefficients in GF(2^8); the bit-matrix expansion of each
  // coefficient then acts on the bit-sliced layout.
  const Matrix& gen = byte_code_.generator();
  const Matrix decode = gen.select_rows(available_ids).inverted();
  if (decode.rows() == 0) return false;
  const Matrix coeffs = gen.select_rows(wanted_ids).multiply(decode);
  apply_bitmatrix(coeffs, available, out);
  return true;
}

}  // namespace ear::erasure
