#include "erasure/clay.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

#include "gf256/gf256.h"

namespace ear::erasure {

namespace {

// dst += c * src over symbolic coefficient vectors.
void add_scaled(std::vector<uint8_t>& dst, uint8_t c,
                const std::vector<uint8_t>& src) {
  assert(dst.size() == src.size());
  if (c == 0) return;
  if (c == 1) {
    for (size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
    return;
  }
  for (size_t i = 0; i < dst.size(); ++i) dst[i] ^= gf::mul(c, src[i]);
}

void scale(std::vector<uint8_t>& vec, uint8_t c) {
  for (auto& b : vec) b = gf::mul(c, b);
}

int checked_q(int n, int k) {
  if (k < 1 || n <= k) throw std::invalid_argument("Clay needs 1 <= k < n");
  if (n - k < 2) {
    throw std::invalid_argument("Clay needs n - k >= 2 (pairwise coupling)");
  }
  return n - k;
}

int checked_alpha(int q, int t, int ext_n) {
  if (ext_n > 255) {
    throw std::invalid_argument("Clay extended code exceeds GF(2^8) ids");
  }
  int alpha = 1;
  for (int i = 0; i < t; ++i) {
    alpha *= q;
    if (alpha > 256) {
      throw std::invalid_argument(
          "Clay sub-packetization q^ceil(n/q) exceeds 256");
    }
  }
  return alpha;
}

}  // namespace

ClayCode::ClayCode(int n, int k, Construction construction)
    : n_(n),
      k_(k),
      q_(checked_q(n, k)),
      t_((n + q_ - 1) / q_),
      ext_n_(q_ * t_),
      ext_k_(ext_n_ - q_),
      alpha_(checked_alpha(q_, t_, ext_n_)),
      gamma_(2),
      inv_det_(gf::inv(gf::add(1, gf::mul(gamma_, gamma_)))),
      base_(ext_n_, ext_k_, construction) {}

int ClayCode::zdigit(int z, int y) const {
  int p = 1;
  for (int i = 0; i < y; ++i) p *= q_;
  return (z / p) % q_;
}

int ClayCode::zset(int z, int y, int x) const {
  int p = 1;
  for (int i = 0; i < y; ++i) p *= q_;
  return z + (x - zdigit(z, y)) * p;
}

std::vector<std::vector<ClayCode::Vec>> ClayCode::decode_layered(
    const std::vector<bool>& erased,
    const std::vector<std::vector<Vec>>& c_in, int veclen) const {
  std::vector<int> erased_ids, avail_ids;
  for (int v = 0; v < ext_n_; ++v) {
    (erased[static_cast<size_t>(v)] ? erased_ids : avail_ids).push_back(v);
  }
  assert(static_cast<int>(erased_ids.size()) <= q_);
  assert(static_cast<int>(avail_ids.size()) >= ext_k_);
  const std::vector<int> chosen(avail_ids.begin(),
                                avail_ids.begin() + ext_k_);
  Matrix pd;  // one plane-decode matrix serves every plane
  const bool ok = base_.plan_reconstruct(chosen, erased_ids, &pd);
  assert(ok && "base MDS plane decode cannot be singular");
  if (!ok) return {};

  // Planes ordered by intersection score: symbols whose partner plane has
  // one fewer erased unpaired symbol are uncoupled via the already-decoded
  // partner, so ascending order makes every dependency available.
  std::vector<int> order(static_cast<size_t>(alpha_));
  std::iota(order.begin(), order.end(), 0);
  std::vector<int> score(static_cast<size_t>(alpha_), 0);
  for (int z = 0; z < alpha_; ++z) {
    for (const int e : erased_ids) {
      if (zdigit(z, node_y(e)) == node_x(e)) ++score[static_cast<size_t>(z)];
    }
  }
  std::stable_sort(order.begin(), order.end(), [&score](int a, int b) {
    return score[static_cast<size_t>(a)] < score[static_cast<size_t>(b)];
  });

  std::vector<std::vector<Vec>> U(
      static_cast<size_t>(alpha_),
      std::vector<Vec>(static_cast<size_t>(ext_n_)));
  for (const int z : order) {
    auto& Uz = U[static_cast<size_t>(z)];
    for (const int v : avail_ids) {
      const int x = node_x(v), y = node_y(v);
      const Vec& cv = c_in[static_cast<size_t>(v)][static_cast<size_t>(z)];
      if (zdigit(z, y) == x) {
        Uz[static_cast<size_t>(v)] = cv;  // unpaired: C == U
        continue;
      }
      const int p = y * q_ + zdigit(z, y);
      const int w = zset(z, y, x);
      if (!erased[static_cast<size_t>(p)]) {
        // Both coupled symbols known: invert the 2x2 pair transform.
        Vec u = cv;
        add_scaled(u, gamma_,
                   c_in[static_cast<size_t>(p)][static_cast<size_t>(w)]);
        scale(u, inv_det_);
        Uz[static_cast<size_t>(v)] = std::move(u);
      } else {
        // Partner erased: its plane w has a lower intersection score and is
        // fully decoded, so U = C + gamma * U_partner.
        Vec u = cv;
        add_scaled(u, gamma_, U[static_cast<size_t>(w)][static_cast<size_t>(p)]);
        Uz[static_cast<size_t>(v)] = std::move(u);
      }
    }
    for (int r = 0; r < static_cast<int>(erased_ids.size()); ++r) {
      Vec u(static_cast<size_t>(veclen), 0);
      for (int j = 0; j < ext_k_; ++j) {
        add_scaled(u, pd.at(r, j),
                   Uz[static_cast<size_t>(chosen[static_cast<size_t>(j)])]);
      }
      Uz[static_cast<size_t>(erased_ids[static_cast<size_t>(r)])] =
          std::move(u);
    }
  }

  // Re-couple: C at the erased nodes from the fully known U workspace.
  std::vector<std::vector<Vec>> out(
      erased_ids.size(), std::vector<Vec>(static_cast<size_t>(alpha_)));
  for (size_t r = 0; r < erased_ids.size(); ++r) {
    const int v = erased_ids[r];
    const int x = node_x(v), y = node_y(v);
    for (int z = 0; z < alpha_; ++z) {
      Vec c = U[static_cast<size_t>(z)][static_cast<size_t>(v)];
      if (zdigit(z, y) != x) {
        const int p = y * q_ + zdigit(z, y);
        const int w = zset(z, y, x);
        add_scaled(c, gamma_,
                   U[static_cast<size_t>(w)][static_cast<size_t>(p)]);
      }
      out[r][static_cast<size_t>(z)] = std::move(c);
    }
  }
  return out;
}

const ClayCode::Sparse& ClayCode::encode_rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!encode_rows_.rows.empty()) return encode_rows_;

  const int veclen = k_ * alpha_;
  std::vector<bool> erased(static_cast<size_t>(ext_n_), false);
  for (int v = ext_k_; v < ext_n_; ++v) erased[static_cast<size_t>(v)] = true;
  std::vector<std::vector<Vec>> c_in(
      static_cast<size_t>(ext_n_),
      std::vector<Vec>(static_cast<size_t>(alpha_),
                       Vec(static_cast<size_t>(veclen), 0)));
  for (int i = 0; i < k_; ++i) {
    for (int z = 0; z < alpha_; ++z) {
      c_in[static_cast<size_t>(i)][static_cast<size_t>(z)]
          [static_cast<size_t>(i * alpha_ + z)] = 1;
    }
  }
  const auto cout = decode_layered(erased, c_in, veclen);

  Sparse rows;
  rows.cols = veclen;
  rows.rows.resize(static_cast<size_t>(m() * alpha_));
  for (int j = 0; j < m(); ++j) {
    for (int z = 0; z < alpha_; ++z) {
      auto& terms = rows.rows[static_cast<size_t>(j * alpha_ + z)];
      const Vec& row = cout[static_cast<size_t>(j)][static_cast<size_t>(z)];
      for (int u = 0; u < veclen; ++u) {
        if (row[static_cast<size_t>(u)] != 0) {
          terms.emplace_back(u, row[static_cast<size_t>(u)]);
        }
      }
    }
  }
  encode_rows_ = std::move(rows);
  return encode_rows_;
}

void ClayCode::apply_sparse(const Sparse& rows,
                            const std::vector<BlockView>& units,
                            const std::vector<MutBlockView>& outs,
                            size_t offset, size_t len) const {
  assert(outs.size() == rows.rows.size());
  // Each sparse row becomes one multi-source kernel sweep over its units.
  std::vector<const uint8_t*> srcs;
  std::vector<uint8_t> coeffs;
  for (size_t r = 0; r < rows.rows.size(); ++r) {
    MutBlockView out = outs[r].subspan(offset, len);
    srcs.clear();
    coeffs.clear();
    srcs.reserve(rows.rows[r].size());
    coeffs.reserve(rows.rows[r].size());
    for (const auto& [u, coeff] : rows.rows[r]) {
      srcs.push_back(units[static_cast<size_t>(u)].subspan(offset, len).data());
      coeffs.push_back(coeff);
    }
    gf::mul_add_multi(srcs, coeffs, out, /*accumulate=*/false);
  }
}

void ClayCode::encode_chunk(const std::vector<BlockView>& data,
                            const std::vector<MutBlockView>& parity,
                            size_t offset, size_t len) const {
  assert(static_cast<int>(data.size()) == k_);
  assert(static_cast<int>(parity.size()) == m());
  const size_t sub = data.front().size() / static_cast<size_t>(alpha_);
  assert(data.front().size() % static_cast<size_t>(alpha_) == 0);

  std::vector<BlockView> units;
  units.reserve(static_cast<size_t>(k_ * alpha_));
  for (int i = 0; i < k_; ++i) {
    for (int z = 0; z < alpha_; ++z) {
      units.push_back(data[static_cast<size_t>(i)].subspan(
          static_cast<size_t>(z) * sub, sub));
    }
  }
  std::vector<MutBlockView> outs;
  outs.reserve(static_cast<size_t>(m() * alpha_));
  for (int j = 0; j < m(); ++j) {
    for (int z = 0; z < alpha_; ++z) {
      outs.push_back(parity[static_cast<size_t>(j)].subspan(
          static_cast<size_t>(z) * sub, sub));
    }
  }
  apply_sparse(encode_rows(), units, outs, offset, len);
}

bool ClayCode::encode_schedule(Matrix* out) const {
  const Sparse& rows = encode_rows();
  Matrix dense(m() * alpha_, rows.cols);
  for (size_t r = 0; r < rows.rows.size(); ++r) {
    for (const auto& [u, coeff] : rows.rows[r]) {
      dense.at(static_cast<int>(r), u) = coeff;
    }
  }
  *out = dense;
  return true;
}

bool ClayCode::plan_repair(int lost_id,
                           const std::vector<int>& available_ids,
                           RepairPlan* plan) const {
  if (lost_id < 0 || lost_id >= n_) return false;
  // The MSR repair contacts every surviving block (d = n - 1 helpers).
  std::vector<bool> present(static_cast<size_t>(n_), false);
  for (const int id : available_ids) {
    if (id >= 0 && id < n_) present[static_cast<size_t>(id)] = true;
  }
  for (int id = 0; id < n_; ++id) {
    if (id != lost_id && !present[static_cast<size_t>(id)]) return false;
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = plans_.find(lost_id); it != plans_.end()) {
    *plan = it->second;
    return true;
  }

  const int beta = alpha_ / q_;
  const int v0 = node_of(lost_id);
  const int x0 = node_x(v0), y0 = node_y(v0);

  // Repair planes: those whose y0-digit selects the lost node's column row.
  std::vector<int> zr;
  std::vector<int> zr_index(static_cast<size_t>(alpha_), -1);
  for (int z = 0; z < alpha_; ++z) {
    if (zdigit(z, y0) == x0) {
      zr_index[static_cast<size_t>(z)] = static_cast<int>(zr.size());
      zr.push_back(z);
    }
  }
  assert(static_cast<int>(zr.size()) == beta);

  // Units: helpers in ascending id order, beta repair-plane sub-blocks each.
  std::vector<int> helpers;
  std::vector<int> helper_index(static_cast<size_t>(ext_n_), -1);
  for (int id = 0; id < n_; ++id) {
    if (id == lost_id) continue;
    helper_index[static_cast<size_t>(node_of(id))] =
        static_cast<int>(helpers.size());
    helpers.push_back(id);
  }
  const int veclen = static_cast<int>(helpers.size()) * beta;
  const auto cvec = [&](int v, int z) {
    Vec vec(static_cast<size_t>(veclen), 0);
    const int h = helper_index[static_cast<size_t>(v)];
    if (h >= 0) {  // virtual blocks contribute the zero vector
      vec[static_cast<size_t>(h * beta +
                              zr_index[static_cast<size_t>(z)])] = 1;
    }
    return vec;
  };

  // Per repair plane: uncouple the helper columns, then MDS-decode the
  // plane for the whole lost column's U symbols.
  std::vector<int> avail_nodes, wanted_nodes;
  for (int v = 0; v < ext_n_; ++v) {
    (node_y(v) == y0 ? wanted_nodes : avail_nodes).push_back(v);
  }
  Matrix pd;
  const bool ok = base_.plan_reconstruct(avail_nodes, wanted_nodes, &pd);
  assert(ok && "base MDS plane decode cannot be singular");
  if (!ok) return false;

  std::vector<std::vector<Vec>> u_col(
      zr.size(), std::vector<Vec>(static_cast<size_t>(q_)));
  for (size_t zi = 0; zi < zr.size(); ++zi) {
    const int z = zr[zi];
    std::vector<Vec> u_avail;
    u_avail.reserve(avail_nodes.size());
    for (const int v : avail_nodes) {
      const int x = node_x(v), y = node_y(v);
      if (zdigit(z, y) == x) {
        u_avail.push_back(cvec(v, z));
        continue;
      }
      const int p = y * q_ + zdigit(z, y);
      const int w = zset(z, y, x);  // stays a repair plane (digit y0 fixed)
      Vec u = cvec(v, z);
      add_scaled(u, gamma_, cvec(p, w));
      scale(u, inv_det_);
      u_avail.push_back(std::move(u));
    }
    for (int xi = 0; xi < q_; ++xi) {
      Vec u(static_cast<size_t>(veclen), 0);
      for (size_t j = 0; j < u_avail.size(); ++j) {
        add_scaled(u, pd.at(xi, static_cast<int>(j)), u_avail[j]);
      }
      u_col[zi][static_cast<size_t>(xi)] = std::move(u);
    }
  }

  // Assemble the lost block's alpha rows: repair planes re-couple to C
  // directly (the lost symbol is unpaired there); the other planes recover
  // U via the coupling partner fetched from the helper in the lost column.
  Matrix coeffs(alpha_, veclen);
  const uint8_t inv_gamma = gf::inv(gamma_);
  for (int z = 0; z < alpha_; ++z) {
    Vec row(static_cast<size_t>(veclen), 0);
    if (zr_index[static_cast<size_t>(z)] >= 0) {
      row = u_col[static_cast<size_t>(
          zr_index[static_cast<size_t>(z)])][static_cast<size_t>(x0)];
    } else {
      const int x = zdigit(z, y0);
      const int w = zset(z, y0, x0);
      const int zi = zr_index[static_cast<size_t>(w)];
      const int p = y0 * q_ + x;
      // C(v0; z) = gamma^-1 * C(p; w) + (gamma^-1 + gamma) * U(p; w)
      add_scaled(row, inv_gamma, cvec(p, w));
      add_scaled(row, gf::add(inv_gamma, gamma_),
                 u_col[static_cast<size_t>(zi)][static_cast<size_t>(x)]);
    }
    for (int u = 0; u < veclen; ++u) {
      coeffs.at(z, u) = row[static_cast<size_t>(u)];
    }
  }

  RepairPlan built;
  built.lost_id = lost_id;
  built.alpha = alpha_;
  for (const int h : helpers) built.sources.push_back({h, zr});
  built.coeffs = std::move(coeffs);
  plans_[lost_id] = built;
  *plan = std::move(built);
  return true;
}

bool ClayCode::reconstruct(const std::vector<int>& available_ids,
                           const std::vector<BlockView>& available,
                           const std::vector<int>& wanted_ids,
                           const std::vector<MutBlockView>& out,
                           std::string* why) const {
  assert(available.size() == available_ids.size());
  assert(wanted_ids.size() == out.size());
  if (static_cast<int>(available_ids.size()) < k_) {
    if (why != nullptr) {
      *why = "Clay(" + std::to_string(n_) + "," + std::to_string(k_) +
             ") needs k available blocks, got " +
             std::to_string(available_ids.size());
    }
    return false;
  }

  // Deterministic choice: the k lowest available ids.
  std::vector<size_t> order(available_ids.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return available_ids[a] < available_ids[b];
  });
  std::vector<int> chosen;
  std::vector<BlockView> chosen_views;
  for (int j = 0; j < k_; ++j) {
    chosen.push_back(available_ids[order[static_cast<size_t>(j)]]);
    chosen_views.push_back(available[order[static_cast<size_t>(j)]]);
  }

  Sparse rows;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto key = std::make_pair(chosen, wanted_ids);
    if (const auto it = reconstruct_cache_.find(key);
        it != reconstruct_cache_.end()) {
      rows = it->second;
    } else {
      const int veclen = k_ * alpha_;
      std::vector<bool> erased(static_cast<size_t>(ext_n_), false);
      std::vector<int> chosen_index(static_cast<size_t>(ext_n_), -1);
      for (int id = 0; id < n_; ++id) {
        erased[static_cast<size_t>(node_of(id))] = true;
      }
      for (size_t j = 0; j < chosen.size(); ++j) {
        const int v = node_of(chosen[j]);
        erased[static_cast<size_t>(v)] = false;
        chosen_index[static_cast<size_t>(v)] = static_cast<int>(j);
      }
      std::vector<std::vector<Vec>> c_in(
          static_cast<size_t>(ext_n_),
          std::vector<Vec>(static_cast<size_t>(alpha_),
                           Vec(static_cast<size_t>(veclen), 0)));
      for (size_t j = 0; j < chosen.size(); ++j) {
        const int v = node_of(chosen[j]);
        for (int z = 0; z < alpha_; ++z) {
          c_in[static_cast<size_t>(v)][static_cast<size_t>(z)]
              [j * static_cast<size_t>(alpha_) + static_cast<size_t>(z)] = 1;
        }
      }
      const auto cout = decode_layered(erased, c_in, veclen);
      std::vector<int> erased_ids;
      for (int v = 0; v < ext_n_; ++v) {
        if (erased[static_cast<size_t>(v)]) erased_ids.push_back(v);
      }

      rows.cols = veclen;
      for (const int wanted : wanted_ids) {
        const int v = node_of(wanted);
        if (chosen_index[static_cast<size_t>(v)] >= 0) {
          const int j = chosen_index[static_cast<size_t>(v)];
          for (int z = 0; z < alpha_; ++z) {
            rows.rows.push_back({{j * alpha_ + z, uint8_t{1}}});
          }
          continue;
        }
        const auto it = std::find(erased_ids.begin(), erased_ids.end(), v);
        assert(it != erased_ids.end());
        const size_t r = static_cast<size_t>(it - erased_ids.begin());
        for (int z = 0; z < alpha_; ++z) {
          std::vector<std::pair<int, uint8_t>> terms;
          const Vec& row = cout[r][static_cast<size_t>(z)];
          for (int u = 0; u < veclen; ++u) {
            if (row[static_cast<size_t>(u)] != 0) {
              terms.emplace_back(u, row[static_cast<size_t>(u)]);
            }
          }
          rows.rows.push_back(std::move(terms));
        }
      }
      if (reconstruct_cache_.size() >= 32) reconstruct_cache_.clear();
      reconstruct_cache_[key] = rows;
    }
  }

  const size_t size = chosen_views.front().size();
  assert(size % static_cast<size_t>(alpha_) == 0);
  const size_t sub = size / static_cast<size_t>(alpha_);
  std::vector<BlockView> units;
  units.reserve(chosen_views.size() * static_cast<size_t>(alpha_));
  for (const BlockView v : chosen_views) {
    for (int z = 0; z < alpha_; ++z) {
      units.push_back(v.subspan(static_cast<size_t>(z) * sub, sub));
    }
  }
  std::vector<MutBlockView> outs;
  outs.reserve(out.size() * static_cast<size_t>(alpha_));
  for (const MutBlockView v : out) {
    for (int z = 0; z < alpha_; ++z) {
      outs.push_back(v.subspan(static_cast<size_t>(z) * sub, sub));
    }
  }
  apply_sparse(rows, units, outs, 0, sub);
  return true;
}

}  // namespace ear::erasure
