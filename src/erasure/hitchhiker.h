// Hitchhiker-XOR — Rashmi et al.'s piggybacking transform (SIGCOMM '14)
// over the existing RS code, built for exactly the Facebook warehouse
// cluster the source paper targets (PAPERS.md).
//
// Every block splits into alpha = 2 sub-blocks: substripe `a` (sub-block 0)
// and substripe `b` (sub-block 1), each an independent RS codeword over the
// same [n, k] generator.  The data blocks partition into m - 1 groups
// S_1..S_{m-1}; parity j >= 1 "piggybacks" its group's a-symbols onto its
// b-half:
//
//     parity_j = [ f_j(a) ; f_j(b) + XOR_{i in S_j} a_i ]   (j >= 1)
//     parity_0 = [ f_0(a) ; f_0(b) ]                        (clean)
//
// Repairing data block i in S_j fetches the b-halves of the other k - 1
// data blocks plus parity_0 (decode substripe b, yielding b_i and f_j(b)),
// then parity_j's b-half and the a-halves of S_j \ {i} to peel a_i out of
// the piggyback — (k + |S_j|) half-blocks instead of k full blocks (0.65x
// for (14,10)).  Parity repair has no shortcut and moves k full blocks,
// exactly like RS.
#pragma once

#include <vector>

#include "erasure/codec.h"

namespace ear::erasure {

class HitchhikerCode final : public ErasureCodec {
 public:
  // Requires n - k >= 2 (parity 0 must stay clean for the b-decode).
  HitchhikerCode(int n, int k,
                 Construction construction = Construction::kCauchy);

  CodecFamily family() const override { return CodecFamily::kHitchhiker; }
  int n() const override { return base_.n(); }
  int k() const override { return base_.k(); }
  int alpha() const override { return 2; }

  // Piggyback group of a data block, in [0, m - 2] (group g uses
  // parity g + 1).
  int group_of(int data_id) const;

  void encode_chunk(const std::vector<BlockView>& data,
                    const std::vector<MutBlockView>& parity, size_t offset,
                    size_t len) const override;
  bool encode_schedule(Matrix* out) const override;
  bool plan_repair(int lost_id, const std::vector<int>& available_ids,
                   RepairPlan* plan) const override;
  bool reconstruct(const std::vector<int>& available_ids,
                   const std::vector<BlockView>& available,
                   const std::vector<int>& wanted_ids,
                   const std::vector<MutBlockView>& out,
                   std::string* why = nullptr) const override;

 private:
  uint8_t gen(int row, int col) const {
    return base_.generator().at(base_.k() + row, col);
  }

  RSCode base_;
  std::vector<std::vector<int>> groups_;  // m - 1 contiguous data groups
};

}  // namespace ear::erasure
