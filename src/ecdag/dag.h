// Distributed erasure-coding DAGs with rack-local partial-sum aggregation.
//
// The paper's encoder and repair worker both funnel k full blocks through a
// single fan-in node, so the core-rack downlink caps cluster-wide conversion
// and repair throughput no matter how good placement is.  Following OpenEC's
// ECDAG and RapidRAID's pipelined archival codes, this subsystem represents
// any linear coding operation — encode, repair, degraded-read reconstruction
// — as a DAG of partial GF(2^8) sums executed *across* DataNodes:
//
//   * leaf nodes emit coeff × block terms where the blocks already live,
//   * a rack-local aggregator XOR-combines its rack's terms so only one
//     combined chunk per requested output crosses the core switch per rack,
//   * the root finishes each output from the rack partials plus its own
//     local terms.
//
// GF(2^8) addition is XOR — associative and commutative — so regrouping the
// sum by rack is byte-identical to the single-node computation; the
// validator below proves it symbolically for every built DAG.
//
// The IR is deliberately tiny: four node kinds, each producing one
// symbol-sized value (a whole block, or a CRS packet when callers lower at
// packet granularity).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "erasure/matrix.h"
#include "topology/topology.h"

namespace ear::ecdag {

enum class DagOp : uint8_t {
  kFetch,      // reads input `input` on the node that stores it
  kMulAdd,     // coeff × child (a Fetch), evaluated at `where`
  kAggregate,  // XOR of its children, evaluated at `where`
  kOutput,     // delivers its child's value as output `output` at `where`
};

struct DagNode {
  DagOp op = DagOp::kFetch;
  NodeId where = kInvalidNode;  // cluster node holding / computing the value
  int input = -1;               // kFetch: index into EcDag::input_nodes
  int output = -1;              // kOutput: index into EcDag::output_nodes
  uint8_t coeff = 1;            // kMulAdd: GF(2^8) multiplier
  std::vector<int> children;    // producer node indices (children precede)
};

struct EcDag {
  int n_in = 0;
  int n_out = 0;
  NodeId root = kInvalidNode;
  std::vector<NodeId> input_nodes;   // where input i lives
  std::vector<NodeId> output_nodes;  // where output j must be delivered
  std::vector<DagNode> nodes;        // topologically ordered
  std::vector<int> outputs;          // indices of the kOutput nodes, in order
};

struct BuildOptions {
  // Aggregate every rack with >= 2 contributors even when shipping partials
  // would not beat shipping the raw blocks (aggregator-placement tests).
  // Default: a rack aggregates iff it would ship strictly fewer partial
  // chunks than raw blocks.
  bool force_aggregate = false;
};

// Lowers `coeffs` (n_out x n_in: output j = sum_i coeffs(j,i) * input i)
// into a rack-aware aggregation tree rooted at `root`:
//
//   * inputs in the root's own rack (or on the root itself) are consumed at
//     the root directly — aggregating them saves no core-link bytes;
//   * every other rack ships, per output with a nonzero local contribution,
//     one partial sum computed at a deterministic aggregator (the
//     lowest-numbered contributing node) — iff that beats shipping its raw
//     blocks (see BuildOptions::force_aggregate);
//   * outputs are delivered from the root to `output_nodes`.
//
// Inputs whose coefficient column is all-zero are never fetched or moved.
EcDag build_aggregation_dag(const erasure::Matrix& coeffs,
                            const std::vector<NodeId>& input_nodes,
                            const std::vector<NodeId>& output_nodes,
                            NodeId root, const Topology& topo,
                            const BuildOptions& opts = {});

// Symbolically evaluates the DAG (accumulating per-input GF coefficient
// vectors bottom-up) and checks it computes exactly `coeffs`, plus the
// structural invariants: topological child order, fetch locations matching
// input_nodes, every output delivered exactly once at its destination.
// Returns "" when valid, else a description of the first defect.
std::string validate(const EcDag& dag, const erasure::Matrix& coeffs);

// One value movement between cluster nodes, per symbol-sized chunk.
struct Hop {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  int producer = -1;  // DAG node whose value moves
  bool cross = false;  // crosses the core switch
};

// The transport schedule of a DAG, grouped for pipelined execution:
//
//   * streams — one ordered hop chain per source rack with remote traffic:
//     first the leaf->aggregator gathers (intra-rack), then the
//     aggregator->root partial forwards (or the raw leaf->root hops when the
//     rack does not aggregate).  Streams are independent of each other, so
//     an executor runs one pipeline lane per stream and a simulator one
//     chained flow per stream.
//   * scatter — root->destination delivery of finished outputs.
//   * local_inputs — inputs consumed on the node that stores them (no hop;
//     chargeable as local disk reads).
//
// Hops are deduplicated: a value consumed by several DAG nodes on the same
// cluster node crosses the wire once.
struct FlowPlan {
  std::vector<std::vector<Hop>> streams;
  std::vector<Hop> scatter;
  std::vector<int> local_inputs;
  int cross_hops = 0;  // per-symbol totals, scatter included
  int intra_hops = 0;
};

FlowPlan plan_flows(const EcDag& dag, const Topology& topo);

}  // namespace ear::ecdag
