#include "ecdag/dag.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "gf256/gf256.h"

namespace ear::ecdag {

namespace {

bool column_is_zero(const erasure::Matrix& coeffs, int col) {
  for (int r = 0; r < coeffs.rows(); ++r) {
    if (coeffs.at(r, col) != 0) return false;
  }
  return true;
}

}  // namespace

EcDag build_aggregation_dag(const erasure::Matrix& coeffs,
                            const std::vector<NodeId>& input_nodes,
                            const std::vector<NodeId>& output_nodes,
                            NodeId root, const Topology& topo,
                            const BuildOptions& opts) {
  const int n_in = coeffs.cols();
  const int n_out = coeffs.rows();
  EcDag dag;
  dag.n_in = n_in;
  dag.n_out = n_out;
  dag.root = root;
  dag.input_nodes = input_nodes;
  dag.output_nodes = output_nodes;

  // One fetch per used input (all-zero columns are never moved).
  std::vector<int> fetch_idx(static_cast<size_t>(n_in), -1);
  for (int i = 0; i < n_in; ++i) {
    if (column_is_zero(coeffs, i)) continue;
    DagNode fetch;
    fetch.op = DagOp::kFetch;
    fetch.where = input_nodes[static_cast<size_t>(i)];
    fetch.input = i;
    fetch_idx[static_cast<size_t>(i)] = static_cast<int>(dag.nodes.size());
    dag.nodes.push_back(std::move(fetch));
  }

  // Group the used inputs by rack.  The root's own rack never aggregates:
  // its blocks reach the root without touching the core switch, so a
  // partial sum there saves nothing.
  const RackId root_rack = topo.rack_of(root);
  std::map<RackId, std::vector<int>> by_rack;  // remote racks only
  std::vector<int> root_side;                  // consumed directly at root
  for (int i = 0; i < n_in; ++i) {
    if (fetch_idx[static_cast<size_t>(i)] < 0) continue;
    const RackId r = topo.rack_of(input_nodes[static_cast<size_t>(i)]);
    if (r == root_rack) {
      root_side.push_back(i);
    } else {
      by_rack[r].push_back(i);
    }
  }

  // Per aggregated rack: partial-sum Aggregates, one per output the rack
  // contributes to.  rack_partials[j] collects them for each output j.
  std::vector<std::vector<int>> rack_partials(static_cast<size_t>(n_out));
  for (auto& [rack, inputs] : by_rack) {
    // A rack ships one partial per output it touches; aggregation pays off
    // iff that is fewer chunks than its raw blocks.
    int touched_outputs = 0;
    for (int j = 0; j < n_out; ++j) {
      for (const int i : inputs) {
        if (coeffs.at(j, i) != 0) {
          ++touched_outputs;
          break;
        }
      }
    }
    const bool aggregate =
        opts.force_aggregate
            ? inputs.size() >= 2
            : touched_outputs < static_cast<int>(inputs.size());
    if (!aggregate) {
      root_side.insert(root_side.end(), inputs.begin(), inputs.end());
      continue;
    }
    // Deterministic aggregator: the lowest-numbered node already holding a
    // contributing block (its own term needs no network hop).
    NodeId agg = input_nodes[static_cast<size_t>(inputs.front())];
    for (const int i : inputs) {
      agg = std::min(agg, input_nodes[static_cast<size_t>(i)]);
    }
    for (int j = 0; j < n_out; ++j) {
      std::vector<int> terms;
      for (const int i : inputs) {
        const uint8_t c = coeffs.at(j, i);
        if (c == 0) continue;
        DagNode mul;
        mul.op = DagOp::kMulAdd;
        mul.where = agg;
        mul.coeff = c;
        mul.children = {fetch_idx[static_cast<size_t>(i)]};
        terms.push_back(static_cast<int>(dag.nodes.size()));
        dag.nodes.push_back(std::move(mul));
      }
      if (terms.empty()) continue;
      DagNode partial;
      partial.op = DagOp::kAggregate;
      partial.where = agg;
      partial.children = std::move(terms);
      rack_partials[static_cast<size_t>(j)].push_back(
          static_cast<int>(dag.nodes.size()));
      dag.nodes.push_back(std::move(partial));
    }
  }

  // Root side: per output, multiply the directly-consumed inputs at the
  // root, then one final Aggregate combining them with the rack partials.
  for (int j = 0; j < n_out; ++j) {
    std::vector<int> terms;
    for (const int i : root_side) {
      const uint8_t c = coeffs.at(j, i);
      if (c == 0) continue;
      DagNode mul;
      mul.op = DagOp::kMulAdd;
      mul.where = root;
      mul.coeff = c;
      mul.children = {fetch_idx[static_cast<size_t>(i)]};
      terms.push_back(static_cast<int>(dag.nodes.size()));
      dag.nodes.push_back(std::move(mul));
    }
    terms.insert(terms.end(), rack_partials[static_cast<size_t>(j)].begin(),
                 rack_partials[static_cast<size_t>(j)].end());
    DagNode final_sum;
    final_sum.op = DagOp::kAggregate;
    final_sum.where = root;
    final_sum.children = std::move(terms);
    const int final_idx = static_cast<int>(dag.nodes.size());
    dag.nodes.push_back(std::move(final_sum));

    DagNode out;
    out.op = DagOp::kOutput;
    out.where = output_nodes[static_cast<size_t>(j)];
    out.output = j;
    out.children = {final_idx};
    dag.outputs.push_back(static_cast<int>(dag.nodes.size()));
    dag.nodes.push_back(std::move(out));
  }
  return dag;
}

std::string validate(const EcDag& dag, const erasure::Matrix& coeffs) {
  if (dag.n_in != coeffs.cols() || dag.n_out != coeffs.rows()) {
    return "dag dimensions do not match the coefficient matrix";
  }
  if (static_cast<int>(dag.input_nodes.size()) != dag.n_in ||
      static_cast<int>(dag.output_nodes.size()) != dag.n_out) {
    return "input_nodes/output_nodes sizes do not match n_in/n_out";
  }
  const auto id = [](int idx) { return "node " + std::to_string(idx); };

  // Bottom-up symbolic evaluation: vec[idx][i] is node idx's GF coefficient
  // on input i.
  std::vector<std::vector<uint8_t>> vec(
      dag.nodes.size(), std::vector<uint8_t>(static_cast<size_t>(dag.n_in)));
  std::vector<int> seen_output(static_cast<size_t>(dag.n_out), -1);
  for (size_t idx = 0; idx < dag.nodes.size(); ++idx) {
    const DagNode& node = dag.nodes[idx];
    for (const int child : node.children) {
      if (child < 0 || static_cast<size_t>(child) >= idx) {
        return id(static_cast<int>(idx)) + " has non-topological child " +
               std::to_string(child);
      }
    }
    switch (node.op) {
      case DagOp::kFetch: {
        if (node.input < 0 || node.input >= dag.n_in) {
          return id(static_cast<int>(idx)) + " fetches unknown input";
        }
        if (!node.children.empty()) {
          return id(static_cast<int>(idx)) + " fetch has children";
        }
        if (node.where != dag.input_nodes[static_cast<size_t>(node.input)]) {
          return id(static_cast<int>(idx)) +
                 " fetches input " + std::to_string(node.input) +
                 " away from its node";
        }
        vec[idx][static_cast<size_t>(node.input)] = 1;
        break;
      }
      case DagOp::kMulAdd: {
        if (node.children.size() != 1) {
          return id(static_cast<int>(idx)) + " muladd needs exactly 1 child";
        }
        const auto& child = vec[static_cast<size_t>(node.children[0])];
        for (size_t i = 0; i < child.size(); ++i) {
          vec[idx][i] = gf::mul(node.coeff, child[i]);
        }
        break;
      }
      case DagOp::kAggregate: {
        for (const int child : node.children) {
          const auto& cv = vec[static_cast<size_t>(child)];
          for (size_t i = 0; i < cv.size(); ++i) {
            vec[idx][i] = gf::add(vec[idx][i], cv[i]);
          }
        }
        break;
      }
      case DagOp::kOutput: {
        if (node.output < 0 || node.output >= dag.n_out) {
          return id(static_cast<int>(idx)) + " delivers unknown output";
        }
        if (node.children.size() != 1) {
          return id(static_cast<int>(idx)) + " output needs exactly 1 child";
        }
        if (node.where !=
            dag.output_nodes[static_cast<size_t>(node.output)]) {
          return id(static_cast<int>(idx)) + " delivers output " +
                 std::to_string(node.output) + " to the wrong node";
        }
        if (seen_output[static_cast<size_t>(node.output)] >= 0) {
          return "output " + std::to_string(node.output) +
                 " delivered twice";
        }
        seen_output[static_cast<size_t>(node.output)] =
            static_cast<int>(idx);
        const auto& cv = vec[static_cast<size_t>(node.children[0])];
        for (int i = 0; i < dag.n_in; ++i) {
          if (cv[static_cast<size_t>(i)] != coeffs.at(node.output, i)) {
            return "output " + std::to_string(node.output) +
                   " computes the wrong coefficient on input " +
                   std::to_string(i);
          }
        }
        break;
      }
    }
  }
  for (int j = 0; j < dag.n_out; ++j) {
    if (seen_output[static_cast<size_t>(j)] < 0) {
      return "output " + std::to_string(j) + " never delivered";
    }
  }
  return "";
}

FlowPlan plan_flows(const EcDag& dag, const Topology& topo) {
  FlowPlan plan;
  std::map<RackId, std::vector<Hop>> gather;
  std::set<std::pair<int, NodeId>> moved;  // (producer, consumer node)
  std::vector<bool> fetch_moved(dag.nodes.size(), false);

  for (size_t idx = 0; idx < dag.nodes.size(); ++idx) {
    const DagNode& consumer = dag.nodes[idx];
    for (const int child : consumer.children) {
      const DagNode& producer = dag.nodes[static_cast<size_t>(child)];
      if (producer.where == consumer.where) continue;
      if (!moved.insert({child, consumer.where}).second) continue;
      Hop hop;
      hop.src = producer.where;
      hop.dst = consumer.where;
      hop.producer = child;
      hop.cross = !topo.same_rack(hop.src, hop.dst);
      (hop.cross ? plan.cross_hops : plan.intra_hops) += 1;
      if (producer.op == DagOp::kFetch) {
        fetch_moved[static_cast<size_t>(child)] = true;
      }
      if (consumer.op == DagOp::kOutput) {
        plan.scatter.push_back(hop);
      } else {
        gather[topo.rack_of(hop.src)].push_back(hop);
      }
    }
  }

  // Per-rack gather chains.  Hops are in DAG-node order within a rack:
  // fetch indices precede the rack's partial aggregates, so the raw gathers
  // run before the partial forwards — the store-and-forward order a lane
  // executes per chunk.
  for (auto& [rack, hops] : gather) {
    std::sort(hops.begin(), hops.end(), [](const Hop& a, const Hop& b) {
      return a.producer < b.producer;
    });
    plan.streams.push_back(std::move(hops));
  }

  // Inputs consumed where they live: fetches that never crossed a wire.
  for (size_t idx = 0; idx < dag.nodes.size(); ++idx) {
    const DagNode& node = dag.nodes[idx];
    if (node.op == DagOp::kFetch && !fetch_moved[idx]) {
      plan.local_inputs.push_back(node.input);
    }
  }
  return plan;
}

}  // namespace ear::ecdag
