#include "ecdag/executor.h"

#include <atomic>
#include <cstring>
#include <map>
#include <stdexcept>
#include <vector>

#include "datapath/pipeline.h"
#include "gf256/gf256.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ear::ecdag {

namespace {

// One XOR term of an aggregate: a source buffer plus the GF multiplier the
// wire program applies before accumulating.
struct Term {
  int fetch = -1;    // >= 0: inputs[fetch] window
  int scratch = -1;  // >= 0: an earlier aggregate's scratch buffer
  uint8_t coeff = 1;
};

// An aggregate lowered for chunked execution: accumulate `terms` into either
// an output window (`output` >= 0) or a per-node scratch buffer.
struct Step {
  int node = -1;
  int output = -1;
  std::vector<Term> terms;
};

}  // namespace

ExecStats execute(const EcDag& dag, const Topology& topo,
                  const std::vector<erasure::BlockView>& inputs,
                  const std::vector<erasure::MutBlockView>& outputs,
                  const TransferFn& transfer, const LocalReadFn& local_read,
                  const ExecOptions& opts) {
  if (static_cast<int>(inputs.size()) != dag.n_in ||
      static_cast<int>(outputs.size()) != dag.n_out) {
    throw std::invalid_argument("ecdag::execute: buffer counts mismatch dag");
  }
  if (opts.unit_size <= 0) {
    throw std::invalid_argument("ecdag::execute: unit_size must be positive");
  }

  static obs::Counter* ctr_execs =
      &obs::Registry::instance().counter("ecdag.executions");
  static obs::Counter* ctr_partials =
      &obs::Registry::instance().counter("ecdag.partial_chunks");
  static obs::Counter* ctr_cross =
      &obs::Registry::instance().counter("ecdag.cross_rack_bytes");
  static obs::Counter* ctr_intra =
      &obs::Registry::instance().counter("ecdag.intra_rack_bytes");

  const FlowPlan plan = plan_flows(dag, topo);
  const datapath::ChunkPlan cp{opts.unit_size, opts.preferred_chunk};
  const int chunks = cp.count();

  // ---- Compile the DAG into the per-chunk compute program. --------------
  // Aggregates whose sole consumer is an Output accumulate straight into the
  // destination window (zero-copy); every other aggregate gets a chunk-sized
  // scratch buffer.  MulAdd nodes fold into their consumer as a coefficient.
  std::vector<int> sole_output(dag.nodes.size(), -1);
  std::vector<int> consumers(dag.nodes.size(), 0);
  for (size_t idx = 0; idx < dag.nodes.size(); ++idx) {
    for (const int child : dag.nodes[idx].children) {
      consumers[static_cast<size_t>(child)] += 1;
      if (dag.nodes[idx].op == DagOp::kOutput) {
        sole_output[static_cast<size_t>(child)] = dag.nodes[idx].output;
      }
    }
  }

  const size_t max_chunk = cp.len(0);
  std::map<int, std::vector<uint8_t>> scratch;  // aggregate node -> buffer
  std::vector<Step> program;
  const auto term_of = [&](int child_idx) {
    const DagNode& child = dag.nodes[static_cast<size_t>(child_idx)];
    Term t;
    switch (child.op) {
      case DagOp::kFetch:
        t.fetch = child.input;
        break;
      case DagOp::kMulAdd: {
        t.coeff = child.coeff;
        const DagNode& src = dag.nodes[static_cast<size_t>(child.children[0])];
        if (src.op == DagOp::kFetch) {
          t.fetch = src.input;
        } else {
          t.scratch = child.children[0];
        }
        break;
      }
      case DagOp::kAggregate:
        t.scratch = child_idx;
        break;
      case DagOp::kOutput:
        throw std::invalid_argument("ecdag::execute: output used as input");
    }
    return t;
  };
  for (size_t idx = 0; idx < dag.nodes.size(); ++idx) {
    const DagNode& node = dag.nodes[idx];
    if (node.op != DagOp::kAggregate) continue;
    Step step;
    step.node = static_cast<int>(idx);
    if (consumers[idx] == 1 && sole_output[idx] >= 0) {
      step.output = sole_output[idx];
    } else {
      scratch[static_cast<int>(idx)].resize(max_chunk);
    }
    step.terms.reserve(node.children.size());
    for (const int child : node.children) step.terms.push_back(term_of(child));
    program.push_back(std::move(step));
  }

  // Validate the buffers the program actually touches.
  for (const Step& step : program) {
    for (const Term& t : step.terms) {
      if (t.fetch >= 0 &&
          inputs[static_cast<size_t>(t.fetch)].size() !=
              static_cast<size_t>(opts.unit_size)) {
        throw std::invalid_argument("ecdag::execute: input size mismatch");
      }
    }
  }
  for (const auto& out : outputs) {
    if (out.size() != static_cast<size_t>(opts.unit_size)) {
      throw std::invalid_argument("ecdag::execute: output size mismatch");
    }
  }

  // ---- Transport lanes: one gather stream per source rack, plus an -------
  // optional disk-read lane for inputs consumed where they live.
  ExecStats stats;
  std::atomic<int64_t> cross_bytes{0};
  std::atomic<int64_t> intra_bytes{0};
  std::atomic<int64_t> transfers{0};

  std::vector<std::function<void(int)>> lanes;
  for (const auto& stream : plan.streams) {
    lanes.push_back([&, &stream = stream](int c) {
      const Bytes len = static_cast<Bytes>(cp.len(c));
      for (const Hop& hop : stream) {
        transfer(hop.src, hop.dst, len);
        (hop.cross ? cross_bytes : intra_bytes)
            .fetch_add(len, std::memory_order_relaxed);
        transfers.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  if (opts.charge_local_reads && local_read && !plan.local_inputs.empty()) {
    lanes.push_back([&](int c) {
      const Bytes len = static_cast<Bytes>(cp.len(c));
      for (const int input : plan.local_inputs) {
        local_read(dag.input_nodes[static_cast<size_t>(input)], len);
      }
    });
  }

  const auto compute = [&](int c) {
    const size_t off = cp.offset(c);
    const size_t len = cp.len(c);
    // Each step's term list runs as one multi-source kernel sweep: the
    // destination window is written once per step instead of once per term.
    std::vector<const uint8_t*> srcs;
    std::vector<uint8_t> coeffs;
    for (const Step& step : program) {
      erasure::MutBlockView dst =
          step.output >= 0
              ? outputs[static_cast<size_t>(step.output)].subspan(off, len)
              : erasure::MutBlockView(scratch[step.node]).subspan(0, len);
      srcs.clear();
      coeffs.clear();
      srcs.reserve(step.terms.size());
      coeffs.reserve(step.terms.size());
      for (const Term& t : step.terms) {
        // Fetch windows track the chunk offset; scratch buffers are
        // chunk-local and always start at 0.
        srcs.push_back(t.fetch >= 0
                           ? inputs[static_cast<size_t>(t.fetch)].data() + off
                           : scratch[t.scratch].data());
        coeffs.push_back(t.coeff);
      }
      gf::mul_add_multi(srcs, coeffs, dst, /*accumulate=*/false);
      if (step.output < 0) {
        stats.partial_chunks += 1;
      }
    }
  };

  std::function<void(int)> upload;
  if (!plan.scatter.empty()) {
    upload = [&](int c) {
      const Bytes len = static_cast<Bytes>(cp.len(c));
      for (const Hop& hop : plan.scatter) {
        transfer(hop.src, hop.dst, len);
        (hop.cross ? cross_bytes : intra_bytes)
            .fetch_add(len, std::memory_order_relaxed);
        transfers.fetch_add(1, std::memory_order_relaxed);
      }
    };
  }

  {
    obs::Span span("ecdag.execute", "ecdag");
    span.arg("chunks", chunks);
    span.arg("streams", static_cast<int>(plan.streams.size()));
    span.arg("cross_hops", plan.cross_hops);
    if (lanes.empty()) {
      datapath::StagedPipeline::run(chunks, [](int) {}, compute, upload);
    } else {
      const int n_lanes = static_cast<int>(lanes.size());
      datapath::StagedPipeline::run_fanout(
          chunks, n_lanes,
          [&lanes](int l, int c) { lanes[static_cast<size_t>(l)](c); },
          compute, upload);
    }
  }

  stats.cross_rack_bytes = cross_bytes.load();
  stats.intra_rack_bytes = intra_bytes.load();
  stats.transfers = transfers.load();
  stats.lanes = static_cast<int>(lanes.size());
  ctr_execs->add(1);
  ctr_partials->add(stats.partial_chunks);
  ctr_cross->add(stats.cross_rack_bytes);
  ctr_intra->add(stats.intra_rack_bytes);
  return stats;
}

}  // namespace ear::ecdag
