// Chunked executor for ecdag DAGs (see dag.h).
//
// Maps a FlowPlan onto the staged data-path pipeline: one fan-out lane per
// gather stream (leaf->aggregator raws, then aggregator->root partials, in
// store-and-forward order per chunk), the compiled GF(2^8) partial-sum
// program as the compute stage on the calling thread, and the root->output
// scatter as the upload stage — so for chunk c the rack gathers of chunk
// c+1 overlap the compute of chunk c and the delivery of chunk c-1, exactly
// like the legacy encode pipeline but with the fan-in spread across racks.
//
// The executor moves no bytes itself: callers inject the transport through
// plain function hooks, so the same code drives the MiniCfs testbed
// (ThrottledTransport), unit tests (counting stubs), and anything else,
// without this library depending on cfs.
//
// Byte-identity contract: the compiled program computes output j as
// XOR-of-partial-sums of coeff × input terms.  GF(2^8) addition is XOR —
// associative and commutative — so the result is byte-identical to the
// single-node sum regardless of how racks group the terms, and chunked
// evaluation is byte-identical because every kernel is bytewise.
#pragma once

#include <functional>

#include "common/units.h"
#include "ecdag/dag.h"
#include "erasure/rs.h"

namespace ear::ecdag {

// Moves `len` bytes src -> dst (blocking; may throw to abort the run).
using TransferFn = std::function<void(NodeId src, NodeId dst, Bytes len)>;
// Charges a local disk read of `len` bytes on `node`.
using LocalReadFn = std::function<void(NodeId node, Bytes len)>;

struct ExecOptions {
  Bytes unit_size = 0;         // bytes per input/output symbol
  Bytes preferred_chunk = 0;   // pipeline granularity; 0 => one-shot
  // Charge local_read for inputs consumed on the node storing them (the
  // encode path mirrors the legacy encoder's disk reads; degraded reads
  // historically charge nothing for reader-local sources).
  bool charge_local_reads = false;
};

struct ExecStats {
  int64_t cross_rack_bytes = 0;  // bytes shipped over the core switch
  int64_t intra_rack_bytes = 0;
  int64_t transfers = 0;         // deduplicated hops x chunks issued
  int64_t partial_chunks = 0;    // rack-partial chunk computations
  int lanes = 0;                 // gather streams run as pipeline lanes
};

// Executes `dag` over real bytes: inputs[i] / outputs[j] correspond to
// EcDag::input_nodes / output_nodes and must all be opts.unit_size long.
// Transfers abort the pipeline on throw (the exception is rethrown after
// the lanes drain); local_read may be null when charge_local_reads is off.
ExecStats execute(const EcDag& dag, const Topology& topo,
                  const std::vector<erasure::BlockView>& inputs,
                  const std::vector<erasure::MutBlockView>& outputs,
                  const TransferFn& transfer, const LocalReadFn& local_read,
                  const ExecOptions& opts);

}  // namespace ear::ecdag
