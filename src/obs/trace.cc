#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

namespace ear::obs {

namespace {

// Per-buffer cap: a runaway run stops recording rather than exhausting
// memory; drops are counted and surfaced via trace_dropped_events().
constexpr size_t kMaxEventsPerThread = 1 << 22;  // ~4M events (~600 MB worst)
constexpr size_t kChunk = 4096;

struct ThreadBuffer {
  std::mutex mu;
  int32_t tid = 0;
  std::string name;
  std::vector<TraceEvent> events;
};

struct Recorder {
  std::mutex registry_mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  int32_t next_tid = 1;
  std::map<int, std::string> sim_tracks;
  std::atomic<int64_t> dropped{0};
};

Recorder& recorder() {
  static Recorder* r = new Recorder();  // never destroyed: worker threads
  return *r;                            // may outlive static teardown
}

ThreadBuffer& local_buffer() {
  thread_local ThreadBuffer* buf = nullptr;
  if (buf == nullptr) {
    Recorder& rec = recorder();
    std::lock_guard<std::mutex> lock(rec.registry_mu);
    rec.buffers.push_back(std::make_unique<ThreadBuffer>());
    buf = rec.buffers.back().get();
    buf->tid = rec.next_tid++;
  }
  return *buf;
}

void copy_str(char* dst, size_t cap, const char* src) {
  std::strncpy(dst, src == nullptr ? "" : src, cap - 1);
  dst[cap - 1] = '\0';
}

void append(TraceEvent&& ev) {
  ThreadBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  if (buf.events.size() >= kMaxEventsPerThread) {
    recorder().dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (buf.events.empty()) buf.events.reserve(kChunk);
  buf.events.push_back(std::move(ev));
}

TraceEvent make_event(const char* name, const char* cat, char ph, int32_t pid,
                      int32_t tid, int64_t ts_us, int64_t dur_us,
                      const TraceArg* args, size_t arg_count) {
  TraceEvent ev;
  copy_str(ev.name, TraceEvent::kNameLen, name);
  copy_str(ev.cat, TraceEvent::kCatLen, cat);
  ev.ph = ph;
  ev.pid = pid;
  ev.tid = tid;
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.arg_count = static_cast<int32_t>(
      std::min<size_t>(arg_count, TraceEvent::kMaxArgs));
  for (int32_t i = 0; i < ev.arg_count; ++i) {
    copy_str(ev.arg_keys[i], TraceEvent::kKeyLen, args[i].key);
    ev.arg_values[i] = args[i].value;
  }
  return ev;
}

int64_t sim_us(Seconds t) { return static_cast<int64_t>(t * 1e6); }

}  // namespace

void trace_complete(const char* name, const char* cat, int64_t ts_us,
                    int64_t dur_us, const TraceArg* args, size_t arg_count) {
  if (!trace_enabled()) return;
  append(make_event(name, cat, 'X', kRealPid, local_buffer().tid, ts_us,
                    dur_us, args, arg_count));
}

void trace_instant(const char* name, const char* cat,
                   std::initializer_list<TraceArg> args) {
  if (!trace_enabled()) return;
  append(make_event(name, cat, 'i', kRealPid, local_buffer().tid, now_us(), 0,
                    args.begin(), args.size()));
}

void trace_counter(const char* name, std::initializer_list<TraceArg> args) {
  if (!trace_enabled()) return;
  append(make_event(name, "counter", 'C', kRealPid, 0, now_us(), 0,
                    args.begin(), args.size()));
}

void sim_complete(const char* name, const char* cat, Seconds start,
                  Seconds end, int track, std::initializer_list<TraceArg> args) {
  if (!trace_enabled()) return;
  append(make_event(name, cat, 'X', kSimPid, track, sim_us(start),
                    sim_us(end) - sim_us(start), args.begin(), args.size()));
}

void sim_instant(const char* name, const char* cat, Seconds t, int track,
                 std::initializer_list<TraceArg> args) {
  if (!trace_enabled()) return;
  append(make_event(name, cat, 'i', kSimPid, track, sim_us(t), 0, args.begin(),
                    args.size()));
}

void sim_counter(const char* name, Seconds t,
                 std::initializer_list<TraceArg> args) {
  if (!trace_enabled()) return;
  append(make_event(name, "counter", 'C', kSimPid, 0, sim_us(t), 0,
                    args.begin(), args.size()));
}

void set_current_thread_name(const std::string& name) {
  ThreadBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.name = name;
}

void set_sim_track_name(int track, const std::string& name) {
  Recorder& rec = recorder();
  std::lock_guard<std::mutex> lock(rec.registry_mu);
  rec.sim_tracks[track] = name;
}

size_t trace_event_count() {
  Recorder& rec = recorder();
  std::lock_guard<std::mutex> lock(rec.registry_mu);
  size_t total = 0;
  for (const auto& buf : rec.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    total += buf->events.size();
  }
  return total;
}

std::vector<TraceEvent> trace_snapshot() {
  Recorder& rec = recorder();
  std::lock_guard<std::mutex> lock(rec.registry_mu);
  std::vector<TraceEvent> out;
  for (const auto& buf : rec.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    out.insert(out.end(), buf->events.begin(), buf->events.end());
  }
  return out;
}

bool trace_has_event(const std::string& name) {
  Recorder& rec = recorder();
  std::lock_guard<std::mutex> lock(rec.registry_mu);
  for (const auto& buf : rec.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    for (const TraceEvent& ev : buf->events) {
      if (name == ev.name) return true;
    }
  }
  return false;
}

int64_t trace_dropped_events() {
  return recorder().dropped.load(std::memory_order_relaxed);
}

void trace_reset() {
  Recorder& rec = recorder();
  std::lock_guard<std::mutex> lock(rec.registry_mu);
  for (const auto& buf : rec.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    buf->events.clear();
    buf->events.shrink_to_fit();
    buf->name.clear();
  }
  rec.sim_tracks.clear();
  rec.dropped.store(0, std::memory_order_relaxed);
}

std::vector<std::pair<int32_t, std::string>> real_thread_names() {
  Recorder& rec = recorder();
  std::lock_guard<std::mutex> lock(rec.registry_mu);
  std::vector<std::pair<int32_t, std::string>> out;
  for (const auto& buf : rec.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    if (!buf->name.empty()) out.emplace_back(buf->tid, buf->name);
  }
  return out;
}

std::vector<std::pair<int32_t, std::string>> sim_track_names() {
  Recorder& rec = recorder();
  std::lock_guard<std::mutex> lock(rec.registry_mu);
  return {rec.sim_tracks.begin(), rec.sim_tracks.end()};
}

}  // namespace ear::obs
