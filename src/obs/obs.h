// Observability runtime switch and clocks (see DESIGN.md "Observability").
//
// The subsystem is globally off by default: every instrumentation site is
// gated on a relaxed atomic load, so the disabled path costs one branch and
// no allocation.  Benches and tests opt in with obs::init(); the flags stay
// process-global because instrumentation lives in hot paths shared by every
// component (transports, the sim engine, the encoder).
//
// Two time bases coexist:
//  * real time   — now_us(), microseconds on the steady clock since the
//    process trace epoch; used by testbed threads (pid kRealPid in traces);
//  * virtual time — simulated seconds from sim::Engine::now(), converted to
//    microseconds at record time (pid kSimPid in traces).
#pragma once

#include <atomic>
#include <cstdint>

#include "common/units.h"

namespace ear::obs {

struct Config {
  bool metrics = false;  // collect registry counters/gauges/histograms
  bool trace = false;    // record trace events (spans, instants, counters)
  // Sampling period of the ThrottledTransport link-utilization sampler;
  // <= 0 disables the sampler even when tracing is on.
  Seconds link_sample_period = 0.05;
};

// Enables collection according to `config`.  Call before constructing the
// components to observe (ThrottledTransport starts its link sampler at
// construction time).  Safe to call more than once.
void init(const Config& config);

// Disables all collection.  Already-recorded data survives until
// trace_reset() / Registry::reset_values().
void shutdown();

const Config& config();

namespace internal {
extern std::atomic<bool> g_metrics_enabled;
extern std::atomic<bool> g_trace_enabled;
}  // namespace internal

inline bool metrics_enabled() {
  return internal::g_metrics_enabled.load(std::memory_order_relaxed);
}
inline bool trace_enabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

// Microseconds since the process trace epoch (steady clock, pinned on first
// use; init() pins it early so all traced components share one origin).
int64_t now_us();

}  // namespace ear::obs
