#include "obs/export.h"

#include <cerrno>
#include <cstdio>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ear::obs {

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_event(std::string& out, const TraceEvent& ev) {
  out += "{\"name\":";
  append_json_string(out, ev.name);
  out += ",\"cat\":";
  append_json_string(out, ev.cat[0] == '\0' ? "default" : ev.cat);
  out += ",\"ph\":\"";
  out += ev.ph;
  out += "\",\"pid\":" + std::to_string(ev.pid) +
         ",\"tid\":" + std::to_string(ev.tid) +
         ",\"ts\":" + std::to_string(ev.ts_us);
  if (ev.ph == 'X') out += ",\"dur\":" + std::to_string(ev.dur_us);
  if (ev.ph == 'i') out += ",\"s\":\"t\"";  // instant scope: thread
  if (ev.arg_count > 0) {
    out += ",\"args\":{";
    for (int32_t i = 0; i < ev.arg_count; ++i) {
      if (i > 0) out += ",";
      append_json_string(out, ev.arg_keys[i]);
      out += ":" + std::to_string(ev.arg_values[i]);
    }
    out += "}";
  }
  out += "}";
}

void append_metadata(std::string& out, int32_t pid, int32_t tid,
                     const char* what, const std::string& name) {
  out += "{\"name\":\"";
  out += what;
  out += "\",\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
         ",\"tid\":" + std::to_string(tid) + ",\"args\":{\"name\":";
  append_json_string(out, name);
  out += "}}";
}

bool write_string(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  if (std::fclose(f) != 0) return false;
  return wrote;
}

}  // namespace

std::string chrome_trace_json() {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto emit = [&out, &first](const auto& fn) {
    if (!first) out += ",\n";
    first = false;
    fn();
  };

  emit([&] {
    append_metadata(out, kRealPid, 0, "process_name", "testbed (real time)");
  });
  emit([&] {
    append_metadata(out, kSimPid, 0, "process_name",
                    "simulator (virtual time)");
  });
  for (const auto& [tid, name] : real_thread_names()) {
    emit([&] { append_metadata(out, kRealPid, tid, "thread_name", name); });
  }
  for (const auto& [track, name] : sim_track_names()) {
    emit([&] { append_metadata(out, kSimPid, track, "thread_name", name); });
  }
  if (trace_dropped_events() > 0) {
    // Make truncation visible inside the trace itself.
    emit([&] {
      TraceEvent ev{};
      std::snprintf(ev.name, TraceEvent::kNameLen, "obs.dropped_events");
      std::snprintf(ev.cat, TraceEvent::kCatLen, "obs");
      ev.ph = 'C';
      ev.pid = kRealPid;
      ev.ts_us = now_us();
      ev.arg_count = 1;
      std::snprintf(ev.arg_keys[0], TraceEvent::kKeyLen, "dropped");
      ev.arg_values[0] = trace_dropped_events();
      append_event(out, ev);
    });
  }
  for (const TraceEvent& ev : trace_snapshot()) {
    emit([&] { append_event(out, ev); });
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool write_chrome_trace(const std::string& path) {
  return write_string(path, chrome_trace_json());
}

bool write_metrics_text(const std::string& path) {
  return write_string(path, Registry::instance().to_text());
}

bool write_metrics_json(const std::string& path) {
  return write_string(path, Registry::instance().to_json() + "\n");
}

}  // namespace ear::obs
