#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>

namespace ear::obs {

void Gauge::set_max(double v) {
  if (!metrics_enabled()) return;
  double cur = value_.load(std::memory_order_relaxed);
  while (v > cur &&
         !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::record(double v) {
  if (!metrics_enabled()) return;
  const size_t idx = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::instance() {
  static Registry* r = new Registry();  // never destroyed: references must
  return *r;                            // outlive static teardown order
}

Registry::Shard& Registry::shard_for(const std::string& name) {
  return shards_[std::hash<std::string>{}(name) % kShards];
}

Counter& Registry::counter(const std::string& name) {
  Shard& shard = shard_for(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& slot = shard.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  Shard& shard = shard_for(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& slot = shard.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  Shard& shard = shard_for(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& slot = shard.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

void Registry::reset_values() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& [name, c] : shard.counters) c->reset();
    for (auto& [name, g] : shard.gauges) g->reset();
    for (auto& [name, h] : shard.histograms) h->reset();
  }
}

namespace {

// Collects a stable (sorted) view of every instrument so the dumps are
// deterministic regardless of shard hashing.
struct Snapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  struct Hist {
    std::vector<double> bounds;
    std::vector<int64_t> buckets;
    int64_t count;
    double sum;
  };
  std::map<std::string, Hist> histograms;
};

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string Registry::to_text() const {
  Snapshot snap;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [name, c] : shard.counters) {
      snap.counters[name] = c->value();
    }
    for (const auto& [name, g] : shard.gauges) snap.gauges[name] = g->value();
    for (const auto& [name, h] : shard.histograms) {
      Snapshot::Hist hist;
      hist.bounds = h->bounds();
      for (size_t i = 0; i <= h->bounds().size(); ++i) {
        hist.buckets.push_back(h->bucket_count(i));
      }
      hist.count = h->count();
      hist.sum = h->sum();
      snap.histograms[name] = std::move(hist);
    }
  }

  std::string out;
  for (const auto& [name, v] : snap.counters) {
    out += "counter " + name + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    out += "gauge " + name + " " + format_double(v) + "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    out += "hist " + name + " count=" + std::to_string(h.count) +
           " sum=" + format_double(h.sum) + " buckets=";
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out += ",";
      out += (i < h.bounds.size() ? format_double(h.bounds[i])
                                  : std::string("inf")) +
             ":" + std::to_string(h.buckets[i]);
    }
    out += "\n";
  }
  return out;
}

std::string Registry::to_json() const {
  Snapshot snap;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [name, c] : shard.counters) {
      snap.counters[name] = c->value();
    }
    for (const auto& [name, g] : shard.gauges) snap.gauges[name] = g->value();
    for (const auto& [name, h] : shard.histograms) {
      Snapshot::Hist hist;
      hist.bounds = h->bounds();
      for (size_t i = 0; i <= h->bounds().size(); ++i) {
        hist.buckets.push_back(h->bucket_count(i));
      }
      hist.count = h->count();
      hist.sum = h->sum();
      snap.histograms[name] = std::move(hist);
    }
  }

  // Metric names are programmer-chosen identifiers (no quotes/control
  // characters), so plain quoting suffices here.
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + format_double(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":{\"bounds\":[";
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out += ",";
      out += format_double(h.bounds[i]);
    }
    out += "],\"counts\":[";
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(h.buckets[i]);
    }
    out += "],\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + format_double(h.sum) + "}";
  }
  out += "}}";
  return out;
}

}  // namespace ear::obs
