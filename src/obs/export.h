// Exporters for the observability subsystem:
//  * Chrome trace_event JSON — load the file in chrome://tracing or
//    https://ui.perfetto.dev (testbed wall-clock events appear as process
//    "testbed (real time)", simulator virtual-time events as "simulator
//    (virtual time)");
//  * plain-text / JSON metrics dumps of the global Registry.
//
// All writers return false on I/O failure and leave errno describing the
// error, so call sites can report strerror(errno).
#pragma once

#include <string>

namespace ear::obs {

// The full trace as a Chrome trace_event JSON document
// ({"traceEvents":[...]}), including process/thread metadata records.
std::string chrome_trace_json();

[[nodiscard]] bool write_chrome_trace(const std::string& path);
[[nodiscard]] bool write_metrics_text(const std::string& path);
[[nodiscard]] bool write_metrics_json(const std::string& path);

}  // namespace ear::obs
