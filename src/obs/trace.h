// Trace recorder: timestamped spans / instant events / counter series from
// real threads and from virtual sim time, exportable as Chrome trace_event
// JSON (chrome://tracing, Perfetto) — see obs/export.h.
//
// Events land in per-thread chunked buffers (one uncontended mutex each, no
// cross-thread traffic on the record path); buffers are owned by the global
// recorder, so events survive worker-thread joins until trace_reset().
// Every record function is a no-op (one branch) when tracing is disabled.
//
// Trace layout: real-time events carry pid kRealPid and the recording
// thread's tid; virtual-time events carry pid kSimPid and a caller-chosen
// `track` id (named via set_sim_track_name), so testbed wall-clock and
// simulator virtual-clock timelines stay visually separate.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/units.h"
#include "obs/obs.h"

namespace ear::obs {

inline constexpr int32_t kRealPid = 1;  // wall-clock (testbed threads)
inline constexpr int32_t kSimPid = 2;   // virtual time (sim engine)

struct TraceArg {
  const char* key;
  int64_t value;
};

struct TraceEvent {
  static constexpr size_t kNameLen = 48;
  static constexpr size_t kCatLen = 16;
  static constexpr size_t kKeyLen = 16;
  static constexpr int kMaxArgs = 3;

  char name[kNameLen];
  char cat[kCatLen];
  char ph = 'X';  // 'X' complete, 'i' instant, 'C' counter
  int32_t pid = kRealPid;
  int32_t tid = 0;
  int64_t ts_us = 0;
  int64_t dur_us = 0;  // 'X' only
  int32_t arg_count = 0;
  char arg_keys[kMaxArgs][kKeyLen];
  int64_t arg_values[kMaxArgs];
};

// ---- real-time events (timestamped with obs::now_us(), pid kRealPid) ----

void trace_complete(const char* name, const char* cat, int64_t ts_us,
                    int64_t dur_us, const TraceArg* args, size_t arg_count);
inline void trace_complete(const char* name, const char* cat, int64_t ts_us,
                           int64_t dur_us,
                           std::initializer_list<TraceArg> args = {}) {
  trace_complete(name, cat, ts_us, dur_us, args.begin(), args.size());
}
void trace_instant(const char* name, const char* cat,
                   std::initializer_list<TraceArg> args = {});
// Counter series; each arg is one stacked series in the Chrome counter row.
void trace_counter(const char* name, std::initializer_list<TraceArg> args);

// ---- virtual-time events (timestamps in simulated seconds, pid kSimPid) ----

void sim_complete(const char* name, const char* cat, Seconds start,
                  Seconds end, int track,
                  std::initializer_list<TraceArg> args = {});
void sim_instant(const char* name, const char* cat, Seconds t, int track,
                 std::initializer_list<TraceArg> args = {});
void sim_counter(const char* name, Seconds t,
                 std::initializer_list<TraceArg> args);

// RAII span on the calling thread.  Construction snapshots the clock only
// when tracing is enabled; destruction records a complete event.
class Span {
 public:
  Span(const char* name, const char* cat) {
    if (trace_enabled()) {
      name_ = name;
      cat_ = cat;
      start_ = now_us();
    }
  }
  ~Span() {
    if (start_ >= 0) {
      trace_complete(name_, cat_, start_, now_us() - start_, args_,
                     arg_count_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void arg(const char* key, int64_t value) {
    if (start_ >= 0 && arg_count_ < TraceEvent::kMaxArgs) {
      args_[arg_count_++] = TraceArg{key, value};
    }
  }

 private:
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  int64_t start_ = -1;
  size_t arg_count_ = 0;
  TraceArg args_[TraceEvent::kMaxArgs];
};

// Names the calling thread in trace exports (e.g. "map-slot-3").
void set_current_thread_name(const std::string& name);
// Names a virtual-time track (tid on pid kSimPid), e.g. "encode-proc-0".
void set_sim_track_name(int track, const std::string& name);

// ---- inspection / lifecycle ----

size_t trace_event_count();
// Events recorded so far, in per-thread order (not globally time-sorted).
std::vector<TraceEvent> trace_snapshot();
// True if any recorded event has this exact name (test convenience).
bool trace_has_event(const std::string& name);
// Events dropped because a thread buffer hit its cap (kept explicit so a
// truncated trace never masquerades as a complete one).
int64_t trace_dropped_events();
// Clears all recorded events, thread/track names and the dropped count.
void trace_reset();

// Thread/track names registered so far (for the exporter).
std::vector<std::pair<int32_t, std::string>> real_thread_names();
std::vector<std::pair<int32_t, std::string>> sim_track_names();

}  // namespace ear::obs
