#include "obs/obs.h"

#include <chrono>

namespace ear::obs {

namespace internal {
std::atomic<bool> g_metrics_enabled{false};
std::atomic<bool> g_trace_enabled{false};
}  // namespace internal

namespace {

using Clock = std::chrono::steady_clock;

Config g_config;

Clock::time_point epoch() {
  static const Clock::time_point e = Clock::now();
  return e;
}

}  // namespace

void init(const Config& config) {
  epoch();  // pin the trace origin before any component records
  g_config = config;
  internal::g_metrics_enabled.store(config.metrics, std::memory_order_relaxed);
  internal::g_trace_enabled.store(config.trace, std::memory_order_relaxed);
}

void shutdown() {
  internal::g_metrics_enabled.store(false, std::memory_order_relaxed);
  internal::g_trace_enabled.store(false, std::memory_order_relaxed);
}

const Config& config() { return g_config; }

int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               epoch())
      .count();
}

}  // namespace ear::obs
