// Lock-sharded metrics registry: named counters, gauges and fixed-bucket
// histograms cheap enough for hot paths.
//
// Registration (Registry::counter/gauge/histogram) takes a shard lock and
// may allocate; it is meant to run once per component at construction time.
// The returned reference is valid for the life of the process — the registry
// never deallocates an instrument (reset_values() only zeroes them) — so
// call sites cache the reference and the hot path is a relaxed atomic
// increment with no lock and no allocation.  When collection is disabled
// every mutator is a single branch.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/obs.h"

namespace ear::obs {

class Counter {
 public:
  void add(int64_t delta = 1) {
    if (!metrics_enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) {
    if (!metrics_enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  // Monotone-max convenience (e.g. high-water marks).
  void set_max(double v);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  // `bounds` are strictly increasing upper bounds: bucket i counts samples
  // v <= bounds[i] (and > bounds[i-1]); one implicit overflow bucket counts
  // v > bounds.back().
  explicit Histogram(std::vector<double> bounds);

  void record(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  // i in [0, bounds().size()]; the last index is the overflow bucket.
  int64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<int64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

class Registry {
 public:
  static Registry& instance();

  // Returns the instrument registered under `name`, creating it on first
  // use.  A histogram's bounds are fixed by the first registration; later
  // calls with the same name return the existing histogram unchanged.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  // Zeroes every value.  Registrations — and references handed out — stay
  // valid, so cached pointers in instrumented components never dangle.
  void reset_values();

  // "counter <name> <value>" / "gauge ..." / "hist <name> count=.. sum=..
  // buckets=le1:c1,..,inf:cN" lines, sorted by name.
  std::string to_text() const;
  // {"counters":{..},"gauges":{..},"histograms":{name:{bounds,counts,count,sum}}}
  std::string to_json() const;

 private:
  Registry() = default;

  static constexpr size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, std::unique_ptr<Counter>> counters;
    std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges;
    std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms;
  };

  Shard& shard_for(const std::string& name);

  std::array<Shard, kShards> shards_;
};

}  // namespace ear::obs
