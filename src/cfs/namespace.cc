#include "cfs/namespace.h"

#include <algorithm>
#include <stdexcept>

namespace ear::cfs {

namespace {

// Fibonacci hashing: block and stripe ids are sequential (stripes from the
// write path count downward), so a plain modulo would put neighbouring ids
// in neighbouring shards and every multi-shard commit of one stripe would
// touch the same few shards.  The golden-ratio multiply spreads them.
size_t mix(uint64_t id, size_t shards) {
  return static_cast<size_t>((id * 0x9e3779b97f4a7c15ULL) >> 32) % shards;
}

}  // namespace

NamespaceShards::NamespaceShards(int shards) {
  if (shards < 1) {
    throw std::invalid_argument("NamespaceShards: need at least one shard");
  }
  shards_.reserve(static_cast<size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

size_t NamespaceShards::block_shard(BlockId block) const {
  return mix(static_cast<uint64_t>(block), shards_.size());
}

size_t NamespaceShards::stripe_shard(StripeId stripe) const {
  return mix(static_cast<uint64_t>(stripe), shards_.size());
}

std::vector<std::unique_lock<std::mutex>> NamespaceShards::lock_shards(
    std::vector<size_t> indices) const {
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(indices.size());
  for (const size_t i : indices) {
    locks.emplace_back(shards_[i]->mu);
  }
  return locks;
}

// ------------------------------------------------------- block point ops

std::optional<std::vector<NodeId>> NamespaceShards::find_locations(
    BlockId block) const {
  const Shard& shard = *shards_[block_shard(block)];
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.locations.find(block);
  if (it == shard.locations.end()) return std::nullopt;
  return it->second;
}

void NamespaceShards::set_locations(BlockId block,
                                    std::vector<NodeId> locations) {
  Shard& shard = *shards_[block_shard(block)];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.locations[block] = std::move(locations);
}

bool NamespaceShards::update_locations(
    BlockId block, const std::function<void(std::vector<NodeId>&)>& fn) {
  Shard& shard = *shards_[block_shard(block)];
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.locations.find(block);
  if (it == shard.locations.end()) return false;
  fn(it->second);
  return true;
}

std::optional<std::pair<StripeId, int>> NamespaceShards::find_block_stripe(
    BlockId block) const {
  const Shard& shard = *shards_[block_shard(block)];
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.block_pos.find(block);
  if (it == shard.block_pos.end()) return std::nullopt;
  return it->second;
}

size_t NamespaceShards::block_count() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->locations.size();
  }
  return total;
}

std::vector<BlockId> NamespaceShards::all_blocks() const {
  std::vector<BlockId> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.reserve(out.size() + shard->locations.size());
    for (const auto& [block, locs] : shard->locations) {
      (void)locs;
      out.push_back(block);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ------------------------------------------------------ stripe point ops

std::optional<StripeMeta> NamespaceShards::find_stripe(StripeId stripe) const {
  const Shard& shard = *shards_[stripe_shard(stripe)];
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.stripes.find(stripe);
  if (it == shard.stripes.end()) return std::nullopt;
  return it->second;
}

bool NamespaceShards::stripe_encoded(StripeId stripe) const {
  const Shard& shard = *shards_[stripe_shard(stripe)];
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.stripes.find(stripe);
  return it != shard.stripes.end() && it->second.encoded;
}

// ---------------------------------------------------- multi-shard commits

void NamespaceShards::commit_new_block(BlockId block,
                                       std::vector<NodeId> replicas,
                                       StripeId stripe, int position) {
  const auto locks = lock_shards({block_shard(block), stripe_shard(stripe)});
  Shard& ss = *shards_[stripe_shard(stripe)];
  StripeMeta& meta = ss.stripes[stripe];
  meta.id = stripe;
  // Slot by position, not append order: replication pipelines of one
  // stripe's writers may finish (and commit) out of placement order.
  if (static_cast<int>(meta.data_blocks.size()) <= position) {
    meta.data_blocks.resize(static_cast<size_t>(position) + 1, kInvalidBlock);
  }
  meta.data_blocks[static_cast<size_t>(position)] = block;
  Shard& bs = *shards_[block_shard(block)];
  bs.block_pos[block] = {stripe, position};
  // A background encode of this stripe may already have committed (the
  // stripe seals at placement time, before this replica commit): the encode
  // retired replicas and registered the surviving one, so the replica set
  // must not clobber it.
  if (!meta.encoded) {
    bs.locations[block] = std::move(replicas);
  }
}

void NamespaceShards::commit_encoded_stripe(
    StripeId stripe, const std::vector<BlockId>& data_blocks,
    const std::vector<NodeId>& kept, const std::vector<BlockId>& parity_blocks,
    const std::vector<NodeId>& parity_nodes) {
  std::vector<size_t> indices{stripe_shard(stripe)};
  for (const BlockId b : data_blocks) indices.push_back(block_shard(b));
  for (const BlockId b : parity_blocks) indices.push_back(block_shard(b));
  const auto locks = lock_shards(std::move(indices));

  const int k = static_cast<int>(data_blocks.size());
  StripeMeta& meta = shards_[stripe_shard(stripe)]->stripes[stripe];
  meta.id = stripe;
  // Fill the data slots here too: the stripe seals at placement time, so an
  // encode can commit before the last writer's own commit lands — after this
  // commit the stripe row is complete regardless of writer commit order.
  if (static_cast<int>(meta.data_blocks.size()) < k) {
    meta.data_blocks.resize(static_cast<size_t>(k), kInvalidBlock);
  }
  for (int i = 0; i < k; ++i) {
    const BlockId b = data_blocks[static_cast<size_t>(i)];
    meta.data_blocks[static_cast<size_t>(i)] = b;
    Shard& bs = *shards_[block_shard(b)];
    bs.locations[b] = {kept[static_cast<size_t>(i)]};
    bs.block_pos[b] = {stripe, i};
  }
  for (size_t j = 0; j < parity_blocks.size(); ++j) {
    const BlockId b = parity_blocks[j];
    Shard& bs = *shards_[block_shard(b)];
    bs.locations[b] = {parity_nodes[j]};
    bs.block_pos[b] = {stripe, k + static_cast<int>(j)};
  }
  meta.parity_blocks = parity_blocks;
  meta.encoded = true;
}

void NamespaceShards::commit_inline_stripe(StripeId stripe,
                                           const std::vector<BlockId>& blocks,
                                           const std::vector<NodeId>& nodes,
                                           int k) {
  std::vector<size_t> indices{stripe_shard(stripe)};
  for (const BlockId b : blocks) indices.push_back(block_shard(b));
  const auto locks = lock_shards(std::move(indices));

  StripeMeta& meta = shards_[stripe_shard(stripe)]->stripes[stripe];
  meta.id = stripe;
  meta.encoded = true;
  for (size_t i = 0; i < blocks.size(); ++i) {
    const BlockId b = blocks[i];
    Shard& bs = *shards_[block_shard(b)];
    bs.locations[b] = {nodes[i]};
    bs.block_pos[b] = {stripe, static_cast<int>(i)};
    if (static_cast<int>(i) < k) {
      meta.data_blocks.push_back(b);
    } else {
      meta.parity_blocks.push_back(b);
    }
  }
}

// ------------------------------------------------------ whole-namespace

NamespaceSnapshot NamespaceShards::snapshot() const {
  std::map<BlockId, std::vector<NodeId>> locations;
  std::map<BlockId, std::pair<StripeId, int>> positions;
  std::map<StripeId, StripeMeta> stripes;
  export_maps(&locations, &stripes, &positions);

  // Join outside every lock: the epoch is already fixed.
  NamespaceSnapshot snap;
  snap.stripes = std::move(stripes);
  for (auto& [block, locs] : locations) {
    BlockStatus status;
    status.locations = std::move(locs);
    const auto pos = positions.find(block);
    if (pos != positions.end()) {
      status.stripe = pos->second.first;
      status.position = pos->second.second;
      const auto meta = snap.stripes.find(status.stripe);
      status.encoded = meta != snap.stripes.end() && meta->second.encoded;
    }
    snap.blocks.emplace(block, std::move(status));
  }
  return snap;
}

void NamespaceShards::export_maps(
    std::map<BlockId, std::vector<NodeId>>* locations,
    std::map<StripeId, StripeMeta>* stripes,
    std::map<BlockId, std::pair<StripeId, int>>* positions) const {
  // Epoch acquire: take every shard in ascending order.  Once all locks are
  // held the view is consistent; each shard is then copied and released
  // immediately so point ops on low shards resume during the rest of the
  // copy.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) {
    locks.emplace_back(shard->mu);
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    const Shard& shard = *shards_[i];
    locations->insert(shard.locations.begin(), shard.locations.end());
    positions->insert(shard.block_pos.begin(), shard.block_pos.end());
    stripes->insert(shard.stripes.begin(), shard.stripes.end());
    locks[i].unlock();
  }
}

void NamespaceShards::import_maps(
    std::map<BlockId, std::vector<NodeId>> locations,
    std::map<StripeId, StripeMeta> stripes,
    std::map<BlockId, std::pair<StripeId, int>> positions) {
  std::vector<size_t> all(shards_.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  const auto locks = lock_shards(std::move(all));
  for (auto& shard : shards_) {
    shard->locations.clear();
    shard->block_pos.clear();
    shard->stripes.clear();
  }
  for (auto& [block, locs] : locations) {
    shards_[block_shard(block)]->locations[block] = std::move(locs);
  }
  for (auto& [block, pos] : positions) {
    shards_[block_shard(block)]->block_pos[block] = pos;
  }
  for (auto& [stripe, meta] : stripes) {
    shards_[stripe_shard(stripe)]->stripes[stripe] = std::move(meta);
  }
}

}  // namespace ear::cfs
