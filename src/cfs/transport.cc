#include "cfs/transport.h"

#include <algorithm>
#include <memory>
#include <thread>

#include "obs/trace.h"

namespace ear::cfs {

ThrottledTransport::ThrottledTransport(const Topology& topo,
                                       const ThrottleConfig& config)
    : topo_(topo), config_(config) {
  const int net_links = 2 * topo.node_count() + 2 * topo.rack_count();
  const int total = net_links + topo.node_count();  // + per-node disks
  links_.reserve(static_cast<size_t>(total));
  const auto now = Clock::now();
  for (int i = 0; i < total; ++i) {
    auto link = std::make_unique<Link>();
    link->available_at = now;
    double bw;
    if (i >= net_links) {
      bw = config.disk_bw > 0 ? config.disk_bw : 1e18;  // 0 = free
    } else if (i < 2 * topo.node_count()) {
      bw = config.node_bw;
    } else if (i < 2 * topo.node_count() + topo.rack_count()) {
      bw = config.rack_uplink_bw;
    } else {
      bw = config.rack_downlink_bw > 0 ? config.rack_downlink_bw
                                       : config.rack_uplink_bw;
    }
    link->seconds_per_byte = 1.0 / bw;
    links_.push_back(std::move(link));
  }

  if (config_.qos.enable) {
    std::vector<double> spb;
    spb.reserve(links_.size());
    for (const auto& link : links_) spb.push_back(link->seconds_per_byte);
    qos_ = std::make_unique<qos::QosScheduler>(spb, config_.qos);
  }

  auto& reg = obs::Registry::instance();
  ctr_cross_ = &reg.counter("testbed.net.cross_rack_bytes");
  ctr_intra_ = &reg.counter("testbed.net.intra_rack_bytes");
  ctr_transfers_ = &reg.counter("testbed.net.transfers");
  if (obs::trace_enabled() && obs::config().link_sample_period > 0) {
    start_sampler(obs::config().link_sample_period);
  }
}

ThrottledTransport::~ThrottledTransport() { stop_sampler(); }

void ThrottledTransport::local_read(NodeId node, Bytes size) {
  if (config_.disk_bw <= 0 || size == 0) return;
  obs::Span span("net.disk_read", "net");
  span.arg("node", node);
  span.arg("bytes", size);
  Bytes remaining = size;
  while (remaining > 0) {
    const Bytes chunk = std::min(remaining, config_.chunk_size);
    remaining -= chunk;
    std::this_thread::sleep_until(reserve(disk(node), chunk));
  }
}

ThrottledTransport::Clock::time_point ThrottledTransport::reserve(
    int idx, Bytes bytes, bool charge) {
  // Under QoS the link's slot is granted in weighted virtual-finish order
  // for the calling thread's ambient (class, tenant) flow; otherwise the
  // original FIFO timeline below applies.  Either way the reservation is
  // for the same bytes on the same link — only its start time differs.
  if (qos_) return qos_->request(idx, qos::current_context(), bytes, charge);
  Link& link = *links_[static_cast<size_t>(idx)];
  std::lock_guard<std::mutex> lock(link.mu);
  const auto now = Clock::now();
  const auto start = std::max(now, link.available_at);
  const auto duration = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(static_cast<double>(bytes) *
                                    link.seconds_per_byte));
  link.available_at = start + duration;
  link.busy_seconds += static_cast<double>(bytes) * link.seconds_per_byte;
  return link.available_at;
}

void ThrottledTransport::transfer(NodeId src, NodeId dst, Bytes size) {
  do_transfer(src, dst, size, /*wait=*/true);
}

void ThrottledTransport::inject(NodeId src, NodeId dst, Bytes size) {
  do_transfer(src, dst, size, /*wait=*/false);
}

void ThrottledTransport::do_transfer(NodeId src, NodeId dst, Bytes size,
                                     bool wait) {
  if (src == dst || size == 0) return;

  std::vector<int> path;
  path.push_back(node_up(src));
  const bool cross = !topo_.same_rack(src, dst);
  if (cross) {
    path.push_back(rack_up(topo_.rack_of(src)));
    path.push_back(rack_down(topo_.rack_of(dst)));
  }
  path.push_back(node_down(dst));

  obs::Span span(!wait              ? "net.inject"
                 : cross            ? "net.transfer.cross"
                                    : "net.transfer.intra",
                 "net");
  span.arg("src", src);
  span.arg("dst", dst);
  span.arg("bytes", size);

  Bytes remaining = size;
  while (remaining > 0) {
    const Bytes chunk = std::min(remaining, config_.chunk_size);
    remaining -= chunk;
    Clock::time_point done = Clock::now();
    // The chunk occupies each link of the path; links operate in parallel
    // (cut-through), so the chunk lands when the slowest reservation ends.
    // The QoS class budget is charged on the first hop only — a serial
    // path must not be metered once per link.
    bool charge = true;
    for (const int idx : path) {
      done = std::max(done, reserve(idx, chunk, charge));
      charge = false;
    }
    if (wait) std::this_thread::sleep_until(done);
  }

  if (cross) {
    cross_ += size;
    ctr_cross_->add(size);
  } else {
    intra_ += size;
    ctr_intra_->add(size);
  }
  ctr_transfers_->add();
}

// ------------------------------------------------------- link sampler (obs)

std::string ThrottledTransport::link_label(int idx) const {
  const int n = topo_.node_count();
  const int r = topo_.rack_count();
  if (idx < n) return "link/node" + std::to_string(idx) + ":up";
  if (idx < 2 * n) return "link/node" + std::to_string(idx - n) + ":down";
  if (idx < 2 * n + r) return "link/rack" + std::to_string(idx - 2 * n) + ":up";
  if (idx < 2 * n + 2 * r) {
    return "link/rack" + std::to_string(idx - 2 * n - r) + ":down";
  }
  return "link/disk" + std::to_string(idx - 2 * n - 2 * r);
}

void ThrottledTransport::start_sampler(Seconds period) {
  sampler_period_ = period;
  prev_busy_.assign(links_.size(), 0.0);
  last_sample_ = Clock::now();
  sampler_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(sampler_mu_);
    while (!sampler_stop_) {
      sampler_cv_.wait_for(
          lock, std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(sampler_period_)));
      if (sampler_stop_) break;
      sample_links();
    }
  });
}

void ThrottledTransport::stop_sampler() {
  if (!sampler_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(sampler_mu_);
    sampler_stop_ = true;
  }
  sampler_cv_.notify_all();
  sampler_.join();
  // One final synchronous snapshot so short runs (and tests) always see at
  // least one sample per link.
  sample_links();
}

void ThrottledTransport::sample_links() {
  const auto now = Clock::now();
  const double window =
      std::chrono::duration<double>(now - last_sample_).count();
  last_sample_ = now;

  int64_t total_queued = 0;
  double worst_share = 0;
  for (size_t i = 0; i < links_.size(); ++i) {
    Link& link = *links_[i];
    int64_t queued_bytes;
    double busy;
    if (qos_) {
      const auto s = qos_->sample(static_cast<int>(i), now);
      queued_bytes = s.queued_bytes;
      busy = s.busy_seconds;
    } else {
      double backlog_s;
      {
        std::lock_guard<std::mutex> lock(link.mu);
        backlog_s = std::max(
            0.0,
            std::chrono::duration<double>(link.available_at - now).count());
        busy = link.busy_seconds;
      }
      queued_bytes = static_cast<int64_t>(backlog_s / link.seconds_per_byte);
    }
    const double share =
        window > 0 ? std::min(1.0, (busy - prev_busy_[i]) / window) : 0.0;
    prev_busy_[i] = busy;
    total_queued += queued_bytes;
    worst_share = std::max(worst_share, share);
    obs::trace_counter(link_label(static_cast<int>(i)).c_str(),
                       {{"queued_bytes", queued_bytes},
                        {"busy_pct", static_cast<int64_t>(share * 100.0)}});
  }
  auto& reg = obs::Registry::instance();
  reg.gauge("testbed.net.queued_bytes").set(static_cast<double>(total_queued));
  reg.gauge("testbed.net.max_link_share").set_max(worst_share);
}

}  // namespace ear::cfs
