#include "cfs/transport.h"

#include <algorithm>
#include <memory>
#include <thread>

namespace ear::cfs {

ThrottledTransport::ThrottledTransport(const Topology& topo,
                                       const ThrottleConfig& config)
    : topo_(topo), config_(config) {
  const int net_links = 2 * topo.node_count() + 2 * topo.rack_count();
  const int total = net_links + topo.node_count();  // + per-node disks
  links_.reserve(static_cast<size_t>(total));
  const auto now = Clock::now();
  for (int i = 0; i < total; ++i) {
    auto link = std::make_unique<Link>();
    link->available_at = now;
    double bw;
    if (i >= net_links) {
      bw = config.disk_bw > 0 ? config.disk_bw : 1e18;  // 0 = free
    } else if (i < 2 * topo.node_count()) {
      bw = config.node_bw;
    } else {
      bw = config.rack_uplink_bw;
    }
    link->seconds_per_byte = 1.0 / bw;
    links_.push_back(std::move(link));
  }
}

void ThrottledTransport::local_read(NodeId node, Bytes size) {
  if (config_.disk_bw <= 0 || size == 0) return;
  Bytes remaining = size;
  while (remaining > 0) {
    const Bytes chunk = std::min(remaining, config_.chunk_size);
    remaining -= chunk;
    std::this_thread::sleep_until(reserve(disk(node), chunk));
  }
}

ThrottledTransport::Clock::time_point ThrottledTransport::reserve(
    int idx, Bytes bytes) {
  Link& link = *links_[static_cast<size_t>(idx)];
  std::lock_guard<std::mutex> lock(link.mu);
  const auto now = Clock::now();
  const auto start = std::max(now, link.available_at);
  const auto duration = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(static_cast<double>(bytes) *
                                    link.seconds_per_byte));
  link.available_at = start + duration;
  return link.available_at;
}

void ThrottledTransport::transfer(NodeId src, NodeId dst, Bytes size) {
  do_transfer(src, dst, size, /*wait=*/true);
}

void ThrottledTransport::inject(NodeId src, NodeId dst, Bytes size) {
  do_transfer(src, dst, size, /*wait=*/false);
}

void ThrottledTransport::do_transfer(NodeId src, NodeId dst, Bytes size,
                                     bool wait) {
  if (src == dst || size == 0) return;

  std::vector<int> path;
  path.push_back(node_up(src));
  const bool cross = !topo_.same_rack(src, dst);
  if (cross) {
    path.push_back(rack_up(topo_.rack_of(src)));
    path.push_back(rack_down(topo_.rack_of(dst)));
  }
  path.push_back(node_down(dst));

  Bytes remaining = size;
  while (remaining > 0) {
    const Bytes chunk = std::min(remaining, config_.chunk_size);
    remaining -= chunk;
    Clock::time_point done = Clock::now();
    // The chunk occupies each link of the path; links operate in parallel
    // (cut-through), so the chunk lands when the slowest reservation ends.
    for (const int idx : path) {
      done = std::max(done, reserve(idx, chunk));
    }
    if (wait) std::this_thread::sleep_until(done);
  }

  if (cross) {
    cross_ += size;
  } else {
    intra_ += size;
  }
}

}  // namespace ear::cfs
