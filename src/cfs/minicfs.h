// MiniCfs — an in-process clustered file system with real data paths.
//
// This is the repo's stand-in for the paper's Facebook-HDFS testbed (§IV,
// §V-A).  It keeps the architecture of HDFS + HDFS-RAID:
//   * a NameNode role (metadata: block locations, stripe map, the
//     pre-encoding store filled by the placement policy),
//   * DataNode roles (in-memory block stores holding real bytes),
//   * a client write path (replication pipeline),
//   * the encoding operation (download k data blocks to the encoder node,
//     compute Reed-Solomon parity over the actual bytes, upload parity,
//     delete redundant replicas),
//   * failure injection (node / rack kill) and degraded reads + repair via
//     erasure decoding.
//
// All data movement is charged to a pluggable Transport; with
// ThrottledTransport the cluster physically exhibits the paper's cross-rack
// bottleneck in real time.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "cfs/namespace.h"
#include "cfs/transport.h"
#include "common/rng.h"
#include "datapath/block_buffer.h"
#include "datapath/block_cache.h"
#include "erasure/codec.h"
#include "obs/metrics.h"
#include "placement/policy.h"
#include "placement/types.h"
#include "store/block_store.h"

namespace ear::cfs {

struct CfsConfig {
  int racks = 12;
  int nodes_per_rack = 1;  // the paper's testbed: one DataNode per rack
  PlacementConfig placement{};
  bool use_ear = true;
  Bytes block_size = 1_MB;
  erasure::Construction construction = erasure::Construction::kCauchy;
  // Erasure-codec family for encoded stripes (erasure/codec.h).  kRS
  // (default) reproduces the scalar Reed-Solomon path byte for byte; kLRC
  // adds local-group repair; kClay / kHitchhiker are sub-packetized vector
  // codes whose single-block repairs fetch sub-block ranges of the helpers
  // instead of k full blocks.  block_size must be divisible by the
  // family's sub-packetization alpha (serialized since EARCKPT6).
  erasure::CodecFamily codec_family = erasure::CodecFamily::kRS;
  uint64_t seed = 1;
  // NameNode lock striping (cfs/namespace.h).  1 reproduces the old
  // single-mutex NameNode (the bench_ext_namenode baseline).
  int namespace_shards = NamespaceShards::kDefaultShards;
  // Reader-side block cache budget in bytes (datapath/block_cache.h).  A
  // cache hit returns the reader's cached BlockBuffer with zero transport
  // bytes and zero copies.  0 (default) disables the cache and reproduces
  // the pre-cache read path exactly.
  Bytes cache_bytes = 0;
  // Degraded-read fetch fan-out: number of concurrent per-source fetch
  // lanes (datapath::StagedPipeline::run_fanout).  0 (default) = one lane
  // per source; 1 = the old single-lane round-robin fetch loop, byte- and
  // order-identical to the pre-fan-out path.
  int read_fanout_lanes = 0;
  // DataNode block-store backend (src/store/).  kMem (default) keeps blocks
  // in RAM — the pre-store behavior, byte for byte.  kMmap lays blocks out
  // in per-node segment files under `store_dir` with a crash-consistent
  // append-only directory; restart_node() then recovers a node's surviving
  // blocks from disk instead of losing everything.
  store::StoreBackend store_backend = store::StoreBackend::kMem;
  // Root directory for persistent stores (per-node subdirectories
  // node-0000, node-0001, ... are created inside).  Required when
  // store_backend == kMmap; ignored for kMem.
  std::string store_dir;
  // Segment-file roll size for the mmap backend.
  Bytes store_segment_bytes = 256_MB;
  // Distributed encode/repair DAGs (src/ecdag/): encode, repair, and
  // degraded-read reconstruction run as rack-aware partial-sum trees, so
  // each remote rack ships one combined chunk per requested output across
  // the core switch instead of every raw block.  false (default) keeps the
  // legacy single-node fan-in data path, byte for byte.
  bool ecdag_enable = false;
};

// StripeMeta, BlockStatus and NamespaceSnapshot live in cfs/namespace.h.

// Full cluster snapshot (see cfs/checkpoint.h).  Plain data so it can be
// serialized without touching MiniCfs internals.
struct ClusterImage {
  CfsConfig config;
  BlockId next_block_id = 0;
  std::map<BlockId, std::vector<NodeId>> locations;
  std::map<StripeId, StripeMeta> stripes;
  std::map<BlockId, std::pair<StripeId, int>> block_positions;
  // node -> (block -> bytes).  Buffers are shared with the live DataNode
  // stores (BlockBuffer contents are immutable), so exporting an image
  // copies metadata only, never block bytes.
  std::vector<std::map<BlockId, datapath::BlockBuffer>> node_blocks;
};

class MiniCfs {
 public:
  MiniCfs(const CfsConfig& config, std::unique_ptr<Transport> transport);
  ~MiniCfs();

  MiniCfs(const MiniCfs&) = delete;
  MiniCfs& operator=(const MiniCfs&) = delete;

  const Topology& topology() const { return topo_; }
  const CfsConfig& config() const { return config_; }
  Transport& transport() { return *transport_; }
  PlacementPolicy& policy() { return *policy_; }

  // Swaps the transport.  Used by benches to pre-load data instantly (the
  // paper's stripes were written long before the measured window) and then
  // switch to the throttled transport for the experiment itself.
  //
  // Contract: the swap is serialized against other swaps by an internal
  // mutex, but it must not race in-flight data movement — every data-moving
  // operation (write/read/encode/repair/replicate) registers itself for its
  // full duration, and set_transport throws std::logic_error if any is
  // still in flight.  Quiesce workers (join RaidNode jobs, stop the
  // RepairManager) before swapping.
  //
  // The in-flight guard fences block-cache fills too: a fill only ever
  // happens inside the read that produced the bytes, which holds its
  // TransferScope for the fill's full duration (cache_fill asserts this),
  // so a swap can never interleave with a fill.  Cached entries themselves
  // survive the swap — BlockBuffer contents are immutable and a hit
  // touches no transport — which is exactly the pre-loaded-data semantics
  // benches use set_transport for.
  void set_transport(std::unique_ptr<Transport> transport);

  // ---- client write path -------------------------------------------------
  // Writes one block (must be exactly block_size bytes) with replication.
  // Blocks the caller for the duration of the pipeline.  Returns the block
  // id.  Thread-safe.
  BlockId write_block(std::span<const uint8_t> data,
                      std::optional<NodeId> writer = std::nullopt);

  // Writes a full stripe of k blocks with erasure coding ON the write path
  // (no replication phase) — the alternative Zhang et al. study in the
  // paper's related work.  The writer computes the parity and pushes all n
  // blocks to n distinct nodes in n distinct racks.  Returns the stripe id
  // (disjoint from the asynchronous-encoding stripe ids).  Use to compare
  // synchronous vs asynchronous encoding.
  StripeId write_encoded_stripe(
      const std::vector<std::span<const uint8_t>>& data,
      std::optional<NodeId> writer = std::nullopt);

  // ---- client read path --------------------------------------------------
  // Reads a block to `reader`.  Consults the reader-side block cache first
  // (when CfsConfig::cache_bytes > 0): a hit returns the reader's cached
  // buffer with zero transport transfer and zero copies.  Otherwise serves
  // from a live replica when one exists (returning a zero-copy reference
  // to the replica's stored buffer); otherwise performs a degraded read,
  // reconstructing from any k live blocks of the encoded stripe through
  // the staged chunked pipeline — with one fetch lane per source node when
  // fan-out is enabled (CfsConfig::read_fanout_lanes).  Throws
  // std::runtime_error when the block is unrecoverable.
  datapath::BlockBuffer read_block(BlockId block, NodeId reader);

  // ---- encoding (the RaidNode path uses these) ----------------------------
  std::vector<StripeId> sealed_stripes() const;

  // Encodes one sealed stripe: the calling thread plays the map task.
  // `encoder_override` forces the encoder node (ablation hook modelling a
  // JobTracker that ignored the core-rack preference).
  void encode_stripe(StripeId stripe,
                     std::optional<NodeId> encoder_override = std::nullopt);

  bool is_encoded(StripeId stripe) const;
  StripeMeta stripe_meta(StripeId stripe) const;

  // ---- failure & repair ----------------------------------------------------
  void kill_node(NodeId node);
  void kill_rack(RackId rack);
  // Revival models a transient failure (a slow node reporting back): the
  // node rejoins with its block store intact, and any location the NameNode
  // has not yet pruned becomes servable again.
  void revive_node(NodeId node);
  void revive_rack(RackId rack);
  void revive_all();
  bool node_alive(NodeId node) const;

  // Process restart: the node's in-memory store state is discarded and the
  // store is reopened from its backing medium, then the node rejoins and
  // files a block report the NameNode reconciles (HDFS DataNode
  // re-registration).  With the mmap backend the store replays its
  // crash-consistent directory, so committed blocks survive and only the
  // delta (blocks lost in the crash, or re-homed while the node was down)
  // needs repair; with the mem backend a restart loses every block — the
  // two together turn "node restart" and "node lost its disk" into
  // distinct, measurable scenarios (vs. revive_node, which models a
  // transient stall with all state intact).
  //
  // Reconciliation: namespace locations naming this node for blocks the
  // reopened store no longer holds are pruned (a later
  // restore_redundancy() repairs them); surviving blocks the namespace
  // still knows are re-registered; surviving blocks the namespace has
  // forgotten entirely are discarded from the store.
  struct RestartReport {
    int64_t blocks_recovered = 0;     // blocks the reopened store holds
    int64_t locations_pruned = 0;     // namespace locations dropped
    int64_t blocks_reregistered = 0;  // surviving blocks re-added
    int64_t stale_blocks_discarded = 0;  // store blocks no longer in ns
  };
  RestartReport restart_node(NodeId node);

  // Reconstructs a lost block of an encoded stripe onto `target` and
  // registers the new location.
  void repair_block(BlockId block, NodeId target);

  // Copies a block from a surviving replica onto `dst` and registers the new
  // location (pruning dead ones).  Throws std::runtime_error when no live
  // replica exists.
  void replicate_block(BlockId block, NodeId dst);

  // Picks a repair destination uniformly at random (seeded RNG) among live
  // nodes outside `exclude`, preferring racks not in `avoid_racks` and
  // falling back to any live node.  Returns kInvalidNode when none is left.
  NodeId pick_repair_target(const std::vector<NodeId>& exclude,
                            const std::set<RackId>& avoid_racks) const;

  // Racks currently holding a live copy of any block of `block`'s stripe
  // (rack-fault-tolerant repairs place the rebuilt block elsewhere).  Empty
  // when the block is not part of a known stripe.
  std::set<RackId> live_stripe_racks(BlockId block) const;

  // Scans every block and restores redundancy after failures (HDFS's
  // ReplicationMonitor + RaidNode block-fixer roles):
  //   * replicated blocks with fewer than r live copies are re-replicated
  //     from a surviving copy onto fresh nodes (preferring unused racks);
  //   * erasure-coded blocks with no live copy are rebuilt by decoding the
  //     stripe onto a fresh node;
  //   * blocks with no live copy and no decodable stripe are reported
  //     unrecoverable.
  struct RecoveryReport {
    int re_replicated = 0;   // replica copies created
    int repaired = 0;        // blocks rebuilt via decoding
    int unrecoverable = 0;   // blocks lost for good
  };
  RecoveryReport restore_redundancy();

  // ---- snapshots (cfs/checkpoint.h) ----------------------------------------
  ClusterImage export_image() const;
  static std::unique_ptr<MiniCfs> from_image(
      ClusterImage image, std::unique_ptr<Transport> transport);

  // ---- introspection -------------------------------------------------------
  std::vector<NodeId> block_locations(BlockId block) const;
  // The stripe codec (config.codec_family over placement.code's (n, k)).
  const erasure::ErasureCodec& codec() const { return *codec_; }
  // Network bytes a repair of `block` would move under the codec's current
  // cheapest plan: the RepairPlan's sub-block bytes when one exists for the
  // live helper set, otherwise k full blocks (whole-stripe decode), or one
  // block for replicated copies.  The RepairManager charges this instead of
  // the old hardcoded k-blocks model.
  Bytes planned_repair_bytes(BlockId block) const;
  // Reader-side cache instance; null when CfsConfig::cache_bytes == 0.
  const datapath::BlockCache* block_cache() const { return cache_.get(); }
  std::vector<BlockId> all_blocks() const;
  bool is_block_encoded(BlockId block) const;
  NamespaceSnapshot namespace_snapshot() const;
  int64_t blocks_stored_on(NodeId node) const;
  int64_t encode_cross_rack_downloads() const {
    return encode_cross_rack_downloads_;
  }

 private:
  // store_test drives the private fetch/erase error paths directly.
  friend class MiniCfsTestPeer;

  // Builds the configured store backend for one node (mem map, or an mmap
  // store rooted at store_dir/node-NNNN).  Also the restart_node reopen
  // path.
  std::unique_ptr<store::BlockStore> make_store(NodeId node) const;

  // Zero-copy block store access: store() registers a shared buffer
  // reference (persistent backends commit it durably), fetch() hands one
  // out; the store's internal mutex guards only index state, never a byte
  // copy.  fetch() and erase() throw std::runtime_error naming the node,
  // block, and backend when the block is absent.
  void store(NodeId node, BlockId block, datapath::BlockBuffer bytes);
  datapath::BlockBuffer fetch(NodeId node, BlockId block) const;
  // Ranged fetch: zero-copy view of bytes [offset, offset + len) of the
  // stored block (the vector-codec repair path reads helper sub-ranges
  // through this; both store backends serve it without touching the rest
  // of the block).
  datapath::BlockBuffer fetch_range(NodeId node, BlockId block, size_t offset,
                                    size_t len) const;
  void erase(NodeId node, BlockId block);

  // Registers a data-moving operation for set_transport's in-flight check.
  class TransferScope {
   public:
    explicit TransferScope(const MiniCfs& cfs) : cfs_(&cfs) {
      cfs_->transfers_in_flight_.fetch_add(1, std::memory_order_relaxed);
    }
    ~TransferScope() {
      cfs_->transfers_in_flight_.fetch_sub(1, std::memory_order_relaxed);
    }
    TransferScope(const TransferScope&) = delete;
    TransferScope& operator=(const TransferScope&) = delete;

   private:
    const MiniCfs* cfs_;
  };

  // Picks the source replica for a block download to `dst` (local, then
  // same-rack, then any live replica).  Returns kInvalidNode if none live.
  NodeId pick_source(const std::vector<NodeId>& locations, NodeId dst,
                     bool count_cross_rack_download);

  // Caches `bytes` as `reader`'s copy of `block`.  Must run inside the
  // read's TransferScope (throws std::logic_error otherwise): cache fills
  // are data movement for the purposes of the set_transport contract.
  void cache_fill(NodeId reader, BlockId block,
                  const datapath::BlockBuffer& bytes);
  // Coherence hook: drops every reader's cached copy of `block` (called on
  // replica delete, encode commit, repair/replicate rewrite, node revive).
  void cache_invalidate(BlockId block);

  // Reconstructs `block` from k live stripe blocks through the staged
  // chunked pipeline (fan-out lanes when configured).  The slow path of
  // read_block.
  datapath::BlockBuffer degraded_read(BlockId block, NodeId reader);

  CfsConfig config_;
  Topology topo_;
  std::mutex transport_mu_;  // serializes set_transport swaps
  mutable std::atomic<int> transfers_in_flight_{0};
  std::unique_ptr<Transport> transport_;
  std::unique_ptr<PlacementPolicy> policy_;
  // Reader-side block cache; null when config.cache_bytes == 0 (the
  // pre-cache read path, exactly).
  std::unique_ptr<datapath::BlockCache> cache_;
  std::unique_ptr<erasure::ErasureCodec> codec_;

  // The NameNode namespace: lock-striped block locations, stripe metadata,
  // and block->stripe positions (cfs/namespace.h).  The placement policy
  // keeps its own stripe-assembly state and is guarded separately by
  // policy_mu_; nothing acquires a namespace shard while holding policy_mu_
  // or vice versa.
  NamespaceShards ns_;
  mutable std::mutex policy_mu_;
  std::vector<std::unique_ptr<store::BlockStore>> datanodes_;
  std::vector<std::atomic<bool>> node_alive_;
  std::atomic<BlockId> next_block_id_{0};
  // Inline (write-path) stripes count downward so they never collide with
  // the placement policy's stripe ids.
  std::atomic<StripeId> next_inline_stripe_id_{-1};
  mutable std::mutex rng_mu_;
  mutable Rng rng_;
  std::atomic<int64_t> encode_cross_rack_downloads_{0};

  // Cached obs registry instruments (valid for the process lifetime).
  obs::Counter* ctr_blocks_written_;
  obs::Counter* ctr_stripes_encoded_;
  obs::Counter* ctr_degraded_reads_;
  obs::Counter* ctr_degraded_read_bytes_;
  obs::Counter* ctr_repairs_;
  obs::Histogram* hist_encode_s_;
};

}  // namespace ear::cfs
