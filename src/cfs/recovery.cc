// Redundancy restoration after failures — MiniCfs::restore_redundancy and
// the block-status introspection it relies on.
#include <algorithm>
#include <set>

#include "cfs/minicfs.h"
#include "qos/qos.h"

namespace ear::cfs {

std::vector<BlockId> MiniCfs::all_blocks() const { return ns_.all_blocks(); }

bool MiniCfs::is_block_encoded(BlockId block) const {
  const auto pos = ns_.find_block_stripe(block);
  if (!pos) return false;
  return ns_.stripe_encoded(pos->first);
}

NamespaceSnapshot MiniCfs::namespace_snapshot() const {
  return ns_.snapshot();
}

NodeId MiniCfs::pick_repair_target(const std::vector<NodeId>& exclude,
                                   const std::set<RackId>& avoid_racks) const {
  std::vector<NodeId> preferred, fallback;
  for (NodeId n = 0; n < topo_.node_count(); ++n) {
    if (!node_alive_[static_cast<size_t>(n)]) continue;
    if (std::find(exclude.begin(), exclude.end(), n) != exclude.end()) {
      continue;
    }
    (avoid_racks.count(topo_.rack_of(n)) ? fallback : preferred).push_back(n);
  }
  const std::vector<NodeId>& pool = preferred.empty() ? fallback : preferred;
  if (pool.empty()) return kInvalidNode;
  std::lock_guard<std::mutex> lock(rng_mu_);
  return pool[rng_.index(pool.size())];
}

std::set<RackId> MiniCfs::live_stripe_racks(BlockId block) const {
  std::set<RackId> racks;
  const auto pos = ns_.find_block_stripe(block);
  if (!pos) return racks;
  const auto meta = ns_.find_stripe(pos->first);
  if (!meta) return racks;
  std::vector<BlockId> siblings = meta->data_blocks;
  siblings.insert(siblings.end(), meta->parity_blocks.begin(),
                  meta->parity_blocks.end());
  for (const BlockId sibling : siblings) {
    if (sibling == kInvalidBlock) continue;  // stripe still assembling
    const auto locs = ns_.find_locations(sibling);
    if (!locs) continue;
    for (const NodeId n : *locs) {
      if (node_alive_[static_cast<size_t>(n)]) {
        racks.insert(topo_.rack_of(n));
      }
    }
  }
  return racks;
}

void MiniCfs::replicate_block(BlockId block, NodeId dst) {
  qos::OpScope op(qos::TrafficClass::kRepair);
  TransferScope in_flight(*this);
  std::vector<NodeId> locs = block_locations(block);
  std::vector<NodeId> live;
  for (const NodeId n : locs) {
    if (n != dst && node_alive_[static_cast<size_t>(n)]) live.push_back(n);
  }
  if (live.empty()) {
    throw std::runtime_error("no live replica to copy block " +
                             std::to_string(block));
  }
  const NodeId src = pick_source(live, dst, /*count=*/false);
  transport_->transfer(src, dst, config_.block_size);
  store(dst, block, fetch(src, block));
  // Recovery rewrite: servable locations change, so cached copies are
  // dropped and re-validated on next read (same rule as repair_block).
  cache_invalidate(block);
  ns_.update_locations(block, [this, dst](std::vector<NodeId>& registered) {
    registered.erase(
        std::remove_if(registered.begin(), registered.end(),
                       [this](NodeId n) {
                         return !node_alive_[static_cast<size_t>(n)];
                       }),
        registered.end());
    if (std::find(registered.begin(), registered.end(), dst) ==
        registered.end()) {
      registered.push_back(dst);
    }
  });
}

MiniCfs::RecoveryReport MiniCfs::restore_redundancy() {
  RecoveryReport report;
  // One NameNode lock per pass, not one per block: repairs then re-verify
  // per block through repair_block/replicate_block, which lock as needed.
  const NamespaceSnapshot snap = namespace_snapshot();

  for (const auto& [block, status] : snap.blocks) {
    std::vector<NodeId> live;
    for (const NodeId n : status.locations) {
      if (node_alive_[static_cast<size_t>(n)]) live.push_back(n);
    }
    const int target = status.encoded ? 1 : config_.placement.replication;
    if (static_cast<int>(live.size()) >= target) {
      // Still prune dead locations so later reads don't retry them.
      if (live.size() != status.locations.size()) {
        ns_.set_locations(block, live);
      }
      continue;
    }

    if (live.empty()) {
      if (!status.encoded) {
        ++report.unrecoverable;
        continue;
      }
      // Rebuild via erasure decoding onto a fresh live node picked uniformly
      // at random, preferring a rack holding no other block of the stripe.
      std::set<RackId> used_racks;
      const StripeMeta& meta = snap.stripes.at(status.stripe);
      std::vector<BlockId> siblings = meta.data_blocks;
      siblings.insert(siblings.end(), meta.parity_blocks.begin(),
                      meta.parity_blocks.end());
      for (const BlockId sibling : siblings) {
        const auto it = snap.blocks.find(sibling);
        if (it == snap.blocks.end()) continue;
        for (const NodeId n : it->second.locations) {
          if (node_alive_[static_cast<size_t>(n)]) {
            used_racks.insert(topo_.rack_of(n));
          }
        }
      }
      const NodeId target_node = pick_repair_target({}, used_racks);
      if (target_node == kInvalidNode) {
        ++report.unrecoverable;
        continue;
      }
      try {
        repair_block(block, target_node);
        ++report.repaired;
      } catch (const std::runtime_error&) {
        ++report.unrecoverable;
      }
      continue;
    }

    // Under-replicated: copy from a live replica onto fresh nodes picked
    // uniformly at random, preferring racks not already holding a copy.
    while (static_cast<int>(live.size()) < target) {
      std::set<RackId> used;
      for (const NodeId n : live) used.insert(topo_.rack_of(n));
      const NodeId dst = pick_repair_target(live, used);
      if (dst == kInvalidNode) break;  // cluster too degraded to reach r
      replicate_block(block, dst);
      live.push_back(dst);
      ++report.re_replicated;
    }
    ns_.set_locations(block, live);
  }
  return report;
}


ClusterImage MiniCfs::export_image() const {
  ClusterImage image;
  image.config = config_;
  image.next_block_id = next_block_id_.load(std::memory_order_relaxed);
  ns_.export_maps(&image.locations, &image.stripes, &image.block_positions);
  image.node_blocks.resize(datanodes_.size());
  for (size_t i = 0; i < datanodes_.size(); ++i) {
    image.node_blocks[i] = datanodes_[i]->export_blocks();
  }
  return image;
}

std::unique_ptr<MiniCfs> MiniCfs::from_image(
    ClusterImage image, std::unique_ptr<Transport> transport) {
  auto cfs = std::make_unique<MiniCfs>(image.config, std::move(transport));
  if (image.node_blocks.size() !=
      static_cast<size_t>(cfs->topo_.node_count())) {
    throw std::runtime_error("checkpoint topology mismatch");
  }
  {
    cfs->next_block_id_.store(image.next_block_id,
                              std::memory_order_relaxed);
    // New stripes must not collide with snapshotted ones (the fresh
    // placement policy restarts its id counter at 0); inline stripes count
    // downward and need the same treatment.
    StripeId max_policy_stripe = -1;
    StripeId min_inline_stripe = 0;
    for (const auto& [id, meta] : image.stripes) {
      (void)meta;
      max_policy_stripe = std::max(max_policy_stripe, id);
      min_inline_stripe = std::min(min_inline_stripe, id);
    }
    cfs->ns_.import_maps(std::move(image.locations), std::move(image.stripes),
                         std::move(image.block_positions));
    std::lock_guard<std::mutex> lock(cfs->policy_mu_);
    cfs->policy_->reserve_stripe_ids(max_policy_stripe + 1);
    cfs->next_inline_stripe_id_.store(min_inline_stripe - 1,
                                      std::memory_order_relaxed);
  }
  for (size_t i = 0; i < image.node_blocks.size(); ++i) {
    for (auto& [block, bytes] : image.node_blocks[i]) {
      cfs->datanodes_[i]->put(block, std::move(bytes));
    }
  }
  return cfs;
}

}  // namespace ear::cfs
