// Lock-striped NameNode namespace.
//
// MiniCfs used to guard all NameNode metadata (block locations, stripe
// metadata, block->stripe positions) with one global mutex, so foreground
// writers, the RaidNode's encode map-tasks, and the RepairManager's drainers
// all serialized on a single lock.  NamespaceShards stripes that state over
// N shards (default 16) keyed by BlockId / StripeId hash:
//
//  * Point lookups and mutations lock exactly one shard.
//  * Commits that span shards (registering a new block touches the block's
//    shard and its stripe's shard; an encode commit touches every block of
//    the stripe) acquire all touched shards in ascending shard-index order
//    before mutating anything, so a commit is atomic with respect to
//    snapshot() and no lock-order cycle is possible.
//  * snapshot() is epoch-consistent: it acquires every shard in ascending
//    order — once all locks are held simultaneously the epoch is defined —
//    then copies each shard's raw maps and releases that shard immediately,
//    so mutators of already-copied shards resume while the copy of later
//    shards is still in progress.  The expensive block<->stripe join runs
//    after every lock has been released.
//
// Lock-ordering rule (the only one in this file): shard mutexes are always
// acquired in ascending shard index, and nothing else is ever acquired while
// a shard mutex is held.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "placement/types.h"

namespace ear::cfs {

// Per-stripe metadata kept by the NameNode after encoding.
struct StripeMeta {
  StripeId id = kInvalidStripe;
  std::vector<BlockId> data_blocks;    // indexed by stripe position 0..k-1
  std::vector<BlockId> parity_blocks;  // size n - k (empty until encoded)
  bool encoded = false;
};

// Point-in-time view of one block's metadata (see snapshot()).
struct BlockStatus {
  std::vector<NodeId> locations;   // where copies are registered (may be dead)
  StripeId stripe = kInvalidStripe;
  int position = -1;               // index in stripe, 0..n-1; -1 if unstriped
  bool encoded = false;            // the stripe finished encoding
};

// One-epoch snapshot of the NameNode metadata.  Recovery sweeps and the
// failure/repair subsystem iterate over this instead of taking NameNode
// locks once per block.
struct NamespaceSnapshot {
  std::map<BlockId, BlockStatus> blocks;
  std::map<StripeId, StripeMeta> stripes;
};

class NamespaceShards {
 public:
  static constexpr int kDefaultShards = 16;

  explicit NamespaceShards(int shards = kDefaultShards);

  NamespaceShards(const NamespaceShards&) = delete;
  NamespaceShards& operator=(const NamespaceShards&) = delete;

  int shard_count() const { return static_cast<int>(shards_.size()); }

  // ---- block point ops (one shard lock) ---------------------------------
  std::optional<std::vector<NodeId>> find_locations(BlockId block) const;
  void set_locations(BlockId block, std::vector<NodeId> locations);
  // Applies `fn` to the block's registered location vector.  Returns false
  // (without calling fn) when the block is unknown.
  bool update_locations(BlockId block,
                        const std::function<void(std::vector<NodeId>&)>& fn);
  std::optional<std::pair<StripeId, int>> find_block_stripe(
      BlockId block) const;
  size_t block_count() const;
  std::vector<BlockId> all_blocks() const;  // ascending

  // ---- stripe point ops (one shard lock) --------------------------------
  std::optional<StripeMeta> find_stripe(StripeId stripe) const;
  bool stripe_encoded(StripeId stripe) const;

  // ---- multi-shard commits (atomic w.r.t. snapshot()) -------------------
  // Registers a freshly written block: its replica locations, its stripe
  // position, and its slot in the stripe's data_blocks.  data_blocks is
  // indexed by position (not append order): concurrent writers of one
  // stripe may commit out of placement order, and degraded reads decode by
  // position.
  void commit_new_block(BlockId block, std::vector<NodeId> replicas,
                        StripeId stripe, int position);

  // Commits a finished background encode: each data block's surviving
  // replica, the m new parity blocks (locations + stripe positions k..n-1),
  // and the stripe's encoded flag — in one atomic step.
  void commit_encoded_stripe(StripeId stripe,
                             const std::vector<BlockId>& data_blocks,
                             const std::vector<NodeId>& kept,
                             const std::vector<BlockId>& parity_blocks,
                             const std::vector<NodeId>& parity_nodes);

  // Commits a write-path (inline) erasure-coded stripe: n single-location
  // blocks plus the fully encoded stripe row, atomically.
  void commit_inline_stripe(StripeId stripe,
                            const std::vector<BlockId>& blocks,
                            const std::vector<NodeId>& nodes, int k);

  // ---- whole-namespace ops ----------------------------------------------
  NamespaceSnapshot snapshot() const;

  // Raw-map export/import for checkpointing (cfs/checkpoint.h).  export
  // uses the same epoch discipline as snapshot(); import distributes the
  // maps over the shards (callers quiesce mutators first).
  void export_maps(
      std::map<BlockId, std::vector<NodeId>>* locations,
      std::map<StripeId, StripeMeta>* stripes,
      std::map<BlockId, std::pair<StripeId, int>>* positions) const;
  void import_maps(std::map<BlockId, std::vector<NodeId>> locations,
                   std::map<StripeId, StripeMeta> stripes,
                   std::map<BlockId, std::pair<StripeId, int>> positions);

 private:
  struct Shard {
    mutable std::mutex mu;
    std::map<BlockId, std::vector<NodeId>> locations;
    std::map<BlockId, std::pair<StripeId, int>> block_pos;
    std::map<StripeId, StripeMeta> stripes;
  };

  size_t block_shard(BlockId block) const;
  size_t stripe_shard(StripeId stripe) const;

  // Locks the given shard indices (deduplicated) in ascending order for the
  // lifetime of the returned guards.
  std::vector<std::unique_lock<std::mutex>> lock_shards(
      std::vector<size_t> indices) const;

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace ear::cfs
