// Data transports for the mini-CFS "testbed" (our stand-in for the paper's
// 13-machine HDFS cluster, §V-A).
//
// The testbed moves real bytes between in-process DataNodes; the transport
// decides how long each movement takes:
//  * InstantTransport   — functional tests: only byte accounting.
//  * ThrottledTransport — experiments: every link of the CFS topology
//    (node up/down, rack up/down) is a fluid FIFO reservation queue with a
//    configured bandwidth; concurrent transfers contend chunk-by-chunk in
//    real time, reproducing the cross-rack bottleneck physically.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/units.h"
#include "obs/metrics.h"
#include "qos/scheduler.h"
#include "topology/topology.h"

namespace ear::cfs {

class Transport {
 public:
  virtual ~Transport() = default;

  // Blocks the calling thread until `size` bytes have "moved" from src to
  // dst.  src == dst is a local copy and costs nothing.
  virtual void transfer(NodeId src, NodeId dst, Bytes size) = 0;

  // Charges a local disk read on `node` (used when the encoder reads a
  // replica it already stores).  Default: free.
  virtual void local_read(NodeId node, Bytes size) {
    (void)node;
    (void)size;
  }

  // Consumes link capacity without waiting for delivery — models
  // unresponsive (UDP-style) traffic that keeps transmitting regardless of
  // congestion, as the paper's Iperf injection does.  Default: same as
  // transfer.
  virtual void inject(NodeId src, NodeId dst, Bytes size) {
    transfer(src, dst, size);
  }

  // Granularity at which the staged data-path pipeline should interleave
  // transfer and compute (MiniCfs chunks encode/degraded-read at this
  // size).  0 means chunking buys nothing (instant transports): callers
  // fall back to one-shot whole-block stages.
  virtual Bytes preferred_chunk() const { return 0; }

  virtual int64_t cross_rack_bytes() const = 0;
  virtual int64_t intra_rack_bytes() const = 0;

  // True when link time is granted by the QoS fair-share scheduler rather
  // than FIFO arrival order.  Components with private throttles (the
  // RepairManager's token bucket) stand down when the transport already
  // enforces a class budget, so repair is not throttled twice.
  virtual bool qos_enabled() const { return false; }
};

// Counts bytes, takes zero time.  For functional tests.  A nonzero
// `preferred_chunk` forces the staged pipeline through its chunked path
// without the real-time sleeps of ThrottledTransport (parity-equivalence
// tests).
class InstantTransport final : public Transport {
 public:
  explicit InstantTransport(const Topology& topo, Bytes preferred_chunk = 0)
      : topo_(topo), preferred_chunk_(preferred_chunk) {}

  Bytes preferred_chunk() const override { return preferred_chunk_; }

  void transfer(NodeId src, NodeId dst, Bytes size) override {
    if (src == dst) return;
    if (topo_.same_rack(src, dst)) {
      intra_ += size;
    } else {
      cross_ += size;
    }
  }

  int64_t cross_rack_bytes() const override { return cross_; }
  int64_t intra_rack_bytes() const override { return intra_; }

 private:
  Topology topo_;
  Bytes preferred_chunk_ = 0;
  std::atomic<int64_t> cross_{0};
  std::atomic<int64_t> intra_{0};
};

struct ThrottleConfig {
  BytesPerSec node_bw = 200e6;         // emulated link speeds; scaled-down
  BytesPerSec rack_uplink_bw = 200e6;  // testbeds use ~100-400 MB/s
  // Rack down-link (core -> rack) speed; 0 = same as the up-link.  Letting
  // them differ models congestion concentrated in one direction — e.g. the
  // paper's Iperf interference rides the rack up-links, so senders are
  // squeezed while receiver ingress stays clear.
  BytesPerSec rack_downlink_bw = 0;
  Bytes chunk_size = 1_MB;             // reservation granularity
  // Local disk bandwidth per node; 0 = local reads are free.  The paper's
  // testbed disks (~130 MB/s SATA) are comparable to its 1 Gb/s links.
  BytesPerSec disk_bw = 0;
  // Granularity the staged pipeline interleaves transfer and compute at
  // (preferred_chunk); 0 = follow chunk_size.  Re-tuned for the SIMD GF
  // kernels: bench_micro_gf measures AVX2 mul_add at ~19-23 GB/s while src +
  // dst stay cache-resident (4-256 KiB) but ~17 GB/s once spans reach 1 MiB,
  // and with encode now ~16x faster than scalar the pipeline wants finer
  // chunks so transfer/compute overlap dominates, not per-chunk compute.
  Bytes pipeline_chunk = 256_KB;
  // Fair-share scheduling (qos/scheduler.h).  With qos.enable the FIFO
  // reservation timeline of every link is replaced by weighted fair queuing
  // over (traffic class, tenant) flows; transfers are otherwise identical —
  // same paths, same chunks, same bytes (invariant 11).
  qos::QosConfig qos;
};

class ThrottledTransport final : public Transport {
 public:
  ThrottledTransport(const Topology& topo, const ThrottleConfig& config);
  ~ThrottledTransport() override;

  void transfer(NodeId src, NodeId dst, Bytes size) override;
  void local_read(NodeId node, Bytes size) override;
  void inject(NodeId src, NodeId dst, Bytes size) override;

  Bytes preferred_chunk() const override {
    if (config_.pipeline_chunk <= 0) return config_.chunk_size;
    return std::min(config_.chunk_size, config_.pipeline_chunk);
  }

  int64_t cross_rack_bytes() const override { return cross_; }
  int64_t intra_rack_bytes() const override { return intra_; }

  bool qos_enabled() const override { return qos_ != nullptr; }
  // The scheduler behind qos_enabled(); tests poke budgets through it.
  qos::QosScheduler* qos_scheduler() { return qos_.get(); }

 private:
  using Clock = std::chrono::steady_clock;

  // Fluid FIFO reservation: each link hands out time slots; a chunk on a
  // link occupies chunk/bw seconds starting no earlier than the link's
  // previous reservation end.
  struct Link {
    std::mutex mu;
    Clock::time_point available_at{};
    double seconds_per_byte = 0;
    double busy_seconds = 0;  // cumulative reserved time (sampler input)
  };

  int node_up(NodeId n) const { return n; }
  int node_down(NodeId n) const { return topo_.node_count() + n; }
  int rack_up(RackId r) const { return 2 * topo_.node_count() + r; }
  int rack_down(RackId r) const {
    return 2 * topo_.node_count() + topo_.rack_count() + r;
  }
  int disk(NodeId n) const {
    return 2 * topo_.node_count() + 2 * topo_.rack_count() + n;
  }

  // Reserves `bytes` on link `idx`; returns when the reservation ends.
  // `charge` marks the one hop per chunk that draws the QoS class budget
  // (no effect on the FIFO path).
  Clock::time_point reserve(int idx, Bytes bytes, bool charge = true);

  void do_transfer(NodeId src, NodeId dst, Bytes size, bool wait);

  // Link-utilization sampler (obs): a background thread that periodically
  // snapshots every link's queued bytes and busy share since the previous
  // sample, emitting Chrome counter events so cross-rack bottlenecks show
  // up as a timeline.  Started only when tracing is on at construction.
  void start_sampler(Seconds period);
  void stop_sampler();
  void sample_links();
  std::string link_label(int idx) const;

  Topology topo_;
  ThrottleConfig config_;
  std::vector<std::unique_ptr<Link>> links_;
  std::unique_ptr<qos::QosScheduler> qos_;  // non-null when config_.qos.enable
  std::atomic<int64_t> cross_{0};
  std::atomic<int64_t> intra_{0};

  obs::Counter* ctr_cross_ = nullptr;
  obs::Counter* ctr_intra_ = nullptr;
  obs::Counter* ctr_transfers_ = nullptr;

  std::thread sampler_;
  std::mutex sampler_mu_;
  std::condition_variable sampler_cv_;
  bool sampler_stop_ = false;
  Seconds sampler_period_ = 0;
  Clock::time_point last_sample_{};
  std::vector<double> prev_busy_;  // per-link busy_seconds at last sample
};

}  // namespace ear::cfs
