#include "cfs/workload.h"

#include <chrono>

#include "placement/replica_layout.h"

namespace ear::cfs {

using Clock = std::chrono::steady_clock;

WriteWorkload::WriteWorkload(MiniCfs& cfs, double rate, uint64_t seed)
    : cfs_(&cfs), rate_(rate), rng_(seed) {
  payload_.resize(static_cast<size_t>(cfs.config().block_size));
  for (auto& b : payload_) b = static_cast<uint8_t>(rng_.uniform(256));
}

WriteWorkload::~WriteWorkload() {
  if (running_) stop();
}

void WriteWorkload::start() {
  epoch_ = Clock::now();
  running_ = true;
  generator_ = std::thread([this] { generator_loop(); });
}

void WriteWorkload::generator_loop() {
  while (running_) {
    const double wait = rng_.exponential(1.0 / rate_);
    // Sleep in small steps so stop() is responsive.
    const auto deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(wait));
    while (running_ && Clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (!running_) return;

    const NodeId writer = random_node(cfs_->topology(), rng_);
    requests_.emplace_back([this, writer] {
      qos::InstallScope qscope(qctx_);
      const auto issue = Clock::now();
      const double issue_s =
          std::chrono::duration<double>(issue - epoch_).count();
      cfs_->write_block(payload_, writer);
      const double response =
          std::chrono::duration<double>(Clock::now() - issue).count();
      ++completed_;
      std::lock_guard<std::mutex> lock(mu_);
      samples_.emplace_back(issue_s, response);
    });
  }
}

void WriteWorkload::stop() {
  running_ = false;
  if (generator_.joinable()) generator_.join();
  for (auto& t : requests_) t.join();
  requests_.clear();
}

std::vector<std::pair<double, double>> WriteWorkload::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  auto copy = samples_;
  std::sort(copy.begin(), copy.end());
  return copy;
}

Summary WriteWorkload::response_summary() const {
  Summary s;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [issue, response] : samples_) {
    (void)issue;
    s.add(response);
  }
  return s;
}

BackgroundTraffic::BackgroundTraffic(
    MiniCfs& cfs, std::vector<std::pair<NodeId, NodeId>> pairs,
    BytesPerSec bytes_per_second, Bytes burst)
    : cfs_(&cfs), pairs_(std::move(pairs)), rate_(bytes_per_second),
      burst_(burst) {}

BackgroundTraffic::~BackgroundTraffic() {
  if (running_) stop();
}

void BackgroundTraffic::start() {
  running_ = true;
  for (const auto& [src, dst] : pairs_) {
    streams_.emplace_back([this, src = src, dst = dst] {
      qos::InstallScope qscope(qctx_);
      const auto burst_interval = std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(static_cast<double>(burst_) / rate_));
      auto next = Clock::now();
      while (running_) {
        // UDP-style: consume link capacity without backing off under
        // congestion (the paper's Iperf injection).
        cfs_->transport().inject(src, dst, burst_);
        next += burst_interval;
        std::this_thread::sleep_until(next);
      }
    });
  }
}

void BackgroundTraffic::stop() {
  running_ = false;
  for (auto& t : streams_) t.join();
  streams_.clear();
}

}  // namespace ear::cfs
