#include "cfs/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <span>
#include <stdexcept>

namespace ear::cfs {

namespace {

// Version history (the writer always emits the newest; the reader accepts
// every version listed here, defaulting fields the older format lacks):
//   '2' — namespace_shards (PR 4)
//   '3' — + read-path fields cache_bytes, read_fanout_lanes (PR 5)
//   '4' — + store fields store_backend, store_dir, store_segment_bytes
//   '5' — + ecdag_enable (PR 7)
//   '6' — + codec fields codec_family, sub-packetization alpha (PR 8)
constexpr char kMagic[8] = {'E', 'A', 'R', 'C', 'K', 'P', 'T', '6'};
constexpr int kOldestSupported = 2;
constexpr int kNewestSupported = 6;

// ---- little-endian primitives ------------------------------------------

void put_u64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void put_i64(std::vector<uint8_t>& out, int64_t v) {
  put_u64(out, static_cast<uint64_t>(v));
}

void put_bytes(std::vector<uint8_t>& out, std::span<const uint8_t> v) {
  put_u64(out, v.size());
  out.insert(out.end(), v.begin(), v.end());
}

class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& data) : data_(&data) {}

  uint64_t u64() {
    if (pos_ + 8 > data_->size()) {
      throw std::runtime_error("checkpoint truncated");
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>((*data_)[pos_ + static_cast<size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  int64_t i64() { return static_cast<int64_t>(u64()); }

  std::vector<uint8_t> bytes() {
    const uint64_t len = u64();
    if (pos_ + len > data_->size()) {
      throw std::runtime_error("checkpoint truncated");
    }
    std::vector<uint8_t> out(data_->begin() + static_cast<ptrdiff_t>(pos_),
                             data_->begin() +
                                 static_cast<ptrdiff_t>(pos_ + len));
    pos_ += len;
    return out;
  }

  std::string str() {
    std::vector<uint8_t> raw = bytes();
    return std::string(raw.begin(), raw.end());
  }

  // Validates the "EARCKPT<v>" magic and returns the format version.
  // Unknown versions are rejected with a message naming the supported
  // range, so a reader meeting a future format fails loudly instead of
  // mis-parsing it.
  int expect_magic() {
    if (pos_ + 8 > data_->size() ||
        std::memcmp(data_->data(), kMagic, 7) != 0) {
      throw std::runtime_error("not an EAR checkpoint");
    }
    const int version = (*data_)[7] - '0';
    if (version < kOldestSupported || version > kNewestSupported) {
      throw std::runtime_error(
          "unsupported EAR checkpoint version '" +
          std::string(1, static_cast<char>((*data_)[7])) + "' (supported: " +
          std::to_string(kOldestSupported) + ".." +
          std::to_string(kNewestSupported) + ")");
    }
    pos_ += 8;
    return version;
  }

 private:
  const std::vector<uint8_t>* data_;
  size_t pos_ = 0;
};

}  // namespace

std::vector<uint8_t> save_checkpoint(const MiniCfs& cfs) {
  const ClusterImage image = cfs.export_image();
  std::vector<uint8_t> out;
  // Byte-wise append (not a range insert): GCC 12's -Wstringop-overflow
  // false-positives on inserting a char array range into a fresh vector.
  for (const char c : kMagic) out.push_back(static_cast<uint8_t>(c));

  // Config.
  put_i64(out, image.config.racks);
  put_i64(out, image.config.nodes_per_rack);
  put_i64(out, image.config.placement.code.n);
  put_i64(out, image.config.placement.code.k);
  put_i64(out, image.config.placement.replication);
  put_i64(out, image.config.placement.one_replica_per_rack ? 1 : 0);
  put_i64(out, image.config.placement.c);
  put_i64(out, image.config.placement.target_racks);
  put_i64(out, image.config.use_ear ? 1 : 0);
  put_i64(out, image.config.block_size);
  put_i64(out,
          image.config.construction == erasure::Construction::kCauchy ? 1
                                                                      : 0);
  put_u64(out, image.config.seed);
  put_i64(out, image.config.namespace_shards);
  put_i64(out, image.config.cache_bytes);
  put_i64(out, image.config.read_fanout_lanes);
  put_i64(out, static_cast<int64_t>(image.config.store_backend));
  {
    const std::string& dir = image.config.store_dir;
    put_bytes(out, {reinterpret_cast<const uint8_t*>(dir.data()),
                    dir.size()});
  }
  put_i64(out, image.config.store_segment_bytes);
  put_i64(out, image.config.ecdag_enable ? 1 : 0);
  // v6: codec family plus its sub-packetization.  alpha is derivable from
  // (family, n, k) but serialized anyway so a reader can reject a
  // checkpoint whose block layout it would mis-slice (a forward-compat
  // guard if a family's alpha derivation ever changes).
  put_i64(out, static_cast<int64_t>(image.config.codec_family));
  {
    const auto codec = erasure::make_codec(
        image.config.codec_family, image.config.placement.code.n,
        image.config.placement.code.k, image.config.construction);
    put_i64(out, codec->alpha());
  }
  put_i64(out, image.next_block_id);

  // Block locations.
  put_u64(out, image.locations.size());
  for (const auto& [block, locs] : image.locations) {
    put_i64(out, block);
    put_u64(out, locs.size());
    for (const NodeId n : locs) put_i64(out, n);
  }

  // Stripes.
  put_u64(out, image.stripes.size());
  for (const auto& [id, meta] : image.stripes) {
    put_i64(out, id);
    put_i64(out, meta.encoded ? 1 : 0);
    put_u64(out, meta.data_blocks.size());
    for (const BlockId b : meta.data_blocks) put_i64(out, b);
    put_u64(out, meta.parity_blocks.size());
    for (const BlockId b : meta.parity_blocks) put_i64(out, b);
  }

  // Block -> stripe positions.
  put_u64(out, image.block_positions.size());
  for (const auto& [block, pos] : image.block_positions) {
    put_i64(out, block);
    put_i64(out, pos.first);
    put_i64(out, pos.second);
  }

  // Node block stores.
  put_u64(out, image.node_blocks.size());
  for (const auto& store : image.node_blocks) {
    put_u64(out, store.size());
    for (const auto& [block, data] : store) {
      put_i64(out, block);
      put_bytes(out, data.span());
    }
  }
  return out;
}

std::unique_ptr<MiniCfs> load_checkpoint(
    const std::vector<uint8_t>& data, std::unique_ptr<Transport> transport) {
  Reader in(data);
  const int version = in.expect_magic();

  ClusterImage image;
  image.config.racks = static_cast<int>(in.i64());
  image.config.nodes_per_rack = static_cast<int>(in.i64());
  image.config.placement.code.n = static_cast<int>(in.i64());
  image.config.placement.code.k = static_cast<int>(in.i64());
  image.config.placement.replication = static_cast<int>(in.i64());
  image.config.placement.one_replica_per_rack = in.i64() != 0;
  image.config.placement.c = static_cast<int>(in.i64());
  image.config.placement.target_racks = static_cast<int>(in.i64());
  image.config.use_ear = in.i64() != 0;
  image.config.block_size = in.i64();
  image.config.construction = in.i64() != 0
                                  ? erasure::Construction::kCauchy
                                  : erasure::Construction::kVandermonde;
  image.config.seed = in.u64();
  image.config.namespace_shards = static_cast<int>(in.i64());
  if (version >= 3) {
    image.config.cache_bytes = in.i64();
    image.config.read_fanout_lanes = static_cast<int>(in.i64());
  }  // v2: keep the CfsConfig defaults (cache off, per-source fan-out)
  if (version >= 4) {
    const int64_t backend = in.i64();
    if (backend != 0 && backend != 1) {
      throw std::runtime_error("checkpoint has unknown store backend " +
                               std::to_string(backend));
    }
    image.config.store_backend = static_cast<store::StoreBackend>(backend);
    image.config.store_dir = in.str();
    image.config.store_segment_bytes = in.i64();
  }  // v2/v3: keep the CfsConfig defaults (mem backend)
  if (version >= 5) {
    image.config.ecdag_enable = in.i64() != 0;
  }  // v2..v4: keep the CfsConfig default (legacy single-node data path)
  if (version >= 6) {
    const int64_t family = in.i64();
    if (family < 0 || family > 4) {
      throw std::runtime_error("checkpoint has unknown codec family " +
                               std::to_string(family));
    }
    image.config.codec_family = static_cast<erasure::CodecFamily>(family);
    const int64_t alpha = in.i64();
    const auto codec = erasure::make_codec(
        image.config.codec_family, image.config.placement.code.n,
        image.config.placement.code.k, image.config.construction);
    if (alpha != codec->alpha()) {
      throw std::runtime_error(
          "checkpoint sub-packetization mismatch: file says alpha=" +
          std::to_string(alpha) + " but " + codec->name() + "(" +
          std::to_string(codec->n()) + "," + std::to_string(codec->k()) +
          ") derives alpha=" + std::to_string(codec->alpha()));
    }
  }  // v2..v5: keep the CfsConfig default (scalar Reed-Solomon)
  image.next_block_id = in.i64();

  const uint64_t location_count = in.u64();
  for (uint64_t i = 0; i < location_count; ++i) {
    const BlockId block = in.i64();
    const uint64_t locs = in.u64();
    std::vector<NodeId> nodes;
    for (uint64_t j = 0; j < locs; ++j) {
      nodes.push_back(static_cast<NodeId>(in.i64()));
    }
    image.locations.emplace(block, std::move(nodes));
  }

  const uint64_t stripe_count = in.u64();
  for (uint64_t i = 0; i < stripe_count; ++i) {
    StripeMeta meta;
    meta.id = in.i64();
    meta.encoded = in.i64() != 0;
    const uint64_t dcount = in.u64();
    for (uint64_t j = 0; j < dcount; ++j) meta.data_blocks.push_back(in.i64());
    const uint64_t pcount = in.u64();
    for (uint64_t j = 0; j < pcount; ++j) {
      meta.parity_blocks.push_back(in.i64());
    }
    image.stripes.emplace(meta.id, std::move(meta));
  }

  const uint64_t pos_count = in.u64();
  for (uint64_t i = 0; i < pos_count; ++i) {
    const BlockId block = in.i64();
    const StripeId stripe = in.i64();
    const int pos = static_cast<int>(in.i64());
    image.block_positions.emplace(block, std::make_pair(stripe, pos));
  }

  const uint64_t node_count = in.u64();
  image.node_blocks.resize(node_count);
  for (uint64_t i = 0; i < node_count; ++i) {
    const uint64_t blocks = in.u64();
    for (uint64_t j = 0; j < blocks; ++j) {
      const BlockId block = in.i64();
      // take() adopts the decoded vector without a byte copy.
      image.node_blocks[i].emplace(block,
                                   datapath::BlockBuffer::take(in.bytes()));
    }
  }

  return MiniCfs::from_image(std::move(image), std::move(transport));
}

bool save_checkpoint_file(const MiniCfs& cfs, const std::string& path) {
  const std::vector<uint8_t> image = save_checkpoint(cfs);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const size_t written = std::fwrite(image.data(), 1, image.size(), f);
  std::fclose(f);
  return written == image.size();
}

std::unique_ptr<MiniCfs> load_checkpoint_file(
    const std::string& path, std::unique_ptr<Transport> transport) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw std::runtime_error("cannot open checkpoint " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> data(static_cast<size_t>(size));
  const size_t read = std::fread(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (read != data.size()) {
    throw std::runtime_error("short read on checkpoint " + path);
  }
  return load_checkpoint(data, std::move(transport));
}

}  // namespace ear::cfs
